// Command benchcheck is the bench-regression gate: it parses `go test
// -bench` output (stdin or -in), compares each benchmark's ns/op
// against a committed baseline JSON, and fails when the geometric mean
// of the ratios regresses past -threshold. With -update it rewrites the
// baseline from the measured run instead of comparing, which is how the
// baseline file is refreshed after an intentional perf change.
//
// Usage:
//
//	go test -run '^$' -bench 'Fleet|Extension' . | benchcheck -baseline BENCH_BASELINE.json
//	go test -run '^$' -bench 'Fleet|Extension' . | benchcheck -baseline BENCH_BASELINE.json -update
//
// Benchmarks present in the run but missing from the baseline are
// reported and skipped (they cannot regress); baseline entries missing
// from the run fail the check, so a silently deleted benchmark cannot
// hide a regression. -threshold gates the geomean; -tolerance
// additionally gates each individual benchmark, so one badly regressed
// benchmark cannot hide inside an acceptable average. The comparison is benchstat-flavoured but
// dependency-free: single-sample geomean with a per-bench report,
// which is the right weight for a CI smoke gate (full statistics need
// -count >= 10 and a real benchstat run).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// Baseline is the committed reference: benchmark name (with the -P GOMAXPROCS
// suffix stripped) to ns/op.
type Baseline struct {
	// Note explains how the file was produced; carried through -update.
	Note    string             `json:"note,omitempty"`
	NsPerOp map[string]float64 `json:"ns_per_op"`
}

// benchLine matches `BenchmarkName-8   100   12345 ns/op   ...` and the
// suffix-less form emitted with GOMAXPROCS unset.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

func parseBench(r io.Reader) (map[string]float64, error) {
	got := map[string]float64{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("bad ns/op in %q: %v", sc.Text(), err)
		}
		got[m[1]] = ns
	}
	return got, sc.Err()
}

func main() {
	baseline := flag.String("baseline", "BENCH_BASELINE.json", "committed baseline JSON")
	in := flag.String("in", "", "bench output file; default stdin")
	update := flag.Bool("update", false, "rewrite the baseline from this run instead of comparing")
	threshold := flag.Float64("threshold", 1.10,
		"fail when geomean(new/old) exceeds this ratio")
	tolerance := flag.Float64("tolerance", 0,
		"fail when any single benchmark regresses more than this percentage (0 disables the per-bench gate)")
	note := flag.String("note", "", "note stored in the baseline on -update")
	flag.Parse()
	if *tolerance < 0 {
		fatal(fmt.Errorf("-tolerance must be >= 0 (got %g)", *tolerance))
	}

	src := io.Reader(os.Stdin)
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		src = f
	}
	got, err := parseBench(src)
	if err != nil {
		fatal(err)
	}
	if len(got) == 0 {
		fatal(fmt.Errorf("no benchmark lines found in input"))
	}

	if *update {
		old := Baseline{}
		if raw, err := os.ReadFile(*baseline); err == nil {
			_ = json.Unmarshal(raw, &old)
		}
		b := Baseline{Note: old.Note, NsPerOp: got}
		if *note != "" {
			b.Note = *note
		}
		raw, err := json.MarshalIndent(b, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*baseline, append(raw, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("benchcheck: wrote %d benchmarks to %s\n", len(got), *baseline)
		return
	}

	raw, err := os.ReadFile(*baseline)
	if err != nil {
		fatal(err)
	}
	var base Baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fatal(fmt.Errorf("%s: %v", *baseline, err))
	}

	if compare(os.Stdout, base, got, *threshold, *tolerance) {
		os.Exit(1)
	}
}

// compare writes the per-benchmark report and returns true when the
// check fails: a baseline benchmark missing from the run, the geomean
// past threshold, or (with tolerance > 0) any single benchmark
// regressed by more than tolerance percent — each per-bench failure
// names the benchmark and its delta percentage.
func compare(w io.Writer, base Baseline, got map[string]float64, threshold, tolerance float64) bool {
	var names []string
	for name := range base.NsPerOp {
		names = append(names, name)
	}
	sort.Strings(names)

	logSum, n := 0.0, 0
	fail := false
	var over []string
	for _, name := range names {
		old := base.NsPerOp[name]
		now, ok := got[name]
		if !ok {
			fmt.Fprintf(w, "MISSING  %-50s baseline %.0f ns/op, not in run\n", name, old)
			fail = true
			continue
		}
		ratio := now / old
		logSum += math.Log(ratio)
		n++
		delta := (ratio - 1) * 100
		tag := "ok      "
		if tolerance > 0 && delta > tolerance {
			tag = "SLOWER  "
			over = append(over, fmt.Sprintf("%s %+.1f%%", name, delta))
		} else if ratio > threshold {
			tag = "SLOWER  "
		} else if ratio < 1/threshold {
			tag = "faster  "
		}
		fmt.Fprintf(w, "%s %-50s %12.0f -> %12.0f ns/op  (%+.1f%%)\n",
			tag, name, old, now, delta)
	}
	for name := range got {
		if _, ok := base.NsPerOp[name]; !ok {
			fmt.Fprintf(w, "new      %-50s %12.0f ns/op (not in baseline, skipped)\n", name, got[name])
		}
	}
	if n == 0 {
		fatal(fmt.Errorf("no overlapping benchmarks between run and baseline"))
	}
	geomean := math.Exp(logSum / float64(n))
	fmt.Fprintf(w, "geomean  %.3fx over %d benchmarks (threshold %.2fx)\n", geomean, n, threshold)
	if geomean > threshold {
		fmt.Fprintf(w, "benchcheck: FAIL — geomean regression %.1f%% exceeds %.0f%%\n",
			(geomean-1)*100, (threshold-1)*100)
		fail = true
	}
	for _, o := range over {
		fmt.Fprintf(w, "benchcheck: FAIL — %s exceeds -tolerance %.0f%%\n", o, tolerance)
		fail = true
	}
	if !fail {
		fmt.Fprintln(w, "benchcheck: PASS")
	}
	return fail
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
	os.Exit(1)
}
