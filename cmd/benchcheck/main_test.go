package main

import (
	"strings"
	"testing"
)

func TestParseBench(t *testing.T) {
	out := `goos: linux
BenchmarkFleet-8           	     100	   1200000 ns/op	  500 B/op
BenchmarkExtension_Replication 	      50	   2400000.5 ns/op
PASS
`
	got, err := parseBench(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(got))
	}
	if got["BenchmarkFleet"] != 1200000 {
		t.Errorf("BenchmarkFleet = %v (the -8 suffix must be stripped)", got["BenchmarkFleet"])
	}
	if got["BenchmarkExtension_Replication"] != 2400000.5 {
		t.Errorf("BenchmarkExtension_Replication = %v", got["BenchmarkExtension_Replication"])
	}
}

func TestCompareGeomeanGate(t *testing.T) {
	base := Baseline{NsPerOp: map[string]float64{"BenchmarkA": 100, "BenchmarkB": 100}}
	var sb strings.Builder
	if compare(&sb, base, map[string]float64{"BenchmarkA": 105, "BenchmarkB": 105}, 1.10, 0) {
		t.Errorf("5%% regression under a 10%% threshold must pass:\n%s", sb.String())
	}
	sb.Reset()
	if !compare(&sb, base, map[string]float64{"BenchmarkA": 150, "BenchmarkB": 150}, 1.10, 0) {
		t.Errorf("50%% regression must fail:\n%s", sb.String())
	}
}

func TestCompareToleranceGate(t *testing.T) {
	base := Baseline{NsPerOp: map[string]float64{"BenchmarkA": 100, "BenchmarkB": 100}}
	// One benchmark +30%, the other -20%: geomean ~1.02 passes the
	// threshold, but the per-bench tolerance catches the outlier.
	got := map[string]float64{"BenchmarkA": 130, "BenchmarkB": 80}
	var sb strings.Builder
	if compare(&sb, base, got, 1.10, 0) {
		t.Errorf("without -tolerance the averaged-out outlier must pass:\n%s", sb.String())
	}
	sb.Reset()
	if !compare(&sb, base, got, 1.10, 10) {
		t.Fatalf("-tolerance 10 must catch the +30%% outlier:\n%s", sb.String())
	}
	// The failure output must name the benchmark and its delta.
	if out := sb.String(); !strings.Contains(out, "BenchmarkA +30.0%") {
		t.Errorf("failure output missing per-bench delta:\n%s", out)
	}
}

func TestCompareMissingBenchmarkFails(t *testing.T) {
	base := Baseline{NsPerOp: map[string]float64{"BenchmarkA": 100, "BenchmarkGone": 100}}
	var sb strings.Builder
	if !compare(&sb, base, map[string]float64{"BenchmarkA": 100}, 1.10, 0) {
		t.Errorf("baseline benchmark missing from the run must fail:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "MISSING") {
		t.Errorf("missing benchmark not reported:\n%s", sb.String())
	}
}
