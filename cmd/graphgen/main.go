// Command graphgen generates the synthetic scale-free graphs that stand
// in for the OGB datasets (DESIGN.md, substitutions table). It emits an
// edge list on stdout and prints summary statistics on stderr, or, with
// -stats, only the statistics.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"mlimp/internal/graph"
	"mlimp/internal/stats"
)

func main() {
	dataset := flag.String("dataset", "", "generate a Table I stand-in (e.g. ogbl-collab)")
	n := flag.Int("n", 1000, "node count for a custom Barabasi-Albert graph")
	m := flag.Int("m", 4, "attachment count for a custom graph")
	seed := flag.Int64("seed", 1, "random seed")
	statsOnly := flag.Bool("stats", false, "print statistics only, no edge list")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	var g *graph.Graph
	label := fmt.Sprintf("ba(n=%d, m=%d)", *n, *m)
	if *dataset != "" {
		d, ok := graph.DatasetByName(*dataset)
		if !ok {
			fmt.Fprintf(os.Stderr, "graphgen: unknown dataset %q\n", *dataset)
			os.Exit(1)
		}
		g = d.Generate(rng)
		label = d.Name + " stand-in"
	} else {
		g = graph.BarabasiAlbert(rng, *n, *m)
	}

	degrees := make([]float64, g.N)
	for u := 0; u < g.N; u++ {
		degrees[u] = float64(g.Degree(u))
	}
	fmt.Fprintf(os.Stderr, "%s: %d nodes, %d edges, degree %s\n",
		label, g.N, g.NumEdges(), stats.BoxStats(degrees).String())

	if *statsOnly {
		return
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	for u := 0; u < g.N; u++ {
		for _, v := range g.Neighbors(u) {
			if int(v) >= u { // each undirected edge once
				fmt.Fprintf(w, "%d %d\n", u, v)
			}
		}
	}
}
