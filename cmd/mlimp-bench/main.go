// Command mlimp-bench regenerates every table and figure of the paper's
// evaluation as text artefacts.
//
// Usage:
//
//	mlimp-bench            # run the full suite
//	mlimp-bench -list      # list experiment ids
//	mlimp-bench -run fig13 # run one experiment
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mlimp/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list available experiments and exit")
	run := flag.String("run", "", "run only the experiment with this id")
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-12s %s\n", e.ID, e.Title)
		}
		return
	}
	if *run != "" {
		e, ok := experiments.ByID(*run)
		if !ok {
			fmt.Fprintf(os.Stderr, "mlimp-bench: unknown experiment %q (try -list)\n", *run)
			os.Exit(1)
		}
		fmt.Println(e.Run().String())
		return
	}
	start := time.Now()
	for _, e := range experiments.All() {
		t0 := time.Now()
		res := e.Run()
		fmt.Println(res.String())
		fmt.Printf("(%s in %v)\n\n", e.ID, time.Since(t0).Round(time.Millisecond))
	}
	fmt.Printf("full reproduction suite completed in %v\n", time.Since(start).Round(time.Millisecond))
}
