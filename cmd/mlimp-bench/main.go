// Command mlimp-bench regenerates every table and figure of the paper's
// evaluation as text artefacts.
//
// Usage:
//
//	mlimp-bench            # run the full suite, one worker per CPU
//	mlimp-bench -j 1       # serial run (byte-identical artefacts)
//	mlimp-bench -list      # list experiment ids
//	mlimp-bench -run fig13 # run one experiment
//
// Profiling:
//
//	mlimp-bench -run cluster -cpuprofile cpu.out -memprofile mem.out
//
// writes pprof profiles of the run (see README "Profiling" for the
// analysis workflow). Profile the single-experiment path with -run, or
// -j 1 for the suite — a parallel sweep interleaves experiments and
// muddies attribution.
//
// Experiments are independent deterministic functions, so the parallel
// sweep produces artefacts byte-identical to -j 1; only the wall clock
// changes. Output is always printed in registry order.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"mlimp/internal/cluster"
	"mlimp/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list available experiments and exit")
	run := flag.String("run", "", "run only the experiment with this id")
	jobs := flag.Int("j", runtime.GOMAXPROCS(0), "number of experiments to run concurrently")
	simJobs := flag.Int("sim-j", 1, "event-engine shards advanced concurrently inside the fleet experiments (1 = serial; artefacts are identical at any value)")
	hubs := flag.Int("hubs", 1, "regional sub-hubs the fleet experiments dispatch through (1 = flat single hub; must tile the 4-node bundled fleet)")
	hubFanout := flag.Int("hub-fanout", 0, "nodes per sub-hub (0 = derive from -hubs; hubs x fanout must equal the fleet size)")
	tenants := flag.String("tenants", "2,4", "comma-separated tenant counts for the multitenant sweep")
	hubCrash := flag.String("hub-crash", "",
		"extra custom chaos regime for the partition experiment: slash-separated region@at:recover (ms), e.g. 1@5:40")
	edgeFault := flag.String("edge-fault", "",
		"extra custom chaos regime for the partition experiment: slash-separated from>to@at:until:drop:delay (ms), e.g. hub0>hub1@5:40:1:0")
	packing := flag.String("packing", "all", "array packing policy for the multitenant sweep (first-fit, partitioned, weighted-fair, all)")
	replicate := flag.String("replicate", "all", "replication policy for the replication sweep (off, when-idle, all)")
	qformat := flag.String("qformat", "all", "fixed-point operand format for the precision sweep (16, 12, 8, or qI.F; all)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this file at exit")
	flag.Parse()

	if *jobs < 1 {
		fmt.Fprintf(os.Stderr, "mlimp-bench: -j must be >= 1 (got %d)\n", *jobs)
		os.Exit(2)
	}
	if *simJobs < 1 {
		fmt.Fprintf(os.Stderr, "mlimp-bench: -sim-j must be >= 1 (got %d)\n", *simJobs)
		os.Exit(2)
	}
	// The bundled fleet experiments all run 4 nodes, so the hub
	// topology validates against that size up front.
	resolvedHubs, _, err := cluster.ValidateTopology(*hubs, *hubFanout, experiments.FleetNodes)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mlimp-bench: %v (fleet has %d nodes)\n", err, experiments.FleetNodes)
		os.Exit(2)
	}
	counts, err := parseTenantCounts(*tenants)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mlimp-bench: %v\n", err)
		os.Exit(2)
	}
	if err := experiments.SetMultiTenant(counts, *packing); err != nil {
		fmt.Fprintf(os.Stderr, "mlimp-bench: %v\n", err)
		os.Exit(2)
	}
	if err := experiments.SetReplication(*replicate, *qformat); err != nil {
		fmt.Fprintf(os.Stderr, "mlimp-bench: %v\n", err)
		os.Exit(2)
	}
	// Custom fabric-fault specs are validated here — named fault/cluster
	// errors on a bad window, probability, region, or endpoint — so a
	// malformed chaos regime is a flag failure, not a mid-sweep panic.
	if err := experiments.SetFabricFault(*hubCrash, *edgeFault); err != nil {
		fmt.Fprintf(os.Stderr, "mlimp-bench: %v\n", err)
		os.Exit(2)
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-12s %s\n", e.ID, e.Title)
		}
		return
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mlimp-bench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "mlimp-bench: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	defer writeMemProfile(*memprofile)

	experiments.SetSimWorkers(*simJobs)
	experiments.SetSimHubs(resolvedHubs)

	if *run != "" {
		e, ok := experiments.ByID(*run)
		if !ok {
			fmt.Fprintf(os.Stderr, "mlimp-bench: unknown experiment %q (try -list)\n", *run)
			os.Exit(1)
		}
		t0 := time.Now()
		fmt.Println(e.Run().String())
		fmt.Printf("(%s in %v)\n", e.ID, time.Since(t0).Round(time.Millisecond))
		return
	}
	start := time.Now()
	results, err := experiments.RunAll(context.Background(), *jobs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mlimp-bench: %v\n", err)
		os.Exit(1)
	}
	for _, r := range results {
		fmt.Println(r.Result.String())
		fmt.Printf("(%s in %v)\n\n", r.Experiment.ID, r.Elapsed.Round(time.Millisecond))
	}
	fmt.Printf("full reproduction suite completed in %v (%d experiments, -j %d)\n",
		time.Since(start).Round(time.Millisecond), len(results), *jobs)
}

// parseTenantCounts parses the -tenants list, rejecting zero or
// negative counts — ErrBadTenants is the named validation failure.
func parseTenantCounts(s string) ([]int, error) {
	var counts []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("%w: %q is not a tenant count", ErrBadTenants, part)
		}
		if n < 1 {
			return nil, fmt.Errorf("%w: tenant count must be >= 1, got %d", ErrBadTenants, n)
		}
		counts = append(counts, n)
	}
	if len(counts) == 0 {
		return nil, fmt.Errorf("%w: -tenants list is empty", ErrBadTenants)
	}
	return counts, nil
}

// ErrBadTenants rejects zero, negative, or malformed -tenants values.
var ErrBadTenants = errors.New("invalid -tenants")

// writeMemProfile snapshots the allocation profile after a final GC, so
// the profile reflects live heap rather than collectable garbage.
func writeMemProfile(path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mlimp-bench: %v\n", err)
		return
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintf(os.Stderr, "mlimp-bench: %v\n", err)
	}
}
