// Command mlimp-serve runs a multi-node MLIMP serving fleet under a
// Poisson-style open arrival stream: heterogeneous nodes (layer mixes
// and capacity scales) on one shared deterministic engine, fronted by a
// dispatcher with a pluggable load-balancing policy and admission
// control. Output is byte-for-byte reproducible for a fixed seed.
//
// Usage:
//
//	mlimp-serve                              # default 4-node fleet, all policies
//	mlimp-serve -policy predicted-cost       # one policy
//	mlimp-serve -nodes "sram,dram,reram/reram@0.5" -mean-gap-ms 2
//	mlimp-serve -j 4                         # sharded fabric, 4 engine workers
//
// With -j >= 1 the fleet runs on the sharded per-node engine fabric
// (internal/event/parsim): each node owns its own event engine and the
// dispatcher talks to them over latency-bearing mailboxes. The output
// is identical for every -j >= 1 — the worker count only changes how
// many shards advance concurrently. -j 0 (the default) keeps the
// legacy single-engine dispatcher.
//
// Open-loop request serving (-open, requires -j >= 1) replaces the
// batch stream with the request-level front end of internal/serve:
// individual requests arrive under a configurable arrival process
// (-arrival poisson|mmpp|diurnal, -req-gap-us), carry per-request SLO
// deadlines (-slo-ms), and are coalesced by the continuous batch-former
// (-budget-us, -batch-max). With -admission predictor the dispatcher
// runs the cost predictor online and sheds requests predicted to miss
// their deadline; -admission blind sheds only at the dispatcher's
// admission bound.
//
//	mlimp-serve -open -j 2 -arrival mmpp -req-gap-us 50 -slo-ms 2
//	mlimp-serve -open -j 2 -source gnn -admission predictor
//
// Multi-tenant serving tags work round-robin across -tenants tenants
// and packs each tenant onto disjoint array sets per node under the
// -packing policy; summaries then carry per-tenant goodput and p99:
//
//	mlimp-serve -open -j 2 -tenants 4 -packing weighted-fair
package main

import (
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"mlimp/internal/cluster"
	"mlimp/internal/event"
	"mlimp/internal/fault"
	"mlimp/internal/fixed"
	"mlimp/internal/graph"
	"mlimp/internal/isa"
	"mlimp/internal/predict"
	"mlimp/internal/runtime"
	"mlimp/internal/sched"
	"mlimp/internal/serve"
	"mlimp/internal/tensor"
	"mlimp/internal/workload"
)

// defaultFleet mirrors the bundled `cluster` experiment: a full node,
// two partial mixes, and a ReRAM-only straggler.
const defaultFleet = "sram,dram,reram/sram,dram/dram,reram/reram"

// Named flag-validation failures (exit status 2).
var (
	errBadTenants   = errors.New("invalid -tenants")
	errBadPacking   = errors.New("invalid -packing")
	errBadReplicate = errors.New("invalid -replicate")
	errBadQFormat   = errors.New("invalid -qformat")
)

// parseFleet turns "sram,dram@0.5/reram" into node configs: nodes are
// slash-separated, layers comma-separated, with an optional @scale
// capacity multiplier per node.
func parseFleet(spec string) ([]cluster.NodeConfig, error) {
	var cfgs []cluster.NodeConfig
	for i, nodeSpec := range strings.Split(spec, "/") {
		scale := 0.0
		layerSpec := nodeSpec
		if at := strings.LastIndex(nodeSpec, "@"); at >= 0 {
			s, err := strconv.ParseFloat(nodeSpec[at+1:], 64)
			if err != nil || s <= 0 {
				return nil, fmt.Errorf("node %d: bad scale %q", i, nodeSpec[at+1:])
			}
			scale = s
			layerSpec = nodeSpec[:at]
		}
		var targets []isa.Target
		for _, name := range strings.Split(layerSpec, ",") {
			switch strings.ToLower(strings.TrimSpace(name)) {
			case "sram":
				targets = append(targets, isa.SRAM)
			case "dram":
				targets = append(targets, isa.DRAM)
			case "reram":
				targets = append(targets, isa.ReRAM)
			default:
				return nil, fmt.Errorf("node %d: unknown layer %q", i, name)
			}
		}
		cfgs = append(cfgs, cluster.NodeConfig{
			Name:    fmt.Sprintf("node%d(%s)", i, layerSpec),
			Targets: targets,
			Scale:   scale,
		})
	}
	return cfgs, nil
}

func main() {
	nodes := flag.String("nodes", defaultFleet,
		"fleet spec: slash-separated nodes, comma-separated layers, optional @scale")
	policy := flag.String("policy", "all",
		"roundrobin | least-outstanding | predicted-cost | all")
	batches := flag.Int("batches", 32, "number of arriving batches")
	batchSize := flag.Int("batch-size", 3, "jobs per batch (drawn from the Table II app suite)")
	meanGapMs := flag.Float64("mean-gap-ms", 5, "mean inter-arrival gap (exponential)")
	queueCap := flag.Int("queue-cap", cluster.DefaultQueueCap, "max outstanding batches per node")
	retries := flag.Int("retries", 4, "redispatch attempts before shedding")
	backoffMs := flag.Float64("backoff-ms", 0.5, "initial retry backoff, doubling per attempt")
	seed := flag.Int64("seed", 1, "random seed (arrivals and job mix)")
	faultSeed := flag.Int64("fault-seed", 0,
		"fault-plan seed; 0 disables the generated crash/array-fault schedule")
	arrayFaultRate := flag.Float64("array-fault-rate", 0.5,
		"expected array faults per node over the run (with -fault-seed)")
	crashRate := flag.Float64("crash-rate", 0.5,
		"expected crash windows per node over the run (with -fault-seed)")
	meanOutageMs := flag.Float64("mean-outage-ms", 20, "mean outage length for crashes and transient faults")
	execErrorProb := flag.Float64("exec-error-prob", 0, "per-execution batch failure probability")
	deadlineMs := flag.Float64("deadline-ms", 0, "per-batch completion deadline; 0 disables")
	redispatch := flag.Int("redispatch", cluster.DefaultMaxRedispatch,
		"failure re-dispatch budget per batch before dead-lettering")
	breakerK := flag.Int("breaker-k", cluster.DefaultBreakerK,
		"consecutive node failures that open its circuit breaker")
	breakerCooldownMs := flag.Float64("breaker-cooldown-ms", 0,
		"open-breaker cooldown before a half-open probe; 0 means the default")
	heartbeatMs := flag.Float64("heartbeat-ms", 0, "node heartbeat period; 0 means the default")
	hubCrash := flag.String("hub-crash", "",
		"regional hub freeze windows: slash-separated region@at:recover (ms), e.g. 1@2:6 (needs -j >= 1 and -hubs > 1)")
	edgeFault := flag.String("edge-fault", "",
		"fabric edge faults: slash-separated from>to@at:until:drop:delay (ms; until 0 = open), e.g. hub0>hub1@2:6:1:0 (needs -j >= 1)")
	hubs := flag.Int("hubs", 1,
		"regional sub-hubs the sharded fabric dispatches through (1 = flat single hub; must tile the fleet)")
	hubFanout := flag.Int("hub-fanout", 0,
		"nodes per sub-hub (0 = derive from -hubs; hubs x fanout must equal the fleet size)")
	jobs := flag.Int("j", 0,
		"engine workers for the sharded per-node fabric; 0 uses the legacy single-engine dispatcher")
	openLoop := flag.Bool("open", false,
		"run the open-loop request front end (continuous batching + SLO admission); requires -j >= 1")
	source := flag.String("source", "app", "open-loop request source: app | gnn")
	arrival := flag.String("arrival", "poisson", "open-loop arrival process: poisson | mmpp | diurnal")
	reqGapUs := flag.Float64("req-gap-us", 100, "open-loop mean request inter-arrival gap (us)")
	horizonMs := flag.Float64("horizon-ms", 20, "open-loop arrival horizon (ms)")
	sloMs := flag.Float64("slo-ms", 5, "open-loop per-request SLO (ms from arrival)")
	budgetUs := flag.Float64("budget-us", 200, "open-loop batch-former latency budget (us)")
	batchMax := flag.Int("batch-max", 8, "open-loop batch-former size cap")
	admission := flag.String("admission", "predictor", "open-loop admission: predictor | blind")
	retrainEvery := flag.Int("retrain-every", 8,
		"open-loop predictor refit period in completed batches (0: refit only on drift)")
	tenants := flag.Int("tenants", 1, "tag work round-robin across this many tenants (1 = untenanted)")
	packing := flag.String("packing", "first-fit",
		"per-node array packing policy: first-fit | partitioned | weighted-fair")
	replicate := flag.String("replicate", "off",
		"per-node standing-replica policy: off | when-idle")
	qformat := flag.String("qformat", "",
		"fixed-point operand format for -source gnn request jobs (16, 12, 8, or qI.F; empty = q8.8)")
	flag.Parse()

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "mlimp-serve: "+format+"\n", args...)
		os.Exit(2)
	}
	if *jobs < 0 {
		fail("-j must be >= 0 (got %d)", *jobs)
	}
	if *openLoop && *jobs < 1 {
		fail("-open needs the sharded fabric: pass -j >= 1 (got %d)", *jobs)
	}
	if *batches <= 0 {
		fail("-batches must be positive (got %d)", *batches)
	}
	if *batchSize <= 0 {
		fail("-batch-size must be positive (got %d)", *batchSize)
	}
	if *meanGapMs <= 0 {
		fail("-mean-gap-ms must be positive (got %g)", *meanGapMs)
	}
	if *queueCap < 0 {
		fail("-queue-cap must be >= 0 (got %d)", *queueCap)
	}
	if *retries < 0 {
		fail("-retries must be >= 0 (got %d)", *retries)
	}
	if *backoffMs < 0 {
		fail("-backoff-ms must be >= 0 (got %g)", *backoffMs)
	}
	if *arrayFaultRate < 0 || *crashRate < 0 {
		fail("fault rates must be >= 0 (array-fault-rate=%g crash-rate=%g)",
			*arrayFaultRate, *crashRate)
	}
	if *execErrorProb < 0 || *execErrorProb > 1 {
		fail("-exec-error-prob must be in [0,1] (got %g)", *execErrorProb)
	}
	if *meanOutageMs < 0 || *deadlineMs < 0 {
		fail("outage and deadline must be >= 0 (mean-outage-ms=%g deadline-ms=%g)",
			*meanOutageMs, *deadlineMs)
	}
	if *reqGapUs <= 0 {
		fail("-req-gap-us must be positive (got %g)", *reqGapUs)
	}
	if *horizonMs <= 0 {
		fail("-horizon-ms must be positive (got %g)", *horizonMs)
	}
	if *sloMs <= 0 {
		fail("-slo-ms must be positive (got %g)", *sloMs)
	}
	if *budgetUs <= 0 {
		fail("-budget-us must be positive (got %g)", *budgetUs)
	}
	if *batchMax <= 0 {
		fail("-batch-max must be positive (got %d)", *batchMax)
	}
	if *retrainEvery < 0 {
		fail("-retrain-every must be >= 0 (got %d)", *retrainEvery)
	}
	if *admission != "predictor" && *admission != "blind" {
		fail("unknown -admission %q (predictor | blind)", *admission)
	}
	if *source != "app" && *source != "gnn" {
		fail("unknown -source %q (app | gnn)", *source)
	}
	if _, err := buildArrival(*arrival, 1, 2); err != nil {
		fail("%v", err)
	}
	if *tenants < 1 {
		fail("%v: tenant count must be >= 1 (got %d)", errBadTenants, *tenants)
	}
	pk, ok := sched.PackingByName(*packing)
	if !ok {
		fail("%v: unknown packing %q (have %s)", errBadPacking, *packing,
			strings.Join(sched.PackingNames(), " | "))
	}
	rp, ok := sched.ReplicationByName(*replicate)
	if !ok {
		fail("%v: unknown policy %q (have %s)", errBadReplicate, *replicate,
			strings.Join(sched.ReplicationNames(), " | "))
	}
	var reqFormat fixed.Format
	if *qformat != "" {
		if *source != "gnn" {
			fail("%v: -qformat needs -source gnn (got %q)", errBadQFormat, *source)
		}
		f, err := fixed.ParseFormat(*qformat)
		if err != nil {
			fail("%v: %v", errBadQFormat, err)
		}
		reqFormat = f
	}

	cfgs, err := parseFleet(*nodes)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mlimp-serve: %v\n", err)
		os.Exit(1)
	}
	for i := range cfgs {
		cfgs[i].Packing = pk
		cfgs[i].Replication = rp
	}
	// Topology validates against the parsed fleet size, so -nodes and
	// -hubs are checked as a pair.
	resolvedHubs, _, err := cluster.ValidateTopology(*hubs, *hubFanout, len(cfgs))
	if err != nil {
		fail("%v (fleet has %d nodes)", err, len(cfgs))
	}
	if resolvedHubs > 1 && *jobs < 1 {
		fail("-hubs > 1 needs the sharded fabric: pass -j >= 1 (got %d)", *jobs)
	}
	// Fabric fault flags: parse and structurally validate up front so a
	// bad spec is a flag error (exit 2), not a mid-run failure.
	hubCrashes, err := fault.ParseHubCrashes(*hubCrash)
	if err != nil {
		fail("%v", err)
	}
	edgeFaults, err := fault.ParseEdgeFaults(*edgeFault)
	if err != nil {
		fail("%v", err)
	}
	if len(hubCrashes) > 0 && (*jobs < 1 || resolvedHubs < 2) {
		fail("%v: -hub-crash needs -j >= 1 and -hubs > 1", cluster.ErrHubCrashNeedsTree)
	}
	if len(edgeFaults) > 0 && *jobs < 1 {
		fail("%v: -edge-fault needs -j >= 1", cluster.ErrEdgeFaultNeedsFabric)
	}
	for _, e := range edgeFaults {
		if e.DropProb > 0 && *deadlineMs <= 0 {
			fail("%v: lossy -edge-fault %s>%s needs -deadline-ms > 0",
				cluster.ErrEdgeFaultNeedsDeadline, e.From, e.To)
		}
	}
	policies := cluster.PolicyNames()
	if *policy != "all" {
		if _, ok := cluster.PolicyByName(*policy); !ok {
			fmt.Fprintf(os.Stderr, "mlimp-serve: unknown policy %q (have %v)\n",
				*policy, cluster.PolicyNames())
			os.Exit(1)
		}
		policies = []string{*policy}
	}
	adm := cluster.Admission{
		QueueCap:   *queueCap,
		MaxRetries: *retries,
		Backoff:    event.Time(*backoffMs * float64(event.Millisecond)),
	}

	// Build the fault plan once so every policy faces the identical
	// failure schedule; a fault.Plan is read-only during a run.
	var plan *fault.Plan
	if *faultSeed != 0 {
		var names []string
		for _, c := range cfgs {
			names = append(names, c.Name)
		}
		gap := event.Time(*meanGapMs * float64(event.Millisecond))
		plan, err = fault.Generate(*faultSeed, fault.GenConfig{
			Nodes:              names,
			Horizon:            event.Time(*batches) * gap,
			ArrayFaultsPerNode: *arrayFaultRate,
			CrashesPerNode:     *crashRate,
			MeanOutage:         event.Time(*meanOutageMs * float64(event.Millisecond)),
			ExecErrorProb:      *execErrorProb,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "mlimp-serve: %v\n", err)
			os.Exit(1)
		}
	} else if *execErrorProb > 0 {
		plan = &fault.Plan{Seed: *seed, ExecErrorProb: *execErrorProb}
	}
	if len(hubCrashes) > 0 || len(edgeFaults) > 0 {
		if plan == nil {
			plan = &fault.Plan{Seed: *seed}
		}
		plan.HubCrashes = append(plan.HubCrashes, hubCrashes...)
		plan.EdgeFaults = append(plan.EdgeFaults, edgeFaults...)
	}
	if plan != nil {
		// Validate surfaces the named fault errors (bad windows, bad
		// probabilities, bad regions) as flag failures.
		if err := plan.Validate(); err != nil {
			fail("%v", err)
		}
	}
	faulty := plan != nil || *deadlineMs > 0

	if *openLoop {
		fmt.Printf("fleet: %d nodes (%s), open-loop %s arrivals (mean gap %.0fus over %.1fms), "+
			"slo %.2fms, budget %.0fus, batch-max %d, admission %s, source %s, seed %d\n\n",
			len(cfgs), *nodes, *arrival, *reqGapUs, *horizonMs, *sloMs, *budgetUs,
			*batchMax, *admission, *source, *seed)
		if plan != nil {
			fmt.Println(plan)
		}
		var fc *cluster.FaultConfig
		if faulty {
			fc = &cluster.FaultConfig{
				Plan:            plan,
				Deadline:        event.Time(*deadlineMs * float64(event.Millisecond)),
				MaxRedispatch:   *redispatch,
				BreakerK:        *breakerK,
				BreakerCooldown: event.Time(*breakerCooldownMs * float64(event.Millisecond)),
				Heartbeat:       event.Time(*heartbeatMs * float64(event.Millisecond)),
			}
		}
		runOpenLoop(policies, adm, cfgs, *jobs, resolvedHubs, openParams{
			source: *source, arrival: *arrival,
			predictorAdmission: *admission == "predictor",
			reqGap:             event.Time(*reqGapUs * float64(event.Microsecond)),
			horizon:            event.Time(*horizonMs * float64(event.Millisecond)),
			slo:                event.Time(*sloMs * float64(event.Millisecond)),
			budget:             event.Time(*budgetUs * float64(event.Microsecond)),
			batchMax:           *batchMax, retrainEvery: *retrainEvery,
			tenants: *tenants, format: reqFormat, seed: *seed, faultCfg: fc,
		})
		return
	}

	fmt.Printf("fleet: %d nodes (%s), %d batches x %d jobs, mean gap %.2fms, seed %d\n\n",
		len(cfgs), *nodes, *batches, *batchSize, *meanGapMs, *seed)
	if plan != nil {
		fmt.Println(plan)
	}
	for _, name := range policies {
		p, _ := cluster.PolicyByName(name)
		// Both fabrics satisfy the same Submit/EnableFaults/Run contract;
		// -j selects which one serves the fleet.
		var d interface {
			Submit(*runtime.Batch) error
			EnableFaults(cluster.FaultConfig) error
			Run() cluster.Summary
		}
		if *jobs >= 1 {
			d = cluster.NewShardedDispatcher(p, adm,
				cluster.ShardConfig{Workers: *jobs, Hubs: resolvedHubs}, cfgs...)
		} else {
			d = cluster.NewDispatcher(p, adm, cfgs...)
		}
		if faulty {
			err := d.EnableFaults(cluster.FaultConfig{
				Plan:            plan,
				Deadline:        event.Time(*deadlineMs * float64(event.Millisecond)),
				MaxRedispatch:   *redispatch,
				BreakerK:        *breakerK,
				BreakerCooldown: event.Time(*breakerCooldownMs * float64(event.Millisecond)),
				Heartbeat:       event.Time(*heartbeatMs * float64(event.Millisecond)),
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "mlimp-serve: %v\n", err)
				os.Exit(1)
			}
		}
		// Re-seeding per policy holds the workload fixed, so summaries
		// compare policies and nothing else.
		rng := rand.New(rand.NewSource(*seed))
		gap := event.Time(*meanGapMs * float64(event.Millisecond))
		for i, at := range cluster.PoissonArrivals(rng, *batches, gap) {
			tenant := ""
			if *tenants > 1 {
				tenant = fmt.Sprintf("t%d", i%*tenants)
			}
			if err := d.Submit(&runtime.Batch{ID: i, Arrival: at, Tenant: tenant,
				Jobs: workload.RandomJobs(rng, *batchSize, i*1000)}); err != nil {
				fmt.Fprintf(os.Stderr, "mlimp-serve: %v\n", err)
				os.Exit(1)
			}
		}
		fmt.Println(d.Run())
	}
}

// buildArrival maps an -arrival flag value to a process. The mmpp and
// diurnal shapes are fixed relative to the mean gap and horizon: mmpp
// alternates a calm state with an 8x burst, diurnal rides one sine
// period across the horizon with a 4x flash crowd in the middle.
func buildArrival(kind string, gap, horizon event.Time) (serve.ArrivalProcess, error) {
	switch kind {
	case "poisson":
		return serve.Poisson{MeanGap: gap}, nil
	case "mmpp":
		return &serve.MMPP{States: []serve.MMPPState{
			{MeanGap: gap, MeanDwell: 30 * gap},
			{MeanGap: gap / 8, MeanDwell: 10 * gap},
		}}, nil
	case "diurnal":
		return serve.Diurnal{
			Base: serve.Poisson{MeanGap: gap}, Period: horizon, Amplitude: 0.6,
			FlashAt: horizon / 2, FlashDur: horizon / 10, FlashBoost: 4,
		}, nil
	}
	return nil, fmt.Errorf("unknown -arrival %q (poisson | mmpp | diurnal)", kind)
}

// serveDataset is the GNN request stand-in for -source gnn: a small
// scale-free graph whose 2-hop subgraphs make substantial SpMM jobs.
var serveDataset = graph.Dataset{Name: "serve", Vertices: 1200,
	InputFeat: 64, HiddenFeat: 64, ScaleDiv: 1, Attachment: 8}

// trainServePredictor fits the request cost predictor once; each policy
// run clones it so online retraining starts from identical weights.
func trainServePredictor(seed int64) *predict.MLP {
	rng := rand.New(rand.NewSource(seed + 1))
	g := serveDataset.Generate(rng)
	s := graph.NewSampler(rng, g, 2, 0)
	var training []*tensor.CSR
	for i := 0; i < 32; i++ {
		training = append(training, s.Sample(rng.Intn(g.N)).Adj)
	}
	return predict.Train(rng, training, serveDataset.InputFeat,
		predict.TrainConfig{Epochs: 150, LR: 2e-3})
}

// openParams bundles the open-loop front-end settings.
type openParams struct {
	source, arrival        string
	predictorAdmission     bool
	reqGap, horizon, slo   event.Time
	budget                 event.Time
	batchMax, retrainEvery int
	tenants                int
	format                 fixed.Format // gnn request operand width; zero = default
	seed                   int64
	faultCfg               *cluster.FaultConfig
}

// runOpenLoop drives the request-level front end once per policy on the
// sharded fabric, with the request trace held fixed across policies.
func runOpenLoop(policies []string, adm cluster.Admission, cfgs []cluster.NodeConfig,
	workers, hubs int, p openParams) {
	die := func(err error) {
		fmt.Fprintf(os.Stderr, "mlimp-serve: %v\n", err)
		os.Exit(1)
	}
	sys := sched.NewSystem(isa.Targets...)
	var basePred *predict.MLP
	if p.source == "gnn" {
		basePred = trainServePredictor(p.seed)
	}
	for _, name := range policies {
		pol, _ := cluster.PolicyByName(name)
		d := cluster.NewShardedDispatcher(pol, adm,
			cluster.ShardConfig{Workers: workers, Hubs: hubs}, cfgs...)
		if p.faultCfg != nil {
			if err := d.EnableFaults(*p.faultCfg); err != nil {
				die(err)
			}
		}
		rng := rand.New(rand.NewSource(p.seed))
		proc, err := buildArrival(p.arrival, p.reqGap, p.horizon)
		if err != nil {
			die(err)
		}
		arr := serve.Trace(rng, proc, 0, p.horizon)
		if len(arr) == 0 {
			die(fmt.Errorf("no arrivals: raise -horizon-ms or lower -req-gap-us"))
		}
		var (
			reqs   []*serve.Request
			build  func(*serve.Request) *sched.Job
			pred   *predict.MLP
			mirror *sched.System
		)
		if p.source == "gnn" {
			pred = basePred.Clone()
			src := serve.NewGNNSource(rng, serveDataset, serveDataset.InputFeat, pred, sys)
			src.Format = p.format
			reqs = src.Requests(rng, arr, p.slo)
			build = src.BuildJob
			mirror = sys
		} else {
			src := serve.NewAppSource(sys)
			reqs = src.Requests(rng, arr, p.slo)
			build = src.BuildJob
		}
		if p.tenants > 1 {
			serve.AssignTenants(reqs, p.tenants)
		}
		fe, err := serve.New(d, serve.Config{
			Requests: reqs, Budget: p.budget, BatchMax: p.batchMax,
			PredictorAdmission: p.predictorAdmission, BuildJob: build,
			Predictor: pred, Mirror: mirror,
			RetrainEvery: p.retrainEvery, Seed: p.seed,
		})
		if err != nil {
			die(err)
		}
		fmt.Printf("policy %s:\n%s\n\n", name, fe.Run())
	}
}
