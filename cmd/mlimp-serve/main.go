// Command mlimp-serve runs a multi-node MLIMP serving fleet under a
// Poisson-style open arrival stream: heterogeneous nodes (layer mixes
// and capacity scales) on one shared deterministic engine, fronted by a
// dispatcher with a pluggable load-balancing policy and admission
// control. Output is byte-for-byte reproducible for a fixed seed.
//
// Usage:
//
//	mlimp-serve                              # default 4-node fleet, all policies
//	mlimp-serve -policy predicted-cost       # one policy
//	mlimp-serve -nodes "sram,dram,reram/reram@0.5" -mean-gap-ms 2
//	mlimp-serve -j 4                         # sharded fabric, 4 engine workers
//
// With -j >= 1 the fleet runs on the sharded per-node engine fabric
// (internal/event/parsim): each node owns its own event engine and the
// dispatcher talks to them over latency-bearing mailboxes. The output
// is identical for every -j >= 1 — the worker count only changes how
// many shards advance concurrently. -j 0 (the default) keeps the
// legacy single-engine dispatcher.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"mlimp/internal/cluster"
	"mlimp/internal/event"
	"mlimp/internal/fault"
	"mlimp/internal/isa"
	"mlimp/internal/runtime"
	"mlimp/internal/workload"
)

// defaultFleet mirrors the bundled `cluster` experiment: a full node,
// two partial mixes, and a ReRAM-only straggler.
const defaultFleet = "sram,dram,reram/sram,dram/dram,reram/reram"

// parseFleet turns "sram,dram@0.5/reram" into node configs: nodes are
// slash-separated, layers comma-separated, with an optional @scale
// capacity multiplier per node.
func parseFleet(spec string) ([]cluster.NodeConfig, error) {
	var cfgs []cluster.NodeConfig
	for i, nodeSpec := range strings.Split(spec, "/") {
		scale := 0.0
		layerSpec := nodeSpec
		if at := strings.LastIndex(nodeSpec, "@"); at >= 0 {
			s, err := strconv.ParseFloat(nodeSpec[at+1:], 64)
			if err != nil || s <= 0 {
				return nil, fmt.Errorf("node %d: bad scale %q", i, nodeSpec[at+1:])
			}
			scale = s
			layerSpec = nodeSpec[:at]
		}
		var targets []isa.Target
		for _, name := range strings.Split(layerSpec, ",") {
			switch strings.ToLower(strings.TrimSpace(name)) {
			case "sram":
				targets = append(targets, isa.SRAM)
			case "dram":
				targets = append(targets, isa.DRAM)
			case "reram":
				targets = append(targets, isa.ReRAM)
			default:
				return nil, fmt.Errorf("node %d: unknown layer %q", i, name)
			}
		}
		cfgs = append(cfgs, cluster.NodeConfig{
			Name:    fmt.Sprintf("node%d(%s)", i, layerSpec),
			Targets: targets,
			Scale:   scale,
		})
	}
	return cfgs, nil
}

func main() {
	nodes := flag.String("nodes", defaultFleet,
		"fleet spec: slash-separated nodes, comma-separated layers, optional @scale")
	policy := flag.String("policy", "all",
		"roundrobin | least-outstanding | predicted-cost | all")
	batches := flag.Int("batches", 32, "number of arriving batches")
	batchSize := flag.Int("batch-size", 3, "jobs per batch (drawn from the Table II app suite)")
	meanGapMs := flag.Float64("mean-gap-ms", 5, "mean inter-arrival gap (exponential)")
	queueCap := flag.Int("queue-cap", cluster.DefaultQueueCap, "max outstanding batches per node")
	retries := flag.Int("retries", 4, "redispatch attempts before shedding")
	backoffMs := flag.Float64("backoff-ms", 0.5, "initial retry backoff, doubling per attempt")
	seed := flag.Int64("seed", 1, "random seed (arrivals and job mix)")
	faultSeed := flag.Int64("fault-seed", 0,
		"fault-plan seed; 0 disables the generated crash/array-fault schedule")
	arrayFaultRate := flag.Float64("array-fault-rate", 0.5,
		"expected array faults per node over the run (with -fault-seed)")
	crashRate := flag.Float64("crash-rate", 0.5,
		"expected crash windows per node over the run (with -fault-seed)")
	meanOutageMs := flag.Float64("mean-outage-ms", 20, "mean outage length for crashes and transient faults")
	execErrorProb := flag.Float64("exec-error-prob", 0, "per-execution batch failure probability")
	deadlineMs := flag.Float64("deadline-ms", 0, "per-batch completion deadline; 0 disables")
	redispatch := flag.Int("redispatch", cluster.DefaultMaxRedispatch,
		"failure re-dispatch budget per batch before dead-lettering")
	breakerK := flag.Int("breaker-k", cluster.DefaultBreakerK,
		"consecutive node failures that open its circuit breaker")
	breakerCooldownMs := flag.Float64("breaker-cooldown-ms", 0,
		"open-breaker cooldown before a half-open probe; 0 means the default")
	heartbeatMs := flag.Float64("heartbeat-ms", 0, "node heartbeat period; 0 means the default")
	jobs := flag.Int("j", 0,
		"engine workers for the sharded per-node fabric; 0 uses the legacy single-engine dispatcher")
	flag.Parse()

	cfgs, err := parseFleet(*nodes)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mlimp-serve: %v\n", err)
		os.Exit(1)
	}
	policies := cluster.PolicyNames()
	if *policy != "all" {
		if _, ok := cluster.PolicyByName(*policy); !ok {
			fmt.Fprintf(os.Stderr, "mlimp-serve: unknown policy %q (have %v)\n",
				*policy, cluster.PolicyNames())
			os.Exit(1)
		}
		policies = []string{*policy}
	}
	adm := cluster.Admission{
		QueueCap:   *queueCap,
		MaxRetries: *retries,
		Backoff:    event.Time(*backoffMs * float64(event.Millisecond)),
	}

	// Build the fault plan once so every policy faces the identical
	// failure schedule; a fault.Plan is read-only during a run.
	var plan *fault.Plan
	if *faultSeed != 0 {
		var names []string
		for _, c := range cfgs {
			names = append(names, c.Name)
		}
		gap := event.Time(*meanGapMs * float64(event.Millisecond))
		plan, err = fault.Generate(*faultSeed, fault.GenConfig{
			Nodes:              names,
			Horizon:            event.Time(*batches) * gap,
			ArrayFaultsPerNode: *arrayFaultRate,
			CrashesPerNode:     *crashRate,
			MeanOutage:         event.Time(*meanOutageMs * float64(event.Millisecond)),
			ExecErrorProb:      *execErrorProb,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "mlimp-serve: %v\n", err)
			os.Exit(1)
		}
	} else if *execErrorProb > 0 {
		plan = &fault.Plan{Seed: *seed, ExecErrorProb: *execErrorProb}
	}
	faulty := plan != nil || *deadlineMs > 0

	fmt.Printf("fleet: %d nodes (%s), %d batches x %d jobs, mean gap %.2fms, seed %d\n\n",
		len(cfgs), *nodes, *batches, *batchSize, *meanGapMs, *seed)
	if plan != nil {
		fmt.Println(plan)
	}
	for _, name := range policies {
		p, _ := cluster.PolicyByName(name)
		// Both fabrics satisfy the same Submit/EnableFaults/Run contract;
		// -j selects which one serves the fleet.
		var d interface {
			Submit(*runtime.Batch) error
			EnableFaults(cluster.FaultConfig) error
			Run() cluster.Summary
		}
		if *jobs >= 1 {
			d = cluster.NewShardedDispatcher(p, adm, cluster.ShardConfig{Workers: *jobs}, cfgs...)
		} else {
			d = cluster.NewDispatcher(p, adm, cfgs...)
		}
		if faulty {
			err := d.EnableFaults(cluster.FaultConfig{
				Plan:            plan,
				Deadline:        event.Time(*deadlineMs * float64(event.Millisecond)),
				MaxRedispatch:   *redispatch,
				BreakerK:        *breakerK,
				BreakerCooldown: event.Time(*breakerCooldownMs * float64(event.Millisecond)),
				Heartbeat:       event.Time(*heartbeatMs * float64(event.Millisecond)),
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "mlimp-serve: %v\n", err)
				os.Exit(1)
			}
		}
		// Re-seeding per policy holds the workload fixed, so summaries
		// compare policies and nothing else.
		rng := rand.New(rand.NewSource(*seed))
		gap := event.Time(*meanGapMs * float64(event.Millisecond))
		for i, at := range cluster.PoissonArrivals(rng, *batches, gap) {
			if err := d.Submit(&runtime.Batch{ID: i, Arrival: at,
				Jobs: workload.RandomJobs(rng, *batchSize, i*1000)}); err != nil {
				fmt.Fprintf(os.Stderr, "mlimp-serve: %v\n", err)
				os.Exit(1)
			}
		}
		fmt.Println(d.Run())
	}
}
