// Command mlimp-sim runs one MLIMP GNN simulation end to end: it builds
// a synthetic OGB stand-in workload, optionally trains the MLP
// performance predictor, schedules the kernel jobs across the configured
// in-memory layers, and reports makespan, per-kernel breakdown, energy,
// and the CPU/GPU baseline comparison.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"strings"

	"mlimp/internal/baseline"
	"mlimp/internal/core"
	"mlimp/internal/event"
	"mlimp/internal/gnn"
	"mlimp/internal/graph"
	"mlimp/internal/isa"
	"mlimp/internal/predict"
	"mlimp/internal/runtime"
	"mlimp/internal/sched"
	"mlimp/internal/tensor"
)

func main() {
	dataset := flag.String("dataset", "ogbl-collab", "Table I dataset stand-in")
	scheduler := flag.String("scheduler", "global", "ljf | naive-ljf | adaptive | global")
	predictor := flag.String("predictor", "oracle", "oracle | mlp")
	layers := flag.String("layers", "sram,dram,reram", "comma-separated memory layers")
	batches := flag.Int("batches", 2, "number of query batches")
	batchSize := flag.Int("batch-size", 16, "queries per batch")
	seed := flag.Int64("seed", 1, "random seed")
	intervalMs := flag.Float64("interval-ms", 0,
		"serve batches online at this arrival interval instead of one offline run")
	flag.Parse()

	d, ok := graph.DatasetByName(*dataset)
	if !ok {
		fmt.Fprintf(os.Stderr, "mlimp-sim: unknown dataset %q; available:\n", *dataset)
		for _, dd := range graph.Datasets {
			fmt.Fprintf(os.Stderr, "  %s\n", dd.Name)
		}
		os.Exit(1)
	}

	var targets []isa.Target
	for _, name := range strings.Split(*layers, ",") {
		switch strings.ToLower(strings.TrimSpace(name)) {
		case "sram":
			targets = append(targets, isa.SRAM)
		case "dram":
			targets = append(targets, isa.DRAM)
		case "reram":
			targets = append(targets, isa.ReRAM)
		default:
			fmt.Fprintf(os.Stderr, "mlimp-sim: unknown layer %q\n", name)
			os.Exit(1)
		}
	}

	var sc sched.Scheduler
	switch *scheduler {
	case "ljf":
		sc = sched.LJF{}
	case "naive-ljf":
		sc = sched.LJF{Strict: true}
	case "adaptive":
		sc = sched.NewAdaptive()
	case "global":
		sc = sched.NewGlobal()
	default:
		fmt.Fprintf(os.Stderr, "mlimp-sim: unknown scheduler %q\n", *scheduler)
		os.Exit(1)
	}

	rng := rand.New(rand.NewSource(*seed))
	model := gnn.NewGCN(rng, d.InputFeat, d.HiddenFeat, 3)
	w := gnn.BuildWorkload(rng, d, model, *batches, *batchSize)
	fmt.Printf("workload: %s stand-in (%d nodes, %d edges), %d batches x %d queries, %d subgraphs\n",
		d.Name, w.Graph.N, w.Graph.NumEdges(), *batches, *batchSize, len(w.Subgraphs()))

	sys := core.New(targets, core.WithScheduler(sc))

	var p predict.Predictor = predict.Oracle{}
	if *predictor == "mlp" {
		fmt.Println("training MLP performance predictor on the mother graph...")
		s := graph.NewSampler(rng, w.Graph, 2, 0)
		var training []*tensor.CSR
		for i := 0; i < 96; i++ {
			training = append(training, s.Sample(rng.Intn(w.Graph.N)).Adj)
		}
		p = predict.Train(rng, training, d.InputFeat, predict.DefaultTrainConfig())
	}

	// Online serving mode: the sampled batches arrive at a fixed
	// interval and queue at the system, reporting the operator-facing
	// latency distribution (p50/p90/p99 plus queue-delay percentiles)
	// instead of one offline makespan.
	if *intervalMs > 0 {
		rt, err := runtime.New(sys.Sys, sc)
		if err != nil {
			log.Fatal(err)
		}
		for i := range w.Batches {
			single := &gnn.Workload{
				Dataset: w.Dataset, Model: w.Model, Graph: w.Graph,
				Batches: w.Batches[i : i+1],
			}
			if err := rt.Submit(&runtime.Batch{
				ID:      i,
				Arrival: event.Time(float64(i) * *intervalMs * float64(event.Millisecond)),
				Jobs:    single.AllJobs(p, sys.Sys),
			}); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Printf("serving %d batches every %.2fms with the %s scheduler on %v\n",
			len(w.Batches), *intervalMs, sc.Name(), targets)
		fmt.Println(rt.Run())
		return
	}

	jobs := w.AllJobs(p, sys.Sys)
	fmt.Printf("scheduling %d kernel jobs with the %s scheduler on %v\n", len(jobs), sc.Name(), targets)
	rep := sys.Run(jobs)
	fmt.Println()
	fmt.Println("MLIMP:", rep)
	fmt.Printf("  per-layer placements: %v\n", rep.TargetJobs)
	fmt.Printf("  energy: %s\n", rep.Energy)
	fmt.Printf("  oracle throughput fraction: %.2f\n", sys.OracleFraction(jobs, rep))

	gpu := core.Baseline(baseline.TitanXP(), w)
	cpu := core.Baseline(baseline.XeonE5(), w)
	fmt.Printf("\nbaselines on the same workload:\n")
	fmt.Printf("  %-16s %8.3f ms  (%.1fx MLIMP)  %.3g J\n", gpu.Device.Name,
		gpu.Total.Millis(), float64(gpu.Total)/float64(rep.Makespan()), gpu.EnergyJ)
	fmt.Printf("  %-16s %8.3f ms  (%.1fx MLIMP)  %.3g J\n", cpu.Device.Name,
		cpu.Total.Millis(), float64(cpu.Total)/float64(rep.Makespan()), cpu.EnergyJ)
}
