// Quickstart: build an MLIMP system, describe a data-parallel kernel as
// a SIMD DFG, cross-compile it for every in-memory ISA, submit jobs, and
// read the report. This is the smallest end-to-end use of the library.
package main

import (
	"fmt"

	"mlimp/internal/core"
	"mlimp/internal/dfg"
	"mlimp/internal/fixed"
	"mlimp/internal/isa"
	memory "mlimp/internal/mem"
	"mlimp/internal/sched"
)

func main() {
	// 1. Describe a kernel once with the common programming frontend:
	//    a fused multiply-add over a vector, y = a*x + b.
	g := dfg.NewGraph("axpy")
	x := g.Input("x")
	a := g.ConstFloat(1.5)
	b := g.ConstFloat(-0.25)
	g.Output(g.Add(g.Mul(a, x), b))

	// 2. The frontend doubles as a functional reference: run it.
	out, err := g.Run(map[string][]fixed.Num{
		"x": {fixed.FromFloat(2), fixed.FromFloat(-4)},
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("axpy([2,-4]) = [%v, %v]\n", out[0][0].Float(), out[0][1].Float())

	// 3. Cross-compile for the three in-memory ISAs and inspect the
	//    static cycle analysis the scheduler consumes.
	progs, err := isa.CompileAll(g)
	if err != nil {
		panic(err)
	}
	for _, t := range isa.Targets {
		fmt.Println(progs[t])
	}

	// 4. Build the MLIMP system (all three Table III memories) and
	//    submit a batch of jobs with per-memory cost profiles.
	sys := core.New(nil)
	var jobs []*sched.Job
	for i := 0; i < 16; i++ {
		est := map[isa.Target]sched.Profile{}
		elements := int64(1 << 20)
		for _, t := range isa.Targets {
			cfg := memory.ConfigFor(t)
			lanes := int64(64) * int64(cfg.ALUsPerArray)
			waves := (elements + lanes - 1) / lanes
			est[t] = sched.Profile{
				UnitCycles: progs[t].Cycles * waves,
				RepUnit:    64,
				LoadBytes:  sched.EffectiveLoadBytes(t, elements*2),
				StoreBytes: sched.EffectiveLoadBytes(t, elements*2),
				Beta:       sched.DefaultBeta,
			}
		}
		jobs = append(jobs, &sched.Job{ID: i, Name: fmt.Sprintf("axpy-%d", i), Kind: "axpy", Est: est})
	}
	rep := sys.Run(jobs)
	fmt.Printf("\nscheduled %d jobs: %v\n", len(jobs), rep)
	fmt.Printf("placements: %v\n", rep.TargetJobs)
	fmt.Printf("energy: %s\n", rep.Energy)
}
