// Multiprogramming: launch the Table II application combinations on
// MLIMP and compare against single-layer in-memory systems — the
// Section V-C study. Each combination's jobs are cross-compiled for all
// three ISAs and the scheduler balances them across the layers.
package main

import (
	"fmt"
	"math"

	"mlimp/internal/apps"
	"mlimp/internal/event"
	"mlimp/internal/isa"
	"mlimp/internal/sched"
	"mlimp/internal/workload"
)

func main() {
	sys := sched.NewSystem(isa.Targets...)
	fmt.Println("application preferences (standalone, full layer):")
	for _, a := range apps.Suite() {
		fmt.Printf("  %-15s -> %s\n", a.Name, workload.PreferredTarget(sys, a))
	}

	fmt.Println("\ncombination  ALL(ms)   best-single(ms)  advantage")
	var advantages []float64
	for _, name := range workload.ComboNames() {
		jobs := workload.ComboJobs(name)
		all := sched.NewSystem(isa.Targets...)
		mAll := sched.NewGlobal().Schedule(all, jobs).Makespan

		best := event.Time(math.MaxInt64)
		var bestT isa.Target
		for _, tgt := range isa.Targets {
			single := sched.NewSystem(tgt)
			if m := sched.NewGlobal().Schedule(single, jobs).Makespan; m < best {
				best, bestT = m, tgt
			}
		}
		adv := float64(best) / float64(mAll)
		advantages = append(advantages, adv)
		fmt.Printf("  %-10s %8.3f  %8.3f (%s)  %5.2fx\n",
			name, mAll.Millis(), best.Millis(), bestT, adv)
	}
	geo := 1.0
	for _, a := range advantages {
		geo *= a
	}
	geo = math.Pow(geo, 1/float64(len(advantages)))
	fmt.Printf("\ngeomean advantage of MLIMP-ALL over the best single layer: %.2fx\n", geo)
}
