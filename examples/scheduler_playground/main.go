// Scheduler playground: build a custom synthetic job mix, run all four
// schedulers on it, and sweep predictor noise to see how each degrades —
// the Section V-B3 stress test as an interactive example.
package main

import (
	"fmt"
	"math"
	"math/rand"

	"mlimp/internal/event"
	"mlimp/internal/isa"
	"mlimp/internal/sched"
)

// makeJobs builds a Pareto-sized batch with capacity-proportional
// working sets, mixed per-memory preferences, and optional log-normal
// noise between the scheduler's estimates and the truth.
func makeJobs(rng *rand.Rand, sys *sched.System, n int, sigma float64) []*sched.Job {
	targets := sys.Targets()
	jobs := make([]*sched.Job, n)
	for i := range jobs {
		baseMs := math.Pow(rng.Float64(), -1/1.5) * 0.5
		pref := targets[rng.Intn(len(targets))]
		frac := 0.03 + rng.Float64()*0.1
		trueEst := map[isa.Target]sched.Profile{}
		noisy := map[isa.Target]sched.Profile{}
		for _, t := range targets {
			factor := 1 + rng.Float64()*3
			if t == pref {
				factor = 0.5 + rng.Float64()*0.5
			}
			ru := int(frac * float64(sys.Layers[t].Capacity()))
			if ru < 1 {
				ru = 1
			}
			cycles := int64(baseMs * factor * sys.Layers[t].Cfg.FreqMHz * 1000)
			p := sched.Profile{UnitCycles: cycles, RepUnit: ru, LoadBytes: 1 << 19, Beta: sched.DefaultBeta}
			trueEst[t] = p
			q := p
			if sigma > 0 {
				q.UnitCycles = int64(float64(cycles) * math.Exp(rng.NormFloat64()*sigma))
				if q.UnitCycles < 1 {
					q.UnitCycles = 1
				}
			}
			noisy[t] = q
		}
		j := &sched.Job{ID: i, Name: fmt.Sprintf("job%d", i), Kind: "synthetic", Est: noisy}
		te := trueEst
		j.TrueTime = func(s *sched.System, t isa.Target, arrays int) event.Time {
			p, ok := te[t]
			if !ok {
				return math.MaxInt64
			}
			exact := &sched.Job{ID: -1, Est: map[isa.Target]sched.Profile{t: p}}
			return s.ModelTime(exact, t, arrays)
		}
		jobs[i] = j
	}
	return jobs
}

func main() {
	rng := rand.New(rand.NewSource(42))
	sys := sched.NewSystem(isa.Targets...)
	schedulers := []sched.Scheduler{
		sched.LJF{Strict: true}, sched.LJF{}, sched.NewAdaptive(), sched.NewGlobal(),
	}

	fmt.Println("exact predictions, 48 Pareto jobs:")
	base := makeJobs(rng, sys, 48, 0)
	for _, sc := range schedulers {
		res := sc.Schedule(sys, base)
		fmt.Printf("  %-10s makespan %8.3f ms, throughput %.0f jobs/s\n",
			sc.Name(), res.Makespan.Millis(), res.Throughput())
	}

	fmt.Println("\npredictor-noise sweep (mean of 8 trials):")
	fmt.Println("  sigma   adaptive(ms)  global(ms)")
	for _, sigma := range []float64{0, 0.2, 0.39, 0.6, 0.8} {
		var sumA, sumG float64
		const trials = 8
		for i := 0; i < trials; i++ {
			jobs := makeJobs(rng, sys, 48, sigma)
			sumA += sched.NewAdaptive().Schedule(sys, jobs).Makespan.Millis()
			sumG += sched.NewGlobal().Schedule(sys, jobs).Makespan.Millis()
		}
		fmt.Printf("  %.2f    %9.3f     %9.3f\n", sigma, sumA/trials, sumG/trials)
	}
}
