// GNN inference end to end: sample k-hop subgraphs from a synthetic
// scale-free graph (the ogbl-collab stand-in), run the functional
// fixed-point GCN on one subgraph, then schedule the whole batch's
// SpMM/GEMM/Vadd kernels across the in-memory layers and compare with
// the GPU and CPU baselines — the Section V-B study in miniature.
package main

import (
	"fmt"
	"math/rand"

	"mlimp/internal/baseline"
	"mlimp/internal/core"
	"mlimp/internal/gnn"
	"mlimp/internal/graph"
	"mlimp/internal/predict"
	"mlimp/internal/tensor"
)

func main() {
	rng := rand.New(rand.NewSource(7))
	d, _ := graph.DatasetByName("ogbl-collab")
	model := gnn.NewGCN(rng, d.InputFeat, d.HiddenFeat, 3)
	w := gnn.BuildWorkload(rng, d, model, 2, 16)
	fmt.Printf("mother graph: %v; %d subgraphs sampled\n", w.Graph, len(w.Subgraphs()))

	// Functional reference inference on the first subgraph.
	sg := w.Subgraphs()[0]
	feats := tensor.RandomDense(rng, sg.NumNodes(), d.InputFeat, 1)
	emb := model.Infer(sg, feats)
	fmt.Printf("subgraph q%d: %d nodes, %d edges -> embeddings %dx%d (query row head: %.3f %.3f %.3f ...)\n",
		sg.Query, sg.NumNodes(), sg.NNZ(), emb.Rows, emb.Cols,
		emb.At(0, 0).Float(), emb.At(0, 1).Float(), emb.At(0, 2).Float())

	// Schedule the kernel job stream on MLIMP.
	sys := core.New(nil)
	jobs := w.AllJobs(predict.Oracle{}, sys.Sys)
	rep := sys.Run(jobs)
	fmt.Printf("\nMLIMP: %v\n  placements: %v\n", rep, rep.TargetJobs)

	// Baselines.
	for _, dev := range []baseline.Device{baseline.TitanXP(), baseline.XeonE5()} {
		b := core.Baseline(dev, w)
		fmt.Printf("%-14s: %8.3f ms (%.1fx slower), memcpy %.3f ms, energy %.3g J\n",
			dev.Name, b.Total.Millis(), float64(b.Total)/float64(rep.Makespan()),
			b.KindTime["memcpy"].Millis(), b.EnergyJ)
	}
	fmt.Printf("MLIMP energy: %.3g J\n", rep.Energy.TotalJ())
}
