// Cluster serving: run a heterogeneous multi-node MLIMP fleet under an
// open Poisson-style arrival stream and compare load-balancing
// policies. One shared deterministic event engine drives every node, so
// the whole fleet is byte-for-byte reproducible for a fixed seed.
package main

import (
	"fmt"
	"math/rand"

	"mlimp/internal/cluster"
	"mlimp/internal/event"
	"mlimp/internal/isa"
	"mlimp/internal/runtime"
	"mlimp/internal/workload"
)

func main() {
	// 1. Describe the fleet: four nodes with different computable-memory
	//    layer mixes. The last one only has 20 MHz ReRAM crossbars plus a
	//    halved capacity — a straggler a naive balancer keeps feeding.
	fleet := []cluster.NodeConfig{
		{Name: "full", Targets: isa.Targets},
		{Name: "sram-dram", Targets: []isa.Target{isa.SRAM, isa.DRAM}},
		{Name: "dram-reram", Targets: []isa.Target{isa.DRAM, isa.ReRAM}},
		{Name: "reram-half", Targets: []isa.Target{isa.ReRAM}, Scale: 0.5},
	}

	// 2. Admission control: at most 6 outstanding batches per node;
	//    arrivals that find every queue full are retried up to 4 times
	//    with doubling backoff in simulated time, then shed.
	adm := cluster.Admission{QueueCap: 6, MaxRetries: 4, Backoff: 250 * event.Microsecond}

	// 3. Drive the identical workload through each policy: batches of
	//    Table II app jobs arriving as a Poisson process (re-seeding the
	//    rng per policy holds arrivals and job mix fixed).
	for _, name := range cluster.PolicyNames() {
		policy, _ := cluster.PolicyByName(name)
		d := cluster.NewDispatcher(policy, adm, fleet...)
		rng := rand.New(rand.NewSource(42))
		for i, at := range cluster.PoissonArrivals(rng, 24, 2*event.Millisecond) {
			d.Submit(&runtime.Batch{
				ID:      i,
				Arrival: at,
				Jobs:    workload.RandomJobs(rng, 3, i*100),
			})
		}

		// 4. Run drains the shared engine and aggregates fleet metrics:
		//    latency and queue-delay percentiles, shed/retry counters,
		//    and per-node utilization.
		fmt.Println(d.Run())
	}
	fmt.Println("\npredicted-cost routes around the ReRAM straggler using the")
	fmt.Println("scheduler's own cost model, where roundrobin keeps feeding it.")
}
