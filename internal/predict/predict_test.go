package predict

import (
	"math"
	"math/rand"
	"testing"

	"mlimp/internal/graph"
	"mlimp/internal/isa"
	"mlimp/internal/tensor"
)

// sampleSubgraphs draws n subgraph adjacencies from the ogbl-collab
// stand-in mother graph.
func sampleSubgraphs(t *testing.T, seed int64, n int) []*tensor.CSR {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	d, ok := graph.DatasetByName("ogbl-collab")
	if !ok {
		t.Fatal("dataset missing")
	}
	g := d.Generate(rng)
	s := graph.NewSampler(rng, g, 2, 0)
	out := make([]*tensor.CSR, n)
	for i := range out {
		out[i] = s.Sample(rng.Intn(g.N)).Adj
	}
	return out
}

func TestOracleMatchesKernelModel(t *testing.T) {
	adjs := sampleSubgraphs(t, 1, 3)
	o := Oracle{}
	for _, adj := range adjs {
		for _, tgt := range isa.Targets {
			if c := o.UnitCycles(adj, 128, tgt); c <= 0 {
				t.Errorf("%s: oracle cycles = %d", tgt, c)
			}
		}
		// More work, more cycles: oracle is monotone in nnz.
	}
}

func TestMLPPredictorAccuracy(t *testing.T) {
	// Section III-E reports R^2 of 0.995 and RMSE of 22% of the mean
	// for ogbl-citation2 on SRAM. On the collab stand-in we require the
	// same character: R^2 >= 0.95 and relative RMSE <= 0.35.
	train := sampleSubgraphs(t, 2, 128)
	test := sampleSubgraphs(t, 3, 32)
	rng := rand.New(rand.NewSource(4))
	cfg := DefaultTrainConfig()
	cfg.Epochs = 600
	p := Train(rng, train, 128, cfg)
	for _, tgt := range isa.Targets {
		acc := Evaluate(p, test, 128, tgt)
		if acc.R2 < 0.9 {
			t.Errorf("%s: R2 = %.3f, want >= 0.9", tgt, acc.R2)
		}
		if acc.RMSEFrac > 0.4 {
			t.Errorf("%s: relative RMSE = %.3f, want <= 0.4", tgt, acc.RMSEFrac)
		}
	}
}

func TestHwRegressorLearns(t *testing.T) {
	train := sampleSubgraphs(t, 5, 96)
	test := sampleSubgraphs(t, 6, 24)
	rng := rand.New(rand.NewSource(7))
	p := Train(rng, train, 128, DefaultTrainConfig())
	var obs, pred []float64
	for _, adj := range test {
		obs = append(obs, float64(adj.NonZeroPRows(PRowWidth)))
		pred = append(pred, p.PredictHw(adj))
	}
	// Relative error of the H_w regressor should be modest.
	var rel float64
	for i := range obs {
		rel += math.Abs(pred[i]-obs[i]) / (obs[i] + 1)
	}
	rel /= float64(len(obs))
	if rel > 0.25 {
		t.Errorf("mean relative H_w error = %.3f", rel)
	}
}

func TestTrainPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Train(rand.New(rand.NewSource(1)), nil, 128, DefaultTrainConfig())
}

func TestNoisyPredictorPerturbs(t *testing.T) {
	adjs := sampleSubgraphs(t, 8, 4)
	base := Oracle{}
	noisy := &NoisyPredictor{Base: base, Sigma: 0.5, Rng: rand.New(rand.NewSource(9))}
	diff := false
	for _, adj := range adjs {
		b := base.UnitCycles(adj, 128, isa.SRAM)
		n := noisy.UnitCycles(adj, 128, isa.SRAM)
		if n != b {
			diff = true
		}
		if n <= 0 {
			t.Error("noisy prediction must stay positive")
		}
	}
	if !diff {
		t.Error("sigma=0.5 noise changed nothing")
	}
	// Sigma 0 is the identity.
	quiet := &NoisyPredictor{Base: base, Sigma: 0, Rng: rand.New(rand.NewSource(9))}
	for _, adj := range adjs {
		if quiet.UnitCycles(adj, 128, isa.SRAM) != base.UnitCycles(adj, 128, isa.SRAM) {
			t.Error("sigma=0 must be exact")
		}
	}
}

func TestMetricAndNaiveClassifier(t *testing.T) {
	train := sampleSubgraphs(t, 10, 64)
	test := sampleSubgraphs(t, 11, 32)
	n, trainAcc := FitNaive(train, 128)
	if trainAcc < 0.5 {
		t.Errorf("training accuracy = %.2f", trainAcc)
	}
	acc := NaiveAccuracy(n, test, 128)
	// Figure 10: the metric is correlated ("can be used to roughly
	// classify jobs") but imperfect ("a lot of borderline jobs that are
	// misclassified").
	if acc < 0.55 {
		t.Errorf("naive test accuracy = %.2f, should beat chance", acc)
	}
	if math.IsNaN(NaiveAccuracy(n, nil, 128)) == false {
		t.Error("empty test set should be NaN")
	}
}

func TestMetricDegenerate(t *testing.T) {
	empty := tensor.NewCSR(4, 4)
	if Metric(empty) != 0 {
		t.Error("empty adjacency metric should be 0")
	}
}

func TestMLPBeatsNaiveOnPreference(t *testing.T) {
	// The MLP must classify the SRAM-vs-ReRAM preference at least as
	// well as the single-metric threshold (the reason Section III-E
	// adopts it).
	train := sampleSubgraphs(t, 12, 96)
	test := sampleSubgraphs(t, 13, 48)
	rng := rand.New(rand.NewSource(14))
	p := Train(rng, train, 128, DefaultTrainConfig())
	naive, _ := FitNaive(train, 128)
	naiveAcc := NaiveAccuracy(naive, test, 128)
	correct := 0
	for _, adj := range test {
		tS := float64(p.UnitCycles(adj, 128, isa.SRAM)) / 2500
		tR := float64(p.UnitCycles(adj, 128, isa.ReRAM)) / 20
		if (tR < tS) == preferenceReRAM(adj, 128) {
			correct++
		}
	}
	mlpAcc := float64(correct) / float64(len(test))
	if mlpAcc+0.05 < naiveAcc {
		t.Errorf("MLP accuracy %.2f well below naive %.2f", mlpAcc, naiveAcc)
	}
}
