// Package predict implements MLIMP's performance predictor (Section
// III-E): two MLP regressors per mother graph — one learning H_w (the
// non-zero partial-row count a full input scan would otherwise be needed
// for) and one learning per-memory cycle counts from subgraph metadata —
// plus the naive nnz/H_w threshold classifier of Figure 10 and the
// oracle predictor used in the scheduler studies.
package predict

import (
	"math"
	"math/rand"
	"sort"

	"mlimp/internal/isa"
	"mlimp/internal/kernels"
	"mlimp/internal/mem"
	"mlimp/internal/mlp"
	"mlimp/internal/stats"
	"mlimp/internal/tensor"
)

// Predictor estimates the compute cycles of an SpMM job at unit
// allocation on each memory. Both the oracle and the MLP satisfy it, so
// schedulers are predictor-agnostic.
type Predictor interface {
	// UnitCycles returns t_cmpt(x, a_repunit) in target cycles for the
	// aggregation SpMM of subgraph adjacency adj with feature width f.
	UnitCycles(adj *tensor.CSR, f int, t isa.Target) int64
}

// Oracle returns the exact cycle counts from the kernel cost model — the
// "oracle predictor, which returns the accurate cycle counts of a job in
// each memory" of Section V-B3.
type Oracle struct{}

// UnitCycles implements Predictor exactly.
func (Oracle) UnitCycles(adj *tensor.CSR, f int, t isa.Target) int64 {
	est := kernels.SpMMUnit(mem.ConfigFor(t), adj, f, true)
	return est.Cycles * int64(est.Iterations)
}

// PRowWidth is the vertical strip width used for the H_w metric
// (the paper's H_128).
const PRowWidth = 128

// scale compresses log-space features into the tanh-friendly range.
const scale = 32.0

func lg(v float64) float64 { return math.Log2(v+1) / scale }

func hwFeatures(adj *tensor.CSR) []float64 {
	return []float64{lg(PRowWidth), lg(float64(adj.Rows)), lg(float64(adj.NNZ()))}
}

func cycleFeatures(adj *tensor.CSR, f int, hw float64) []float64 {
	return []float64{lg(float64(adj.Rows)), lg(float64(adj.NNZ())), lg(float64(f)), lg(hw)}
}

// MLP is the trained two-stage regressor. Train once per mother graph;
// the model is then reused for all queries ("the training cost is one
// time for the mother graph").
type MLP struct {
	hw     *mlp.Net
	cycles map[isa.Target]*mlp.Net
	f      int
}

// TrainConfig controls regressor training.
type TrainConfig struct {
	Epochs int
	LR     float64
}

// DefaultTrainConfig mirrors the paper's light-weight training setup.
func DefaultTrainConfig() TrainConfig { return TrainConfig{Epochs: 400, LR: 2e-3} }

// Train fits the H_w regressor and the per-memory cycle regressors on
// training subgraphs sampled from the mother graph. f is the feature
// width of the GNN layer the predictor serves.
func Train(rng *rand.Rand, training []*tensor.CSR, f int, cfg TrainConfig) *MLP {
	if len(training) == 0 {
		panic("predict: empty training set")
	}
	p := &MLP{f: f, cycles: make(map[isa.Target]*mlp.Net)}

	// Stage 1: H_w from (w, dim, nnz).
	var hwX, hwY [][]float64
	for _, adj := range training {
		hwX = append(hwX, hwFeatures(adj))
		hwY = append(hwY, []float64{lg(float64(adj.NonZeroPRows(PRowWidth)))})
	}
	p.hw = mlp.New(rng, 3, 16, 8, 1)
	p.hw.Fit(rng, hwX, hwY, cfg.Epochs, cfg.LR)

	// Stage 2: per-memory cycles from metadata plus the *predicted* H_w
	// (the paper trains the second regressor on stage-1 outputs so
	// inference never needs the true H_w).
	oracle := Oracle{}
	for _, t := range isa.Targets {
		var xs, ys [][]float64
		for _, adj := range training {
			hwPred := p.predictHw(adj)
			xs = append(xs, cycleFeatures(adj, f, hwPred))
			ys = append(ys, []float64{lg(float64(oracle.UnitCycles(adj, f, t)))})
		}
		net := mlp.New(rng, 4, 16, 8, 1)
		net.Fit(rng, xs, ys, cfg.Epochs, cfg.LR)
		p.cycles[t] = net
	}
	return p
}

// Clone returns an independent deep copy of the trained predictor.
// Serving experiments train one MLP per mother graph (the expensive
// step) and clone it per run, so each run's online retraining starts
// from identical weights without re-training.
func (p *MLP) Clone() *MLP {
	c := &MLP{hw: p.hw.Clone(), f: p.f, cycles: make(map[isa.Target]*mlp.Net, len(p.cycles))}
	for t, net := range p.cycles {
		c.cycles[t] = net.Clone()
	}
	return c
}

// Observation is one ground-truth sample harvested from serving: the
// implied unit-allocation cycle count of subgraph Adj's aggregation
// SpMM on Target, inverted from an observed execution span by
// sched.ObservedUnitCycles.
type Observation struct {
	Adj    *tensor.CSR
	F      int
	Target isa.Target
	Cycles int64
}

// Refit fine-tunes the per-memory cycle regressors on observed serving
// latencies — the online retraining loop of the serving front end. The
// H_w regressor is left alone (its ground truth is structural, not
// latency-derived); each observation updates only its target's net.
// A few epochs at a low learning rate suffice: Refit corrects drift,
// it does not retrain from scratch.
func (p *MLP) Refit(rng *rand.Rand, obs []Observation, epochs int, lr float64) {
	if len(obs) == 0 || epochs <= 0 {
		return
	}
	byTarget := make(map[isa.Target][]Observation)
	for _, o := range obs {
		byTarget[o.Target] = append(byTarget[o.Target], o)
	}
	for _, t := range isa.Targets { // canonical order: determinism
		os := byTarget[t]
		net := p.cycles[t]
		if len(os) == 0 || net == nil {
			continue
		}
		xs := make([][]float64, len(os))
		ys := make([][]float64, len(os))
		for i, o := range os {
			xs[i] = cycleFeatures(o.Adj, o.F, p.predictHw(o.Adj))
			ys[i] = []float64{lg(float64(o.Cycles))}
		}
		net.Fit(rng, xs, ys, epochs, lr)
	}
}

func (p *MLP) predictHw(adj *tensor.CSR) float64 {
	out := p.hw.Forward(hwFeatures(adj))[0]
	return math.Exp2(out*scale) - 1
}

// PredictHw returns the regressed H_w estimate (exported for the Figure
// 10 study).
func (p *MLP) PredictHw(adj *tensor.CSR) float64 { return p.predictHw(adj) }

// UnitCycles implements Predictor with the trained regressors.
func (p *MLP) UnitCycles(adj *tensor.CSR, f int, t isa.Target) int64 {
	hw := p.predictHw(adj)
	out := p.cycles[t].Forward(cycleFeatures(adj, f, hw))[0]
	c := math.Exp2(out*scale) - 1
	if c < 1 {
		c = 1
	}
	return int64(c)
}

// Accuracy summarises a predictor's fit on a test set.
type Accuracy struct {
	R2       float64
	RMSE     float64 // in cycles
	RMSEFrac float64 // RMSE / mean observed cycles
}

// Evaluate measures prediction quality against the oracle on test
// subgraphs for one target.
func Evaluate(p Predictor, test []*tensor.CSR, f int, t isa.Target) Accuracy {
	oracle := Oracle{}
	var obs, pred []float64
	for _, adj := range test {
		obs = append(obs, float64(oracle.UnitCycles(adj, f, t)))
		pred = append(pred, float64(p.UnitCycles(adj, f, t)))
	}
	rmse := stats.RMSE(obs, pred)
	return Accuracy{
		R2:       stats.R2(obs, pred),
		RMSE:     rmse,
		RMSEFrac: rmse / stats.Mean(obs),
	}
}

// NoisyPredictor wraps a predictor with multiplicative log-normal noise —
// the stress test of Section V-B3 ("added Gaussian noise of sigma...").
type NoisyPredictor struct {
	Base  Predictor
	Sigma float64
	Rng   *rand.Rand
}

// UnitCycles perturbs the base prediction by exp(N(0, sigma)).
func (n *NoisyPredictor) UnitCycles(adj *tensor.CSR, f int, t isa.Target) int64 {
	base := float64(n.Base.UnitCycles(adj, f, t))
	v := base * math.Exp(n.Rng.NormFloat64()*n.Sigma)
	if v < 1 {
		v = 1
	}
	return int64(v)
}

// Naive is the Figure 10 baseline: classify the preferred memory from
// the single metric nnz(x)/H_w(x) against a threshold.
type Naive struct {
	Threshold float64
}

// Metric returns nnz(x)/H_w(x), the average job size per allocation.
func Metric(adj *tensor.CSR) float64 {
	h := adj.NonZeroPRows(PRowWidth)
	if h == 0 {
		return 0
	}
	return float64(adj.NNZ()) / float64(h)
}

// preferenceReRAM reports whether ReRAM beats SRAM in wall-clock time
// for the job (the t_SRAM/t_ReRAM > 1 side of Figure 10).
func preferenceReRAM(adj *tensor.CSR, f int) bool {
	o := Oracle{}
	tS := float64(o.UnitCycles(adj, f, isa.SRAM)) / mem.SRAMConfig.FreqMHz
	tR := float64(o.UnitCycles(adj, f, isa.ReRAM)) / mem.ReRAMConfig.FreqMHz
	return tR < tS
}

// FitNaive chooses the threshold maximising training accuracy and
// returns the classifier with its training accuracy.
func FitNaive(training []*tensor.CSR, f int) (Naive, float64) {
	type point struct {
		metric float64
		reram  bool
	}
	pts := make([]point, 0, len(training))
	for _, adj := range training {
		pts = append(pts, point{Metric(adj), preferenceReRAM(adj, f)})
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].metric < pts[j].metric })
	best, bestAcc := Naive{}, -1.0
	// Candidate thresholds between consecutive metric values.
	for i := 0; i <= len(pts); i++ {
		var th float64
		switch {
		case i == 0:
			th = pts[0].metric - 1
		case i == len(pts):
			th = pts[len(pts)-1].metric + 1
		default:
			th = (pts[i-1].metric + pts[i].metric) / 2
		}
		correct := 0
		for _, p := range pts {
			if (p.metric > th) == p.reram {
				correct++
			}
		}
		if acc := float64(correct) / float64(len(pts)); acc > bestAcc {
			bestAcc = acc
			best = Naive{Threshold: th}
		}
	}
	return best, bestAcc
}

// PrefersReRAM classifies one job.
func (n Naive) PrefersReRAM(adj *tensor.CSR) bool { return Metric(adj) > n.Threshold }

// NaiveAccuracy measures the classifier on a test set against the true
// preference.
func NaiveAccuracy(n Naive, test []*tensor.CSR, f int) float64 {
	if len(test) == 0 {
		return math.NaN()
	}
	correct := 0
	for _, adj := range test {
		if n.PrefersReRAM(adj) == preferenceReRAM(adj, f) {
			correct++
		}
	}
	return float64(correct) / float64(len(test))
}
