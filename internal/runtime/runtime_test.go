package runtime

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"mlimp/internal/event"
	"mlimp/internal/isa"
	"mlimp/internal/sched"
)

func mkJob(id int, ms float64) *sched.Job {
	est := map[isa.Target]sched.Profile{}
	for _, t := range isa.Targets {
		freq := map[isa.Target]float64{isa.SRAM: 2500, isa.DRAM: 300, isa.ReRAM: 20}[t]
		est[t] = sched.Profile{
			UnitCycles: int64(ms * freq * 1000),
			RepUnit:    8, LoadBytes: 1 << 16, Beta: sched.DefaultBeta,
		}
	}
	return &sched.Job{ID: id, Name: "rt", Kind: "rt", Est: est}
}

func mkBatch(id int, at event.Time, n int, rng *rand.Rand) *Batch {
	jobs := make([]*sched.Job, n)
	for i := range jobs {
		jobs[i] = mkJob(id*100+i, 0.05+rng.Float64()*0.2)
	}
	return &Batch{ID: id, Arrival: at, Jobs: jobs}
}

func mustNew(t *testing.T, sys *sched.System, sc sched.Scheduler) *Runtime {
	t.Helper()
	r, err := New(sys, sc)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func mustNewOn(t *testing.T, eng *event.Engine, sys *sched.System, sc sched.Scheduler) *Runtime {
	t.Helper()
	r, err := NewOn(eng, sys, sc)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func mustSubmit(t *testing.T, r *Runtime, b *Batch) {
	t.Helper()
	if err := r.Submit(b); err != nil {
		t.Fatal(err)
	}
}

func TestSingleBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	r := mustNew(t, sched.NewSystem(isa.Targets...), sched.NewGlobal())
	mustSubmit(t, r, mkBatch(0, 0, 8, rng))
	s := r.Run()
	if s.Batches != 1 {
		t.Fatalf("batches = %d", s.Batches)
	}
	if s.Results[0].QueueDelay() != 0 {
		t.Error("first batch should not queue")
	}
	if s.Makespan <= 0 || s.MeanLatMs <= 0 {
		t.Errorf("summary = %v", s)
	}
	if !strings.Contains(s.String(), "batches=1") {
		t.Errorf("render = %q", s)
	}
}

func TestBackToBackArrivalsQueue(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	r := mustNew(t, sched.NewSystem(isa.Targets...), sched.NewGlobal())
	// Three batches arriving at t=0: the second and third must wait.
	for i := 0; i < 3; i++ {
		mustSubmit(t, r, mkBatch(i, 0, 8, rng))
	}
	s := r.Run()
	if s.Batches != 3 {
		t.Fatalf("batches = %d", s.Batches)
	}
	if s.Results[0].QueueDelay() != 0 {
		t.Error("head batch should start immediately")
	}
	if s.Results[1].QueueDelay() <= 0 || s.Results[2].QueueDelay() <= s.Results[1].QueueDelay() {
		t.Errorf("queue delays not increasing: %v, %v",
			s.Results[1].QueueDelay(), s.Results[2].QueueDelay())
	}
	// FIFO order.
	for i, b := range s.Results {
		if b.ID != i {
			t.Errorf("completion order broke FIFO: %v", s.Results)
		}
	}
}

func TestSparseArrivalsDoNotQueue(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	r := mustNew(t, sched.NewSystem(isa.Targets...), sched.NewGlobal())
	// Arrivals a full second apart cannot contend.
	for i := 0; i < 3; i++ {
		mustSubmit(t, r, mkBatch(i, event.Time(i)*event.Second, 4, rng))
	}
	s := r.Run()
	if s.MeanQueMs != 0 {
		t.Errorf("sparse arrivals queued: %v", s.MeanQueMs)
	}
}

func TestLatencyGrowsWithLoad(t *testing.T) {
	run := func(gapMs float64) float64 {
		rng := rand.New(rand.NewSource(4))
		r := mustNew(t, sched.NewSystem(isa.Targets...), sched.NewGlobal())
		for i := 0; i < 8; i++ {
			at := event.Time(float64(i) * gapMs * float64(event.Millisecond))
			mustSubmit(t, r, mkBatch(i, at, 8, rng))
		}
		return r.Run().P99LatMs
	}
	relaxed := run(50)
	loaded := run(0.01)
	if loaded <= relaxed {
		t.Errorf("p99 under load (%v) should exceed relaxed (%v)", loaded, relaxed)
	}
}

// TestErrors: API misuse is rejected with errors, not panics — in a
// serving fabric these come from remote callers and must be survivable.
func TestErrors(t *testing.T) {
	if _, err := New(nil, sched.NewGlobal()); err == nil {
		t.Error("nil system accepted")
	}
	if _, err := New(sched.NewSystem(isa.SRAM), nil); err == nil {
		t.Error("nil scheduler accepted")
	}
	if _, err := NewOn(nil, sched.NewSystem(isa.SRAM), sched.NewGlobal()); err == nil {
		t.Error("nil engine accepted")
	}
	r := mustNew(t, sched.NewSystem(isa.SRAM), sched.NewGlobal())
	if err := r.Enqueue(&Batch{ID: 0}); !errors.Is(err, ErrEmptyBatch) {
		t.Errorf("empty Enqueue: err = %v, want ErrEmptyBatch", err)
	}
	if err := r.Submit(&Batch{ID: 0, Arrival: 0}); !errors.Is(err, ErrEmptyBatch) {
		t.Errorf("empty Submit: err = %v, want ErrEmptyBatch", err)
	}
	if err := r.Submit(nil); !errors.Is(err, ErrNilBatch) {
		t.Errorf("nil Submit: err = %v, want ErrNilBatch", err)
	}
	if s := r.Run(); s.Batches != 0 {
		t.Errorf("rejected batches ran: %d", s.Batches)
	}
}

func TestInjectedEngine(t *testing.T) {
	// Two runtimes on one shared engine advance in a single timeline:
	// the engine owner runs it once and reads both via Summarize.
	rng := rand.New(rand.NewSource(6))
	eng := &event.Engine{}
	a := mustNewOn(t, eng, sched.NewSystem(isa.Targets...), sched.NewGlobal())
	b := mustNewOn(t, eng, sched.NewSystem(isa.SRAM, isa.DRAM), sched.NewGlobal())
	if a.Engine() != eng || b.Engine() != eng {
		t.Fatal("injected engine not retained")
	}
	mustSubmit(t, a, mkBatch(0, 0, 4, rng))
	mustSubmit(t, b, mkBatch(1, event.Microsecond, 4, rng))
	end := eng.Run()
	sa, sb := a.Summarize(), b.Summarize()
	if sa.Batches != 1 || sb.Batches != 1 {
		t.Fatalf("batches = %d, %d", sa.Batches, sb.Batches)
	}
	if sa.Makespan > end || sb.Makespan > end {
		t.Errorf("per-runtime makespans %v, %v exceed shared end %v", sa.Makespan, sb.Makespan, end)
	}
	// New must still give every standalone runtime a private engine.
	if mustNew(t, sched.NewSystem(isa.SRAM), sched.NewGlobal()).Engine() == eng {
		t.Error("New shared an engine it should own")
	}
}

func TestZeroBatchRun(t *testing.T) {
	r := mustNew(t, sched.NewSystem(isa.Targets...), sched.NewGlobal())
	s := r.Run()
	if s.Batches != 0 || s.Makespan != 0 || s.MeanLatMs != 0 ||
		s.P50LatMs != 0 || s.P90LatMs != 0 || s.P99LatMs != 0 ||
		s.P50QueMs != 0 || s.P99QueMs != 0 {
		t.Errorf("zero-batch summary not zero: %v", s)
	}
	if !strings.Contains(s.String(), "batches=0") {
		t.Errorf("render = %q", s)
	}
}

func TestHooksFire(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	r := mustNew(t, sched.NewSystem(isa.Targets...), sched.NewGlobal())
	var starts []event.Time
	var completes []BatchResult
	r.OnStart = func(b *Batch, at event.Time) {
		if r.Outstanding() == 0 {
			t.Error("OnStart fired with nothing outstanding")
		}
		starts = append(starts, at)
	}
	r.OnComplete = func(res BatchResult, err error) {
		if err != nil {
			t.Errorf("unexpected exec error: %v", err)
		}
		completes = append(completes, res)
	}
	for i := 0; i < 3; i++ {
		mustSubmit(t, r, mkBatch(i, 0, 4, rng))
	}
	s := r.Run()
	if len(starts) != 3 || len(completes) != 3 {
		t.Fatalf("hooks fired %d/%d times, want 3/3", len(starts), len(completes))
	}
	for i, res := range completes {
		if res.Start != starts[i] {
			t.Errorf("batch %d: OnStart at %v but result started %v", i, starts[i], res.Start)
		}
		if res.Start != s.Results[i].Start || res.Completed != s.Results[i].Completed {
			t.Errorf("batch %d: hook result differs from summary", i)
		}
	}
	if r.Outstanding() != 0 {
		t.Errorf("outstanding after drain = %d", r.Outstanding())
	}
}

// TestExecError: a failed execution occupies the system but leaves no
// result — the error goes to OnComplete for the fabric layer to handle.
func TestExecError(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	r := mustNew(t, sched.NewSystem(isa.Targets...), sched.NewGlobal())
	boom := errors.New("boom")
	r.ExecError = func(b *Batch) error {
		if b.ID == 1 {
			return boom
		}
		return nil
	}
	var failed []int
	r.OnComplete = func(res BatchResult, err error) {
		if err != nil {
			failed = append(failed, res.ID)
		}
	}
	for i := 0; i < 3; i++ {
		mustSubmit(t, r, mkBatch(i, 0, 4, rng))
	}
	s := r.Run()
	if s.Batches != 2 {
		t.Fatalf("recorded batches = %d, want 2 (one failed)", s.Batches)
	}
	for _, res := range s.Results {
		if res.ID == 1 {
			t.Error("failed batch recorded a result")
		}
	}
	if len(failed) != 1 || failed[0] != 1 {
		t.Errorf("failed IDs = %v, want [1]", failed)
	}
}

// TestHaltResume: a crash mid-batch loses the partial work; the batch
// restarts from scratch after Resume and everything still completes.
func TestHaltResume(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	baseline := func() event.Time {
		r := mustNew(t, sched.NewSystem(isa.Targets...), sched.NewGlobal())
		mustSubmit(t, r, mkBatch(0, 0, 6, rand.New(rand.NewSource(11))))
		return r.Run().Makespan
	}()

	eng := &event.Engine{}
	r := mustNewOn(t, eng, sched.NewSystem(isa.Targets...), sched.NewGlobal())
	mustSubmit(t, r, mkBatch(0, 0, 6, rng))
	outage := baseline // halt half-way, stay down for one whole service time
	eng.After(baseline/2, func() {
		r.Halt()
		if !r.Down() {
			t.Error("Down() false after Halt")
		}
		if r.Outstanding() != 1 {
			t.Errorf("outstanding after halt = %d, want 1 (requeued)", r.Outstanding())
		}
		eng.After(outage, r.Resume)
	})
	eng.Run()
	s := r.Summarize()
	if s.Batches != 1 {
		t.Fatalf("batches = %d, want 1", s.Batches)
	}
	// The restart discards the pre-crash half: completion lands at
	// halt + outage + full service, well past the no-fault makespan.
	if s.Makespan <= baseline+outage {
		t.Errorf("makespan %v too early for a restarted batch (baseline %v, outage %v)",
			s.Makespan, baseline, outage)
	}
	if r.Down() {
		t.Error("still down after Resume")
	}
}

// TestEvictAndAbort: eviction pulls queued and running work for
// re-dispatch elsewhere; abort kills one batch by ID.
func TestEvictAndAbort(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	eng := &event.Engine{}
	r := mustNewOn(t, eng, sched.NewSystem(isa.Targets...), sched.NewGlobal())
	for i := 0; i < 3; i++ {
		mustSubmit(t, r, mkBatch(i, 0, 6, rng))
	}
	eng.After(event.Nanosecond, func() {
		if got := r.Abort(2); got == nil || got.ID != 2 {
			t.Errorf("Abort(2) = %v", got)
		}
		if got := r.Abort(99); got != nil {
			t.Errorf("Abort(99) = %v, want nil", got)
		}
		evicted := r.Evict()
		if len(evicted) != 2 || evicted[0].ID != 0 || evicted[1].ID != 1 {
			t.Fatalf("evicted = %v, want running batch 0 then queued 1", evicted)
		}
		if r.Outstanding() != 0 {
			t.Errorf("outstanding after evict = %d", r.Outstanding())
		}
	})
	eng.Run()
	if s := r.Summarize(); s.Batches != 0 {
		t.Errorf("evicted/aborted batches still completed: %d", s.Batches)
	}
}

// TestDeterministicReplay checks the full summary — every percentile,
// not just the makespan — is identical across two runs with the same
// seed, on both the owned- and injected-engine paths.
func TestDeterministicReplay(t *testing.T) {
	run := func() string {
		rng := rand.New(rand.NewSource(9))
		eng := &event.Engine{}
		r := mustNewOn(t, eng, sched.NewSystem(isa.Targets...), sched.NewGlobal())
		for i := 0; i < 6; i++ {
			mustSubmit(t, r, mkBatch(i, event.Time(i)*100*event.Microsecond, 5, rng))
		}
		eng.Run()
		return r.Summarize().String()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("replay diverged:\n%s\nvs\n%s", a, b)
	}
}

func TestDeterministic(t *testing.T) {
	run := func() event.Time {
		rng := rand.New(rand.NewSource(5))
		r := mustNew(t, sched.NewSystem(isa.Targets...), sched.NewAdaptive())
		for i := 0; i < 5; i++ {
			mustSubmit(t, r, mkBatch(i, event.Time(i)*event.Millisecond, 6, rng))
		}
		return r.Run().Makespan
	}
	if a, b := run(), run(); a != b {
		t.Errorf("nondeterministic runtime: %v vs %v", a, b)
	}
}
