package runtime

import (
	"math/rand"
	"strings"
	"testing"

	"mlimp/internal/event"
	"mlimp/internal/isa"
	"mlimp/internal/sched"
)

func mkJob(id int, ms float64) *sched.Job {
	est := map[isa.Target]sched.Profile{}
	for _, t := range isa.Targets {
		freq := map[isa.Target]float64{isa.SRAM: 2500, isa.DRAM: 300, isa.ReRAM: 20}[t]
		est[t] = sched.Profile{
			UnitCycles: int64(ms * freq * 1000),
			RepUnit:    8, LoadBytes: 1 << 16, Beta: sched.DefaultBeta,
		}
	}
	return &sched.Job{ID: id, Name: "rt", Kind: "rt", Est: est}
}

func mkBatch(id int, at event.Time, n int, rng *rand.Rand) *Batch {
	jobs := make([]*sched.Job, n)
	for i := range jobs {
		jobs[i] = mkJob(id*100+i, 0.05+rng.Float64()*0.2)
	}
	return &Batch{ID: id, Arrival: at, Jobs: jobs}
}

func TestSingleBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	r := New(sched.NewSystem(isa.Targets...), sched.NewGlobal())
	r.Submit(mkBatch(0, 0, 8, rng))
	s := r.Run()
	if s.Batches != 1 {
		t.Fatalf("batches = %d", s.Batches)
	}
	if s.Results[0].QueueDelay() != 0 {
		t.Error("first batch should not queue")
	}
	if s.Makespan <= 0 || s.MeanLatMs <= 0 {
		t.Errorf("summary = %v", s)
	}
	if !strings.Contains(s.String(), "batches=1") {
		t.Errorf("render = %q", s)
	}
}

func TestBackToBackArrivalsQueue(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	r := New(sched.NewSystem(isa.Targets...), sched.NewGlobal())
	// Three batches arriving at t=0: the second and third must wait.
	for i := 0; i < 3; i++ {
		r.Submit(mkBatch(i, 0, 8, rng))
	}
	s := r.Run()
	if s.Batches != 3 {
		t.Fatalf("batches = %d", s.Batches)
	}
	if s.Results[0].QueueDelay() != 0 {
		t.Error("head batch should start immediately")
	}
	if s.Results[1].QueueDelay() <= 0 || s.Results[2].QueueDelay() <= s.Results[1].QueueDelay() {
		t.Errorf("queue delays not increasing: %v, %v",
			s.Results[1].QueueDelay(), s.Results[2].QueueDelay())
	}
	// FIFO order.
	for i, b := range s.Results {
		if b.ID != i {
			t.Errorf("completion order broke FIFO: %v", s.Results)
		}
	}
}

func TestSparseArrivalsDoNotQueue(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	r := New(sched.NewSystem(isa.Targets...), sched.NewGlobal())
	// Arrivals a full second apart cannot contend.
	for i := 0; i < 3; i++ {
		r.Submit(mkBatch(i, event.Time(i)*event.Second, 4, rng))
	}
	s := r.Run()
	if s.MeanQueMs != 0 {
		t.Errorf("sparse arrivals queued: %v", s.MeanQueMs)
	}
}

func TestLatencyGrowsWithLoad(t *testing.T) {
	run := func(gapMs float64) float64 {
		rng := rand.New(rand.NewSource(4))
		r := New(sched.NewSystem(isa.Targets...), sched.NewGlobal())
		for i := 0; i < 8; i++ {
			at := event.Time(float64(i) * gapMs * float64(event.Millisecond))
			r.Submit(mkBatch(i, at, 8, rng))
		}
		return r.Run().P99LatMs
	}
	relaxed := run(50)
	loaded := run(0.01)
	if loaded <= relaxed {
		t.Errorf("p99 under load (%v) should exceed relaxed (%v)", loaded, relaxed)
	}
}

func TestPanics(t *testing.T) {
	for i, f := range []func(){
		func() { New(nil, sched.NewGlobal()) },
		func() { New(sched.NewSystem(isa.SRAM), nil) },
		func() { NewOn(nil, sched.NewSystem(isa.SRAM), sched.NewGlobal()) },
		func() {
			r := New(sched.NewSystem(isa.SRAM), sched.NewGlobal())
			r.Enqueue(&Batch{ID: 0})
		},
		func() {
			r := New(sched.NewSystem(isa.SRAM), sched.NewGlobal())
			r.Submit(&Batch{ID: 0, Arrival: 0})
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestInjectedEngine(t *testing.T) {
	// Two runtimes on one shared engine advance in a single timeline:
	// the engine owner runs it once and reads both via Summarize.
	rng := rand.New(rand.NewSource(6))
	eng := &event.Engine{}
	a := NewOn(eng, sched.NewSystem(isa.Targets...), sched.NewGlobal())
	b := NewOn(eng, sched.NewSystem(isa.SRAM, isa.DRAM), sched.NewGlobal())
	if a.Engine() != eng || b.Engine() != eng {
		t.Fatal("injected engine not retained")
	}
	a.Submit(mkBatch(0, 0, 4, rng))
	b.Submit(mkBatch(1, event.Microsecond, 4, rng))
	end := eng.Run()
	sa, sb := a.Summarize(), b.Summarize()
	if sa.Batches != 1 || sb.Batches != 1 {
		t.Fatalf("batches = %d, %d", sa.Batches, sb.Batches)
	}
	if sa.Makespan > end || sb.Makespan > end {
		t.Errorf("per-runtime makespans %v, %v exceed shared end %v", sa.Makespan, sb.Makespan, end)
	}
	// New must still give every standalone runtime a private engine.
	if New(sched.NewSystem(isa.SRAM), sched.NewGlobal()).Engine() == eng {
		t.Error("New shared an engine it should own")
	}
}

func TestZeroBatchRun(t *testing.T) {
	r := New(sched.NewSystem(isa.Targets...), sched.NewGlobal())
	s := r.Run()
	if s.Batches != 0 || s.Makespan != 0 || s.MeanLatMs != 0 ||
		s.P50LatMs != 0 || s.P90LatMs != 0 || s.P99LatMs != 0 ||
		s.P50QueMs != 0 || s.P99QueMs != 0 {
		t.Errorf("zero-batch summary not zero: %v", s)
	}
	if !strings.Contains(s.String(), "batches=0") {
		t.Errorf("render = %q", s)
	}
}

func TestHooksFire(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	r := New(sched.NewSystem(isa.Targets...), sched.NewGlobal())
	var starts []event.Time
	var completes []BatchResult
	r.OnStart = func(b *Batch, at event.Time) {
		if r.Outstanding() == 0 {
			t.Error("OnStart fired with nothing outstanding")
		}
		starts = append(starts, at)
	}
	r.OnComplete = func(res BatchResult) { completes = append(completes, res) }
	for i := 0; i < 3; i++ {
		r.Submit(mkBatch(i, 0, 4, rng))
	}
	s := r.Run()
	if len(starts) != 3 || len(completes) != 3 {
		t.Fatalf("hooks fired %d/%d times, want 3/3", len(starts), len(completes))
	}
	for i, res := range completes {
		if res.Start != starts[i] {
			t.Errorf("batch %d: OnStart at %v but result started %v", i, starts[i], res.Start)
		}
		if res.Start != s.Results[i].Start || res.Completed != s.Results[i].Completed {
			t.Errorf("batch %d: hook result differs from summary", i)
		}
	}
	if r.Outstanding() != 0 {
		t.Errorf("outstanding after drain = %d", r.Outstanding())
	}
}

// TestDeterministicReplay checks the full summary — every percentile,
// not just the makespan — is identical across two runs with the same
// seed, on both the owned- and injected-engine paths.
func TestDeterministicReplay(t *testing.T) {
	run := func() string {
		rng := rand.New(rand.NewSource(9))
		eng := &event.Engine{}
		r := NewOn(eng, sched.NewSystem(isa.Targets...), sched.NewGlobal())
		for i := 0; i < 6; i++ {
			r.Submit(mkBatch(i, event.Time(i)*100*event.Microsecond, 5, rng))
		}
		eng.Run()
		return r.Summarize().String()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("replay diverged:\n%s\nvs\n%s", a, b)
	}
}

func TestDeterministic(t *testing.T) {
	run := func() event.Time {
		rng := rand.New(rand.NewSource(5))
		r := New(sched.NewSystem(isa.Targets...), sched.NewAdaptive())
		for i := 0; i < 5; i++ {
			r.Submit(mkBatch(i, event.Time(i)*event.Millisecond, 6, rng))
		}
		return r.Run().Makespan
	}
	if a, b := run(), run(); a != b {
		t.Errorf("nondeterministic runtime: %v vs %v", a, b)
	}
}
