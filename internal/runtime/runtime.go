// Package runtime is the online execution layer of MLIMP: batches of
// jobs arrive over simulated time (the paper's runtime flow — "a call to
// a function that has been explicitly marked for in-memory processing
// triggers the MLIMP scheduler", Section III-A), queue at the system,
// and are scheduled batch by batch. Built on the deterministic event
// engine, it turns the batch-level scheduler into a serving simulation
// with arrival-to-completion latency distributions — the view an
// inference service operator cares about.
//
// A Runtime either owns a private engine (New, the standalone case) or
// runs on an injected shared engine (NewOn) so that several runtimes —
// the nodes of an internal/cluster fleet — advance in one simulated
// timeline.
//
// Misuse of the public API (nil dependencies, empty batches) returns
// errors rather than panicking: in a serving fabric these arrive from
// remote callers and must be rejectable, not fatal. Panics remain only
// for internal invariants that indicate a bug in this package.
package runtime

import (
	"errors"
	"fmt"

	"mlimp/internal/event"
	"mlimp/internal/sched"
	"mlimp/internal/stats"
)

// ErrEmptyBatch rejects a batch with no jobs.
var ErrEmptyBatch = errors.New("runtime: empty batch")

// ErrNilBatch rejects a nil batch.
var ErrNilBatch = errors.New("runtime: nil batch")

// Batch is one arriving unit of work. Tenant, when non-empty, names
// the tenant the batch belongs to; the runtime stamps it onto the
// batch's jobs before scheduling so the scheduler can pack tenants
// onto disjoint array sets.
type Batch struct {
	ID      int
	Arrival event.Time
	Tenant  string
	Jobs    []*sched.Job
}

// BatchResult records one batch's life cycle.
type BatchResult struct {
	ID        int
	Arrival   event.Time
	Tenant    string
	Start     event.Time // when the scheduler picked it up
	Completed event.Time
	// Assignments is the per-job placement of the batch's schedule
	// (target, allocation, and start/end offsets relative to Start).
	// Populated only when the runtime's KeepAssignments is set: the
	// serving front end inverts these observed spans into implied unit
	// cycles for online predictor retraining.
	Assignments []sched.Assignment
}

// Latency is the arrival-to-completion time.
func (b BatchResult) Latency() event.Time { return b.Completed - b.Arrival }

// QueueDelay is the time spent waiting behind earlier batches.
func (b BatchResult) QueueDelay() event.Time { return b.Start - b.Arrival }

// Runtime executes an arrival stream on one MLIMP system.
type Runtime struct {
	Sys       *sched.System
	Scheduler sched.Scheduler

	// OnStart, if set, fires when a batch leaves the queue and its jobs
	// begin executing. OnComplete fires when the batch finishes — with a
	// non-nil error when ExecError failed the batch, in which case the
	// result is not recorded. Both run inside the event engine, at the
	// simulated instant they describe — the hooks fabric layers
	// (internal/cluster) use to track occupancy without owning the run
	// loop.
	OnStart    func(b *Batch, at event.Time)
	OnComplete func(res BatchResult, err error)

	// KeepAssignments retains each batch's per-job schedule assignments
	// on its BatchResult, giving observers the per-job spans and targets
	// the batch actually executed with. Off by default: the fleet
	// benchmarks complete thousands of batches whose assignments nobody
	// reads.
	KeepAssignments bool

	// ExecError, if set, is consulted at each batch's completion instant.
	// A non-nil error marks the execution as failed: the batch's result
	// is discarded (latency stats stay clean) and the error is handed to
	// OnComplete for the fabric layer to retry, re-dispatch, or
	// dead-letter. This is the hook internal/fault plans plug into.
	ExecError func(b *Batch) error

	eng     *event.Engine
	queue   []*Batch
	busy    bool
	down    bool
	running *Batch
	gen     int // dispatch generation; invalidates in-flight completions
	results []BatchResult
}

// New builds a runtime over the given system and scheduler with a
// private event engine.
func New(sys *sched.System, scheduler sched.Scheduler) (*Runtime, error) {
	return NewOn(&event.Engine{}, sys, scheduler)
}

// NewOn builds a runtime on an injected engine, so multiple runtimes
// (and their dispatcher) share one simulated timeline. The caller that
// owns the engine decides when to run it; use Summarize afterwards.
func NewOn(eng *event.Engine, sys *sched.System, scheduler sched.Scheduler) (*Runtime, error) {
	if eng == nil {
		return nil, errors.New("runtime: nil engine")
	}
	if sys == nil {
		return nil, errors.New("runtime: nil system")
	}
	if scheduler == nil {
		return nil, errors.New("runtime: nil scheduler")
	}
	return &Runtime{Sys: sys, Scheduler: scheduler, eng: eng}, nil
}

// Engine returns the engine this runtime schedules on.
func (r *Runtime) Engine() *event.Engine { return r.eng }

// Outstanding returns the number of admitted but unfinished batches
// (queued plus the one executing).
func (r *Runtime) Outstanding() int {
	n := len(r.queue)
	if r.busy {
		n++
	}
	return n
}

// Down reports whether the runtime is halted.
func (r *Runtime) Down() bool { return r.down }

// Submit registers a batch arrival. Must be called before Run; arrivals
// may be submitted in any order.
func (r *Runtime) Submit(b *Batch) error {
	if err := checkBatch(b); err != nil {
		return err
	}
	r.eng.At(b.Arrival, func() { r.arrive(b) })
	return nil
}

// Enqueue admits a batch into the run queue at the current engine time,
// preserving b.Arrival for latency accounting. This is the entry point
// for fabric layers that manage arrivals themselves: a dispatcher holds
// the batch through admission (and possibly retries), then enqueues it
// here once a node accepts it.
func (r *Runtime) Enqueue(b *Batch) error {
	if err := checkBatch(b); err != nil {
		return err
	}
	r.arrive(b)
	return nil
}

func checkBatch(b *Batch) error {
	if b == nil {
		return ErrNilBatch
	}
	if len(b.Jobs) == 0 {
		return fmt.Errorf("%w (batch %d)", ErrEmptyBatch, b.ID)
	}
	return nil
}

func (r *Runtime) arrive(b *Batch) {
	r.queue = append(r.queue, b)
	r.pump()
}

// Halt stops the runtime at the current instant, as a node crash does:
// the executing batch loses its partial work and returns to the head of
// the queue, and nothing further starts until Resume. The already
// scheduled completion event is invalidated by the generation bump.
func (r *Runtime) Halt() {
	if r.down {
		return
	}
	r.down = true
	if r.busy {
		r.gen++
		r.queue = append([]*Batch{r.running}, r.queue...)
		r.running = nil
		r.busy = false
	}
}

// Resume restarts a halted runtime; the interrupted batch (if any) is
// re-scheduled from scratch.
func (r *Runtime) Resume() {
	if !r.down {
		return
	}
	r.down = false
	r.pump()
}

// Evict removes and returns every admitted-but-unfinished batch — the
// interrupted one first, then the queue in order — so a fabric layer
// can re-dispatch work stranded on a failed node. The runtime itself
// stays up (or down) as it was.
func (r *Runtime) Evict() []*Batch {
	var out []*Batch
	if r.busy {
		r.gen++
		out = append(out, r.running)
		r.running = nil
		r.busy = false
	}
	out = append(out, r.queue...)
	r.queue = nil
	return out
}

// Abort removes the batch with the given ID, whether executing or
// queued, and returns it; nil if no such batch is outstanding. Aborting
// the executing batch frees the system for the next queued one — the
// deadline-timeout path of the cluster fabric.
func (r *Runtime) Abort(id int) *Batch {
	if r.busy && r.running.ID == id {
		b := r.running
		r.gen++
		r.running = nil
		r.busy = false
		r.pump()
		return b
	}
	for i, b := range r.queue {
		if b.ID == id {
			r.queue = append(r.queue[:i], r.queue[i+1:]...)
			return b
		}
	}
	return nil
}

// pump starts the next queued batch when the system is free. Batches
// run one at a time at batch granularity (each batch's jobs are spread
// across all layers by the scheduler; overlapping whole batches would
// double-book the arrays the scheduler just planned with).
func (r *Runtime) pump() {
	if r.busy || r.down || len(r.queue) == 0 {
		return
	}
	b := r.queue[0]
	r.queue = r.queue[1:]
	r.busy = true
	r.running = b
	myGen := r.gen
	start := r.eng.Now()
	if r.OnStart != nil {
		r.OnStart(b, start)
	}
	if b.Tenant != "" {
		for _, j := range b.Jobs {
			j.Tenant = b.Tenant
		}
	}
	res := r.Scheduler.Schedule(r.Sys, b.Jobs)
	r.eng.After(res.Makespan, func() {
		if r.gen != myGen {
			return // batch was halted, evicted or aborted mid-flight
		}
		r.running = nil
		r.busy = false
		done := BatchResult{
			ID: b.ID, Arrival: b.Arrival, Tenant: b.Tenant,
			Start: start, Completed: r.eng.Now(),
		}
		if r.KeepAssignments {
			done.Assignments = res.Assignments
		}
		var execErr error
		if r.ExecError != nil {
			execErr = r.ExecError(b)
		}
		if execErr == nil {
			r.results = append(r.results, done)
		}
		if r.OnComplete != nil {
			r.OnComplete(done, execErr)
		}
		r.pump()
	})
}

// Summary aggregates a completed run.
type Summary struct {
	Batches   int
	Makespan  event.Time // completion of the last batch
	MeanLatMs float64
	P50LatMs  float64
	P90LatMs  float64
	P99LatMs  float64
	MeanQueMs float64
	P50QueMs  float64
	P99QueMs  float64
	Results   []BatchResult
}

// String renders the headline serving metrics.
func (s Summary) String() string {
	return fmt.Sprintf("runtime(batches=%d makespan=%.3fms latency mean=%.3f p50=%.3f p90=%.3f p99=%.3f queue mean=%.3f p50=%.3f p99=%.3fms)",
		s.Batches, s.Makespan.Millis(), s.MeanLatMs, s.P50LatMs, s.P90LatMs, s.P99LatMs,
		s.MeanQueMs, s.P50QueMs, s.P99QueMs)
}

// Summarize aggregates the results accumulated so far without touching
// the engine — the read path for shared-engine runtimes whose owner ran
// the simulation. A run with no completed batches summarises to zeros.
func (r *Runtime) Summarize() Summary {
	if len(r.results) == 0 {
		return Summary{}
	}
	var lats, queues []float64
	makespan := event.Time(0)
	for _, b := range r.results {
		lats = append(lats, b.Latency().Millis())
		queues = append(queues, b.QueueDelay().Millis())
		if b.Completed > makespan {
			makespan = b.Completed
		}
	}
	lat, que := stats.SummarizeLatency(lats), stats.SummarizeLatency(queues)
	return Summary{
		Batches:   len(r.results),
		Makespan:  makespan,
		MeanLatMs: lat.Mean,
		P50LatMs:  lat.P50,
		P90LatMs:  lat.P90,
		P99LatMs:  lat.P99,
		MeanQueMs: que.Mean,
		P50QueMs:  que.P50,
		P99QueMs:  que.P99,
		Results:   r.results,
	}
}

// Run drains all submitted arrivals and returns the serving summary.
func (r *Runtime) Run() Summary {
	r.eng.Run()
	return r.Summarize()
}
