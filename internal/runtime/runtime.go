// Package runtime is the online execution layer of MLIMP: batches of
// jobs arrive over simulated time (the paper's runtime flow — "a call to
// a function that has been explicitly marked for in-memory processing
// triggers the MLIMP scheduler", Section III-A), queue at the system,
// and are scheduled batch by batch. Built on the deterministic event
// engine, it turns the batch-level scheduler into a serving simulation
// with arrival-to-completion latency distributions — the view an
// inference service operator cares about.
package runtime

import (
	"fmt"

	"mlimp/internal/event"
	"mlimp/internal/sched"
	"mlimp/internal/stats"
)

// Batch is one arriving unit of work.
type Batch struct {
	ID      int
	Arrival event.Time
	Jobs    []*sched.Job
}

// BatchResult records one batch's life cycle.
type BatchResult struct {
	ID        int
	Arrival   event.Time
	Start     event.Time // when the scheduler picked it up
	Completed event.Time
}

// Latency is the arrival-to-completion time.
func (b BatchResult) Latency() event.Time { return b.Completed - b.Arrival }

// QueueDelay is the time spent waiting behind earlier batches.
func (b BatchResult) QueueDelay() event.Time { return b.Start - b.Arrival }

// Runtime executes an arrival stream on one MLIMP system.
type Runtime struct {
	Sys       *sched.System
	Scheduler sched.Scheduler

	eng     event.Engine
	queue   []*Batch
	busy    bool
	results []BatchResult
}

// New builds a runtime over the given system and scheduler.
func New(sys *sched.System, scheduler sched.Scheduler) *Runtime {
	if sys == nil || scheduler == nil {
		panic("runtime: nil system or scheduler")
	}
	return &Runtime{Sys: sys, Scheduler: scheduler}
}

// Submit registers a batch arrival. Must be called before Run; arrivals
// may be submitted in any order.
func (r *Runtime) Submit(b *Batch) {
	if len(b.Jobs) == 0 {
		panic("runtime: empty batch")
	}
	r.eng.At(b.Arrival, func() { r.arrive(b) })
}

func (r *Runtime) arrive(b *Batch) {
	r.queue = append(r.queue, b)
	r.pump()
}

// pump starts the next queued batch when the system is free. Batches
// run one at a time at batch granularity (each batch's jobs are spread
// across all layers by the scheduler; overlapping whole batches would
// double-book the arrays the scheduler just planned with).
func (r *Runtime) pump() {
	if r.busy || len(r.queue) == 0 {
		return
	}
	b := r.queue[0]
	r.queue = r.queue[1:]
	r.busy = true
	start := r.eng.Now()
	res := r.Scheduler.Schedule(r.Sys, b.Jobs)
	r.eng.After(res.Makespan, func() {
		r.results = append(r.results, BatchResult{
			ID: b.ID, Arrival: b.Arrival, Start: start, Completed: r.eng.Now(),
		})
		r.busy = false
		r.pump()
	})
}

// Summary aggregates a completed run.
type Summary struct {
	Batches   int
	Makespan  event.Time // completion of the last batch
	MeanLatMs float64
	P50LatMs  float64
	P99LatMs  float64
	MeanQueMs float64
	Results   []BatchResult
}

// String renders the headline serving metrics.
func (s Summary) String() string {
	return fmt.Sprintf("runtime(batches=%d makespan=%.3fms latency mean=%.3f p50=%.3f p99=%.3f queue=%.3fms)",
		s.Batches, s.Makespan.Millis(), s.MeanLatMs, s.P50LatMs, s.P99LatMs, s.MeanQueMs)
}

// Run drains all submitted arrivals and returns the serving summary.
func (r *Runtime) Run() Summary {
	end := r.eng.Run()
	var lats, queues []float64
	for _, b := range r.results {
		lats = append(lats, b.Latency().Millis())
		queues = append(queues, b.QueueDelay().Millis())
	}
	return Summary{
		Batches:   len(r.results),
		Makespan:  end,
		MeanLatMs: stats.Mean(lats),
		P50LatMs:  stats.Percentile(lats, 50),
		P99LatMs:  stats.Percentile(lats, 99),
		MeanQueMs: stats.Mean(queues),
		Results:   r.results,
	}
}
