// Package runtime is the online execution layer of MLIMP: batches of
// jobs arrive over simulated time (the paper's runtime flow — "a call to
// a function that has been explicitly marked for in-memory processing
// triggers the MLIMP scheduler", Section III-A), queue at the system,
// and are scheduled batch by batch. Built on the deterministic event
// engine, it turns the batch-level scheduler into a serving simulation
// with arrival-to-completion latency distributions — the view an
// inference service operator cares about.
//
// A Runtime either owns a private engine (New, the standalone case) or
// runs on an injected shared engine (NewOn) so that several runtimes —
// the nodes of an internal/cluster fleet — advance in one simulated
// timeline.
package runtime

import (
	"fmt"

	"mlimp/internal/event"
	"mlimp/internal/sched"
	"mlimp/internal/stats"
)

// Batch is one arriving unit of work.
type Batch struct {
	ID      int
	Arrival event.Time
	Jobs    []*sched.Job
}

// BatchResult records one batch's life cycle.
type BatchResult struct {
	ID        int
	Arrival   event.Time
	Start     event.Time // when the scheduler picked it up
	Completed event.Time
}

// Latency is the arrival-to-completion time.
func (b BatchResult) Latency() event.Time { return b.Completed - b.Arrival }

// QueueDelay is the time spent waiting behind earlier batches.
func (b BatchResult) QueueDelay() event.Time { return b.Start - b.Arrival }

// Runtime executes an arrival stream on one MLIMP system.
type Runtime struct {
	Sys       *sched.System
	Scheduler sched.Scheduler

	// OnStart, if set, fires when a batch leaves the queue and its jobs
	// begin executing. OnComplete fires when the batch finishes. Both run
	// inside the event engine, at the simulated instant they describe —
	// the hooks fabric layers (internal/cluster) use to track occupancy
	// without owning the run loop.
	OnStart    func(b *Batch, at event.Time)
	OnComplete func(res BatchResult)

	eng     *event.Engine
	queue   []*Batch
	busy    bool
	results []BatchResult
}

// New builds a runtime over the given system and scheduler with a
// private event engine.
func New(sys *sched.System, scheduler sched.Scheduler) *Runtime {
	return NewOn(&event.Engine{}, sys, scheduler)
}

// NewOn builds a runtime on an injected engine, so multiple runtimes
// (and their dispatcher) share one simulated timeline. The caller that
// owns the engine decides when to run it; use Summarize afterwards.
func NewOn(eng *event.Engine, sys *sched.System, scheduler sched.Scheduler) *Runtime {
	if eng == nil || sys == nil || scheduler == nil {
		panic("runtime: nil engine, system or scheduler")
	}
	return &Runtime{Sys: sys, Scheduler: scheduler, eng: eng}
}

// Engine returns the engine this runtime schedules on.
func (r *Runtime) Engine() *event.Engine { return r.eng }

// Outstanding returns the number of admitted but unfinished batches
// (queued plus the one executing).
func (r *Runtime) Outstanding() int {
	n := len(r.queue)
	if r.busy {
		n++
	}
	return n
}

// Submit registers a batch arrival. Must be called before Run; arrivals
// may be submitted in any order.
func (r *Runtime) Submit(b *Batch) {
	if len(b.Jobs) == 0 {
		panic("runtime: empty batch")
	}
	r.eng.At(b.Arrival, func() { r.arrive(b) })
}

// Enqueue admits a batch into the run queue at the current engine time,
// preserving b.Arrival for latency accounting. This is the entry point
// for fabric layers that manage arrivals themselves: a dispatcher holds
// the batch through admission (and possibly retries), then enqueues it
// here once a node accepts it.
func (r *Runtime) Enqueue(b *Batch) {
	if len(b.Jobs) == 0 {
		panic("runtime: empty batch")
	}
	r.arrive(b)
}

func (r *Runtime) arrive(b *Batch) {
	r.queue = append(r.queue, b)
	r.pump()
}

// pump starts the next queued batch when the system is free. Batches
// run one at a time at batch granularity (each batch's jobs are spread
// across all layers by the scheduler; overlapping whole batches would
// double-book the arrays the scheduler just planned with).
func (r *Runtime) pump() {
	if r.busy || len(r.queue) == 0 {
		return
	}
	b := r.queue[0]
	r.queue = r.queue[1:]
	r.busy = true
	start := r.eng.Now()
	if r.OnStart != nil {
		r.OnStart(b, start)
	}
	res := r.Scheduler.Schedule(r.Sys, b.Jobs)
	r.eng.After(res.Makespan, func() {
		done := BatchResult{
			ID: b.ID, Arrival: b.Arrival, Start: start, Completed: r.eng.Now(),
		}
		r.results = append(r.results, done)
		r.busy = false
		if r.OnComplete != nil {
			r.OnComplete(done)
		}
		r.pump()
	})
}

// Summary aggregates a completed run.
type Summary struct {
	Batches   int
	Makespan  event.Time // completion of the last batch
	MeanLatMs float64
	P50LatMs  float64
	P90LatMs  float64
	P99LatMs  float64
	MeanQueMs float64
	P50QueMs  float64
	P99QueMs  float64
	Results   []BatchResult
}

// String renders the headline serving metrics.
func (s Summary) String() string {
	return fmt.Sprintf("runtime(batches=%d makespan=%.3fms latency mean=%.3f p50=%.3f p90=%.3f p99=%.3f queue mean=%.3f p50=%.3f p99=%.3fms)",
		s.Batches, s.Makespan.Millis(), s.MeanLatMs, s.P50LatMs, s.P90LatMs, s.P99LatMs,
		s.MeanQueMs, s.P50QueMs, s.P99QueMs)
}

// Summarize aggregates the results accumulated so far without touching
// the engine — the read path for shared-engine runtimes whose owner ran
// the simulation. A run with no completed batches summarises to zeros.
func (r *Runtime) Summarize() Summary {
	if len(r.results) == 0 {
		return Summary{}
	}
	var lats, queues []float64
	makespan := event.Time(0)
	for _, b := range r.results {
		lats = append(lats, b.Latency().Millis())
		queues = append(queues, b.QueueDelay().Millis())
		if b.Completed > makespan {
			makespan = b.Completed
		}
	}
	lat, que := stats.SummarizeLatency(lats), stats.SummarizeLatency(queues)
	return Summary{
		Batches:   len(r.results),
		Makespan:  makespan,
		MeanLatMs: lat.Mean,
		P50LatMs:  lat.P50,
		P90LatMs:  lat.P90,
		P99LatMs:  lat.P99,
		MeanQueMs: que.Mean,
		P50QueMs:  que.P50,
		P99QueMs:  que.P99,
		Results:   r.results,
	}
}

// Run drains all submitted arrivals and returns the serving summary.
func (r *Runtime) Run() Summary {
	r.eng.Run()
	return r.Summarize()
}
