package fault

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"mlimp/internal/event"
)

// ErrBadSpec marks a malformed fabric-fault flag value. Both CLIs wire
// it (and the Validate errors underneath) into flag validation with
// exit status 2.
var ErrBadSpec = errors.New("fault: bad fabric-fault spec")

// ParseHubCrashes parses a -hub-crash flag value: slash-separated
// "region@at:recover" entries with times in milliseconds, e.g.
// "1@2:6" or "0@2:6/1@10:14".
func ParseHubCrashes(spec string) ([]HubCrash, error) {
	var out []HubCrash
	for _, part := range splitSpecs(spec) {
		region, window, ok := strings.Cut(part, "@")
		if !ok {
			return nil, fmt.Errorf("%w: %q wants region@at:recover", ErrBadSpec, part)
		}
		r, err := strconv.Atoi(region)
		if err != nil {
			return nil, fmt.Errorf("%w: %q has no region index", ErrBadSpec, part)
		}
		at, rec, err := parseWindow(window, part)
		if err != nil {
			return nil, err
		}
		out = append(out, HubCrash{Region: r, At: at, Recover: rec})
	}
	return out, nil
}

// ParseEdgeFaults parses an -edge-fault flag value: slash-separated
// "from>to@at:until:drop:delay" entries with times in milliseconds and
// until 0 meaning an open-ended window, e.g.
// "hub0>hub1@2:6:1:0" or "hub1>hub0@0:0:0.5:0.1".
func ParseEdgeFaults(spec string) ([]EdgeFault, error) {
	var out []EdgeFault
	for _, part := range splitSpecs(spec) {
		edge, rest, ok := strings.Cut(part, "@")
		if !ok {
			return nil, fmt.Errorf("%w: %q wants from>to@at:until:drop:delay", ErrBadSpec, part)
		}
		from, to, ok := strings.Cut(edge, ">")
		if !ok || from == "" || to == "" {
			return nil, fmt.Errorf("%w: %q wants a from>to edge", ErrBadSpec, part)
		}
		fields := strings.Split(rest, ":")
		if len(fields) != 4 {
			return nil, fmt.Errorf("%w: %q wants at:until:drop:delay after @", ErrBadSpec, part)
		}
		at, err := parseMs(fields[0], part)
		if err != nil {
			return nil, err
		}
		until, err := parseMs(fields[1], part)
		if err != nil {
			return nil, err
		}
		drop, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return nil, fmt.Errorf("%w: %q has a bad drop probability", ErrBadSpec, part)
		}
		delay, err := parseMs(fields[3], part)
		if err != nil {
			return nil, err
		}
		out = append(out, EdgeFault{From: from, To: to,
			At: at, Until: until, DropProb: drop, Delay: delay})
	}
	return out, nil
}

func splitSpecs(spec string) []string {
	var parts []string
	for _, p := range strings.Split(spec, "/") {
		if p = strings.TrimSpace(p); p != "" {
			parts = append(parts, p)
		}
	}
	return parts
}

func parseWindow(s, ctx string) (at, until event.Time, err error) {
	a, b, ok := strings.Cut(s, ":")
	if !ok {
		return 0, 0, fmt.Errorf("%w: %q wants an at:recover window", ErrBadSpec, ctx)
	}
	if at, err = parseMs(a, ctx); err != nil {
		return 0, 0, err
	}
	if until, err = parseMs(b, ctx); err != nil {
		return 0, 0, err
	}
	return at, until, nil
}

func parseMs(s, ctx string) (event.Time, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("%w: %q has a bad time %q (milliseconds)", ErrBadSpec, ctx, s)
	}
	return event.Time(v * float64(event.Millisecond)), nil
}
