package fault

import (
	"strings"
	"testing"

	"mlimp/internal/event"
	"mlimp/internal/isa"
)

// FuzzPlanValidate drives Validate/String/Empty/ExecError over
// arbitrary plans assembled from primitive fuzz arguments. The
// invariants: nothing panics, a plan that validates renders one line
// per fault, Empty is consistent with the contents, and the ExecError
// coin is pure in (seed, batch, attempt) whether or not the plan is
// valid.
func FuzzPlanValidate(f *testing.F) {
	f.Add(int64(1), 0.1, "node0", int64(1), int64(2), 4, 0.5, int64(3), int64(0), "hub0", "hub1", 0.9, int64(5), int64(10), 1)
	f.Add(int64(7), 1.5, "", int64(-1), int64(0), -2, -0.5, int64(9), int64(9), "a", "a", -1.0, int64(-4), int64(2), 0)
	f.Add(int64(0), 0.0, "n", int64(0), int64(0), 0, 0.0, int64(0), int64(0), "", "", 0.0, int64(0), int64(0), 3)
	f.Fuzz(func(t *testing.T, seed int64, prob float64, node string,
		at, rec int64, arrays int, frac float64,
		hubAt, hubRec int64, from, to string, drop float64,
		edgeAt, edgeUntil int64, region int) {
		p := &Plan{
			Seed:          seed,
			ExecErrorProb: prob,
			ArrayFaults: []ArrayFault{{
				Node: node, Target: isa.SRAM, Arrays: arrays, Fraction: frac,
				At: event.Time(at), Recover: event.Time(rec),
			}},
			Crashes: []Crash{{Node: node, At: event.Time(at), Recover: event.Time(rec)}},
			HubCrashes: []HubCrash{{
				Region: region, At: event.Time(hubAt), Recover: event.Time(hubRec),
			}},
			EdgeFaults: []EdgeFault{{
				From: from, To: to, DropProb: drop,
				At: event.Time(edgeAt), Until: event.Time(edgeUntil),
			}},
		}
		err := p.Validate()
		s := p.String()
		if p.Empty() {
			t.Fatal("plan with four faults reported empty")
		}
		if err == nil {
			// A valid plan renders every fault, one line each.
			if got := strings.Count(s, "\n"); got != 5 { // header + 4 faults + ")" terminator share lines
				t.Fatalf("valid plan rendered %d newlines, want 5:\n%s", got, s)
			}
			for _, want := range []string{"array-fault", "crash", "hub-crash", "edge-fault"} {
				if !strings.Contains(s, want) {
					t.Fatalf("valid plan render missing %q:\n%s", want, s)
				}
			}
		}
		// ExecError must be pure and total regardless of validity.
		for batch := 0; batch < 4; batch++ {
			for attempt := 0; attempt < 2; attempt++ {
				if p.ExecError(batch, attempt) != p.ExecError(batch, attempt) {
					t.Fatalf("ExecError(%d,%d) not deterministic", batch, attempt)
				}
			}
		}
	})
}
