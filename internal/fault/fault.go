// Package fault defines the injectable fault plan the MLIMP stack
// consumes: deterministic, seed- and simulated-time-driven descriptions
// of the ways a real in-memory serving deployment degrades. ReRAM
// crossbars drift and wear out, DRAM rows fail, whole nodes crash with
// work in flight, and executions error out transiently — none of which
// the paper's always-healthy model represents. A Plan is pure data:
// device models shrink their effective array counts when an ArrayFault
// fires, the scheduler re-plans allocations against the reduced
// capacity, and internal/cluster turns Crash windows and ExecErrorProb
// into health states, circuit breaking, and re-dispatch.
//
// Everything here is deterministic. Faults are fixed (time, node,
// magnitude) tuples; execution errors are a pure hash of
// (seed, batch, attempt) so the same plan produces the same failures
// regardless of dispatch order or policy under test.
package fault

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"mlimp/internal/event"
	"mlimp/internal/isa"
)

// ArrayFault takes arrays of one computable-memory layer out of service
// on one node: the device's effective array count shrinks at At and —
// for a transient fault — comes back at Recover. Permanent loss
// (wear-out, a dead crossbar tile) leaves Recover zero. The magnitude
// is either absolute (Arrays) or relative (Fraction of the layer's
// healthy capacity, resolved by the consumer, which is how a generated
// plan stays independent of device configurations).
type ArrayFault struct {
	Node     string     // node name; "" applies to every node
	Target   isa.Target // which layer loses arrays
	Arrays   int        // how many arrays go dark (0: use Fraction)
	Fraction float64    // fraction of healthy capacity lost (used when Arrays == 0)
	At       event.Time
	Recover  event.Time // 0 = permanent
}

// Magnitude resolves the fault's array count against a layer's healthy
// capacity. At least one array is lost by a well-formed fault.
func (f ArrayFault) Magnitude(healthyCapacity int) int {
	n := f.Arrays
	if n == 0 && f.Fraction > 0 {
		n = int(f.Fraction * float64(healthyCapacity))
	}
	if n < 1 {
		n = 1
	}
	return n
}

// Transient reports whether the fault heals on its own.
func (f ArrayFault) Transient() bool { return f.Recover > f.At }

// Crash takes a whole node down at At — heartbeats stop, queued and
// executing work is stranded until the fleet notices — and revives it
// at Recover (0 = the node never comes back).
type Crash struct {
	Node    string
	At      event.Time
	Recover event.Time // 0 = permanent
}

// Transient reports whether the node revives.
func (c Crash) Transient() bool { return c.Recover > c.At }

// Plan is one run's complete fault schedule. The zero value injects
// nothing; a Plan is immutable once handed to a consumer.
type Plan struct {
	// Seed drives the ExecError hash (and records the Generate seed).
	Seed int64
	// ArrayFaults and Crashes fire at their own simulated instants;
	// order within the slices does not matter.
	ArrayFaults []ArrayFault
	Crashes     []Crash
	// ExecErrorProb is the probability that one execution of a batch
	// fails after running to completion (a transient job error: bad
	// analog readout, ECC trip, a cosmic ray in the peripheral). The
	// decision is a pure function of (Seed, batch ID, attempt), so
	// retrying the same batch redraws independently.
	ExecErrorProb float64
}

// Empty reports whether the plan injects nothing at all.
func (p *Plan) Empty() bool {
	return p == nil ||
		(len(p.ArrayFaults) == 0 && len(p.Crashes) == 0 && p.ExecErrorProb <= 0)
}

// splitmix64 is the SplitMix64 finaliser — a cheap, well-mixed integer
// hash (Steele et al., "Fast splittable pseudorandom number
// generators") used to draw the deterministic ExecError coin.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// ExecError reports whether execution `attempt` of batch `batchID`
// fails. Pure in (Seed, batchID, attempt): the same plan fails the same
// executions no matter which node runs them or in which order the
// dispatcher asks.
func (p *Plan) ExecError(batchID, attempt int) bool {
	if p == nil || p.ExecErrorProb <= 0 {
		return false
	}
	if p.ExecErrorProb >= 1 {
		return true
	}
	h := splitmix64(uint64(p.Seed)<<32 ^ uint64(uint32(batchID))<<16 ^ uint64(uint32(attempt)))
	// 53 high bits -> uniform float in [0, 1).
	u := float64(h>>11) / float64(1<<53)
	return u < p.ExecErrorProb
}

// Validate rejects plans no consumer can honour.
func (p *Plan) Validate() error {
	if p == nil {
		return nil
	}
	if p.ExecErrorProb < 0 || p.ExecErrorProb > 1 {
		return fmt.Errorf("fault: exec error probability %v outside [0,1]", p.ExecErrorProb)
	}
	for i, f := range p.ArrayFaults {
		if f.Arrays < 0 || (f.Arrays == 0 && f.Fraction <= 0) || f.Fraction < 0 || f.Fraction > 1 {
			return fmt.Errorf("fault: array fault %d has bad magnitude (arrays=%d fraction=%v)",
				i, f.Arrays, f.Fraction)
		}
		if f.At < 0 || (f.Recover != 0 && f.Recover <= f.At) {
			return fmt.Errorf("fault: array fault %d has bad window [%v, %v]", i, f.At, f.Recover)
		}
	}
	for i, c := range p.Crashes {
		if c.At < 0 || (c.Recover != 0 && c.Recover <= c.At) {
			return fmt.Errorf("fault: crash %d has bad window [%v, %v]", i, c.At, c.Recover)
		}
	}
	return nil
}

// String renders the plan one fault per line, in time order — the
// header of a chaos run's artefact.
func (p *Plan) String() string {
	if p.Empty() {
		return "fault-plan(empty)"
	}
	type line struct {
		at   event.Time
		text string
	}
	var lines []line
	for _, f := range p.ArrayFaults {
		node := f.Node
		if node == "" {
			node = "*"
		}
		kind := "permanent"
		if f.Transient() {
			kind = fmt.Sprintf("until %.3fms", f.Recover.Millis())
		}
		mag := fmt.Sprintf("arrays=%d", f.Arrays)
		if f.Arrays == 0 {
			mag = fmt.Sprintf("fraction=%.2f", f.Fraction)
		}
		lines = append(lines, line{f.At, fmt.Sprintf("  %.3fms array-fault node=%s layer=%s %s (%s)",
			f.At.Millis(), node, f.Target, mag, kind)})
	}
	for _, c := range p.Crashes {
		kind := "permanent"
		if c.Transient() {
			kind = fmt.Sprintf("revives %.3fms", c.Recover.Millis())
		}
		lines = append(lines, line{c.At, fmt.Sprintf("  %.3fms crash node=%s (%s)",
			c.At.Millis(), c.Node, kind)})
	}
	sort.SliceStable(lines, func(i, j int) bool { return lines[i].at < lines[j].at })
	var sb strings.Builder
	fmt.Fprintf(&sb, "fault-plan(seed=%d exec-error=%.2f\n", p.Seed, p.ExecErrorProb)
	for _, l := range lines {
		sb.WriteString(l.text)
		sb.WriteByte('\n')
	}
	sb.WriteString(")")
	return sb.String()
}

// GenConfig parameterises Generate: expected fault counts over a run
// horizon, drawn deterministically from the seed.
type GenConfig struct {
	// Nodes are the fleet's node names in configuration order.
	Nodes []string
	// Horizon is the simulated window faults are drawn inside.
	Horizon event.Time
	// ArrayFaultsPerNode is the expected number of array faults each
	// node suffers over the horizon (can be fractional).
	ArrayFaultsPerNode float64
	// ArrayFraction is the fraction of a layer's arrays one fault takes
	// out (0 means DefaultArrayFraction).
	ArrayFraction float64
	// TransientFraction is the share of array faults that heal (the
	// rest are permanent wear-out). 0 means DefaultTransientFraction;
	// negative means all faults are permanent.
	TransientFraction float64
	// Targets the faults draw from (defaults to isa.Targets).
	Targets []isa.Target
	// CrashesPerNode is the expected number of crash windows per node.
	CrashesPerNode float64
	// MeanOutage is the mean crash/transient-fault outage length
	// (0 means a tenth of the horizon).
	MeanOutage event.Time
	// ExecErrorProb passes through to the plan.
	ExecErrorProb float64
}

// Default generator shares.
const (
	DefaultArrayFraction     = 0.5
	DefaultTransientFraction = 0.5
)

// Generate draws a deterministic fault plan from the seed: Poisson-ish
// fault counts per node (expectation rounded by an independent draw),
// uniform fault instants over the horizon, exponential outage lengths.
// Iteration is in node-slice order, so the same (seed, config) is
// always the same plan.
func Generate(seed int64, cfg GenConfig) (*Plan, error) {
	if cfg.Horizon <= 0 {
		return nil, fmt.Errorf("fault: generate needs a positive horizon, got %v", cfg.Horizon)
	}
	if len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("fault: generate needs node names")
	}
	frac := cfg.ArrayFraction
	if frac <= 0 {
		frac = DefaultArrayFraction
	}
	if frac > 1 {
		frac = 1
	}
	transient := cfg.TransientFraction
	if transient == 0 {
		transient = DefaultTransientFraction
	} else if transient < 0 {
		transient = 0 // explicit "all permanent"
	}
	targets := cfg.Targets
	if len(targets) == 0 {
		targets = isa.Targets
	}
	outage := cfg.MeanOutage
	if outage <= 0 {
		outage = cfg.Horizon / 10
	}
	rng := rand.New(rand.NewSource(seed))
	// count draws an integer with the given expectation: the integer
	// part always happens, the fractional part by one biased coin.
	count := func(expect float64) int {
		n := int(expect)
		if rng.Float64() < expect-float64(n) {
			n++
		}
		return n
	}
	// window draws a fault instant plus (for the transient share) an
	// exponential outage.
	window := func(healProb float64) (at, rec event.Time) {
		at = 1 + event.Time(rng.Float64()*float64(cfg.Horizon-1))
		if rng.Float64() < healProb {
			rec = at + 1 + event.Time(rng.ExpFloat64()*float64(outage))
		}
		return at, rec
	}
	p := &Plan{Seed: seed, ExecErrorProb: cfg.ExecErrorProb}
	for _, node := range cfg.Nodes {
		for i := 0; i < count(cfg.ArrayFaultsPerNode); i++ {
			at, rec := window(transient)
			p.ArrayFaults = append(p.ArrayFaults, ArrayFault{
				Node:     node,
				Target:   targets[rng.Intn(len(targets))],
				Fraction: frac,
				At:       at,
				Recover:  rec,
			})
		}
		for i := 0; i < count(cfg.CrashesPerNode); i++ {
			// Crashes always revive in generated plans (a permanently
			// lost node is a capacity-planning decision, not chaos);
			// hand-written plans can still set Recover = 0.
			at, rec := window(1)
			p.Crashes = append(p.Crashes, Crash{Node: node, At: at, Recover: rec})
		}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}
