// Package fault defines the injectable fault plan the MLIMP stack
// consumes: deterministic, seed- and simulated-time-driven descriptions
// of the ways a real in-memory serving deployment degrades. ReRAM
// crossbars drift and wear out, DRAM rows fail, whole nodes crash with
// work in flight, and executions error out transiently — none of which
// the paper's always-healthy model represents. A Plan is pure data:
// device models shrink their effective array counts when an ArrayFault
// fires, the scheduler re-plans allocations against the reduced
// capacity, and internal/cluster turns Crash windows and ExecErrorProb
// into health states, circuit breaking, and re-dispatch.
//
// Everything here is deterministic. Faults are fixed (time, node,
// magnitude) tuples; execution errors are a pure hash of
// (seed, batch, attempt) so the same plan produces the same failures
// regardless of dispatch order or policy under test.
package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"mlimp/internal/event"
	"mlimp/internal/isa"
)

// Named validation errors. Validate wraps these with the offending
// entry's details, so callers (the CLI flag parsers, tests) match with
// errors.Is while users still see which fault is malformed.
var (
	// ErrBadProbability marks a probability outside [0, 1].
	ErrBadProbability = errors.New("fault: probability outside [0,1]")
	// ErrBadMagnitude marks an array fault that takes out nothing (or a
	// negative count / fraction).
	ErrBadMagnitude = errors.New("fault: bad array-fault magnitude")
	// ErrBadWindow marks a fault window that is negative or claims
	// transience with Recover <= At.
	ErrBadWindow = errors.New("fault: bad fault window")
	// ErrBadHubRegion marks a hub crash naming a negative region index.
	ErrBadHubRegion = errors.New("fault: hub crash names a bad region")
	// ErrHubCrashPermanent marks a hub crash without a recovery instant.
	// Hub crashes model the control plane, which a supervisor always
	// restarts — a permanently dead hub is a topology change, not chaos —
	// so Recover > At is mandatory.
	ErrHubCrashPermanent = errors.New("fault: hub crash must be transient (Recover > At)")
	// ErrBadEdge marks an edge fault with missing or self-loop endpoints,
	// or one that injects nothing (no drop, no delay).
	ErrBadEdge = errors.New("fault: bad edge fault")
)

// ArrayFault takes arrays of one computable-memory layer out of service
// on one node: the device's effective array count shrinks at At and —
// for a transient fault — comes back at Recover. Permanent loss
// (wear-out, a dead crossbar tile) leaves Recover zero. The magnitude
// is either absolute (Arrays) or relative (Fraction of the layer's
// healthy capacity, resolved by the consumer, which is how a generated
// plan stays independent of device configurations).
type ArrayFault struct {
	Node     string     // node name; "" applies to every node
	Target   isa.Target // which layer loses arrays
	Arrays   int        // how many arrays go dark (0: use Fraction)
	Fraction float64    // fraction of healthy capacity lost (used when Arrays == 0)
	At       event.Time
	Recover  event.Time // 0 = permanent
}

// Magnitude resolves the fault's array count against a layer's healthy
// capacity. At least one array is lost by a well-formed fault.
func (f ArrayFault) Magnitude(healthyCapacity int) int {
	n := f.Arrays
	if n == 0 && f.Fraction > 0 {
		n = int(f.Fraction * float64(healthyCapacity))
	}
	if n < 1 {
		n = 1
	}
	return n
}

// Transient reports whether the fault heals on its own.
func (f ArrayFault) Transient() bool { return f.Recover > f.At }

// Crash takes a whole node down at At — heartbeats stop, queued and
// executing work is stranded until the fleet notices — and revives it
// at Recover (0 = the node never comes back).
type Crash struct {
	Node    string
	At      event.Time
	Recover event.Time // 0 = permanent
}

// Transient reports whether the node revives.
func (c Crash) Transient() bool { return c.Recover > c.At }

// HubCrash freezes one regional sub-hub's control plane at At and
// restarts it at Recover: while down the hub processes nothing — lossy
// traffic aimed at it (beacons, liveness pongs, execution echoes) is
// lost, reliable traffic (forwards, relays, injected work) parks until
// revival — and its ring peers, missing its beacons, suspect it and
// adopt its nodes. Hub crashes are transient by decree: the control
// plane runs under a supervisor that always restarts it, so Validate
// rejects Recover <= At (ErrHubCrashPermanent).
type HubCrash struct {
	Region  int // region index in tree order
	At      event.Time
	Recover event.Time
}

// Transient reports whether the hub restarts. Well-formed hub crashes
// always are; the method exists for symmetry with Crash and for
// validation tests.
func (h HubCrash) Transient() bool { return h.Recover > h.At }

// EdgeFault degrades one directed fabric edge for a window: messages
// departing From toward To inside [At, Until) are dropped with
// probability DropProb and the survivors arrive Delay late. Until 0
// leaves the fault in force for the rest of the run. Endpoints name
// shards the consumer resolves — node names, or "hub<R>" for region R's
// hub shard. The drop coin is a pure hash of (plan seed, edge, per-pair
// message sequence), so the same plan drops the same messages at every
// worker count.
type EdgeFault struct {
	From, To string
	At       event.Time
	Until    event.Time // 0 = rest of the run
	DropProb float64
	Delay    event.Time
}

// PartitionEdges returns the edge faults of a clean split-brain
// partition: every directed edge between a shard in a and a shard in b
// drops all traffic for [at, until). Shards listed in neither group
// keep full connectivity to both sides — the classic asymmetric
// partition comes from listing them in just one call.
func PartitionEdges(a, b []string, at, until event.Time) []EdgeFault {
	var fs []EdgeFault
	for _, x := range a {
		for _, y := range b {
			fs = append(fs,
				EdgeFault{From: x, To: y, At: at, Until: until, DropProb: 1},
				EdgeFault{From: y, To: x, At: at, Until: until, DropProb: 1})
		}
	}
	return fs
}

// Plan is one run's complete fault schedule. The zero value injects
// nothing; a Plan is immutable once handed to a consumer.
type Plan struct {
	// Seed drives the ExecError hash (and records the Generate seed).
	Seed int64
	// ArrayFaults and Crashes fire at their own simulated instants;
	// order within the slices does not matter.
	ArrayFaults []ArrayFault
	Crashes     []Crash
	// HubCrashes and EdgeFaults extend the failure surface from the
	// nodes to the dispatch fabric itself: frozen regional hubs and
	// lossy / slow fabric edges. Both require the hierarchical fabric
	// (Hubs > 1) — the flat hub is the observer the determinism contract
	// hangs off, so consumers reject plans that crash it.
	HubCrashes []HubCrash
	EdgeFaults []EdgeFault
	// ExecErrorProb is the probability that one execution of a batch
	// fails after running to completion (a transient job error: bad
	// analog readout, ECC trip, a cosmic ray in the peripheral). The
	// decision is a pure function of (Seed, batch ID, attempt), so
	// retrying the same batch redraws independently.
	ExecErrorProb float64
}

// Empty reports whether the plan injects nothing at all.
func (p *Plan) Empty() bool {
	return p == nil ||
		(len(p.ArrayFaults) == 0 && len(p.Crashes) == 0 &&
			len(p.HubCrashes) == 0 && len(p.EdgeFaults) == 0 &&
			p.ExecErrorProb <= 0)
}

// splitmix64 is the SplitMix64 finaliser — a cheap, well-mixed integer
// hash (Steele et al., "Fast splittable pseudorandom number
// generators") used to draw the deterministic ExecError coin.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// ExecError reports whether execution `attempt` of batch `batchID`
// fails. Pure in (Seed, batchID, attempt): the same plan fails the same
// executions no matter which node runs them or in which order the
// dispatcher asks.
func (p *Plan) ExecError(batchID, attempt int) bool {
	if p == nil || p.ExecErrorProb <= 0 {
		return false
	}
	if p.ExecErrorProb >= 1 {
		return true
	}
	h := splitmix64(uint64(p.Seed)<<32 ^ uint64(uint32(batchID))<<16 ^ uint64(uint32(attempt)))
	// 53 high bits -> uniform float in [0, 1).
	u := float64(h>>11) / float64(1<<53)
	return u < p.ExecErrorProb
}

// Validate rejects plans no consumer can honour. Every rejection wraps
// one of the named errors above.
func (p *Plan) Validate() error {
	if p == nil {
		return nil
	}
	if p.ExecErrorProb < 0 || p.ExecErrorProb > 1 {
		return fmt.Errorf("%w: exec error probability %v", ErrBadProbability, p.ExecErrorProb)
	}
	for i, f := range p.ArrayFaults {
		if f.Arrays < 0 || (f.Arrays == 0 && f.Fraction <= 0) || f.Fraction < 0 || f.Fraction > 1 {
			return fmt.Errorf("%w: array fault %d (arrays=%d fraction=%v)",
				ErrBadMagnitude, i, f.Arrays, f.Fraction)
		}
		if f.At < 0 || (f.Recover != 0 && f.Recover <= f.At) {
			return fmt.Errorf("%w: array fault %d [%v, %v]", ErrBadWindow, i, f.At, f.Recover)
		}
	}
	for i, c := range p.Crashes {
		if c.At < 0 || (c.Recover != 0 && c.Recover <= c.At) {
			return fmt.Errorf("%w: crash %d [%v, %v]", ErrBadWindow, i, c.At, c.Recover)
		}
	}
	for i, h := range p.HubCrashes {
		if h.Region < 0 {
			return fmt.Errorf("%w: hub crash %d region %d", ErrBadHubRegion, i, h.Region)
		}
		if h.At < 0 {
			return fmt.Errorf("%w: hub crash %d at %v", ErrBadWindow, i, h.At)
		}
		if !h.Transient() {
			return fmt.Errorf("%w: hub crash %d [%v, %v]", ErrHubCrashPermanent, i, h.At, h.Recover)
		}
	}
	for i, e := range p.EdgeFaults {
		if e.From == "" || e.To == "" || e.From == e.To {
			return fmt.Errorf("%w: edge fault %d endpoints %q -> %q", ErrBadEdge, i, e.From, e.To)
		}
		if e.DropProb < 0 || e.DropProb > 1 {
			return fmt.Errorf("%w: edge fault %d drop %v", ErrBadProbability, i, e.DropProb)
		}
		if e.Delay < 0 || e.At < 0 || (e.Until != 0 && e.Until <= e.At) {
			return fmt.Errorf("%w: edge fault %d window [%v, %v] delay %v",
				ErrBadWindow, i, e.At, e.Until, e.Delay)
		}
		if e.DropProb == 0 && e.Delay == 0 {
			return fmt.Errorf("%w: edge fault %d injects nothing (drop=0 delay=0)", ErrBadEdge, i)
		}
	}
	return nil
}

// String renders the plan one fault per line, in time order — the
// header of a chaos run's artefact.
func (p *Plan) String() string {
	if p.Empty() {
		return "fault-plan(empty)"
	}
	type line struct {
		at   event.Time
		text string
	}
	var lines []line
	for _, f := range p.ArrayFaults {
		node := f.Node
		if node == "" {
			node = "*"
		}
		kind := "permanent"
		if f.Transient() {
			kind = fmt.Sprintf("until %.3fms", f.Recover.Millis())
		}
		mag := fmt.Sprintf("arrays=%d", f.Arrays)
		if f.Arrays == 0 {
			mag = fmt.Sprintf("fraction=%.2f", f.Fraction)
		}
		lines = append(lines, line{f.At, fmt.Sprintf("  %.3fms array-fault node=%s layer=%s %s (%s)",
			f.At.Millis(), node, f.Target, mag, kind)})
	}
	for _, c := range p.Crashes {
		kind := "permanent"
		if c.Transient() {
			kind = fmt.Sprintf("revives %.3fms", c.Recover.Millis())
		}
		lines = append(lines, line{c.At, fmt.Sprintf("  %.3fms crash node=%s (%s)",
			c.At.Millis(), c.Node, kind)})
	}
	for _, h := range p.HubCrashes {
		lines = append(lines, line{h.At, fmt.Sprintf("  %.3fms hub-crash region=%d (restarts %.3fms)",
			h.At.Millis(), h.Region, h.Recover.Millis())})
	}
	for _, e := range p.EdgeFaults {
		until := "end"
		if e.Until != 0 {
			until = fmt.Sprintf("%.3fms", e.Until.Millis())
		}
		lines = append(lines, line{e.At, fmt.Sprintf("  %.3fms edge-fault %s->%s drop=%.2f delay=%.3fms (until %s)",
			e.At.Millis(), e.From, e.To, e.DropProb, e.Delay.Millis(), until)})
	}
	sort.SliceStable(lines, func(i, j int) bool { return lines[i].at < lines[j].at })
	var sb strings.Builder
	fmt.Fprintf(&sb, "fault-plan(seed=%d exec-error=%.2f\n", p.Seed, p.ExecErrorProb)
	for _, l := range lines {
		sb.WriteString(l.text)
		sb.WriteByte('\n')
	}
	sb.WriteString(")")
	return sb.String()
}

// GenConfig parameterises Generate: expected fault counts over a run
// horizon, drawn deterministically from the seed.
type GenConfig struct {
	// Nodes are the fleet's node names in configuration order.
	Nodes []string
	// Horizon is the simulated window faults are drawn inside.
	Horizon event.Time
	// ArrayFaultsPerNode is the expected number of array faults each
	// node suffers over the horizon (can be fractional).
	ArrayFaultsPerNode float64
	// ArrayFraction is the fraction of a layer's arrays one fault takes
	// out (0 means DefaultArrayFraction).
	ArrayFraction float64
	// TransientFraction is the share of array faults that heal (the
	// rest are permanent wear-out). 0 means DefaultTransientFraction;
	// negative means all faults are permanent.
	TransientFraction float64
	// Targets the faults draw from (defaults to isa.Targets).
	Targets []isa.Target
	// CrashesPerNode is the expected number of crash windows per node.
	CrashesPerNode float64
	// MeanOutage is the mean crash/transient-fault outage length
	// (0 means a tenth of the horizon).
	MeanOutage event.Time
	// ExecErrorProb passes through to the plan.
	ExecErrorProb float64
}

// Default generator shares.
const (
	DefaultArrayFraction     = 0.5
	DefaultTransientFraction = 0.5
)

// Generate draws a deterministic fault plan from the seed: Poisson-ish
// fault counts per node (expectation rounded by an independent draw),
// uniform fault instants over the horizon, exponential outage lengths.
// Iteration is in node-slice order, so the same (seed, config) is
// always the same plan.
func Generate(seed int64, cfg GenConfig) (*Plan, error) {
	if cfg.Horizon <= 0 {
		return nil, fmt.Errorf("fault: generate needs a positive horizon, got %v", cfg.Horizon)
	}
	if len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("fault: generate needs node names")
	}
	frac := cfg.ArrayFraction
	if frac <= 0 {
		frac = DefaultArrayFraction
	}
	if frac > 1 {
		frac = 1
	}
	transient := cfg.TransientFraction
	if transient == 0 {
		transient = DefaultTransientFraction
	} else if transient < 0 {
		transient = 0 // explicit "all permanent"
	}
	targets := cfg.Targets
	if len(targets) == 0 {
		targets = isa.Targets
	}
	outage := cfg.MeanOutage
	if outage <= 0 {
		outage = cfg.Horizon / 10
	}
	rng := rand.New(rand.NewSource(seed))
	// count draws an integer with the given expectation: the integer
	// part always happens, the fractional part by one biased coin.
	count := func(expect float64) int {
		n := int(expect)
		if rng.Float64() < expect-float64(n) {
			n++
		}
		return n
	}
	// window draws a fault instant plus (for the transient share) an
	// exponential outage.
	window := func(healProb float64) (at, rec event.Time) {
		at = 1 + event.Time(rng.Float64()*float64(cfg.Horizon-1))
		if rng.Float64() < healProb {
			rec = at + 1 + event.Time(rng.ExpFloat64()*float64(outage))
		}
		return at, rec
	}
	p := &Plan{Seed: seed, ExecErrorProb: cfg.ExecErrorProb}
	for _, node := range cfg.Nodes {
		for i := 0; i < count(cfg.ArrayFaultsPerNode); i++ {
			at, rec := window(transient)
			p.ArrayFaults = append(p.ArrayFaults, ArrayFault{
				Node:     node,
				Target:   targets[rng.Intn(len(targets))],
				Fraction: frac,
				At:       at,
				Recover:  rec,
			})
		}
		for i := 0; i < count(cfg.CrashesPerNode); i++ {
			// Crashes always revive in generated plans (a permanently
			// lost node is a capacity-planning decision, not chaos);
			// hand-written plans can still set Recover = 0.
			at, rec := window(1)
			p.Crashes = append(p.Crashes, Crash{Node: node, At: at, Recover: rec})
		}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}
