package fault

import (
	"errors"
	"math"
	"strings"
	"testing"

	"mlimp/internal/event"
	"mlimp/internal/isa"
)

func TestExecErrorDeterministicAndIndependentPerAttempt(t *testing.T) {
	p := &Plan{Seed: 42, ExecErrorProb: 0.5}
	for batch := 0; batch < 64; batch++ {
		for attempt := 0; attempt < 4; attempt++ {
			a := p.ExecError(batch, attempt)
			b := p.ExecError(batch, attempt)
			if a != b {
				t.Fatalf("ExecError(%d,%d) not deterministic", batch, attempt)
			}
		}
	}
	// Attempts must redraw: with p=0.5 over 256 batches it is
	// astronomically unlikely every attempt-0 and attempt-1 coin agrees.
	same := 0
	for batch := 0; batch < 256; batch++ {
		if p.ExecError(batch, 0) == p.ExecError(batch, 1) {
			same++
		}
	}
	if same == 256 {
		t.Error("attempt index does not enter the ExecError draw")
	}
}

func TestExecErrorRate(t *testing.T) {
	for _, prob := range []float64{0, 0.1, 0.5, 1} {
		p := &Plan{Seed: 7, ExecErrorProb: prob}
		n, fails := 20000, 0
		for i := 0; i < n; i++ {
			if p.ExecError(i, 0) {
				fails++
			}
		}
		got := float64(fails) / float64(n)
		if math.Abs(got-prob) > 0.02 {
			t.Errorf("prob %.2f: observed failure rate %.3f", prob, got)
		}
	}
	var nilPlan *Plan
	if nilPlan.ExecError(0, 0) {
		t.Error("nil plan must never fail an execution")
	}
}

func TestMagnitude(t *testing.T) {
	if got := (ArrayFault{Arrays: 7}).Magnitude(100); got != 7 {
		t.Errorf("absolute magnitude = %d, want 7", got)
	}
	if got := (ArrayFault{Fraction: 0.5}).Magnitude(100); got != 50 {
		t.Errorf("fractional magnitude = %d, want 50", got)
	}
	if got := (ArrayFault{Fraction: 0.001}).Magnitude(10); got != 1 {
		t.Errorf("magnitude floor = %d, want 1", got)
	}
}

func TestValidate(t *testing.T) {
	good := &Plan{
		ArrayFaults: []ArrayFault{
			{Target: isa.SRAM, Arrays: 4, At: event.Millisecond},
			{Target: isa.ReRAM, Fraction: 0.25, At: 1, Recover: 2 * event.Millisecond},
		},
		Crashes:       []Crash{{Node: "a", At: event.Millisecond, Recover: 2 * event.Millisecond}},
		ExecErrorProb: 0.1,
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("good plan rejected: %v", err)
	}
	bad := []*Plan{
		{ExecErrorProb: 1.5},
		{ArrayFaults: []ArrayFault{{Target: isa.SRAM}}}, // no magnitude
		{ArrayFaults: []ArrayFault{{Target: isa.SRAM, Arrays: 2, At: 5, Recover: 3}}},           // heals before failing
		{ArrayFaults: []ArrayFault{{Target: isa.SRAM, Arrays: 1, Fraction: 2, At: 1}}},          // fraction > 1
		{Crashes: []Crash{{Node: "a", At: 10 * event.Millisecond, Recover: event.Microsecond}}}, // heals before crashing
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad plan %d accepted", i)
		}
	}
	var nilPlan *Plan
	if err := nilPlan.Validate(); err != nil {
		t.Errorf("nil plan should validate: %v", err)
	}
}

func TestExecErrorSeedIndependence(t *testing.T) {
	// Different seeds must redraw: over 256 batches at p=0.5 two seeds
	// agreeing on every coin is astronomically unlikely.
	a := &Plan{Seed: 1, ExecErrorProb: 0.5}
	b := &Plan{Seed: 2, ExecErrorProb: 0.5}
	same := 0
	for batch := 0; batch < 256; batch++ {
		if a.ExecError(batch, 0) == b.ExecError(batch, 0) {
			same++
		}
	}
	if same == 256 {
		t.Error("seed does not enter the ExecError draw")
	}
	// Degenerate probabilities are exact, not statistical.
	if (&Plan{Seed: 9, ExecErrorProb: 1}).ExecError(0, 0) != true {
		t.Error("prob 1 must always fail")
	}
	if (&Plan{Seed: 9}).ExecError(0, 0) {
		t.Error("prob 0 must never fail")
	}
}

func TestCrashTransientEdgeCases(t *testing.T) {
	cases := []struct {
		c    Crash
		want bool
	}{
		{Crash{At: 5, Recover: 10}, true},
		{Crash{At: 5, Recover: 5}, false}, // zero-length window is permanent
		{Crash{At: 5, Recover: 3}, false}, // heals before crashing
		{Crash{At: 5, Recover: 0}, false}, // explicit permanent
		{Crash{At: 0, Recover: 1}, true},  // crash at time zero
		{Crash{At: 0, Recover: 0}, false}, // zero value
	}
	for i, tc := range cases {
		if got := tc.c.Transient(); got != tc.want {
			t.Errorf("case %d: Crash{At:%v Recover:%v}.Transient() = %v, want %v",
				i, tc.c.At, tc.c.Recover, got, tc.want)
		}
	}
	if (HubCrash{At: 2, Recover: 2}).Transient() {
		t.Error("zero-length hub crash reported transient")
	}
	if !(HubCrash{At: 2, Recover: 4}).Transient() {
		t.Error("well-formed hub crash reported permanent")
	}
}

func TestValidateNamedErrors(t *testing.T) {
	cases := []struct {
		plan *Plan
		want error
	}{
		{&Plan{ExecErrorProb: -0.1}, ErrBadProbability},
		{&Plan{ExecErrorProb: 1.5}, ErrBadProbability},
		{&Plan{ArrayFaults: []ArrayFault{{Target: isa.SRAM}}}, ErrBadMagnitude},
		{&Plan{ArrayFaults: []ArrayFault{{Target: isa.SRAM, Arrays: 2, At: 5, Recover: 3}}}, ErrBadWindow},
		{&Plan{Crashes: []Crash{{Node: "a", At: 10, Recover: 1}}}, ErrBadWindow},
		{&Plan{HubCrashes: []HubCrash{{Region: -1, At: 1, Recover: 2}}}, ErrBadHubRegion},
		{&Plan{HubCrashes: []HubCrash{{Region: 0, At: -1, Recover: 2}}}, ErrBadWindow},
		{&Plan{HubCrashes: []HubCrash{{Region: 0, At: 5, Recover: 5}}}, ErrHubCrashPermanent},
		{&Plan{HubCrashes: []HubCrash{{Region: 0, At: 5}}}, ErrHubCrashPermanent},
		{&Plan{EdgeFaults: []EdgeFault{{From: "", To: "b", DropProb: 1}}}, ErrBadEdge},
		{&Plan{EdgeFaults: []EdgeFault{{From: "a", To: "a", DropProb: 1}}}, ErrBadEdge},
		{&Plan{EdgeFaults: []EdgeFault{{From: "a", To: "b", DropProb: 1.5}}}, ErrBadProbability},
		{&Plan{EdgeFaults: []EdgeFault{{From: "a", To: "b", DropProb: 1, At: 5, Until: 5}}}, ErrBadWindow},
		{&Plan{EdgeFaults: []EdgeFault{{From: "a", To: "b", DropProb: 1, Delay: -1}}}, ErrBadWindow},
		{&Plan{EdgeFaults: []EdgeFault{{From: "a", To: "b"}}}, ErrBadEdge}, // injects nothing
	}
	for i, tc := range cases {
		err := tc.plan.Validate()
		if err == nil {
			t.Errorf("case %d: bad plan accepted", i)
			continue
		}
		if !errors.Is(err, tc.want) {
			t.Errorf("case %d: error %v does not wrap %v", i, err, tc.want)
		}
	}
	good := &Plan{
		HubCrashes: []HubCrash{{Region: 1, At: event.Millisecond, Recover: 2 * event.Millisecond}},
		EdgeFaults: []EdgeFault{
			{From: "hub0", To: "hub1", At: 0, Until: event.Millisecond, DropProb: 0.5},
			{From: "node0", To: "hub0", Delay: 10 * event.Microsecond}, // delay-only, open window
		},
	}
	if err := good.Validate(); err != nil {
		t.Errorf("good fabric plan rejected: %v", err)
	}
	if good.Empty() {
		t.Error("fabric-fault plan reported empty")
	}
	s := good.String()
	for _, want := range []string{"hub-crash region=1", "edge-fault hub0->hub1", "until end", "restarts 2.000ms"} {
		if !strings.Contains(s, want) {
			t.Errorf("fabric plan render missing %q:\n%s", want, s)
		}
	}
}

func TestPartitionEdges(t *testing.T) {
	fs := PartitionEdges([]string{"hub0", "node0"}, []string{"hub1"}, 5, 9)
	if len(fs) != 4 {
		t.Fatalf("partition of 2x1 shards yielded %d edges, want 4", len(fs))
	}
	seen := map[string]bool{}
	for _, e := range fs {
		if e.DropProb != 1 || e.At != 5 || e.Until != 9 {
			t.Errorf("partition edge %+v not a full drop over [5,9)", e)
		}
		seen[e.From+">"+e.To] = true
	}
	for _, want := range []string{"hub0>hub1", "hub1>hub0", "node0>hub1", "hub1>node0"} {
		if !seen[want] {
			t.Errorf("partition missing directed edge %s", want)
		}
	}
	if err := (&Plan{EdgeFaults: fs}).Validate(); err != nil {
		t.Errorf("partition edges fail validation: %v", err)
	}
}

func TestGenerateDeterministicAndValid(t *testing.T) {
	cfg := GenConfig{
		Nodes:              []string{"a", "b", "c"},
		Horizon:            100 * event.Millisecond,
		ArrayFaultsPerNode: 1.5,
		CrashesPerNode:     0.8,
		ExecErrorProb:      0.05,
	}
	p1, err := Generate(13, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Generate(13, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p1.String() != p2.String() {
		t.Errorf("same seed produced different plans:\n%s\nvs\n%s", p1, p2)
	}
	p3, err := Generate(14, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p1.String() == p3.String() {
		t.Error("different seeds produced identical plans (implausible)")
	}
	if err := p1.Validate(); err != nil {
		t.Errorf("generated plan invalid: %v", err)
	}
	if len(p1.ArrayFaults) == 0 && len(p1.Crashes) == 0 {
		t.Error("expected some faults at these rates")
	}
	for _, c := range p1.Crashes {
		if !c.Transient() {
			t.Errorf("generated crash %+v is permanent", c)
		}
	}
	for _, f := range p1.ArrayFaults {
		if f.At <= 0 || f.At > cfg.Horizon {
			t.Errorf("fault at %v outside horizon", f.At)
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(1, GenConfig{Nodes: []string{"a"}}); err == nil {
		t.Error("zero horizon accepted")
	}
	if _, err := Generate(1, GenConfig{Horizon: event.Second}); err == nil {
		t.Error("no nodes accepted")
	}
}

func TestEmptyAndString(t *testing.T) {
	var nilPlan *Plan
	if !nilPlan.Empty() || !(&Plan{}).Empty() {
		t.Error("nil/zero plans must be empty")
	}
	p := &Plan{Seed: 3, ExecErrorProb: 0.25,
		ArrayFaults: []ArrayFault{{Node: "n0", Target: isa.DRAM, Arrays: 8, At: 2 * event.Millisecond}},
		Crashes:     []Crash{{Node: "n1", At: event.Millisecond, Recover: 3 * event.Millisecond}},
	}
	if p.Empty() {
		t.Error("populated plan reported empty")
	}
	s := p.String()
	for _, want := range []string{"crash node=n1", "array-fault node=n0", "exec-error=0.25", "revives"} {
		if !strings.Contains(s, want) {
			t.Errorf("plan render missing %q:\n%s", want, s)
		}
	}
	// Time-ordered render: the 1ms crash line precedes the 2ms fault.
	if strings.Index(s, "crash") > strings.Index(s, "array-fault") {
		t.Errorf("plan lines not time-ordered:\n%s", s)
	}
}
