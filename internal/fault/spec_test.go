package fault

import (
	"errors"
	"testing"

	"mlimp/internal/event"
)

func TestParseHubCrashes(t *testing.T) {
	got, err := ParseHubCrashes("1@2:6/0@10:14.5")
	if err != nil {
		t.Fatal(err)
	}
	want := []HubCrash{
		{Region: 1, At: 2 * event.Millisecond, Recover: 6 * event.Millisecond},
		{Region: 0, At: 10 * event.Millisecond, Recover: 14500 * event.Microsecond},
	}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("ParseHubCrashes = %+v, want %+v", got, want)
	}
	for _, bad := range []string{"1", "x@2:6", "1@2", "1@x:6", "1@2:y"} {
		if _, err := ParseHubCrashes(bad); !errors.Is(err, ErrBadSpec) {
			t.Errorf("ParseHubCrashes(%q) err = %v, want ErrBadSpec", bad, err)
		}
	}
}

func TestParseEdgeFaults(t *testing.T) {
	got, err := ParseEdgeFaults("hub0>hub1@2:6:1:0/hub1>hub0@0:0:0.5:0.1")
	if err != nil {
		t.Fatal(err)
	}
	want := []EdgeFault{
		{From: "hub0", To: "hub1", At: 2 * event.Millisecond, Until: 6 * event.Millisecond, DropProb: 1},
		{From: "hub1", To: "hub0", DropProb: 0.5, Delay: 100 * event.Microsecond},
	}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("ParseEdgeFaults = %+v, want %+v", got, want)
	}
	for _, bad := range []string{"hub0", "hub0@1:2:3:4", ">hub1@1:2:3:4",
		"hub0>@1:2:3:4", "hub0>hub1@1:2:3", "hub0>hub1@1:2:x:4", "hub0>hub1@1:2:3:4:5"} {
		if _, err := ParseEdgeFaults(bad); !errors.Is(err, ErrBadSpec) {
			t.Errorf("ParseEdgeFaults(%q) err = %v, want ErrBadSpec", bad, err)
		}
	}
	// A parsed-but-invalid fault is caught by Plan.Validate, not the parser.
	neg, err := ParseEdgeFaults("hub0>hub1@0:0:2:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &Plan{EdgeFaults: neg}
	if err := p.Validate(); !errors.Is(err, ErrBadProbability) {
		t.Errorf("Validate after parse err = %v, want ErrBadProbability", err)
	}
}

func TestParseSpecsEmpty(t *testing.T) {
	if hc, err := ParseHubCrashes(""); err != nil || len(hc) != 0 {
		t.Errorf("empty hub-crash spec = %v, %v", hc, err)
	}
	if ef, err := ParseEdgeFaults(" / "); err != nil || len(ef) != 0 {
		t.Errorf("blank edge-fault spec = %v, %v", ef, err)
	}
}
