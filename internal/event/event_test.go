package event

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestClock(t *testing.T) {
	c := NewClock(2500) // 2.5 GHz
	if got := c.Period(); got != 400*Picosecond {
		t.Errorf("2.5GHz period = %v ps, want 400", got)
	}
	if got := c.Cycles(10); got != 4000*Picosecond {
		t.Errorf("10 cycles = %v, want 4000", got)
	}
	if got := c.CyclesAt(401 * Picosecond); got != 2 {
		t.Errorf("CyclesAt(401ps) = %v, want 2 (round up)", got)
	}
	if got := NewClock(20).Period(); got != 50*Nanosecond {
		t.Errorf("20MHz period = %v, want 50ns", got)
	}
}

func TestClockPanicsOnZeroFreq(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewClock(0)
}

func TestTimeConversions(t *testing.T) {
	if got := (2 * Millisecond).Millis(); got != 2 {
		t.Errorf("Millis = %v", got)
	}
	if got := (1500 * Nanosecond).Micros(); got != 1.5 {
		t.Errorf("Micros = %v", got)
	}
	if got := Second.Seconds(); got != 1 {
		t.Errorf("Seconds = %v", got)
	}
}

func TestEngineOrdering(t *testing.T) {
	var e Engine
	var order []int
	e.At(30, func() { order = append(order, 3) })
	e.At(10, func() { order = append(order, 1) })
	e.At(20, func() { order = append(order, 2) })
	end := e.Run()
	if end != 30 {
		t.Errorf("final time = %v", end)
	}
	for i, v := range order {
		if v != i+1 {
			t.Fatalf("order = %v", order)
		}
	}
	if e.Fired() != 3 {
		t.Errorf("Fired = %d", e.Fired())
	}
}

func TestEngineFIFOAtSameTime(t *testing.T) {
	var e Engine
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { order = append(order, i) })
	}
	e.Run()
	if !sort.IntsAreSorted(order) {
		t.Errorf("same-time events not FIFO: %v", order)
	}
}

func TestEngineCascade(t *testing.T) {
	var e Engine
	hits := 0
	var tick func()
	tick = func() {
		hits++
		if hits < 5 {
			e.After(100, tick)
		}
	}
	e.After(100, tick)
	end := e.Run()
	if hits != 5 || end != 500 {
		t.Errorf("hits=%d end=%v", hits, end)
	}
}

func TestEnginePanicsOnPast(t *testing.T) {
	var e Engine
	e.At(100, func() {})
	e.Step()
	defer func() {
		if recover() == nil {
			t.Error("expected panic scheduling in the past")
		}
	}()
	e.At(50, func() {})
}

func TestEnginePanicsOnNegativeDelay(t *testing.T) {
	var e Engine
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	e.After(-1, func() {})
}

func TestRunUntil(t *testing.T) {
	var e Engine
	var fired []Time
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		e.At(at, func() { fired = append(fired, at) })
	}
	e.RunUntil(25)
	if len(fired) != 2 || e.Now() != 25 {
		t.Errorf("fired=%v now=%v", fired, e.Now())
	}
	if e.Pending() != 2 {
		t.Errorf("pending=%d", e.Pending())
	}
	e.Run()
	if len(fired) != 4 {
		t.Errorf("after Run fired=%v", fired)
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	var e Engine
	e.RunUntil(1000)
	if e.Now() != 1000 {
		t.Errorf("Now = %v, want 1000", e.Now())
	}
}

// TestClockRoundingContract locks down the NewClock rounding contract
// on a DDR4-2400-class non-integer period: 2400 MHz has an exact period
// of 1250/3 = 416.666... ps, which must round to the nearest picosecond
// (417) and then stay exact — over billions of cycles the divergence
// from the true rational is only the per-cycle rounding of the period,
// never floating-point drift.
func TestClockRoundingContract(t *testing.T) {
	c := NewClock(2400)
	if got := c.Period(); got != 417*Picosecond {
		t.Fatalf("2400MHz period = %v ps, want 417 (nearest ps to 416.67)", got)
	}
	for _, n := range []int64{1, 1e6, 1e9, 3e9} {
		got := c.Cycles(n)
		// Integral-period arithmetic: exactly n * period, bit for bit.
		if got != Time(n)*c.Period() {
			t.Fatalf("Cycles(%d) = %v, want exact n*period", n, got)
		}
		// Drift versus the exact rational n*1250/3 ps is bounded by the
		// period rounding: at most 0.5 ps per cycle.
		exactNum := n * 1250 // exact duration is exactNum/3 ps
		diff3 := int64(got)*3 - exactNum
		if diff3 < 0 {
			diff3 = -diff3
		}
		if diff3 > 3*n/2 {
			t.Errorf("Cycles(%d) drifts %v/3 ps from exact rational, want <= n/2", n, diff3)
		}
	}
	// The relative error of the rounded period never exceeds 0.5/period,
	// so a billion-cycle simulation is off by under 0.1% for this clock.
	relErr := (417.0 - 1250.0/3.0) / (1250.0 / 3.0)
	if relErr < 0 {
		relErr = -relErr
	}
	if relErr > 0.5/417.0 {
		t.Errorf("relative period error %g exceeds 0.5/period bound", relErr)
	}
}

// TestReserve checks the capacity hint: after Reserve(n), n pushes must
// not reallocate the backing array.
func TestReserve(t *testing.T) {
	var e Engine
	e.Reserve(100)
	if got := cap(e.events); got < 100 {
		t.Fatalf("cap after Reserve(100) = %d", got)
	}
	before := cap(e.events)
	for i := 0; i < 100; i++ {
		e.At(Time(i), func() {})
	}
	if cap(e.events) != before {
		t.Errorf("push reallocated despite Reserve: cap %d -> %d", before, cap(e.events))
	}
	// Reserve with enough free capacity is a no-op.
	e.Run()
	e.Reserve(10)
	if cap(e.events) != before {
		t.Errorf("redundant Reserve reallocated: cap %d -> %d", before, cap(e.events))
	}
}

// TestRunUntilEventExactlyAtDeadline pins the boundary the parsim
// window driver leans on: an event scheduled exactly at the deadline is
// inside the window (<=, not <), fires, and leaves the clock at the
// deadline with no idle padding needed.
func TestRunUntilEventExactlyAtDeadline(t *testing.T) {
	var e Engine
	var fired []Time
	for _, at := range []Time{10, 25, 26} {
		at := at
		e.At(at, func() { fired = append(fired, at) })
	}
	e.RunUntil(25)
	if want := []Time{10, 25}; len(fired) != 2 || fired[0] != want[0] || fired[1] != want[1] {
		t.Errorf("fired = %v, want %v", fired, want)
	}
	if e.Now() != 25 {
		t.Errorf("Now = %v, want the deadline 25", e.Now())
	}
	if at, ok := e.NextAt(); !ok || at != 26 {
		t.Errorf("NextAt = %v,%v, want 26,true", at, ok)
	}
	// An event cascaded onto the exact deadline during the deadline
	// event itself must also run in this RunUntil call.
	var cascade Engine
	hit := false
	cascade.At(25, func() { cascade.At(25, func() { hit = true }) })
	cascade.RunUntil(25)
	if !hit {
		t.Error("event scheduled at the deadline, from the deadline, did not fire")
	}
}

// TestReserveShrinkThenGrow: a Reserve smaller than a previous one must
// not shrink capacity, and a later larger Reserve must grow from the
// current length, keeping all pending events.
func TestReserveShrinkThenGrow(t *testing.T) {
	var e Engine
	e.Reserve(128)
	big := cap(e.events)
	e.Reserve(8) // no-op: plenty free
	if cap(e.events) != big {
		t.Fatalf("smaller Reserve changed cap %d -> %d", big, cap(e.events))
	}
	n := 0
	for i := 0; i < 100; i++ {
		e.At(Time(i), func() { n++ })
	}
	e.Reserve(4 * big) // grow with events pending
	if got := cap(e.events) - e.Pending(); got < 4*big {
		t.Errorf("free capacity after grow = %d, want >= %d", got, 4*big)
	}
	e.Run()
	if n != 100 {
		t.Errorf("grow lost events: fired %d of 100", n)
	}
}

// TestStepAfterDrain: once the queue drains, Step reports false, moves
// nothing, and the engine stays usable for a later schedule.
func TestStepAfterDrain(t *testing.T) {
	var e Engine
	e.At(5, func() {})
	e.Run()
	for i := 0; i < 3; i++ {
		if e.Step() {
			t.Fatal("Step on a drained engine claimed to fire")
		}
	}
	if e.Now() != 5 || e.Fired() != 1 {
		t.Errorf("drained engine at now=%v fired=%d, want 5/1", e.Now(), e.Fired())
	}
	if _, ok := e.NextAt(); ok {
		t.Error("NextAt reports a pending event on a drained engine")
	}
	// The engine accepts and runs new work after draining.
	ran := false
	e.At(9, func() { ran = true })
	if !e.Step() || !ran || e.Now() != 9 {
		t.Errorf("post-drain schedule did not run: ran=%v now=%v", ran, e.Now())
	}
}

// TestPushPopNoAllocs pins the tentpole claim: the steady-state
// schedule/fire path performs zero allocations.
func TestPushPopNoAllocs(t *testing.T) {
	var e Engine
	e.Reserve(64)
	fn := func() {}
	for i := 0; i < 32; i++ {
		e.At(Time(i), fn)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		e.At(e.now+10, fn)
		e.Step()
	})
	if allocs != 0 {
		t.Errorf("steady-state push/pop allocates %v allocs/op, want 0", allocs)
	}
}

// TestHeapStress drives the 4-ary heap through random interleaved
// push/pop shapes against a linear-scan reference queue, checking the
// exact (at, seq) total order survives arbitrary heap shapes.
func TestHeapStress(t *testing.T) {
	type ev struct {
		at  Time
		idx int
	}
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		var e Engine
		var ref []ev // unordered pending set, popped by linear min-scan
		refPop := func() ev {
			best := 0
			for i := 1; i < len(ref); i++ {
				// idx is insertion order, the seq tie-break.
				if ref[i].at < ref[best].at ||
					(ref[i].at == ref[best].at && ref[i].idx < ref[best].idx) {
					best = i
				}
			}
			m := ref[best]
			ref = append(ref[:best], ref[best+1:]...)
			return m
		}
		var got, want []ev
		n := 1 + rng.Intn(300)
		for i := 0; i < n; i++ {
			// Dense offsets force (at, seq) ties; scheduling relative to
			// Now keeps interleaved draining causal.
			at := e.Now() + Time(rng.Int63n(16))
			i := i
			ref = append(ref, ev{at, i})
			e.At(at, func() { got = append(got, ev{e.Now(), i}) })
			if rng.Intn(4) == 0 && len(ref) > 0 {
				want = append(want, refPop())
				e.Step()
			}
		}
		for len(ref) > 0 {
			want = append(want, refPop())
		}
		e.Run()
		if len(got) != len(want) {
			t.Fatalf("trial %d: fired %d of %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: event %d = %+v, want %+v", trial, i, got[i], want[i])
			}
		}
	}
}

// Property: for any set of delays, events fire in nondecreasing time
// order and the engine terminates at the max timestamp.
func TestEngineOrderProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var e Engine
		n := 1 + rng.Intn(50)
		var maxT Time
		var fired []Time
		for i := 0; i < n; i++ {
			at := Time(rng.Int63n(10000))
			if at > maxT {
				maxT = at
			}
			e.At(at, func() { fired = append(fired, e.Now()) })
		}
		end := e.Run()
		if end != maxT || len(fired) != n {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
