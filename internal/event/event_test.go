package event

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestClock(t *testing.T) {
	c := NewClock(2500) // 2.5 GHz
	if got := c.Period(); got != 400*Picosecond {
		t.Errorf("2.5GHz period = %v ps, want 400", got)
	}
	if got := c.Cycles(10); got != 4000*Picosecond {
		t.Errorf("10 cycles = %v, want 4000", got)
	}
	if got := c.CyclesAt(401 * Picosecond); got != 2 {
		t.Errorf("CyclesAt(401ps) = %v, want 2 (round up)", got)
	}
	if got := NewClock(20).Period(); got != 50*Nanosecond {
		t.Errorf("20MHz period = %v, want 50ns", got)
	}
}

func TestClockPanicsOnZeroFreq(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewClock(0)
}

func TestTimeConversions(t *testing.T) {
	if got := (2 * Millisecond).Millis(); got != 2 {
		t.Errorf("Millis = %v", got)
	}
	if got := (1500 * Nanosecond).Micros(); got != 1.5 {
		t.Errorf("Micros = %v", got)
	}
	if got := Second.Seconds(); got != 1 {
		t.Errorf("Seconds = %v", got)
	}
}

func TestEngineOrdering(t *testing.T) {
	var e Engine
	var order []int
	e.At(30, func() { order = append(order, 3) })
	e.At(10, func() { order = append(order, 1) })
	e.At(20, func() { order = append(order, 2) })
	end := e.Run()
	if end != 30 {
		t.Errorf("final time = %v", end)
	}
	for i, v := range order {
		if v != i+1 {
			t.Fatalf("order = %v", order)
		}
	}
	if e.Fired() != 3 {
		t.Errorf("Fired = %d", e.Fired())
	}
}

func TestEngineFIFOAtSameTime(t *testing.T) {
	var e Engine
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { order = append(order, i) })
	}
	e.Run()
	if !sort.IntsAreSorted(order) {
		t.Errorf("same-time events not FIFO: %v", order)
	}
}

func TestEngineCascade(t *testing.T) {
	var e Engine
	hits := 0
	var tick func()
	tick = func() {
		hits++
		if hits < 5 {
			e.After(100, tick)
		}
	}
	e.After(100, tick)
	end := e.Run()
	if hits != 5 || end != 500 {
		t.Errorf("hits=%d end=%v", hits, end)
	}
}

func TestEnginePanicsOnPast(t *testing.T) {
	var e Engine
	e.At(100, func() {})
	e.Step()
	defer func() {
		if recover() == nil {
			t.Error("expected panic scheduling in the past")
		}
	}()
	e.At(50, func() {})
}

func TestEnginePanicsOnNegativeDelay(t *testing.T) {
	var e Engine
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	e.After(-1, func() {})
}

func TestRunUntil(t *testing.T) {
	var e Engine
	var fired []Time
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		e.At(at, func() { fired = append(fired, at) })
	}
	e.RunUntil(25)
	if len(fired) != 2 || e.Now() != 25 {
		t.Errorf("fired=%v now=%v", fired, e.Now())
	}
	if e.Pending() != 2 {
		t.Errorf("pending=%d", e.Pending())
	}
	e.Run()
	if len(fired) != 4 {
		t.Errorf("after Run fired=%v", fired)
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	var e Engine
	e.RunUntil(1000)
	if e.Now() != 1000 {
		t.Errorf("Now = %v, want 1000", e.Now())
	}
}

// Property: for any set of delays, events fire in nondecreasing time
// order and the engine terminates at the max timestamp.
func TestEngineOrderProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var e Engine
		n := 1 + rng.Intn(50)
		var maxT Time
		var fired []Time
		for i := 0; i < n; i++ {
			at := Time(rng.Int63n(10000))
			if at > maxT {
				maxT = at
			}
			e.At(at, func() { fired = append(fired, e.Now()) })
		}
		end := e.Run()
		if end != maxT || len(fired) != n {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
