package parsim

import (
	"reflect"
	"testing"

	"mlimp/internal/event"
)

// buildLossy wires a two-shard ping stream over a lossy a->b edge:
// shard a sends n messages one per hop, the edge drops with the given
// probability over [at, until), and b logs each arrival instant.
func buildLossy(workers, n int, f EdgeFault, reliable bool) (*Driver, *[]event.Time) {
	d := NewDriver(hop, workers)
	a, b := d.AddShard(), d.AddShard()
	d.AddEdgeFault(a, b, f)
	got := &[]event.Time{}
	for i := 0; i < n; i++ {
		i := i
		a.Engine().At(event.Time(i)*hop, func() {
			fn := func() { *got = append(*got, b.Engine().Now()) }
			if reliable {
				a.SendReliable(b, a.Engine().Now()+hop, fn)
			} else {
				a.SendAfter(b, hop, fn)
			}
		})
	}
	return d, got
}

func TestEdgeFaultDropDeterministicAcrossWorkers(t *testing.T) {
	f := EdgeFault{DropProb: 0.5, Seed: 42}
	var want []event.Time
	var wantStats Stats
	for _, workers := range []int{1, 2, 4, 8} {
		d, got := buildLossy(workers, 200, f, false)
		d.Run()
		if want == nil {
			want = *got
			wantStats = d.Stats()
			if len(want) == 0 || len(want) == 200 {
				t.Fatalf("drop=0.5 delivered %d of 200 (want a strict subset)", len(want))
			}
			if wantStats.Dropped != 200-len(want) {
				t.Fatalf("Stats.Dropped = %d, want %d", wantStats.Dropped, 200-len(want))
			}
			continue
		}
		if !reflect.DeepEqual(*got, want) {
			t.Fatalf("workers=%d: lossy delivery diverges from workers=1", workers)
		}
		if d.Stats().Dropped != wantStats.Dropped {
			t.Fatalf("workers=%d: Dropped=%d diverges from %d", workers, d.Stats().Dropped, wantStats.Dropped)
		}
	}
}

func TestEdgeFaultSeedChangesDraws(t *testing.T) {
	d1, got1 := buildLossy(1, 200, EdgeFault{DropProb: 0.5, Seed: 1}, false)
	d1.Run()
	d2, got2 := buildLossy(1, 200, EdgeFault{DropProb: 0.5, Seed: 2}, false)
	d2.Run()
	if reflect.DeepEqual(*got1, *got2) {
		t.Error("different seeds produced identical drop patterns (implausible over 200 draws)")
	}
}

func TestEdgeFaultWindow(t *testing.T) {
	// Drops confined to [5hop, 10hop): sends landing outside the window
	// all arrive.
	f := EdgeFault{At: 5 * hop, Until: 10 * hop, DropProb: 1, Seed: 7}
	d, got := buildLossy(1, 20, f, false)
	d.Run()
	// Sends depart at i*hop for i in [0,20); those departing in the
	// window [5hop, 10hop) — i in {5..9} — are dropped.
	if len(*got) != 15 {
		t.Fatalf("windowed full-drop delivered %d of 20, want 15", len(*got))
	}
	for _, at := range *got {
		dep := at - hop
		if dep >= f.At && dep < f.Until {
			t.Fatalf("message departing at %v inside the drop window was delivered", dep)
		}
	}
	if s := d.Stats(); s.Dropped != 5 {
		t.Fatalf("Stats.Dropped = %d, want 5", s.Dropped)
	}
}

func TestSendReliableBypassesDropButPaysDelay(t *testing.T) {
	f := EdgeFault{DropProb: 1, Delay: 3 * hop, Seed: 9}
	d, got := buildLossy(1, 10, f, true)
	d.Run()
	if len(*got) != 10 {
		t.Fatalf("reliable sends over a full-drop edge delivered %d of 10", len(*got))
	}
	for i, at := range *got {
		want := event.Time(i)*hop + hop + 3*hop
		if at != want {
			t.Fatalf("reliable send %d arrived at %v, want %v (hop + 3hop delay)", i, at, want)
		}
	}
	s := d.Stats()
	if s.Dropped != 0 || s.Delayed != 10 {
		t.Fatalf("reliable stats dropped=%d delayed=%d, want 0/10", s.Dropped, s.Delayed)
	}
}

// TestEdgeFaultDelayHorizonSafe injects delay on a declared edge in
// horizon mode: the delay pushes arrivals later than the declared
// latency, which is always conservative-safe, and the run stays
// byte-identical across worker counts.
func TestEdgeFaultDelayHorizonSafe(t *testing.T) {
	build := func(workers int) (*Driver, *[]event.Time) {
		d := NewDriver(hop, workers)
		a, b := d.AddShard(), d.AddShard()
		d.SetEdge(a, b, EdgeLatency{Fixed: hop})
		d.SetEdge(b, a, EdgeLatency{Fixed: hop})
		d.AddEdgeFault(a, b, EdgeFault{Delay: 7 * hop})
		got := &[]event.Time{}
		var ping func(round int)
		ping = func(round int) {
			if round >= 20 {
				return
			}
			a.SendAfter(b, hop, func() {
				*got = append(*got, b.Engine().Now())
				b.SendAfter(a, hop, func() { ping(round + 1) })
			})
		}
		a.Engine().At(0, func() { ping(0) })
		return d, got
	}
	var want []event.Time
	for _, workers := range []int{1, 4} {
		d, got := build(workers)
		d.Run()
		if want == nil {
			want = *got
			if len(want) != 20 {
				t.Fatalf("delivered %d of 20 delayed pings", len(want))
			}
			for i := 1; i < len(want); i++ {
				if want[i]-want[i-1] != 9*hop { // hop out + 7hop delay + hop back
					t.Fatalf("ping cadence %v, want %v", want[i]-want[i-1], 9*hop)
				}
			}
			if s := d.Stats(); s.Delayed != 20 {
				t.Fatalf("Stats.Delayed = %d, want 20", s.Delayed)
			}
			continue
		}
		if !reflect.DeepEqual(*got, want) {
			t.Fatalf("workers=%d: delayed horizon run diverges", workers)
		}
	}
}

func TestEdgeFaultWindowsStack(t *testing.T) {
	// Two stacked windows on one edge: a delay-only fault plus a
	// full-drop window later. Both apply, in AddEdgeFault order.
	d := NewDriver(hop, 1)
	a, b := d.AddShard(), d.AddShard()
	d.AddEdgeFault(a, b, EdgeFault{Delay: hop})
	d.AddEdgeFault(a, b, EdgeFault{At: 10 * hop, DropProb: 1, Seed: 3})
	var got []event.Time
	for i := 0; i < 20; i++ {
		a.Engine().At(event.Time(i)*hop, func() {
			a.SendAfter(b, hop, func() { got = append(got, b.Engine().Now()) })
		})
	}
	d.Run()
	if len(got) != 10 {
		t.Fatalf("stacked faults delivered %d of 20, want the 10 pre-window sends", len(got))
	}
	for i, at := range got {
		if want := event.Time(i)*hop + 2*hop; at != want {
			t.Fatalf("send %d arrived at %v, want %v (hop + hop delay)", i, at, want)
		}
	}
}

func TestAddEdgeFaultPanics(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	d := NewDriver(hop, 1)
	a, b := d.AddShard(), d.AddShard()
	expectPanic("self-edge", func() { d.AddEdgeFault(a, a, EdgeFault{DropProb: 1}) })
	expectPanic("bad prob", func() { d.AddEdgeFault(a, b, EdgeFault{DropProb: 1.5}) })
	expectPanic("negative delay", func() { d.AddEdgeFault(a, b, EdgeFault{Delay: -1}) })
	expectPanic("injects nothing", func() { d.AddEdgeFault(a, b, EdgeFault{}) })
	foreign := NewDriver(hop, 1).AddShard()
	expectPanic("foreign shard", func() { d.AddEdgeFault(a, foreign, EdgeFault{DropProb: 1}) })
	d.Run()
	expectPanic("after Run", func() { d.AddEdgeFault(a, b, EdgeFault{DropProb: 1}) })
}
