// Package parsim parallelises the deterministic event engine across
// shards: a conservative parallel discrete-event simulation (PDES)
// driver in the Chandy–Misra tradition, specialised to the fixed-
// lookahead case. Each shard owns a private event.Engine; the driver
// advances all shards through a sequence of simulation windows
// [T, T+lookahead), where T is the globally earliest pending event and
// the lookahead is the minimum latency of any cross-shard interaction
// (the dispatch/network hop of internal/cluster, bounded below by the
// DDR4 round trip of internal/mainmem). Within a window the shards are
// causally independent — any event a shard executes at time t can only
// influence another shard at t+lookahead or later, which is strictly
// beyond the window — so the shards may run concurrently without any
// locking of simulation state.
//
// Cross-shard events travel through per-(src,dst) SPSC mailboxes: only
// the source shard's executing goroutine appends, and only the driver
// drains, at the window barrier, on one goroutine. Determinism is a
// contract, not an accident: at every barrier the driver merges each
// destination's incoming messages in (at, src shard, per-pair sequence)
// order before inserting them into the destination engine, which gives
// every message a canonical position in the destination's (at, seq)
// total order. The merged order depends only on simulated time and
// shard topology — never on OS scheduling — so a run with 1 worker and
// a run with N workers execute byte-identical event sequences. The
// per-pair sequence numbers realise the "global seq ranges per shard
// per window" tie-break: within one delivery timestamp, messages order
// by source shard ID, then by the order the source sent them.
// Uniform lookahead is the right model when every shard pair is one
// network hop apart — the flat hub fabric. Hierarchical fabrics have
// structured latencies: dispatch edges are prompt (one hop), while
// summarised state flows upward on a beacon grid (a sub-hub only emits
// load beliefs at multiples of a summary period). Declaring those edges
// (SetEdge) switches the driver to per-shard conservative horizons: at
// each barrier it computes, per shard, the earliest instant any other
// shard could possibly influence it — the fixpoint of earliest-event
// propagation over the declared edge latencies — and lets every shard
// run to its own horizon. Events that are minutes of simulated time
// apart on shards that only talk through a slow beacon edge then
// execute in one window instead of serialising into hop-wide slices.
package parsim

import (
	"fmt"
	"math"
	"slices"
	"sync"

	"mlimp/internal/event"
)

// message is one cross-shard event in flight.
type message struct {
	at  event.Time
	src int    // sending shard ID
	seq uint64 // per-(src,dst) send counter
	fn  func()
}

// inf is the horizon of a shard nothing can influence.
const inf = event.Time(math.MaxInt64)

// EdgeLatency describes the minimum delivery latency of one directed
// shard edge. Fixed must be positive: it is the network latency every
// message pays, and the strict time advance the conservative horizon
// computation needs for progress. A positive Grid additionally
// quantises departures to a beacon schedule: a message sent at t leaves
// at the next multiple of Grid (inclusive — a send exactly on the grid
// departs immediately) and arrives Fixed later. Grid edges model
// summarised-state channels — belief uplinks that batch everything
// since the last beacon — and are what lets the horizon computation
// prove two shards independent for a whole beacon period at a time.
type EdgeLatency struct {
	Fixed event.Time
	Grid  event.Time
}

// arrival returns the earliest instant a message sent at t can be
// delivered over this edge. Monotone in t, and strictly greater than t
// (Fixed > 0), which the horizon fixpoint relies on.
func (l EdgeLatency) arrival(t event.Time) event.Time {
	if l.Grid > 0 {
		if r := t % l.Grid; r != 0 {
			t += l.Grid - r
		}
	}
	return t + l.Fixed
}

// edge is one declared directed edge.
type edge struct {
	src, dst int
	lat      EdgeLatency
}

// EdgeFault is one deterministic fault window on a directed shard edge:
// messages departing inside [At, Until) are dropped with probability
// DropProb, and survivors arrive Delay later than they would have. The
// drop coin is a pure hash of (Seed, src, dst, per-pair sequence) — all
// simulated facts — so the same fault schedule drops the same messages
// at every worker count. Both degradations are conservative with
// respect to the horizon computation: a dropped message removes an
// arrival the fixpoint already budgeted for, and a delayed one arrives
// strictly after its edge bound, so window safety is never violated.
type EdgeFault struct {
	At, Until event.Time // fault window; Until 0 = rest of the run
	DropProb  float64
	Delay     event.Time
	Seed      int64
}

// active reports whether the window covers departure instant t.
func (f EdgeFault) active(t event.Time) bool {
	return t >= f.At && (f.Until == 0 || t < f.Until)
}

// splitmix64 is the SplitMix64 finaliser — the same well-mixed integer
// hash internal/fault uses for its exec-error coin, duplicated here so
// the generic simulation layer stays free of fault-model imports.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// edgeCoin draws the uniform [0,1) drop coin for one send attempt.
func edgeCoin(seed int64, src, dst int, seq uint64) float64 {
	h := splitmix64(uint64(seed) ^ uint64(uint32(src))<<48 ^ uint64(uint32(dst))<<32 ^ seq)
	return float64(h>>11) / float64(1<<53)
}

// Shard is one partition of the simulation: a private engine plus the
// outboxes feeding every other shard. A shard's engine may only be
// touched by the goroutine currently executing that shard's window (or
// by anyone between Run calls / before Run).
type Shard struct {
	id    int
	drv   *Driver
	eng   *event.Engine
	out   [][]message // outboxes indexed by destination shard ID
	seq   []uint64    // per-destination send counters
	limit event.Time  // this window's execution horizon (driver-owned)

	// Edge-fault tallies, owned by whichever goroutine executes this
	// shard's window (like eng); summed into Stats at the end of Run.
	dropped int
	delayed int
}

// ID returns the shard's index in driver order.
func (s *Shard) ID() int { return s.id }

// Engine returns the shard's private engine. Before Run, callers seed
// initial events directly here (arrival streams, fault plans); during
// Run, only events executing on this shard may touch it.
func (s *Shard) Engine() *event.Engine { return s.eng }

// Send schedules fn on dst's engine at absolute time at. It must be
// called from an event executing on s (or before Run), and at must
// respect the conservative lookahead contract: at >= s.Engine().Now() +
// lookahead. Violating the contract would let a window's output land
// inside the same window on another shard — the causality error
// conservative PDES exists to prevent — so it panics.
func (s *Shard) Send(dst *Shard, at event.Time, fn func()) {
	s.send(dst, at, fn, false)
}

// SendReliable is Send over a retransmitting transport: edge faults on
// the pair still delay the message, but can never drop it. Use it for
// messages whose loss would break a conservation law the simulation is
// supposed to prove — ownership transfers, completion relays — and
// plain Send for everything a timeout or the next beacon re-covers.
func (s *Shard) SendReliable(dst *Shard, at event.Time, fn func()) {
	s.send(dst, at, fn, true)
}

func (s *Shard) send(dst *Shard, at event.Time, fn func(), reliable bool) {
	if s.drv != dst.drv {
		panic("parsim: send across drivers")
	}
	if min := s.EarliestTo(dst); at < min {
		panic(fmt.Sprintf("parsim: send %d->%d at %d violates edge bound %d from now %d",
			s.id, dst.id, at, min, s.eng.Now()))
	}
	if dst.id >= len(s.out) {
		s.growRows(len(s.drv.shards))
	}
	// The sequence advances per attempt, dropped or not: it feeds the
	// drop coin, so consecutive attempts must draw independently, and
	// gaps in delivered sequences are harmless to the barrier merge.
	s.seq[dst.id]++
	if s.drv.faults != nil {
		if fs := s.drv.faults[[2]int{s.id, dst.id}]; len(fs) != 0 {
			now := s.eng.Now()
			for _, f := range fs {
				if !f.active(now) {
					continue
				}
				if !reliable && f.DropProb > 0 &&
					edgeCoin(f.Seed, s.id, dst.id, s.seq[dst.id]) < f.DropProb {
					s.dropped++
					return
				}
				if f.Delay > 0 {
					at += f.Delay
					s.delayed++
				}
			}
		}
	}
	s.out[dst.id] = append(s.out[dst.id], message{at: at, src: s.id, seq: s.seq[dst.id], fn: fn})
}

// growRows widens the outbox and sequence rows to n destinations,
// preserving anything already queued (setup-time sends land before Run
// sizes the rows for the final fleet).
func (s *Shard) growRows(n int) {
	out := make([][]message, n)
	copy(out, s.out)
	s.out = out
	seq := make([]uint64, n)
	copy(seq, s.seq)
	s.seq = seq
}

// SendAfter schedules fn on dst d after the sending shard's current
// time. d must be at least the driver's lookahead.
func (s *Shard) SendAfter(dst *Shard, d event.Time, fn func()) {
	s.Send(dst, s.eng.Now()+d, fn)
}

// EarliestTo returns the earliest timestamp a message from s may carry
// to dst right now — the Send contract. With declared edges this is the
// edge's arrival bound (and sending on an undeclared pair panics: the
// horizon computation proved shards independent assuming messages only
// flow on declared edges); otherwise it is now + the uniform lookahead.
func (s *Shard) EarliestTo(dst *Shard) event.Time {
	if !s.drv.horizons {
		return s.eng.Now() + s.drv.lookahead
	}
	if s.id < len(s.drv.edgeOut) {
		for _, e := range s.drv.edgeOut[s.id] {
			if e.dst == dst.id {
				return e.lat.arrival(s.eng.Now())
			}
		}
	}
	panic(fmt.Sprintf("parsim: no edge declared from shard %d to %d", s.id, dst.id))
}

// Driver owns the shards and advances them window by window.
type Driver struct {
	lookahead event.Time
	workers   int
	shards    []*Shard
	ran       bool
	stats     Stats

	// Declared-edge state (horizon mode). edgeOut indexes edges by
	// source shard; next/bound/horizon are the per-barrier fixpoint
	// scratch, allocated once at Run.
	horizons bool
	edges    []edge
	edgeOut  [][]edge
	next     []event.Time
	bound    []event.Time
	horizon  []event.Time

	// faults maps directed (src, dst) shard pairs to their fault
	// windows. nil when no faults are scheduled, which keeps the send
	// fast path a single pointer test.
	faults map[[2]int][]EdgeFault

	// Window state shared with the worker pool. Each shard's limit is
	// written by the driver goroutine before the shard is handed to a
	// worker; the channel send/receive pair orders the write before
	// every read.
	work chan *Shard
	wg   sync.WaitGroup

	// mergeBuf is the barrier's reusable merge scratch: deliver gathers
	// every destination's incoming messages here, sorts, inserts, and
	// hands the capacity back for the next barrier. Only the driver
	// goroutine touches it.
	mergeBuf []message
}

// NewDriver returns a driver that advances shards in windows of the
// given lookahead using the given number of workers. workers <= 1 runs
// every window on the calling goroutine — the serial fallback, which
// executes the exact same canonical event order with zero goroutines.
func NewDriver(lookahead event.Time, workers int) *Driver {
	if lookahead <= 0 {
		panic("parsim: lookahead must be positive")
	}
	if workers < 1 {
		workers = 1
	}
	return &Driver{lookahead: lookahead, workers: workers}
}

// Stats describes a finished run's window structure — the driver-level
// evidence of how much concurrency the simulation exposed. AvgActive is
// the mean number of shards runnable per window: the available
// parallelism, and (clamped by the worker count and host cores) the
// wall-clock speedup bound. It is a property of the simulation, not the
// host, so it is byte-identical across worker counts.
type Stats struct {
	Windows   int // barriers executed
	MaxActive int // most shards runnable in one window
	// Hist is the per-window active-shard histogram: Hist[k] counts the
	// windows in which exactly k shards were runnable (index 0 unused).
	// The mean hides bimodal runs — a fleet that alternates all-shards
	// windows with long strings of hub-only windows averages respectably
	// while the workers idle most barriers; the histogram makes those
	// hub-bound windows visible.
	Hist      []int
	activeSum int
	// Dropped and Delayed count messages degraded by edge faults over
	// the whole run (zero — and unrendered — without faults).
	Dropped int
	Delayed int
}

// AvgActive returns the mean runnable shards per window.
func (s Stats) AvgActive() float64 {
	if s.Windows == 0 {
		return 0
	}
	return float64(s.activeSum) / float64(s.Windows)
}

// String renders the window structure compactly, histogram included:
// "windows=42 avg-active=3.20 max=8 hist[1]=12 hist[8]=30" (zero
// buckets elided).
func (s Stats) String() string {
	out := fmt.Sprintf("windows=%d avg-active=%.2f max=%d", s.Windows, s.AvgActive(), s.MaxActive)
	for k, n := range s.Hist {
		if n > 0 {
			out += fmt.Sprintf(" hist[%d]=%d", k, n)
		}
	}
	if s.Dropped > 0 || s.Delayed > 0 {
		out += fmt.Sprintf(" dropped=%d delayed=%d", s.Dropped, s.Delayed)
	}
	return out
}

// record tallies one window with the given active-shard count.
func (d *Driver) record(active int) {
	d.stats.Windows++
	d.stats.activeSum += active
	if active > d.stats.MaxActive {
		d.stats.MaxActive = active
	}
	if d.stats.Hist == nil {
		d.stats.Hist = make([]int, len(d.shards)+1)
	}
	d.stats.Hist[active]++
}

// Stats returns the run's window statistics (zero before Run).
func (d *Driver) Stats() Stats { return d.stats }

// Lookahead returns the window width.
func (d *Driver) Lookahead() event.Time { return d.lookahead }

// Workers returns the configured worker count.
func (d *Driver) Workers() int { return d.workers }

// AddShard creates a new shard. All shards must be added before Run.
func (d *Driver) AddShard() *Shard {
	if d.ran {
		panic("parsim: AddShard after Run")
	}
	s := &Shard{id: len(d.shards), drv: d, eng: &event.Engine{}}
	d.shards = append(d.shards, s)
	// Outbox and sequence rows are sized once in Run, when the fleet is
	// final — growing them per AddShard is quadratic in shard count and
	// lands on the hot path of callers that build a fabric per run.
	return s
}

// SetEdge declares a directed communication edge with its latency class
// and switches the driver to per-shard conservative horizons. Once any
// edge is declared, messages may only flow on declared edges — the
// horizon computation's independence proofs assume exactly that — and
// every edge used by the simulation must be declared before Run.
// Declaring the same (src, dst) pair again replaces its latency.
func (d *Driver) SetEdge(src, dst *Shard, lat EdgeLatency) {
	if d.ran {
		panic("parsim: SetEdge after Run")
	}
	if src.drv != d || dst.drv != d {
		panic("parsim: SetEdge with foreign shard")
	}
	if src == dst {
		panic("parsim: self edges are implicit (a shard always reaches itself)")
	}
	if lat.Fixed <= 0 {
		panic("parsim: edge Fixed latency must be positive")
	}
	if lat.Grid < 0 {
		panic("parsim: negative edge Grid")
	}
	d.horizons = true
	// Callers that build a fabric per run (the cluster benches construct
	// a fresh dispatcher every iteration) pay SetEdge on the hot path,
	// so the per-source adjacency is maintained incrementally rather
	// than rebuilt per call.
	for len(d.edgeOut) < len(d.shards) {
		d.edgeOut = append(d.edgeOut, nil)
	}
	e := edge{src: src.id, dst: dst.id, lat: lat}
	for i := range d.edges {
		if d.edges[i].src == src.id && d.edges[i].dst == dst.id {
			d.edges[i].lat = lat
			for j := range d.edgeOut[src.id] {
				if d.edgeOut[src.id][j].dst == dst.id {
					d.edgeOut[src.id][j].lat = lat
				}
			}
			return
		}
	}
	d.edges = append(d.edges, e)
	d.edgeOut[src.id] = append(d.edgeOut[src.id], e)
}

// AddEdgeFault schedules a fault window on the directed pair src->dst.
// Multiple windows on one pair stack: a departure inside several
// windows draws each drop coin and accumulates each delay. Must be
// called before Run.
func (d *Driver) AddEdgeFault(src, dst *Shard, f EdgeFault) {
	if d.ran {
		panic("parsim: AddEdgeFault after Run")
	}
	if src.drv != d || dst.drv != d {
		panic("parsim: AddEdgeFault with foreign shard")
	}
	if src == dst {
		panic("parsim: AddEdgeFault on a self edge")
	}
	if f.DropProb < 0 || f.DropProb > 1 || f.Delay < 0 {
		panic("parsim: AddEdgeFault with bad drop probability or delay")
	}
	if f.DropProb == 0 && f.Delay == 0 {
		panic("parsim: AddEdgeFault that injects nothing (drop=0 delay=0)")
	}
	if d.faults == nil {
		d.faults = map[[2]int][]EdgeFault{}
	}
	k := [2]int{src.id, dst.id}
	d.faults[k] = append(d.faults[k], f)
}

// Run drains every shard: windows open at the globally earliest pending
// event and close lookahead later; active shards execute concurrently
// (up to the worker count); the barrier then merges mailboxes in
// canonical order. It returns the latest shard time once no events or
// in-flight messages remain. Run may be called once.
func (d *Driver) Run() event.Time {
	if d.ran {
		panic("parsim: Run called twice")
	}
	d.ran = true
	for _, s := range d.shards {
		if len(s.out) < len(d.shards) {
			s.growRows(len(d.shards))
		}
	}
	if d.workers > 1 {
		d.startPool()
		defer close(d.work)
	}
	if d.horizons {
		d.runHorizons()
	} else {
		d.runUniform()
	}
	var end event.Time
	for _, s := range d.shards {
		if now := s.eng.Now(); now > end {
			end = now
		}
		d.stats.Dropped += s.dropped
		d.stats.Delayed += s.delayed
	}
	return end
}

// runUniform is the flat-fabric window loop: every window opens at the
// globally earliest pending event and closes a uniform lookahead later.
func (d *Driver) runUniform() {
	active := make([]*Shard, 0, len(d.shards))
	for {
		// Flush mailboxes first: this is the barrier after the previous
		// window, and it also delivers messages seeded before Run.
		d.deliver()
		next, any := event.Time(0), false
		for _, s := range d.shards {
			if t, ok := s.eng.NextAt(); ok && (!any || t < next) {
				next, any = t, true
			}
		}
		if !any {
			break
		}
		deadline := next + d.lookahead - 1
		active = active[:0]
		for _, s := range d.shards {
			if t, ok := s.eng.NextAt(); ok && t <= deadline {
				s.limit = deadline
				active = append(active, s)
			}
		}
		d.record(len(active))
		d.runWindow(active)
	}
}

// runHorizons is the declared-edge window loop. Each barrier computes,
// per shard, a conservative horizon — the earliest instant any message
// could still reach it — and lets every shard execute all events
// strictly before its own horizon. The horizon is the fixpoint of
// earliest-event propagation: starting from each shard's next pending
// event time, relax every declared edge (earliest possible event on the
// source implies a possible arrival on the destination) until stable;
// a shard's horizon is then the min arrival over its incoming edges.
// Because every edge advances time by at least its positive Fixed
// latency, the fixpoint is the min over simple paths and converges in
// at most len(shards) passes, and the shard holding the globally
// earliest event always clears its own horizon — progress is
// guaranteed. All inputs are simulated-time facts, so the window
// structure (and Stats) is byte-identical at every worker count.
func (d *Driver) runHorizons() {
	n := len(d.shards)
	d.next = make([]event.Time, n)
	d.bound = make([]event.Time, n)
	d.horizon = make([]event.Time, n)
	active := make([]*Shard, 0, n)
	for {
		d.deliver()
		any := false
		for i, s := range d.shards {
			if t, ok := s.eng.NextAt(); ok {
				d.next[i], d.bound[i] = t, t
				any = true
			} else {
				d.next[i], d.bound[i] = inf, inf
			}
		}
		if !any {
			break
		}
		// Fixpoint: bound[v] = min(next[v], min over edges u->v of
		// arrival(bound[u])) — the earliest instant any event could
		// possibly occur on v, own or induced.
		for pass := 0; pass < n; pass++ {
			changed := false
			for _, e := range d.edges {
				if d.bound[e.src] == inf {
					continue
				}
				if a := e.lat.arrival(d.bound[e.src]); a < d.bound[e.dst] {
					d.bound[e.dst] = a
					changed = true
				}
			}
			if !changed {
				break
			}
		}
		// Horizon[v]: the earliest possible *external* influence on v.
		// Events strictly before it are causally independent of every
		// other shard and safe to execute now.
		for i := range d.horizon {
			d.horizon[i] = inf
		}
		for _, e := range d.edges {
			if d.bound[e.src] == inf {
				continue
			}
			if a := e.lat.arrival(d.bound[e.src]); a < d.horizon[e.dst] {
				d.horizon[e.dst] = a
			}
		}
		active = active[:0]
		for i, s := range d.shards {
			if d.next[i] < d.horizon[i] {
				s.limit = d.horizon[i] - 1 // runShard's bound is inclusive
				active = append(active, s)
			}
		}
		d.record(len(active))
		d.runWindow(active)
	}
}

// runWindow executes every active shard up to its own limit (set by the
// window loop just before the call). Windows with one active shard skip
// the pool: handing a lone shard to a worker would buy no overlap and
// cost two channel hops.
func (d *Driver) runWindow(active []*Shard) {
	if d.workers == 1 || len(active) == 1 {
		for _, s := range active {
			runShard(s.eng, s.limit)
		}
		return
	}
	d.wg.Add(len(active))
	for _, s := range active {
		d.work <- s
	}
	d.wg.Wait()
}

// runShard executes e's events up to and including deadline without
// padding the clock beyond the last executed event — unlike RunUntil,
// which advances to the deadline. Leaving the clock on the last event
// keeps shard times meaningful (Run's result is the true end of the
// simulation) and costs nothing: deliveries always land strictly after
// the window, so an un-padded clock can never cause a scheduling-in-
// the-past panic.
func runShard(e *event.Engine, deadline event.Time) {
	for {
		t, ok := e.NextAt()
		if !ok || t > deadline {
			return
		}
		e.Step()
	}
}

// startPool spawns the persistent window workers.
func (d *Driver) startPool() {
	d.work = make(chan *Shard, len(d.shards))
	for i := 0; i < d.workers; i++ {
		go func() {
			for s := range d.work {
				runShard(s.eng, s.limit)
				d.wg.Done()
			}
		}()
	}
}

// deliver is the window barrier: every destination's incoming messages,
// gathered across all sources, are merged in canonical (at, src, seq)
// order and inserted into the destination engine. Insertion order fixes
// the engine-level tie-break, so equal-timestamp deliveries execute in
// source-shard order on every run regardless of worker count.
func (d *Driver) deliver() {
	for dstID, dst := range d.shards {
		batch := d.mergeBuf[:0]
		for _, src := range d.shards {
			if pending := src.out[dstID]; len(pending) > 0 {
				batch = append(batch, pending...)
				clear(pending) // drop the closure refs; keep the capacity
				src.out[dstID] = pending[:0]
			}
		}
		if len(batch) == 0 {
			continue
		}
		slices.SortFunc(batch, func(a, b message) int {
			if a.at != b.at {
				if a.at < b.at {
					return -1
				}
				return 1
			}
			if a.src != b.src {
				return a.src - b.src
			}
			switch {
			case a.seq < b.seq:
				return -1
			case a.seq > b.seq:
				return 1
			}
			return 0
		})
		dst.eng.Reserve(len(batch))
		for i := range batch {
			dst.eng.At(batch[i].at, batch[i].fn)
		}
		clear(batch) // drop the closure refs; keep the capacity
		d.mergeBuf = batch[:0]
	}
}
