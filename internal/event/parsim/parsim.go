// Package parsim parallelises the deterministic event engine across
// shards: a conservative parallel discrete-event simulation (PDES)
// driver in the Chandy–Misra tradition, specialised to the fixed-
// lookahead case. Each shard owns a private event.Engine; the driver
// advances all shards through a sequence of simulation windows
// [T, T+lookahead), where T is the globally earliest pending event and
// the lookahead is the minimum latency of any cross-shard interaction
// (the dispatch/network hop of internal/cluster, bounded below by the
// DDR4 round trip of internal/mainmem). Within a window the shards are
// causally independent — any event a shard executes at time t can only
// influence another shard at t+lookahead or later, which is strictly
// beyond the window — so the shards may run concurrently without any
// locking of simulation state.
//
// Cross-shard events travel through per-(src,dst) SPSC mailboxes: only
// the source shard's executing goroutine appends, and only the driver
// drains, at the window barrier, on one goroutine. Determinism is a
// contract, not an accident: at every barrier the driver merges each
// destination's incoming messages in (at, src shard, per-pair sequence)
// order before inserting them into the destination engine, which gives
// every message a canonical position in the destination's (at, seq)
// total order. The merged order depends only on simulated time and
// shard topology — never on OS scheduling — so a run with 1 worker and
// a run with N workers execute byte-identical event sequences. The
// per-pair sequence numbers realise the "global seq ranges per shard
// per window" tie-break: within one delivery timestamp, messages order
// by source shard ID, then by the order the source sent them.
package parsim

import (
	"fmt"
	"slices"
	"sync"

	"mlimp/internal/event"
)

// message is one cross-shard event in flight.
type message struct {
	at  event.Time
	src int    // sending shard ID
	seq uint64 // per-(src,dst) send counter
	fn  func()
}

// Shard is one partition of the simulation: a private engine plus the
// outboxes feeding every other shard. A shard's engine may only be
// touched by the goroutine currently executing that shard's window (or
// by anyone between Run calls / before Run).
type Shard struct {
	id  int
	drv *Driver
	eng *event.Engine
	out [][]message // outboxes indexed by destination shard ID
	seq []uint64    // per-destination send counters
}

// ID returns the shard's index in driver order.
func (s *Shard) ID() int { return s.id }

// Engine returns the shard's private engine. Before Run, callers seed
// initial events directly here (arrival streams, fault plans); during
// Run, only events executing on this shard may touch it.
func (s *Shard) Engine() *event.Engine { return s.eng }

// Send schedules fn on dst's engine at absolute time at. It must be
// called from an event executing on s (or before Run), and at must
// respect the conservative lookahead contract: at >= s.Engine().Now() +
// lookahead. Violating the contract would let a window's output land
// inside the same window on another shard — the causality error
// conservative PDES exists to prevent — so it panics.
func (s *Shard) Send(dst *Shard, at event.Time, fn func()) {
	if s.drv != dst.drv {
		panic("parsim: send across drivers")
	}
	if at < s.eng.Now()+s.drv.lookahead {
		panic(fmt.Sprintf("parsim: send at %d violates lookahead %d from now %d",
			at, s.drv.lookahead, s.eng.Now()))
	}
	s.seq[dst.id]++
	s.out[dst.id] = append(s.out[dst.id], message{at: at, src: s.id, seq: s.seq[dst.id], fn: fn})
}

// SendAfter schedules fn on dst d after the sending shard's current
// time. d must be at least the driver's lookahead.
func (s *Shard) SendAfter(dst *Shard, d event.Time, fn func()) {
	s.Send(dst, s.eng.Now()+d, fn)
}

// Driver owns the shards and advances them window by window.
type Driver struct {
	lookahead event.Time
	workers   int
	shards    []*Shard
	ran       bool
	stats     Stats

	// Window state shared with the worker pool. deadline is written by
	// the driver goroutine before any shard is handed to a worker; the
	// channel send/receive pair orders the write before every read.
	deadline event.Time
	work     chan *Shard
	wg       sync.WaitGroup

	// mergeBuf is the barrier's reusable merge scratch: deliver gathers
	// every destination's incoming messages here, sorts, inserts, and
	// hands the capacity back for the next barrier. Only the driver
	// goroutine touches it.
	mergeBuf []message
}

// NewDriver returns a driver that advances shards in windows of the
// given lookahead using the given number of workers. workers <= 1 runs
// every window on the calling goroutine — the serial fallback, which
// executes the exact same canonical event order with zero goroutines.
func NewDriver(lookahead event.Time, workers int) *Driver {
	if lookahead <= 0 {
		panic("parsim: lookahead must be positive")
	}
	if workers < 1 {
		workers = 1
	}
	return &Driver{lookahead: lookahead, workers: workers}
}

// Stats describes a finished run's window structure — the driver-level
// evidence of how much concurrency the simulation exposed. AvgActive is
// the mean number of shards runnable per window: the available
// parallelism, and (clamped by the worker count and host cores) the
// wall-clock speedup bound. It is a property of the simulation, not the
// host, so it is byte-identical across worker counts.
type Stats struct {
	Windows   int // barriers executed
	MaxActive int // most shards runnable in one window
	activeSum int
}

// AvgActive returns the mean runnable shards per window.
func (s Stats) AvgActive() float64 {
	if s.Windows == 0 {
		return 0
	}
	return float64(s.activeSum) / float64(s.Windows)
}

// Stats returns the run's window statistics (zero before Run).
func (d *Driver) Stats() Stats { return d.stats }

// Lookahead returns the window width.
func (d *Driver) Lookahead() event.Time { return d.lookahead }

// Workers returns the configured worker count.
func (d *Driver) Workers() int { return d.workers }

// AddShard creates a new shard. All shards must be added before Run.
func (d *Driver) AddShard() *Shard {
	if d.ran {
		panic("parsim: AddShard after Run")
	}
	s := &Shard{id: len(d.shards), drv: d, eng: &event.Engine{}}
	d.shards = append(d.shards, s)
	// Give every shard (including this one) an outbox row to s and
	// grow s's own rows to cover the fleet so far.
	for _, sh := range d.shards {
		for len(sh.out) < len(d.shards) {
			sh.out = append(sh.out, nil)
			sh.seq = append(sh.seq, 0)
		}
	}
	return s
}

// Run drains every shard: windows open at the globally earliest pending
// event and close lookahead later; active shards execute concurrently
// (up to the worker count); the barrier then merges mailboxes in
// canonical order. It returns the latest shard time once no events or
// in-flight messages remain. Run may be called once.
func (d *Driver) Run() event.Time {
	if d.ran {
		panic("parsim: Run called twice")
	}
	d.ran = true
	if d.workers > 1 {
		d.startPool()
		defer close(d.work)
	}
	active := make([]*Shard, 0, len(d.shards))
	for {
		// Flush mailboxes first: this is the barrier after the previous
		// window, and it also delivers messages seeded before Run.
		d.deliver()
		next, any := event.Time(0), false
		for _, s := range d.shards {
			if t, ok := s.eng.NextAt(); ok && (!any || t < next) {
				next, any = t, true
			}
		}
		if !any {
			break
		}
		deadline := next + d.lookahead - 1
		active = active[:0]
		for _, s := range d.shards {
			if t, ok := s.eng.NextAt(); ok && t <= deadline {
				active = append(active, s)
			}
		}
		d.stats.Windows++
		d.stats.activeSum += len(active)
		if len(active) > d.stats.MaxActive {
			d.stats.MaxActive = len(active)
		}
		d.runWindow(active, deadline)
	}
	var end event.Time
	for _, s := range d.shards {
		if now := s.eng.Now(); now > end {
			end = now
		}
	}
	return end
}

// runWindow executes every active shard up to the window deadline.
// Windows with one active shard skip the pool: handing a lone shard to
// a worker would buy no overlap and cost two channel hops.
func (d *Driver) runWindow(active []*Shard, deadline event.Time) {
	if d.workers == 1 || len(active) == 1 {
		for _, s := range active {
			runShard(s.eng, deadline)
		}
		return
	}
	d.deadline = deadline
	d.wg.Add(len(active))
	for _, s := range active {
		d.work <- s
	}
	d.wg.Wait()
}

// runShard executes e's events up to and including deadline without
// padding the clock beyond the last executed event — unlike RunUntil,
// which advances to the deadline. Leaving the clock on the last event
// keeps shard times meaningful (Run's result is the true end of the
// simulation) and costs nothing: deliveries always land strictly after
// the window, so an un-padded clock can never cause a scheduling-in-
// the-past panic.
func runShard(e *event.Engine, deadline event.Time) {
	for {
		t, ok := e.NextAt()
		if !ok || t > deadline {
			return
		}
		e.Step()
	}
}

// startPool spawns the persistent window workers.
func (d *Driver) startPool() {
	d.work = make(chan *Shard, len(d.shards))
	for i := 0; i < d.workers; i++ {
		go func() {
			for s := range d.work {
				runShard(s.eng, d.deadline)
				d.wg.Done()
			}
		}()
	}
}

// deliver is the window barrier: every destination's incoming messages,
// gathered across all sources, are merged in canonical (at, src, seq)
// order and inserted into the destination engine. Insertion order fixes
// the engine-level tie-break, so equal-timestamp deliveries execute in
// source-shard order on every run regardless of worker count.
func (d *Driver) deliver() {
	for dstID, dst := range d.shards {
		batch := d.mergeBuf[:0]
		for _, src := range d.shards {
			if pending := src.out[dstID]; len(pending) > 0 {
				batch = append(batch, pending...)
				clear(pending) // drop the closure refs; keep the capacity
				src.out[dstID] = pending[:0]
			}
		}
		if len(batch) == 0 {
			continue
		}
		slices.SortFunc(batch, func(a, b message) int {
			if a.at != b.at {
				if a.at < b.at {
					return -1
				}
				return 1
			}
			if a.src != b.src {
				return a.src - b.src
			}
			switch {
			case a.seq < b.seq:
				return -1
			case a.seq > b.seq:
				return 1
			}
			return 0
		})
		dst.eng.Reserve(len(batch))
		for i := range batch {
			dst.eng.At(batch[i].at, batch[i].fn)
		}
		clear(batch) // drop the closure refs; keep the capacity
		d.mergeBuf = batch[:0]
	}
}
