package parsim

import (
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"

	"mlimp/internal/event"
)

const hop = 10 * event.Microsecond

// trace records (shard, at, label) triples in execution order per shard;
// per-shard traces are the observable artefact two runs must agree on.
type trace struct {
	perShard [][]string
}

func (tr *trace) log(shard int, at event.Time, label string) {
	tr.perShard[shard] = append(tr.perShard[shard], fmt.Sprintf("%d@%d:%s", shard, at, label))
}

// buildPingPong wires nShards spokes around shard 0 as a hub: every
// spoke fires rounds of local events and sends acks to the hub, the hub
// replies, bounded by depth. Returns the driver and the trace.
func buildPingPong(nShards, depth, workers int) (*Driver, *trace) {
	d := NewDriver(hop, workers)
	tr := &trace{perShard: make([][]string, nShards)}
	shards := make([]*Shard, nShards)
	for i := range shards {
		shards[i] = d.AddShard()
	}
	hub := shards[0]
	var pong func(spoke int, round int) func()
	pong = func(spoke, round int) func() {
		return func() {
			tr.log(0, hub.Engine().Now(), fmt.Sprintf("pong-%d-%d", spoke, round))
			if round < depth {
				sp := shards[spoke]
				hub.SendAfter(sp, hop, func() {
					tr.log(spoke, sp.Engine().Now(), fmt.Sprintf("ping-%d", round+1))
					sp.SendAfter(hub, hop, pong(spoke, round+1))
				})
			}
		}
	}
	for i := 1; i < nShards; i++ {
		i := i
		sp := shards[i]
		// Stagger local start times so windows overlap several shards.
		sp.Engine().At(event.Time(i)*event.Microsecond, func() {
			tr.log(i, sp.Engine().Now(), "start")
			sp.SendAfter(hub, hop, pong(i, 0))
		})
	}
	return d, tr
}

func TestWorkerCountEquivalence(t *testing.T) {
	var want [][]string
	var wantStats Stats
	for _, workers := range []int{1, 2, 4, 8} {
		d, tr := buildPingPong(9, 12, workers)
		d.Run()
		if want == nil {
			want = tr.perShard
			wantStats = d.Stats()
			if wantStats.Windows == 0 || wantStats.MaxActive < 2 || wantStats.AvgActive() <= 1 {
				t.Fatalf("ping-pong exposed no parallelism: %+v", wantStats)
			}
			continue
		}
		if !reflect.DeepEqual(tr.perShard, want) {
			t.Fatalf("workers=%d trace diverges from workers=1", workers)
		}
		// Window structure is a property of the simulation, not the
		// worker count.
		if !reflect.DeepEqual(d.Stats(), wantStats) {
			t.Fatalf("workers=%d window stats %+v diverge from %+v", workers, d.Stats(), wantStats)
		}
	}
}

// TestDeliveryOrderAtTies sends messages from several shards that all
// arrive at the hub at the same instant; the canonical merge must order
// them by source shard regardless of worker count.
func TestDeliveryOrderAtTies(t *testing.T) {
	for _, workers := range []int{1, 4} {
		d := NewDriver(hop, workers)
		hub := d.AddShard()
		var order []int
		const n = 6
		for i := 1; i <= n; i++ {
			i := i
			sp := d.AddShard()
			// All spokes execute at t=0 and send for delivery at exactly hop.
			sp.Engine().At(0, func() {
				sp.Send(hub, hop, func() { order = append(order, i) })
			})
		}
		d.Run()
		if len(order) != n {
			t.Fatalf("workers=%d: delivered %d of %d", workers, len(order), n)
		}
		for i := 1; i < len(order); i++ {
			if order[i] < order[i-1] {
				t.Fatalf("workers=%d: deliveries out of shard order: %v", workers, order)
			}
		}
	}
}

// TestPerPairFIFO checks that two messages from one shard to another at
// the same delivery time run in send order.
func TestPerPairFIFO(t *testing.T) {
	d := NewDriver(hop, 1)
	a, b := d.AddShard(), d.AddShard()
	var got []string
	a.Engine().At(0, func() {
		a.Send(b, hop, func() { got = append(got, "first") })
		a.Send(b, hop, func() { got = append(got, "second") })
	})
	d.Run()
	if want := []string{"first", "second"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestSetupSendsDeliveredWithoutLocalEvents(t *testing.T) {
	d := NewDriver(hop, 2)
	a, b := d.AddShard(), d.AddShard()
	fired := false
	a.Send(b, hop, func() { fired = true })
	end := d.Run()
	if !fired {
		t.Fatal("setup-time Send never delivered")
	}
	if end != hop {
		t.Fatalf("end time %d, want %d", end, hop)
	}
}

func TestLookaheadViolationPanics(t *testing.T) {
	d := NewDriver(hop, 1)
	a, b := d.AddShard(), d.AddShard()
	a.Engine().At(hop, func() {
		defer func() {
			if recover() == nil {
				t.Error("Send inside the lookahead window did not panic")
			}
		}()
		a.Send(b, a.Engine().Now()+hop-1, func() {})
	})
	d.Run()
}

func TestRunTwicePanics(t *testing.T) {
	d := NewDriver(hop, 1)
	d.AddShard()
	d.Run()
	defer func() {
		if recover() == nil {
			t.Error("second Run did not panic")
		}
	}()
	d.Run()
}

func TestEmptyRun(t *testing.T) {
	d := NewDriver(hop, 4)
	for i := 0; i < 3; i++ {
		d.AddShard()
	}
	if end := d.Run(); end != 0 {
		t.Fatalf("empty run ended at %d", end)
	}
}

// TestZeroLookaheadRejected: a non-positive lookahead would make every
// window empty-width; the constructor must reject it outright.
func TestZeroLookaheadRejected(t *testing.T) {
	for _, la := range []event.Time{0, -hop} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("lookahead %d accepted", la)
				}
			}()
			NewDriver(la, 1)
		}()
	}
}

// TestSingleShardMatchesSerialEngine runs the same event program on a
// bare event.Engine and on a one-shard driver: execution order, times,
// and the final clock must be byte-identical — the degenerate fleet is
// the serial engine.
func TestSingleShardMatchesSerialEngine(t *testing.T) {
	program := func(eng *event.Engine, log *[]string) {
		var tick func(round int) func()
		tick = func(round int) func() {
			return func() {
				*log = append(*log, fmt.Sprintf("%d@%d", round, eng.Now()))
				if round < 40 {
					eng.After(event.Time(round%7+1)*event.Microsecond, tick(round+1))
					if round%3 == 0 {
						eng.At(eng.Now(), func() {
							*log = append(*log, fmt.Sprintf("tie-%d@%d", round, eng.Now()))
						})
					}
				}
			}
		}
		eng.At(0, tick(0))
	}

	var serial []string
	ref := &event.Engine{}
	program(ref, &serial)
	ref.Run()

	var sharded []string
	d := NewDriver(hop, 4)
	s := d.AddShard()
	program(s.Engine(), &sharded)
	end := d.Run()

	if !reflect.DeepEqual(sharded, serial) {
		t.Fatalf("single-shard trace diverges from serial engine:\n%v\n%v", sharded, serial)
	}
	if end != ref.Now() {
		t.Fatalf("single-shard end %d, serial engine end %d", end, ref.Now())
	}
}

// TestThreeWayFanInTies: three source shards send to one destination so
// every message lands at the same instant, with same-(at,src) pairs
// disambiguated by send sequence. The canonical (at, src, seq) merge
// must produce the same total order at any worker count.
func TestThreeWayFanInTies(t *testing.T) {
	var want []string
	for _, workers := range []int{1, 2, 4} {
		d := NewDriver(hop, workers)
		dst := d.AddShard()
		srcs := []*Shard{d.AddShard(), d.AddShard(), d.AddShard()}
		var got []string
		// Reverse shard order to prove arrival order is canonical, not
		// send-call order; two messages per source at one instant probe
		// the (at, src) -> seq tie-break.
		for i := len(srcs) - 1; i >= 0; i-- {
			i := i
			sp := srcs[i]
			sp.Engine().At(0, func() {
				sp.Send(dst, hop, func() { got = append(got, fmt.Sprintf("s%d-a", i)) })
				sp.Send(dst, hop, func() { got = append(got, fmt.Sprintf("s%d-b", i)) })
			})
		}
		d.Run()
		if want == nil {
			want = got
			exp := []string{"s0-a", "s0-b", "s1-a", "s1-b", "s2-a", "s2-b"}
			if !reflect.DeepEqual(got, exp) {
				t.Fatalf("merge order %v, want %v", got, exp)
			}
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d fan-in order %v diverges from %v", workers, got, want)
		}
	}
}

// buildHierarchy wires a two-level hub tree on declared edges: regions
// of spokes around regional hubs, hop-latency dispatch edges within a
// region, and a slow beacon grid between hub peers. Spokes run dense
// local work; hubs exchange summaries each beacon.
func buildHierarchy(regions, spokesPer, rounds, workers int) (*Driver, *trace) {
	const beacon = 50 * hop
	d := NewDriver(hop, workers)
	n := regions * (1 + spokesPer)
	tr := &trace{perShard: make([][]string, n)}
	hubs := make([]*Shard, regions)
	for r := 0; r < regions; r++ {
		hubs[r] = d.AddShard()
		for k := 0; k < spokesPer; k++ {
			sp := d.AddShard()
			d.SetEdge(hubs[r], sp, EdgeLatency{Fixed: hop})
			d.SetEdge(sp, hubs[r], EdgeLatency{Fixed: hop})
			spoke := sp
			var ping func(round int) func()
			ping = func(round int) func() {
				return func() {
					tr.log(spoke.id, spoke.Engine().Now(), fmt.Sprintf("ping-%d", round))
					if round < rounds {
						spoke.SendAfter(hubs[r], hop, func() {
							hub := hubs[r]
							tr.log(hub.id, hub.Engine().Now(), fmt.Sprintf("ack-%d-%d", spoke.id, round))
							hub.SendAfter(spoke, hop, ping(round+1))
						})
					}
				}
			}
			sp.Engine().At(event.Time(k+1)*event.Microsecond, ping(0))
		}
	}
	for _, a := range hubs {
		for _, b := range hubs {
			if a != b {
				d.SetEdge(a, b, EdgeLatency{Fixed: hop, Grid: beacon})
			}
		}
	}
	// Each hub beacons a summary to every peer a few times.
	for i, h := range hubs {
		i, h := i, h
		var tick func(k int) func()
		tick = func(k int) func() {
			return func() {
				for j, peer := range hubs {
					if peer == h {
						continue
					}
					j := j
					h.Send(peer, h.EarliestTo(peer), func() {
						tr.log(peer.id, peer.Engine().Now(), fmt.Sprintf("belief-%d", i))
					})
					_ = j
				}
				if k < 4 {
					h.Engine().After(beacon, tick(k+1))
				}
			}
		}
		h.Engine().At(beacon, tick(0))
	}
	return d, tr
}

// TestHorizonWorkerEquivalence: declared-edge mode must stay byte-
// identical across worker counts, stats included.
func TestHorizonWorkerEquivalence(t *testing.T) {
	var want [][]string
	var wantStats Stats
	for _, workers := range []int{1, 2, 4, 8} {
		d, tr := buildHierarchy(4, 3, 20, workers)
		d.Run()
		if want == nil {
			want, wantStats = tr.perShard, d.Stats()
			continue
		}
		if !reflect.DeepEqual(tr.perShard, want) {
			t.Fatalf("workers=%d hierarchy trace diverges from workers=1", workers)
		}
		if !reflect.DeepEqual(d.Stats(), wantStats) {
			t.Fatalf("workers=%d stats %v diverge from %v", workers, d.Stats(), wantStats)
		}
	}
}

// TestHorizonBeatsUniformWindows: the point of declared edges — spokes
// in different regions only interact through the slow beacon grid, so
// horizon mode must pack far more shards per window than hop-wide
// uniform windows would.
func TestHorizonBeatsUniformWindows(t *testing.T) {
	d, _ := buildHierarchy(4, 3, 20, 1)
	d.Run()
	st := d.Stats()
	if st.AvgActive() < 4 {
		t.Fatalf("hierarchy avg-active %.2f, want >= 4 (stats %v)", st.AvgActive(), st)
	}
	if len(st.Hist) == 0 {
		t.Fatalf("stats histogram missing: %v", st)
	}
	sum := 0
	for _, n := range st.Hist {
		sum += n
	}
	if sum != st.Windows {
		t.Fatalf("histogram sums to %d, want %d windows", sum, st.Windows)
	}
}

// TestUndeclaredEdgeSendPanics: once any edge is declared, messages may
// only flow on declared pairs.
func TestUndeclaredEdgeSendPanics(t *testing.T) {
	d := NewDriver(hop, 1)
	a, b, c := d.AddShard(), d.AddShard(), d.AddShard()
	d.SetEdge(a, b, EdgeLatency{Fixed: hop})
	a.Engine().At(0, func() {
		defer func() {
			if recover() == nil {
				t.Error("Send on undeclared edge did not panic")
			}
		}()
		a.Send(c, a.Engine().Now()+hop, func() {})
	})
	d.Run()
}

// TestGridEdgeBoundsDepartures: a beacon-grid edge quantises departures;
// sends before the grid instant arrive exactly Fixed after the grid
// tick, and sends exactly on the grid depart immediately.
func TestGridEdgeBoundsDepartures(t *testing.T) {
	const grid = 10 * hop
	d := NewDriver(hop, 1)
	a, b := d.AddShard(), d.AddShard()
	d.SetEdge(a, b, EdgeLatency{Fixed: hop, Grid: grid})
	var arrivals []event.Time
	a.Engine().At(3*event.Microsecond, func() { // off-grid
		a.Send(b, a.EarliestTo(b), func() { arrivals = append(arrivals, b.Engine().Now()) })
	})
	a.Engine().At(grid, func() { // exactly on-grid
		a.Send(b, a.EarliestTo(b), func() { arrivals = append(arrivals, b.Engine().Now()) })
	})
	d.Run()
	want := []event.Time{grid + hop, grid + hop}
	if !reflect.DeepEqual(arrivals, want) {
		t.Fatalf("beacon arrivals %v, want %v", arrivals, want)
	}
}

// TestParallelStress hammers the pool under -race: many shards, many
// rounds, counters verified against the closed-form total.
func TestParallelStress(t *testing.T) {
	const nShards, rounds = 16, 200
	d := NewDriver(hop, 8)
	shards := make([]*Shard, nShards)
	for i := range shards {
		shards[i] = d.AddShard()
	}
	var fired atomic.Int64
	// nShards tokens circulate a ring; every hop fires one event on the
	// shard holding the token.
	var relay func(at *Shard, r int) func()
	relay = func(at *Shard, r int) func() {
		return func() {
			fired.Add(1)
			if r < rounds {
				next := shards[(at.id+1)%nShards]
				at.SendAfter(next, hop, relay(next, r+1))
			}
		}
	}
	for _, s := range shards {
		s.Engine().At(0, relay(s, 0))
	}
	d.Run()
	want := int64(nShards * (rounds + 1))
	if got := fired.Load(); got != want {
		t.Fatalf("fired %d events, want %d", got, want)
	}
}
