package parsim

import (
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"

	"mlimp/internal/event"
)

const hop = 10 * event.Microsecond

// trace records (shard, at, label) triples in execution order per shard;
// per-shard traces are the observable artefact two runs must agree on.
type trace struct {
	perShard [][]string
}

func (tr *trace) log(shard int, at event.Time, label string) {
	tr.perShard[shard] = append(tr.perShard[shard], fmt.Sprintf("%d@%d:%s", shard, at, label))
}

// buildPingPong wires nShards spokes around shard 0 as a hub: every
// spoke fires rounds of local events and sends acks to the hub, the hub
// replies, bounded by depth. Returns the driver and the trace.
func buildPingPong(nShards, depth, workers int) (*Driver, *trace) {
	d := NewDriver(hop, workers)
	tr := &trace{perShard: make([][]string, nShards)}
	shards := make([]*Shard, nShards)
	for i := range shards {
		shards[i] = d.AddShard()
	}
	hub := shards[0]
	var pong func(spoke int, round int) func()
	pong = func(spoke, round int) func() {
		return func() {
			tr.log(0, hub.Engine().Now(), fmt.Sprintf("pong-%d-%d", spoke, round))
			if round < depth {
				sp := shards[spoke]
				hub.SendAfter(sp, hop, func() {
					tr.log(spoke, sp.Engine().Now(), fmt.Sprintf("ping-%d", round+1))
					sp.SendAfter(hub, hop, pong(spoke, round+1))
				})
			}
		}
	}
	for i := 1; i < nShards; i++ {
		i := i
		sp := shards[i]
		// Stagger local start times so windows overlap several shards.
		sp.Engine().At(event.Time(i)*event.Microsecond, func() {
			tr.log(i, sp.Engine().Now(), "start")
			sp.SendAfter(hub, hop, pong(i, 0))
		})
	}
	return d, tr
}

func TestWorkerCountEquivalence(t *testing.T) {
	var want [][]string
	var wantStats Stats
	for _, workers := range []int{1, 2, 4, 8} {
		d, tr := buildPingPong(9, 12, workers)
		d.Run()
		if want == nil {
			want = tr.perShard
			wantStats = d.Stats()
			if wantStats.Windows == 0 || wantStats.MaxActive < 2 || wantStats.AvgActive() <= 1 {
				t.Fatalf("ping-pong exposed no parallelism: %+v", wantStats)
			}
			continue
		}
		if !reflect.DeepEqual(tr.perShard, want) {
			t.Fatalf("workers=%d trace diverges from workers=1", workers)
		}
		// Window structure is a property of the simulation, not the
		// worker count.
		if d.Stats() != wantStats {
			t.Fatalf("workers=%d window stats %+v diverge from %+v", workers, d.Stats(), wantStats)
		}
	}
}

// TestDeliveryOrderAtTies sends messages from several shards that all
// arrive at the hub at the same instant; the canonical merge must order
// them by source shard regardless of worker count.
func TestDeliveryOrderAtTies(t *testing.T) {
	for _, workers := range []int{1, 4} {
		d := NewDriver(hop, workers)
		hub := d.AddShard()
		var order []int
		const n = 6
		for i := 1; i <= n; i++ {
			i := i
			sp := d.AddShard()
			// All spokes execute at t=0 and send for delivery at exactly hop.
			sp.Engine().At(0, func() {
				sp.Send(hub, hop, func() { order = append(order, i) })
			})
		}
		d.Run()
		if len(order) != n {
			t.Fatalf("workers=%d: delivered %d of %d", workers, len(order), n)
		}
		for i := 1; i < len(order); i++ {
			if order[i] < order[i-1] {
				t.Fatalf("workers=%d: deliveries out of shard order: %v", workers, order)
			}
		}
	}
}

// TestPerPairFIFO checks that two messages from one shard to another at
// the same delivery time run in send order.
func TestPerPairFIFO(t *testing.T) {
	d := NewDriver(hop, 1)
	a, b := d.AddShard(), d.AddShard()
	var got []string
	a.Engine().At(0, func() {
		a.Send(b, hop, func() { got = append(got, "first") })
		a.Send(b, hop, func() { got = append(got, "second") })
	})
	d.Run()
	if want := []string{"first", "second"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestSetupSendsDeliveredWithoutLocalEvents(t *testing.T) {
	d := NewDriver(hop, 2)
	a, b := d.AddShard(), d.AddShard()
	fired := false
	a.Send(b, hop, func() { fired = true })
	end := d.Run()
	if !fired {
		t.Fatal("setup-time Send never delivered")
	}
	if end != hop {
		t.Fatalf("end time %d, want %d", end, hop)
	}
}

func TestLookaheadViolationPanics(t *testing.T) {
	d := NewDriver(hop, 1)
	a, b := d.AddShard(), d.AddShard()
	a.Engine().At(hop, func() {
		defer func() {
			if recover() == nil {
				t.Error("Send inside the lookahead window did not panic")
			}
		}()
		a.Send(b, a.Engine().Now()+hop-1, func() {})
	})
	d.Run()
}

func TestRunTwicePanics(t *testing.T) {
	d := NewDriver(hop, 1)
	d.AddShard()
	d.Run()
	defer func() {
		if recover() == nil {
			t.Error("second Run did not panic")
		}
	}()
	d.Run()
}

func TestEmptyRun(t *testing.T) {
	d := NewDriver(hop, 4)
	for i := 0; i < 3; i++ {
		d.AddShard()
	}
	if end := d.Run(); end != 0 {
		t.Fatalf("empty run ended at %d", end)
	}
}

// TestParallelStress hammers the pool under -race: many shards, many
// rounds, counters verified against the closed-form total.
func TestParallelStress(t *testing.T) {
	const nShards, rounds = 16, 200
	d := NewDriver(hop, 8)
	shards := make([]*Shard, nShards)
	for i := range shards {
		shards[i] = d.AddShard()
	}
	var fired atomic.Int64
	// nShards tokens circulate a ring; every hop fires one event on the
	// shard holding the token.
	var relay func(at *Shard, r int) func()
	relay = func(at *Shard, r int) func() {
		return func() {
			fired.Add(1)
			if r < rounds {
				next := shards[(at.id+1)%nShards]
				at.SendAfter(next, hop, relay(next, r+1))
			}
		}
	}
	for _, s := range shards {
		s.Engine().At(0, relay(s, 0))
	}
	d.Run()
	want := int64(nShards * (rounds + 1))
	if got := fired.Load(); got != want {
		t.Fatalf("fired %d events, want %d", got, want)
	}
}
