// Package event implements the deterministic event-driven simulation
// engine underlying MLIMP ("We develop an event-driven simulator...",
// Section IV). Devices with different clock domains (2.5 GHz SRAM arrays,
// 300 MHz DRAM banks, 20 MHz ReRAM crossbars, the DDR4 channel) schedule
// timestamped callbacks on a shared engine; ties are broken by insertion
// order so simulations are exactly reproducible.
package event

import "container/heap"

// Time is simulated time in picoseconds. Picosecond resolution represents
// every Table III clock (2.5 GHz = 400 ps, 300 MHz = 3333 ps, 20 MHz =
// 50000 ps) and DDR4 timing without rounding drift over billions of
// cycles.
type Time int64

// Common duration units.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds converts t to floating-point seconds for reporting.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros converts t to floating-point microseconds for reporting.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Millis converts t to floating-point milliseconds for reporting.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// Clock converts between cycle counts of a fixed-frequency domain and
// engine Time.
type Clock struct {
	period Time // picoseconds per cycle
}

// NewClock returns a clock with the given frequency in MHz.
// It panics on a non-positive frequency: a zero-frequency device is a
// configuration bug that would otherwise surface as division by zero deep
// inside a simulation.
func NewClock(mhz float64) Clock {
	if mhz <= 0 {
		panic("event: clock frequency must be positive")
	}
	return Clock{period: Time(1e6/mhz + 0.5)}
}

// Period returns the duration of one cycle.
func (c Clock) Period() Time { return c.period }

// Cycles converts a cycle count to a duration.
func (c Clock) Cycles(n int64) Time { return Time(n) * c.period }

// CyclesAt returns how many full cycles fit in d (rounding up), i.e. the
// cycle count a fixed-latency operation of duration d occupies.
func (c Clock) CyclesAt(d Time) int64 {
	return int64((d + c.period - 1) / c.period)
}

type item struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []item

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(item)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }
func (h eventHeap) peek() item    { return h[0] }
func (h eventHeap) empty() bool   { return len(h) == 0 }

// Engine is a deterministic discrete-event simulator. The zero value is
// ready to use at time 0.
type Engine struct {
	now    Time
	seq    uint64
	events eventHeap
	fired  uint64
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events executed so far, a cheap progress
// and sanity metric for tests.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of scheduled but not yet executed events.
func (e *Engine) Pending() int { return len(e.events) }

// At schedules fn to run at absolute time t. Scheduling in the past
// panics: it would silently reorder causality.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic("event: scheduling in the past")
	}
	e.seq++
	heap.Push(&e.events, item{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Time, fn func()) {
	if d < 0 {
		panic("event: negative delay")
	}
	e.At(e.now+d, fn)
}

// Step executes the single earliest pending event and reports whether one
// existed.
func (e *Engine) Step() bool {
	if e.events.empty() {
		return false
	}
	it := heap.Pop(&e.events).(item)
	e.now = it.at
	e.fired++
	it.fn()
	return true
}

// Run executes events until none remain and returns the final time.
func (e *Engine) Run() Time {
	for e.Step() {
	}
	return e.now
}

// RunUntil executes events with timestamps <= deadline, then advances the
// clock to the deadline. Events scheduled beyond it stay pending.
func (e *Engine) RunUntil(deadline Time) {
	for !e.events.empty() && e.events.peek().at <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}
