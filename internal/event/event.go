// Package event implements the deterministic event-driven simulation
// engine underlying MLIMP ("We develop an event-driven simulator...",
// Section IV). Devices with different clock domains (2.5 GHz SRAM arrays,
// 300 MHz DRAM banks, 20 MHz ReRAM crossbars, the DDR4 channel) schedule
// timestamped callbacks on a shared engine; ties are broken by insertion
// order so simulations are exactly reproducible.
//
// The engine's priority queue is a hand-rolled 4-ary min-heap over a
// plain []item rather than container/heap: no interface boxing, no
// per-event allocation on the steady-state push/pop path, and a flatter
// tree (half the depth of a binary heap) that trades a slightly wider
// sift-down for far fewer cache-missing levels — the right shape for a
// queue that every simulated device hammers on every cycle boundary.
package event

// Time is simulated time in picoseconds. Picosecond resolution represents
// every Table III clock (2.5 GHz = 400 ps, 300 MHz = 3333 ps, 20 MHz =
// 50000 ps) and DDR4 timing without rounding drift over billions of
// cycles.
type Time int64

// Common duration units.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds converts t to floating-point seconds for reporting.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros converts t to floating-point microseconds for reporting.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Millis converts t to floating-point milliseconds for reporting.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// Clock converts between cycle counts of a fixed-frequency domain and
// engine Time.
type Clock struct {
	period Time // picoseconds per cycle
}

// NewClock returns a clock with the given frequency in MHz.
//
// Rounding contract: the period is rounded to the nearest picosecond
// once, here, and every subsequent conversion uses that integral period
// exactly. Cycle arithmetic therefore never accumulates floating-point
// drift — over billions of cycles the only divergence from the exact
// rational period is the fixed sub-picosecond rounding of the period
// itself, i.e. at most 0.5 ps per cycle (a bounded relative error of
// 0.5/period, about 1.2e-3 for the fastest Table III clock and 6e-6 for
// the slowest). Two engines using the same frequency always agree bit
// for bit.
//
// It panics on a non-positive frequency: a zero-frequency device is a
// configuration bug that would otherwise surface as division by zero deep
// inside a simulation.
func NewClock(mhz float64) Clock {
	if mhz <= 0 {
		panic("event: clock frequency must be positive")
	}
	return Clock{period: Time(1e6/mhz + 0.5)}
}

// Period returns the duration of one cycle.
func (c Clock) Period() Time { return c.period }

// Cycles converts a cycle count to a duration.
func (c Clock) Cycles(n int64) Time { return Time(n) * c.period }

// CyclesAt returns how many full cycles fit in d (rounding up), i.e. the
// cycle count a fixed-latency operation of duration d occupies.
func (c Clock) CyclesAt(d Time) int64 {
	return int64((d + c.period - 1) / c.period)
}

type item struct {
	at  Time
	seq uint64
	fn  func()
}

// heapArity is the fan-out of the event heap. Four children per node
// halves the tree depth of a binary heap; sift-down scans at most four
// contiguous items, which is one cache line of (at, seq) keys.
const heapArity = 4

// Engine is a deterministic discrete-event simulator. The zero value is
// ready to use at time 0.
type Engine struct {
	now    Time
	seq    uint64
	events []item // 4-ary min-heap ordered by (at, seq)
	fired  uint64
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events executed so far, a cheap progress
// and sanity metric for tests.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of scheduled but not yet executed events.
func (e *Engine) Pending() int { return len(e.events) }

// NextAt returns the timestamp of the earliest pending event, and false
// when the queue is empty. Peeking does not advance the clock — this is
// the probe the parallel shard driver (event/parsim) uses to find the
// global minimum next-event time before opening a simulation window.
func (e *Engine) NextAt() (Time, bool) {
	if len(e.events) == 0 {
		return 0, false
	}
	return e.events[0].at, true
}

// Reserve grows the event queue's backing array so that at least n more
// events can be scheduled without reallocation — the hint callers with a
// known arrival count (dispatchers, load generators) use to keep the
// push path allocation-free from the first event.
func (e *Engine) Reserve(n int) {
	if free := cap(e.events) - len(e.events); free >= n {
		return
	}
	grown := make([]item, len(e.events), len(e.events)+n)
	copy(grown, e.events)
	e.events = grown
}

// less orders the heap by (at, seq): earliest timestamp first, insertion
// order within a timestamp — the determinism contract traces rely on.
func less(a, b item) bool {
	return a.at < b.at || (a.at == b.at && a.seq < b.seq)
}

// push appends it and restores the heap invariant with an inlined
// sift-up. Steady state (capacity already there) performs zero
// allocations.
func (e *Engine) push(it item) {
	h := append(e.events, it)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / heapArity
		if !less(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	e.events = h
}

// pop removes and returns the minimum item, restoring the invariant with
// an inlined sift-down. The vacated tail slot is zeroed so the engine
// does not pin popped callbacks for the garbage collector.
func (e *Engine) pop() item {
	h := e.events
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = item{}
	h = h[:n]
	i := 0
	for {
		first := i*heapArity + 1
		if first >= n {
			break
		}
		best := first
		last := first + heapArity
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if less(h[c], h[best]) {
				best = c
			}
		}
		if !less(h[best], h[i]) {
			break
		}
		h[i], h[best] = h[best], h[i]
		i = best
	}
	e.events = h
	return top
}

// At schedules fn to run at absolute time t. Scheduling in the past
// panics: it would silently reorder causality.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic("event: scheduling in the past")
	}
	e.seq++
	e.push(item{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Time, fn func()) {
	if d < 0 {
		panic("event: negative delay")
	}
	e.At(e.now+d, fn)
}

// Step executes the single earliest pending event and reports whether one
// existed.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	it := e.pop()
	e.now = it.at
	e.fired++
	it.fn()
	return true
}

// Run executes events until none remain and returns the final time.
func (e *Engine) Run() Time {
	for e.Step() {
	}
	return e.now
}

// RunUntil executes events with timestamps <= deadline, then advances the
// clock to the deadline. Events scheduled beyond it stay pending.
func (e *Engine) RunUntil(deadline Time) {
	for len(e.events) > 0 && e.events[0].at <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}
