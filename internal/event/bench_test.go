package event

import (
	"math/rand"
	"testing"
)

// BenchmarkPushPop measures the steady-state schedule/fire cycle: one
// push and one pop per iteration against a pre-warmed queue. The 4-ary
// heap must stay at 0 allocs/op here — the backing array is hot and the
// callback is hoisted so no closure is allocated per event.
func BenchmarkPushPop(b *testing.B) {
	var e Engine
	e.Reserve(1024)
	fn := func() {}
	rng := rand.New(rand.NewSource(1))
	// Warm the queue to a realistic depth so sift paths are non-trivial.
	for i := 0; i < 512; i++ {
		e.At(e.now+Time(rng.Int63n(1000)), fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.At(e.now+Time(i%1000), fn)
		e.Step()
	}
}

// BenchmarkPush measures pure scheduling throughput into a reserved
// queue (drained outside the timer), the dispatcher's submit path.
func BenchmarkPush(b *testing.B) {
	var e Engine
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += 1024 {
		b.StopTimer()
		e.Reserve(1024)
		b.StartTimer()
		for j := 0; j < 1024 && i+j < b.N; j++ {
			e.At(Time(j), fn)
		}
		b.StopTimer()
		for e.Step() {
		}
		e.now = 0
		b.StartTimer()
	}
}

// BenchmarkRun measures draining a pre-scheduled queue: pop-heavy, the
// shape of Engine.Run inside every experiment.
func BenchmarkRun(b *testing.B) {
	const n = 4096
	fn := func() {}
	rng := rand.New(rand.NewSource(2))
	at := make([]Time, n)
	for i := range at {
		at[i] = Time(rng.Int63n(1 << 20))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		var e Engine
		e.Reserve(n)
		for _, t := range at {
			e.At(t, fn)
		}
		b.StartTimer()
		e.Run()
	}
}

// BenchmarkCascade measures the self-rescheduling pattern of device
// models (each completion schedules the next), queue depth 1.
func BenchmarkCascade(b *testing.B) {
	var e Engine
	e.Reserve(1)
	b.ReportAllocs()
	var tick func()
	n := 0
	tick = func() {
		n++
		if n < b.N {
			e.After(100, tick)
		}
	}
	b.ResetTimer()
	e.After(100, tick)
	e.Run()
}
