package mem

// Array-level failures. A failed array is withdrawn from the
// allocatable pool: free arrays are removed immediately, while arrays
// currently granted to jobs finish their work first and are collected
// when the allocation is released (a running bit-serial kernel is not
// torn out from under the job; the array is simply never re-issued).
// This is the device-side half of the fleet fault plan
// (internal/fault); schedulers observe the shrunk capacity through
// FreeArrays/CapacityArrays and re-plan.

// FailArrays takes n arrays out of service. Free arrays fail now;
// any remainder is debited lazily as granted allocations release.
func (d *Device) FailArrays(n int) {
	if n <= 0 {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if usable := d.capLocked(); n > usable {
		n = usable // cannot fail more arrays than the device has left
	}
	take := n
	if take > d.free {
		take = d.free
	}
	d.free -= take
	d.pendingFail += n - take
	d.failed += n
}

// RepairArrays returns n previously failed arrays to service (spare
// remapping / scrubbing succeeded). Pending-but-uncollected failures
// are cancelled first; actually-collected arrays return to the free
// pool.
func (d *Device) RepairArrays(n int) {
	if n <= 0 {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if n > d.failed {
		n = d.failed
	}
	cancel := n
	if cancel > d.pendingFail {
		cancel = d.pendingFail
	}
	d.pendingFail -= cancel
	d.free += n - cancel
	d.failed -= n
}

// FailedArrays returns the number of arrays currently out of service.
func (d *Device) FailedArrays() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.failed
}

// capLocked is CapacityArrays without the lock: the arrays that remain
// usable once every outstanding allocation drains. Granted arrays that
// are doomed (pendingFail) are already excluded.
func (d *Device) capLocked() int {
	total := d.free - d.pendingFail
	for _, n := range d.granted {
		total += n
	}
	return total
}
