package mem

// Array-level failures. A failed array is withdrawn from the
// allocatable pool: free arrays are removed immediately, while arrays
// currently granted to jobs finish their work first and are collected
// when the allocation is released (a running bit-serial kernel is not
// torn out from under the job; the array is simply never re-issued).
// This is the device-side half of the fleet fault plan
// (internal/fault); schedulers observe the shrunk capacity through
// FreeArrays/CapacityArrays and re-plan.
//
// Failures are tracked at array granularity: the allocatable IDs are
// [0, universe), and the failed region is always the top `failed` IDs
// of that range. Failing takes the highest live IDs; repairing returns
// the most recently failed IDs first (LIFO by construction), so a
// fail/repair round trip names exactly the same physical arrays.

// Span is a half-open range [Lo, Hi) of physical array IDs.
type Span struct{ Lo, Hi int }

// Count returns the number of IDs in the span.
func (s Span) Count() int { return s.Hi - s.Lo }

// FailArrays takes n arrays out of service and returns the span of
// newly failed IDs. Free arrays fail now; any remainder is debited
// lazily as granted allocations release.
func (d *Device) FailArrays(n int) Span {
	if n <= 0 {
		return Span{}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if usable := d.capLocked(); n > usable {
		n = usable // cannot fail more arrays than the device has left
	}
	take := n
	if take > d.free {
		take = d.free
	}
	d.free -= take
	d.pendingFail += n - take
	before := d.failed
	d.failed += n
	return Span{Lo: d.universe - d.failed, Hi: d.universe - before}
}

// RepairArrays returns n previously failed arrays to service (spare
// remapping / scrubbing succeeded) and reports the span of repaired
// IDs — the most recently failed ones. Pending-but-uncollected
// failures are cancelled first; actually-collected arrays return to
// the free pool.
func (d *Device) RepairArrays(n int) Span {
	if n <= 0 {
		return Span{}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if n > d.failed {
		n = d.failed
	}
	cancel := n
	if cancel > d.pendingFail {
		cancel = d.pendingFail
	}
	d.pendingFail -= cancel
	d.free += n - cancel
	before := d.failed
	d.failed -= n
	return Span{Lo: d.universe - before, Hi: d.universe - d.failed}
}

// FailedArrays returns the number of arrays currently out of service.
func (d *Device) FailedArrays() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.failed
}

// FailedIDs returns the span of array IDs currently out of service:
// the top FailedArrays() IDs of the allocatable range.
func (d *Device) FailedIDs() Span {
	d.mu.Lock()
	defer d.mu.Unlock()
	return Span{Lo: d.universe - d.failed, Hi: d.universe}
}

// capLocked is CapacityArrays without the lock: the arrays that remain
// usable once every outstanding allocation drains. Granted arrays that
// are doomed (pendingFail) are already excluded.
func (d *Device) capLocked() int {
	total := d.free - d.pendingFail
	for _, n := range d.granted {
		total += n
	}
	return total
}
