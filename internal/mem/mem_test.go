package mem

import (
	"strings"
	"testing"

	"mlimp/internal/isa"
)

func TestTableIIIConfigs(t *testing.T) {
	cases := []struct {
		cfg       Config
		totalALUs int64
		mhz       float64
	}{
		{SRAMConfig, 1_310_720, 2500}, // 1.31 M
		{DRAMConfig, 67_108_864, 300}, // 67.1 M
		{ReRAMConfig, 1_376_256, 20},  // 1.37 M
	}
	for _, c := range cases {
		if got := c.cfg.TotalALUs(); got != c.totalALUs {
			t.Errorf("%s ALUs = %d, want %d", c.cfg.Target, got, c.totalALUs)
		}
		if c.cfg.FreqMHz != c.mhz {
			t.Errorf("%s freq = %v", c.cfg.Target, c.cfg.FreqMHz)
		}
	}
	// ReRAM chip: 128*128*2 bits * 86016 arrays = 336 MB.
	if got := ReRAMConfig.TotalBytes(); got != 336*1024*1024 {
		t.Errorf("ReRAM capacity = %d, want 336 MiB", got)
	}
	// SRAM compute region: 256*256 bits * 5120 = 40 MiB.
	if got := SRAMConfig.TotalBytes(); got != 40*1024*1024 {
		t.Errorf("SRAM capacity = %d, want 40 MiB", got)
	}
	// DRAM: 64 GiB of DDR4.
	if got := DRAMConfig.TotalBytes(); got != 64*1024*1024*1024 {
		t.Errorf("DRAM capacity = %d, want 64 GiB", got)
	}
}

func TestConfigFor(t *testing.T) {
	for _, tgt := range isa.Targets {
		c := ConfigFor(tgt)
		if c.Target != tgt {
			t.Errorf("ConfigFor(%s).Target = %s", tgt, c.Target)
		}
		if !strings.Contains(c.String(), tgt.String()) {
			t.Errorf("String missing target: %q", c.String())
		}
	}
}

func TestClockMatchesFrequency(t *testing.T) {
	if p := SRAMConfig.Clock().Period(); p != 400 {
		t.Errorf("SRAM period = %d ps, want 400", p)
	}
	if p := ReRAMConfig.Clock().Period(); p != 50000 {
		t.Errorf("ReRAM period = %d ps, want 50000", p)
	}
}

func TestDeviceAllocRelease(t *testing.T) {
	d := NewDevice(Config{Target: isa.SRAM, ArrayRows: 256, ArrayCols: 256,
		BitsPerCell: 1, NumArrays: 100, FreqMHz: 2500, ALUsPerArray: 256, MaxJobs: 2}, 10)
	if d.FreeArrays() != 90 || d.CapacityArrays() != 90 {
		t.Fatalf("free=%d cap=%d", d.FreeArrays(), d.CapacityArrays())
	}
	a1, err := d.Alloc(40)
	if err != nil {
		t.Fatal(err)
	}
	if a1.ALUs() != 40*256 {
		t.Errorf("ALUs = %d", a1.ALUs())
	}
	if a1.Bytes() != 40*8192 {
		t.Errorf("Bytes = %d", a1.Bytes())
	}
	a2, err := d.Alloc(50)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Alloc(1); err == nil {
		t.Error("third alloc should hit the job limit")
	}
	d.Release(a1)
	if d.FreeArrays() != 40 || d.ActiveJobs() != 1 {
		t.Errorf("after release free=%d jobs=%d", d.FreeArrays(), d.ActiveJobs())
	}
	if _, err := d.Alloc(41); err == nil {
		t.Error("over-capacity alloc should fail")
	}
	if _, err := d.Alloc(0); err == nil {
		t.Error("zero alloc should fail")
	}
	d.Release(a2)
	if d.FreeArrays() != 90 || d.ActiveJobs() != 0 {
		t.Error("accounting broken after full release")
	}
}

func TestDoubleReleasePanics(t *testing.T) {
	d := NewDevice(SRAMConfig, 0)
	a, _ := d.Alloc(1)
	d.Release(a)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on double release")
		}
	}()
	d.Release(a)
}

func TestNewDevicePanicsOnBadReserve(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewDevice(SRAMConfig, SRAMConfig.NumArrays)
}

func TestTechnologies(t *testing.T) {
	ts := Technologies()
	if len(ts) != 5 {
		t.Fatalf("want 5 technologies, got %d", len(ts))
	}
	sram, ok := TechnologyByName("SRAM")
	if !ok {
		t.Fatal("SRAM missing")
	}
	dram, _ := TechnologyByName("DRAM")
	flash, _ := TechnologyByName("NAND-Flash")
	reram, _ := TechnologyByName("ReRAM")
	// Figure 1 shape: SRAM is the fastest and most parallel; Flash and
	// DRAM have low parallelism despite small cells (shared SAs); NVM
	// energy/access exceeds SRAM by 1-2 orders of magnitude.
	if sram.LatencyNs >= dram.LatencyNs {
		t.Error("SRAM should be faster than DRAM")
	}
	if sram.Parallelism() <= dram.Parallelism() {
		t.Error("SRAM SA parallelism should exceed DRAM (shared SAs)")
	}
	if reram.Parallelism() <= dram.Parallelism() {
		t.Error("ReRAM multi-row analog parallelism should exceed DRAM")
	}
	if flash.Parallelism() >= dram.Parallelism() {
		t.Error("flash parallelism should be lowest")
	}
	if ratio := reram.EnergyPJPerBit / sram.EnergyPJPerBit; ratio < 10 || ratio > 200 {
		t.Errorf("ReRAM/SRAM energy ratio = %.1f, want 1-2 orders of magnitude", ratio)
	}
	if _, ok := TechnologyByName("bogus"); ok {
		t.Error("bogus lookup should fail")
	}
}
