package mem

import (
	"testing"

	"mlimp/internal/isa"
)

func faultDevice(arrays int) *Device {
	return NewDevice(Config{
		Target: isa.SRAM, ArrayRows: 16, ArrayCols: 16, BitsPerCell: 1,
		NumArrays: arrays, FreqMHz: 1000, ALUsPerArray: 16, MaxJobs: 8,
	}, 0)
}

func TestFailArraysImmediateAndPending(t *testing.T) {
	d := faultDevice(10)
	d.FailArrays(3)
	if d.FreeArrays() != 7 || d.CapacityArrays() != 7 || d.FailedArrays() != 3 {
		t.Fatalf("after immediate fail: free=%d cap=%d failed=%d",
			d.FreeArrays(), d.CapacityArrays(), d.FailedArrays())
	}

	a, err := d.Alloc(5)
	if err != nil {
		t.Fatal(err)
	}
	// Only 2 arrays are free; the other 2 must be collected on release.
	d.FailArrays(4)
	if d.FreeArrays() != 0 {
		t.Errorf("free = %d, want 0", d.FreeArrays())
	}
	if d.CapacityArrays() != 3 {
		t.Errorf("capacity = %d, want 3 (10 physical - 7 failed)", d.CapacityArrays())
	}
	if d.FailedArrays() != 7 {
		t.Errorf("failed = %d, want 7", d.FailedArrays())
	}

	d.Release(a)
	if d.FreeArrays() != 3 || d.CapacityArrays() != 3 {
		t.Errorf("after release: free=%d cap=%d, want 3/3", d.FreeArrays(), d.CapacityArrays())
	}
	if _, err := d.Alloc(4); err == nil {
		t.Error("allocation beyond degraded capacity succeeded")
	}
}

func TestRepairArrays(t *testing.T) {
	d := faultDevice(10)
	d.FailArrays(6)
	d.RepairArrays(4)
	if d.FreeArrays() != 8 || d.FailedArrays() != 2 {
		t.Errorf("after partial repair: free=%d failed=%d, want 8/2", d.FreeArrays(), d.FailedArrays())
	}
	d.RepairArrays(100) // clamped to what is failed
	if d.FreeArrays() != 10 || d.FailedArrays() != 0 {
		t.Errorf("after full repair: free=%d failed=%d, want 10/0", d.FreeArrays(), d.FailedArrays())
	}
}

func TestRepairCancelsPendingFirst(t *testing.T) {
	d := faultDevice(4)
	a, err := d.Alloc(3)
	if err != nil {
		t.Fatal(err)
	}
	d.FailArrays(3) // 1 free fails now, 2 pend on the running job
	if d.CapacityArrays() != 1 {
		t.Fatalf("capacity = %d, want 1", d.CapacityArrays())
	}
	d.RepairArrays(2) // cancels the pending debits, no free arrays appear yet
	if d.FreeArrays() != 0 || d.FailedArrays() != 1 || d.CapacityArrays() != 3 {
		t.Errorf("after repair: free=%d failed=%d cap=%d, want 0/1/3",
			d.FreeArrays(), d.FailedArrays(), d.CapacityArrays())
	}
	d.Release(a)
	if d.FreeArrays() != 3 || d.CapacityArrays() != 3 {
		t.Errorf("after release: free=%d cap=%d, want 3/3", d.FreeArrays(), d.CapacityArrays())
	}
}

func TestFailArraysClampsToPhysical(t *testing.T) {
	d := faultDevice(5)
	d.FailArrays(1000)
	if d.FailedArrays() != 5 || d.CapacityArrays() != 0 {
		t.Errorf("total failure: failed=%d cap=%d, want 5/0", d.FailedArrays(), d.CapacityArrays())
	}
	if _, err := d.Alloc(1); err == nil {
		t.Error("allocation on a fully failed device succeeded")
	}
	d.FailArrays(0) // no-op
	d.RepairArrays(-1)
	if d.FailedArrays() != 5 {
		t.Errorf("no-op calls changed state: failed=%d", d.FailedArrays())
	}
}
