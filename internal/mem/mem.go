// Package mem defines the common abstraction over MLIMP's computable
// memories: the Table III device configurations, the Figure 1 technology
// characteristics, and the scratchpad allocation scheme that lets
// in-memory compute regions co-exist with the conventional cache/memory
// system (Section III-B2, VLS-style coarse partitions).
package mem

import (
	"fmt"
	"sort"
	"sync"

	"mlimp/internal/event"
	"mlimp/internal/isa"
)

// Config describes one in-memory computing device, mirroring a Table III
// row.
type Config struct {
	Target       isa.Target
	ArrayRows    int // wordlines per array
	ArrayCols    int // bitlines per array
	BitsPerCell  int
	NumArrays    int
	MBPerMM2     float64
	FreqMHz      float64
	ALUsPerArray int
	MaxJobs      int // outstanding jobs per device ("up to 8", Sec. V-A)
}

// TotalALUs returns the device-wide SIMD ALU count.
func (c Config) TotalALUs() int64 { return int64(c.NumArrays) * int64(c.ALUsPerArray) }

// ArrayBits returns the bit capacity of one array.
func (c Config) ArrayBits() int64 {
	return int64(c.ArrayRows) * int64(c.ArrayCols) * int64(c.BitsPerCell)
}

// ArrayBytes returns the byte capacity of one array.
func (c Config) ArrayBytes() int64 { return c.ArrayBits() / 8 }

// TotalBytes returns the device-wide byte capacity.
func (c Config) TotalBytes() int64 { return c.ArrayBytes() * int64(c.NumArrays) }

// Clock returns the device clock.
func (c Config) Clock() event.Clock { return event.NewClock(c.FreqMHz) }

// String renders the Table III row.
func (c Config) String() string {
	return fmt.Sprintf("%-5s %4dx%-6d x%d bit/cell  #arrays=%-6d %5.1f MB/mm2 %6.0f MHz  ALUs=%d",
		c.Target, c.ArrayRows, c.ArrayCols, c.BitsPerCell, c.NumArrays,
		c.MBPerMM2, c.FreqMHz, c.TotalALUs())
}

// Table III configurations. SRAM uses half the LLC for in-cache
// computing (Section V-A); DRAM is DDR4-2400 with 4 channels, 1 rank, 16
// chips, 16 banks (1,024 computable banks); ReRAM is the 336 MB
// accelerator chip scaled down from IMP.
var (
	// SRAMConfig: 256x256 arrays, 5,120 arrays, 2.5 GHz, 256 bit-serial
	// ALUs per array (1.31 M total).
	SRAMConfig = Config{
		Target: isa.SRAM, ArrayRows: 256, ArrayCols: 256, BitsPerCell: 1,
		NumArrays: 5120, MBPerMM2: 0.6, FreqMHz: 2500, ALUsPerArray: 256,
		MaxJobs: 8,
	}
	// DRAMConfig: 8 KB rows x 8,192 per bank, 1,024 banks, 300 MHz
	// in-memory op rate, 65,536 bitline ALUs per bank (67.1 M total).
	DRAMConfig = Config{
		Target: isa.DRAM, ArrayRows: 8192, ArrayCols: 65536, BitsPerCell: 1,
		NumArrays: 1024, MBPerMM2: 17.5, FreqMHz: 300, ALUsPerArray: 65536,
		MaxJobs: 8,
	}
	// ReRAMConfig: 128x128 crossbars with 2-bit cells, 86,016 arrays,
	// 20 MHz, 16 ALUs per array (1.37 M total) — the 336 MB chip.
	ReRAMConfig = Config{
		Target: isa.ReRAM, ArrayRows: 128, ArrayCols: 128, BitsPerCell: 2,
		NumArrays: 86016, MBPerMM2: 2.5, FreqMHz: 20, ALUsPerArray: 16,
		MaxJobs: 8,
	}
)

// ConfigFor returns the Table III configuration of a target.
func ConfigFor(t isa.Target) Config {
	switch t {
	case isa.SRAM:
		return SRAMConfig
	case isa.DRAM:
		return DRAMConfig
	case isa.ReRAM:
		return ReRAMConfig
	}
	panic("mem: unknown target")
}

// Allocation is a scratchpad reservation of whole arrays on one device —
// the coarse-grained partition of Section III-B2 that avoids integrating
// compute lines with set-associative caching.
type Allocation struct {
	Device *Device
	Arrays int
	id     int64
}

// ALUs returns the SIMD lanes available to this allocation.
func (a *Allocation) ALUs() int64 {
	return int64(a.Arrays) * int64(a.Device.Config.ALUsPerArray)
}

// Bytes returns the scratchpad capacity of this allocation.
func (a *Allocation) Bytes() int64 {
	return int64(a.Arrays) * a.Device.Config.ArrayBytes()
}

// Device is an allocatable in-memory compute resource. It tracks array
// ownership and enforces the outstanding-job limit. Device methods are
// safe for concurrent use so schedulers may run in parallel with the
// simulation loop.
type Device struct {
	Config Config

	mu       sync.Mutex
	universe int // allocatable IDs are [0, universe); reserve sits above
	free     int
	jobs     int
	nextID   int64
	granted  map[int64]int

	// Failure-injection state (fault.go): arrays out of service, and the
	// portion still held by running jobs, to be collected on Release.
	failed      int
	pendingFail int
}

// NewDevice builds a device with all arrays free. A fraction of arrays
// can be withheld for the conventional cache/memory system via reserve
// (e.g. keeping half the LLC as a general cache).
func NewDevice(c Config, reserve int) *Device {
	if reserve < 0 || reserve >= c.NumArrays {
		panic("mem: invalid reservation")
	}
	u := c.NumArrays - reserve
	return &Device{Config: c, universe: u, free: u, granted: make(map[int64]int)}
}

// FreeArrays returns the number of currently unallocated arrays.
func (d *Device) FreeArrays() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.free
}

// CapacityArrays returns the total allocatable arrays (after
// reservation, excluding failed arrays — see fault.go).
func (d *Device) CapacityArrays() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.capLocked()
}

// ActiveJobs returns the number of outstanding allocations.
func (d *Device) ActiveJobs() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.jobs
}

// Alloc reserves arrays for one job. It fails when fewer arrays are free
// or the outstanding-job limit is reached.
func (d *Device) Alloc(arrays int) (*Allocation, error) {
	if arrays <= 0 {
		return nil, fmt.Errorf("mem: allocation must be positive, got %d", arrays)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.jobs >= d.Config.MaxJobs {
		return nil, fmt.Errorf("mem: %s job limit %d reached", d.Config.Target, d.Config.MaxJobs)
	}
	if arrays > d.free {
		return nil, fmt.Errorf("mem: %s wants %d arrays, %d free", d.Config.Target, arrays, d.free)
	}
	d.free -= arrays
	d.jobs++
	d.nextID++
	d.granted[d.nextID] = arrays
	return &Allocation{Device: d, Arrays: arrays, id: d.nextID}, nil
}

// Release returns an allocation's arrays to the pool. Releasing twice
// panics: it would corrupt accounting silently.
func (d *Device) Release(a *Allocation) {
	d.mu.Lock()
	defer d.mu.Unlock()
	n, ok := d.granted[a.id]
	if !ok {
		panic("mem: double release")
	}
	delete(d.granted, a.id)
	d.free += n
	d.jobs--
	// Collect failures that were waiting on running jobs (fault.go).
	if d.pendingFail > 0 {
		take := d.pendingFail
		if take > d.free {
			take = d.free
		}
		d.free -= take
		d.pendingFail -= take
	}
}

// Technology characterises one memory technology for the Figure 1
// landscape: relative energy per access, access delay, and the
// parallelism proxy (sense-amplifier density per unit area).
type Technology struct {
	Name           string
	EnergyPJPerBit float64 // energy per bit accessed
	LatencyNs      float64 // array access latency
	CellSizeF2     float64 // bit-cell area in F^2
	SAShare        float64 // fraction of columns with a private sense amp
}

// Parallelism is the Figure 1 compute-parallelism proxy: available sense
// amplifiers per unit area (higher is better), normalised to DRAM = 1.
func (t Technology) Parallelism() float64 {
	dram := technologies[1]
	self := t.SAShare / t.CellSizeF2
	ref := dram.SAShare / dram.CellSizeF2
	return self / ref
}

var technologies = []Technology{
	{Name: "SRAM", EnergyPJPerBit: 0.03, LatencyNs: 0.4, CellSizeF2: 146, SAShare: 1},
	{Name: "DRAM", EnergyPJPerBit: 0.4, LatencyNs: 45, CellSizeF2: 6, SAShare: 1.0 / 512},
	{Name: "ReRAM", EnergyPJPerBit: 2.0, LatencyNs: 50, CellSizeF2: 4, SAShare: 1.0 / 8},
	{Name: "STT-RAM", EnergyPJPerBit: 1.0, LatencyNs: 35, CellSizeF2: 20, SAShare: 1.0 / 16},
	{Name: "NAND-Flash", EnergyPJPerBit: 5.0, LatencyNs: 25000, CellSizeF2: 1, SAShare: 1.0 / 16384},
}

// Technologies returns the Figure 1 characterisation table sorted by
// name for stable output.
func Technologies() []Technology {
	out := append([]Technology(nil), technologies...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// TechnologyByName looks up one Figure 1 row.
func TechnologyByName(name string) (Technology, bool) {
	for _, t := range technologies {
		if t.Name == name {
			return t, true
		}
	}
	return Technology{}, false
}
