package tensor

import (
	"runtime"
	"sort"
	"sync"
)

// parallelMinWork is the per-goroutine floor, in fused multiply-adds, of
// the row-parallel kernels. Below roughly this much work a goroutine's
// spawn/join cost exceeds what it computes, so small shapes keep the
// serial path (and its exact performance profile). At ~1–2 ns per
// fixed-point FMA the floor corresponds to ~100 µs of serial work.
const parallelMinWork = 1 << 16

// kernelWorkers returns how many goroutines a kernel with the given
// total work (fused multiply-adds) and output-row count should use:
// never more than GOMAXPROCS, never more than one per row, and never so
// many that a goroutine gets less than parallelMinWork. A result < 2
// means "stay serial".
func kernelWorkers(rows int, work int64) int {
	n := runtime.GOMAXPROCS(0)
	if byWork := int(work / parallelMinWork); byWork < n {
		n = byWork
	}
	if rows < n {
		n = rows
	}
	return n
}

// forEachRowChunk partitions [0, rows) into n contiguous disjoint
// chunks and runs body on each concurrently, blocking until all finish.
// Each chunk owns its output rows exclusively, so fixed-point results
// are bit-identical to a serial sweep regardless of interleaving — the
// determinism invariant every parallel kernel below relies on. n < 2
// degenerates to a serial call on the calling goroutine.
func forEachRowChunk(rows, n int, body func(lo, hi int)) {
	if n < 2 {
		body(0, rows)
		return
	}
	var wg sync.WaitGroup
	wg.Add(n)
	for w := 0; w < n; w++ {
		lo, hi := rows*w/n, rows*(w+1)/n
		go func() {
			defer wg.Done()
			body(lo, hi)
		}()
	}
	wg.Wait()
}

// forEachRowChunkNNZ is forEachRowChunk for CSR row sweeps: chunk
// boundaries are chosen so each goroutine gets an approximately equal
// share of the nonzeros (via RowPtr), not an equal share of the rows —
// power-law graphs concentrate most work in a few hub rows, and an
// even row split would leave one goroutine holding them all. The
// partition depends only on the matrix structure, so it is
// deterministic.
func forEachRowChunkNNZ(a *CSR, n int, body func(lo, hi int)) {
	if n < 2 {
		body(0, a.Rows)
		return
	}
	nnz := a.NNZ()
	bounds := make([]int, n+1)
	bounds[n] = a.Rows
	for w := 1; w < n; w++ {
		target := int32(nnz * w / n)
		// First row whose cumulative nonzero count reaches the target.
		lo := sort.Search(a.Rows, func(r int) bool { return a.RowPtr[r+1] >= target })
		if lo < bounds[w-1] {
			lo = bounds[w-1] // keep chunks non-overlapping on empty prefixes
		}
		bounds[w] = lo
	}
	var wg sync.WaitGroup
	wg.Add(n)
	for w := 0; w < n; w++ {
		lo, hi := bounds[w], bounds[w+1]
		go func() {
			defer wg.Done()
			body(lo, hi)
		}()
	}
	wg.Wait()
}
