package tensor

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mlimp/internal/fixed"
)

func TestDenseBasics(t *testing.T) {
	d := NewDense(2, 3)
	d.Set(1, 2, fixed.FromInt(7))
	if d.At(1, 2) != fixed.FromInt(7) {
		t.Error("Set/At roundtrip failed")
	}
	if got := d.SizeBytes(); got != 12 {
		t.Errorf("SizeBytes = %d, want 12", got)
	}
	row := d.Row(1)
	if len(row) != 3 || row[2] != fixed.FromInt(7) {
		t.Error("Row aliasing wrong")
	}
	c := d.Clone()
	if !c.Equal(d) {
		t.Error("Clone not equal")
	}
	c.Set(0, 0, 1)
	if d.At(0, 0) == 1 {
		t.Error("Clone must not alias")
	}
}

func TestDensePanicsOnNegativeDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewDense(-1, 2)
}

func TestNewDenseFromFloats(t *testing.T) {
	d := NewDenseFromFloats(2, 2, []float64{1, 2, 3, 4})
	if d.At(1, 0).Float() != 3 {
		t.Error("FromFloats layout wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic on bad length")
		}
	}()
	NewDenseFromFloats(2, 2, []float64{1})
}

func TestTranspose(t *testing.T) {
	d := NewDenseFromFloats(2, 3, []float64{1, 2, 3, 4, 5, 6})
	tr := d.Transpose()
	if tr.Rows != 3 || tr.Cols != 2 {
		t.Fatalf("shape = %dx%d", tr.Rows, tr.Cols)
	}
	if tr.At(2, 1).Float() != 6 || tr.At(0, 1).Float() != 4 {
		t.Error("transpose values wrong")
	}
	if !tr.Transpose().Equal(d) {
		t.Error("double transpose should be identity")
	}
}

func TestGEMMSmall(t *testing.T) {
	a := NewDenseFromFloats(2, 2, []float64{1, 2, 3, 4})
	b := NewDenseFromFloats(2, 2, []float64{5, 6, 7, 8})
	c := GEMM(a, b)
	want := NewDenseFromFloats(2, 2, []float64{19, 22, 43, 50})
	if !c.Equal(want) {
		t.Errorf("GEMM = %v, want %v", c.Data, want.Data)
	}
}

func TestGEMMIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := RandomDense(rng, 5, 5, 4)
	id := NewDense(5, 5)
	for i := 0; i < 5; i++ {
		id.Set(i, i, fixed.FromInt(1))
	}
	if !GEMM(a, id).Equal(a) {
		t.Error("A*I != A")
	}
	if !GEMM(id, a).Equal(a) {
		t.Error("I*A != A")
	}
}

func TestGEMMPanicsOnShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	GEMM(NewDense(2, 3), NewDense(2, 3))
}

func TestVaddAndReLU(t *testing.T) {
	a := NewDenseFromFloats(1, 3, []float64{1, -2, 3})
	b := NewDenseFromFloats(1, 3, []float64{1, 1, 1})
	c := Vadd(a, b)
	want := NewDenseFromFloats(1, 3, []float64{2, -1, 4})
	if !c.Equal(want) {
		t.Error("Vadd wrong")
	}
	r := c.ReLU()
	if r.At(0, 1) != 0 || r.At(0, 2).Float() != 4 {
		t.Error("ReLU wrong")
	}
}

func TestFromCOOAndAt(t *testing.T) {
	m := FromCOO(4, 4, []Coord{
		{Row: 2, Col: 1, Val: fixed.FromInt(5)},
		{Row: 0, Col: 3, Val: fixed.FromInt(1)},
		{Row: 2, Col: 3, Val: fixed.FromInt(2)},
		{Row: 2, Col: 1, Val: fixed.FromInt(3)}, // duplicate: summed
	})
	if m.NNZ() != 3 {
		t.Fatalf("NNZ = %d, want 3", m.NNZ())
	}
	if m.At(2, 1) != fixed.FromInt(8) {
		t.Errorf("duplicate sum = %v", m.At(2, 1))
	}
	if m.At(0, 3) != fixed.FromInt(1) || m.At(3, 3) != 0 {
		t.Error("At wrong")
	}
	if m.RowNNZ(2) != 2 || m.RowNNZ(1) != 0 {
		t.Error("RowNNZ wrong")
	}
	cols, vals := m.RowEntries(2)
	if len(cols) != 2 || cols[0] != 1 || vals[1] != fixed.FromInt(2) {
		t.Error("RowEntries wrong")
	}
}

func TestCSREmptyRowsAndBounds(t *testing.T) {
	m := FromCOO(3, 3, nil)
	if m.NNZ() != 0 || m.RowNNZ(0) != 0 || m.RowNNZ(2) != 0 {
		t.Error("empty CSR wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic on out-of-range coord")
		}
	}()
	FromCOO(2, 2, []Coord{{Row: 5, Col: 0, Val: 1}})
}

func TestToDenseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var coords []Coord
	for i := 0; i < 30; i++ {
		coords = append(coords, Coord{
			Row: rng.Intn(8), Col: rng.Intn(8),
			Val: fixed.FromInt(1 + rng.Intn(5)),
		})
	}
	m := FromCOO(8, 8, coords)
	d := m.ToDense()
	for r := 0; r < 8; r++ {
		for c := 0; c < 8; c++ {
			if d.At(r, c) != m.At(r, c) {
				t.Fatalf("mismatch at (%d,%d)", r, c)
			}
		}
	}
}

func TestSpMMAgainstDenseGEMM(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var coords []Coord
	for i := 0; i < 40; i++ {
		coords = append(coords, Coord{
			Row: rng.Intn(10), Col: rng.Intn(12),
			Val: fixed.FromFloat(rng.Float64()*2 - 1),
		})
	}
	a := FromCOO(10, 12, coords)
	b := RandomDense(rng, 12, 6, 2)
	got := SpMM(a, b)
	want := GEMM(a.ToDense(), b)
	if !got.Equal(want) {
		t.Error("SpMM != dense GEMM")
	}
}

func TestSpMV(t *testing.T) {
	a := FromCOO(2, 3, []Coord{
		{Row: 0, Col: 0, Val: fixed.FromInt(1)},
		{Row: 0, Col: 2, Val: fixed.FromInt(2)},
		{Row: 1, Col: 1, Val: fixed.FromInt(3)},
	})
	x := []fixed.Num{fixed.FromInt(1), fixed.FromInt(2), fixed.FromInt(3)}
	y := SpMV(a, x)
	if y[0] != fixed.FromInt(7) || y[1] != fixed.FromInt(6) {
		t.Errorf("SpMV = %v", y)
	}
}

func TestVerticalSlice(t *testing.T) {
	m := FromCOO(3, 6, []Coord{
		{Row: 0, Col: 0, Val: 1}, {Row: 0, Col: 5, Val: 2},
		{Row: 1, Col: 2, Val: 3}, {Row: 2, Col: 3, Val: 4},
	})
	s := m.VerticalSlice(2, 4)
	if s.Cols != 2 || s.NNZ() != 2 {
		t.Fatalf("slice = %v", s)
	}
	if s.At(1, 0) != 3 || s.At(2, 1) != 4 {
		t.Error("slice values wrong")
	}
}

func TestNonZeroPRows(t *testing.T) {
	// Row 0 has nonzeros in cols 0 and 1 -> same prow of width 2.
	// Row 1 has nonzeros in cols 0 and 3 -> two prows.
	m := FromCOO(2, 4, []Coord{
		{Row: 0, Col: 0, Val: 1}, {Row: 0, Col: 1, Val: 1},
		{Row: 1, Col: 0, Val: 1}, {Row: 1, Col: 3, Val: 1},
	})
	if got := m.NonZeroPRows(2); got != 3 {
		t.Errorf("H_2 = %d, want 3", got)
	}
	if got := m.NonZeroPRows(4); got != 2 {
		t.Errorf("H_4 = %d, want 2", got)
	}
	if got := m.NonZeroPRows(1); got != 4 {
		t.Errorf("H_1 = %d, want 4", got)
	}
}

// Property: SpMM on a random sparse matrix equals dense GEMM on its
// expansion.
func TestSpMMEquivalenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, inner, cols := 1+rng.Intn(8), 1+rng.Intn(8), 1+rng.Intn(8)
		var coords []Coord
		n := rng.Intn(rows * inner)
		for i := 0; i < n; i++ {
			coords = append(coords, Coord{
				Row: rng.Intn(rows), Col: rng.Intn(inner),
				Val: fixed.FromFloat(rng.Float64() - 0.5),
			})
		}
		a := FromCOO(rows, inner, coords)
		b := RandomDense(rng, inner, cols, 1)
		return SpMM(a, b).Equal(GEMM(a.ToDense(), b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: H_w is monotone nonincreasing in w and bounded by nnz.
func TestPRowMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 1+rng.Intn(10), 2+rng.Intn(30)
		var coords []Coord
		for i := 0; i < rng.Intn(50); i++ {
			coords = append(coords, Coord{Row: rng.Intn(rows), Col: rng.Intn(cols), Val: 1})
		}
		m := FromCOO(rows, cols, coords)
		prev := m.NNZ() + 1
		for w := 1; w <= cols; w *= 2 {
			h := m.NonZeroPRows(w)
			if h > m.NNZ() || h > prev {
				return false
			}
			prev = h
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
