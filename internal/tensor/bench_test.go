package tensor

import (
	"fmt"
	"math/rand"
	"testing"

	"mlimp/internal/fixed"
)

// gemmShapes are the small/medium/large GEMM benchmark points: small
// stays under the serial threshold, large is deep in row-parallel
// territory.
var gemmShapes = []struct{ m, k, n int }{
	{32, 32, 32},
	{128, 96, 128},
	{384, 256, 384},
}

func BenchmarkGEMM(b *testing.B) {
	for _, s := range gemmShapes {
		rng := rand.New(rand.NewSource(1))
		a := RandomDense(rng, s.m, s.k, 1)
		x := RandomDense(rng, s.k, s.n, 1)
		b.Run(fmt.Sprintf("%dx%dx%d", s.m, s.k, s.n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				GEMM(a, x)
			}
		})
		b.Run(fmt.Sprintf("%dx%dx%d/serial", s.m, s.k, s.n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				c := NewDense(a.Rows, x.Cols)
				gemmRows(a, x, c, 0, a.Rows)
			}
		})
	}
}

// spmmShapes are synthetic aggregation workloads: rows x rows adjacency
// at the given average degree, multiplied into a feature matrix.
var spmmShapes = []struct {
	rows, deg, feat int
}{
	{256, 8, 32},
	{2048, 8, 64},
	{8192, 16, 64},
}

func benchCSR(rng *rand.Rand, rows, deg int) *CSR {
	coords := make([]Coord, 0, rows*deg)
	for r := 0; r < rows; r++ {
		for d := 0; d < deg; d++ {
			coords = append(coords, Coord{Row: r, Col: rng.Intn(rows), Val: fixed.FromFloat(0.25)})
		}
	}
	return FromCOO(rows, rows, coords)
}

func BenchmarkSpMM(b *testing.B) {
	for _, s := range spmmShapes {
		rng := rand.New(rand.NewSource(2))
		a := benchCSR(rng, s.rows, s.deg)
		x := RandomDense(rng, s.rows, s.feat, 1)
		b.Run(fmt.Sprintf("n%d_d%d_f%d", s.rows, s.deg, s.feat), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				SpMM(a, x)
			}
		})
		b.Run(fmt.Sprintf("n%d_d%d_f%d/serial", s.rows, s.deg, s.feat), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				c := NewDense(a.Rows, x.Cols)
				spmmRows(a, x, c, 0, a.Rows)
			}
		})
	}
}

func BenchmarkSpMV(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	a := benchCSR(rng, 16384, 16)
	x := make([]fixed.Num, a.Cols)
	for i := range x {
		x[i] = fixed.FromFloat(rng.Float64())
	}
	b.Run("n16384_d16", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			SpMV(a, x)
		}
	})
	b.Run("n16384_d16/serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			y := make([]fixed.Num, a.Rows)
			spmvRows(a, x, y, 0, a.Rows)
		}
	})
}
