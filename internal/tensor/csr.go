package tensor

import (
	"fmt"
	"sort"

	"mlimp/internal/fixed"
)

// CSR is a sparse matrix in compressed sparse row format. Values are
// fixed-point; a binary adjacency matrix stores fixed-point 1.0 in every
// entry (the SpMM lookup path special-cases that).
type CSR struct {
	Rows, Cols int
	RowPtr     []int32 // len == Rows+1
	ColIdx     []int32 // len == NNZ
	Val        []fixed.Num
}

// NewCSR builds an empty sparse matrix with the given shape.
func NewCSR(rows, cols int) *CSR {
	return &CSR{Rows: rows, Cols: cols, RowPtr: make([]int32, rows+1)}
}

// Coord is one nonzero coordinate used by FromCOO.
type Coord struct {
	Row, Col int
	Val      fixed.Num
}

// FromCOO builds a CSR matrix from coordinate triples. Duplicate
// coordinates are summed; entries are sorted by (row, col).
func FromCOO(rows, cols int, coords []Coord) *CSR {
	sorted := append([]Coord(nil), coords...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Row != sorted[j].Row {
			return sorted[i].Row < sorted[j].Row
		}
		return sorted[i].Col < sorted[j].Col
	})
	m := NewCSR(rows, cols)
	row := 0
	for _, c := range sorted {
		if c.Row < 0 || c.Row >= rows || c.Col < 0 || c.Col >= cols {
			panic(fmt.Sprintf("tensor: coordinate (%d,%d) out of %dx%d", c.Row, c.Col, rows, cols))
		}
		n := len(m.ColIdx)
		if n > 0 && row == c.Row && m.ColIdx[n-1] == int32(c.Col) {
			m.Val[n-1] = fixed.Add(m.Val[n-1], c.Val)
			continue
		}
		for ; row < c.Row; row++ {
			m.RowPtr[row+1] = int32(n)
		}
		m.ColIdx = append(m.ColIdx, int32(c.Col))
		m.Val = append(m.Val, c.Val)
	}
	for ; row < rows; row++ {
		m.RowPtr[row+1] = int32(len(m.ColIdx))
	}
	return m
}

// NNZ returns the number of stored nonzeros.
func (m *CSR) NNZ() int { return len(m.ColIdx) }

// RowNNZ returns the number of nonzeros in row r.
func (m *CSR) RowNNZ(r int) int { return int(m.RowPtr[r+1] - m.RowPtr[r]) }

// RowEntries returns the column indices and values of row r, aliasing the
// matrix storage.
func (m *CSR) RowEntries(r int) ([]int32, []fixed.Num) {
	lo, hi := m.RowPtr[r], m.RowPtr[r+1]
	return m.ColIdx[lo:hi], m.Val[lo:hi]
}

// At returns the value at (r, c), zero if absent. O(log nnz(row)).
func (m *CSR) At(r, c int) fixed.Num {
	cols, vals := m.RowEntries(r)
	i := sort.Search(len(cols), func(i int) bool { return cols[i] >= int32(c) })
	if i < len(cols) && cols[i] == int32(c) {
		return vals[i]
	}
	return 0
}

// SizeBytes returns the storage footprint of the CSR payload: 4-byte
// row pointers and column indices plus 2-byte values.
func (m *CSR) SizeBytes() int64 {
	return int64(len(m.RowPtr))*4 + int64(len(m.ColIdx))*4 + int64(len(m.Val))*2
}

// ToDense expands the sparse matrix to dense form — the decompression
// step that in-memory computing must pay for sparse data (Section III-D3).
func (m *CSR) ToDense() *Dense {
	d := NewDense(m.Rows, m.Cols)
	for r := 0; r < m.Rows; r++ {
		cols, vals := m.RowEntries(r)
		for i, c := range cols {
			d.Set(r, int(c), vals[i])
		}
	}
	return d
}

// String renders shape and density for debugging.
func (m *CSR) String() string {
	return fmt.Sprintf("CSR(%dx%d, nnz=%d)", m.Rows, m.Cols, m.NNZ())
}

// SpMM computes C = A*B where A is sparse and B dense; the aggregation
// kernel of GNNs (B = normalised-adjacency * features). Large products
// are partitioned across goroutines by nonzero count; each goroutine
// owns a disjoint range of output rows, so the fixed-point result is
// bit-identical at any parallelism (see spmmRows).
func SpMM(a *CSR, b *Dense) *Dense {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: SpMM shape mismatch %v x %v", a, b))
	}
	c := NewDense(a.Rows, b.Cols)
	work := int64(a.NNZ()) * int64(b.Cols)
	forEachRowChunkNNZ(a, kernelWorkers(a.Rows, work), func(lo, hi int) {
		spmmRows(a, b, c, lo, hi)
	})
	return c
}

// spmmRows computes output rows [lo, hi) of C = A*B — the serial kernel
// body both the single-threaded and row-parallel paths share.
func spmmRows(a *CSR, b, c *Dense, lo, hi int) {
	for r := lo; r < hi; r++ {
		cols, vals := a.RowEntries(r)
		crow := c.Row(r)
		for i, col := range cols {
			brow := b.Row(int(col))
			v := vals[i]
			for j := range brow {
				crow[j] = fixed.Add(crow[j], fixed.Mul(v, brow[j]))
			}
		}
	}
}

// SpMV computes y = A*x for a dense vector x (len == A.Cols). Like SpMM
// it row-partitions across goroutines above the serial threshold, with
// bit-identical results.
func SpMV(a *CSR, x []fixed.Num) []fixed.Num {
	if a.Cols != len(x) {
		panic("tensor: SpMV shape mismatch")
	}
	y := make([]fixed.Num, a.Rows)
	forEachRowChunkNNZ(a, kernelWorkers(a.Rows, int64(a.NNZ())), func(lo, hi int) {
		spmvRows(a, x, y, lo, hi)
	})
	return y
}

// spmvRows computes y[lo:hi] of y = A*x.
func spmvRows(a *CSR, x, y []fixed.Num, lo, hi int) {
	for r := lo; r < hi; r++ {
		cols, vals := a.RowEntries(r)
		var acc fixed.Num
		for i, col := range cols {
			acc = fixed.Add(acc, fixed.Mul(vals[i], x[col]))
		}
		y[r] = acc
	}
}

// VerticalSlice returns the sub-matrix of columns [lo, hi) as a new CSR
// with Cols = hi-lo. SpMM partitions the sparse A into vertical strips
// this way, one strip per stored B slice (Figure 9, B-stationary).
func (m *CSR) VerticalSlice(lo, hi int) *CSR {
	if lo < 0 || hi > m.Cols || lo > hi {
		panic("tensor: bad vertical slice bounds")
	}
	out := NewCSR(m.Rows, hi-lo)
	for r := 0; r < m.Rows; r++ {
		cols, vals := m.RowEntries(r)
		for i, c := range cols {
			if int(c) >= lo && int(c) < hi {
				out.ColIdx = append(out.ColIdx, c-int32(lo))
				out.Val = append(out.Val, vals[i])
			}
		}
		out.RowPtr[r+1] = int32(len(out.ColIdx))
	}
	return out
}

// NonZeroPRows returns H_w: the number of non-zero partial rows of width
// w (Section III-E). A prow is one row of one vertical strip of width w;
// it is non-zero when at least one element in it is non-zero.
func (m *CSR) NonZeroPRows(w int) int {
	if w <= 0 {
		panic("tensor: prow width must be positive")
	}
	count := 0
	seen := make(map[int64]struct{})
	for r := 0; r < m.Rows; r++ {
		cols, _ := m.RowEntries(r)
		for _, c := range cols {
			key := int64(r)<<32 | int64(int(c)/w)
			if _, ok := seen[key]; !ok {
				seen[key] = struct{}{}
				count++
			}
		}
	}
	return count
}
