package tensor

import (
	"math/rand"
	"sync"
	"testing"

	"mlimp/internal/fixed"
)

// randomCSR builds a random sparse matrix with roughly density*rows*cols
// nonzeros, including fully empty rows, the shapes that stress the
// nnz-balanced chunking.
func randomCSR(rng *rand.Rand, rows, cols int, density float64) *CSR {
	var coords []Coord
	n := int(density * float64(rows) * float64(cols))
	for i := 0; i < n; i++ {
		coords = append(coords, Coord{
			Row: rng.Intn(rows), Col: rng.Intn(cols),
			Val: fixed.FromFloat(rng.Float64()*2 - 1),
		})
	}
	return FromCOO(rows, cols, coords)
}

// TestGEMMParallelMatchesSerial checks the tentpole invariant: the
// row-partitioned GEMM is bit-identical to the serial sweep at every
// worker count, including ones that do not divide the row count.
func TestGEMMParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := RandomDense(rng, 129, 96, 1)
	b := RandomDense(rng, 96, 70, 1)
	want := NewDense(a.Rows, b.Cols)
	gemmRows(a, b, want, 0, a.Rows)
	if got := GEMM(a, b); !got.Equal(want) {
		t.Fatal("GEMM (auto parallelism) differs from serial sweep")
	}
	for _, n := range []int{2, 3, 7, 129, 200} {
		got := NewDense(a.Rows, b.Cols)
		w := n
		if w > a.Rows {
			w = a.Rows
		}
		forEachRowChunk(a.Rows, w, func(lo, hi int) { gemmRows(a, b, got, lo, hi) })
		if !got.Equal(want) {
			t.Fatalf("GEMM with %d workers differs from serial", n)
		}
	}
}

// TestSpMMParallelMatchesSerial does the same for the sparse
// aggregation kernel, with empty rows and hub rows in the mix.
func TestSpMMParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := randomCSR(rng, 300, 200, 0.05)
	// A hub row holding a large share of the nonzeros.
	var hub []Coord
	for c := 0; c < 200; c++ {
		hub = append(hub, Coord{Row: 150, Col: c, Val: fixed.FromFloat(0.5)})
	}
	for r := 0; r < a.Rows; r++ {
		cols, vals := a.RowEntries(r)
		for i := range cols {
			hub = append(hub, Coord{Row: r, Col: int(cols[i]), Val: vals[i]})
		}
	}
	a = FromCOO(300, 200, hub)
	b := RandomDense(rng, 200, 48, 1)
	want := NewDense(a.Rows, b.Cols)
	spmmRows(a, b, want, 0, a.Rows)
	if got := SpMM(a, b); !got.Equal(want) {
		t.Fatal("SpMM (auto parallelism) differs from serial sweep")
	}
	for _, n := range []int{2, 3, 5, 16} {
		got := NewDense(a.Rows, b.Cols)
		forEachRowChunkNNZ(a, n, func(lo, hi int) { spmmRows(a, b, got, lo, hi) })
		if !got.Equal(want) {
			t.Fatalf("SpMM with %d workers differs from serial", n)
		}
	}
}

// TestSpMVParallelMatchesSerial covers the vector kernel.
func TestSpMVParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := randomCSR(rng, 500, 400, 0.03)
	x := make([]fixed.Num, 400)
	for i := range x {
		x[i] = fixed.FromFloat(rng.Float64()*2 - 1)
	}
	want := make([]fixed.Num, a.Rows)
	spmvRows(a, x, want, 0, a.Rows)
	got := SpMV(a, x)
	for _, n := range []int{2, 4, 9} {
		forced := make([]fixed.Num, a.Rows)
		forEachRowChunkNNZ(a, n, func(lo, hi int) { spmvRows(a, x, forced, lo, hi) })
		for r := range want {
			if got[r] != want[r] || forced[r] != want[r] {
				t.Fatalf("SpMV mismatch at row %d (workers=%d)", r, n)
			}
		}
	}
}

// TestRowChunksCoverExactly checks both partitioners produce disjoint
// chunks that cover every row exactly once, for degenerate shapes too.
func TestRowChunksCoverExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, rows := range []int{0, 1, 2, 7, 100} {
		for _, n := range []int{1, 2, 3, 8, 31} {
			var mu sync.Mutex
			seen := make([]int, rows)
			w := n
			if w > rows {
				w = rows
			}
			forEachRowChunk(rows, w, func(lo, hi int) {
				mu.Lock()
				for r := lo; r < hi; r++ {
					seen[r]++
				}
				mu.Unlock()
			})
			for r, c := range seen {
				if c != 1 {
					t.Fatalf("rows=%d n=%d: row %d covered %d times", rows, n, r, c)
				}
			}
		}
	}
	for trial := 0; trial < 20; trial++ {
		rows := 1 + rng.Intn(64)
		m := randomCSR(rng, rows, 32, rng.Float64()*0.3)
		for _, n := range []int{2, 3, 8} {
			var mu sync.Mutex
			seen := make([]int, rows)
			forEachRowChunkNNZ(m, n, func(lo, hi int) {
				mu.Lock()
				for r := lo; r < hi; r++ {
					seen[r]++
				}
				mu.Unlock()
			})
			for r, c := range seen {
				if c != 1 {
					t.Fatalf("nnz chunks: rows=%d n=%d row %d covered %d times", rows, n, r, c)
				}
			}
		}
	}
}

// TestKernelWorkersBounds pins the serial-threshold policy: tiny work
// stays serial, huge work is capped by rows and GOMAXPROCS.
func TestKernelWorkersBounds(t *testing.T) {
	if w := kernelWorkers(1000, 100); w >= 2 {
		t.Errorf("tiny work got %d workers, want serial", w)
	}
	if w := kernelWorkers(1, 1<<30); w > 1 {
		t.Errorf("single row got %d workers", w)
	}
	if w := kernelWorkers(1<<20, 1<<40); w < 1 {
		t.Errorf("huge work got %d workers", w)
	}
}
