// Package tensor provides the dense and sparse matrix substrate of MLIMP:
// 16-bit fixed-point dense matrices, CSR sparse matrices, and reference
// GEMM / SpMM / SpMV / Vadd kernels. The reference kernels are the
// functional ground truth that the in-memory kernel mappings
// (internal/kernels) are validated against.
package tensor

import (
	"fmt"
	"math/rand"

	"mlimp/internal/fixed"
)

// Dense is a row-major dense matrix of fixed-point values.
type Dense struct {
	Rows, Cols int
	Data       []fixed.Num // len == Rows*Cols
}

// NewDense allocates a zero matrix with the given shape.
func NewDense(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic("tensor: negative dimension")
	}
	return &Dense{Rows: rows, Cols: cols, Data: make([]fixed.Num, rows*cols)}
}

// NewDenseFromFloats builds a matrix from a row-major float slice.
func NewDenseFromFloats(rows, cols int, vals []float64) *Dense {
	if len(vals) != rows*cols {
		panic("tensor: value count does not match shape")
	}
	d := NewDense(rows, cols)
	for i, v := range vals {
		d.Data[i] = fixed.FromFloat(v)
	}
	return d
}

// RandomDense fills a matrix with uniform values in [-scale, scale] from
// rng, the initialisation used for synthetic GNN features and weights.
func RandomDense(rng *rand.Rand, rows, cols int, scale float64) *Dense {
	d := NewDense(rows, cols)
	for i := range d.Data {
		d.Data[i] = fixed.FromFloat((rng.Float64()*2 - 1) * scale)
	}
	return d
}

// At returns the element at (r, c).
func (d *Dense) At(r, c int) fixed.Num { return d.Data[r*d.Cols+c] }

// Set writes the element at (r, c).
func (d *Dense) Set(r, c int, v fixed.Num) { d.Data[r*d.Cols+c] = v }

// Row returns the r-th row as a slice aliasing the matrix storage.
func (d *Dense) Row(r int) []fixed.Num { return d.Data[r*d.Cols : (r+1)*d.Cols] }

// Clone returns a deep copy.
func (d *Dense) Clone() *Dense {
	c := NewDense(d.Rows, d.Cols)
	copy(c.Data, d.Data)
	return c
}

// Equal reports whether two matrices have identical shape and contents.
func (d *Dense) Equal(o *Dense) bool {
	if d.Rows != o.Rows || d.Cols != o.Cols {
		return false
	}
	for i := range d.Data {
		if d.Data[i] != o.Data[i] {
			return false
		}
	}
	return true
}

// Transpose returns a new transposed matrix.
func (d *Dense) Transpose() *Dense {
	t := NewDense(d.Cols, d.Rows)
	for r := 0; r < d.Rows; r++ {
		for c := 0; c < d.Cols; c++ {
			t.Set(c, r, d.At(r, c))
		}
	}
	return t
}

// SizeBytes returns the storage footprint of the matrix payload, used by
// the scheduler's data-size accounting (2 bytes per 16-bit element).
func (d *Dense) SizeBytes() int64 { return int64(len(d.Data)) * 2 }

// String renders the shape, for debugging.
func (d *Dense) String() string { return fmt.Sprintf("Dense(%dx%d)", d.Rows, d.Cols) }

// GEMM computes C = A*B in fixed point and returns C. It panics on a
// shape mismatch. Large products are row-partitioned across goroutines;
// each goroutine owns a disjoint range of output rows and computes them
// exactly as the serial sweep would, so the fixed-point result is
// bit-identical at any parallelism (see gemmRows).
func GEMM(a, b *Dense) *Dense {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: GEMM shape mismatch %v x %v", a, b))
	}
	c := NewDense(a.Rows, b.Cols)
	work := int64(a.Rows) * int64(a.Cols) * int64(b.Cols)
	forEachRowChunk(a.Rows, kernelWorkers(a.Rows, work), func(lo, hi int) {
		gemmRows(a, b, c, lo, hi)
	})
	return c
}

// gemmRows computes output rows [lo, hi) of C = A*B — the serial kernel
// body both the single-threaded and row-parallel paths share.
func gemmRows(a, b, c *Dense, lo, hi int) {
	for i := lo; i < hi; i++ {
		for k := 0; k < a.Cols; k++ {
			av := a.At(i, k)
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			crow := c.Row(i)
			for j := range brow {
				crow[j] = fixed.Add(crow[j], fixed.Mul(av, brow[j]))
			}
		}
	}
}

// Vadd computes C = A+B elementwise and returns C.
func Vadd(a, b *Dense) *Dense {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic("tensor: Vadd shape mismatch")
	}
	c := NewDense(a.Rows, a.Cols)
	for i := range a.Data {
		c.Data[i] = fixed.Add(a.Data[i], b.Data[i])
	}
	return c
}

// ReLU applies the rectifier elementwise in place and returns d.
func (d *Dense) ReLU() *Dense {
	for i, v := range d.Data {
		d.Data[i] = fixed.ReLU(v)
	}
	return d
}
