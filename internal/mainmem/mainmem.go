// Package mainmem is the "ramulator-lite" DDR4 timing model: a bank/row-
// buffer main-memory simulator supplying load/store latency and bandwidth
// to the rest of MLIMP ("Load and store bandwidth for the main memory
// communication is simulated using Ramulator integrated into our
// simulator", Section IV). It models per-bank open rows, row-hit/miss/
// conflict timing, channel interleaving, and a closed-form streaming
// model for the bulk transfers the scheduler's load-time term uses.
package mainmem

import (
	"fmt"

	"mlimp/internal/event"
)

// Config holds the DDR4 organisation and timing parameters.
type Config struct {
	Channels        int
	BanksPerChannel int
	RowBytes        int64
	LineBytes       int64 // transfer granule (one burst)

	TCK   event.Time // clock period (ps)
	TRCD  event.Time // activate-to-read
	TRP   event.Time // precharge
	TCAS  event.Time // read latency
	Burst event.Time // data burst duration for one line

	// RefreshOverhead derates streaming bandwidth for refresh and bus
	// turnaround (fraction of time lost).
	RefreshOverhead float64
}

// DDR4_2400 returns the evaluation configuration: DDR4-2400, 4 channels,
// 1 rank, 16 banks (Section V-A), 8 KB rows, 64 B lines.
func DDR4_2400() Config {
	tck := event.Time(833) // ps at 1200 MHz bus clock
	return Config{
		Channels:        4,
		BanksPerChannel: 16,
		RowBytes:        8192,
		LineBytes:       64,
		TCK:             tck,
		TRCD:            16 * tck, // ~13.3 ns
		TRP:             16 * tck,
		TCAS:            16 * tck,
		Burst:           4 * tck, // 8 beats DDR
		RefreshOverhead: 0.05,
	}
}

// RoundTrip returns the worst-case latency of a single line access —
// the row-conflict path, precharge + activate + CAS + burst. This is
// the fastest any cross-layer interaction through main memory can
// complete, so it bounds from below the lookahead an intra-node
// device-level sharding of the simulation (event/parsim) may use. The
// cluster fabric's network hop (cluster.DefaultHop) sits three orders
// of magnitude above it, so the fleet-level lookahead is safely
// conservative for any shard granularity down to single devices.
func (c Config) RoundTrip() event.Time {
	return c.TRP + c.TRCD + c.TCAS + c.Burst
}

// PeakBandwidthGBs returns the aggregate pin bandwidth in GB/s.
func (c Config) PeakBandwidthGBs() float64 {
	perChannel := float64(c.LineBytes) / c.Burst.Seconds() // B/s
	return float64(c.Channels) * perChannel / 1e9
}

// bank tracks one bank's open row and availability.
type bank struct {
	openRow int64 // -1 = closed
	freeAt  event.Time
}

// Controller is a sequentially simulated memory controller with open-page
// policy and line-interleaved channel mapping.
type Controller struct {
	cfg   Config
	banks [][]bank
	// Stats.
	Hits, Misses, Conflicts int64
}

// NewController builds a controller with all rows closed.
func NewController(cfg Config) *Controller {
	if cfg.Channels <= 0 || cfg.BanksPerChannel <= 0 {
		panic("mainmem: bad configuration")
	}
	c := &Controller{cfg: cfg, banks: make([][]bank, cfg.Channels)}
	for ch := range c.banks {
		c.banks[ch] = make([]bank, cfg.BanksPerChannel)
		for b := range c.banks[ch] {
			c.banks[ch][b].openRow = -1
		}
	}
	return c
}

// Config returns the controller's configuration.
func (c *Controller) Config() Config { return c.cfg }

// decode maps a physical address to (channel, bank, row) with line-level
// channel interleaving and an XOR fold of row bits into the bank index to
// spread strided accesses (the XOR-based mapping of Section III-B2).
func (c *Controller) decode(addr int64) (ch, bk int, row int64) {
	line := addr / c.cfg.LineBytes
	ch = int(line % int64(c.cfg.Channels))
	line /= int64(c.cfg.Channels)
	linesPerRow := c.cfg.RowBytes / c.cfg.LineBytes
	row = line / linesPerRow
	bk = int((line/linesPerRow ^ line) % int64(c.cfg.BanksPerChannel))
	if bk < 0 {
		bk = -bk
	}
	return ch, bk, row
}

// Access simulates one line read/write issued at time now and returns
// the completion time. Row hits pay CAS+burst; misses add activation;
// conflicts add precharge of the currently open row.
func (c *Controller) Access(now event.Time, addr int64) event.Time {
	ch, bk, row := c.decode(addr)
	b := &c.banks[ch][bk]
	start := now
	if b.freeAt > start {
		start = b.freeAt
	}
	var lat event.Time
	switch {
	case b.openRow == row:
		c.Hits++
		lat = c.cfg.TCAS + c.cfg.Burst
	case b.openRow == -1:
		c.Misses++
		lat = c.cfg.TRCD + c.cfg.TCAS + c.cfg.Burst
	default:
		c.Conflicts++
		lat = c.cfg.TRP + c.cfg.TRCD + c.cfg.TCAS + c.cfg.Burst
	}
	b.openRow = row
	done := start + lat
	b.freeAt = done
	return done
}

// StreamTime returns the closed-form time to move bytes sequentially
// between main memory and an in-memory compute region: per-row activation
// costs amortised over full-row bursts, pipelined across all channels,
// derated by the refresh overhead. This is the t_ld building block of
// the scheduler's analytical model.
func (c *Controller) StreamTime(bytes int64) event.Time {
	if bytes <= 0 {
		return 0
	}
	cfg := c.cfg
	linesPerRow := cfg.RowBytes / cfg.LineBytes
	perRow := event.Time(linesPerRow)*cfg.Burst + cfg.TRP + cfg.TRCD
	rows := (bytes + cfg.RowBytes*int64(cfg.Channels) - 1) / (cfg.RowBytes * int64(cfg.Channels))
	t := event.Time(rows)*perRow + cfg.TCAS // pipeline fill
	return event.Time(float64(t) * (1 + cfg.RefreshOverhead))
}

// EffectiveBandwidthGBs reports the streaming bandwidth implied by
// StreamTime for large transfers.
func (c *Controller) EffectiveBandwidthGBs() float64 {
	const probe = 1 << 30
	return probe / c.StreamTime(probe).Seconds() / 1e9
}

// String summarises controller state.
func (c *Controller) String() string {
	return fmt.Sprintf("ddr4(ch=%d banks=%d peak=%.1fGB/s eff=%.1fGB/s hits=%d misses=%d conflicts=%d)",
		c.cfg.Channels, c.cfg.BanksPerChannel, c.cfg.PeakBandwidthGBs(),
		c.EffectiveBandwidthGBs(), c.Hits, c.Misses, c.Conflicts)
}
