package mainmem

import (
	"strings"
	"testing"
	"testing/quick"

	"mlimp/internal/event"
)

func TestPeakBandwidth(t *testing.T) {
	cfg := DDR4_2400()
	// 4 channels x 19.2 GB/s = 76.8 GB/s.
	got := cfg.PeakBandwidthGBs()
	if got < 73 || got > 80 {
		t.Errorf("peak bandwidth = %.1f GB/s, want ~76.8", got)
	}
}

func TestEffectiveBandwidthBelowPeak(t *testing.T) {
	c := NewController(DDR4_2400())
	eff, peak := c.EffectiveBandwidthGBs(), c.Config().PeakBandwidthGBs()
	if eff >= peak {
		t.Errorf("effective %.1f >= peak %.1f", eff, peak)
	}
	if eff < 0.7*peak {
		t.Errorf("effective %.1f implausibly low vs peak %.1f", eff, peak)
	}
}

func TestRowHitMissConflict(t *testing.T) {
	c := NewController(DDR4_2400())
	cfg := c.Config()
	// First access to a row: miss (activation).
	d1 := c.Access(0, 0)
	if want := cfg.TRCD + cfg.TCAS + cfg.Burst; d1 != want {
		t.Errorf("cold access = %v, want %v", d1, want)
	}
	// Same line again: row hit, faster.
	d2 := c.Access(d1, 0) - d1
	if want := cfg.TCAS + cfg.Burst; d2 != want {
		t.Errorf("row hit = %v, want %v", d2, want)
	}
	if c.Hits != 1 || c.Misses != 1 {
		t.Errorf("hits=%d misses=%d", c.Hits, c.Misses)
	}
	// A different row in the same bank: conflict (precharge first).
	// Same channel & bank requires stepping by channels*rowBytes... find
	// an address that collides by scanning.
	var conflictAddr int64 = -1
	ch0, bk0, row0 := c.decode(0)
	for a := int64(1); a < 1<<26; a += cfg.LineBytes {
		ch, bk, row := c.decode(a)
		if ch == ch0 && bk == bk0 && row != row0 {
			conflictAddr = a
			break
		}
	}
	if conflictAddr < 0 {
		t.Fatal("no conflicting address found")
	}
	before := c.Conflicts
	c.Access(2*d1, conflictAddr)
	if c.Conflicts != before+1 {
		t.Error("expected a row conflict")
	}
}

func TestBankQueueing(t *testing.T) {
	c := NewController(DDR4_2400())
	// Two back-to-back accesses to the same bank issued at time 0: the
	// second must wait for the first.
	d1 := c.Access(0, 0)
	d2 := c.Access(0, 0)
	if d2 <= d1 {
		t.Errorf("second access done %v, first %v: no serialisation", d2, d1)
	}
}

func TestChannelsSpreadLines(t *testing.T) {
	c := NewController(DDR4_2400())
	seen := map[int]bool{}
	for i := int64(0); i < 8; i++ {
		ch, _, _ := c.decode(i * 64)
		seen[ch] = true
	}
	if len(seen) != 4 {
		t.Errorf("line interleave hit %d channels, want 4", len(seen))
	}
}

func TestStreamTimeMonotone(t *testing.T) {
	c := NewController(DDR4_2400())
	if c.StreamTime(0) != 0 {
		t.Error("zero bytes should take zero time")
	}
	small, large := c.StreamTime(1<<20), c.StreamTime(1<<24)
	if small <= 0 || large <= small {
		t.Errorf("stream times not monotone: %v, %v", small, large)
	}
	// 1 GiB at ~70 GB/s is ~15 ms.
	sec := c.StreamTime(1 << 30).Seconds()
	if sec < 0.005 || sec > 0.05 {
		t.Errorf("1 GiB stream = %v s, want ~0.015", sec)
	}
}

func TestNewControllerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewController(Config{})
}

func TestString(t *testing.T) {
	c := NewController(DDR4_2400())
	if s := c.String(); !strings.Contains(s, "ddr4") {
		t.Errorf("String = %q", s)
	}
}

// Property: access completion times are causally consistent — the result
// is never before the issue time plus the minimum service latency, and
// per-bank order is preserved.
func TestAccessCausalityProperty(t *testing.T) {
	f := func(addrs []uint32) bool {
		c := NewController(DDR4_2400())
		cfg := c.Config()
		minLat := cfg.TCAS + cfg.Burst
		now := event.Time(0)
		for _, a := range addrs {
			done := c.Access(now, int64(a))
			if done < now+minLat {
				return false
			}
			now += 100 // issue every 100 ps
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestRoundTripIsWorstCaseAccess: RoundTrip must equal the row-conflict
// access path (the slowest single-line latency the controller can
// charge) and bound every path Access actually takes — the property the
// parsim lookahead derivation rests on.
func TestRoundTripIsWorstCaseAccess(t *testing.T) {
	cfg := DDR4_2400()
	if got, want := cfg.RoundTrip(), cfg.TRP+cfg.TRCD+cfg.TCAS+cfg.Burst; got != want {
		t.Fatalf("RoundTrip = %v, want %v", got, want)
	}
	// ~43ns for DDR4-2400: sanity-band the magnitude so a unit slip
	// (ps vs ns) cannot hide.
	if rt := cfg.RoundTrip(); rt < 30*event.Nanosecond || rt > 60*event.Nanosecond {
		t.Errorf("DDR4-2400 round trip %v outside the 30-60ns sanity band", rt)
	}
	// Every access path (hit, miss, conflict) fits inside RoundTrip.
	// Issuing each access at the previous completion keeps the banks
	// free, so the measured span is pure access latency, not queueing.
	c := NewController(cfg)
	var at, worst event.Time
	for i := 0; i < 64; i++ {
		addr := int64(i%3) * cfg.RowBytes * int64(cfg.Channels) // forces row churn
		done := c.Access(at, addr)
		if lat := done - at; lat > worst {
			worst = lat
		}
		at = done
	}
	if worst > cfg.RoundTrip() {
		t.Errorf("observed access latency %v exceeds RoundTrip %v", worst, cfg.RoundTrip())
	}
}
