// Package stats provides the statistics toolkit used across MLIMP: fit
// quality metrics for the performance predictor (R², RMSE), distribution
// summaries for the experiment harness (percentiles, box-chart stats,
// histograms), and aggregate speedup helpers (geometric mean).
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 for fewer than two
// samples.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// GeoMean returns the geometric mean of xs. All values must be positive;
// non-positive values are skipped so a single degenerate sample cannot
// poison an aggregate speedup. When nothing survives the skip — xs is
// empty or contains no positive value — GeoMean returns 0, the sentinel
// for "no aggregate", rather than NaN.
func GeoMean(xs []float64) float64 {
	var logSum float64
	n := 0
	for _, x := range xs {
		if x > 0 {
			logSum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}

// R2 returns the coefficient of determination of predictions against
// observations. A perfect predictor scores 1; predicting the mean scores 0.
func R2(observed, predicted []float64) float64 {
	if len(observed) != len(predicted) || len(observed) == 0 {
		return math.NaN()
	}
	m := Mean(observed)
	var ssRes, ssTot float64
	for i := range observed {
		r := observed[i] - predicted[i]
		ssRes += r * r
		d := observed[i] - m
		ssTot += d * d
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return 1
		}
		return math.NaN()
	}
	return 1 - ssRes/ssTot
}

// RMSE returns the root-mean-square error of predictions against
// observations.
func RMSE(observed, predicted []float64) float64 {
	if len(observed) != len(predicted) || len(observed) == 0 {
		return math.NaN()
	}
	var s float64
	for i := range observed {
		r := observed[i] - predicted[i]
		s += r * r
	}
	return math.Sqrt(s / float64(len(observed)))
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using
// linear interpolation between closest ranks. It does not modify xs.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

// percentileSorted is Percentile on an already sorted non-empty slice.
func percentileSorted(sorted []float64, p float64) float64 {
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// LatencyStats is the serving-latency digest shared by the runtime and
// cluster layers: mean plus the tail percentiles operators watch. One
// type for any unit; by repo convention the samples are milliseconds.
type LatencyStats struct {
	Mean, P50, P90, P99 float64
}

// SummarizeLatency digests xs into LatencyStats with a single sort
// (Percentile re-sorts per call — four quantiles of one large sample
// should not pay four sorts). An empty sample returns the zero digest,
// matching the "no completed batches summarise to zeros" contract of
// the serving layers rather than Percentile's NaN; a single sample puts
// that value in every field.
func SummarizeLatency(xs []float64) LatencyStats {
	if len(xs) == 0 {
		return LatencyStats{}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return LatencyStats{
		Mean: Mean(xs),
		P50:  percentileSorted(sorted, 50),
		P90:  percentileSorted(sorted, 90),
		P99:  percentileSorted(sorted, 99),
	}
}

// SLOStats is the goodput digest of an SLO-bound serving run: how many
// requests completed within their deadline, the goodput they represent
// (met requests per second over the serving horizon), and the
// per-request latency tail of everything that completed.
type SLOStats struct {
	Requests  int     // requests offered to the front end
	Completed int     // requests that finished (within deadline or not)
	Met       int     // requests completed within their deadline
	Goodput   float64 // Met / horizon, in requests per second
	Latency   LatencyStats
}

// MetFrac returns the fraction of offered requests that met their SLO.
func (s SLOStats) MetFrac() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.Met) / float64(s.Requests)
}

// SummarizeSLO digests an SLO-bound run: latenciesMs are the
// per-request completion latencies (one per completed request), met is
// how many of those beat their deadline, requests is the offered count,
// and horizonSec is the serving span goodput normalises over. A
// non-positive horizon yields zero goodput.
func SummarizeSLO(latenciesMs []float64, met, requests int, horizonSec float64) SLOStats {
	s := SLOStats{
		Requests:  requests,
		Completed: len(latenciesMs),
		Met:       met,
		Latency:   SummarizeLatency(latenciesMs),
	}
	if horizonSec > 0 {
		s.Goodput = float64(met) / horizonSec
	}
	return s
}

// GroupSLO rolls per-key samples into one SLOStats per key — the
// per-tenant view of a multi-tenant serving run. keys[i] labels
// latenciesMs[i] (one entry per completed request); met and offered
// count per key independently, so a key may appear in met/offered with
// no completed samples (everything shed) or vice versa. Keys are
// returned sorted for stable iteration. horizonSec normalises goodput
// exactly as in SummarizeSLO.
func GroupSLO(keys []string, latenciesMs []float64, met, offered map[string]int, horizonSec float64) (order []string, byKey map[string]SLOStats) {
	lat := map[string][]float64{}
	for i, k := range keys {
		lat[k] = append(lat[k], latenciesMs[i])
	}
	seen := map[string]bool{}
	for k := range lat {
		seen[k] = true
	}
	for k := range met {
		seen[k] = true
	}
	for k := range offered {
		seen[k] = true
	}
	byKey = make(map[string]SLOStats, len(seen))
	for k := range seen {
		order = append(order, k)
		byKey[k] = SummarizeSLO(lat[k], met[k], offered[k], horizonSec)
	}
	sort.Strings(order)
	return order, byKey
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Box summarises a distribution the way the paper's box charts do
// (Figure 11): min/max whiskers plus quartiles and mean.
type Box struct {
	Min, Q1, Median, Q3, Max, Mean float64
	N                              int
}

// BoxStats computes box-chart statistics for xs.
func BoxStats(xs []float64) Box {
	return Box{
		Min:    Percentile(xs, 0),
		Q1:     Percentile(xs, 25),
		Median: Percentile(xs, 50),
		Q3:     Percentile(xs, 75),
		Max:    Percentile(xs, 100),
		Mean:   Mean(xs),
		N:      len(xs),
	}
}

// String renders the box summary as a single report line.
func (b Box) String() string {
	return fmt.Sprintf("n=%d min=%.3g q1=%.3g med=%.3g q3=%.3g max=%.3g mean=%.3g",
		b.N, b.Min, b.Q1, b.Median, b.Q3, b.Max, b.Mean)
}

// Histogram is a fixed-width binned count of samples, used to reproduce
// the subgraph size distribution of Figure 5.
type Histogram struct {
	Lo, Hi float64 // range covered; samples outside clamp to edge bins
	Counts []int
}

// NewHistogram builds a histogram with bins equal-width bins over [lo, hi].
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 || hi <= lo {
		panic("stats: invalid histogram parameters")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	bins := len(h.Counts)
	idx := int(float64(bins) * (x - h.Lo) / (h.Hi - h.Lo))
	if idx < 0 {
		idx = 0
	}
	if idx >= bins {
		idx = bins - 1
	}
	h.Counts[idx]++
}

// Total returns the number of recorded samples.
func (h *Histogram) Total() int {
	t := 0
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// BinCenter returns the centre value of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + w*(float64(i)+0.5)
}

// Render draws the histogram as ASCII rows "center count |####".
func (h *Histogram) Render(width int) string {
	maxC := 0
	for _, c := range h.Counts {
		if c > maxC {
			maxC = c
		}
	}
	var sb strings.Builder
	for i, c := range h.Counts {
		bar := 0
		if maxC > 0 {
			bar = c * width / maxC
		}
		fmt.Fprintf(&sb, "%12.1f %6d |%s\n", h.BinCenter(i), c, strings.Repeat("#", bar))
	}
	return sb.String()
}

// LinearFit fits y = a + b*x by ordinary least squares and returns the
// intercept a and slope b. Used to fit the log-log scale-free model.
func LinearFit(x, y []float64) (a, b float64) {
	if len(x) != len(y) || len(x) < 2 {
		return math.NaN(), math.NaN()
	}
	mx, my := Mean(x), Mean(y)
	var sxx, sxy float64
	for i := range x {
		dx := x[i] - mx
		sxx += dx * dx
		sxy += dx * (y[i] - my)
	}
	if sxx == 0 {
		return my, 0
	}
	b = sxy / sxx
	a = my - b*mx
	return a, b
}
