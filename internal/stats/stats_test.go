package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := Variance(xs); got != 4 {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); got != 2 {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if Mean(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Error("degenerate inputs should return 0")
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4, 16}); !almostEq(got, 4, 1e-12) {
		t.Errorf("GeoMean = %v, want 4", got)
	}
	// non-positive values skipped
	if got := GeoMean([]float64{0, -3, 4, 4}); !almostEq(got, 4, 1e-12) {
		t.Errorf("GeoMean with skips = %v, want 4", got)
	}
	if GeoMean([]float64{0}) != 0 {
		t.Error("all-skipped GeoMean should be 0")
	}
	// Nothing survives the skip: empty, nil, and all-non-positive inputs
	// must all return the 0 sentinel, never NaN.
	if got := GeoMean(nil); got != 0 {
		t.Errorf("GeoMean(nil) = %v, want 0", got)
	}
	if got := GeoMean([]float64{}); got != 0 {
		t.Errorf("GeoMean(empty) = %v, want 0", got)
	}
	if got := GeoMean([]float64{-1, 0, -16}); got != 0 {
		t.Errorf("GeoMean(all non-positive) = %v, want 0", got)
	}
}

func TestR2(t *testing.T) {
	obs := []float64{1, 2, 3, 4}
	if got := R2(obs, obs); got != 1 {
		t.Errorf("perfect R2 = %v", got)
	}
	meanPred := []float64{2.5, 2.5, 2.5, 2.5}
	if got := R2(obs, meanPred); got != 0 {
		t.Errorf("mean-predictor R2 = %v, want 0", got)
	}
	if !math.IsNaN(R2(obs, []float64{1})) {
		t.Error("length mismatch should give NaN")
	}
	if got := R2([]float64{3, 3}, []float64{3, 3}); got != 1 {
		t.Errorf("constant exact R2 = %v, want 1", got)
	}
}

func TestRMSE(t *testing.T) {
	obs := []float64{0, 0, 0, 0}
	pred := []float64{1, -1, 1, -1}
	if got := RMSE(obs, pred); got != 1 {
		t.Errorf("RMSE = %v, want 1", got)
	}
	if !math.IsNaN(RMSE(nil, nil)) {
		t.Error("empty RMSE should be NaN")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{4, 1, 3, 2} // unsorted on purpose
	if got := Percentile(xs, 0); got != 1 {
		t.Errorf("p0 = %v", got)
	}
	if got := Percentile(xs, 100); got != 4 {
		t.Errorf("p100 = %v", got)
	}
	if got := Percentile(xs, 50); got != 2.5 {
		t.Errorf("p50 = %v, want 2.5", got)
	}
	if xs[0] != 4 {
		t.Error("Percentile must not mutate input")
	}
	if got := Median([]float64{5}); got != 5 {
		t.Errorf("single-element median = %v", got)
	}
}

func TestBoxStats(t *testing.T) {
	b := BoxStats([]float64{1, 2, 3, 4, 5})
	if b.Min != 1 || b.Max != 5 || b.Median != 3 || b.N != 5 {
		t.Errorf("BoxStats = %+v", b)
	}
	if b.Mean != 3 {
		t.Errorf("mean = %v", b.Mean)
	}
	if s := b.String(); !strings.Contains(s, "n=5") {
		t.Errorf("String() = %q", s)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{0.5, 1, 3, 3.5, 9.9, -5, 50} {
		h.Add(x)
	}
	if h.Total() != 7 {
		t.Errorf("Total = %d", h.Total())
	}
	// -5 clamps to first bin, 50 clamps to last bin.
	if h.Counts[0] != 3 { // 0.5, 1, -5
		t.Errorf("bin0 = %d, want 3", h.Counts[0])
	}
	if h.Counts[4] != 2 { // 9.9, 50
		t.Errorf("bin4 = %d, want 2", h.Counts[4])
	}
	if got := h.BinCenter(0); got != 1 {
		t.Errorf("BinCenter(0) = %v, want 1", got)
	}
	if out := h.Render(20); !strings.Contains(out, "#") {
		t.Error("Render should draw bars")
	}
}

func TestHistogramPanicsOnBadParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewHistogram(5, 5, 10)
}

func TestLinearFit(t *testing.T) {
	x := []float64{0, 1, 2, 3}
	y := []float64{1, 3, 5, 7} // y = 1 + 2x
	a, b := LinearFit(x, y)
	if !almostEq(a, 1, 1e-12) || !almostEq(b, 2, 1e-12) {
		t.Errorf("fit = (%v, %v), want (1, 2)", a, b)
	}
	a, b = LinearFit([]float64{2, 2}, []float64{5, 7})
	if a != 6 || b != 0 {
		t.Errorf("degenerate-x fit = (%v,%v), want (6,0)", a, b)
	}
}

func TestLinearFitRecoversNoisyRelationship(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var xs, ys []float64
	for i := 0; i < 500; i++ {
		x := rng.Float64() * 10
		xs = append(xs, x)
		ys = append(ys, 4+0.7*x+rng.NormFloat64()*0.01)
	}
	a, b := LinearFit(xs, ys)
	if !almostEq(a, 4, 0.05) || !almostEq(b, 0.7, 0.01) {
		t.Errorf("fit = (%v, %v)", a, b)
	}
}

// Property: percentiles are monotone in p and bounded by min/max.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, p1, p2 float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		lo, hi := math.Mod(math.Abs(p1), 100), math.Mod(math.Abs(p2), 100)
		if lo > hi {
			lo, hi = hi, lo
		}
		a, b := Percentile(xs, lo), Percentile(xs, hi)
		return a <= b && a >= Percentile(xs, 0) && b <= Percentile(xs, 100)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: R2 of a predictor is never above 1.
func TestR2UpperBoundProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(20)
		obs := make([]float64, n)
		pred := make([]float64, n)
		for i := range obs {
			obs[i] = rng.NormFloat64()
			pred[i] = rng.NormFloat64()
		}
		r2 := R2(obs, pred)
		return math.IsNaN(r2) || r2 <= 1+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSummarizeLatencyEmpty(t *testing.T) {
	if got := SummarizeLatency(nil); got != (LatencyStats{}) {
		t.Errorf("empty sample = %+v, want zero digest", got)
	}
}

func TestSummarizeLatencySingleSample(t *testing.T) {
	got := SummarizeLatency([]float64{3.5})
	want := LatencyStats{Mean: 3.5, P50: 3.5, P90: 3.5, P99: 3.5}
	if got != want {
		t.Errorf("single sample = %+v, want %+v", got, want)
	}
}

// Property: the one-sort digest agrees with per-call Percentile on the
// same sample, and leaves the input unmodified.
func TestSummarizeLatencyMatchesPercentile(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 1+rng.Intn(40))
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
		}
		orig := append([]float64(nil), xs...)
		got := SummarizeLatency(xs)
		for i := range xs {
			if xs[i] != orig[i] {
				return false
			}
		}
		return got.Mean == Mean(xs) &&
			got.P50 == Percentile(xs, 50) &&
			got.P90 == Percentile(xs, 90) &&
			got.P99 == Percentile(xs, 99)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSummarizeSLOEmpty(t *testing.T) {
	got := SummarizeSLO(nil, 0, 0, 0.5)
	if got.Requests != 0 || got.Completed != 0 || got.Met != 0 || got.Goodput != 0 {
		t.Errorf("empty run = %+v, want zeros", got)
	}
	if got.Latency != (LatencyStats{}) {
		t.Errorf("empty run latency = %+v, want zero digest", got.Latency)
	}
	if got.MetFrac() != 0 {
		t.Errorf("MetFrac with zero requests = %v, want 0", got.MetFrac())
	}
}

func TestSummarizeSLOSingleSample(t *testing.T) {
	got := SummarizeSLO([]float64{4.0}, 1, 1, 2.0)
	if got.Requests != 1 || got.Completed != 1 || got.Met != 1 {
		t.Errorf("counts = %+v", got)
	}
	if got.Goodput != 0.5 {
		t.Errorf("goodput = %v, want 0.5 (1 met / 2s)", got.Goodput)
	}
	if got.MetFrac() != 1 {
		t.Errorf("metfrac = %v, want 1", got.MetFrac())
	}
	if want := (LatencyStats{Mean: 4, P50: 4, P90: 4, P99: 4}); got.Latency != want {
		t.Errorf("latency = %+v, want %+v", got.Latency, want)
	}
}

func TestSummarizeSLONonPositiveHorizon(t *testing.T) {
	if got := SummarizeSLO([]float64{1}, 1, 1, 0); got.Goodput != 0 {
		t.Errorf("zero horizon goodput = %v, want 0", got.Goodput)
	}
	if got := SummarizeSLO([]float64{1}, 1, 1, -3); got.Goodput != 0 {
		t.Errorf("negative horizon goodput = %v, want 0", got.Goodput)
	}
}

func TestGroupSLOEmpty(t *testing.T) {
	order, byKey := GroupSLO(nil, nil, nil, nil, 1.0)
	if len(order) != 0 || len(byKey) != 0 {
		t.Errorf("empty input produced order=%v byKey=%v", order, byKey)
	}
}

func TestGroupSLOSingleSamplePerTenant(t *testing.T) {
	keys := []string{"t1", "t0"}
	lats := []float64{8.0, 2.0}
	met := map[string]int{"t0": 1, "t1": 0}
	offered := map[string]int{"t0": 1, "t1": 1}
	order, byKey := GroupSLO(keys, lats, met, offered, 4.0)
	if want := []string{"t0", "t1"}; len(order) != 2 || order[0] != want[0] || order[1] != want[1] {
		t.Fatalf("order = %v, want %v", order, want)
	}
	t0 := byKey["t0"]
	if t0.Completed != 1 || t0.Met != 1 || t0.Goodput != 0.25 || t0.Latency.P99 != 2.0 {
		t.Errorf("t0 = %+v", t0)
	}
	t1 := byKey["t1"]
	if t1.Completed != 1 || t1.Met != 0 || t1.Goodput != 0 || t1.Latency.P99 != 8.0 {
		t.Errorf("t1 = %+v", t1)
	}
}

// An all-shed tenant appears in offered with no completions: the rollup
// must still emit its row, with a zero latency digest and zero goodput.
func TestGroupSLOAllShedTenant(t *testing.T) {
	keys := []string{"t0"}
	lats := []float64{1.5}
	met := map[string]int{"t0": 1}
	offered := map[string]int{"t0": 1, "shed": 5}
	order, byKey := GroupSLO(keys, lats, met, offered, 1.0)
	if len(order) != 2 {
		t.Fatalf("order = %v, want 2 tenants", order)
	}
	s := byKey["shed"]
	if s.Requests != 5 || s.Completed != 0 || s.Met != 0 || s.Goodput != 0 {
		t.Errorf("all-shed tenant = %+v", s)
	}
	if s.Latency != (LatencyStats{}) {
		t.Errorf("all-shed latency = %+v, want zero digest", s.Latency)
	}
	if s.MetFrac() != 0 {
		t.Errorf("all-shed metfrac = %v, want 0", s.MetFrac())
	}
}
