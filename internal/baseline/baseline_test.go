package baseline

import (
	"strings"
	"testing"
)

func TestDeviceConstructors(t *testing.T) {
	gpu, cpu := TitanXP(), XeonE5()
	if gpu.PeakGOPS <= cpu.PeakGOPS {
		t.Error("GPU should have higher peak throughput")
	}
	if gpu.MemBWGBs <= cpu.MemBWGBs {
		t.Error("GPU should have higher memory bandwidth")
	}
	if cpu.TransferGBs != 0 {
		t.Error("CPU needs no host link")
	}
	if !strings.Contains(gpu.String(), "TitanXP") {
		t.Errorf("String = %q", gpu.String())
	}
}

func TestGEMMRoofline(t *testing.T) {
	gpu := TitanXP()
	// Large square GEMM is compute bound: time ~ 2n^3 / (peak * eff).
	n := 2048
	got := gpu.GEMMTime(n, n, n).Seconds()
	want := 2 * float64(n) * float64(n) * float64(n) / (gpu.PeakGOPS * gpu.GEMMEff * 1e9)
	if got < want || got > want*1.2 {
		t.Errorf("GEMM time = %v, want ~%v", got, want)
	}
	// Bigger problems take longer.
	if gpu.GEMMTime(64, 64, 64) >= gpu.GEMMTime(512, 512, 512) {
		t.Error("GEMM time not monotone in size")
	}
}

func TestSpMMIsGatherBound(t *testing.T) {
	cpu := XeonE5()
	// For sparse aggregation the random-access floor dominates on CPU.
	nnz, n, f := 100000, 20000, 128
	got := cpu.SpMMTime(nnz, n, f).Seconds()
	gatherBound := float64(nnz) * float64(f) * 2 / (cpu.RandomBWGBs * 1e9)
	if got < gatherBound {
		t.Errorf("SpMM %v below the gather bound %v", got, gatherBound)
	}
}

func TestGPUFarFasterThanCPUOnSpMM(t *testing.T) {
	// Section V-B2: GPU accelerates the compute kernels dramatically
	// over CPU (the paper's CPU/GPU gap is ~50x end to end).
	gpu, cpu := TitanXP(), XeonE5()
	nnz, n, f := 500000, 50000, 128
	ratio := float64(cpu.SpMMTime(nnz, n, f)) / float64(gpu.SpMMTime(nnz, n, f))
	if ratio < 10 {
		t.Errorf("CPU/GPU SpMM ratio = %.1f, want large", ratio)
	}
}

func TestLaunchOverheadFloorsSmallKernels(t *testing.T) {
	gpu := TitanXP()
	if got := gpu.VaddTime(1); got < gpu.Launch {
		t.Errorf("tiny kernel %v below launch overhead %v", got, gpu.Launch)
	}
}

func TestTransferTime(t *testing.T) {
	gpu, cpu := TitanXP(), XeonE5()
	if cpu.TransferTime(1<<30) != 0 {
		t.Error("CPU transfers should be free")
	}
	sec := gpu.TransferTime(12 << 30).Seconds()
	if sec < 0.9 || sec > 1.1 {
		t.Errorf("12 GiB over 12 GB/s = %v s, want ~1", sec)
	}
	if gpu.TransferTime(0) != 0 {
		t.Error("zero bytes should be free")
	}
}

func TestEnergy(t *testing.T) {
	gpu := TitanXP()
	busy := gpu.GEMMTime(1024, 1024, 1024)
	e := gpu.EnergyJ(busy, busy)
	if want := gpu.PowerW * busy.Seconds(); e != want {
		t.Errorf("busy energy = %v, want %v", e, want)
	}
	// Idle time adds idle power.
	if gpu.EnergyJ(busy, 2*busy) <= e {
		t.Error("idle window should add energy")
	}
	// total < busy is clamped.
	if gpu.EnergyJ(busy, 0) != e {
		t.Error("clamping broken")
	}
}

func TestKernelTimePanicsOnZeroEff(t *testing.T) {
	d := TitanXP()
	d.GEMMEff = 0
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	d.GEMMTime(2, 2, 2)
}
