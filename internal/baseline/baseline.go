// Package baseline models the evaluation's conventional platforms: the
// dual-socket Xeon E5-2697 v3 host and the NVIDIA Titan XP GPU with its
// PCIe 3.0 x16 link (Section V-A). These are analytical roofline models
// — kernel time is the max of the compute and memory-bandwidth bounds,
// plus host-device transfer for the GPU — parameterised by the devices'
// published peaks. They enter the evaluation only as aggregate time and
// power scalars (DESIGN.md substitution table).
package baseline

import (
	"fmt"

	"mlimp/internal/event"
)

// Device is a roofline-modelled conventional processor.
type Device struct {
	Name string
	// PeakGOPS is peak 16/32-bit arithmetic throughput in 1e9 ops/s.
	PeakGOPS float64
	// MemBWGBs is peak memory bandwidth in GB/s.
	MemBWGBs float64
	// GEMMEff and SpMMEff derate the peak for dense and sparse kernels
	// (sparse aggregation is memory-bound and wildly inefficient on both
	// platforms; the 2-5% figures follow the SpMM literature the paper
	// cites [25], [34]).
	GEMMEff, SpMMEff, VaddEff float64
	// RandomBWGBs is the effective bandwidth of irregular gathers (far
	// below the streaming peak on both platforms).
	RandomBWGBs float64
	// TransferGBs is the host link bandwidth (0 = no transfer needed).
	TransferGBs float64
	// Launch is the per-kernel dispatch overhead.
	Launch event.Time
	// PowerW is average board/package power under load.
	PowerW float64
	// IdleW is idle power charged while waiting.
	IdleW float64
}

// TitanXP returns the GPU baseline: 12.1 TFLOPS FP32 / ~24 TOPS INT16
// class card, 547 GB/s GDDR5X, PCIe 3.0 x16 at ~12 GB/s effective.
func TitanXP() Device {
	return Device{
		Name: "TitanXP", PeakGOPS: 12150, MemBWGBs: 547,
		GEMMEff: 0.60, SpMMEff: 0.05, VaddEff: 0.80,
		RandomBWGBs: 100, TransferGBs: 12,
		Launch: 5 * event.Microsecond,
		PowerW: 180, IdleW: 15,
	}
}

// XeonE5 returns the CPU baseline: dual-socket E5-2697 v3 (2 x 14 cores,
// AVX2) with 4-channel DDR4-2133, ~1.3 TFLOPS FP32 and 68 GB/s per
// socket.
func XeonE5() Device {
	return Device{
		Name: "XeonE5-2697v3", PeakGOPS: 1300, MemBWGBs: 136,
		GEMMEff: 0.70, SpMMEff: 0.02, VaddEff: 0.50,
		RandomBWGBs: 2.0, TransferGBs: 0,
		Launch: 2 * event.Microsecond,
		PowerW: 290, IdleW: 80,
	}
}

// kernelTime is the roofline: launch overhead plus the max of the
// compute, streaming, and (when randomBytes > 0) irregular-access
// bounds. Host transfer is billed separately by TransferTime.
func (d Device) kernelTime(ops, bytes, randomBytes int64, eff float64) event.Time {
	if eff <= 0 {
		panic("baseline: non-positive efficiency")
	}
	compute := float64(ops) / (d.PeakGOPS * eff * 1e9)
	memory := float64(bytes) / (d.MemBWGBs * 1e9)
	t := compute
	if memory > t {
		t = memory
	}
	if randomBytes > 0 && d.RandomBWGBs > 0 {
		if rt := float64(randomBytes) / (d.RandomBWGBs * 1e9); rt > t {
			t = rt
		}
	}
	return d.Launch + event.Time(t*float64(event.Second))
}

// TransferTime is the host-device link time for moving bytes (zero for
// devices without a link, i.e. the CPU).
func (d Device) TransferTime(bytes int64) event.Time {
	if d.TransferGBs <= 0 || bytes <= 0 {
		return 0
	}
	return event.Time(float64(bytes) / (d.TransferGBs * 1e9) * float64(event.Second))
}

// GEMMTime returns the time for an r x k x c dense multiply, including
// streaming the operands over the host link where applicable.
func (d Device) GEMMTime(r, k, c int) event.Time {
	ops := 2 * int64(r) * int64(k) * int64(c)
	bytes := 2 * (int64(r)*int64(k) + int64(k)*int64(c) + int64(r)*int64(c))
	return d.kernelTime(ops, bytes, 0, d.GEMMEff)
}

// SpMMTime returns the time for sparse-times-dense aggregation with nnz
// nonzeros and feature width f over n dense rows.
func (d Device) SpMMTime(nnz, n, f int) event.Time {
	ops := 2 * int64(nnz) * int64(f)
	// Sparse aggregation gathers one dense feature row per nonzero —
	// the irregular traffic that dominates on both platforms.
	gathered := int64(nnz) * int64(f) * 2
	bytes := gathered + int64(n)*int64(f)*2
	return d.kernelTime(ops, bytes, gathered, d.SpMMEff)
}

// VaddTime returns the time for an n-element elementwise addition.
func (d Device) VaddTime(n int) event.Time {
	return d.kernelTime(int64(n), 6*int64(n), 0, d.VaddEff)
}

// EnergyJ returns the energy of running busy for the given duration plus
// idling for the rest of a window.
func (d Device) EnergyJ(busy, total event.Time) float64 {
	if total < busy {
		total = busy
	}
	return d.PowerW*busy.Seconds() + d.IdleW*(total-busy).Seconds()
}

// String names the device.
func (d Device) String() string {
	return fmt.Sprintf("%s (%.1f TOPS, %.0f GB/s)", d.Name, d.PeakGOPS/1000, d.MemBWGBs)
}
