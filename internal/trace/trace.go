// Package trace records and replays MLIMP kernel traces. The paper's
// methodology replays profiler traces through the simulator ("The
// execution trace from the autograd profiler is replayed in the
// simulator", Section IV); this package provides the equivalent
// workflow: a Trace captures a job stream's kernel invocations with
// their per-memory cost profiles, serialises to JSON, and reconstructs
// the identical scheduler jobs later — so an expensive workload build
// (graph generation, sampling, predictor inference) runs once and the
// scheduling studies replay it.
package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"mlimp/internal/event"
	"mlimp/internal/isa"
	"mlimp/internal/sched"
)

// Version guards the on-disk format.
const Version = 1

// Record is one kernel invocation in a trace.
type Record struct {
	ID   int                `json:"id"`
	Name string             `json:"name"`
	Kind string             `json:"kind"`
	Est  map[string]Profile `json:"est"` // keyed by target name
}

// Profile mirrors sched.Profile with JSON tags.
type Profile struct {
	UnitCycles   int64   `json:"unit_cycles"`
	RepUnit      int     `json:"rep_unit"`
	LoadBytes    int64   `json:"load_bytes"`
	StoreBytes   int64   `json:"store_bytes"`
	ProgramBytes int64   `json:"program_bytes,omitempty"`
	Beta         float64 `json:"beta"`
	OverheadPs   int64   `json:"overhead_ps,omitempty"`
	MaxUseful    int     `json:"max_useful,omitempty"`
}

// Trace is a recorded job stream.
type Trace struct {
	Version int      `json:"version"`
	Label   string   `json:"label"`
	Records []Record `json:"records"`
}

// targetNames maps targets to stable trace keys.
var targetNames = map[isa.Target]string{
	isa.SRAM: "sram", isa.DRAM: "dram", isa.ReRAM: "reram",
}

func targetByName(name string) (isa.Target, bool) {
	for t, n := range targetNames {
		if n == name {
			return t, true
		}
	}
	return 0, false
}

// Capture records a job stream. Replayed jobs carry only the estimates
// (estimates become the simulated truth), so Capture is lossy for jobs
// whose TrueTime differs from the model — exactly like a real profiler
// trace, which records observed costs rather than closures.
func Capture(label string, jobs []*sched.Job) *Trace {
	tr := &Trace{Version: Version, Label: label}
	for _, j := range jobs {
		rec := Record{ID: j.ID, Name: j.Name, Kind: j.Kind, Est: map[string]Profile{}}
		for t, p := range j.Est {
			rec.Est[targetNames[t]] = Profile{
				UnitCycles: p.UnitCycles, RepUnit: p.RepUnit,
				LoadBytes: p.LoadBytes, StoreBytes: p.StoreBytes,
				ProgramBytes: p.ProgramBytes, Beta: p.Beta,
				OverheadPs: int64(p.Overhead), MaxUseful: p.MaxUseful,
			}
		}
		tr.Records = append(tr.Records, rec)
	}
	return tr
}

// Jobs reconstructs the scheduler jobs from a trace.
func (tr *Trace) Jobs() ([]*sched.Job, error) {
	if tr.Version != Version {
		return nil, fmt.Errorf("trace: version %d, want %d", tr.Version, Version)
	}
	jobs := make([]*sched.Job, 0, len(tr.Records))
	for i, rec := range tr.Records {
		if len(rec.Est) == 0 {
			return nil, fmt.Errorf("trace: record %d has no profiles", i)
		}
		est := map[isa.Target]sched.Profile{}
		for name, p := range rec.Est {
			t, ok := targetByName(name)
			if !ok {
				return nil, fmt.Errorf("trace: record %d: unknown target %q", i, name)
			}
			est[t] = sched.Profile{
				UnitCycles: p.UnitCycles, RepUnit: p.RepUnit,
				LoadBytes: p.LoadBytes, StoreBytes: p.StoreBytes,
				ProgramBytes: p.ProgramBytes, Beta: p.Beta,
				Overhead: event.Time(p.OverheadPs), MaxUseful: p.MaxUseful,
			}
		}
		jobs = append(jobs, &sched.Job{ID: rec.ID, Name: rec.Name, Kind: rec.Kind, Est: est})
	}
	return jobs, nil
}

// Write serialises the trace as indented JSON.
func (tr *Trace) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(tr)
}

// Read parses a trace.
func Read(r io.Reader) (*Trace, error) {
	var tr Trace
	if err := json.NewDecoder(r).Decode(&tr); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	if tr.Version != Version {
		return nil, fmt.Errorf("trace: version %d, want %d", tr.Version, Version)
	}
	return &tr, nil
}
