package trace

import (
	"bytes"
	"testing"
)

// FuzzTraceDecode throws arbitrary bytes at the JSON trace decoder. Two
// properties must hold: Read/Jobs never panic on any input, and any
// trace that decodes and replays successfully must survive a
// write/read/replay round trip unchanged in shape.
func FuzzTraceDecode(f *testing.F) {
	valid := []byte(`{"version":1,"label":"seed","records":[` +
		`{"id":0,"name":"spmm","kind":"spmm","est":{"sram":` +
		`{"unit_cycles":100,"rep_unit":8,"load_bytes":4096,"beta":0.8}}}]}`)
	// Seed with the corruption shapes TestCorruptJSONRoundTrip checks,
	// plus the malformed inputs from TestReadErrors.
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(append([]byte("\x00\xff{"), valid...))
	f.Add(bytes.ReplaceAll(valid, []byte("{"), []byte("[")))
	f.Add([]byte(`{"version": 99}`))
	f.Add([]byte("{not json"))
	f.Add([]byte(`{"version":1,"records":[{"est":{"bogus":{}}}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Read(bytes.NewReader(data))
		if err != nil {
			return // rejected input: fine, as long as it didn't panic
		}
		jobs, err := tr.Jobs()
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := tr.Write(&buf); err != nil {
			t.Fatalf("re-serialise accepted trace: %v", err)
		}
		tr2, err := Read(&buf)
		if err != nil {
			t.Fatalf("re-read re-serialised trace: %v", err)
		}
		jobs2, err := tr2.Jobs()
		if err != nil {
			t.Fatalf("replay re-serialised trace: %v", err)
		}
		if len(jobs2) != len(jobs) {
			t.Fatalf("round trip changed job count: %d -> %d", len(jobs), len(jobs2))
		}
	})
}
