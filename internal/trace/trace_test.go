package trace

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"mlimp/internal/event"
	"mlimp/internal/gnn"
	"mlimp/internal/graph"
	"mlimp/internal/isa"
	"mlimp/internal/predict"
	"mlimp/internal/sched"
)

func sampleJobs(t *testing.T) []*sched.Job {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	d, _ := graph.DatasetByName("ogbl-collab")
	m := gnn.NewGCN(rng, d.InputFeat, d.HiddenFeat, 3)
	w := gnn.BuildWorkload(rng, d, m, 1, 4)
	sys := sched.NewSystem(isa.Targets...)
	return w.SpMMJobs(predict.Oracle{}, sys)
}

func TestCaptureReplayRoundTrip(t *testing.T) {
	jobs := sampleJobs(t)
	tr := Capture("collab-spmm", jobs)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Label != "collab-spmm" || len(back.Records) != len(jobs) {
		t.Fatalf("trace = %+v", back)
	}
	replayed, err := back.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	for i, j := range replayed {
		orig := jobs[i]
		if j.ID != orig.ID || j.Name != orig.Name || j.Kind != orig.Kind {
			t.Fatalf("job %d metadata differs", i)
		}
		for _, tgt := range isa.Targets {
			if j.Est[tgt] != orig.Est[tgt] {
				t.Fatalf("job %d profile on %s differs:\n%+v\n%+v", i, tgt, j.Est[tgt], orig.Est[tgt])
			}
		}
	}
}

func TestReplayedJobsScheduleIdentically(t *testing.T) {
	// Replay fidelity at the level that matters: the scheduler must
	// produce the same estimated placements for replayed jobs as for
	// the originals (the truth closures are deliberately not captured,
	// like a real profiler trace).
	jobs := sampleJobs(t)
	tr := Capture("x", jobs)
	replayed, err := tr.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	sys := sched.NewSystem(isa.Targets...)
	for i := range jobs {
		for _, tgt := range isa.Targets {
			a := sys.ModelTime(jobs[i], tgt, 64)
			b := sys.ModelTime(replayed[i], tgt, 64)
			if a != b {
				t.Fatalf("job %d: model time differs on %s: %v vs %v", i, tgt, a, b)
			}
		}
	}
	resA := sched.NewGlobal().Schedule(sys, replayed)
	if len(resA.Assignments) != len(jobs) {
		t.Fatal("replayed jobs did not all schedule")
	}
}

func TestVersionMismatchRoundTrip(t *testing.T) {
	// A trace written by a "future" format version must be rejected on
	// both read paths: Read (deserialisation) and Jobs (reconstruction).
	tr := Capture("future", sampleJobs(t))
	tr.Version = Version + 1
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(&buf); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("future-version trace read: err = %v, want version mismatch", err)
	}
	if _, err := tr.Jobs(); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("future-version trace replay: err = %v, want version mismatch", err)
	}
}

func TestCorruptJSONRoundTrip(t *testing.T) {
	// Serialise a valid trace, then corrupt the bytes in ways a broken
	// disk or a truncated copy produces; every corruption must surface
	// as a read error, never as a silently-wrong replay.
	tr := Capture("corrupt", sampleJobs(t))
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	for name, corrupt := range map[string][]byte{
		"truncated":      good[:len(good)/2],
		"garbage prefix": append([]byte("\x00\xff{"), good...),
		"braces swapped": bytes.ReplaceAll(good, []byte("{"), []byte("[")),
	} {
		if _, err := Read(bytes.NewReader(corrupt)); err == nil {
			t.Errorf("%s trace should fail to read", name)
		}
	}
}

func TestReadErrors(t *testing.T) {
	if _, err := Read(strings.NewReader("{not json")); err == nil {
		t.Error("malformed JSON should fail")
	}
	if _, err := Read(strings.NewReader(`{"version": 99}`)); err == nil {
		t.Error("wrong version should fail")
	}
}

func TestJobsErrors(t *testing.T) {
	tr := &Trace{Version: Version, Records: []Record{{ID: 0, Name: "x"}}}
	if _, err := tr.Jobs(); err == nil {
		t.Error("record without profiles should fail")
	}
	tr = &Trace{Version: Version, Records: []Record{
		{ID: 0, Name: "x", Est: map[string]Profile{"bogus": {UnitCycles: 1, RepUnit: 1}}},
	}}
	if _, err := tr.Jobs(); err == nil {
		t.Error("unknown target should fail")
	}
	tr = &Trace{Version: 99}
	if _, err := tr.Jobs(); err == nil {
		t.Error("wrong version should fail")
	}
}

func TestOverheadSurvives(t *testing.T) {
	j := &sched.Job{ID: 0, Name: "o", Kind: "k", Est: map[isa.Target]sched.Profile{
		isa.SRAM: {UnitCycles: 100, RepUnit: 2, Overhead: 3 * event.Microsecond, MaxUseful: 7},
	}}
	replayed, err := Capture("o", []*sched.Job{j}).Jobs()
	if err != nil {
		t.Fatal(err)
	}
	p := replayed[0].Est[isa.SRAM]
	if p.Overhead != 3*event.Microsecond || p.MaxUseful != 7 {
		t.Errorf("profile extras lost: %+v", p)
	}
}
