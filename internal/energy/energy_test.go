package energy

import (
	"math/rand"
	"strings"
	"testing"

	"mlimp/internal/isa"
	"mlimp/internal/sched"
)

func job(id int, cycles int64, load int64) *sched.Job {
	est := map[isa.Target]sched.Profile{}
	for _, t := range isa.Targets {
		est[t] = sched.Profile{UnitCycles: cycles, RepUnit: 4, LoadBytes: load, Beta: sched.DefaultBeta}
	}
	return &sched.Job{ID: id, Name: "e", Est: est}
}

func TestConstantsCoverAllTargets(t *testing.T) {
	for _, tgt := range isa.Targets {
		c, ok := PerTarget[tgt]
		if !ok || c.ArrayCyclePJ <= 0 || c.StaticW <= 0 {
			t.Errorf("%s: bad constants %+v", tgt, c)
		}
	}
	// ReRAM's analog MAC with ADC costs more per array access than
	// SRAM's digital bit-slice (Figure 1's energy ordering).
	if PerTarget[isa.ReRAM].ArrayCyclePJ <= PerTarget[isa.SRAM].ArrayCyclePJ {
		t.Error("ReRAM per-access energy should exceed SRAM")
	}
}

func TestOfResultAccounting(t *testing.T) {
	sys := sched.NewSystem(isa.SRAM, isa.DRAM, isa.ReRAM)
	rng := rand.New(rand.NewSource(1))
	var jobs []*sched.Job
	for i := 0; i < 16; i++ {
		jobs = append(jobs, job(i, int64(1e6+rng.Intn(1e6)), 1<<18))
	}
	res := sched.NewGlobal().Schedule(sys, jobs)
	b := OfResult(sys, res)
	if b.ComputeJ <= 0 || b.TransferJ <= 0 || b.StaticJ <= 0 {
		t.Fatalf("incomplete breakdown: %+v", b)
	}
	if b.TotalJ() != b.ComputeJ+b.TransferJ+b.StaticJ {
		t.Error("TotalJ inconsistent")
	}
	if !strings.Contains(b.String(), "total=") {
		t.Error("render wrong")
	}
}

func TestMoreWorkMoreEnergy(t *testing.T) {
	sys := sched.NewSystem(isa.SRAM)
	small := sched.NewGlobal().Schedule(sys, []*sched.Job{job(0, 1e6, 1<<16)})
	big := sched.NewGlobal().Schedule(sys, []*sched.Job{job(0, 1e8, 1<<24)})
	if OfResult(sys, big).TotalJ() <= OfResult(sys, small).TotalJ() {
		t.Error("100x work should cost more energy")
	}
}

func TestNarrowBitsCutComputeEnergy(t *testing.T) {
	sys := sched.NewSystem(isa.SRAM)
	run := func(bits int) Breakdown {
		j := job(0, 1e7, 1<<18)
		j.Bits = bits
		return OfResult(sys, sched.NewGlobal().Schedule(sys, []*sched.Job{j}))
	}
	full, half := run(0), run(8)
	// Same placement and duration (the profile is unscaled here; only
	// the per-cycle switching energy shrinks), so compute energy halves.
	ratio := half.ComputeJ / full.ComputeJ
	if ratio < 0.45 || ratio > 0.55 {
		t.Errorf("8-bit compute energy ratio = %.3f, want ~0.5", ratio)
	}
	if run(16).ComputeJ != full.ComputeJ {
		t.Error("explicit 16 bits must match the zero default")
	}
}
