// Package energy accounts the energy of MLIMP executions and of the
// CPU/GPU baselines (Figure 14). In-memory compute energy is charged per
// active array-cycle with per-technology constants derived from the
// prior work's published numbers (Neural Cache, Ambit, IMP/ISAAC); data
// movement is charged per byte over the DDR4 interface; static power
// accrues over the makespan.
package energy

import (
	"fmt"

	"mlimp/internal/isa"
	"mlimp/internal/sched"
)

// Constants per target. ArrayCyclePJ is the dynamic energy of one array
// executing one compute cycle (all bitlines switching); StaticW is the
// always-on power of the whole device's periphery.
type Constants struct {
	ArrayCyclePJ float64
	StaticW      float64
}

// PerTarget holds the in-memory energy constants.
//
//   - SRAM: a 256x256 array access is ~20 pJ at 2.5 GHz (Neural Cache
//     reports ~1.1 W per way-slice of arrays).
//   - DRAM: a TRA step activates three 8 KB rows, ~60x an SRAM array
//     cycle per bank-row but at 300 MHz.
//   - ReRAM: analog MAC with ADC dominates: ~150 pJ per crossbar access
//     (ISAAC's ADC-dominated budget scaled to the 128x128 array).
var PerTarget = map[isa.Target]Constants{
	isa.SRAM:  {ArrayCyclePJ: 20, StaticW: 2.0},
	isa.DRAM:  {ArrayCyclePJ: 1200, StaticW: 8.0},
	isa.ReRAM: {ArrayCyclePJ: 150, StaticW: 4.0},
}

// DDRPJPerByte is DRAM interface transfer energy (~15 pJ/bit ≈ consistent
// with DDR4 I/O plus activation amortisation, rounded to bytes).
const DDRPJPerByte = 120.0

// Breakdown is an energy report in joules.
type Breakdown struct {
	ComputeJ  float64
	TransferJ float64
	StaticJ   float64
}

// TotalJ sums the breakdown.
func (b Breakdown) TotalJ() float64 { return b.ComputeJ + b.TransferJ + b.StaticJ }

// String renders the breakdown.
func (b Breakdown) String() string {
	return fmt.Sprintf("compute=%.3gJ transfer=%.3gJ static=%.3gJ total=%.3gJ",
		b.ComputeJ, b.TransferJ, b.StaticJ, b.TotalJ())
}

// OfResult charges a scheduling result: every assignment's active
// array-cycles and DDR traffic, plus static power over the makespan for
// each layer present in the system.
func OfResult(sys *sched.System, res *sched.Result) Breakdown {
	var b Breakdown
	for _, a := range res.Assignments {
		c, ok := PerTarget[a.Target]
		if !ok {
			panic(fmt.Sprintf("energy: no constants for %s", a.Target))
		}
		layer := sys.Layers[a.Target]
		cycles := layer.Cfg.Clock().CyclesAt(a.End - a.Start)
		// Narrow operands switch proportionally fewer bitlines per
		// compute cycle (the byte traffic in the profile is pre-scaled by
		// the job generators, so transfer energy needs no factor here).
		width := 1.0
		if a.Job.Bits > 0 && a.Job.Bits < 16 {
			width = float64(a.Job.Bits) / 16
		}
		b.ComputeJ += float64(cycles) * float64(a.Arrays) * c.ArrayCyclePJ * width * 1e-12
		if p, ok := a.Job.Est[a.Target]; ok {
			bytes := p.LoadBytes + p.StoreBytes + p.ProgramBytes*4
			b.TransferJ += float64(bytes) * DDRPJPerByte * 1e-12
		}
	}
	for t := range sys.Layers {
		b.StaticJ += PerTarget[t].StaticW * res.Makespan.Seconds()
	}
	return b
}
