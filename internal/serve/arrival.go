// Package serve is the request-level open-loop front end of the MLIMP
// fleet: deterministic arrival processes emit individual GNN inference
// requests with per-request SLO deadlines, a continuous batch-former
// coalesces compatible requests under a latency budget, and an
// SLO-aware admission stage runs the internal/predict MLP online to
// shed requests predicted to miss their deadline — retraining the
// predictor from observed latencies as it drifts. It layers on the
// sharded cluster fabric (internal/cluster.ShardedDispatcher): all
// front-end state lives on the hub shard and is mutated only inside hub
// events, so a run is byte-identical for any worker count.
package serve

import (
	"math"
	"math/rand"

	"mlimp/internal/event"
)

// ArrivalProcess draws successive inter-arrival gaps. Next may depend
// on the current simulated time (diurnal modulation) and must be
// deterministic for a seeded rng: the serving front end pre-generates
// the whole arrival trace before the simulation runs.
type ArrivalProcess interface {
	Name() string
	// Next returns the gap from now to the next arrival (>= 1 time unit).
	Next(rng *rand.Rand, now event.Time) event.Time
}

// Poisson is the memoryless open arrival process: exponentially
// distributed gaps with the given mean.
type Poisson struct {
	MeanGap event.Time
}

// Name implements ArrivalProcess.
func (Poisson) Name() string { return "poisson" }

// Next implements ArrivalProcess.
func (p Poisson) Next(rng *rand.Rand, _ event.Time) event.Time {
	return clampGap(event.Time(rng.ExpFloat64() * float64(p.MeanGap)))
}

// MMPPState is one phase of a Markov-modulated Poisson process: emit
// with MeanGap while the state holds, hold for an exponentially
// distributed dwell with mean MeanDwell.
type MMPPState struct {
	MeanGap   event.Time
	MeanDwell event.Time
}

// MMPP is a cyclic Markov-modulated Poisson process — the bursty
// arrival model (e.g. a calm state alternating with a burst state whose
// gaps are 10x shorter). States advance cyclically when their dwell
// expires. Edge cases are defined, not fatal: a state with
// MeanDwell <= 0 emits exactly one arrival and is left immediately
// (progress is guaranteed), and a single-state MMPP degenerates to a
// Poisson process. The zero-value dwell bookkeeping draws the first
// state's dwell on the first Next call, so a fresh MMPP is ready to use.
type MMPP struct {
	States []MMPPState

	state     int
	dwellLeft event.Time
	started   bool
}

// Name implements ArrivalProcess.
func (*MMPP) Name() string { return "mmpp" }

// Next implements ArrivalProcess.
func (m *MMPP) Next(rng *rand.Rand, _ event.Time) event.Time {
	if len(m.States) == 0 {
		panic("serve: MMPP needs at least one state")
	}
	if !m.started {
		m.started = true
		m.dwellLeft = m.drawDwell(rng)
	}
	s := m.States[m.state]
	gap := clampGap(event.Time(rng.ExpFloat64() * float64(s.MeanGap)))
	m.dwellLeft -= gap
	if m.dwellLeft <= 0 {
		m.state = (m.state + 1) % len(m.States)
		m.dwellLeft = m.drawDwell(rng)
	}
	return gap
}

// drawDwell samples the current state's dwell; non-positive mean dwells
// return 0, so the state is left right after its next emission.
func (m *MMPP) drawDwell(rng *rand.Rand) event.Time {
	s := m.States[m.state]
	if s.MeanDwell <= 0 {
		return 0
	}
	return event.Time(rng.ExpFloat64() * float64(s.MeanDwell))
}

// Diurnal modulates a base process with a sinusoidal rate-of-day curve
// plus an optional flash crowd: the instantaneous rate multiplier is
//
//	rate(t) = 1 + Amplitude*sin(2*pi*t/Period)   [flash: *FlashBoost]
//
// and each base gap is divided by rate(t), so arrivals densify at the
// peak of the wave and during the flash window. Amplitude must sit in
// [0, 1): the rate multiplier stays positive.
type Diurnal struct {
	Base      ArrivalProcess
	Period    event.Time // wavelength of the daily cycle
	Amplitude float64    // 0 disables modulation
	// Flash crowd: rate is multiplied by FlashBoost inside
	// [FlashAt, FlashAt+FlashDur). Zero FlashBoost disables it.
	FlashAt    event.Time
	FlashDur   event.Time
	FlashBoost float64
}

// Name implements ArrivalProcess.
func (d Diurnal) Name() string { return "diurnal(" + d.Base.Name() + ")" }

// Next implements ArrivalProcess.
func (d Diurnal) Next(rng *rand.Rand, now event.Time) event.Time {
	gap := d.Base.Next(rng, now)
	rate := 1.0
	if d.Amplitude > 0 && d.Period > 0 {
		rate += d.Amplitude * math.Sin(2*math.Pi*float64(now)/float64(d.Period))
	}
	if d.FlashBoost > 0 && now >= d.FlashAt && now < d.FlashAt+d.FlashDur {
		rate *= d.FlashBoost
	}
	if rate <= 0 {
		rate = 1e-3 // misuse guard: never stall the trace
	}
	return clampGap(event.Time(float64(gap) / rate))
}

// clampGap floors gaps at one time unit so traces always progress.
func clampGap(g event.Time) event.Time {
	if g < 1 {
		return 1
	}
	return g
}

// Trace pre-generates the arrival times of a process from start until
// the horizon (exclusive). Deterministic for a seeded rng — the trace
// is drawn before the simulation runs, so arrival randomness can never
// depend on simulation interleaving.
func Trace(rng *rand.Rand, p ArrivalProcess, start, horizon event.Time) []event.Time {
	var out []event.Time
	at := start
	for {
		at += p.Next(rng, at)
		if at >= horizon {
			return out
		}
		out = append(out, at)
	}
}
