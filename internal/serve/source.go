package serve

import (
	"fmt"
	"math/rand"

	"mlimp/internal/event"
	"mlimp/internal/fixed"
	"mlimp/internal/gnn"
	"mlimp/internal/graph"
	"mlimp/internal/isa"
	"mlimp/internal/predict"
	"mlimp/internal/sched"
	"mlimp/internal/workload"
)

// bestTarget picks the lowest-model-time eligible layer at unit
// allocation — the batch-former compatibility key of a request.
func bestTarget(sys *sched.System, j *sched.Job) isa.Target {
	var best isa.Target
	bestT := event.Time(-1)
	for _, t := range sys.Targets() {
		p, ok := j.Est[t]
		if !ok {
			continue
		}
		mt := sys.ModelTime(j, t, p.RepUnit)
		if bestT < 0 || mt < bestT {
			bestT, best = mt, t
		}
	}
	return best
}

// GNNSource turns arrival traces into GNN aggregation requests: each
// request is a 2-hop sampled subgraph of one mother graph whose SpMM
// job is built at seal time with the then-current predictor. The class
// of a request (its batching key) is its preferred target under the
// generation-time predictor, so requests that pull toward the same
// memory batch together.
type GNNSource struct {
	Sys       *sched.System
	Predictor *predict.MLP
	Betas     map[isa.Target]map[int]float64
	F         int
	// Format is the fixed-point operand format request jobs compute in
	// (zero value: the full-width default). Narrow formats shrink each
	// job's cycle and byte profile proportionally — the serving face of
	// the per-layer precision co-design.
	Format fixed.Format

	g       *graph.Graph
	sampler *graph.Sampler
}

// NewGNNSource generates the mother graph, builds the sampler, and fits
// the scale-model betas on a representative subgraph.
func NewGNNSource(rng *rand.Rand, d graph.Dataset, f int, pred *predict.MLP, sys *sched.System) *GNNSource {
	g := d.Generate(rng)
	s := graph.NewSampler(rng, g, 2, 0)
	sample := s.Sample(rng.Intn(g.N))
	return &GNNSource{
		Sys: sys, Predictor: pred,
		Betas: gnn.FitBetas(sample.Adj, []int{f}, sys),
		F:     f, g: g, sampler: s,
	}
}

// Requests pre-generates one request per arrival: subgraph sampling and
// class assignment happen here, before the simulation, with the initial
// predictor — the determinism contract of the front end.
func (s *GNNSource) Requests(rng *rand.Rand, arrivals []event.Time, slo event.Time) []*Request {
	reqs := make([]*Request, len(arrivals))
	for i, at := range arrivals {
		sg := s.sampler.Sample(rng.Intn(s.g.N))
		r := &Request{ID: i, Arrival: at, Deadline: at + slo, Adj: sg.Adj, F: s.F}
		r.Class = bestTarget(s.Sys, s.BuildJob(r)).String()
		reqs[i] = r
	}
	return reqs
}

// BuildJob builds the aggregation job of one request with the current
// predictor state — Config.BuildJob for GNN serving.
func (s *GNNSource) BuildJob(r *Request) *sched.Job {
	qf := s.Format
	if qf.Bits == 0 {
		qf = fixed.DefaultFormat
	}
	return gnn.SpMMJobAt(r.ID, fmt.Sprintf("req-%d", r.ID), r.Adj, r.F, 0, qf, s.Predictor, s.Sys, s.Betas)
}

// AppSource draws Table II application jobs as requests. App costs are
// deterministic static analysis, so jobs are prebuilt at generation and
// BuildJob just returns them — the predictor-free serving baseline.
type AppSource struct {
	Sys  *sched.System
	pool *workload.RequestPool
}

// NewAppSource analyses the application suite once.
func NewAppSource(sys *sched.System) *AppSource {
	return &AppSource{Sys: sys, pool: workload.NewRequestPool()}
}

// Requests pre-generates one uniformly drawn app job per arrival.
func (s *AppSource) Requests(rng *rand.Rand, arrivals []event.Time, slo event.Time) []*Request {
	reqs := make([]*Request, len(arrivals))
	for i, at := range arrivals {
		j := s.pool.Draw(rng, i)
		r := &Request{ID: i, Arrival: at, Deadline: at + slo, Job: j}
		r.Class = bestTarget(s.Sys, j).String()
		reqs[i] = r
	}
	return reqs
}

// BuildJob implements Config.BuildJob for app requests.
func (s *AppSource) BuildJob(r *Request) *sched.Job { return r.Job }
