package serve

import (
	"math/rand"
	"strings"
	"testing"

	"mlimp/internal/cluster"
	"mlimp/internal/event"
	"mlimp/internal/fault"
	"mlimp/internal/isa"
	"mlimp/internal/sched"
)

// hubCrashScenario serves an open-loop app workload over a two-region
// tree whose region-0 hub — the one hosting the front end — freezes for
// [2ms, 6ms) mid-run. Batches sealed during the freeze re-home to
// region 1, sibling settles relay through the live hub, and the revival
// sweep re-dispatches whatever the freeze stranded.
func hubCrashScenario(t *testing.T, workers int) Summary {
	t.Helper()
	sys := sched.NewSystem(isa.Targets...)
	src := NewAppSource(sys)
	rng := rand.New(rand.NewSource(11))
	arr := Trace(rng, Poisson{MeanGap: 150 * event.Microsecond}, 0, 20*event.Millisecond)
	reqs := src.Requests(rng, arr, 30*event.Millisecond)
	AssignTenants(reqs, 2)
	fleet := []cluster.NodeConfig{
		{Name: "full", Targets: isa.Targets},
		{Name: "sram-dram", Targets: []isa.Target{isa.SRAM, isa.DRAM}},
		{Name: "dram-reram", Targets: []isa.Target{isa.DRAM, isa.ReRAM}},
		{Name: "reram", Targets: []isa.Target{isa.ReRAM}},
	}
	d := cluster.NewShardedDispatcher(cluster.NewPredictedCost(), cluster.Admission{MaxRetries: 2, QueueCap: 8},
		cluster.ShardConfig{Workers: workers, Hubs: 2, SummaryEvery: 500 * event.Microsecond},
		fleet...)
	plan := &fault.Plan{
		Seed:       5,
		HubCrashes: []fault.HubCrash{{Region: 0, At: 2 * event.Millisecond, Recover: 6 * event.Millisecond}},
	}
	if err := d.EnableFaults(cluster.FaultConfig{Plan: plan, Deadline: 10 * event.Millisecond}); err != nil {
		t.Fatal(err)
	}
	fe, err := New(d, Config{
		Requests: reqs, Budget: 200 * event.Microsecond, BatchMax: 4,
		BuildJob: src.BuildJob, Seed: 3,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return fe.Run()
}

// TestServingHubCrashConservation: request-level conservation holds
// through a front-end-hub freeze, the fabric counters surface in the
// cluster digest, and the per-tenant re-dispatch join carries through
// to the serving rows.
func TestServingHubCrashConservation(t *testing.T) {
	s := hubCrashScenario(t, 2)
	if s.Accounted() != s.Requests {
		t.Fatalf("accounted %d of %d requests (%+v)", s.Accounted(), s.Requests, s)
	}
	if s.Completed == 0 {
		t.Fatal("nothing completed through the hub crash")
	}
	if s.Cluster.HubCrashes != 1 {
		t.Errorf("cluster HubCrashes = %d, want 1", s.Cluster.HubCrashes)
	}
	if s.Cluster.Rehomed == 0 {
		t.Error("no injections or relays re-homed during the region-0 freeze")
	}
	if len(s.Tenants) != 2 {
		t.Fatalf("serving summary lists %d tenants, want 2", len(s.Tenants))
	}
	clusterRedisp := map[string]int{}
	for _, ct := range s.Cluster.Tenants {
		clusterRedisp[ct.Tenant] = ct.Redispatches
	}
	for _, ts := range s.Tenants {
		if ts.Accounted() != ts.Requests {
			t.Errorf("tenant %s conservation broken: %+v", ts.Tenant, ts)
		}
		if ts.Redispatches != clusterRedisp[ts.Tenant] {
			t.Errorf("tenant %s redispatches %d != cluster row %d",
				ts.Tenant, ts.Redispatches, clusterRedisp[ts.Tenant])
		}
	}
	if s.Cluster.Redispatches > 0 && !strings.Contains(s.String(), "redisp=") {
		t.Error("re-dispatching run renders no redisp= tenant field")
	}
}

// TestServingHubCrashWorkerEquivalence: the serving digest stays
// byte-identical across worker counts even with the front end's own
// hub freezing and recovering mid-run.
func TestServingHubCrashWorkerEquivalence(t *testing.T) {
	want := hubCrashScenario(t, 1).String()
	for _, w := range []int{2, 4, 8} {
		if got := hubCrashScenario(t, w).String(); got != want {
			t.Fatalf("workers=%d diverges:\n%s\nwant:\n%s", w, got, want)
		}
	}
}
