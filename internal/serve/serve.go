package serve

import (
	"fmt"
	"math"
	"math/rand"

	"mlimp/internal/cluster"
	"mlimp/internal/event"
	"mlimp/internal/predict"
	"mlimp/internal/runtime"
	"mlimp/internal/sched"
	"mlimp/internal/stats"
	"mlimp/internal/tensor"
)

// Request is one inference request flowing through the front end.
type Request struct {
	ID       int
	Arrival  event.Time
	Deadline event.Time // absolute SLO deadline
	// Class is the batch-former compatibility key: requests of one class
	// may share a batch (by convention the preferred target layer, so a
	// batch's jobs pull toward one memory and the node scheduler is not
	// forced to split every batch three ways).
	Class string
	// Tenant, when non-empty, names the tenant this request belongs to.
	// Tenants never share a batch (the batch former folds the tenant into
	// the compatibility key), so every batch reaching a node scheduler is
	// tenant-pure and the scheduler can hold tenants on disjoint arrays.
	Tenant string

	// GNN payload: the sampled subgraph and feature width whose
	// aggregation SpMM this request executes. App-source requests leave
	// Adj nil and carry a prebuilt Job instead.
	Adj *tensor.CSR
	F   int
	Job *sched.Job
}

// Drift-detector EWMA weight over per-batch log prediction errors.
const driftAlpha = 0.2

// Defaults for the optional knobs of Config.
const (
	DefaultBatchMax       = 8
	DefaultObsWindow      = 256
	DefaultDriftThreshold = 0.35
	DefaultRetrainEpochs  = 40
	DefaultRetrainLR      = 1e-3
)

// Config parameterises a front end.
type Config struct {
	// Requests is the pre-generated arrival trace, sorted by Arrival.
	// Pre-generation is the determinism contract: request randomness is
	// drawn before the simulation, never from its interleaving.
	Requests []*Request

	// Budget is the batch-former latency budget: a class's first queued
	// request waits at most this long before its batch dispatches.
	Budget event.Time
	// BatchMax dispatches a class early once it gathers this many
	// requests (budget-expiry or batch-full, whichever first).
	// 0 means DefaultBatchMax.
	BatchMax int

	// PredictorAdmission sheds requests at seal time when the online
	// cost model predicts their batch would complete past their
	// deadline. Off = predictor-blind: identical batches and routing,
	// but saturation sheds at the dispatcher's admission bound instead.
	PredictorAdmission bool

	// BuildJob builds the scheduler job of one request at seal time —
	// with the *current* predictor state, so online retraining reaches
	// every later estimate. The returned job's ID must equal r.ID (the
	// front end joins observed assignments back to requests by ID).
	BuildJob func(r *Request) *sched.Job

	// Online predictor loop; leave Predictor or Mirror nil to disable.
	Predictor *predict.MLP  // the model Refit fine-tunes
	Mirror    *sched.System // cost-model mirror for span inversion
	// RetrainEvery refits after this many completed batches (0: only on
	// drift). DriftThreshold triggers an immediate refit when the EWMA
	// of log(actual/predicted) batch latency exceeds it (0 means
	// DefaultDriftThreshold). ObsWindow bounds the observation replay
	// buffer (0 means DefaultObsWindow).
	RetrainEvery   int
	RetrainEpochs  int
	RetrainLR      float64
	ObsWindow      int
	DriftThreshold float64
	// Seed drives the retraining rng (shuffle order inside Refit).
	Seed int64

	// OnDone, if set, observes every batch terminal state after the
	// front end's own settlement — the audit hook experiments use to
	// inspect per-job assignments (DoneInfo.Result.Assignments, with
	// RecordAssignments armed on the dispatcher).
	OnDone func(cluster.DoneInfo)
}

func (c *Config) batchMax() int {
	if c.BatchMax > 0 {
		return c.BatchMax
	}
	return DefaultBatchMax
}

func (c *Config) obsWindow() int {
	if c.ObsWindow > 0 {
		return c.ObsWindow
	}
	return DefaultObsWindow
}

func (c *Config) driftThreshold() float64 {
	if c.DriftThreshold > 0 {
		return c.DriftThreshold
	}
	return DefaultDriftThreshold
}

func (c *Config) retrainEpochs() int {
	if c.RetrainEpochs > 0 {
		return c.RetrainEpochs
	}
	return DefaultRetrainEpochs
}

func (c *Config) retrainLR() float64 {
	if c.RetrainLR > 0 {
		return c.RetrainLR
	}
	return DefaultRetrainLR
}

// classQueue is one class's forming batch plus its budget-timer
// generation (bumped at every seal to disarm the pending expiry).
type classQueue struct {
	reqs     []*Request
	timerGen int
}

// tenantTally is one tenant's request terminal-state accounting.
type tenantTally struct {
	requests, shedAdmission, shedOverload, deadLettered, completed, met int
}

// tally returns (creating on first use) a tenant's accounting row.
func (fe *FrontEnd) tally(tenant string) *tenantTally {
	if fe.tenants == nil {
		fe.tenants = map[string]*tenantTally{}
	}
	t := fe.tenants[tenant]
	if t == nil {
		t = &tenantTally{}
		fe.tenants[tenant] = t
	}
	return t
}

// batchRec joins an in-flight batch back to its requests and to the
// admission-time prediction.
type batchRec struct {
	reqs        []*Request
	sealedAt    event.Time
	predictedAt event.Time
	predictedOK bool
}

// FrontEnd is the open-loop serving layer over a sharded fleet. All of
// its state is hub-shard state: arrivals, seals, completions, and
// retraining all execute inside hub events, which is what makes serving
// runs byte-identical across worker counts.
type FrontEnd struct {
	d   *cluster.ShardedDispatcher
	cfg Config
	rng *rand.Rand

	classes   map[string]*classQueue
	batches   map[int]*batchRec
	nextBatch int

	requests      int
	sealed        int
	shedAdmission int
	shedOverload  int
	deadLettered  int
	completedReq  int
	met           int
	latencies     []float64
	latTenants    []string // parallel to latencies; "" when untenanted
	tenants       map[string]*tenantTally

	obs          []predict.Observation
	predErrSum   float64
	predErrN     int
	ewma         float64
	drifts       int
	retrains     int
	sinceRetrain int
}

// New builds a front end over the fleet and registers it: arrival
// events are seeded into the hub engine, the dispatcher's horizon is
// extended to the last arrival (so failure detection stays armed across
// idle gaps), and the terminal-state observer is installed. Call before
// d.Run (or use fe.Run, which wraps it).
func New(d *cluster.ShardedDispatcher, cfg Config) (*FrontEnd, error) {
	if d == nil {
		return nil, fmt.Errorf("serve: nil dispatcher")
	}
	if cfg.Budget <= 0 {
		return nil, fmt.Errorf("serve: batch budget must be positive")
	}
	if cfg.BuildJob == nil {
		return nil, fmt.Errorf("serve: nil BuildJob")
	}
	if len(cfg.Requests) == 0 {
		return nil, fmt.Errorf("serve: empty request trace")
	}
	fe := &FrontEnd{
		d:       d,
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		classes: map[string]*classQueue{},
		batches: map[int]*batchRec{},
	}
	eng := d.HubEngine()
	var last event.Time
	for _, r := range cfg.Requests {
		r := r
		eng.At(r.Arrival, func() { fe.arrive(r) })
		if r.Arrival > last {
			last = r.Arrival
		}
	}
	d.ExtendHorizon(last)
	if fe.retraining() {
		d.RecordAssignments()
	}
	d.OnDone(fe.onDone)
	return fe, nil
}

// retraining reports whether the online predictor loop is wired.
func (fe *FrontEnd) retraining() bool {
	return fe.cfg.Predictor != nil && fe.cfg.Mirror != nil
}

// classKey folds the tenant into the batch-former compatibility key:
// requests of one class batch together only within one tenant, so
// every sealed batch is tenant-pure.
func classKey(r *Request) string {
	if r.Tenant == "" {
		return r.Class
	}
	return r.Class + "@" + r.Tenant
}

// arrive queues one request into its class and applies the dispatch
// rule: seal on batch-full immediately, otherwise arm the budget timer
// when the request opens a fresh batch.
func (fe *FrontEnd) arrive(r *Request) {
	fe.requests++
	if r.Tenant != "" {
		fe.tally(r.Tenant).requests++
	}
	key := classKey(r)
	q := fe.classes[key]
	if q == nil {
		q = &classQueue{}
		fe.classes[key] = q
	}
	q.reqs = append(q.reqs, r)
	if len(q.reqs) >= fe.cfg.batchMax() {
		q.timerGen++ // disarm the pending budget timer
		fe.seal(key)
		return
	}
	if len(q.reqs) == 1 {
		gen := q.timerGen
		fe.d.HubEngine().After(fe.cfg.Budget, func() {
			if q.timerGen != gen || len(q.reqs) == 0 {
				return // batch-full seal got there first
			}
			q.timerGen++
			fe.seal(key)
		})
	}
}

// seal closes one class's forming batch: jobs are built with the
// current (possibly retrained) predictor, the batch cost is predicted
// against the fleet's booked estimates, doomed requests are shed when
// predictor admission is on, and the survivors are injected.
func (fe *FrontEnd) seal(class string) {
	q := fe.classes[class]
	reqs := q.reqs
	q.reqs = nil
	now := fe.d.HubEngine().Now()
	jobs := make([]*sched.Job, len(reqs))
	for i, r := range reqs {
		jobs[i] = fe.cfg.BuildJob(r)
	}
	predictedAt, predictedOK := fe.d.PredictedCompletion(jobs)
	if fe.cfg.PredictorAdmission && predictedOK {
		// One shedding pass: dropping requests only shrinks the batch,
		// which speeds it up, so survivors of the full-batch prediction
		// remain survivors of the shrunken one.
		var keptR []*Request
		var keptJ []*sched.Job
		for i, r := range reqs {
			if r.Deadline < predictedAt {
				fe.shedAdmission++
				if r.Tenant != "" {
					fe.tally(r.Tenant).shedAdmission++
				}
				continue
			}
			keptR = append(keptR, r)
			keptJ = append(keptJ, jobs[i])
		}
		reqs, jobs = keptR, keptJ
	}
	if len(reqs) == 0 {
		return
	}
	id := fe.nextBatch
	fe.nextBatch++
	fe.sealed++
	fe.batches[id] = &batchRec{
		reqs: reqs, sealedAt: now,
		predictedAt: predictedAt, predictedOK: predictedOK,
	}
	if err := fe.d.Inject(&runtime.Batch{ID: id, Arrival: now, Tenant: reqs[0].Tenant, Jobs: jobs}); err != nil {
		panic("serve: " + err.Error()) // IDs are unique, jobs non-empty
	}
}

// onDone settles one batch's requests and feeds the online predictor
// loop: observed spans become training observations, prediction error
// updates the drift EWMA, and drift or the periodic schedule triggers a
// refit.
func (fe *FrontEnd) onDone(info cluster.DoneInfo) {
	rec := fe.batches[info.Batch.ID]
	if rec == nil {
		return
	}
	if fe.cfg.OnDone != nil {
		defer fe.cfg.OnDone(info)
	}
	delete(fe.batches, info.Batch.ID)
	switch info.Outcome {
	case cluster.OutcomeShed:
		fe.shedOverload += len(rec.reqs)
		for _, r := range rec.reqs {
			if r.Tenant != "" {
				fe.tally(r.Tenant).shedOverload++
			}
		}
		return
	case cluster.OutcomeDeadLettered:
		fe.deadLettered += len(rec.reqs)
		for _, r := range rec.reqs {
			if r.Tenant != "" {
				fe.tally(r.Tenant).deadLettered++
			}
		}
		return
	}
	res := info.Result
	for _, r := range rec.reqs {
		fe.completedReq++
		fe.latencies = append(fe.latencies, (res.Completed - r.Arrival).Millis())
		fe.latTenants = append(fe.latTenants, r.Tenant)
		met := res.Completed <= r.Deadline
		if met {
			fe.met++
		}
		if r.Tenant != "" {
			t := fe.tally(r.Tenant)
			t.completed++
			if met {
				t.met++
			}
		}
	}
	if rec.predictedOK {
		actual := float64(res.Completed - rec.sealedAt)
		predicted := float64(rec.predictedAt - rec.sealedAt)
		if actual > 0 && predicted > 0 {
			e := math.Log(actual / predicted)
			fe.predErrSum += math.Abs(e)
			fe.predErrN++
			fe.ewma = (1-driftAlpha)*fe.ewma + driftAlpha*e
		}
	}
	if !fe.retraining() {
		return
	}
	fe.harvest(rec, res)
	fe.sinceRetrain++
	drifted := math.Abs(fe.ewma) > fe.cfg.driftThreshold()
	if drifted || (fe.cfg.RetrainEvery > 0 && fe.sinceRetrain >= fe.cfg.RetrainEvery) {
		if drifted {
			fe.drifts++
		}
		fe.retrain()
	}
}

// harvest inverts each completed GNN job's observed span into implied
// unit cycles and appends the observation, keeping a bounded window.
func (fe *FrontEnd) harvest(rec *batchRec, res runtime.BatchResult) {
	for _, a := range res.Assignments {
		var r *Request
		for _, rr := range rec.reqs {
			if rr.ID == a.Job.ID {
				r = rr
				break
			}
		}
		if r == nil || r.Adj == nil {
			continue
		}
		p, ok := a.Job.Est[a.Target]
		if !ok {
			continue
		}
		cyc := fe.cfg.Mirror.ObservedUnitCycles(p, a.Target, a.Arrays, a.End-a.Start)
		fe.obs = append(fe.obs, predict.Observation{Adj: r.Adj, F: r.F, Target: a.Target, Cycles: cyc})
	}
	if w := fe.cfg.obsWindow(); len(fe.obs) > w {
		fe.obs = append(fe.obs[:0], fe.obs[len(fe.obs)-w:]...)
	}
}

// retrain fine-tunes the predictor on the observation window and resets
// the drift state.
func (fe *FrontEnd) retrain() {
	if len(fe.obs) == 0 {
		return
	}
	fe.cfg.Predictor.Refit(fe.rng, fe.obs, fe.cfg.retrainEpochs(), fe.cfg.retrainLR())
	fe.retrains++
	fe.sinceRetrain = 0
	fe.ewma = 0
}

// Summary is one serving run's digest: the fleet summary plus the
// request-level SLO accounting the front end alone can see.
type Summary struct {
	Cluster cluster.Summary

	Requests      int // offered requests
	Sealed        int // batches injected
	ShedAdmission int // requests shed by predictor admission
	ShedOverload  int // requests in batches shed by the dispatcher
	DeadLettered  int // requests in dead-lettered batches
	Completed     int // requests completed

	SLO stats.SLOStats // goodput-under-SLO and per-request latency tail

	// Tenants holds one row per tenant (sorted by name) when the trace
	// carried tenant tags; empty otherwise.
	Tenants []TenantSummary

	MeanAbsLogErr float64 // mean |log(actual/predicted)| batch latency
	Drifts        int
	Retrains      int
}

// TenantSummary is one tenant's slice of the serving run: terminal
// states and the per-tenant goodput/latency digest.
type TenantSummary struct {
	Tenant        string
	Requests      int
	ShedAdmission int
	ShedOverload  int
	DeadLettered  int
	Completed     int
	// Redispatches counts fault-path batch re-routes charged to this
	// tenant by the dispatcher (joined from the cluster tenant rows).
	// Diagnostic only — not a terminal state, excluded from Accounted.
	Redispatches int
	SLO          stats.SLOStats
}

// Accounted sums the tenant's request terminal states; conservation
// demands it equal Requests on every drained run.
func (t TenantSummary) Accounted() int {
	return t.Completed + t.ShedAdmission + t.ShedOverload + t.DeadLettered
}

// Accounted sums the request terminal states; conservation demands it
// equal Requests on every drained run.
func (s Summary) Accounted() int {
	return s.Completed + s.ShedAdmission + s.ShedOverload + s.DeadLettered
}

// String renders the serving digest deterministically (the worker-count
// equivalence artefact). Tenant rows appear only on tenant-tagged runs,
// so untenanted artefacts are unchanged.
func (s Summary) String() string {
	head := fmt.Sprintf(
		"serve(requests=%d sealed=%d completed=%d met=%d goodput=%.2f/s metfrac=%.3f\n"+
			"  shed[admission=%d overload=%d dead-letter=%d]\n"+
			"  request-latency mean=%.3f p50=%.3f p90=%.3f p99=%.3fms\n"+
			"  predictor abs-log-err=%.4f drifts=%d retrains=%d)",
		s.Requests, s.Sealed, s.Completed, s.SLO.Met, s.SLO.Goodput, s.SLO.MetFrac(),
		s.ShedAdmission, s.ShedOverload, s.DeadLettered,
		s.SLO.Latency.Mean, s.SLO.Latency.P50, s.SLO.Latency.P90, s.SLO.Latency.P99,
		s.MeanAbsLogErr, s.Drifts, s.Retrains)
	for _, t := range s.Tenants {
		head += fmt.Sprintf(
			"\n  tenant %-6s req=%-5d done=%-5d met=%-5d goodput=%.2f/s p99=%.3fms shed[adm=%d over=%d dead=%d]",
			t.Tenant, t.Requests, t.Completed, t.SLO.Met, t.SLO.Goodput, t.SLO.Latency.P99,
			t.ShedAdmission, t.ShedOverload, t.DeadLettered)
		if t.Redispatches > 0 {
			head += fmt.Sprintf(" redisp=%d", t.Redispatches)
		}
	}
	return head + "\n" + s.Cluster.String()
}

// Run drains the fleet and assembles the serving summary.
func (fe *FrontEnd) Run() Summary {
	cs := fe.d.Run()
	s := Summary{
		Cluster:       cs,
		Requests:      fe.requests,
		Sealed:        fe.sealed,
		ShedAdmission: fe.shedAdmission,
		ShedOverload:  fe.shedOverload,
		DeadLettered:  fe.deadLettered,
		Completed:     fe.completedReq,
		Drifts:        fe.drifts,
		Retrains:      fe.retrains,
	}
	s.SLO = stats.SummarizeSLO(fe.latencies, fe.met, fe.requests, cs.Makespan.Seconds())
	if len(fe.tenants) > 0 {
		var keys []string
		var lats []float64
		for i, t := range fe.latTenants {
			if t != "" {
				keys = append(keys, t)
				lats = append(lats, fe.latencies[i])
			}
		}
		met := make(map[string]int, len(fe.tenants))
		offered := make(map[string]int, len(fe.tenants))
		for name, t := range fe.tenants {
			met[name] = t.met
			offered[name] = t.requests
		}
		order, byKey := stats.GroupSLO(keys, lats, met, offered, cs.Makespan.Seconds())
		redisp := make(map[string]int, len(cs.Tenants))
		for _, ct := range cs.Tenants {
			redisp[ct.Tenant] = ct.Redispatches
		}
		for _, name := range order {
			t := fe.tenants[name]
			if t == nil {
				t = &tenantTally{}
			}
			s.Tenants = append(s.Tenants, TenantSummary{
				Tenant:        name,
				Requests:      t.requests,
				ShedAdmission: t.shedAdmission,
				ShedOverload:  t.shedOverload,
				DeadLettered:  t.deadLettered,
				Completed:     t.completed,
				Redispatches:  redisp[name],
				SLO:           byKey[name],
			})
		}
	}
	if fe.predErrN > 0 {
		s.MeanAbsLogErr = fe.predErrSum / float64(fe.predErrN)
	}
	return s
}

// AssignTenants tags reqs round-robin across n tenants named
// "t0".."t{n-1}" — the workload-side half of a multi-tenant run. A
// non-positive n leaves the trace untenanted.
func AssignTenants(reqs []*Request, n int) {
	if n <= 0 {
		return
	}
	for i, r := range reqs {
		r.Tenant = fmt.Sprintf("t%d", i%n)
	}
}
