package serve

import (
	"math/rand"
	"sync"
	"testing"

	"mlimp/internal/cluster"
	"mlimp/internal/event"
	"mlimp/internal/graph"
	"mlimp/internal/isa"
	"mlimp/internal/predict"
	"mlimp/internal/sched"
	"mlimp/internal/tensor"
)

// --- arrival processes -------------------------------------------------

// gaps draws n successive gaps from a fresh process with a fixed seed.
func gaps(p ArrivalProcess, seed int64, n int) []event.Time {
	rng := rand.New(rand.NewSource(seed))
	out := make([]event.Time, n)
	at := event.Time(0)
	for i := range out {
		out[i] = p.Next(rng, at)
		at += out[i]
	}
	return out
}

func TestTraceDeterministicAndOrdered(t *testing.T) {
	procs := []func() ArrivalProcess{
		func() ArrivalProcess { return Poisson{MeanGap: 50 * event.Microsecond} },
		func() ArrivalProcess {
			return &MMPP{States: []MMPPState{
				{MeanGap: 100 * event.Microsecond, MeanDwell: event.Millisecond},
				{MeanGap: 10 * event.Microsecond, MeanDwell: 300 * event.Microsecond},
			}}
		},
		func() ArrivalProcess {
			return Diurnal{
				Base:   Poisson{MeanGap: 50 * event.Microsecond},
				Period: 2 * event.Millisecond, Amplitude: 0.8,
				FlashAt: event.Millisecond, FlashDur: 500 * event.Microsecond, FlashBoost: 5,
			}
		},
	}
	for _, mk := range procs {
		name := mk().Name()
		rng1 := rand.New(rand.NewSource(7))
		rng2 := rand.New(rand.NewSource(7))
		a := Trace(rng1, mk(), 0, 10*event.Millisecond)
		b := Trace(rng2, mk(), 0, 10*event.Millisecond)
		if len(a) == 0 {
			t.Fatalf("%s: empty trace", name)
		}
		if len(a) != len(b) {
			t.Fatalf("%s: trace lengths differ: %d vs %d", name, len(a), len(b))
		}
		prev := event.Time(-1)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: traces diverge at %d: %v vs %v", name, i, a[i], b[i])
			}
			if a[i] <= prev {
				t.Fatalf("%s: non-increasing arrival at %d: %v after %v", name, i, a[i], prev)
			}
			if a[i] >= 10*event.Millisecond {
				t.Fatalf("%s: arrival %v past horizon", name, a[i])
			}
			prev = a[i]
		}
	}
}

// A single-state MMPP with zero dwell never draws a dwell, so its gap
// stream is exactly the Poisson stream of the same seed — the
// degeneracy the doc comment promises.
func TestMMPPSingleStateZeroDwellIsPoisson(t *testing.T) {
	mean := 80 * event.Microsecond
	mm := gaps(&MMPP{States: []MMPPState{{MeanGap: mean}}}, 3, 200)
	po := gaps(Poisson{MeanGap: mean}, 3, 200)
	for i := range mm {
		if mm[i] != po[i] {
			t.Fatalf("gap %d: mmpp %v != poisson %v", i, mm[i], po[i])
		}
	}
}

// Zero-dwell states emit exactly one arrival each, so a two-state
// zero-dwell MMPP alternates states per arrival and still progresses.
func TestMMPPZeroDwellAlternates(t *testing.T) {
	m := &MMPP{States: []MMPPState{
		{MeanGap: event.Millisecond},
		{MeanGap: event.Microsecond},
	}}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 100; i++ {
		wantState := i % 2
		if m.started && m.state != wantState {
			t.Fatalf("arrival %d drawn from state %d, want %d", i, m.state, wantState)
		}
		if g := m.Next(rng, 0); g < 1 {
			t.Fatalf("arrival %d: non-positive gap %v", i, g)
		}
	}
}

func TestMMPPSingleStateWithDwellProgresses(t *testing.T) {
	m := &MMPP{States: []MMPPState{{MeanGap: 50 * event.Microsecond, MeanDwell: 10 * event.Microsecond}}}
	for i, g := range gaps(m, 9, 500) {
		if g < 1 {
			t.Fatalf("gap %d: %v", i, g)
		}
	}
}

// The flash window must densify arrivals: mean gap inside the window
// below the unmodulated mean.
func TestDiurnalFlashDensifies(t *testing.T) {
	base := 100 * event.Microsecond
	d := Diurnal{
		Base:    Poisson{MeanGap: base},
		FlashAt: 5 * event.Millisecond, FlashDur: 5 * event.Millisecond, FlashBoost: 10,
	}
	rng := rand.New(rand.NewSource(1))
	arr := Trace(rng, d, 0, 10*event.Millisecond)
	var inFlash, before int
	for _, at := range arr {
		if at >= d.FlashAt {
			inFlash++
		} else {
			before++
		}
	}
	if inFlash < 4*before {
		t.Fatalf("flash window not denser: %d arrivals in flash vs %d before", inFlash, before)
	}
}

// --- front end ---------------------------------------------------------

func testFleet() []cluster.NodeConfig {
	return []cluster.NodeConfig{
		{Name: "full", Targets: isa.Targets},
		{Name: "sram-dram", Targets: []isa.Target{isa.SRAM, isa.DRAM}},
		{Name: "reram", Targets: []isa.Target{isa.ReRAM}},
	}
}

func TestNewValidation(t *testing.T) {
	d := cluster.NewShardedDispatcher(cluster.NewPredictedCost(), cluster.Admission{},
		cluster.ShardConfig{Workers: 1}, testFleet()...)
	req := &Request{ID: 0, Arrival: 1, Deadline: 2}
	build := func(r *Request) *sched.Job { return r.Job }
	cases := []struct {
		name string
		d    *cluster.ShardedDispatcher
		cfg  Config
	}{
		{"nil dispatcher", nil, Config{Requests: []*Request{req}, Budget: 1, BuildJob: build}},
		{"zero budget", d, Config{Requests: []*Request{req}, BuildJob: build}},
		{"negative budget", d, Config{Requests: []*Request{req}, Budget: -1, BuildJob: build}},
		{"nil BuildJob", d, Config{Requests: []*Request{req}, Budget: 1}},
		{"empty trace", d, Config{Budget: 1, BuildJob: build}},
	}
	for _, c := range cases {
		if _, err := New(c.d, c.cfg); err == nil {
			t.Errorf("%s: no error", c.name)
		}
	}
}

// appScenario runs an app-source serving run on a fixed workload.
func appScenario(t *testing.T, workers int, admission bool, meanGap event.Time) Summary {
	t.Helper()
	sys := sched.NewSystem(isa.Targets...)
	src := NewAppSource(sys)
	rng := rand.New(rand.NewSource(11))
	arr := Trace(rng, Poisson{MeanGap: meanGap}, 0, 200*meanGap)
	reqs := src.Requests(rng, arr, 30*event.Millisecond)
	d := cluster.NewShardedDispatcher(cluster.NewPredictedCost(), cluster.Admission{MaxRetries: 1},
		cluster.ShardConfig{Workers: workers}, testFleet()...)
	fe, err := New(d, Config{
		Requests: reqs, Budget: 200 * event.Microsecond, BatchMax: 4,
		PredictorAdmission: admission, BuildJob: src.BuildJob, Seed: 3,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return fe.Run()
}

// The serving digest must be byte-identical for every worker count —
// the front end lives on the hub shard, so the PDES worker count can
// only change wall-clock, never results.
func TestServingWorkerEquivalence(t *testing.T) {
	want := appScenario(t, 1, true, 300*event.Microsecond).String()
	for _, w := range []int{2, 4, 8} {
		if got := appScenario(t, w, true, 300*event.Microsecond).String(); got != want {
			t.Fatalf("workers=%d diverges:\n%s\nwant:\n%s", w, got, want)
		}
	}
}

func TestServingConservation(t *testing.T) {
	for _, adm := range []bool{false, true} {
		s := appScenario(t, 2, adm, 100*event.Microsecond)
		if s.Accounted() != s.Requests {
			t.Fatalf("admission=%v: accounted %d of %d requests (%+v)",
				adm, s.Accounted(), s.Requests, s)
		}
		if s.Completed == 0 {
			t.Fatalf("admission=%v: nothing completed", adm)
		}
	}
}

// --- GNN serving with the online predictor loop ------------------------

var (
	gnnOnce sync.Once
	gnnPred *predict.MLP
	gnnDS   = graph.Dataset{Name: "serve-test", Vertices: 400, InputFeat: 16,
		HiddenFeat: 16, ScaleDiv: 1, Attachment: 3}
)

// trainedPredictor trains one small MLP once; scenarios Clone it so
// each run's online retraining starts from identical weights.
func trainedPredictor() *predict.MLP {
	gnnOnce.Do(func() {
		rng := rand.New(rand.NewSource(42))
		g := gnnDS.Generate(rng)
		s := graph.NewSampler(rng, g, 2, 0)
		var training []*tensor.CSR
		for i := 0; i < 24; i++ {
			training = append(training, s.Sample(rng.Intn(g.N)).Adj)
		}
		gnnPred = predict.Train(rng, training, gnnDS.InputFeat,
			predict.TrainConfig{Epochs: 80, LR: 2e-3})
	})
	return gnnPred
}

func gnnScenario(t *testing.T, workers int, admission bool) Summary {
	t.Helper()
	pred := trainedPredictor().Clone()
	sys := sched.NewSystem(isa.Targets...)
	rng := rand.New(rand.NewSource(9))
	src := NewGNNSource(rng, gnnDS, gnnDS.InputFeat, pred, sys)
	arr := Trace(rng, &MMPP{States: []MMPPState{
		{MeanGap: 400 * event.Microsecond, MeanDwell: 4 * event.Millisecond},
		{MeanGap: 60 * event.Microsecond, MeanDwell: 2 * event.Millisecond},
	}}, 0, 12*event.Millisecond)
	reqs := src.Requests(rng, arr, 4*event.Millisecond)
	d := cluster.NewShardedDispatcher(cluster.NewPredictedCost(), cluster.Admission{MaxRetries: 1},
		cluster.ShardConfig{Workers: workers}, testFleet()...)
	fe, err := New(d, Config{
		Requests: reqs, Budget: 300 * event.Microsecond, BatchMax: 4,
		PredictorAdmission: admission, BuildJob: src.BuildJob,
		Predictor: pred, Mirror: sys,
		RetrainEvery: 4, RetrainEpochs: 8, Seed: 5,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return fe.Run()
}

// The full loop — per-request jobs, admission, observation harvesting,
// online retraining — must also be worker-count invariant.
func TestGNNServingWorkerEquivalence(t *testing.T) {
	a := gnnScenario(t, 1, true)
	if a.Accounted() != a.Requests {
		t.Fatalf("accounted %d of %d requests", a.Accounted(), a.Requests)
	}
	if a.Retrains == 0 {
		t.Fatalf("predictor never retrained: %+v", a)
	}
	want := a.String()
	for _, w := range []int{2, 4} {
		if got := gnnScenario(t, w, true).String(); got != want {
			t.Fatalf("workers=%d diverges:\n%s\nwant:\n%s", w, got, want)
		}
	}
}
