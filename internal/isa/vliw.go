package isa

import (
	"fmt"

	"mlimp/internal/dfg"
)

// VLIW packing: Duality Cache executes data-parallel kernels in a
// vectorised VLIW model — the controller issues independent operations
// to disjoint array groups in the same macro-cycle (the paper adopts
// this execution model for the data-parallel applications, Sections
// III-A and III-D1). CompileVLIW list-schedules a kernel's DFG into
// issue bundles: operations in one bundle have no data dependences and
// run concurrently, so the bundle costs the maximum of its members'
// cycles instead of their sum.

// Bundle is one VLIW issue group.
type Bundle struct {
	Instrs []Instr
	Cycles int64 // max over members
}

// VLIWProgram is a kernel scheduled into issue bundles for one target.
type VLIWProgram struct {
	Name    string
	Target  Target
	Width   int
	Bundles []Bundle
	// Cycles is the packed per-invocation latency (sum of bundle
	// maxima); SerialCycles is the unpacked baseline for comparison.
	Cycles       int64
	SerialCycles int64
}

// Speedup returns the ILP speedup the packing achieved.
func (p *VLIWProgram) Speedup() float64 {
	if p.Cycles == 0 {
		return 1
	}
	return float64(p.SerialCycles) / float64(p.Cycles)
}

// String renders a summary line.
func (p *VLIWProgram) String() string {
	return fmt.Sprintf("%s@%s vliw%d: %d bundles, %d cycles (%.2fx over serial)",
		p.Name, p.Target, p.Width, len(p.Bundles), p.Cycles, p.Speedup())
}

// CompileVLIW lowers and schedules a kernel for the target with the
// given issue width. Scheduling is critical-path-first list scheduling:
// among ready operations (all predecessors issued), the ones on the
// longest remaining dependence path issue first.
func CompileVLIW(g *dfg.Graph, t Target, width int) (*VLIWProgram, error) {
	if width < 1 {
		return nil, fmt.Errorf("isa: VLIW width must be >= 1, got %d", width)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	m := Models(t)
	nodes := g.Nodes()

	cost := make([]int64, len(nodes))
	isOp := make([]bool, len(nodes))
	for _, n := range nodes {
		if n.Op == dfg.OpConst || n.Op == dfg.OpInput {
			continue
		}
		isOp[n.ID] = true
		cost[n.ID] = m.OpCycles(n.Op, len(n.Args)/2)
	}

	// Remaining critical-path length per node (including itself).
	succs := make([][]dfg.NodeID, len(nodes))
	for _, n := range nodes {
		for _, a := range n.Args {
			succs[a] = append(succs[a], n.ID)
		}
	}
	crit := make([]int64, len(nodes))
	for i := len(nodes) - 1; i >= 0; i-- {
		var best int64
		for _, s := range succs[i] {
			if crit[s] > best {
				best = crit[s]
			}
		}
		crit[i] = best + cost[i]
	}

	pendingDeps := make([]int, len(nodes))
	for _, n := range nodes {
		if !isOp[n.ID] {
			continue
		}
		seenArg := map[dfg.NodeID]bool{}
		for _, a := range n.Args {
			if isOp[a] && !seenArg[a] {
				seenArg[a] = true
				pendingDeps[n.ID]++
			}
		}
	}

	ready := make([]dfg.NodeID, 0, len(nodes))
	for _, n := range nodes {
		if isOp[n.ID] && pendingDeps[n.ID] == 0 {
			ready = append(ready, n.ID)
		}
	}

	prog := &VLIWProgram{Name: g.Name, Target: t, Width: width}
	scheduled := make([]bool, len(nodes))
	for len(ready) > 0 {
		// Critical-path-first: pick the `width` ready ops with the
		// longest remaining paths.
		sortByCritDesc(ready, crit)
		take := width
		if take > len(ready) {
			take = len(ready)
		}
		var b Bundle
		issued := ready[:take]
		ready = append([]dfg.NodeID(nil), ready[take:]...)
		for _, id := range issued {
			n := nodes[id]
			c := cost[id]
			b.Instrs = append(b.Instrs, Instr{Op: n.Op, Cycles: c})
			if c > b.Cycles {
				b.Cycles = c
			}
			prog.SerialCycles += c
			scheduled[id] = true
		}
		// Unlock successors whose dependences are now all scheduled.
		for _, id := range issued {
			for _, s := range succs[id] {
				if !isOp[s] || scheduled[s] {
					continue
				}
				allDone := true
				for _, a := range nodes[s].Args {
					if isOp[a] && !scheduled[a] {
						allDone = false
						break
					}
				}
				if allDone && !contains(ready, s) {
					ready = append(ready, s)
				}
			}
		}
		prog.Bundles = append(prog.Bundles, b)
		prog.Cycles += b.Cycles
	}
	return prog, nil
}

func sortByCritDesc(ids []dfg.NodeID, crit []int64) {
	for i := 1; i < len(ids); i++ {
		for k := i; k > 0; k-- {
			a, b := ids[k-1], ids[k]
			if crit[b] > crit[a] || (crit[b] == crit[a] && b < a) {
				ids[k-1], ids[k] = b, a
			} else {
				break
			}
		}
	}
}

func contains(ids []dfg.NodeID, id dfg.NodeID) bool {
	for _, v := range ids {
		if v == id {
			return true
		}
	}
	return false
}
