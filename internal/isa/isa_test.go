package isa

import (
	"strings"
	"testing"

	"mlimp/internal/dfg"
)

func macKernel() *dfg.Graph {
	g := dfg.NewGraph("mac")
	a := g.Input("a")
	b := g.Input("b")
	g.Output(g.Mul(a, b))
	return g
}

func TestTableIIIMACCycles(t *testing.T) {
	// The Table III anchor points: one 16-bit MAC costs 302 cycles in
	// SRAM, 1510 in DRAM, 8 in ReRAM.
	g := macKernel()
	want := map[Target]int64{SRAM: 302, DRAM: 1510, ReRAM: 8}
	for tgt, w := range want {
		p, err := Compile(g, tgt)
		if err != nil {
			t.Fatal(err)
		}
		if p.Cycles != w {
			t.Errorf("%s MAC cycles = %d, want %d", tgt, p.Cycles, w)
		}
	}
}

func TestTableIIIMACThroughput(t *testing.T) {
	// MOPS/ALU = MHz / cycles-per-MAC must match the Table III column:
	// SRAM 8.278, DRAM 0.199, ReRAM 2.500.
	mhz := map[Target]float64{SRAM: 2500, DRAM: 300, ReRAM: 20}
	want := map[Target]float64{SRAM: 8.278, DRAM: 0.199, ReRAM: 2.500}
	g := macKernel()
	for tgt, w := range want {
		p, _ := Compile(g, tgt)
		got := mhz[tgt] / float64(p.Cycles)
		if got < w*0.99 || got > w*1.01 {
			t.Errorf("%s MOPS = %.3f, want %.3f", tgt, got, w)
		}
	}
}

func TestMultiOperandMACScaling(t *testing.T) {
	// Table III "(4ops)" column: four MACs cost 4x in SRAM/DRAM but the
	// same single crossbar access in ReRAM (2.5 MOPS in both columns).
	g := dfg.NewGraph("mac4")
	a, b := g.Input("a"), g.Input("b")
	g.Output(g.Dot(a, b, a, b, a, b, a, b)) // 4 pairs
	one := macKernel()
	for _, tgt := range []Target{SRAM, DRAM} {
		p4, _ := Compile(g, tgt)
		p1, _ := Compile(one, tgt)
		if p4.Cycles != 4*p1.Cycles {
			t.Errorf("%s 4-op MAC = %d, want %d", tgt, p4.Cycles, 4*p1.Cycles)
		}
	}
	p4, _ := Compile(g, ReRAM)
	if p4.Cycles != 8 {
		t.Errorf("ReRAM 4-op MAC = %d, want 8 (analog accumulation)", p4.Cycles)
	}
}

func TestReRAMDotSerialisesBeyondCrossbarHeight(t *testing.T) {
	g := dfg.NewGraph("bigdot")
	a, b := g.Input("a"), g.Input("b")
	args := make([]dfg.NodeID, 0, 2*200)
	for i := 0; i < 200; i++ { // 200 pairs > 128 crossbar rows
		args = append(args, a, b)
	}
	g.Output(g.Dot(args...))
	p, _ := Compile(g, ReRAM)
	if p.Cycles != 16 { // two groups of <=128 pairs, 8 cycles each
		t.Errorf("200-pair dot = %d cycles, want 16", p.Cycles)
	}
}

func TestCompileAllAndOrdering(t *testing.T) {
	g := dfg.NewGraph("blend")
	x, y := g.Input("x"), g.Input("y")
	c := g.CmpLT(x, y)
	g.Output(g.Select(c, g.Add(x, y), g.Sub(x, y)))
	ps, err := CompileAll(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 3 {
		t.Fatalf("want 3 programs, got %d", len(ps))
	}
	// A simple-op kernel runs in the fewest cycles on ReRAM (bit
	// parallel) and the most on DRAM (5x bit-serial steps, and the
	// slowest clock is accounted elsewhere).
	if !(ps[ReRAM].Cycles < ps[SRAM].Cycles && ps[SRAM].Cycles < ps[DRAM].Cycles) {
		t.Errorf("cycle ordering wrong: reram=%d sram=%d dram=%d",
			ps[ReRAM].Cycles, ps[SRAM].Cycles, ps[DRAM].Cycles)
	}
	for _, p := range ps {
		if p.Mix[dfg.OpSelect] != 1 || p.Mix[dfg.OpCmpLT] != 1 {
			t.Errorf("%s mix = %v", p.Target, p.Mix)
		}
		if len(p.Instrs) != 4 { // cmplt, add, sub, select (inputs free)
			t.Errorf("%s instr count = %d", p.Target, len(p.Instrs))
		}
	}
}

func TestDRAMIsExactlyFiveTimesSRAM(t *testing.T) {
	// The Ambit TRA sequence factor applies to every bit-serial op.
	g := dfg.NewGraph("mixed")
	x, y := g.Input("x"), g.Input("y")
	g.Output(g.Div(g.Exp2(g.Min(g.Add(x, y), g.Mul(x, y))), y))
	ps, _ := CompileAll(g)
	if ps[DRAM].Cycles != 5*ps[SRAM].Cycles {
		t.Errorf("DRAM %d != 5 x SRAM %d", ps[DRAM].Cycles, ps[SRAM].Cycles)
	}
}

func TestCompileRejectsInvalidGraph(t *testing.T) {
	g := dfg.NewGraph("no-output")
	g.Input("x")
	if _, err := Compile(g, SRAM); err == nil {
		t.Error("expected error for output-less graph")
	}
	if _, err := CompileAll(g); err == nil {
		t.Error("CompileAll should propagate the error")
	}
}

func TestEveryOpHasALoweringOnEveryTarget(t *testing.T) {
	g := dfg.NewGraph("everything")
	x, y := g.Input("x"), g.Input("y")
	g.Output(g.Mov(x))
	g.Output(g.Add(x, y))
	g.Output(g.Sub(x, y))
	g.Output(g.Mul(x, y))
	g.Output(g.Div(x, y))
	g.Output(g.Min(x, y))
	g.Output(g.Max(x, y))
	g.Output(g.CmpLT(x, y))
	g.Output(g.CmpEQ(x, y))
	g.Output(g.And(x, y))
	g.Output(g.Or(x, y))
	g.Output(g.Xor(x, y))
	g.Output(g.Not(x))
	g.Output(g.Shl(x, 2))
	g.Output(g.Shr(x, 2))
	g.Output(g.Select(x, y, x))
	g.Output(g.Exp2(x))
	g.Output(g.Dot(x, y))
	g.Output(g.ReduceAdd(x))
	g.Output(g.ReduceMax(x))
	for _, tgt := range Targets {
		p, err := Compile(g, tgt)
		if err != nil {
			t.Fatalf("%s: %v", tgt, err)
		}
		for _, in := range p.Instrs {
			if in.Cycles <= 0 {
				t.Errorf("%s: %s has non-positive cost", tgt, in.Op)
			}
		}
	}
}

func TestRenderers(t *testing.T) {
	p, _ := Compile(macKernel(), SRAM)
	if s := p.String(); !strings.Contains(s, "SRAM") || !strings.Contains(s, "302") {
		t.Errorf("String = %q", s)
	}
	if d := p.Disassemble(); !strings.Contains(d, "mul") {
		t.Errorf("Disassemble = %q", d)
	}
	if m := p.MixString(); !strings.Contains(m, "mul:1") {
		t.Errorf("MixString = %q", m)
	}
	if SRAM.String() != "SRAM" || Target(9).String() == "" {
		t.Error("target names wrong")
	}
}

func TestReductionDepthTracksLaneCount(t *testing.T) {
	g := dfg.NewGraph("red")
	x := g.Input("x")
	g.Output(g.ReduceAdd(x))
	ps, _ := CompileAll(g)
	// SRAM: 256 lanes -> 8 stages * 32 = 256. DRAM: 65536 lanes -> 16
	// stages * 32 * 5 = 2560. ReRAM: 16 lanes -> 4 stages * 2 = 8.
	if ps[SRAM].Cycles != 256 || ps[DRAM].Cycles != 2560 || ps[ReRAM].Cycles != 8 {
		t.Errorf("reduction cycles = %d/%d/%d", ps[SRAM].Cycles, ps[DRAM].Cycles, ps[ReRAM].Cycles)
	}
}
