package isa

import (
	"strings"
	"testing"

	"mlimp/internal/apps"
	"mlimp/internal/dfg"
)

// wideKernel has four independent multiplies feeding a reduction tree —
// plenty of ILP.
func wideKernel() *dfg.Graph {
	g := dfg.NewGraph("wide")
	a, b := g.Input("a"), g.Input("b")
	p1 := g.Mul(a, b)
	p2 := g.Mul(a, a)
	p3 := g.Mul(b, b)
	p4 := g.Mul(g.Add(a, b), b)
	g.Output(g.Add(g.Add(p1, p2), g.Add(p3, p4)))
	return g
}

// chainKernel is strictly sequential — zero ILP.
func chainKernel() *dfg.Graph {
	g := dfg.NewGraph("chain")
	x := g.Input("x")
	cur := x
	for i := 0; i < 6; i++ {
		cur = g.Mul(cur, x)
	}
	g.Output(cur)
	return g
}

func TestVLIWWidthOneMatchesSerial(t *testing.T) {
	for _, g := range []*dfg.Graph{wideKernel(), chainKernel()} {
		p, err := CompileVLIW(g, SRAM, 1)
		if err != nil {
			t.Fatal(err)
		}
		if p.Cycles != p.SerialCycles {
			t.Errorf("%s: width-1 cycles %d != serial %d", g.Name, p.Cycles, p.SerialCycles)
		}
		serial, _ := Compile(g, SRAM)
		if p.SerialCycles != serial.Cycles {
			t.Errorf("%s: serial mismatch: %d vs %d", g.Name, p.SerialCycles, serial.Cycles)
		}
	}
}

func TestVLIWExploitsILP(t *testing.T) {
	p, err := CompileVLIW(wideKernel(), SRAM, 4)
	if err != nil {
		t.Fatal(err)
	}
	if p.Speedup() < 1.5 {
		t.Errorf("wide kernel speedup = %.2f, want ILP benefit", p.Speedup())
	}
	// Packed latency can never beat the critical path: the chain of
	// mul(302) -> three add levels is a lower bound here.
	if p.Cycles < 302+16 {
		t.Errorf("packed cycles %d below the critical path", p.Cycles)
	}
}

func TestVLIWChainGainsNothing(t *testing.T) {
	p, err := CompileVLIW(chainKernel(), SRAM, 8)
	if err != nil {
		t.Fatal(err)
	}
	if p.Cycles != p.SerialCycles {
		t.Errorf("sequential chain cannot pack: %d vs %d", p.Cycles, p.SerialCycles)
	}
	if p.Speedup() != 1 {
		t.Errorf("speedup = %v", p.Speedup())
	}
}

func TestVLIWRespectsDependences(t *testing.T) {
	// Every bundle's instructions must not depend on one another; we
	// verify the aggregate invariant: sum of bundle maxima >= critical
	// path and <= serial sum, and bundle count >= ceil(ops/width).
	g := wideKernel()
	for _, width := range []int{1, 2, 3, 4, 8} {
		p, err := CompileVLIW(g, SRAM, width)
		if err != nil {
			t.Fatal(err)
		}
		if p.Cycles > p.SerialCycles {
			t.Errorf("width %d: packed %d exceeds serial %d", width, p.Cycles, p.SerialCycles)
		}
		ops := 0
		for _, b := range p.Bundles {
			if len(b.Instrs) > width {
				t.Fatalf("width %d: bundle with %d instrs", width, len(b.Instrs))
			}
			ops += len(b.Instrs)
		}
		serial, _ := Compile(g, SRAM)
		if ops != len(serial.Instrs) {
			t.Errorf("width %d: scheduled %d of %d ops", width, ops, len(serial.Instrs))
		}
	}
}

func TestVLIWMonotoneInWidth(t *testing.T) {
	g := wideKernel()
	prev := int64(1 << 62)
	for _, width := range []int{1, 2, 4, 8} {
		p, _ := CompileVLIW(g, SRAM, width)
		if p.Cycles > prev {
			t.Errorf("width %d: cycles %d worse than narrower width (%d)", width, p.Cycles, prev)
		}
		prev = p.Cycles
	}
}

func TestVLIWErrors(t *testing.T) {
	if _, err := CompileVLIW(wideKernel(), SRAM, 0); err == nil {
		t.Error("zero width should fail")
	}
	bad := dfg.NewGraph("bad")
	bad.Input("x")
	if _, err := CompileVLIW(bad, SRAM, 2); err == nil {
		t.Error("invalid graph should fail")
	}
}

func TestVLIWOnApplicationSuite(t *testing.T) {
	// Every Table II kernel must pack without loss on every target, and
	// the packing must help at least one kernel per target.
	for _, tgt := range Targets {
		helped := false
		for _, a := range apps.Suite() {
			p, err := CompileVLIW(a.Kernel, tgt, 4)
			if err != nil {
				t.Fatalf("%s@%s: %v", a.Name, tgt, err)
			}
			if p.Cycles > p.SerialCycles {
				t.Errorf("%s@%s: packing regressed", a.Name, tgt)
			}
			if p.Speedup() > 1.2 {
				helped = true
			}
		}
		if !helped {
			t.Errorf("%s: VLIW packing helped no kernel", tgt)
		}
	}
}

func TestVLIWString(t *testing.T) {
	p, _ := CompileVLIW(wideKernel(), ReRAM, 4)
	if s := p.String(); !strings.Contains(s, "vliw4") || !strings.Contains(s, "ReRAM") {
		t.Errorf("String = %q", s)
	}
}
