// Package isa implements the backend compilers of the MLIMP frontend:
// one instruction-set cost model per in-memory substrate, lowering and
// legalisation from the common SIMD DFG (internal/dfg), and static cycle
// analysis ("performing static analysis to obtain the execution time for
// each code block", Section III-D1).
//
// Cycle counts are anchored to the paper's Table III and the cited prior
// work:
//
//   - SRAM (Neural Cache / Duality Cache): bit-serial, n-bit add in n
//     cycles, multiply in n²+3n−2 cycles (= 302 for n=16, exactly the
//     Table III "cycles/op (2ops)" figure for SRAM).
//   - DRAM (Ambit): the same bit-serial sequences built from triple-row
//     activations; each elementary step costs ~5 row activations (copy
//     operands to compute rows, TRA, restore), giving 5× the SRAM cycle
//     count — 1510 cycles per MAC, again matching Table III.
//   - ReRAM (IMP/ISAAC): bit-parallel analog crossbar; a MAC costs 8
//     cycles regardless of how many operand pairs accumulate on a bitline
//     (Kirchhoff accumulation), matching the 2.500 MOPS at 20 MHz and the
//     equal "(2ops)" and "(4ops)" throughput columns.
package isa

import (
	"fmt"
	"sort"

	"mlimp/internal/dfg"
)

// Target identifies an in-memory compilation target.
type Target uint8

// Compilation targets.
const (
	SRAM Target = iota
	DRAM
	ReRAM
	numTargets
)

// NumTargets is the number of compilation targets — the length of any
// dense per-target array indexed by Target.
const NumTargets = int(numTargets)

// Targets lists all compilation targets.
var Targets = []Target{SRAM, DRAM, ReRAM}

// String names the target.
func (t Target) String() string {
	switch t {
	case SRAM:
		return "SRAM"
	case DRAM:
		return "DRAM"
	case ReRAM:
		return "ReRAM"
	}
	return fmt.Sprintf("target(%d)", uint8(t))
}

// WordBits is the operand width of the common programming interface.
const WordBits = 16

// CostModel gives per-operation cycle counts for one target.
type CostModel struct {
	Target Target
	// bitSerial indicates the bit-serial execution style (SRAM/DRAM)
	// where Dot legalises into sequential MACs.
	bitSerial bool
	// stepFactor scales elementary bit-serial steps (1 for SRAM, 5 for
	// DRAM's TRA sequences).
	stepFactor int64
	// laneCount is the number of SIMD lanes that one reduction tree
	// spans (the per-array ALU count), setting reduction depth.
	laneCount int
}

// Models returns the cost model for a target.
func Models(t Target) *CostModel {
	switch t {
	case SRAM:
		return &CostModel{Target: SRAM, bitSerial: true, stepFactor: 1, laneCount: 256}
	case DRAM:
		return &CostModel{Target: DRAM, bitSerial: true, stepFactor: 5, laneCount: 65536}
	case ReRAM:
		return &CostModel{Target: ReRAM, bitSerial: false, stepFactor: 1, laneCount: 16}
	}
	panic("isa: unknown target")
}

// log2ceil returns ceil(log2(n)) for n >= 1.
func log2ceil(n int) int64 {
	var l int64
	for v := n - 1; v > 0; v >>= 1 {
		l++
	}
	return l
}

// OpCycles returns the cycle cost of executing op once across the full
// SIMD vector (one element per lane). dotPairs is the operand-pair count
// for OpDot and ignored otherwise.
func (m *CostModel) OpCycles(op dfg.Op, dotPairs int) int64 {
	const n = WordBits
	if m.bitSerial {
		c := m.bitSerialCycles(op, dotPairs)
		return c * m.stepFactor
	}
	return m.reramCycles(op, dotPairs)
}

// bitSerialCycles is the SRAM-unit cost of the bit-serial sequences; the
// DRAM factor is applied by the caller.
func (m *CostModel) bitSerialCycles(op dfg.Op, dotPairs int) int64 {
	const n = int64(WordBits)
	mul := n*n + 3*n - 2 // 302 for n=16
	switch op {
	case dfg.OpConst, dfg.OpInput:
		return 0 // materialised by the loader, not the compute FSM
	case dfg.OpMov, dfg.OpNot, dfg.OpShl, dfg.OpShr:
		return n
	case dfg.OpAnd, dfg.OpOr, dfg.OpXor:
		return n + 1
	case dfg.OpAdd:
		return n
	case dfg.OpSub, dfg.OpSelect:
		return n + 2
	case dfg.OpCmpLT, dfg.OpCmpEQ:
		return n + 1
	case dfg.OpMin, dfg.OpMax:
		return 2*n + 3 // compare then predicated copy
	case dfg.OpMul:
		return mul
	case dfg.OpDiv:
		// Two-pass non-restoring bit-serial division, ~2x multiply.
		return 2 * mul
	case dfg.OpExp2:
		// 32-entry LUT select plus one multiply and alignment adds.
		return mul + 2*n
	case dfg.OpDot:
		// No multi-operand support: one sequential MAC per pair.
		return int64(dotPairs) * mul
	case dfg.OpReduceAdd:
		return log2ceil(m.laneCount) * 2 * n
	case dfg.OpReduceMax:
		return log2ceil(m.laneCount) * (3*n + 3)
	}
	panic(fmt.Sprintf("isa: no bit-serial lowering for %s", op))
}

// reramCycles is the bit-parallel crossbar cost.
func (m *CostModel) reramCycles(op dfg.Op, dotPairs int) int64 {
	switch op {
	case dfg.OpConst, dfg.OpInput:
		return 0
	case dfg.OpMov, dfg.OpShl, dfg.OpShr:
		return 1
	case dfg.OpAdd, dfg.OpSub, dfg.OpCmpLT, dfg.OpCmpEQ,
		dfg.OpAnd, dfg.OpOr, dfg.OpXor, dfg.OpNot, dfg.OpSelect:
		return 2 // one crossbar access plus LUT/peripheral pass
	case dfg.OpMin, dfg.OpMax:
		return 3
	case dfg.OpMul:
		return 8
	case dfg.OpDiv:
		return 64 // LUT-seeded iterative divide (compiler legalisation)
	case dfg.OpExp2:
		return 12
	case dfg.OpDot:
		// Analog accumulation: all pairs sharing a bitline sum in one
		// 8-cycle access; beyond the crossbar height it serialises.
		const crossbarRows = 128
		groups := (int64(dotPairs) + crossbarRows - 1) / crossbarRows
		return groups * 8
	case dfg.OpReduceAdd:
		return log2ceil(m.laneCount) * 2
	case dfg.OpReduceMax:
		return log2ceil(m.laneCount) * 3
	}
	panic(fmt.Sprintf("isa: no crossbar lowering for %s", op))
}

// Instr is one lowered instruction with its static cycle cost.
type Instr struct {
	Op     dfg.Op
	Cycles int64
}

// Program is a kernel cross-compiled for one target.
type Program struct {
	Name   string
	Target Target
	Instrs []Instr
	// Cycles is the static per-invocation cycle count: executing the
	// whole kernel once with one element per SIMD lane.
	Cycles int64
	// Mix counts lowered instructions per op.
	Mix map[dfg.Op]int
}

// Compile lowers a DFG kernel for the target and returns the program with
// its static cycle analysis. Compile fails if the graph is invalid.
func Compile(g *dfg.Graph, t Target) (*Program, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	m := Models(t)
	p := &Program{Name: g.Name, Target: t, Mix: make(map[dfg.Op]int)}
	for _, n := range g.Nodes() {
		pairs := len(n.Args) / 2
		c := m.OpCycles(n.Op, pairs)
		if c == 0 && (n.Op == dfg.OpConst || n.Op == dfg.OpInput) {
			continue // loader-materialised, no compute instruction
		}
		p.Instrs = append(p.Instrs, Instr{Op: n.Op, Cycles: c})
		p.Cycles += c
		p.Mix[n.Op]++
	}
	return p, nil
}

// CompileAll lowers a kernel for every target.
func CompileAll(g *dfg.Graph) (map[Target]*Program, error) {
	out := make(map[Target]*Program, len(Targets))
	for _, t := range Targets {
		p, err := Compile(g, t)
		if err != nil {
			return nil, err
		}
		out[t] = p
	}
	return out, nil
}

// String renders the program header and instruction count.
func (p *Program) String() string {
	return fmt.Sprintf("%s@%s: %d instrs, %d cycles/invocation", p.Name, p.Target, len(p.Instrs), p.Cycles)
}

// Disassemble renders the lowered instruction stream.
func (p *Program) Disassemble() string {
	out := fmt.Sprintf("; %s\n", p)
	for i, in := range p.Instrs {
		out += fmt.Sprintf("%4d: %-12s ; %d cycles\n", i, in.Op, in.Cycles)
	}
	return out
}

// MixString renders the instruction mix sorted by op for stable output.
func (p *Program) MixString() string {
	type kv struct {
		op dfg.Op
		n  int
	}
	var items []kv
	for op, n := range p.Mix {
		items = append(items, kv{op, n})
	}
	sort.Slice(items, func(i, j int) bool { return items[i].op < items[j].op })
	s := ""
	for _, it := range items {
		s += fmt.Sprintf("%s:%d ", it.op, it.n)
	}
	return s
}
