package dfg

import (
	"fmt"

	"mlimp/internal/fixed"
)

// Optimize runs the compiler's machine-independent passes over a kernel
// graph and returns a new, semantically equivalent graph: constant
// folding (operations on broadcast constants evaluate at compile time),
// common-subexpression elimination (structurally identical nodes merge),
// algebraic simplification (x*1, x+0, x&x, ...), and dead-code
// elimination (nodes not reachable from an output disappear). These are
// the "compiler's lowering and legalization operations" the MLIMP
// frontend applies before per-ISA code generation (Section III-A).
func Optimize(g *Graph) (*Graph, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	// Folding can orphan constants and simplification can orphan whole
	// subtrees, so run passes to a fixpoint (bounded: each pass strictly
	// shrinks or the loop stops).
	cur := g
	for i := 0; i < 8; i++ {
		next, err := optimizeOnce(cur)
		if err != nil {
			return nil, err
		}
		if len(next.nodes) >= len(cur.nodes) && i > 0 {
			return cur, nil
		}
		if len(next.nodes) == len(cur.nodes) && i == 0 {
			// First pass may still have rewired without shrinking; one
			// more pass confirms the fixpoint.
			cur = next
			continue
		}
		if len(next.nodes) >= len(cur.nodes) {
			return cur, nil
		}
		cur = next
	}
	return cur, nil
}

func optimizeOnce(g *Graph) (*Graph, error) {
	out := NewGraph(g.Name)
	remap := make([]NodeID, len(g.nodes)) // old id -> new id
	// Value-numbering table for CSE: structural key -> new id.
	seen := map[string]NodeID{}
	// Compile-time constant values of new nodes (only for OpConst).
	constVal := map[NodeID]fixed.Num{}

	live := liveSet(g)
	for _, n := range g.nodes {
		if !live[n.ID] {
			remap[n.ID] = -1
			continue
		}
		args := make([]NodeID, len(n.Args))
		for i, a := range n.Args {
			args[i] = remap[a]
		}
		// Constant folding: every argument is a known constant.
		if folded, ok := foldConst(n, args, constVal); ok {
			remap[n.ID] = emitConst(out, seen, constVal, folded)
			continue
		}
		// Algebraic identities.
		if id, ok := simplify(n, args, constVal); ok {
			remap[n.ID] = id
			continue
		}
		// CSE via structural value numbering.
		key := nodeKey(n, args)
		if id, ok := seen[key]; ok {
			remap[n.ID] = id
			continue
		}
		id := out.add(n.Op, n.Imm, n.Name, args...)
		if n.Op == OpConst {
			constVal[id] = n.Imm
		}
		seen[key] = id
		remap[n.ID] = id
	}
	for _, o := range g.outputs {
		out.Output(remap[o])
	}
	return out, nil
}

// liveSet marks nodes reachable from any output.
func liveSet(g *Graph) []bool {
	live := make([]bool, len(g.nodes))
	var mark func(id NodeID)
	mark = func(id NodeID) {
		if live[id] {
			return
		}
		live[id] = true
		for _, a := range g.nodes[id].Args {
			mark(a)
		}
	}
	for _, o := range g.outputs {
		mark(o)
	}
	return live
}

// nodeKey is the structural identity used for value numbering. Inputs
// key on their name; constants on their value.
func nodeKey(n Node, args []NodeID) string {
	return fmt.Sprintf("%d|%d|%s|%v", n.Op, n.Imm, n.Name, args)
}

// emitConst adds (or reuses) a constant node in the output graph.
func emitConst(out *Graph, seen map[string]NodeID, constVal map[NodeID]fixed.Num, v fixed.Num) NodeID {
	key := nodeKey(Node{Op: OpConst, Imm: v}, nil)
	if id, ok := seen[key]; ok {
		return id
	}
	id := out.Const(v)
	seen[key] = id
	constVal[id] = v
	return id
}

// foldConst evaluates n if every argument maps to a known constant.
// Reductions fold too: reducing a broadcast constant of any width yields
// an unknown lane count, so only ReduceMax (idempotent) folds.
func foldConst(n Node, args []NodeID, constVal map[NodeID]fixed.Num) (fixed.Num, bool) {
	switch n.Op {
	case OpConst, OpInput, OpReduceAdd:
		return 0, false
	}
	vals := make([]fixed.Num, len(args))
	for i, a := range args {
		v, ok := constVal[a]
		if !ok {
			return 0, false
		}
		vals[i] = v
	}
	switch n.Op {
	case OpMov, OpReduceMax:
		return vals[0], true
	case OpNot:
		return ^vals[0], true
	case OpExp2:
		return fixed.Exp2(vals[0]), true
	case OpShl:
		return vals[0] << uint(n.Imm), true
	case OpShr:
		return vals[0] >> uint(n.Imm), true
	case OpSelect:
		if vals[0] != 0 {
			return vals[1], true
		}
		return vals[2], true
	case OpDot:
		var acc fixed.Num
		for i := 0; i < len(vals); i += 2 {
			acc = fixed.Add(acc, fixed.Mul(vals[i], vals[i+1]))
		}
		return acc, true
	default:
		return evalBinary(n.Op, vals[0], vals[1]), true
	}
}

// simplify applies algebraic identities that replace the node with one
// of its arguments. It returns (replacement, true) when one applies.
func simplify(n Node, args []NodeID, constVal map[NodeID]fixed.Num) (NodeID, bool) {
	isC := func(i int, want fixed.Num) bool {
		v, ok := constVal[args[i]]
		return ok && v == want
	}
	one := fixed.FromInt(1)
	switch n.Op {
	case OpMov:
		return args[0], true // a copy of an SSA value is the value
	case OpAdd:
		if isC(0, 0) {
			return args[1], true
		}
		if isC(1, 0) {
			return args[0], true
		}
	case OpSub, OpShl, OpShr:
		if n.Op == OpSub && isC(1, 0) {
			return args[0], true
		}
		if n.Op != OpSub && n.Imm == 0 {
			return args[0], true
		}
	case OpMul:
		if isC(0, one) {
			return args[1], true
		}
		if isC(1, one) {
			return args[0], true
		}
	case OpDiv:
		if isC(1, one) {
			return args[0], true
		}
	case OpAnd, OpOr, OpMin, OpMax:
		if args[0] == args[1] {
			return args[0], true // idempotent on identical operands
		}
	case OpSelect:
		if args[1] == args[2] {
			return args[1], true // both branches identical
		}
	}
	return 0, false
}
