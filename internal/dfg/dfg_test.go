package dfg

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mlimp/internal/fixed"
)

// axpy builds y = a*x + b as a test kernel.
func axpy(a, b float64) *Graph {
	g := NewGraph("axpy")
	x := g.Input("x")
	ca := g.ConstFloat(a)
	cb := g.ConstFloat(b)
	g.Output(g.Add(g.Mul(ca, x), cb))
	return g
}

func TestRunAxpy(t *testing.T) {
	g := axpy(2, 1)
	in := []fixed.Num{fixed.FromInt(0), fixed.FromInt(1), fixed.FromInt(-3)}
	outs, err := g.Run(map[string][]fixed.Num{"x": in})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 3, -5}
	for i, w := range want {
		if got := outs[0][i].Float(); got != w {
			t.Errorf("out[%d] = %v, want %v", i, got, w)
		}
	}
}

func TestRunAllOps(t *testing.T) {
	g := NewGraph("allops")
	x := g.Input("x")
	y := g.Input("y")
	two := g.ConstFloat(2)
	ops := []NodeID{
		g.Mov(x),
		g.Sub(x, y),
		g.Div(x, two),
		g.Min(x, y),
		g.Max(x, y),
		g.CmpLT(x, y),
		g.CmpEQ(x, y),
		g.And(x, y),
		g.Or(x, y),
		g.Xor(x, y),
		g.Not(x),
		g.Shl(x, 1),
		g.Shr(x, 1),
		g.Select(g.CmpLT(x, y), x, y),
		g.Exp2(g.Const(fixed.FromInt(1))),
		g.Dot(x, y, x, x),
		g.ReduceAdd(x),
		g.ReduceMax(x),
	}
	for _, id := range ops {
		g.Output(id)
	}
	xs := []fixed.Num{fixed.FromInt(1), fixed.FromInt(4)}
	ys := []fixed.Num{fixed.FromInt(3), fixed.FromInt(2)}
	outs, err := g.Run(map[string][]fixed.Num{"x": xs, "y": ys})
	if err != nil {
		t.Fatal(err)
	}
	get := func(i, lane int) float64 { return outs[i][lane].Float() }
	checks := []struct {
		idx  int
		lane int
		want float64
	}{
		{0, 0, 1},         // mov
		{1, 0, -2},        // sub
		{2, 1, 2},         // div
		{3, 0, 1},         // min
		{4, 0, 3},         // max
		{5, 0, 1.0 / 256}, // cmplt -> raw 1
		{6, 1, 0},         // cmpeq
		{13, 0, 1},        // select: 1<3 -> x
		{13, 1, 2},        // select: 4<2 false -> y
		{14, 0, 2},        // exp2(1)
		{16, 0, 5},        // reduce_add over [1,4]
		{16, 1, 5},
		{17, 0, 4}, // reduce_max
	}
	for _, c := range checks {
		if got := get(c.idx, c.lane); got != c.want {
			t.Errorf("op %d lane %d = %v, want %v", c.idx, c.lane, got, c.want)
		}
	}
	// dot(x,y,x,x) = x*y + x*x: lane0 = 3+1 = 4, lane1 = 8+16 = 24
	if get(15, 0) != 4 || get(15, 1) != 24 {
		t.Errorf("dot = %v,%v", get(15, 0), get(15, 1))
	}
	// bitwise ops operate on raw bit patterns
	if outs[7][0] != xs[0]&ys[0] || outs[8][0] != xs[0]|ys[0] || outs[9][0] != xs[0]^ys[0] {
		t.Error("bitwise results wrong")
	}
	if outs[10][0] != ^xs[0] {
		t.Error("not wrong")
	}
	if outs[11][0] != xs[0]<<1 || outs[12][0] != xs[0]>>1 {
		t.Error("shift wrong")
	}
}

func TestRunErrors(t *testing.T) {
	g := axpy(1, 0)
	if _, err := g.Run(map[string][]fixed.Num{}); err == nil {
		t.Error("missing input should error")
	}
	if _, err := g.Run(map[string][]fixed.Num{"z": {1}}); err == nil {
		t.Error("wrong input name should error")
	}
	g2 := NewGraph("two")
	a := g2.Input("a")
	b := g2.Input("b")
	g2.Output(g2.Add(a, b))
	if _, err := g2.Run(map[string][]fixed.Num{"a": {1, 2}, "b": {1}}); err == nil {
		t.Error("length mismatch should error")
	}
	empty := NewGraph("empty")
	empty.Input("x")
	if _, err := empty.Run(map[string][]fixed.Num{"x": {1}}); err == nil {
		t.Error("no outputs should error")
	}
}

func TestBuilderPanics(t *testing.T) {
	cases := []func(*Graph){
		func(g *Graph) { g.Add(g.Input("x"), 99) },           // forward ref
		func(g *Graph) { g.add(OpAdd, 0, "", g.Input("x")) }, // bad arity
		func(g *Graph) { g.Dot(g.Input("x")) },               // odd dot args
		func(g *Graph) { g.Output(42) },                      // bad output
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f(NewGraph("p"))
		}()
	}
}

func TestMixAndInputs(t *testing.T) {
	g := NewGraph("mix")
	x := g.Input("x")
	y := g.Input("y")
	g.Output(g.Add(g.Mul(x, y), g.Mul(x, x)))
	mix := g.Mix()
	if mix[OpMul] != 2 || mix[OpAdd] != 1 || mix[OpInput] != 2 {
		t.Errorf("mix = %v", mix)
	}
	ins := g.Inputs()
	if len(ins) != 2 || ins[0] != "x" || ins[1] != "y" {
		t.Errorf("inputs = %v", ins)
	}
}

func TestOpString(t *testing.T) {
	if OpAdd.String() != "add" || OpDot.String() != "dot" {
		t.Error("op names wrong")
	}
	if Op(200).String() == "" {
		t.Error("unknown op should still render")
	}
}

// Property: the interpreter matches direct fixed-point evaluation for a
// random arithmetic expression tree.
func TestInterpreterMatchesDirectEval(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := NewGraph("rand")
		x := g.Input("x")
		y := g.Input("y")
		ids := []NodeID{x, y}
		// Mirror evaluation for lane values a, b.
		a := fixed.FromFloat(rng.Float64()*4 - 2)
		b := fixed.FromFloat(rng.Float64()*4 - 2)
		vals := map[NodeID]fixed.Num{x: a, y: b}
		for i := 0; i < 10; i++ {
			l := ids[rng.Intn(len(ids))]
			r := ids[rng.Intn(len(ids))]
			var id NodeID
			var v fixed.Num
			switch rng.Intn(4) {
			case 0:
				id, v = g.Add(l, r), fixed.Add(vals[l], vals[r])
			case 1:
				id, v = g.Sub(l, r), fixed.Sub(vals[l], vals[r])
			case 2:
				id, v = g.Mul(l, r), fixed.Mul(vals[l], vals[r])
			case 3:
				id, v = g.Max(l, r), fixed.Max(vals[l], vals[r])
			}
			ids = append(ids, id)
			vals[id] = v
		}
		out := ids[len(ids)-1]
		g.Output(out)
		res, err := g.Run(map[string][]fixed.Num{"x": {a}, "y": {b}})
		if err != nil {
			return false
		}
		return res[0][0] == vals[out]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
