// Package dfg implements the SIMD data-flow-graph programming frontend of
// MLIMP (Section III-A). Data-parallel kernels are described once as a
// DFG over integer vector operations and cross-compiled by backend
// compilers (internal/isa) for each in-memory ISA. The package also
// provides a reference interpreter so every kernel's functional behaviour
// can be checked independently of any device model.
package dfg

import (
	"fmt"

	"mlimp/internal/fixed"
)

// Op is a SIMD vector operation of the common programming interface. The
// paper's interface is the intersection of the operations the three
// in-memory substrates support: integer add/sub/mul/div, comparison,
// moves, bitwise logic, and simple transcendentals (exp2). Dot is the
// multi-operand MAC exposed for ReRAM's analog accumulation; backends
// without native support legalise it into mul+add chains.
type Op uint8

// Operations of the common interface.
const (
	OpConst Op = iota // broadcast immediate
	OpInput           // kernel input vector
	OpMov
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMin
	OpMax
	OpCmpLT // 1 if a < b else 0
	OpCmpEQ
	OpAnd
	OpOr
	OpXor
	OpNot
	OpShl // shift left by immediate
	OpShr // arithmetic shift right by immediate
	OpSelect
	OpExp2
	OpDot       // multi-operand MAC: sum_i(args[2i]*args[2i+1])
	OpReduceAdd // horizontal sum across the vector, broadcast back
	OpReduceMax
	numOps
)

var opNames = [numOps]string{
	"const", "input", "mov", "add", "sub", "mul", "div", "min", "max",
	"cmplt", "cmpeq", "and", "or", "xor", "not", "shl", "shr", "select",
	"exp2", "dot", "reduce_add", "reduce_max",
}

// String returns the mnemonic of the operation.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// arity returns the expected operand count; -1 means variadic.
func (o Op) arity() int {
	switch o {
	case OpConst, OpInput:
		return 0
	case OpMov, OpNot, OpExp2, OpReduceAdd, OpReduceMax:
		return 1
	case OpShl, OpShr:
		return 1 // plus immediate
	case OpSelect:
		return 3
	case OpDot:
		return -1
	default:
		return 2
	}
}

// NodeID identifies a node within one Graph.
type NodeID int32

// Node is one vector operation in the DFG.
type Node struct {
	ID   NodeID
	Op   Op
	Args []NodeID
	Imm  fixed.Num // OpConst value or OpShl/OpShr shift amount
	Name string    // OpInput name, for binding
}

// Graph is a SIMD data-flow graph. Nodes are stored in topological order
// by construction: the builder only lets a node reference earlier nodes,
// so cycles cannot be expressed.
type Graph struct {
	Name    string
	nodes   []Node
	outputs []NodeID
}

// NewGraph returns an empty kernel graph with the given name.
func NewGraph(name string) *Graph { return &Graph{Name: name} }

func (g *Graph) add(op Op, imm fixed.Num, name string, args ...NodeID) NodeID {
	if a := op.arity(); a >= 0 && len(args) != a {
		panic(fmt.Sprintf("dfg: %s expects %d args, got %d", op, a, len(args)))
	}
	if op == OpDot && (len(args) == 0 || len(args)%2 != 0) {
		panic("dfg: dot expects a positive even number of args")
	}
	for _, a := range args {
		if a < 0 || int(a) >= len(g.nodes) {
			panic(fmt.Sprintf("dfg: arg %d out of range (forward reference?)", a))
		}
	}
	id := NodeID(len(g.nodes))
	g.nodes = append(g.nodes, Node{ID: id, Op: op, Args: args, Imm: imm, Name: name})
	return id
}

// Input declares a named kernel input vector.
func (g *Graph) Input(name string) NodeID { return g.add(OpInput, 0, name) }

// Const declares a broadcast constant.
func (g *Graph) Const(v fixed.Num) NodeID { return g.add(OpConst, v, "") }

// ConstFloat declares a broadcast constant from a float value.
func (g *Graph) ConstFloat(v float64) NodeID { return g.Const(fixed.FromFloat(v)) }

// Unary and binary operation constructors.

// Mov copies a vector.
func (g *Graph) Mov(a NodeID) NodeID { return g.add(OpMov, 0, "", a) }

// Add returns a+b.
func (g *Graph) Add(a, b NodeID) NodeID { return g.add(OpAdd, 0, "", a, b) }

// Sub returns a-b.
func (g *Graph) Sub(a, b NodeID) NodeID { return g.add(OpSub, 0, "", a, b) }

// Mul returns a*b.
func (g *Graph) Mul(a, b NodeID) NodeID { return g.add(OpMul, 0, "", a, b) }

// Div returns a/b.
func (g *Graph) Div(a, b NodeID) NodeID { return g.add(OpDiv, 0, "", a, b) }

// Min returns min(a, b).
func (g *Graph) Min(a, b NodeID) NodeID { return g.add(OpMin, 0, "", a, b) }

// Max returns max(a, b).
func (g *Graph) Max(a, b NodeID) NodeID { return g.add(OpMax, 0, "", a, b) }

// CmpLT returns 1 where a < b, else 0.
func (g *Graph) CmpLT(a, b NodeID) NodeID { return g.add(OpCmpLT, 0, "", a, b) }

// CmpEQ returns 1 where a == b, else 0.
func (g *Graph) CmpEQ(a, b NodeID) NodeID { return g.add(OpCmpEQ, 0, "", a, b) }

// And returns a&b.
func (g *Graph) And(a, b NodeID) NodeID { return g.add(OpAnd, 0, "", a, b) }

// Or returns a|b.
func (g *Graph) Or(a, b NodeID) NodeID { return g.add(OpOr, 0, "", a, b) }

// Xor returns a^b.
func (g *Graph) Xor(a, b NodeID) NodeID { return g.add(OpXor, 0, "", a, b) }

// Not returns ^a.
func (g *Graph) Not(a NodeID) NodeID { return g.add(OpNot, 0, "", a) }

// Shl returns a << k.
func (g *Graph) Shl(a NodeID, k int) NodeID { return g.add(OpShl, fixed.Num(k), "", a) }

// Shr returns a >> k (arithmetic).
func (g *Graph) Shr(a NodeID, k int) NodeID { return g.add(OpShr, fixed.Num(k), "", a) }

// Select returns b where cond != 0, else c.
func (g *Graph) Select(cond, b, c NodeID) NodeID { return g.add(OpSelect, 0, "", cond, b, c) }

// Exp2 returns 2^a.
func (g *Graph) Exp2(a NodeID) NodeID { return g.add(OpExp2, 0, "", a) }

// Dot returns the multi-operand MAC sum(args[2i]*args[2i+1]).
func (g *Graph) Dot(pairs ...NodeID) NodeID { return g.add(OpDot, 0, "", pairs...) }

// ReduceAdd returns the horizontal sum of a broadcast to all lanes.
func (g *Graph) ReduceAdd(a NodeID) NodeID { return g.add(OpReduceAdd, 0, "", a) }

// ReduceMax returns the horizontal max of a broadcast to all lanes.
func (g *Graph) ReduceMax(a NodeID) NodeID { return g.add(OpReduceMax, 0, "", a) }

// Output marks a node as a kernel output.
func (g *Graph) Output(id NodeID) {
	if id < 0 || int(id) >= len(g.nodes) {
		panic("dfg: output id out of range")
	}
	g.outputs = append(g.outputs, id)
}

// Nodes returns the nodes in topological order.
func (g *Graph) Nodes() []Node { return g.nodes }

// Outputs returns the declared output node ids.
func (g *Graph) Outputs() []NodeID { return g.outputs }

// Inputs returns the declared input names in declaration order.
func (g *Graph) Inputs() []string {
	var names []string
	for _, n := range g.nodes {
		if n.Op == OpInput {
			names = append(names, n.Name)
		}
	}
	return names
}

// Mix returns the instruction mix: how many nodes use each operation.
// The kernel's memory preference is largely a function of this mix
// (Section II-C1), so the scheduler's static analysis starts here.
func (g *Graph) Mix() map[Op]int {
	m := make(map[Op]int)
	for _, n := range g.nodes {
		m[n.Op]++
	}
	return m
}

// Validate checks structural invariants: at least one output, every
// output reachable, all argument references in range. The builder
// enforces most of this; Validate is the belt-and-braces check for
// graphs assembled programmatically.
func (g *Graph) Validate() error {
	if len(g.outputs) == 0 {
		return fmt.Errorf("dfg %q: no outputs declared", g.Name)
	}
	for _, n := range g.nodes {
		for _, a := range n.Args {
			if a < 0 || a >= n.ID {
				return fmt.Errorf("dfg %q: node %d has invalid arg %d", g.Name, n.ID, a)
			}
		}
	}
	return nil
}
