package dfg

import (
	"fmt"

	"mlimp/internal/fixed"
)

// Run interprets the kernel over vectors of fixed-point values. All input
// vectors must share one length; outputs have the same length. Run is the
// functional reference the in-memory device models are validated against.
func (g *Graph) Run(inputs map[string][]fixed.Num) ([][]fixed.Num, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	width := -1
	for name, v := range inputs {
		if width == -1 {
			width = len(v)
		} else if len(v) != width {
			return nil, fmt.Errorf("dfg %q: input %q length %d != %d", g.Name, name, len(v), width)
		}
	}
	if width <= 0 {
		return nil, fmt.Errorf("dfg %q: no input data", g.Name)
	}

	vals := make([][]fixed.Num, len(g.nodes))
	for _, n := range g.nodes {
		out := make([]fixed.Num, width)
		switch n.Op {
		case OpInput:
			in, ok := inputs[n.Name]
			if !ok {
				return nil, fmt.Errorf("dfg %q: missing input %q", g.Name, n.Name)
			}
			copy(out, in)
		case OpConst:
			for i := range out {
				out[i] = n.Imm
			}
		case OpMov:
			copy(out, vals[n.Args[0]])
		case OpNot:
			for i, v := range vals[n.Args[0]] {
				out[i] = ^v
			}
		case OpExp2:
			for i, v := range vals[n.Args[0]] {
				out[i] = fixed.Exp2(v)
			}
		case OpShl:
			for i, v := range vals[n.Args[0]] {
				out[i] = v << uint(n.Imm)
			}
		case OpShr:
			for i, v := range vals[n.Args[0]] {
				out[i] = v >> uint(n.Imm)
			}
		case OpSelect:
			c, b, e := vals[n.Args[0]], vals[n.Args[1]], vals[n.Args[2]]
			for i := range out {
				if c[i] != 0 {
					out[i] = b[i]
				} else {
					out[i] = e[i]
				}
			}
		case OpDot:
			for i := range out {
				var acc fixed.Num
				for p := 0; p < len(n.Args); p += 2 {
					acc = fixed.Add(acc, fixed.Mul(vals[n.Args[p]][i], vals[n.Args[p+1]][i]))
				}
				out[i] = acc
			}
		case OpReduceAdd:
			s := fixed.Sum(vals[n.Args[0]])
			for i := range out {
				out[i] = s
			}
		case OpReduceMax:
			m := fixed.MinNum
			for _, v := range vals[n.Args[0]] {
				m = fixed.Max(m, v)
			}
			for i := range out {
				out[i] = m
			}
		default:
			a, b := vals[n.Args[0]], vals[n.Args[1]]
			for i := range out {
				out[i] = evalBinary(n.Op, a[i], b[i])
			}
		}
		vals[n.ID] = out
	}

	outs := make([][]fixed.Num, len(g.outputs))
	for i, id := range g.outputs {
		outs[i] = vals[id]
	}
	return outs, nil
}

func evalBinary(op Op, a, b fixed.Num) fixed.Num {
	switch op {
	case OpAdd:
		return fixed.Add(a, b)
	case OpSub:
		return fixed.Sub(a, b)
	case OpMul:
		return fixed.Mul(a, b)
	case OpDiv:
		return fixed.Div(a, b)
	case OpMin:
		return fixed.Min(a, b)
	case OpMax:
		return fixed.Max(a, b)
	case OpCmpLT:
		if a < b {
			return 1
		}
		return 0
	case OpCmpEQ:
		if a == b {
			return 1
		}
		return 0
	case OpAnd:
		return a & b
	case OpOr:
		return a | b
	case OpXor:
		return a ^ b
	}
	panic(fmt.Sprintf("dfg: evalBinary on %s", op))
}
