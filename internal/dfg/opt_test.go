package dfg

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mlimp/internal/fixed"
)

func countOps(g *Graph) map[Op]int { return g.Mix() }

func TestOptimizeConstantFolding(t *testing.T) {
	g := NewGraph("fold")
	a := g.ConstFloat(2)
	b := g.ConstFloat(3)
	x := g.Input("x")
	g.Output(g.Add(g.Mul(a, b), x)) // 2*3 folds to 6
	opt, err := Optimize(g)
	if err != nil {
		t.Fatal(err)
	}
	if countOps(opt)[OpMul] != 0 {
		t.Error("constant multiply should fold away")
	}
	out, err := opt.Run(map[string][]fixed.Num{"x": {fixed.FromInt(1)}})
	if err != nil {
		t.Fatal(err)
	}
	if out[0][0].Float() != 7 {
		t.Errorf("folded result = %v, want 7", out[0][0].Float())
	}
}

func TestOptimizeCSE(t *testing.T) {
	g := NewGraph("cse")
	x := g.Input("x")
	y := g.Input("y")
	p1 := g.Mul(x, y)
	p2 := g.Mul(x, y) // identical subexpression
	g.Output(g.Add(p1, p2))
	opt, err := Optimize(g)
	if err != nil {
		t.Fatal(err)
	}
	if countOps(opt)[OpMul] != 1 {
		t.Errorf("CSE should merge duplicate multiplies, have %d", countOps(opt)[OpMul])
	}
}

func TestOptimizeDCE(t *testing.T) {
	g := NewGraph("dce")
	x := g.Input("x")
	g.Div(x, x) // never output: dead
	g.Output(g.Add(x, x))
	opt, err := Optimize(g)
	if err != nil {
		t.Fatal(err)
	}
	if countOps(opt)[OpDiv] != 0 {
		t.Error("dead divide should be eliminated")
	}
}

func TestOptimizeAlgebraicIdentities(t *testing.T) {
	g := NewGraph("alg")
	x := g.Input("x")
	zero := g.ConstFloat(0)
	one := g.ConstFloat(1)
	g.Output(g.Add(x, zero))       // x+0 -> x
	g.Output(g.Mul(x, one))        // x*1 -> x
	g.Output(g.Mov(x))             // mov x -> x
	g.Output(g.And(x, x))          // x&x -> x
	g.Output(g.Select(zero, x, x)) // both branches same -> x
	opt, err := Optimize(g)
	if err != nil {
		t.Fatal(err)
	}
	mix := countOps(opt)
	for _, op := range []Op{OpAdd, OpMul, OpMov, OpAnd, OpSelect} {
		if mix[op] != 0 {
			t.Errorf("%s should simplify away, mix=%v", op, mix)
		}
	}
	// All five outputs alias the input.
	out, err := opt.Run(map[string][]fixed.Num{"x": {fixed.FromInt(9)}})
	if err != nil {
		t.Fatal(err)
	}
	for i := range out {
		if out[i][0].Float() != 9 {
			t.Errorf("output %d = %v", i, out[i][0].Float())
		}
	}
}

func TestOptimizeRejectsInvalid(t *testing.T) {
	g := NewGraph("bad")
	g.Input("x")
	if _, err := Optimize(g); err == nil {
		t.Error("output-less graph should be rejected")
	}
}

// Property: optimisation preserves semantics on random expression graphs
// and never increases the node count.
func TestOptimizePreservesSemanticsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := NewGraph("rand")
		x := g.Input("x")
		y := g.Input("y")
		ids := []NodeID{x, y, g.ConstFloat(0), g.ConstFloat(1), g.ConstFloat(2)}
		for i := 0; i < 14; i++ {
			a := ids[rng.Intn(len(ids))]
			b := ids[rng.Intn(len(ids))]
			var id NodeID
			switch rng.Intn(8) {
			case 0:
				id = g.Add(a, b)
			case 1:
				id = g.Sub(a, b)
			case 2:
				id = g.Mul(a, b)
			case 3:
				id = g.Min(a, b)
			case 4:
				id = g.Max(a, b)
			case 5:
				id = g.Mov(a)
			case 6:
				id = g.Select(a, b, ids[rng.Intn(len(ids))])
			case 7:
				id = g.And(a, b)
			}
			ids = append(ids, id)
		}
		g.Output(ids[len(ids)-1])
		g.Output(ids[len(ids)-2])
		opt, err := Optimize(g)
		if err != nil {
			return false
		}
		if len(opt.Nodes()) > len(g.Nodes()) {
			return false
		}
		in := map[string][]fixed.Num{
			"x": {fixed.FromFloat(rng.Float64()*4 - 2), fixed.FromFloat(rng.Float64())},
			"y": {fixed.FromFloat(rng.Float64()*4 - 2), fixed.FromFloat(-rng.Float64())},
		}
		want, err1 := g.Run(in)
		got, err2 := opt.Run(in)
		if err1 != nil || err2 != nil || len(want) != len(got) {
			return false
		}
		for i := range want {
			for l := range want[i] {
				if want[i][l] != got[i][l] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Optimisation should shrink the real application kernels' compiled
// cycle counts or leave them unchanged — never regress them.
func TestOptimizeNeverRegressesNodeCount(t *testing.T) {
	g := NewGraph("mixed")
	x := g.Input("x")
	two := g.ConstFloat(2)
	three := g.ConstFloat(3)
	g.Output(g.Add(g.Mul(two, three), g.Mul(x, g.Add(two, three))))
	opt, _ := Optimize(g)
	if len(opt.Nodes()) >= len(g.Nodes()) {
		t.Errorf("no shrink: %d -> %d nodes", len(g.Nodes()), len(opt.Nodes()))
	}
}
