package fixed

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFromFloatRoundTrip(t *testing.T) {
	cases := []float64{0, 1, -1, 0.5, -0.5, 3.25, -7.125, 127.996, -128}
	for _, f := range cases {
		n := FromFloat(f)
		if got := n.Float(); math.Abs(got-f) > 1.0/one {
			t.Errorf("FromFloat(%v).Float() = %v, want within 1 ulp", f, got)
		}
	}
}

func TestFromFloatSaturates(t *testing.T) {
	if got := FromFloat(1e9); got != MaxNum {
		t.Errorf("FromFloat(1e9) = %d, want MaxNum", got)
	}
	if got := FromFloat(-1e9); got != MinNum {
		t.Errorf("FromFloat(-1e9) = %d, want MinNum", got)
	}
}

func TestFromIntAndInt(t *testing.T) {
	for _, i := range []int{0, 1, -1, 5, -42, 127, -128} {
		n := FromInt(i)
		if got := n.Int(); got != i {
			t.Errorf("FromInt(%d).Int() = %d", i, got)
		}
	}
	if FromInt(1<<20) != MaxNum {
		t.Error("FromInt should saturate large positives")
	}
	if FromInt(-(1 << 20)) != MinNum {
		t.Error("FromInt should saturate large negatives")
	}
}

func TestIntTruncatesTowardZero(t *testing.T) {
	if got := FromFloat(2.75).Int(); got != 2 {
		t.Errorf("Int(2.75) = %d, want 2", got)
	}
	if got := FromFloat(-2.75).Int(); got != -2 {
		t.Errorf("Int(-2.75) = %d, want -2", got)
	}
}

func TestAddSub(t *testing.T) {
	a, b := FromFloat(1.5), FromFloat(2.25)
	if got := Add(a, b).Float(); got != 3.75 {
		t.Errorf("1.5+2.25 = %v", got)
	}
	if got := Sub(a, b).Float(); got != -0.75 {
		t.Errorf("1.5-2.25 = %v", got)
	}
	if Add(MaxNum, 1) != MaxNum {
		t.Error("Add should saturate high")
	}
	if Sub(MinNum, 1) != MinNum {
		t.Error("Sub should saturate low")
	}
}

func TestMul(t *testing.T) {
	if got := Mul(FromFloat(1.5), FromFloat(2)).Float(); got != 3 {
		t.Errorf("1.5*2 = %v", got)
	}
	if got := Mul(FromFloat(-0.5), FromFloat(0.5)).Float(); got != -0.25 {
		t.Errorf("-0.5*0.5 = %v", got)
	}
	if Mul(MaxNum, MaxNum) != MaxNum {
		t.Error("Mul should saturate")
	}
	if Mul(MinNum, MaxNum) != MinNum {
		t.Error("Mul should saturate negative")
	}
}

func TestDiv(t *testing.T) {
	if got := Div(FromFloat(3), FromFloat(2)).Float(); got != 1.5 {
		t.Errorf("3/2 = %v", got)
	}
	if Div(FromFloat(1), 0) != MaxNum {
		t.Error("1/0 should saturate to MaxNum")
	}
	if Div(FromFloat(-1), 0) != MinNum {
		t.Error("-1/0 should saturate to MinNum")
	}
	if Div(FromFloat(100), FromFloat(0.001)) != MaxNum {
		t.Error("overflowing quotient should saturate")
	}
}

func TestNegAbs(t *testing.T) {
	if Neg(MinNum) != MaxNum {
		t.Error("Neg(MinNum) should saturate to MaxNum")
	}
	if Abs(FromFloat(-3)).Float() != 3 {
		t.Error("Abs(-3) != 3")
	}
	if Abs(MinNum) != MaxNum {
		t.Error("Abs(MinNum) should saturate")
	}
}

func TestMinMaxCmp(t *testing.T) {
	a, b := FromFloat(-1), FromFloat(2)
	if Min(a, b) != a || Max(a, b) != b {
		t.Error("Min/Max wrong")
	}
	if Cmp(a, b) != -1 || Cmp(b, a) != 1 || Cmp(a, a) != 0 {
		t.Error("Cmp wrong")
	}
}

func TestReLU(t *testing.T) {
	if ReLU(FromFloat(-3)) != 0 {
		t.Error("ReLU(-3) != 0")
	}
	if got := ReLU(FromFloat(3)); got != FromFloat(3) {
		t.Errorf("ReLU(3) = %v", got)
	}
}

func TestExp2(t *testing.T) {
	for _, f := range []float64{0, 1, 2, 3, -1, -2, 0.5} {
		got := Exp2(FromFloat(f)).Float()
		want := math.Exp2(f)
		// The 32-entry LUT quantisation allows a few percent of error.
		if math.Abs(got-want) > 0.05*want+1.0/one {
			t.Errorf("Exp2(%v) = %v, want ~%v", f, got, want)
		}
	}
}

func TestSumDot(t *testing.T) {
	xs := []Num{FromFloat(1), FromFloat(2), FromFloat(3)}
	if Sum(xs).Float() != 6 {
		t.Error("Sum wrong")
	}
	if got := Dot(xs, xs).Float(); got != 14 {
		t.Errorf("Dot = %v, want 14", got)
	}
}

func TestDotPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Dot should panic on length mismatch")
		}
	}()
	Dot([]Num{1}, []Num{1, 2})
}

// Property: Add is commutative and Mul is commutative for all inputs.
func TestCommutativityProperty(t *testing.T) {
	f := func(a, b int16) bool {
		x, y := Num(a), Num(b)
		return Add(x, y) == Add(y, x) && Mul(x, y) == Mul(y, x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: results never exceed the representable range and arithmetic
// matches float arithmetic within quantisation error when no saturation
// occurs.
func TestArithmeticMatchesFloatProperty(t *testing.T) {
	f := func(a, b int16) bool {
		x, y := Num(a), Num(b)
		sum := float64(a) + float64(b)
		if sum >= float64(MinNum) && sum <= float64(MaxNum) {
			if Add(x, y) != Num(sum) {
				return false
			}
		}
		prod := x.Float() * y.Float()
		got := Mul(x, y).Float()
		if prod >= MinNum.Float() && prod <= MaxNum.Float() {
			if math.Abs(got-prod) > 1.0/one {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Neg is an involution except at MinNum.
func TestNegInvolutionProperty(t *testing.T) {
	f := func(a int16) bool {
		x := Num(a)
		if x == MinNum {
			return Neg(Neg(x)) == MaxNum
		}
		return Neg(Neg(x)) == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
