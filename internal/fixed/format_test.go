package fixed

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestFormatValid(t *testing.T) {
	for _, f := range Formats() {
		if err := f.Valid(); err != nil {
			t.Errorf("%v.Valid() = %v", f, err)
		}
	}
	for _, bad := range []Format{{Bits: 1, Frac: 0}, {Bits: 17, Frac: 8}, {Bits: 8, Frac: 8}, {Bits: 8, Frac: -1}} {
		if err := bad.Valid(); !errors.Is(err, ErrBadFormat) {
			t.Errorf("%+v.Valid() = %v, want ErrBadFormat", bad, err)
		}
	}
}

func TestParseFormat(t *testing.T) {
	cases := map[string]Format{
		"16": W16, "12": W12, "8": W8,
		"q8.8": W16, "q6.6": W12, "q4.4": W8,
		" W16 ": W16,
	}
	for s, want := range cases {
		got, err := ParseFormat(s)
		if err != nil || got != want {
			t.Errorf("ParseFormat(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseFormat("24"); !errors.Is(err, ErrBadFormat) {
		t.Errorf("ParseFormat(24) err = %v, want ErrBadFormat", err)
	}
}

// TestDefaultFormatMatchesPackage: every W16 method must agree with the
// package-level Q8.8 function it generalises — the byte-identical
// contract of the refactor.
func TestDefaultFormatMatchesPackage(t *testing.T) {
	f := func(a, b int16) bool {
		x, y := Num(a), Num(b)
		return W16.Add(x, y) == Add(x, y) &&
			W16.Sub(x, y) == Sub(x, y) &&
			W16.Mul(x, y) == Mul(x, y) &&
			W16.Div(x, y) == Div(x, y) &&
			W16.Neg(x) == Neg(x) &&
			W16.Exp2(x>>4) == Exp2(x>>4) &&
			W16.Float(x) == x.Float()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestFormatRoundTrip: values on each format's grid survive
// float->fixed->float exactly, and off-grid values land within one ulp
// of that format (not the Q8.8 ulp the old constants assumed).
func TestFormatRoundTrip(t *testing.T) {
	for _, f := range Formats() {
		ulp := 1.0 / float64(f.one())
		hi := f.Float(f.Max())
		cases := []float64{0, 1, -1, 0.5, -0.5, 3.25, hi, -hi, hi / 3}
		for _, x := range cases {
			got := f.Float(f.FromFloat(x))
			if math.Abs(got-x) > ulp {
				t.Errorf("%v: FromFloat(%v) round-trips to %v (> 1 ulp %v)", f, x, got, ulp)
			}
		}
	}
}

// TestFormatSaturation: each width saturates at its own bounds, not the
// 16-bit container's.
func TestFormatSaturation(t *testing.T) {
	for _, f := range Formats() {
		if got := f.FromFloat(1e9); got != f.Max() {
			t.Errorf("%v: FromFloat(1e9) = %d, want %d", f, got, f.Max())
		}
		if got := f.FromFloat(-1e9); got != f.Min() {
			t.Errorf("%v: FromFloat(-1e9) = %d, want %d", f, got, f.Min())
		}
		if got := f.Add(f.Max(), f.FromInt(1)); got != f.Max() {
			t.Errorf("%v: Add should saturate high, got %d", f, got)
		}
		if got := f.Sub(f.Min(), f.FromInt(1)); got != f.Min() {
			t.Errorf("%v: Sub should saturate low, got %d", f, got)
		}
		if got := f.Mul(f.Max(), f.Max()); got != f.Max() {
			t.Errorf("%v: Mul(Max,Max) = %d, want %d", f, got, f.Max())
		}
		if got := f.Mul(f.Min(), f.Max()); got != f.Min() {
			t.Errorf("%v: Mul(Min,Max) = %d, want %d", f, got, f.Min())
		}
		if got := f.Div(f.FromInt(1), 0); got != f.Max() {
			t.Errorf("%v: 1/0 = %d, want Max", f, got)
		}
		if got := f.Neg(f.Min()); got != f.Max() {
			t.Errorf("%v: Neg(Min) = %d, want Max", f, got)
		}
	}
}

// TestFormatArithmeticMatchesFloat: within the unsaturated range,
// arithmetic at every width tracks float arithmetic to one format ulp.
func TestFormatArithmeticMatchesFloat(t *testing.T) {
	for _, f := range Formats() {
		ulp := 1.0 / float64(f.one())
		lo, hi := f.Float(f.Min()), f.Float(f.Max())
		check := func(a, b int16) bool {
			x, y := f.sat(int32(a)), f.sat(int32(b))
			if sum := f.Float(x) + f.Float(y); sum >= lo && sum <= hi {
				if math.Abs(f.Float(f.Add(x, y))-sum) > ulp {
					return false
				}
			}
			if prod := f.Float(x) * f.Float(y); prod >= lo && prod <= hi {
				if math.Abs(f.Float(f.Mul(x, y))-prod) > ulp {
					return false
				}
			}
			return true
		}
		if err := quick.Check(check, nil); err != nil {
			t.Errorf("%v: %v", f, err)
		}
	}
}

// TestFormatExp2: the LUT step is derived from the fraction width, so
// Exp2 stays sane at every supported width — the Q4.4 step would have
// quantised to zero (divide-by-zero) under the old Q8.8-only constant.
func TestFormatExp2(t *testing.T) {
	for _, f := range Formats() {
		ulp := 1.0 / float64(f.one())
		// Narrow formats have coarse LUTs: allow one LUT step of input
		// error propagated through exp2's derivative (~0.7*2^x), plus an
		// output ulp.
		step := math.Max(1.0/float64(int32(1)<<exp2LUTBits), ulp)
		for _, x := range []float64{0, 1, 2, -1, 0.5, -0.5} {
			want := math.Exp2(x)
			if want > f.Float(f.Max()) {
				continue
			}
			got := f.Float(f.Exp2(f.FromFloat(x)))
			if math.Abs(got-want) > want*step+2*ulp {
				t.Errorf("%v: Exp2(%v) = %v, want ~%v", f, x, got, want)
			}
		}
	}
}

// TestConvert: widening is exact, narrowing rounds to the destination
// grid, and the composition Quantize is idempotent.
func TestConvert(t *testing.T) {
	// Exact on-grid round trip W16 -> W8 -> W16.
	for _, x := range []float64{0, 1, -1, 2.5, -3.25, 7.9375} {
		n := FromFloat(x)
		q := W8.Quantize(n)
		if got := Convert(Convert(q, W16, W8), W8, W16); got != q {
			t.Errorf("round trip of on-grid %v: %d != %d", x, got, q)
		}
		if W8.Quantize(q) != q {
			t.Errorf("Quantize not idempotent at %v", x)
		}
	}
	// Narrowing rounds to nearest grid point.
	n := FromFloat(1.03125) // 1 + 1/32: off the Q4.4 grid (1/16 steps)
	if got := W8.Quantize(n).Float(); got != 1.0625 && got != 1.0 {
		t.Errorf("W8.Quantize(1.03125) = %v, want a 1/16 grid point", got)
	}
	// Out-of-range values clamp to the narrow format's bounds.
	if got := W8.Quantize(MaxNum); got != Convert(W8.Max(), W8, W16) {
		t.Errorf("W8.Quantize(MaxNum) = %d, want clamped %d", got, Convert(W8.Max(), W8, W16))
	}
	if got := W8.Quantize(MinNum); got != Convert(W8.Min(), W8, W16) {
		t.Errorf("W8.Quantize(MinNum) = %d, want clamped %d", got, Convert(W8.Min(), W8, W16))
	}
	// Quantize in the default format is the identity.
	f := func(a int16) bool { return W16.Quantize(Num(a)) == Num(a) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestConvertSignSymmetric: narrowing rounds half away from zero, so
// Convert(-x) == -Convert(x) except at the saturation edge.
func TestConvertSignSymmetric(t *testing.T) {
	f := func(a int16) bool {
		x := Num(a)
		if x == MinNum {
			return true
		}
		neg := Convert(Neg(x), W16, W8)
		pos := Convert(x, W16, W8)
		if pos == W8.Max() || pos == W8.Min() || neg == W8.Max() || neg == W8.Min() {
			return true
		}
		return neg == W8.Neg(pos)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
