// Package fixed implements 16-bit fixed-point arithmetic.
//
// The paper trains GNN features and weights for 16-bit fixed-point
// precision (Section IV, "Benchmarks"); every in-memory device in MLIMP
// computes on integers, so the functional models of the SRAM/DRAM/ReRAM
// substrates and the GNN kernels all operate on this representation.
//
// A Num is a signed 16-bit quantity interpreted as a Q(16-F).F value for a
// format-wide fraction width F. Operations saturate instead of wrapping:
// saturation is what the bit-serial peripherals of Neural Cache implement,
// and it keeps quantisation error bounded for the GNN workloads.
package fixed

import "math"

// FracBits is the default fraction width of the Q format (Q8.8). Eight
// fractional bits keep GCN accuracy degradation under 1% on the synthetic
// workloads, mirroring the paper's <1% quantisation loss. The package-
// level functions below are the DefaultFormat (W16) instance of the
// parameterised family in format.go; narrower widths (W12, W8) go
// through Format methods.
const FracBits = 8

// Num is a 16-bit fixed-point number in the package-default Q format.
type Num int16

const (
	// MaxNum is the largest representable Num.
	MaxNum Num = math.MaxInt16
	// MinNum is the smallest representable Num.
	MinNum Num = math.MinInt16

	one = 1 << FracBits
)

// FromFloat converts a float64 to fixed point with round-to-nearest and
// saturation.
func FromFloat(f float64) Num {
	scaled := math.Round(f * one)
	switch {
	case scaled > float64(MaxNum):
		return MaxNum
	case scaled < float64(MinNum):
		return MinNum
	}
	return Num(scaled)
}

// FromInt converts an integer to fixed point with saturation.
func FromInt(i int) Num {
	return sat(int32(i) << FracBits)
}

// Float converts a Num back to float64.
func (n Num) Float() float64 { return float64(n) / one }

// Int truncates a Num toward zero and returns the integer part.
func (n Num) Int() int {
	if n < 0 {
		return -int(-int32(n) >> FracBits)
	}
	return int(int32(n) >> FracBits)
}

func sat(v int32) Num {
	switch {
	case v > int32(MaxNum):
		return MaxNum
	case v < int32(MinNum):
		return MinNum
	}
	return Num(v)
}

// Add returns a+b with saturation.
func Add(a, b Num) Num { return sat(int32(a) + int32(b)) }

// Sub returns a-b with saturation.
func Sub(a, b Num) Num { return sat(int32(a) - int32(b)) }

// Mul returns a*b with saturation. The 32-bit product is rescaled by the
// fraction width with round-to-nearest-even-free simple rounding, matching
// the shift-and-add peripheral of the in-memory multipliers.
func Mul(a, b Num) Num {
	p := int32(a) * int32(b)
	// Arithmetic right shift floors, so adding half the scale first gives
	// round-to-nearest (half toward +inf) for both signs.
	return sat((p + one/2) >> FracBits)
}

// Div returns a/b with saturation. Division by zero saturates to the
// extreme of a's sign, which is the behaviour of the compiler-lowered
// iterative divider used by IMP.
func Div(a, b Num) Num {
	if b == 0 {
		if a >= 0 {
			return MaxNum
		}
		return MinNum
	}
	p := (int64(a) << FracBits) / int64(b)
	switch {
	case p > int64(MaxNum):
		return MaxNum
	case p < int64(MinNum):
		return MinNum
	}
	return Num(p)
}

// Neg returns -a with saturation (MinNum negates to MaxNum).
func Neg(a Num) Num { return sat(-int32(a)) }

// Abs returns |a| with saturation.
func Abs(a Num) Num {
	if a < 0 {
		return Neg(a)
	}
	return a
}

// Min returns the smaller of a and b.
func Min(a, b Num) Num {
	if a < b {
		return a
	}
	return b
}

// Max returns the larger of a and b.
func Max(a, b Num) Num {
	if a > b {
		return a
	}
	return b
}

// Cmp returns -1, 0, or +1 as a is less than, equal to, or greater than b.
func Cmp(a, b Num) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// ReLU returns max(a, 0), the activation used between GCN layers.
func ReLU(a Num) Num {
	if a < 0 {
		return 0
	}
	return a
}

// Exp2 returns 2^a. It is one of the "simple transcendental functions"
// the common programming interface supports (Section III-B1); devices
// realise it with a small LUT plus one multiply, which this matches: the
// integer part selects a power of two and the fractional part indexes a
// 32-entry polynomial-free table. The LUT step is derived from the
// format's fraction width (see Format.Exp2) — the old Q8.8-only
// quantiser underflowed to a zero step below five fraction bits.
func Exp2(a Num) Num { return DefaultFormat.Exp2(a) }

// Sum returns the saturating sum of a slice.
func Sum(xs []Num) Num {
	var acc Num
	for _, x := range xs {
		acc = Add(acc, x)
	}
	return acc
}

// Dot returns the saturating dot product of two equal-length slices.
// It panics if the lengths differ, as a mapping bug in a kernel would
// otherwise silently corrupt results.
func Dot(a, b []Num) Num {
	if len(a) != len(b) {
		panic("fixed: Dot length mismatch")
	}
	var acc Num
	for i := range a {
		acc = Add(acc, Mul(a[i], b[i]))
	}
	return acc
}
