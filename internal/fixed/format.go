package fixed

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Q-format parameterisation. The package-default Q8.8 arithmetic above
// is one point of a family: LRMP-style precision co-design runs
// different GCN layers at different widths (8/12/16 bits), trading
// accuracy for arrays and cycles on bit-serial devices. A Format names
// one member of the family; its operations are the same saturating
// fixed-point arithmetic with the width and fraction split derived from
// the format instead of the Q8.8 constants.

// ErrBadFormat rejects unsupported or malformed Q-format specs.
var ErrBadFormat = errors.New("fixed: invalid format")

// Format is a signed fixed-point Q(Bits-Frac).Frac format. Values are
// carried in the 16-bit Num container regardless of Bits; a narrower
// format simply restricts the representable raw range to
// [-2^(Bits-1), 2^(Bits-1)-1] and the resolution to 2^-Frac.
type Format struct {
	Bits int // total width including sign, 2..16
	Frac int // fraction bits, 0..Bits-1
}

// The supported widths of the mixed-precision study: each halves the
// fraction resolution relative to the default Q8.8 while keeping half
// the bits for the integer part, mirroring the paper's 16-bit split.
var (
	// W16 is the package default Q8.8 (full precision).
	W16 = Format{Bits: 16, Frac: 8}
	// W12 is Q6.6: three-quarter width.
	W12 = Format{Bits: 12, Frac: 6}
	// W8 is Q4.4: half width.
	W8 = Format{Bits: 8, Frac: 4}
)

// DefaultFormat is the format the package-level functions compute in.
var DefaultFormat = W16

// Formats lists the supported widths, widest first.
func Formats() []Format { return []Format{W16, W12, W8} }

// Valid reports whether the format fits the Num container and keeps at
// least one integer bit beside the sign.
func (f Format) Valid() error {
	if f.Bits < 2 || f.Bits > 16 {
		return fmt.Errorf("%w: bits %d out of [2,16]", ErrBadFormat, f.Bits)
	}
	if f.Frac < 0 || f.Frac >= f.Bits {
		return fmt.Errorf("%w: frac %d out of [0,%d] for %d bits", ErrBadFormat, f.Frac, f.Bits-1, f.Bits)
	}
	return nil
}

// String renders the format as "q8.8" (integer.fraction bits).
func (f Format) String() string { return fmt.Sprintf("q%d.%d", f.Bits-f.Frac, f.Frac) }

// ParseFormat resolves a width spec — "16", "12", "8", or the explicit
// "qI.F" form — to a Format. Plain widths map to the canonical
// half-integer/half-fraction split (W16/W12/W8).
func ParseFormat(s string) (Format, error) {
	switch strings.TrimSpace(strings.ToLower(s)) {
	case "16", "q8.8", "w16":
		return W16, nil
	case "12", "q6.6", "w12":
		return W12, nil
	case "8", "q4.4", "w8":
		return W8, nil
	}
	return Format{}, fmt.Errorf("%w: %q (have 8, 12, 16)", ErrBadFormat, s)
}

// one is the raw encoding of 1.0 in the format — the Q8.8 `one`
// constant derived from the format parameter instead of assumed.
func (f Format) one() int32 { return 1 << f.Frac }

// maxRaw and minRaw bound the raw values representable at this width.
func (f Format) maxRaw() int32 { return 1<<(f.Bits-1) - 1 }
func (f Format) minRaw() int32 { return -(1 << (f.Bits - 1)) }

// Max returns the largest representable Num of the format.
func (f Format) Max() Num { return Num(f.maxRaw()) }

// Min returns the smallest representable Num of the format.
func (f Format) Min() Num { return Num(f.minRaw()) }

// sat saturates a raw value to the format's width.
func (f Format) sat(v int32) Num {
	switch {
	case v > f.maxRaw():
		return Num(f.maxRaw())
	case v < f.minRaw():
		return Num(f.minRaw())
	}
	return Num(v)
}

// FromFloat converts a float64 to the format with round-to-nearest and
// saturation.
func (f Format) FromFloat(x float64) Num {
	scaled := math.Round(x * float64(f.one()))
	switch {
	case scaled > float64(f.maxRaw()):
		return Num(f.maxRaw())
	case scaled < float64(f.minRaw()):
		return Num(f.minRaw())
	}
	return Num(scaled)
}

// FromInt converts an integer to the format with saturation.
func (f Format) FromInt(i int) Num {
	if i > math.MaxInt16 || i < math.MinInt16 {
		if i > 0 {
			return Num(f.maxRaw())
		}
		return Num(f.minRaw())
	}
	return f.sat(int32(i) << f.Frac)
}

// Float converts a format-encoded Num back to float64.
func (f Format) Float(n Num) float64 { return float64(n) / float64(f.one()) }

// Add returns a+b in the format with saturation.
func (f Format) Add(a, b Num) Num { return f.sat(int32(a) + int32(b)) }

// Sub returns a-b in the format with saturation.
func (f Format) Sub(a, b Num) Num { return f.sat(int32(a) - int32(b)) }

// Mul returns a*b in the format with saturation, rescaling the product
// by the format's fraction width with round-to-nearest.
func (f Format) Mul(a, b Num) Num {
	p := int32(a) * int32(b)
	return f.sat((p + f.one()/2) >> f.Frac)
}

// Div returns a/b in the format with saturation; division by zero
// saturates to the extreme of a's sign, like the default-format Div.
func (f Format) Div(a, b Num) Num {
	if b == 0 {
		if a >= 0 {
			return Num(f.maxRaw())
		}
		return Num(f.minRaw())
	}
	p := (int64(a) << f.Frac) / int64(b)
	switch {
	case p > int64(f.maxRaw()):
		return Num(f.maxRaw())
	case p < int64(f.minRaw()):
		return Num(f.minRaw())
	}
	return Num(p)
}

// Neg returns -a in the format with saturation.
func (f Format) Neg(a Num) Num { return f.sat(-int32(a)) }

// exp2LUTBits is the fractional LUT resolution of the in-memory Exp2
// (32 entries at full width); narrower formats cannot index below their
// own resolution, so the effective LUT shrinks with Frac.
const exp2LUTBits = 5

// Exp2 returns 2^a in the format via the LUT-quantised argument.
func (f Format) Exp2(a Num) Num {
	lut := exp2LUTBits
	if lut > f.Frac {
		lut = f.Frac // a step below one raw LSB does not exist
	}
	step := f.one() >> lut
	if step < 1 {
		step = 1
	}
	q := (int32(a) / step) * step
	return f.FromFloat(math.Exp2(float64(q) / float64(f.one())))
}

// Convert re-encodes n from format src to format dst with
// round-to-nearest on a resolution drop and saturation at dst's width.
func Convert(n Num, src, dst Format) Num {
	v := int32(n)
	switch {
	case dst.Frac >= src.Frac:
		shift := dst.Frac - src.Frac
		p := int64(v) << shift
		switch {
		case p > int64(dst.maxRaw()):
			return Num(dst.maxRaw())
		case p < int64(dst.minRaw()):
			return Num(dst.minRaw())
		}
		return Num(p)
	default:
		shift := src.Frac - dst.Frac
		// Round half away from zero so conversion is sign-symmetric.
		half := int32(1) << (shift - 1)
		if v >= 0 {
			v = (v + half) >> shift
		} else {
			v = -((-v + half) >> shift)
		}
		return dst.sat(v)
	}
}

// Quantize maps a default-format value onto the grid the format can
// represent — round to the format's resolution, clamp to its range —
// returning it still encoded in the default format. This is what a
// value looks like after passing through an f-width in-memory device:
// the functional model of running a layer at reduced precision.
func (f Format) Quantize(n Num) Num {
	if f == DefaultFormat {
		return n
	}
	return Convert(Convert(n, DefaultFormat, f), f, DefaultFormat)
}
