package dram

import (
	"testing"

	"mlimp/internal/fixed"
)

func TestFailRowZeroesAndDropsWrites(t *testing.T) {
	b := NewBank(64, 8)
	pattern := []bool{true, false, true, true, false, true, false, true}
	b.WriteRow(0, pattern)
	b.FailRow(0)
	for c, v := range b.ReadRow(0) {
		if v {
			t.Fatalf("failed row holds charge at column %d", c)
		}
	}
	b.WriteRow(0, pattern)
	for c, v := range b.ReadRow(0) {
		if v {
			t.Fatalf("write to failed row stuck at column %d", c)
		}
	}
	if b.BadRows() != 1 {
		t.Errorf("BadRows = %d, want 1", b.BadRows())
	}

	b.RepairRow(0)
	b.WriteRow(0, pattern)
	for c, v := range b.ReadRow(0) {
		if v != pattern[c] {
			t.Fatalf("repaired row column %d = %v, want %v", c, v, pattern[c])
		}
	}
	if b.BadRows() != 0 {
		t.Errorf("BadRows after repair = %d", b.BadRows())
	}
}

func TestFailRowSilentlyCorruptsAdd(t *testing.T) {
	b := NewBank(64, 4)
	x := []fixed.Num{3, 7, 255, 1024}
	y := []fixed.Num{1, 1, 1, 1}
	b.StoreVector(0, x)
	b.FailRow(1) // bit-slice 1 of operand x drops to zero
	b.StoreVector(WordBits, y)
	b.Add(2*WordBits, 0, WordBits, 3*WordBits)
	got := b.LoadVector(2*WordBits, len(x))
	for c := range x {
		want := fixed.Num(uint16(x[c])&^(1<<1) + uint16(y[c])) // wrapping Ambit add
		if got[c] != want {
			t.Errorf("element %d = %d, want %d (x with bad slice %d)", c, got[c], want, uint16(x[c])&^(1<<1))
		}
	}
}

func TestFailRowInResultRegion(t *testing.T) {
	b := NewBank(64, 4)
	x := []fixed.Num{5, 5, 5, 5}
	y := []fixed.Num{3, 3, 3, 3}
	b.FailRow(2*WordBits + 3) // bit 3 of every result element reads zero
	b.StoreVector(0, x)
	b.StoreVector(WordBits, y)
	b.Add(2*WordBits, 0, WordBits, 3*WordBits)
	got := b.LoadVector(2*WordBits, len(x))
	for c := range x {
		want := fixed.Num(uint16(x[c])+uint16(y[c])) &^ (1 << 3)
		if got[c] != want {
			t.Errorf("element %d = %d, want %d", c, got[c], want)
		}
	}
}
