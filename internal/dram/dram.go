// Package dram implements the functional and timing model of in-DRAM
// charge-sharing computation (Ambit, Section II-B2). A Bank exposes the
// three hardware primitives — RowClone copy, triple-row activation (TRA,
// a 3-input majority gate across vertically aligned cells), and the
// dual-contact NOT row — and builds AND/OR/XOR and a bit-serial
// ripple-carry adder from them, demonstrating functional completeness of
// {TRA, NOT} exactly as the paper argues.
//
// Every operation counts row activations; an elementary bit step costs
// ~5 activations (two operand copies into the designated compute rows,
// the TRA itself, and result copy-out), which is where the 5x cycle
// factor of the DRAM column of Table III comes from.
package dram

import (
	"fmt"

	"mlimp/internal/fixed"
)

// WordBits is the operand width (16-bit fixed point).
const WordBits = 16

// Bank is one computable DRAM bank: Rows word-lines of Cols single-bit
// cells, plus the Ambit compute rows (three TRA rows T0-T2, a control row
// C, and a dual-contact row D) modelled separately.
type Bank struct {
	Rows, Cols  int
	cells       [][]bool
	t           [3][]bool // TRA compute rows
	d           []bool    // dual-contact (NOT) row
	activations int64
	bad         map[int]bool // failed wordlines (see fault.go)
}

// NewBank builds a zeroed bank.
func NewBank(rows, cols int) *Bank {
	if rows <= 0 || cols <= 0 {
		panic("dram: bank dimensions must be positive")
	}
	b := &Bank{Rows: rows, Cols: cols, cells: make([][]bool, rows)}
	for i := range b.cells {
		b.cells[i] = make([]bool, cols)
	}
	for i := range b.t {
		b.t[i] = make([]bool, cols)
	}
	b.d = make([]bool, cols)
	return b
}

// Activations returns the cumulative row-activation count, the cost
// metric of all in-DRAM computing.
func (b *Bank) Activations() int64 { return b.activations }

// ResetActivations zeroes the activation counter (between measurements).
func (b *Bank) ResetActivations() { b.activations = 0 }

func (b *Bank) row(r int) []bool {
	if r < 0 || r >= b.Rows {
		panic(fmt.Sprintf("dram: row %d out of %d", r, b.Rows))
	}
	return b.cells[r]
}

// WriteRow stores a bit pattern through the DDR interface (not counted
// as a compute activation; data movement is billed by internal/mainmem).
func (b *Bank) WriteRow(r int, bits []bool) {
	copy(b.row(r), bits)
	b.scrub(r)
}

// ReadRow returns a copy of a row.
func (b *Bank) ReadRow(r int) []bool {
	return append([]bool(nil), b.row(r)...)
}

// RowClone copies row src to row dst in one back-to-back activation pair
// (counted as one compute activation step).
func (b *Bank) RowClone(dst, src int) {
	copy(b.row(dst), b.row(src))
	b.scrub(dst)
	b.activations++
}

// cloneToT copies a data row into TRA row i.
func (b *Bank) cloneToT(i, src int) {
	copy(b.t[i], b.row(src))
	b.activations++
}

// cloneFromT copies TRA row i out to a data row.
func (b *Bank) cloneFromT(i, dst int) {
	copy(b.row(dst), b.t[i])
	b.scrub(dst)
	b.activations++
}

// setControl fills TRA row 2 (the control row C) with a constant.
func (b *Bank) setControl(v bool) {
	for i := range b.t[2] {
		b.t[2][i] = v
	}
	b.activations++
}

// TRA performs the triple-row activation: all three compute rows settle
// to the majority of their previous contents (charge sharing).
func (b *Bank) TRA() {
	for c := 0; c < b.Cols; c++ {
		maj := majority(b.t[0][c], b.t[1][c], b.t[2][c])
		b.t[0][c], b.t[1][c], b.t[2][c] = maj, maj, maj
	}
	b.activations++
}

func majority(a, b, c bool) bool {
	n := 0
	if a {
		n++
	}
	if b {
		n++
	}
	if c {
		n++
	}
	return n >= 2
}

// Not computes dst = ^src through the dual-contact row.
func (b *Bank) Not(dst, src int) {
	s, d := b.row(src), b.row(dst)
	for c := range s {
		b.d[c] = !s[c]
	}
	copy(d, b.d)
	b.scrub(dst)
	b.activations += 2 // activate into dual-contact cell, copy out
}

// And computes dst = r1 & r2 via TRA with control 0. The 5-activation
// sequence (2 operand clones, control set, TRA, copy-out) is the
// elementary bit step of all in-DRAM arithmetic.
func (b *Bank) And(dst, r1, r2 int) {
	b.cloneToT(0, r1)
	b.cloneToT(1, r2)
	b.setControl(false)
	b.TRA()
	b.cloneFromT(0, dst)
}

// Or computes dst = r1 | r2 via TRA with control 1.
func (b *Bank) Or(dst, r1, r2 int) {
	b.cloneToT(0, r1)
	b.cloneToT(1, r2)
	b.setControl(true)
	b.TRA()
	b.cloneFromT(0, dst)
}

// Xor computes dst = r1 ^ r2 from the charge-sharing primitives:
// a^b = (a|b) & ~(a&b). It needs two scratch rows s1, s2.
func (b *Bank) Xor(dst, r1, r2, s1, s2 int) {
	b.And(s1, r1, r2)
	b.Not(s1, s1)
	b.Or(s2, r1, r2)
	b.And(dst, s1, s2)
}

// Word layout: like in-SRAM computing, operands are stored transposed,
// one bit-slice per row, LSB first (Section III-B1: "Binary bit-serial
// computing with bit transposed data is employed for in-SRAM and in-DRAM
// computing").

// StoreVector writes vals transposed starting at row base.
func (b *Bank) StoreVector(base int, vals []fixed.Num) {
	if len(vals) > b.Cols {
		panic("dram: vector wider than bank row")
	}
	for i := 0; i < WordBits; i++ {
		row := b.row(base + i)
		for c, v := range vals {
			row[c] = uint16(v)&(1<<i) != 0
		}
		b.scrub(base + i)
	}
}

// LoadVector reads n transposed values starting at row base.
func (b *Bank) LoadVector(base, n int) []fixed.Num {
	if n > b.Cols {
		panic("dram: read wider than bank row")
	}
	out := make([]fixed.Num, n)
	for i := 0; i < WordBits; i++ {
		row := b.row(base + i)
		for c := 0; c < n; c++ {
			if row[c] {
				out[c] |= 1 << i
			}
		}
	}
	return out
}

// Add computes the transposed word region at dst = x + y (wrapping
// two's-complement, as raw Ambit arithmetic has no saturation peripheral)
// using a ripple-carry adder built purely from TRA/NOT sequences. x, y,
// dst are base rows of 16-row word regions; scratch is the base of a
// 4-row scratch region.
func (b *Bank) Add(dst, x, y, scratch int) {
	carry := scratch // carry row
	s1, s2 := scratch+1, scratch+2
	axb := scratch + 3 // a^b row
	// Clear carry: carry = x & ~x.
	b.Not(s1, x)
	b.And(carry, x, s1)
	for i := 0; i < WordBits; i++ {
		xi, yi, di := x+i, y+i, dst+i
		// sum = (x^y) ^ carry first: the XOR sequences reuse the TRA
		// compute rows, so the carry majority must come afterwards.
		b.Xor(axb, xi, yi, s1, s2)
		b.Xor(di, axb, carry, s1, s2)
		// carryNext = majority(x, y, carry): one TRA directly.
		b.cloneToT(0, xi)
		b.cloneToT(1, yi)
		b.cloneToT(2, carry)
		b.TRA()
		b.cloneFromT(0, carry)
	}
}

// AddVectors is the convenience wrapper: store, add, load, returning the
// result values and the activation count of the compute sequence alone.
func (b *Bank) AddVectors(x, y []fixed.Num) ([]fixed.Num, int64) {
	if len(x) != len(y) {
		panic("dram: length mismatch")
	}
	b.StoreVector(0, x)
	b.StoreVector(WordBits, y)
	start := b.activations
	b.Add(2*WordBits, 0, WordBits, 3*WordBits)
	cost := b.activations - start
	return b.LoadVector(2*WordBits, len(x)), cost
}
