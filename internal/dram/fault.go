package dram

// Bad-wordline faults. A failed DRAM row no longer holds charge: reads
// sense all zeros and writes are lost. The bank keeps operating — TRA
// sequences that touch a bad row simply compute on zeros, the silent
// corruption mode a real Ambit deployment must detect and map out. The
// fleet-level fault plan (internal/fault) retires whole banks; this
// models the per-row defect that forces a retirement.

// FailRow marks row r bad: its contents drop to zero now and every
// later write to it is discarded.
func (b *Bank) FailRow(r int) {
	row := b.row(r) // panics on an out-of-range row, like every row op
	if b.bad == nil {
		b.bad = map[int]bool{}
	}
	b.bad[r] = true
	for c := range row {
		row[c] = false
	}
}

// RepairRow remaps row r to a spare: it becomes writable again,
// starting zeroed.
func (b *Bank) RepairRow(r int) {
	b.row(r)
	delete(b.bad, r)
}

// BadRows returns the number of failed rows.
func (b *Bank) BadRows() int { return len(b.bad) }

// scrub drops the charge of a bad destination row after a write — the
// single hook every row-writing path (WriteRow, RowClone, cloneFromT,
// Not, StoreVector) runs its destination through.
func (b *Bank) scrub(r int) {
	if b.bad != nil && b.bad[r] {
		row := b.cells[r]
		for c := range row {
			row[c] = false
		}
	}
}
