package dram

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mlimp/internal/fixed"
)

func boolRow(bits string) []bool {
	out := make([]bool, len(bits))
	for i, ch := range bits {
		out[i] = ch == '1'
	}
	return out
}

func TestTRAIsMajority(t *testing.T) {
	b := NewBank(64, 8)
	b.WriteRow(0, boolRow("00001111"))
	b.WriteRow(1, boolRow("00110011"))
	b.WriteRow(2, boolRow("01010101"))
	b.cloneToT(0, 0)
	b.cloneToT(1, 1)
	b.cloneToT(2, 2)
	b.TRA()
	b.cloneFromT(0, 3)
	want := boolRow("00010111") // bitwise majority
	got := b.ReadRow(3)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bit %d: got %v want %v", i, got[i], want[i])
		}
	}
	// All three compute rows hold the result after charge sharing.
	b.cloneFromT(1, 4)
	b.cloneFromT(2, 5)
	for i := range want {
		if b.ReadRow(4)[i] != want[i] || b.ReadRow(5)[i] != want[i] {
			t.Error("TRA must overwrite all three rows")
		}
	}
}

func TestAndOrNotXor(t *testing.T) {
	b := NewBank(64, 8)
	x, y := boolRow("00001111"), boolRow("01010101")
	b.WriteRow(0, x)
	b.WriteRow(1, y)

	b.And(2, 0, 1)
	b.Or(3, 0, 1)
	b.Not(4, 0)
	b.Xor(5, 0, 1, 6, 7)
	for i := range x {
		if b.ReadRow(2)[i] != (x[i] && y[i]) {
			t.Errorf("and bit %d", i)
		}
		if b.ReadRow(3)[i] != (x[i] || y[i]) {
			t.Errorf("or bit %d", i)
		}
		if b.ReadRow(4)[i] != !x[i] {
			t.Errorf("not bit %d", i)
		}
		if b.ReadRow(5)[i] != (x[i] != y[i]) {
			t.Errorf("xor bit %d", i)
		}
	}
	// Operands must survive (Ambit computes on copies).
	for i := range x {
		if b.ReadRow(0)[i] != x[i] || b.ReadRow(1)[i] != y[i] {
			t.Error("operand rows were clobbered")
		}
	}
}

func TestAndCostsFiveActivations(t *testing.T) {
	b := NewBank(64, 8)
	b.ResetActivations()
	b.And(2, 0, 1)
	if got := b.Activations(); got != 5 {
		t.Errorf("AND activations = %d, want 5 (the Table III 5x factor)", got)
	}
}

func TestStoreLoadVector(t *testing.T) {
	b := NewBank(128, 32)
	rng := rand.New(rand.NewSource(1))
	vals := make([]fixed.Num, 32)
	for i := range vals {
		vals[i] = fixed.Num(rng.Intn(1<<16) - (1 << 15))
	}
	b.StoreVector(10, vals)
	got := b.LoadVector(10, 32)
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("lane %d: %d != %d", i, got[i], vals[i])
		}
	}
}

func TestAddVectors(t *testing.T) {
	b := NewBank(128, 4)
	x := []fixed.Num{fixed.FromInt(1), fixed.FromInt(-5), fixed.FromFloat(2.5), 12345}
	y := []fixed.Num{fixed.FromInt(2), fixed.FromInt(3), fixed.FromFloat(-1.25), -12345}
	got, cost := b.AddVectors(x, y)
	for i := range x {
		// Raw Ambit addition wraps; within range it matches fixed.Add.
		want := fixed.Num(int16(x[i]) + int16(y[i]))
		if got[i] != want {
			t.Errorf("lane %d: got %d want %d", i, got[i], want)
		}
	}
	// Each bit costs two TRA-built XORs plus the carry majority; the
	// naive construction spends ~39 activations/bit (the optimised
	// Ambit FSM that Table III's 5x factor assumes fuses these
	// sequences, which the static cost model in internal/isa reflects).
	if cost < 16*5 || cost > 16*45 {
		t.Errorf("16-bit add cost %d activations, outside plausible range", cost)
	}
}

func TestRowCloneAndBounds(t *testing.T) {
	b := NewBank(16, 4)
	b.WriteRow(0, boolRow("1010"))
	b.RowClone(5, 0)
	if got := b.ReadRow(5); !got[0] || got[1] {
		t.Error("RowClone wrong")
	}
	for _, f := range []func(){
		func() { b.ReadRow(99) },
		func() { NewBank(0, 4) },
		func() { b.StoreVector(0, make([]fixed.Num, 100)) },
		func() { b.LoadVector(0, 100) },
		func() { b.AddVectors([]fixed.Num{1}, []fixed.Num{1, 2}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

// Property: the TRA/NOT ripple-carry adder matches two's-complement
// 16-bit addition for arbitrary operands.
func TestAmbitAdderProperty(t *testing.T) {
	b := NewBank(128, 2)
	f := func(x1, y1, x2, y2 int16) bool {
		xs := []fixed.Num{fixed.Num(x1), fixed.Num(x2)}
		ys := []fixed.Num{fixed.Num(y1), fixed.Num(y2)}
		got, _ := b.AddVectors(xs, ys)
		return got[0] == fixed.Num(x1+y1) && got[1] == fixed.Num(x2+y2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
