package gnn

import (
	"math"
	"math/rand"

	"mlimp/internal/fixed"
	"mlimp/internal/graph"
	"mlimp/internal/tensor"
)

// Float reference pipeline: the same GCN executed in float64, used to
// quantify what 16-bit fixed-point quantisation costs on the link task
// ("This quantization only results in a slight accuracy degradation of
// < 1%", Section IV). The reference shares the fixed-point model's
// weights (converted once), so the only difference is arithmetic
// precision.

// floatMatrix converts a fixed-point matrix to float64 row-major.
func floatMatrix(d *tensor.Dense) [][]float64 {
	out := make([][]float64, d.Rows)
	for r := 0; r < d.Rows; r++ {
		row := make([]float64, d.Cols)
		for c := 0; c < d.Cols; c++ {
			row[c] = d.At(r, c).Float()
		}
		out[r] = row
	}
	return out
}

// InferFloat runs float64 reference inference on one subgraph.
func (m *Model) InferFloat(sg *graph.Subgraph, feats *tensor.Dense) [][]float64 {
	h := floatMatrix(feats)
	n := sg.NumNodes()
	for l, spec := range m.Layers {
		w := floatMatrix(m.Weights[l])
		b := floatMatrix(m.Biases[l])[0]
		// Aggregation: Â H.
		agg := make([][]float64, n)
		for r := 0; r < n; r++ {
			agg[r] = make([]float64, spec.In)
			cols, vals := sg.Adj.RowEntries(r)
			for i, c := range cols {
				v := vals[i].Float()
				src := h[int(c)]
				for k := range src {
					agg[r][k] += v * src[k]
				}
			}
		}
		// Combination: agg W + b, ReLU between layers.
		next := make([][]float64, n)
		for r := 0; r < n; r++ {
			next[r] = make([]float64, spec.Out)
			for k := 0; k < spec.In; k++ {
				a := agg[r][k]
				if a == 0 {
					continue
				}
				wk := w[k]
				for c := 0; c < spec.Out; c++ {
					next[r][c] += a * wk[c]
				}
			}
			for c := 0; c < spec.Out; c++ {
				next[r][c] += b[c]
				if l < len(m.Layers)-1 && next[r][c] < 0 {
					next[r][c] = 0
				}
			}
		}
		h = next
	}
	return h
}

// QuantizationStudy compares link-prediction AUC of the fixed-point
// pipeline against the float64 reference on the same subgraphs and
// examples, returning (fixedAUC, floatAUC). Scores are cosine
// similarities of the embeddings: untrained GCN embeddings carry the
// structural signal in their direction, while their magnitudes grow
// with node degree (and saturate differently under the two arithmetics),
// so the norm-invariant score isolates what quantisation changes.
func QuantizationStudy(rng *rand.Rand, m *Model, subgraphs []*graph.Subgraph, examplesPer int) (float64, float64) {
	var fixScores, fltScores []float64
	var labels []bool
	for _, sg := range subgraphs {
		feats := NodeFeatures(sg, m.Layers[0].In)
		embFix := m.Infer(sg, feats)
		embFlt := m.InferFloat(sg, feats)
		for _, ex := range SampleLinkExamples(rng, sg, examplesPer) {
			fixScores = append(fixScores, cosine(rowFloats(embFix, ex.U), rowFloats(embFix, ex.V)))
			fltScores = append(fltScores, cosine(embFlt[ex.U], embFlt[ex.V]))
			labels = append(labels, ex.Label)
		}
	}
	fixLabels := append([]bool(nil), labels...)
	return AUC(fixScores, fixLabels), AUC(fltScores, labels)
}

// GuardReport is the outcome of the mixed-precision accuracy guard.
type GuardReport struct {
	BaseAUC  float64 // full-precision (Q8.8) fixed-point AUC
	MixedAUC float64 // AUC with the candidate per-layer formats
	FloatAUC float64 // float64 reference AUC on the same examples
	Drop     float64 // BaseAUC - MixedAUC
	OK       bool    // Drop <= the configured bound
}

// CheckAccuracy is the accuracy guard of the precision co-design: it
// runs the link-prediction study once at full precision and once with
// the candidate per-layer formats — on identical subgraphs and sampled
// examples, so the only difference is the arithmetic — and accepts the
// formats iff the AUC drop stays within maxDrop. Experiments walk the
// format space and keep only configurations the guard admits.
func CheckAccuracy(rng *rand.Rand, m *Model, formats []fixed.Format,
	subgraphs []*graph.Subgraph, examplesPer int, maxDrop float64) GuardReport {
	seed := rng.Int63()
	saved := m.Formats

	m.Formats = nil
	base, flt := QuantizationStudy(rand.New(rand.NewSource(seed)), m, subgraphs, examplesPer)

	m.Formats = formats
	mixed, _ := QuantizationStudy(rand.New(rand.NewSource(seed)), m, subgraphs, examplesPer)

	m.Formats = saved
	drop := base - mixed
	return GuardReport{
		BaseAUC: base, MixedAUC: mixed, FloatAUC: flt,
		Drop: drop, OK: drop <= maxDrop,
	}
}

// rowFloats converts one embedding row to float64.
func rowFloats(d *tensor.Dense, r int) []float64 {
	row := d.Row(r)
	out := make([]float64, len(row))
	for i, v := range row {
		out[i] = v.Float()
	}
	return out
}

// cosine returns the cosine similarity, 0 for zero vectors.
func cosine(a, b []float64) float64 {
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	s := dot / math.Sqrt(na*nb)
	if math.IsNaN(s) {
		return 0
	}
	return s
}
