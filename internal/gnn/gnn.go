// Package gnn implements the GNN case study of Section IV: a
// Graph Convolutional Network whose per-layer aggregation (SpMM) and
// combination (GEMM) kernels over sampled subgraphs become MLIMP jobs.
// It provides both a functional reference inference path (fixed-point
// tensors end to end) and the job generator that feeds the scheduler.
package gnn

import (
	"fmt"
	"math"
	"math/rand"

	"mlimp/internal/event"
	"mlimp/internal/fixed"
	"mlimp/internal/graph"
	"mlimp/internal/isa"
	"mlimp/internal/kernels"
	"mlimp/internal/predict"
	"mlimp/internal/sched"
	"mlimp/internal/tensor"
)

// LayerSpec is one GCN layer's shape.
type LayerSpec struct {
	In, Out int
}

// Model is a GCN: per layer, H' = ReLU(Â H W + b).
type Model struct {
	Layers  []LayerSpec
	Weights []*tensor.Dense // [layer] In x Out
	Biases  []*tensor.Dense // [layer] 1 x Out
}

// NewGCN builds a GCN with the paper's structure: three layers from
// inFeat through hidden (Table I: hidden = 256), randomly initialised
// 16-bit fixed-point weights.
func NewGCN(rng *rand.Rand, inFeat, hidden, layers int) *Model {
	if layers < 1 || inFeat < 1 || hidden < 1 {
		panic("gnn: bad model shape")
	}
	m := &Model{}
	in := inFeat
	for l := 0; l < layers; l++ {
		spec := LayerSpec{In: in, Out: hidden}
		m.Layers = append(m.Layers, spec)
		scale := 1.0 / float64(spec.In)
		m.Weights = append(m.Weights, tensor.RandomDense(rng, spec.In, spec.Out, scale*8))
		m.Biases = append(m.Biases, tensor.RandomDense(rng, 1, spec.Out, 0.05))
		in = hidden
	}
	return m
}

// Infer runs reference fixed-point inference on one subgraph: the
// functional ground truth for the in-memory execution. feats is the
// NumNodes x In input feature matrix.
func (m *Model) Infer(sg *graph.Subgraph, feats *tensor.Dense) *tensor.Dense {
	if feats.Rows != sg.NumNodes() || feats.Cols != m.Layers[0].In {
		panic(fmt.Sprintf("gnn: feature shape %dx%d does not match subgraph(%d)/model(%d)",
			feats.Rows, feats.Cols, sg.NumNodes(), m.Layers[0].In))
	}
	h := feats
	for l, spec := range m.Layers {
		agg := tensor.SpMM(sg.Adj, h)          // aggregation
		comb := tensor.GEMM(agg, m.Weights[l]) // combination
		for r := 0; r < comb.Rows; r++ {       // bias Vadd
			row := comb.Row(r)
			brow := m.Biases[l].Row(0)
			for c := range row {
				row[c] = fixed.Add(row[c], brow[c])
			}
		}
		if l < len(m.Layers)-1 {
			comb.ReLU()
		}
		h = comb
		_ = spec
	}
	return h
}

// Workload is a batched GNN inference task over one dataset stand-in.
type Workload struct {
	Dataset graph.Dataset
	Model   *Model
	Graph   *graph.Graph
	Batches [][]*graph.Subgraph
}

// BuildWorkload samples `batches` batches of `batchSize` query subgraphs
// from the dataset's synthetic mother graph (2-hop neighbourhoods; see
// DESIGN.md). Datasets flagged Concat merge each batch into one
// concatenated subgraph (Section IV).
func BuildWorkload(rng *rand.Rand, d graph.Dataset, m *Model, batches, batchSize int) *Workload {
	g := d.Generate(rng)
	s := graph.NewSampler(rng, g, 2, 0)
	w := &Workload{Dataset: d, Model: m, Graph: g}
	for b := 0; b < batches; b++ {
		queries := make([]int, batchSize)
		for i := range queries {
			queries[i] = rng.Intn(g.N)
		}
		batch := s.SampleBatch(queries)
		if d.Concat {
			batch = []*graph.Subgraph{s.Concat(batch)}
		}
		w.Batches = append(w.Batches, batch)
	}
	return w
}

// Subgraphs returns all subgraphs across batches.
func (w *Workload) Subgraphs() []*graph.Subgraph {
	var out []*graph.Subgraph
	for _, b := range w.Batches {
		out = append(out, b...)
	}
	return out
}

// HostDispatch is the allocation-independent host cost per job launch:
// scheduler bookkeeping, predictor inference, and firmware kick-off
// (the paper measures the pre-execution cost at under 2% of an SpMM
// kernel, Section V-B2).
const HostDispatch = event.Microsecond

// fitBeta fits the scale-free exponent of the true SpMM scaling curve
// for one subgraph on one target by log-log regression over a few
// replica counts — the paper's "empirically modeled" shape parameter
// (Section III-C3), fitted once per mother graph and memory rather than
// assumed.
func fitBeta(adj *tensor.CSR, f int, t isa.Target) float64 {
	cfg := mem(t)
	unit := kernels.SpMMUnit(cfg, adj, f, true)
	if unit.RepUnit < 1 || unit.Cycles <= 0 {
		return sched.DefaultBeta
	}
	var sx, sy, sxx, sxy float64
	n := 0
	for r := 1; r <= 16; r *= 2 {
		e := kernels.SpMM(cfg, adj, f, unit.RepUnit*r, true)
		x := math.Log(float64(r))
		y := math.Log(float64(e.Cycles)*float64(e.Iterations) + 1)
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
		n++
	}
	den := float64(n)*sxx - sx*sx
	if den == 0 {
		return sched.DefaultBeta
	}
	beta := -(float64(n)*sxy - sx*sy) / den
	switch {
	case beta < 0.1:
		return 0.1
	case beta > 1:
		return 1
	}
	return beta
}

// FitBetas fits the scale-model exponent once per (target, feature
// width) on a representative subgraph of a mother graph — the shared
// prelude of SpMMJobs, exported for serving front ends that build jobs
// one request at a time.
func FitBetas(sample *tensor.CSR, widths []int, sys *sched.System) map[isa.Target]map[int]float64 {
	betas := map[isa.Target]map[int]float64{}
	for _, t := range sys.Targets() {
		betas[t] = map[int]float64{}
		for _, f := range widths {
			if _, ok := betas[t][f]; !ok {
				betas[t][f] = fitBeta(sample, f, t)
			}
		}
	}
	return betas
}

// SpMMJob builds one aggregation job for subgraph adjacency adj at
// feature width f: estimates from the predictor (which may have been
// retrained online since the request was generated), ground truth from
// the kernel cost model. The per-request unit of the serving front end.
func SpMMJob(id int, name string, adj *tensor.CSR, f int, p predict.Predictor,
	sys *sched.System, betas map[isa.Target]map[int]float64) *sched.Job {
	est := map[isa.Target]sched.Profile{}
	for _, t := range sys.Targets() {
		est[t] = spmmProfile(adj, f, t, p.UnitCycles(adj, f, t), betas[t][f])
	}
	j := &sched.Job{ID: id, Name: name, Kind: "spmm", Est: est}
	j.TrueTime = func(sys *sched.System, t isa.Target, arrays int) event.Time {
		return trueSpMMTime(sys, adj, f, t, arrays)
	}
	return j
}

// spmmProfile builds a scheduler profile for one aggregation SpMM from a
// cycle source (predictor or oracle). beta comes from the per-mother-
// graph fit.
func spmmProfile(adj *tensor.CSR, f int, t isa.Target, unitCycles int64, beta float64) sched.Profile {
	est := kernels.SpMMUnit(mem(t), adj, f, true)
	return sched.Profile{
		UnitCycles: unitCycles,
		RepUnit:    est.RepUnit,
		LoadBytes:  sched.EffectiveLoadBytes(t, est.LoadBytes),
		StoreBytes: sched.EffectiveLoadBytes(t, est.StoreBytes),
		Beta:       beta,
		Overhead:   HostDispatch,
		// Replication cannot exceed one replica per input row.
		MaxUseful: est.RepUnit * adj.Rows,
	}
}

// trueSpMMTime is the simulator's ground truth for an SpMM job.
func trueSpMMTime(sys *sched.System, adj *tensor.CSR, f int, t isa.Target, arrays int) event.Time {
	cfg := mem(t)
	est := kernels.SpMM(cfg, adj, f, arrays, true)
	cycles := est.Cycles * int64(est.Iterations)
	return HostDispatch + cfg.Clock().Cycles(cycles) +
		sys.DDR.StreamTime(sched.EffectiveLoadBytes(t, est.LoadBytes)) +
		sys.DDR.StreamTime(sched.EffectiveLoadBytes(t, est.StoreBytes))
}

// SpMMJobs generates one aggregation job per subgraph per GCN layer,
// with estimates from the given predictor and ground truth from the
// kernel cost model — the job stream of the Figure 15 scheduler study.
func (w *Workload) SpMMJobs(p predict.Predictor, sys *sched.System) []*sched.Job {
	var jobs []*sched.Job
	// Fit the scale-model exponent once per (target, layer-width) on a
	// representative subgraph of this mother graph.
	widths := make([]int, 0, len(w.Model.Layers))
	for _, spec := range w.Model.Layers {
		widths = append(widths, spec.In)
	}
	betas := FitBetas(w.Subgraphs()[0].Adj, widths, sys)
	id := 0
	for _, sg := range w.Subgraphs() {
		adj := sg.Adj
		for l, spec := range w.Model.Layers {
			f := spec.In
			est := map[isa.Target]sched.Profile{}
			for _, t := range sys.Targets() {
				est[t] = spmmProfile(adj, f, t, p.UnitCycles(adj, f, t), betas[t][f])
			}
			j := &sched.Job{
				ID:   id,
				Name: fmt.Sprintf("spmm-q%d-l%d", sg.Query, l),
				Kind: "spmm",
				Est:  est,
			}
			j.TrueTime = func(sys *sched.System, t isa.Target, arrays int) event.Time {
				return trueSpMMTime(sys, adj, f, t, arrays)
			}
			jobs = append(jobs, j)
			id++
		}
	}
	return jobs
}

// AllJobs generates the full kernel job stream — SpMM, GEMM, and Vadd
// per subgraph per layer. GEMM and Vadd costs are deterministic static
// analysis (Section III-E), so their estimates are exact.
func (w *Workload) AllJobs(p predict.Predictor, sys *sched.System) []*sched.Job {
	jobs := w.SpMMJobs(p, sys)
	id := len(jobs)
	for _, sg := range w.Subgraphs() {
		n := sg.NumNodes()
		for _, spec := range w.Model.Layers {
			jobs = append(jobs, gemmJob(sys, &id, n, spec))
			jobs = append(jobs, vaddJob(sys, &id, n*spec.Out))
		}
	}
	return jobs
}

func gemmJob(sys *sched.System, id *int, rows int, spec LayerSpec) *sched.Job {
	est := map[isa.Target]sched.Profile{}
	for _, t := range sys.Targets() {
		cfg := mem(t)
		ru := clampArrays(sys, t, kernels.GEMM(cfg, rows, spec.In, spec.Out, 1).RepUnit)
		e := kernels.GEMM(cfg, rows, spec.In, spec.Out, ru)
		est[t] = sched.Profile{
			UnitCycles: e.Cycles, RepUnit: ru,
			LoadBytes:    sched.EffectiveLoadBytes(t, e.LoadBytes),
			StoreBytes:   sched.EffectiveLoadBytes(t, e.StoreBytes),
			ProgramBytes: e.ProgramBytes, Beta: sched.DefaultBeta,
			Overhead: HostDispatch,
		}
	}
	j := &sched.Job{ID: *id, Name: fmt.Sprintf("gemm-%dx%dx%d", rows, spec.In, spec.Out), Kind: "gemm", Est: est}
	j.TrueTime = func(sys *sched.System, t isa.Target, arrays int) event.Time {
		cfg := mem(t)
		e := kernels.GEMM(cfg, rows, spec.In, spec.Out, arrays)
		tt := HostDispatch + cfg.Clock().Cycles(e.Cycles) +
			sys.DDR.StreamTime(sched.EffectiveLoadBytes(t, e.LoadBytes)) +
			sys.DDR.StreamTime(sched.EffectiveLoadBytes(t, e.StoreBytes))
		if e.ProgramBytes > 0 {
			tt += sys.DDR.StreamTime(e.ProgramBytes) * 4
		}
		return tt
	}
	*id++
	return j
}

func vaddJob(sys *sched.System, id *int, n int) *sched.Job {
	est := map[isa.Target]sched.Profile{}
	for _, t := range sys.Targets() {
		cfg := mem(t)
		ru := clampArrays(sys, t, kernels.Vadd(cfg, n, 1).RepUnit)
		e := kernels.Vadd(cfg, n, ru)
		est[t] = sched.Profile{
			UnitCycles: e.Cycles, RepUnit: ru,
			LoadBytes:  sched.EffectiveLoadBytes(t, e.LoadBytes),
			StoreBytes: sched.EffectiveLoadBytes(t, e.StoreBytes),
			Beta:       sched.DefaultBeta,
			Overhead:   HostDispatch,
		}
	}
	j := &sched.Job{ID: *id, Name: fmt.Sprintf("vadd-%d", n), Kind: "vadd", Est: est}
	j.TrueTime = func(sys *sched.System, t isa.Target, arrays int) event.Time {
		cfg := mem(t)
		e := kernels.Vadd(cfg, n, arrays)
		return HostDispatch + cfg.Clock().Cycles(e.Cycles) +
			sys.DDR.StreamTime(sched.EffectiveLoadBytes(t, e.LoadBytes)) +
			sys.DDR.StreamTime(sched.EffectiveLoadBytes(t, e.StoreBytes))
	}
	*id++
	return j
}
