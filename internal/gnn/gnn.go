// Package gnn implements the GNN case study of Section IV: a
// Graph Convolutional Network whose per-layer aggregation (SpMM) and
// combination (GEMM) kernels over sampled subgraphs become MLIMP jobs.
// It provides both a functional reference inference path (fixed-point
// tensors end to end) and the job generator that feeds the scheduler.
package gnn

import (
	"fmt"
	"math"
	"math/rand"

	"mlimp/internal/event"
	"mlimp/internal/fixed"
	"mlimp/internal/graph"
	"mlimp/internal/isa"
	"mlimp/internal/kernels"
	"mlimp/internal/predict"
	"mlimp/internal/sched"
	"mlimp/internal/tensor"
)

// LayerSpec is one GCN layer's shape.
type LayerSpec struct {
	In, Out int
}

// Model is a GCN: per layer, H' = ReLU(Â H W + b).
type Model struct {
	Layers  []LayerSpec
	Weights []*tensor.Dense // [layer] In x Out
	Biases  []*tensor.Dense // [layer] 1 x Out
	// Formats selects the Q format each layer computes at; nil (or a
	// short slice) defaults remaining layers to fixed.DefaultFormat.
	// Narrow layers run on proportionally fewer arrays and cycles (the
	// job generators scale their profiles by the width), at the price of
	// activations snapping to the coarser grid — the precision half of
	// the replication+precision co-design.
	Formats []fixed.Format
}

// LayerFormat returns the Q format layer l computes at.
func (m *Model) LayerFormat(l int) fixed.Format {
	if l < len(m.Formats) {
		return m.Formats[l]
	}
	return fixed.DefaultFormat
}

// LayerBits returns the operand width of layer l.
func (m *Model) LayerBits(l int) int { return m.LayerFormat(l).Bits }

// NewGCN builds a GCN with the paper's structure: three layers from
// inFeat through hidden (Table I: hidden = 256), randomly initialised
// 16-bit fixed-point weights.
func NewGCN(rng *rand.Rand, inFeat, hidden, layers int) *Model {
	if layers < 1 || inFeat < 1 || hidden < 1 {
		panic("gnn: bad model shape")
	}
	m := &Model{}
	in := inFeat
	for l := 0; l < layers; l++ {
		spec := LayerSpec{In: in, Out: hidden}
		m.Layers = append(m.Layers, spec)
		scale := 1.0 / float64(spec.In)
		m.Weights = append(m.Weights, tensor.RandomDense(rng, spec.In, spec.Out, scale*8))
		m.Biases = append(m.Biases, tensor.RandomDense(rng, 1, spec.Out, 0.05))
		in = hidden
	}
	return m
}

// Infer runs reference fixed-point inference on one subgraph: the
// functional ground truth for the in-memory execution. feats is the
// NumNodes x In input feature matrix.
func (m *Model) Infer(sg *graph.Subgraph, feats *tensor.Dense) *tensor.Dense {
	if feats.Rows != sg.NumNodes() || feats.Cols != m.Layers[0].In {
		panic(fmt.Sprintf("gnn: feature shape %dx%d does not match subgraph(%d)/model(%d)",
			feats.Rows, feats.Cols, sg.NumNodes(), m.Layers[0].In))
	}
	h := feats
	for l, spec := range m.Layers {
		f := m.LayerFormat(l)
		w := m.Weights[l]
		if f != fixed.DefaultFormat {
			// A reduced-precision layer sees its stationary weights on the
			// narrow grid too; accumulation stays wide (the devices
			// accumulate in full-width bit-serial registers), so only the
			// stored operands quantise.
			w = quantizeDense(w, f)
		}
		agg := tensor.SpMM(sg.Adj, h)    // aggregation
		comb := tensor.GEMM(agg, w)      // combination
		for r := 0; r < comb.Rows; r++ { // bias Vadd
			row := comb.Row(r)
			brow := m.Biases[l].Row(0)
			for c := range row {
				row[c] = fixed.Add(row[c], brow[c])
			}
		}
		if l < len(m.Layers)-1 {
			comb.ReLU()
		}
		if f != fixed.DefaultFormat {
			// Activations leave the layer through f-wide sense amps.
			for r := 0; r < comb.Rows; r++ {
				row := comb.Row(r)
				for c := range row {
					row[c] = f.Quantize(row[c])
				}
			}
		}
		h = comb
		_ = spec
	}
	return h
}

// quantizeDense returns a copy of d with every element snapped to the
// grid of format f (still stored in the default format).
func quantizeDense(d *tensor.Dense, f fixed.Format) *tensor.Dense {
	out := tensor.NewDense(d.Rows, d.Cols)
	for r := 0; r < d.Rows; r++ {
		src, dst := d.Row(r), out.Row(r)
		for c := range src {
			dst[c] = f.Quantize(src[c])
		}
	}
	return out
}

// Workload is a batched GNN inference task over one dataset stand-in.
type Workload struct {
	Dataset graph.Dataset
	Model   *Model
	Graph   *graph.Graph
	Batches [][]*graph.Subgraph
}

// BuildWorkload samples `batches` batches of `batchSize` query subgraphs
// from the dataset's synthetic mother graph (2-hop neighbourhoods; see
// DESIGN.md). Datasets flagged Concat merge each batch into one
// concatenated subgraph (Section IV).
func BuildWorkload(rng *rand.Rand, d graph.Dataset, m *Model, batches, batchSize int) *Workload {
	g := d.Generate(rng)
	s := graph.NewSampler(rng, g, 2, 0)
	w := &Workload{Dataset: d, Model: m, Graph: g}
	for b := 0; b < batches; b++ {
		queries := make([]int, batchSize)
		for i := range queries {
			queries[i] = rng.Intn(g.N)
		}
		batch := s.SampleBatch(queries)
		if d.Concat {
			batch = []*graph.Subgraph{s.Concat(batch)}
		}
		w.Batches = append(w.Batches, batch)
	}
	return w
}

// Subgraphs returns all subgraphs across batches.
func (w *Workload) Subgraphs() []*graph.Subgraph {
	var out []*graph.Subgraph
	for _, b := range w.Batches {
		out = append(out, b...)
	}
	return out
}

// HostDispatch is the allocation-independent host cost per job launch:
// scheduler bookkeeping, predictor inference, and firmware kick-off
// (the paper measures the pre-execution cost at under 2% of an SpMM
// kernel, Section V-B2).
const HostDispatch = event.Microsecond

// fitBeta fits the scale-free exponent of the true SpMM scaling curve
// for one subgraph on one target by log-log regression over a few
// replica counts — the paper's "empirically modeled" shape parameter
// (Section III-C3), fitted once per mother graph and memory rather than
// assumed.
func fitBeta(adj *tensor.CSR, f int, t isa.Target) float64 {
	cfg := mem(t)
	unit := kernels.SpMMUnit(cfg, adj, f, true)
	if unit.RepUnit < 1 || unit.Cycles <= 0 {
		return sched.DefaultBeta
	}
	var sx, sy, sxx, sxy float64
	n := 0
	for r := 1; r <= 16; r *= 2 {
		e := kernels.SpMM(cfg, adj, f, unit.RepUnit*r, true)
		x := math.Log(float64(r))
		y := math.Log(float64(e.Cycles)*float64(e.Iterations) + 1)
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
		n++
	}
	den := float64(n)*sxx - sx*sx
	if den == 0 {
		return sched.DefaultBeta
	}
	beta := -(float64(n)*sxy - sx*sy) / den
	switch {
	case beta < 0.1:
		return 0.1
	case beta > 1:
		return 1
	}
	return beta
}

// FitBetas fits the scale-model exponent once per (target, feature
// width) on a representative subgraph of a mother graph — the shared
// prelude of SpMMJobs, exported for serving front ends that build jobs
// one request at a time.
func FitBetas(sample *tensor.CSR, widths []int, sys *sched.System) map[isa.Target]map[int]float64 {
	betas := map[isa.Target]map[int]float64{}
	for _, t := range sys.Targets() {
		betas[t] = map[int]float64{}
		for _, f := range widths {
			if _, ok := betas[t][f]; !ok {
				betas[t][f] = fitBeta(sample, f, t)
			}
		}
	}
	return betas
}

// SpMMJob builds one aggregation job for subgraph adjacency adj at
// feature width f: estimates from the predictor (which may have been
// retrained online since the request was generated), ground truth from
// the kernel cost model. The per-request unit of the serving front end.
func SpMMJob(id int, name string, adj *tensor.CSR, f int, p predict.Predictor,
	sys *sched.System, betas map[isa.Target]map[int]float64) *sched.Job {
	return SpMMJobAt(id, name, adj, f, 0, fixed.DefaultFormat, p, sys, betas)
}

// SpMMJobAt is SpMMJob for GCN layer `layer` computing in format qf:
// the job carries the layer's stage tag (so replicas of the stage can
// take it) and its operand width (profiles and ground truth scale with
// the width; the energy model reads Bits).
func SpMMJobAt(id int, name string, adj *tensor.CSR, f, layer int, qf fixed.Format,
	p predict.Predictor, sys *sched.System, betas map[isa.Target]map[int]float64) *sched.Job {
	bits := qf.Bits
	est := map[isa.Target]sched.Profile{}
	for _, t := range sys.Targets() {
		est[t] = spmmProfile(adj, f, t, p.UnitCycles(adj, f, t), betas[t][f]).ScaleToBits(bits)
	}
	j := &sched.Job{ID: id, Name: name, Kind: "spmm",
		Stage: fmt.Sprintf("spmm-l%d", layer), Bits: bits, Est: est}
	j.TrueTime = func(sys *sched.System, t isa.Target, arrays int) event.Time {
		return trueSpMMTime(sys, adj, f, t, arrays, bits)
	}
	return j
}

// spmmProfile builds a scheduler profile for one aggregation SpMM from a
// cycle source (predictor or oracle). beta comes from the per-mother-
// graph fit.
func spmmProfile(adj *tensor.CSR, f int, t isa.Target, unitCycles int64, beta float64) sched.Profile {
	est := kernels.SpMMUnit(mem(t), adj, f, true)
	return sched.Profile{
		UnitCycles: unitCycles,
		RepUnit:    est.RepUnit,
		LoadBytes:  sched.EffectiveLoadBytes(t, est.LoadBytes),
		StoreBytes: sched.EffectiveLoadBytes(t, est.StoreBytes),
		Beta:       beta,
		Overhead:   HostDispatch,
		// Replication cannot exceed one replica per input row.
		MaxUseful: est.RepUnit * adj.Rows,
	}
}

// scaleBits scales a cycle or byte count for bits-wide operands on the
// bit-serial devices (linear in width, ceil so nothing rounds to zero).
func scaleBits(v int64, bits int) int64 {
	if bits <= 0 || bits >= 16 || v <= 0 {
		return v
	}
	return (v*int64(bits) + 15) / 16
}

// trueSpMMTime is the simulator's ground truth for an SpMM job at the
// given operand width.
func trueSpMMTime(sys *sched.System, adj *tensor.CSR, f int, t isa.Target, arrays, bits int) event.Time {
	cfg := mem(t)
	est := kernels.SpMM(cfg, adj, f, arrays, true)
	cycles := scaleBits(est.Cycles*int64(est.Iterations), bits)
	return HostDispatch + cfg.Clock().Cycles(cycles) +
		sys.DDR.StreamTime(sched.EffectiveLoadBytes(t, scaleBits(est.LoadBytes, bits))) +
		sys.DDR.StreamTime(sched.EffectiveLoadBytes(t, scaleBits(est.StoreBytes, bits)))
}

// SpMMJobs generates one aggregation job per subgraph per GCN layer,
// with estimates from the given predictor and ground truth from the
// kernel cost model — the job stream of the Figure 15 scheduler study.
func (w *Workload) SpMMJobs(p predict.Predictor, sys *sched.System) []*sched.Job {
	var jobs []*sched.Job
	// Fit the scale-model exponent once per (target, layer-width) on a
	// representative subgraph of this mother graph.
	widths := make([]int, 0, len(w.Model.Layers))
	for _, spec := range w.Model.Layers {
		widths = append(widths, spec.In)
	}
	betas := FitBetas(w.Subgraphs()[0].Adj, widths, sys)
	id := 0
	for _, sg := range w.Subgraphs() {
		adj := sg.Adj
		for l, spec := range w.Model.Layers {
			f := spec.In
			bits := w.Model.LayerBits(l)
			est := map[isa.Target]sched.Profile{}
			for _, t := range sys.Targets() {
				est[t] = spmmProfile(adj, f, t, p.UnitCycles(adj, f, t), betas[t][f]).ScaleToBits(bits)
			}
			j := &sched.Job{
				ID:    id,
				Name:  fmt.Sprintf("spmm-q%d-l%d", sg.Query, l),
				Kind:  "spmm",
				Stage: fmt.Sprintf("spmm-l%d", l),
				Bits:  bits,
				Est:   est,
			}
			j.TrueTime = func(sys *sched.System, t isa.Target, arrays int) event.Time {
				return trueSpMMTime(sys, adj, f, t, arrays, bits)
			}
			jobs = append(jobs, j)
			id++
		}
	}
	return jobs
}

// AllJobs generates the full kernel job stream — SpMM, GEMM, and Vadd
// per subgraph per layer. GEMM and Vadd costs are deterministic static
// analysis (Section III-E), so their estimates are exact.
func (w *Workload) AllJobs(p predict.Predictor, sys *sched.System) []*sched.Job {
	jobs := w.SpMMJobs(p, sys)
	id := len(jobs)
	for _, sg := range w.Subgraphs() {
		n := sg.NumNodes()
		for l, spec := range w.Model.Layers {
			bits := w.Model.LayerBits(l)
			jobs = append(jobs, gemmJob(sys, &id, n, l, spec, bits))
			jobs = append(jobs, vaddJob(sys, &id, n*spec.Out, bits))
		}
	}
	return jobs
}

func gemmJob(sys *sched.System, id *int, rows, layer int, spec LayerSpec, bits int) *sched.Job {
	est := map[isa.Target]sched.Profile{}
	for _, t := range sys.Targets() {
		cfg := mem(t)
		ru := clampArrays(sys, t, kernels.GEMM(cfg, rows, spec.In, spec.Out, 1).RepUnit)
		e := kernels.GEMM(cfg, rows, spec.In, spec.Out, ru)
		est[t] = sched.Profile{
			UnitCycles: e.Cycles, RepUnit: ru,
			LoadBytes:    sched.EffectiveLoadBytes(t, e.LoadBytes),
			StoreBytes:   sched.EffectiveLoadBytes(t, e.StoreBytes),
			ProgramBytes: e.ProgramBytes, Beta: sched.DefaultBeta,
			Overhead: HostDispatch,
		}.ScaleToBits(bits)
	}
	j := &sched.Job{ID: *id, Name: fmt.Sprintf("gemm-%dx%dx%d", rows, spec.In, spec.Out),
		Kind: "gemm", Stage: fmt.Sprintf("gemm-l%d", layer), Bits: bits, Est: est}
	j.TrueTime = func(sys *sched.System, t isa.Target, arrays int) event.Time {
		cfg := mem(t)
		e := kernels.GEMM(cfg, rows, spec.In, spec.Out, arrays)
		tt := HostDispatch + cfg.Clock().Cycles(scaleBits(e.Cycles, bits)) +
			sys.DDR.StreamTime(sched.EffectiveLoadBytes(t, scaleBits(e.LoadBytes, bits))) +
			sys.DDR.StreamTime(sched.EffectiveLoadBytes(t, scaleBits(e.StoreBytes, bits)))
		if e.ProgramBytes > 0 {
			tt += sys.DDR.StreamTime(scaleBits(e.ProgramBytes, bits)) * 4
		}
		return tt
	}
	*id++
	return j
}

func vaddJob(sys *sched.System, id *int, n, bits int) *sched.Job {
	est := map[isa.Target]sched.Profile{}
	for _, t := range sys.Targets() {
		cfg := mem(t)
		ru := clampArrays(sys, t, kernels.Vadd(cfg, n, 1).RepUnit)
		e := kernels.Vadd(cfg, n, ru)
		est[t] = sched.Profile{
			UnitCycles: e.Cycles, RepUnit: ru,
			LoadBytes:  sched.EffectiveLoadBytes(t, e.LoadBytes),
			StoreBytes: sched.EffectiveLoadBytes(t, e.StoreBytes),
			Beta:       sched.DefaultBeta,
			Overhead:   HostDispatch,
		}.ScaleToBits(bits)
	}
	j := &sched.Job{ID: *id, Name: fmt.Sprintf("vadd-%d", n), Kind: "vadd", Bits: bits, Est: est}
	j.TrueTime = func(sys *sched.System, t isa.Target, arrays int) event.Time {
		cfg := mem(t)
		e := kernels.Vadd(cfg, n, arrays)
		return HostDispatch + cfg.Clock().Cycles(scaleBits(e.Cycles, bits)) +
			sys.DDR.StreamTime(sched.EffectiveLoadBytes(t, scaleBits(e.LoadBytes, bits))) +
			sys.DDR.StreamTime(sched.EffectiveLoadBytes(t, scaleBits(e.StoreBytes, bits)))
	}
	*id++
	return j
}
