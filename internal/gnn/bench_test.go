package gnn

import (
	"math/rand"
	"testing"

	"mlimp/internal/graph"
	"mlimp/internal/tensor"
)

// BenchmarkInfer measures reference GCN inference over one sampled
// workload batch — the end-to-end consumer of the tensor SpMM/GEMM
// kernels, so this bench tracks the row-parallel fast paths at the
// shapes the experiments actually run.
func BenchmarkInfer(b *testing.B) {
	d, ok := graph.DatasetByName("ogbl-collab")
	if !ok {
		b.Fatal("dataset missing")
	}
	rng := rand.New(rand.NewSource(1))
	m := NewGCN(rng, d.InputFeat, d.HiddenFeat, 3)
	w := BuildWorkload(rng, d, m, 1, 8)
	sgs := w.Subgraphs()
	feats := make([]*tensor.Dense, len(sgs))
	for i, sg := range sgs {
		feats[i] = tensor.RandomDense(rng, sg.NumNodes(), d.InputFeat, 1)
	}
	rows := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := i % len(sgs)
		out := m.Infer(sgs[k], feats[k])
		rows = out.Rows
	}
	_ = rows
}
