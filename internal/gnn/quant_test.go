package gnn

import (
	"math/rand"
	"testing"

	"mlimp/internal/fixed"
	"mlimp/internal/graph"
)

func guardFixture(t *testing.T, seed int64) (*rand.Rand, *Model, []*graph.Subgraph) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	d, _ := graph.DatasetByName("ogbl-collab")
	g := d.Generate(rng)
	s := graph.NewSampler(rng, g, 2, 0)
	m := NewGCN(rng, d.InputFeat, d.HiddenFeat, 1)
	var subgraphs []*graph.Subgraph
	for i := 0; i < 4; i++ {
		subgraphs = append(subgraphs, s.Sample(rng.Intn(g.N)))
	}
	return rng, m, subgraphs
}

func TestLayerFormatDefaults(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := NewGCN(rng, 8, 12, 3)
	if m.LayerFormat(0) != fixed.DefaultFormat || m.LayerBits(2) != 16 {
		t.Error("nil Formats must default every layer to the full width")
	}
	m.Formats = []fixed.Format{fixed.W8}
	if m.LayerFormat(0) != fixed.W8 {
		t.Error("explicit format ignored")
	}
	if m.LayerFormat(1) != fixed.DefaultFormat {
		t.Error("short Formats slice must default the tail layers")
	}
}

func TestInferQuantisesToFormatGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := graph.BarabasiAlbert(rng, 80, 3)
	s := graph.NewSampler(rng, g, 1, 4)
	sg := s.Sample(2)
	m := NewGCN(rng, 8, 12, 2)
	feats := NodeFeatures(sg, 8)

	base := m.Infer(sg, feats)
	m.Formats = []fixed.Format{fixed.W8, fixed.W8}
	narrow := m.Infer(sg, feats)
	m.Formats = nil

	if narrow.Rows != base.Rows || narrow.Cols != base.Cols {
		t.Fatalf("shape changed: %dx%d", narrow.Rows, narrow.Cols)
	}
	// Every narrow activation sits on the W8 grid (Quantize is a
	// fixed point of the format).
	for r := 0; r < narrow.Rows; r++ {
		for _, v := range narrow.Row(r) {
			if fixed.W8.Quantize(v) != v {
				t.Fatalf("activation %v off the W8 grid", v)
			}
		}
	}
	// An all-W16 format list is the identity path.
	m.Formats = []fixed.Format{fixed.W16, fixed.W16}
	same := m.Infer(sg, feats)
	m.Formats = nil
	for r := 0; r < base.Rows; r++ {
		a, b := base.Row(r), same.Row(r)
		for c := range a {
			if a[c] != b[c] {
				t.Fatalf("W16 formats changed inference at (%d,%d)", r, c)
			}
		}
	}
}

func TestCheckAccuracyGuard(t *testing.T) {
	rng, m, subgraphs := guardFixture(t, 11)

	// Full-width formats: zero drop by construction.
	rep := CheckAccuracy(rng, m, []fixed.Format{fixed.W16}, subgraphs, 30, 0.01)
	if rep.Drop != 0 || !rep.OK {
		t.Errorf("W16 guard: drop %.4f ok=%v, want 0/true", rep.Drop, rep.OK)
	}
	if rep.BaseAUC <= 0.5 {
		t.Errorf("base AUC %.3f carries no signal", rep.BaseAUC)
	}

	// Mixed W12 front: the guard must report a coherent comparison on
	// identical examples and leave the model's formats untouched.
	rep = CheckAccuracy(rng, m, []fixed.Format{fixed.W12}, subgraphs, 30, 0.05)
	if rep.MixedAUC < 0 || rep.MixedAUC > 1 {
		t.Errorf("mixed AUC %.3f out of range", rep.MixedAUC)
	}
	if rep.Drop != rep.BaseAUC-rep.MixedAUC {
		t.Error("drop is not base-mixed")
	}
	if m.Formats != nil {
		t.Error("guard leaked formats into the model")
	}

	// An impossible bound must reject any real drop.
	rep = CheckAccuracy(rng, m, []fixed.Format{fixed.W8}, subgraphs, 30, -1)
	if rep.OK && rep.Drop > -1 {
		t.Error("negative bound admitted a configuration")
	}
}
