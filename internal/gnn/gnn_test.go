package gnn

import (
	"math/rand"
	"testing"

	"mlimp/internal/graph"
	"mlimp/internal/isa"
	"mlimp/internal/predict"
	"mlimp/internal/sched"
	"mlimp/internal/tensor"
)

func testWorkload(t *testing.T, seed int64, batches, batchSize int) *Workload {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	d, ok := graph.DatasetByName("ogbl-collab")
	if !ok {
		t.Fatal("dataset missing")
	}
	m := NewGCN(rng, d.InputFeat, d.HiddenFeat, 3)
	return BuildWorkload(rng, d, m, batches, batchSize)
}

func TestNewGCNShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := NewGCN(rng, 128, 256, 3)
	if len(m.Layers) != 3 || len(m.Weights) != 3 || len(m.Biases) != 3 {
		t.Fatal("wrong layer count")
	}
	if m.Layers[0].In != 128 || m.Layers[0].Out != 256 {
		t.Error("layer 0 shape wrong")
	}
	if m.Layers[1].In != 256 || m.Layers[2].In != 256 {
		t.Error("hidden shapes wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewGCN(rng, 0, 256, 3)
}

func TestInferShapesAndActivation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	w := testWorkload(t, 3, 1, 4)
	sg := w.Batches[0][0]
	feats := tensor.RandomDense(rng, sg.NumNodes(), w.Model.Layers[0].In, 1)
	out := w.Model.Infer(sg, feats)
	if out.Rows != sg.NumNodes() || out.Cols != 256 {
		t.Fatalf("output shape = %dx%d", out.Rows, out.Cols)
	}
	// Hidden activations ReLU'd; the last layer is linear so negatives
	// may appear. Sanity: output must not be all zero.
	nonzero := false
	for _, v := range out.Data {
		if v != 0 {
			nonzero = true
			break
		}
	}
	if !nonzero {
		t.Error("inference produced all zeros")
	}
}

func TestInferPanicsOnShapeMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	w := testWorkload(t, 5, 1, 2)
	sg := w.Batches[0][0]
	feats := tensor.RandomDense(rng, sg.NumNodes(), 7, 1) // wrong feature dim
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	w.Model.Infer(sg, feats)
}

func TestBuildWorkloadConcat(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	d, _ := graph.DatasetByName("ogbl-ddi")
	m := NewGCN(rng, d.InputFeat, d.HiddenFeat, 3)
	w := BuildWorkload(rng, d, m, 2, 8)
	for _, b := range w.Batches {
		if len(b) != 1 {
			t.Fatalf("concat dataset should merge batches, got %d subgraphs", len(b))
		}
	}
	if len(w.Subgraphs()) != 2 {
		t.Errorf("subgraph count = %d", len(w.Subgraphs()))
	}
}

func TestSpMMJobs(t *testing.T) {
	w := testWorkload(t, 7, 2, 4)
	sys := sched.NewSystem(isa.SRAM, isa.DRAM, isa.ReRAM)
	jobs := w.SpMMJobs(predict.Oracle{}, sys)
	if len(jobs) != 8*3 { // 8 subgraphs x 3 layers
		t.Fatalf("jobs = %d, want 24", len(jobs))
	}
	for _, j := range jobs {
		if j.Kind != "spmm" || j.TrueTime == nil {
			t.Fatalf("bad job %v", j)
		}
		for _, tgt := range sys.Targets() {
			p := j.Est[tgt]
			if p.UnitCycles <= 0 || p.RepUnit < 1 || p.LoadBytes <= 0 {
				t.Fatalf("bad profile for %s: %+v", tgt, p)
			}
			// Oracle estimates agree with the simulated truth at the
			// rep-unit allocation up to the shared load terms.
			est := sys.ModelTime(j, tgt, p.RepUnit)
			act := j.TrueTime(sys, tgt, p.RepUnit)
			ratio := float64(est) / float64(act)
			if ratio < 0.5 || ratio > 2 {
				t.Errorf("%s: est/actual = %.2f at rep unit", tgt, ratio)
			}
		}
	}
}

func TestAllJobsKinds(t *testing.T) {
	w := testWorkload(t, 8, 1, 4)
	sys := sched.NewSystem(isa.SRAM, isa.DRAM, isa.ReRAM)
	jobs := w.AllJobs(predict.Oracle{}, sys)
	kinds := map[string]int{}
	ids := map[int]bool{}
	for _, j := range jobs {
		kinds[j.Kind]++
		if ids[j.ID] {
			t.Fatalf("duplicate job id %d", j.ID)
		}
		ids[j.ID] = true
	}
	// 4 subgraphs x 3 layers of each kind.
	if kinds["spmm"] != 12 || kinds["gemm"] != 12 || kinds["vadd"] != 12 {
		t.Errorf("kind counts = %v", kinds)
	}
}

func TestScheduledGNNBatchCompletes(t *testing.T) {
	w := testWorkload(t, 9, 1, 8)
	sys := sched.NewSystem(isa.SRAM, isa.DRAM, isa.ReRAM)
	jobs := w.AllJobs(predict.Oracle{}, sys)
	res := sched.NewGlobal().Schedule(sys, jobs)
	if len(res.Assignments) != len(jobs) {
		t.Fatalf("scheduled %d of %d", len(res.Assignments), len(jobs))
	}
	if res.Makespan <= 0 {
		t.Fatal("bad makespan")
	}
}
