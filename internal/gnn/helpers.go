package gnn

import (
	"mlimp/internal/isa"
	memory "mlimp/internal/mem"
	"mlimp/internal/sched"
)

// mem returns the Table III configuration of a target.
func mem(t isa.Target) memory.Config { return memory.ConfigFor(t) }

// clampArrays bounds a rep-unit to what the system's layer can grant.
func clampArrays(sys *sched.System, t isa.Target, arrays int) int {
	if arrays < 1 {
		return 1
	}
	if l, ok := sys.Layers[t]; ok && arrays > l.Capacity() {
		return l.Capacity()
	}
	return arrays
}
