package gnn

import (
	"math/rand"
	"testing"

	"mlimp/internal/graph"
	"mlimp/internal/tensor"
)

func TestAUCBasics(t *testing.T) {
	// Perfect separation.
	if got := AUC([]float64{1, 2, 3, 4}, []bool{false, false, true, true}); got != 1 {
		t.Errorf("perfect AUC = %v", got)
	}
	// Perfectly inverted.
	if got := AUC([]float64{4, 3, 2, 1}, []bool{false, false, true, true}); got != 0 {
		t.Errorf("inverted AUC = %v", got)
	}
	// All tied: chance.
	if got := AUC([]float64{1, 1, 1, 1}, []bool{true, false, true, false}); got != 0.5 {
		t.Errorf("tied AUC = %v", got)
	}
	// Degenerate inputs.
	if AUC(nil, nil) != 0.5 || AUC([]float64{1}, []bool{true}) != 0.5 {
		t.Error("degenerate AUC should be 0.5")
	}
}

func TestEdgeScore(t *testing.T) {
	emb := tensor.NewDenseFromFloats(2, 3, []float64{1, 0, 2, 0.5, 1, -1})
	if got := EdgeScore(emb, 0, 1).Float(); got != -1.5 {
		t.Errorf("score = %v, want -1.5", got)
	}
	if EdgeScore(emb, 0, 0).Float() != 5 {
		t.Error("self score wrong")
	}
}

func TestSampleLinkExamplesBalance(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := graph.BarabasiAlbert(rng, 300, 4)
	s := graph.NewSampler(rng, g, 2, 0)
	sg := s.Sample(7)
	exs := SampleLinkExamples(rng, sg, 50)
	if len(exs) == 0 {
		t.Fatal("no examples")
	}
	var pos, neg int
	for _, e := range exs {
		if e.U == e.V {
			t.Fatal("self pair sampled")
		}
		if e.Label {
			if sg.Adj.At(e.U, e.V) == 0 {
				t.Fatal("positive example without an edge")
			}
			pos++
		} else {
			if sg.Adj.At(e.U, e.V) != 0 {
				t.Fatal("negative example with an edge")
			}
			neg++
		}
	}
	if pos == 0 || neg == 0 {
		t.Errorf("unbalanced: %d pos, %d neg", pos, neg)
	}
}

func TestSampleLinkExamplesDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := graph.BarabasiAlbert(rng, 10, 2)
	s := graph.NewSampler(rng, g, 1, 1)
	sg := s.Sample(0)
	// Tiny subgraphs may yield no pairs; must not panic.
	_ = SampleLinkExamples(rng, sg, 10)
}

func TestNodeFeaturesDeterministicByGlobalID(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := graph.BarabasiAlbert(rng, 200, 3)
	s := graph.NewSampler(rng, g, 2, 6)
	a := s.Sample(5)
	b := s.Sample(6)
	fa := NodeFeatures(a, 16)
	fb := NodeFeatures(b, 16)
	// A node appearing in both subgraphs gets identical features.
	shared := -1
	var ia, ib int
	for i, u := range a.Nodes {
		for j, v := range b.Nodes {
			if u == v {
				shared, ia, ib = int(u), i, j
				break
			}
		}
		if shared >= 0 {
			break
		}
	}
	if shared < 0 {
		t.Skip("no shared node in this seed")
	}
	for c := 0; c < 16; c++ {
		if fa.At(ia, c) != fb.At(ib, c) {
			t.Fatalf("node %d features differ across subgraphs", shared)
		}
	}
}

func TestLinkPredictionBeatsChance(t *testing.T) {
	// One untrained aggregation step makes neighbouring embeddings
	// similar — a weak but real structural signal (deeper untrained
	// stacks wash it out; trained weights, which this repo does not
	// fit, are what make the ogbl tasks strong). The fixed-point
	// pipeline must preserve it.
	rng := rand.New(rand.NewSource(4))
	d, _ := graph.DatasetByName("ogbl-collab")
	g := d.Generate(rng)
	s := graph.NewSampler(rng, g, 2, 0)
	m := NewGCN(rng, d.InputFeat, d.HiddenFeat, 1)
	var subgraphs []*graph.Subgraph
	for i := 0; i < 6; i++ {
		subgraphs = append(subgraphs, s.Sample(rng.Intn(g.N)))
	}
	fix, flt := QuantizationStudy(rng, m, subgraphs, 40)
	if flt <= 0.52 {
		t.Errorf("float AUC = %.3f, structural signal missing", flt)
	}
	if fix <= 0.52 {
		t.Errorf("fixed AUC = %.3f, quantisation destroyed the signal", fix)
	}
	// The raw-dot scorer must run end to end too (its absolute AUC is
	// magnitude-sensitive and not asserted).
	if raw := EvalLinkAUC(rng, m, subgraphs[:2], 20); raw < 0 || raw > 1 {
		t.Errorf("raw AUC out of range: %v", raw)
	}
}

func TestQuantizationLossSmall(t *testing.T) {
	// The paper: 16-bit fixed-point GNNs lose <1% task quality. Compare
	// the fixed pipeline against the float64 reference with identical
	// weights, subgraphs, and examples (one aggregation layer, where
	// untrained embeddings carry a measurable signal).
	rng := rand.New(rand.NewSource(5))
	d, _ := graph.DatasetByName("ogbl-collab")
	g := d.Generate(rng)
	s := graph.NewSampler(rng, g, 2, 0)
	m := NewGCN(rng, d.InputFeat, d.HiddenFeat, 1)
	var subgraphs []*graph.Subgraph
	for i := 0; i < 5; i++ {
		subgraphs = append(subgraphs, s.Sample(rng.Intn(g.N)))
	}
	fix, flt := QuantizationStudy(rng, m, subgraphs, 40)
	if flt <= 0.52 {
		t.Fatalf("float reference AUC = %.3f, structural signal missing", flt)
	}
	if loss := flt - fix; loss > 0.01 {
		t.Errorf("quantisation AUC loss = %.3f (fixed %.3f vs float %.3f), want < 0.01", loss, fix, flt)
	}
}

func TestInferFloatMatchesShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := graph.BarabasiAlbert(rng, 100, 3)
	s := graph.NewSampler(rng, g, 1, 4)
	sg := s.Sample(3)
	m := NewGCN(rng, 8, 12, 2)
	out := m.InferFloat(sg, NodeFeatures(sg, 8))
	if len(out) != sg.NumNodes() || len(out[0]) != 12 {
		t.Fatalf("float inference shape %dx%d", len(out), len(out[0]))
	}
}
