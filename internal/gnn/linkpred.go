package gnn

import (
	"math/rand"
	"sort"

	"mlimp/internal/fixed"
	"mlimp/internal/graph"
	"mlimp/internal/tensor"
)

// Link prediction: the ogbl-* tasks the paper's GNNs serve. The model
// scores a candidate edge (u, v) by the dot product of the two node
// embeddings produced by the GCN over the query's subgraph — the
// "prediction MLP" of Figure 13's post-processing, reduced to its dot
// kernel. EvalLinkAUC measures how well the fixed-point pipeline
// separates true edges from random non-edges, which is how we verify
// that 16-bit quantisation preserves task quality end to end.

// EdgeScore is the link-prediction score for local node indices u, v of
// an embedding matrix (higher = more likely an edge).
func EdgeScore(emb *tensor.Dense, u, v int) fixed.Num {
	return fixed.Dot(emb.Row(u), emb.Row(v))
}

// LinkExample is one scored candidate.
type LinkExample struct {
	U, V  int
	Label bool // true = real edge
}

// AUC computes the area under the ROC curve of scores against labels by
// the rank statistic (probability a random positive outranks a random
// negative; ties count half).
func AUC(scores []float64, labels []bool) float64 {
	if len(scores) != len(labels) || len(scores) == 0 {
		return 0.5
	}
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return scores[idx[a]] < scores[idx[b]] })
	// Rank positives with midrank for ties.
	var sumRanks float64
	var nPos, nNeg float64
	i := 0
	for i < len(idx) {
		j := i
		for j < len(idx) && scores[idx[j]] == scores[idx[i]] {
			j++
		}
		midrank := float64(i+j-1)/2 + 1
		for k := i; k < j; k++ {
			if labels[idx[k]] {
				sumRanks += midrank
				nPos++
			} else {
				nNeg++
			}
		}
		i = j
	}
	if nPos == 0 || nNeg == 0 {
		return 0.5
	}
	return (sumRanks - nPos*(nPos+1)/2) / (nPos * nNeg)
}

// SampleLinkExamples draws an equal number of positive (real) and
// negative (random non-) edges inside one subgraph, in local indices.
// It returns fewer pairs when the subgraph is too small or dense.
func SampleLinkExamples(rng *rand.Rand, sg *graph.Subgraph, n int) []LinkExample {
	var out []LinkExample
	nodes := sg.NumNodes()
	if nodes < 3 {
		return nil
	}
	// Positives: existing nonzero adjacency entries (excluding self).
	type pair struct{ u, v int }
	var pos []pair
	for u := 0; u < nodes; u++ {
		cols, _ := sg.Adj.RowEntries(u)
		for _, c := range cols {
			if int(c) != u {
				pos = append(pos, pair{u, int(c)})
			}
		}
	}
	if len(pos) == 0 {
		return nil
	}
	for i := 0; i < n && i < len(pos); i++ {
		p := pos[rng.Intn(len(pos))]
		out = append(out, LinkExample{U: p.u, V: p.v, Label: true})
	}
	// Negatives: random pairs with no adjacency entry.
	negWanted := len(out)
	for tries := 0; negWanted > 0 && tries < 50*n; tries++ {
		u, v := rng.Intn(nodes), rng.Intn(nodes)
		if u == v || sg.Adj.At(u, v) != 0 {
			continue
		}
		out = append(out, LinkExample{U: u, V: v, Label: false})
		negWanted--
	}
	return out
}

// EvalLinkAUC runs GCN inference on each subgraph and scores sampled
// link examples, returning the pooled AUC. feats gives the input
// features per subgraph node (generated deterministically from the
// global node id so the same node always has the same features).
func EvalLinkAUC(rng *rand.Rand, m *Model, subgraphs []*graph.Subgraph, examplesPer int) float64 {
	var scores []float64
	var labels []bool
	for _, sg := range subgraphs {
		feats := NodeFeatures(sg, m.Layers[0].In)
		emb := m.Infer(sg, feats)
		for _, ex := range SampleLinkExamples(rng, sg, examplesPer) {
			scores = append(scores, EdgeScore(emb, ex.U, ex.V).Float())
			labels = append(labels, ex.Label)
		}
	}
	return AUC(scores, labels)
}

// NodeFeatures generates deterministic pseudo-features for a subgraph's
// nodes keyed by their global ids, standing in for the datasets' real
// input features (DESIGN.md substitutions).
func NodeFeatures(sg *graph.Subgraph, dim int) *tensor.Dense {
	f := tensor.NewDense(sg.NumNodes(), dim)
	for i, global := range sg.Nodes {
		r := rand.New(rand.NewSource(int64(global)*2654435761 + 12345))
		for c := 0; c < dim; c++ {
			f.Set(i, c, fixed.FromFloat(r.NormFloat64()*0.5))
		}
	}
	return f
}
