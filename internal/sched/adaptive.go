package sched

import (
	"math"
	"slices"

	"mlimp/internal/event"
	"mlimp/internal/isa"
)

// Opts are the shared heuristic parameters of the adaptive and global
// schedulers.
type Opts struct {
	// Epsilon is the acceptable relative gap between queue means (and
	// between the longest job and the mean, for intra-queue adjustment).
	Epsilon float64
	// MaxAdjust bounds the adjustment iterations (the "up to N times" of
	// Algorithms 1 and 2).
	MaxAdjust int
	// MinArrays is the minimum allocation any job may be squeezed to.
	MinArrays int
}

// DefaultOpts mirrors the evaluation setup.
func DefaultOpts() Opts { return Opts{Epsilon: 0.05, MaxAdjust: 64, MinArrays: 1} }

// queueItem is one enqueued job with its planned allocation.
type queueItem struct {
	job    *Job
	arrays int
}

// queues maps each layer to its pending items.
type queues map[isa.Target][]*queueItem

// planAlloc is the allocation the planning stages assume a job will
// receive on layer t: the knee of its execution-time curve, floored by
// the fair share capacity/slots that the dispatcher's expansion will
// grant anyway. Planning with smaller allocations than dispatch grants
// would systematically overestimate queue drains and cause spurious
// migrations.
func planAlloc(sys *System, j *Job, t isa.Target) int {
	l := sys.Layers[t]
	fair := usefulCap(j, t, l.Capacity()/l.Slots)
	knee := sys.KneeAlloc(j, t)
	a := knee
	if fair > a && float64(sys.ModelTime(j, t, fair)) < float64(sys.ModelTime(j, t, knee)) {
		a = fair
	}
	return clampAlloc(sys, t, usefulCap(j, t, a))
}

// partition assigns every job to its best layer at the planned
// allocation. Items live in one arena allocation: the batch-path
// schedulers run per dispatched batch, so per-item heap traffic is the
// fleet benchmarks' dominant allocation source.
func partition(sys *System, jobs []*Job) queues {
	qs := queues{}
	for _, t := range sys.Targets() {
		qs[t] = nil
	}
	arena := make([]queueItem, len(jobs))
	router := &replicaRouter{sys: sys}
	for i, j := range jobs {
		// A job whose stage has a standing replica may route to the
		// replica's layer (the shrunk free set there would otherwise flip
		// its BestTarget away from the very capacity pinned for it), but
		// only while the router's pile-up model says the replicas still
		// beat the job's best pool target.
		bt, btime := sys.BestTarget(j)
		t := router.route(j, bt, btime)
		arena[i] = queueItem{job: j, arrays: planAlloc(sys, j, t)}
		qs[t] = append(qs[t], &arena[i])
	}
	return qs
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// usefulCap bounds an allocation by the job's useful-parallelism limit
// on target t: arrays beyond Profile.MaxUseful add no speedup but still
// block other jobs.
func usefulCap(j *Job, t isa.Target, arrays int) int {
	if p, ok := j.Est[t]; ok && p.MaxUseful > 0 && arrays > p.MaxUseful {
		return p.MaxUseful
	}
	return arrays
}

// clampAlloc bounds an allocation to what the layer can ever grant.
func clampAlloc(sys *System, t isa.Target, arrays int) int {
	if c := sys.Layers[t].Capacity(); arrays > c {
		arrays = c
	}
	if arrays < 1 {
		arrays = 1
	}
	return arrays
}

// queueMean returns the expected drain time of a queue: the summed
// estimated times of its items divided by the layer's parallel slots,
// floored by the longest single item (one job cannot drain faster than
// itself no matter how many slots are idle). This is the "mean execution
// time" Algorithm 1 balances — it reflects how long the queue's jobs
// are and how many wait per slot, so work flows toward idle layers but
// never onto a layer whose single-job time already exceeds the source's
// drain time.
//
// Jobs pinned to the layer's standing replicas drain through the
// replica channels at ReplicaTime, not through the pool slots: counting
// them as pool load (at pool model times, against pool slots) would
// inflate the layer's apparent congestion the moment a replica exists
// and drive Algorithm 1 to evacuate every movable job — the pinned jobs
// themselves cannot migrate, so the balance would converge to the same
// skewed partition at any replica count.
func queueMean(sys *System, t isa.Target, q []*queueItem) float64 {
	if len(q) == 0 {
		return 0
	}
	l := sys.Layers[t]
	var poolSum, repSum, longest float64
	for _, it := range q {
		var v float64
		if rt, ok := sys.replicaTargetFor(it.job); ok && rt == t {
			r := l.replicas[0]
			v = float64(sys.ReplicaTime(it.job.Est[t], t, r.Arrays))
			repSum += v
		} else {
			v = float64(sys.ModelTime(it.job, t, it.arrays))
			poolSum += v
		}
		if v > longest {
			longest = v
		}
	}
	drain := poolSum / float64(l.Slots)
	if n := len(l.replicas); n > 0 {
		if rd := repSum / float64(n); rd > drain {
			drain = rd
		}
	}
	if drain > longest {
		return drain
	}
	return longest
}

// itemMean returns the mean per-item estimated time of a queue.
func itemMean(sys *System, t isa.Target, q []*queueItem) float64 {
	if len(q) == 0 {
		return 0
	}
	var sum float64
	for _, it := range q {
		sum += float64(sys.ModelTime(it.job, t, it.arrays))
	}
	return sum / float64(len(q))
}

// interQueueAdjust is Algorithm 1: balance mean execution times between
// queues by migrating the job with the smallest execution time (in the
// destination memory) out of the fullest queue, while the gap exceeds
// epsilon and migration still improves the balance. Destinations are
// tried in ascending drain order: when the very shortest layer cannot
// profitably take any job (it may simply be much slower for this job
// mix), the next one is tried before giving up.
func interQueueAdjust(sys *System, qs queues, o Opts) {
	type qm struct {
		t isa.Target
		m float64
	}
	ranked := make([]qm, 0, len(qs))
	for iter := 0; iter < o.MaxAdjust; iter++ {
		ranked = ranked[:0]
		for t, q := range qs {
			ranked = append(ranked, qm{t, queueMean(sys, t, q)})
		}
		slices.SortFunc(ranked, func(a, b qm) int {
			if a.m != b.m {
				if a.m < b.m {
					return -1
				}
				return 1
			}
			return int(a.t) - int(b.t)
		})
		maxT, maxMean := ranked[len(ranked)-1].t, ranked[len(ranked)-1].m
		if maxMean == 0 {
			return
		}
		migrated := false
		for _, dst := range ranked[:len(ranked)-1] {
			if (maxMean-dst.m)/maxMean <= o.Epsilon {
				break // remaining destinations are even closer
			}
			if tryMigrate(sys, qs, maxT, dst.t, maxMean) {
				migrated = true
				break
			}
		}
		if !migrated {
			return // migration no longer contributes to improvement
		}
	}
}

// tryMigrate moves the cheapest-in-dst job from src to dst if doing so
// lowers the pairwise maximum drain time, reporting whether it did.
func tryMigrate(sys *System, qs queues, src, dst isa.Target, maxMean float64) bool {
	srcQ := qs[src]
	bestIdx, bestTime := -1, event.Time(math.MaxInt64)
	for i, it := range srcQ {
		if _, ok := it.job.Est[dst]; !ok {
			continue
		}
		if rt, ok := sys.replicaTargetFor(it.job); ok && rt == src {
			continue // pinned to its replicas; the mean does not see them
		}
		m := planAlloc(sys, it.job, dst)
		if tt := sys.ModelTime(it.job, dst, m); tt < bestTime {
			bestTime, bestIdx = tt, i
		}
	}
	if bestIdx < 0 {
		return false
	}
	cand := srcQ[bestIdx]
	newSrc := append(append([]*queueItem(nil), srcQ[:bestIdx]...), srcQ[bestIdx+1:]...)
	moved := &queueItem{job: cand.job, arrays: planAlloc(sys, cand.job, dst)}
	newDst := append(append([]*queueItem(nil), qs[dst]...), moved)
	newMax := math.Max(queueMean(sys, src, newSrc), queueMean(sys, dst, newDst))
	if newMax >= maxMean {
		return false
	}
	qs[src] = newSrc
	qs[dst] = newDst
	return true
}

// layerBacklog estimates how much work remains on layer t right now:
// the estimated times of its waiting items plus the remaining time of
// the in-flight jobs. A flight already past its estimated end has
// revealed that the estimate was wrong; the symmetric-overrun heuristic
// assumes it needs roughly as long again as it has already overrun.
func layerBacklog(sys *System, st *simState, t isa.Target, q []*queueItem) float64 {
	l := sys.Layers[t]
	var sum, repSum, longest float64
	for _, it := range q {
		// Replica-pinned items drain through the replica channels (see
		// queueMean); fold their serialised share into the backlog so a
		// layer with busy replicas still reads as loaded, without
		// charging them against the pool slots.
		if rt, ok := sys.replicaTargetFor(it.job); ok && rt == t {
			repSum += float64(sys.ReplicaTime(it.job.Est[t], t, l.replicas[0].Arrays))
			continue
		}
		v := float64(sys.ModelTime(it.job, t, it.arrays))
		sum += v
		if v > longest {
			longest = v
		}
	}
	for _, f := range st.flying {
		if f.target != t {
			continue
		}
		if f.estEnd > st.now {
			sum += float64(f.estEnd - st.now)
		} else {
			sum += float64(st.now - f.estEnd) // observed overrun continues
		}
	}
	drain := sum / float64(l.Slots)
	if n := len(l.replicas); n > 0 {
		if rd := repSum / float64(n); rd > drain {
			drain = rd
		}
	}
	if drain > longest {
		return drain
	}
	return longest
}

// rebalanceRuntime is the adaptive scheduler's self-adjustment: after
// every completion it re-compares layer backlogs — including observed
// overruns of in-flight jobs — and migrates waiting items from the most
// congested layer to the least, so predictor error is absorbed at
// runtime instead of stretching one queue's tail.
func rebalanceRuntime(sys *System, st *simState, qs queues, o Opts) {
	for iter := 0; iter < o.MaxAdjust; iter++ {
		var maxT, minT isa.Target
		maxB, minB := math.Inf(-1), math.Inf(1)
		for _, t := range sys.Targets() { // canonical order: determinism
			b := layerBacklog(sys, st, t, qs[t])
			if b > maxB {
				maxB, maxT = b, t
			}
			if b < minB {
				minB, minT = b, t
			}
		}
		if maxB == 0 || maxT == minT || (maxB-minB)/maxB <= o.Epsilon {
			return
		}
		srcQ := qs[maxT]
		bestIdx, bestTime := -1, event.Time(math.MaxInt64)
		for i, it := range srcQ {
			if _, ok := it.job.Est[minT]; !ok {
				continue
			}
			if rt, ok := sys.replicaTargetFor(it.job); ok && rt == maxT {
				continue // pinned to its replicas; the backlog does not see them
			}
			m := planAlloc(sys, it.job, minT)
			if tt := sys.ModelTime(it.job, minT, m); tt < bestTime {
				bestTime, bestIdx = tt, i
			}
		}
		if bestIdx < 0 {
			return
		}
		// Keep the migration only if it narrows the backlog gap; the
		// migrated job cannot finish faster than its own time there.
		newDst := minB + float64(bestTime)/float64(sys.Layers[minT].Slots)
		if bt := float64(bestTime); bt > newDst {
			newDst = bt
		}
		if newDst >= maxB {
			return
		}
		cand := srcQ[bestIdx]
		qs[maxT] = append(srcQ[:bestIdx], srcQ[bestIdx+1:]...)
		qs[minT] = append(qs[minT], &queueItem{
			job: cand.job, arrays: planAlloc(sys, cand.job, minT)})
	}
}

// Adaptive is the local adaptive scheduler of Section III-C4: per-layer
// queues balanced by inter-queue adjustment, greedy dispatch that gives
// priority to larger jobs, and opportunistic use of remainder resources
// for jobs that can finish before the in-flight ones.
type Adaptive struct {
	Opts Opts
}

// NewAdaptive returns an adaptive scheduler with default options.
func NewAdaptive() *Adaptive { return &Adaptive{Opts: DefaultOpts()} }

// Name implements Scheduler.
func (a *Adaptive) Name() string { return "adaptive" }

// Schedule implements Scheduler.
func (a *Adaptive) Schedule(sys *System, jobs []*Job) *Result {
	sys.EnsureReplicas(jobs)
	qs := partition(sys, jobs)
	interQueueAdjust(sys, qs, a.Opts)
	return dispatchWith(sys, qs, jobs, dispatchOpts{opportunistic: true, expand: true, rebalance: &a.Opts})
}

// dispatchOpts selects dispatch behaviour: opportunistic remainder fill
// (the adaptive scheduler), allocation expansion to fill idle capacity
// (the global scheduler's "fully utilize the resources" planning), and
// estMode (charge estimated instead of actual durations).
type dispatchOpts struct {
	opportunistic bool
	expand        bool
	estMode       bool
	// rebalance re-runs the inter-queue adjustment on the waiting items
	// after every completion — the runtime self-adjustment that lets the
	// adaptive scheduler absorb predictor error: a layer whose jobs run
	// longer than estimated keeps a deep queue, and the rebalance drains
	// it toward idle layers.
	rebalance *Opts
}

// dispatchWith executes per-layer queues greedily under the given
// behaviour flags. The original job slice rides along so the simulation
// state derives tenant pools in deterministic (submission) order.
func dispatchWith(sys *System, qs queues, jobs []*Job, o dispatchOpts) *Result {
	st := newSim(sys, jobs)
	st.estMode = o.estMode
	// Sort every queue descending by estimated time (larger jobs first).
	for _, t := range sys.Targets() {
		t, q := t, qs[t]
		slices.SortStableFunc(q, func(a, b *queueItem) int {
			ta, tb := sys.ModelTime(a.job, t, a.arrays), sys.ModelTime(b.job, t, b.arrays)
			switch {
			case ta > tb:
				return -1
			case ta < tb:
				return 1
			}
			return 0
		})
	}
	pending := 0
	for _, q := range qs {
		pending += len(q)
	}
	for pending > 0 || st.flying.Len() > 0 {
		for _, t := range sys.Targets() { // canonical order: determinism
			q := qs[t]
			remaining := q[:0]
			waiting := len(q)
			for _, it := range q {
				// Expand the grant when capacity would otherwise idle:
				// the global scheduler "adjusts the allocation size in
				// each queue to fully utilize the resources", and idle
				// arrays are pure waste under the monotone model.
				grant := minInt(it.arrays, st.maxGrant(t, it.job.Tenant))
				ff := st.freeFor(t, it.job.Tenant)
				if usable := minInt(st.slots[t], waiting); o.expand && usable > 0 {
					// Expand only when the model agrees it helps: the
					// curve is not guaranteed monotone once replication
					// copy costs enter t_ld, and arrays beyond the
					// useful-parallelism cap are wasted.
					fair := usefulCap(it.job, t, ff/usable)
					if fair > grant &&
						sys.ModelTime(it.job, t, fair) < sys.ModelTime(it.job, t, grant) {
						grant = fair
					}
				}
				// A free stage replica takes the job without touching the
				// pool or a slot — unless the pool's grant would beat it;
				// fall through to pool placement when all replicas are
				// busy.
				if st.placeReplica(it.job, t, grant) {
					pending--
					waiting--
					continue
				}
				switch {
				case st.canPlace(t, grant, it.job.Tenant):
					st.place(it.job, t, grant)
					pending--
					waiting--
				case o.opportunistic && st.slots[t] > 0 && ff > 0:
					// Remainder fill: run early with whatever is free if
					// that still beats waiting for the next completion.
					if end, ok := st.earliestEnd(t); ok {
						rem := ff
						if st.now+sys.ModelTime(it.job, t, rem) < end {
							st.place(it.job, t, rem)
							pending--
							waiting--
							continue
						}
					}
					remaining = append(remaining, it)
				default:
					remaining = append(remaining, it)
				}
			}
			qs[t] = remaining
		}
		progressed := st.advance()
		if progressed && o.rebalance != nil && pending > 0 {
			rebalanceRuntime(sys, st, qs, *o.rebalance)
		}
		if !progressed && pending > 0 {
			// No progress possible with planned allocations: shrink the
			// head of each stuck queue to the free capacity.
			stuck := true
			for _, t := range sys.Targets() {
				q := qs[t]
				if len(q) == 0 {
					continue
				}
				if ff := st.freeFor(t, q[0].job.Tenant); st.slots[t] > 0 && ff > 0 {
					q[0].arrays = ff
					stuck = false
				}
			}
			if stuck {
				panic("sched: dispatch deadlock")
			}
		}
	}
	return st.result
}
