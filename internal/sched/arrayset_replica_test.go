package sched

import (
	"testing"

	"mlimp/internal/isa"
)

// TestArraySetReplicaOpsUnderDegrade drives the replica carve/reclaim
// path through a degrade/restore storm and checks the ArraySet
// invariants the scheduler depends on at every step: replica sets stay
// disjoint from the free set and from each other, no array ID is ever
// duplicated or lost, and the memo signature moves whenever the
// free/replica partition does.
func TestArraySetReplicaOpsUnderDegrade(t *testing.T) {
	sys := fullSystem()
	sys.Replication = ReplicateWhenIdle
	jobs := stagedBatch(8)
	sys.EnsureReplicas(jobs)
	l := sys.Layers[isa.ReRAM]
	if len(l.replicas) == 0 {
		t.Fatal("no replicas to exercise")
	}
	healthy := sys.HealthyCapacity(isa.ReRAM)

	check := func(step string) {
		t.Helper()
		free := l.Avail()
		total := free.Count() + sys.Lost(isa.ReRAM)
		for i, r := range sys.Replicas(isa.ReRAM) {
			total += r.Set.Count()
			if free.Intersects(r.Set) {
				t.Fatalf("%s: replica %d intersects the free set", step, i)
			}
			if r.Set.Count() != r.Arrays {
				t.Fatalf("%s: replica %d set holds %d arrays, header says %d",
					step, i, r.Set.Count(), r.Arrays)
			}
			for k, o := range sys.Replicas(isa.ReRAM) {
				if k > i && r.Set.Intersects(o.Set) {
					t.Fatalf("%s: replicas %d and %d intersect", step, i, k)
				}
			}
		}
		if total != healthy {
			t.Fatalf("%s: free+lost+replicas = %d arrays, want %d", step, total, healthy)
		}
	}
	check("after carve")

	// Degrade reclaims replicas first; the carve/teardown churn must
	// conserve IDs and keep the signature moving.
	sigs := map[uint64]bool{l.sig: true}
	for i := 0; i < 6; i++ {
		sys.Degrade(isa.ReRAM, 64)
		check("after degrade")
		if sigs[l.sig] {
			t.Fatalf("degrade %d reused an old signature", i)
		}
		sigs[l.sig] = true
		// While degraded, the free set still supports the carve ops the
		// scheduler performs: TakeLowest/TakeHighest splits stay within
		// the set and Add restores them exactly.
		free := l.Avail()
		before := free.Signature()
		lo := free.TakeLowest(min(7, free.Count()-1))
		hi := free.TakeHighest(min(5, free.Count()-1))
		if lo.Intersects(hi) || lo.Intersects(free) || hi.Intersects(free) {
			t.Fatal("take results overlap")
		}
		free.Add(lo)
		free.Add(hi)
		if free.Signature() != before {
			t.Fatal("take/add round-trip changed the set")
		}
	}
	for i := 0; i < 6; i++ {
		sys.Restore(isa.ReRAM, 64)
		check("after restore")
	}
	if sys.Lost(isa.ReRAM) != 0 {
		t.Fatalf("still %d arrays lost after full restore", sys.Lost(isa.ReRAM))
	}
	// Full restore rebuilds the standing replicas (the repWant contract).
	if sys.ReplicaCount() == 0 {
		t.Error("replicas not rebuilt after full restore")
	}
	check("after rebuild")
}

// FuzzArraySetOps fuzzes the span algebra against a bitmap model: a
// byte script drives TakeLowest/TakeHighest/Add/Intersects/Contains on
// a 256-array universe, and every step cross-checks counts, membership
// and the canonical signature against the model.
func FuzzArraySetOps(f *testing.F) {
	f.Add([]byte{0x01, 0x43, 0x82, 0x10, 0xc5})
	f.Add([]byte{0x00, 0x00, 0xff, 0xff, 0x40, 0x81})
	f.Add([]byte{0x21, 0x62, 0xa3, 0xe4, 0x05, 0x46, 0x87})
	f.Fuzz(func(t *testing.T, script []byte) {
		const universe = 256
		free := NewRange(0, universe)
		inFree := make([]bool, universe)
		for i := range inFree {
			inFree[i] = true
		}
		var taken []ArraySet

		model := func() ArraySet {
			// Rebuild the canonical set from the bitmap; Signature on
			// both must agree if the spans are normalised.
			var m ArraySet
			for i := 0; i < universe; i++ {
				if inFree[i] {
					m.Add(NewRange(i, i+1))
				}
			}
			return m
		}
		for _, op := range script {
			n := int(op&0x3f) + 1
			switch {
			case op>>6 == 0: // take lowest n
				if n >= free.Count() {
					continue
				}
				got := free.TakeLowest(n)
				if got.Count() != n {
					t.Fatalf("TakeLowest(%d) returned %d arrays", n, got.Count())
				}
				markTaken(t, inFree, got)
				taken = append(taken, got)
			case op>>6 == 1: // take highest n
				if n >= free.Count() {
					continue
				}
				got := free.TakeHighest(n)
				if got.Count() != n {
					t.Fatalf("TakeHighest(%d) returned %d arrays", n, got.Count())
				}
				markTaken(t, inFree, got)
				taken = append(taken, got)
			case op>>6 == 2: // add the oldest taken set back
				if len(taken) == 0 {
					continue
				}
				back := taken[0]
				taken = taken[1:]
				free.Add(back)
				for _, s := range back.Spans() {
					for i := s.Lo; i < s.Hi; i++ {
						if inFree[i] {
							t.Fatalf("Add returned id %d that was never taken", i)
						}
						inFree[i] = true
					}
				}
			default: // cross-check set algebra on current state
				for i, a := range taken {
					if free.Intersects(a) {
						t.Fatalf("taken set %d intersects free", i)
					}
					if a.Count() > 0 && !a.Contains(a.Clone()) {
						t.Fatalf("taken set %d does not contain itself", i)
					}
				}
			}
			m := model()
			if m.Count() != free.Count() {
				t.Fatalf("free count %d, model %d", free.Count(), m.Count())
			}
			if m.Signature() != free.Signature() {
				t.Fatalf("free signature diverged from canonical model (free=%v model=%v)", free, m)
			}
			if !m.Empty() && !free.Contains(m) {
				t.Fatal("free does not contain its own model")
			}
		}
	})
}

// markTaken flips the taken IDs out of the bitmap, failing on any ID
// that was not free.
func markTaken(t *testing.T, inFree []bool, got ArraySet) {
	t.Helper()
	for _, s := range got.Spans() {
		for i := s.Lo; i < s.Hi; i++ {
			if !inFree[i] {
				t.Fatalf("took id %d twice", i)
			}
			inFree[i] = false
		}
	}
}
