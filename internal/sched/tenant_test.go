package sched

import (
	"fmt"
	"math/rand"
	"testing"

	"mlimp/internal/isa"
)

// TestDegradeRestoreRoundTripsIDs: Degrade names the highest in-service
// IDs, stacks repeated degradations LIFO, and Restore returns exactly
// the IDs that were lost — the array-granular fault contract.
func TestDegradeRestoreRoundTripsIDs(t *testing.T) {
	sys := NewSystem(isa.Targets...)
	l := sys.Layers[isa.SRAM]
	cap0 := l.Capacity()
	sig0 := l.sig

	if got := sys.Degrade(isa.SRAM, 100); got != 100 {
		t.Fatalf("Degrade removed %d, want 100", got)
	}
	if want := NewRange(cap0-100, cap0); sys.DegradedIDs(isa.SRAM).String() != want.String() {
		t.Errorf("first degrade IDs = %v, want %v", sys.DegradedIDs(isa.SRAM), want)
	}
	if got := sys.Degrade(isa.SRAM, 50); got != 50 {
		t.Fatalf("second Degrade removed %d, want 50", got)
	}
	if want := NewRange(cap0-150, cap0); sys.DegradedIDs(isa.SRAM).String() != want.String() {
		t.Errorf("stacked degrade IDs = %v, want %v", sys.DegradedIDs(isa.SRAM), want)
	}
	if sys.Lost(isa.SRAM) != 150 || l.Capacity() != cap0-150 {
		t.Fatalf("lost=%d capacity=%d", sys.Lost(isa.SRAM), l.Capacity())
	}

	// Restore pops LIFO: the 50 most recently failed IDs come back first.
	if got := sys.Restore(isa.SRAM, 50); got != 50 {
		t.Fatalf("Restore returned %d, want 50", got)
	}
	if want := NewRange(cap0-150, cap0-100); !l.Avail().Contains(want) {
		t.Errorf("restored IDs %v not back in service; avail=%v", want, l.Avail())
	}
	if want := NewRange(cap0-100, cap0); sys.DegradedIDs(isa.SRAM).String() != want.String() {
		t.Errorf("after partial restore, lost IDs = %v, want %v", sys.DegradedIDs(isa.SRAM), want)
	}
	// Full restore reproduces the healthy set exactly, signature included.
	if got := sys.Restore(isa.SRAM, 1000); got != 100 {
		t.Fatalf("final Restore returned %d, want 100", got)
	}
	if l.Capacity() != cap0 || l.sig != sig0 {
		t.Errorf("round trip: capacity=%d sig=%#x, want %d %#x", l.Capacity(), l.sig, cap0, sig0)
	}
	if !sys.DegradedIDs(isa.SRAM).Empty() || sys.Lost(isa.SRAM) != 0 {
		t.Errorf("round trip left lost state: %v", sys.DegradedIDs(isa.SRAM))
	}
}

// Partial restore across a stacked Degrade must split the top set and
// still round-trip the remainder.
func TestRestoreSplitsStackedSet(t *testing.T) {
	sys := NewSystem(isa.SRAM)
	l := sys.Layers[isa.SRAM]
	cap0 := l.Capacity()
	sys.Degrade(isa.SRAM, 40)
	if got := sys.Restore(isa.SRAM, 15); got != 15 {
		t.Fatalf("partial restore returned %d", got)
	}
	// The 15 highest of the lost 40 come back (LIFO within the set).
	if want := NewRange(cap0-40, cap0-15); sys.DegradedIDs(isa.SRAM).String() != want.String() {
		t.Errorf("remaining lost = %v, want %v", sys.DegradedIDs(isa.SRAM), want)
	}
	if got := sys.Restore(isa.SRAM, 25); got != 25 {
		t.Fatalf("remainder restore returned %d", got)
	}
	if sys.Lost(isa.SRAM) != 0 || l.Capacity() != cap0 {
		t.Errorf("lost=%d capacity=%d after full restore", sys.Lost(isa.SRAM), l.Capacity())
	}
}

func TestPackingByName(t *testing.T) {
	for _, name := range PackingNames() {
		p, ok := PackingByName(name)
		if !ok || p.String() != name {
			t.Errorf("PackingByName(%q) = %v, %v", name, p, ok)
		}
	}
	if _, ok := PackingByName("round-robin"); ok {
		t.Error("unknown packing name should not resolve")
	}
}

// tenantJobs builds n jobs tagged round-robin across k tenants.
func tenantJobs(rng *rand.Rand, sys *System, n, k int) []*Job {
	jobs := chaosJobs(rng, sys, n)
	for i, j := range jobs {
		j.Tenant = fmt.Sprintf("t%d", i%k)
	}
	return jobs
}

// checkIsolation asserts the hard invariant: no array is ever held by
// two tenants at once — any pair of time-overlapping assignments from
// different tenants on one target must have disjoint array IDs. It also
// checks each assignment's ID set matches its array count.
func checkIsolation(t *testing.T, res *Result) {
	t.Helper()
	for i, a := range res.Assignments {
		if a.ArrayIDs.Count() != a.Arrays {
			t.Fatalf("assignment %d: %d arrays but IDs %v", i, a.Arrays, a.ArrayIDs)
		}
		for _, b := range res.Assignments[i+1:] {
			if a.Target != b.Target || a.Tenant == b.Tenant {
				continue
			}
			if a.Start < b.End && b.Start < a.End && a.ArrayIDs.Intersects(b.ArrayIDs) {
				t.Fatalf("isolation violated on %s: tenant %s %v overlaps tenant %s %v",
					a.Target, a.Tenant, a.ArrayIDs, b.Tenant, b.ArrayIDs)
			}
		}
	}
}

// TestMultiTenantIsolationAllPackings runs every scheduler x packing
// combination over randomly degraded systems and asserts completion,
// conservation, and the isolation invariant.
func TestMultiTenantIsolationAllPackings(t *testing.T) {
	scheds := []Scheduler{LJF{}, NewAdaptive(), NewGlobal()}
	packings := []Packing{PackFirstFit, PackPartitioned, PackWeightedFair}
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 12; trial++ {
		sys := chaosSystem(rng)
		jobs := tenantJobs(rng, sys, 1+rng.Intn(30), 1+rng.Intn(4))
		for _, p := range packings {
			sys.Packing = p
			for _, sc := range scheds {
				res := sc.Schedule(sys, jobs)
				if len(res.Assignments) != len(jobs) {
					t.Fatalf("trial %d %s/%v: completed %d of %d jobs",
						trial, sc.Name(), p, len(res.Assignments), len(jobs))
				}
				checkIsolation(t, res)
				verifyNoOverlapOvercommit(t, sys, res)
			}
		}
	}
}

// Under partitioned packing, tenants must be disjoint even across time:
// each tenant's assignments stay inside a private contiguous region.
func TestPartitionedTenantsFullyDisjoint(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	sys := NewSystem(isa.Targets...)
	sys.Packing = PackPartitioned
	jobs := tenantJobs(rng, sys, 24, 3)
	for _, sc := range []Scheduler{LJF{}, NewAdaptive(), NewGlobal()} {
		res := sc.Schedule(sys, jobs)
		// owner[target][id] = tenant; a tenant re-holding its own arrays
		// across time is fine, any cross-tenant claim is not.
		owner := map[isa.Target]map[int]string{}
		for _, a := range res.Assignments {
			if owner[a.Target] == nil {
				owner[a.Target] = map[int]string{}
			}
			for _, s := range a.ArrayIDs.Spans() {
				for id := s.Lo; id < s.Hi; id++ {
					if prev, ok := owner[a.Target][id]; ok && prev != a.Tenant {
						t.Fatalf("%s: %s: array %d held by both %s and %s",
							sc.Name(), a.Target, id, prev, a.Tenant)
					}
					owner[a.Target][id] = a.Tenant
				}
			}
		}
	}
}

// Untenanted batches must schedule identically under every packing
// policy: the single-tenant fast path never consults tenant machinery.
func TestSingleTenantPackingEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 6; trial++ {
		seedSys := chaosSystem(rng)
		jobs := chaosJobs(rng, seedSys, 1+rng.Intn(20))
		for _, sc := range []Scheduler{LJF{}, NewAdaptive(), NewGlobal()} {
			var base *Result
			for _, p := range []Packing{PackFirstFit, PackPartitioned, PackWeightedFair} {
				seedSys.Packing = p
				res := sc.Schedule(seedSys, jobs)
				if base == nil {
					base = res
					continue
				}
				if res.Makespan != base.Makespan || len(res.Assignments) != len(base.Assignments) {
					t.Fatalf("trial %d %s: packing %v diverged: makespan %v vs %v",
						trial, sc.Name(), p, res.Makespan, base.Makespan)
				}
				for i := range res.Assignments {
					a, b := res.Assignments[i], base.Assignments[i]
					if a.Job != b.Job || a.Target != b.Target || a.Arrays != b.Arrays ||
						a.Start != b.Start || a.End != b.End {
						t.Fatalf("trial %d %s: packing %v assignment %d diverged", trial, sc.Name(), p, i)
					}
				}
			}
		}
	}
}

// TenantsTouching identifies exactly the tenants whose assignments
// overlap a decommissioned ID range.
func TestTenantsTouching(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	sys := NewSystem(isa.Targets...)
	sys.Packing = PackPartitioned
	jobs := tenantJobs(rng, sys, 12, 3)
	res := NewGlobal().Schedule(sys, jobs)
	cap0 := sys.Layers[isa.SRAM].Capacity()
	failed := NewRange(cap0-64, cap0)
	got := map[string]bool{}
	for _, name := range res.TenantsTouching(isa.SRAM, failed) {
		got[name] = true
	}
	want := map[string]bool{}
	for _, a := range res.Assignments {
		if a.Target == isa.SRAM && a.ArrayIDs.Intersects(failed) {
			want[a.Tenant] = true
		}
	}
	if len(got) != len(want) {
		t.Fatalf("TenantsTouching = %v, want %v", got, want)
	}
	for name := range want {
		if !got[name] {
			t.Errorf("missing tenant %s", name)
		}
	}
}
