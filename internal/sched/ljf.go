package sched

import (
	"math"

	"mlimp/internal/event"
	"mlimp/internal/isa"
)

// LJF is the Longest-Job-First baseline of Section III-C2: one queue in
// descending order of the (shortest per-memory) estimated time, a fixed
// allocation a_unit = capacity / P per layer, and head-of-queue dispatch
// to the best-performing memory.
//
// Strict selects the Figure 16 "naive" variant that always waits for the
// globally best memory; the default dispatches to the best *available*
// memory when the best one is saturated.
type LJF struct {
	Strict bool
}

// Name implements Scheduler.
func (l LJF) Name() string {
	if l.Strict {
		return "naive-ljf"
	}
	return "ljf"
}

// aUnit returns the fixed LJF allocation for a layer: max_size / P.
func aUnit(sys *System, t isa.Target) int {
	layer := sys.Layers[t]
	u := layer.Capacity() / layer.Slots
	if u < 1 {
		u = 1
	}
	return u
}

// ljfGrant clamps the fixed unit allocation to what the job's tenant
// can ever hold on t (multi-tenant packing caps), flooring at one.
func ljfGrant(sys *System, st *simState, j *Job, t isa.Target) int {
	g := minInt(aUnit(sys, t), st.maxGrant(t, j.Tenant))
	if g < 1 {
		g = 1
	}
	return g
}

// estAtUnit returns the estimated time of j on t at the fixed unit
// allocation.
func estAtUnit(sys *System, j *Job, t isa.Target) event.Time {
	if _, ok := j.Est[t]; !ok {
		return math.MaxInt64
	}
	return sys.ModelTime(j, t, aUnit(sys, t))
}

// Schedule implements Scheduler.
func (l LJF) Schedule(sys *System, jobs []*Job) *Result {
	sys.EnsureReplicas(jobs)
	st := newSim(sys, jobs)
	// Single queue, descending estimated time (the descending order of
	// the shortest execution time across memories).
	queue := make([]*Job, len(jobs))
	copy(queue, jobs)
	best := map[int]isa.Target{}
	estKey := map[int]event.Time{}
	router := &replicaRouter{sys: sys}
	for _, j := range queue {
		bt, bv := isa.Target(0), event.Time(math.MaxInt64)
		for _, t := range sys.Targets() {
			if v := estAtUnit(sys, j, t); v < bv {
				bv, bt = v, t
			}
		}
		// Stage jobs route to their standing replicas while the router's
		// pile-up model says the replicas still beat the pool.
		best[j.ID] = router.route(j, bt, bv)
		estKey[j.ID] = bv
	}
	sortStableByKeyDesc(queue, estKey)

	for len(queue) > 0 || st.flying.Len() > 0 {
		progressed := true
		for progressed && len(queue) > 0 {
			progressed = false
			j := queue[0]
			if st.placeReplica(j, best[j.ID], ljfGrant(sys, st, j, best[j.ID])) {
				queue = queue[1:]
				progressed = true
				continue
			}
			if t, ok := l.pick(sys, st, j, best[j.ID]); ok {
				st.place(j, t, ljfGrant(sys, st, j, t))
				queue = queue[1:]
				progressed = true
			}
		}
		if !st.advance() && len(queue) > 0 {
			panic("sched: ljf deadlock") // cannot happen: aUnit always fits an idle layer
		}
	}
	return st.result
}

// pick chooses where to run the head job now, if anywhere.
func (l LJF) pick(sys *System, st *simState, j *Job, bestT isa.Target) (isa.Target, bool) {
	if st.canPlace(bestT, ljfGrant(sys, st, j, bestT), j.Tenant) {
		return bestT, true
	}
	if l.Strict {
		return 0, false // naive: wait for the best memory
	}
	bv := event.Time(math.MaxInt64)
	var bt isa.Target
	found := false
	for _, t := range sys.Targets() {
		if !st.canPlace(t, ljfGrant(sys, st, j, t), j.Tenant) {
			continue
		}
		if v := estAtUnit(sys, j, t); v < bv {
			bv, bt, found = v, t, true
		}
	}
	return bt, found
}

func sortStableByKeyDesc(jobs []*Job, key map[int]event.Time) {
	// Insertion-stable sort on the precomputed key.
	for i := 1; i < len(jobs); i++ {
		for k := i; k > 0 && key[jobs[k].ID] > key[jobs[k-1].ID]; k-- {
			jobs[k], jobs[k-1] = jobs[k-1], jobs[k]
		}
	}
}
