package sched

import (
	"fmt"
	"math"

	"mlimp/internal/event"
	"mlimp/internal/isa"
)

// Replicate-when-idle (ROADMAP item 3, after LRMP). A bottleneck stage —
// the (stage, layer) group with the largest aggregate modelled time —
// serialises every job that crosses it while neighbouring arrays idle.
// When the policy is on, the scheduler carves standing replicas of that
// stage out of the layer's free list: each replica keeps the stage's
// stationary working set programmed, so independent jobs fan across the
// replicas and skip the per-invocation load/reprogram traffic entirely.
// Replicas are System-level state, not per-batch state: weights stay
// programmed across Schedule calls (the serving-reuse point), are torn
// down first when Degrade shrinks the layer, and are re-carved when
// Restore brings the capacity back.
//
// The replica arrays leave the layer's free set, so every memoised
// quantity keyed on the free-set signature (knee allocations, plan
// times) re-keys automatically; refreshSig additionally mixes the
// replica sets into the signature so two configurations with equal free
// sets but different replicas can never share a memo entry.

// ReplicationPolicy selects whether the scheduler may turn idle arrays
// into standing stage replicas.
type ReplicationPolicy uint8

// Replication policies.
const (
	ReplicateOff ReplicationPolicy = iota
	ReplicateWhenIdle
	numReplications
)

// String names the policy.
func (p ReplicationPolicy) String() string {
	switch p {
	case ReplicateOff:
		return "off"
	case ReplicateWhenIdle:
		return "when-idle"
	}
	return fmt.Sprintf("replication(%d)", uint8(p))
}

// ReplicationNames lists the policy names in declaration order.
func ReplicationNames() []string {
	out := make([]string, 0, int(numReplications))
	for p := ReplicationPolicy(0); p < numReplications; p++ {
		out = append(out, p.String())
	}
	return out
}

// ReplicationByName resolves a policy name.
func ReplicationByName(name string) (ReplicationPolicy, bool) {
	for p := ReplicationPolicy(0); p < numReplications; p++ {
		if p.String() == name {
			return p, true
		}
	}
	return ReplicateOff, false
}

// Replica is one standing copy of a bottleneck stage: a pinned array
// set holding the stage's stationary operands, serving matching jobs
// one at a time without drawing on the layer's pool or slots.
type Replica struct {
	Stage  string
	Prof   Profile // the stage profile the replica was sized for
	Arrays int
	Set    ArraySet // the physical arrays pinned
}

// repSpec remembers the replica configuration a Degrade tore down so
// Restore can rebuild it (the "reclaimed first, rebuilt on Restore"
// contract).
type repSpec struct {
	stage  string
	prof   Profile
	arrays int
	count  int
}

// refreshSig recomputes the layer's memo signature from the free set
// and the pinned replica sets.
func (l *Layer) refreshSig() {
	sig := l.avail.Signature()
	for _, r := range l.replicas {
		sig = sig*1099511628211 ^ r.Set.Signature()
	}
	l.sig = sig
}

// Replicas returns a copy of the standing replicas on layer t.
func (s *System) Replicas(t isa.Target) []Replica {
	l, ok := s.Layers[t]
	if !ok || len(l.replicas) == 0 {
		return nil
	}
	return append([]Replica(nil), l.replicas...)
}

// ReplicaCount returns the number of standing replicas across layers.
func (s *System) ReplicaCount() int {
	n := 0
	for _, l := range s.Layers {
		n += len(l.replicas)
	}
	return n
}

// replicaPin returns the layer currently holding replicas, if any; the
// policy pins at most one stage at a time.
func (s *System) replicaPin() (isa.Target, Replica, bool) {
	for _, t := range s.Targets() {
		if l := s.Layers[t]; len(l.replicas) > 0 {
			return t, l.replicas[0], true
		}
	}
	return 0, Replica{}, false
}

// replicaTargetFor returns the layer holding a standing replica of j's
// stage, if the job can run there — the routing override that keeps
// stage jobs flowing to their replicas even when the shrunk free set
// would flip their BestTarget elsewhere.
func (s *System) replicaTargetFor(j *Job) (isa.Target, bool) {
	if j.Stage == "" {
		return 0, false
	}
	for _, t := range s.Targets() {
		l := s.Layers[t]
		if len(l.replicas) > 0 && l.replicas[0].Stage == j.Stage {
			if _, ok := j.Est[t]; ok {
				return t, true
			}
		}
	}
	return 0, false
}

// replicaRouter decides, job by job, whether a pinned stage's job
// queues on the replica layer or stays on its best pool target. The
// k-th job sent to the replicas expects to wait ceil(k/replicas) serial
// replica invocations, so diversion stops exactly when that pile-up
// would exceed the job's best pool time — the replicas absorb the
// stage's serialisation without dragging the whole stage onto one layer
// and starving the balanced partition (jobs already bound for the
// replica layer count toward the pile-up but are never displaced).
type replicaRouter struct {
	sys    *System
	routed int
}

// route returns the layer job j should queue on, given its best pool
// target and the modelled time there.
func (r *replicaRouter) route(j *Job, bt isa.Target, btime event.Time) isa.Target {
	rt, ok := r.sys.replicaTargetFor(j)
	if !ok {
		return bt
	}
	l := r.sys.Layers[rt]
	rep := l.replicas[0]
	wave := event.Time(r.routed/len(l.replicas) + 1)
	if rt == bt || wave*r.sys.ReplicaTime(j.Est[rt], rt, rep.Arrays) < btime {
		r.routed++
		return rt
	}
	return bt
}

// ReplicaTime models one job invocation on a standing replica: the
// stage's stationary operands are already programmed, so the
// per-invocation load stream, ReRAM reprogramming, and replication copy
// rounds all vanish — only the launch overhead, the result store, and
// the compute term remain. Deterministic and model-driven on both the
// planning and execution paths, so estimates on replicas are exact.
func (s *System) ReplicaTime(p Profile, t isa.Target, arrays int) event.Time {
	l := s.Layers[t]
	beta := p.Beta
	if beta == 0 {
		beta = DefaultBeta
	}
	repUnit := p.RepUnit
	if repUnit < 1 {
		repUnit = 1
	}
	eff := arrays
	if p.MaxUseful > 0 && eff > p.MaxUseful {
		eff = p.MaxUseful
	}
	scale := math.Pow(float64(repUnit)/float64(eff), beta)
	ld := p.Overhead + s.DDR.StreamTime(p.StoreBytes)
	return ld + event.Time(float64(l.Cfg.Clock().Cycles(p.UnitCycles))*scale)
}

// replicaBudget returns how many arrays of a layer's current capacity
// may be pinned into replicas: everything above the reserve of half the
// in-service arrays, which stays free so regular placement (and every
// tenant's packing share) remains schedulable. This is the "when idle"
// in the policy name — replication only ever consumes spare capacity.
func replicaBudget(capacity int) int {
	return capacity - (capacity+1)/2
}

// EnsureReplicas plans the standing replicas for a batch. Under
// ReplicateOff it tears any replicas down; under ReplicateWhenIdle it
// keeps the current pin while the batch still has at least two jobs of
// the pinned stage (weights stay programmed between batches), and
// otherwise re-plans: the bottleneck (stage, layer) group — the largest
// aggregate knee-allocation model time with at least two independent
// jobs — gets as many knee-sized replicas as the idle budget affords.
func (s *System) EnsureReplicas(jobs []*Job) {
	if s.Replication != ReplicateWhenIdle {
		s.DropReplicas()
		return
	}
	if t, r, ok := s.replicaPin(); ok {
		n := 0
		for _, j := range jobs {
			if j.Stage == r.Stage {
				if _, ok := j.Est[t]; ok {
					n++
				}
			}
		}
		if n >= 2 {
			return
		}
		s.DropReplicas()
	}
	stage, t, prof, count := s.bottleneckStage(jobs)
	if count < 2 {
		return
	}
	l := s.Layers[t]
	arrays := s.kneeForProfile(prof, t)
	if arrays < 1 {
		arrays = 1
	}
	n := replicaBudget(l.Capacity()) / arrays
	if n > count {
		n = count
	}
	if n < 1 {
		return
	}
	for i := 0; i < n; i++ {
		l.replicas = append(l.replicas, Replica{
			Stage: stage, Prof: prof, Arrays: arrays,
			// Highest IDs first: Degrade also takes from the top, so a
			// shrinking layer reclaims replica arrays before pool arrays.
			Set: l.avail.TakeHighest(arrays),
		})
	}
	l.repWant = nil
	l.refreshSig()
	s.clearKneeMemo()
}

// DropReplicas tears down every standing replica, returning its arrays
// to the free lists. It reports how many arrays were released.
func (s *System) DropReplicas() int {
	total := 0
	changed := false
	for _, t := range s.Targets() {
		l := s.Layers[t]
		if len(l.replicas) == 0 {
			continue
		}
		for i := len(l.replicas) - 1; i >= 0; i-- {
			l.avail.Add(l.replicas[i].Set)
			total += l.replicas[i].Arrays
		}
		l.replicas = nil
		l.refreshSig()
		changed = true
	}
	if changed {
		s.clearKneeMemo()
	}
	return total
}

// bottleneckStage groups the batch's staged jobs by (stage, best layer)
// and returns the group with the largest aggregate knee-allocation
// model time — the stage whose serialisation dominates the batch.
// Groups are visited in first-appearance order so ties break
// deterministically in job-submission order.
func (s *System) bottleneckStage(jobs []*Job) (stage string, t isa.Target, prof Profile, count int) {
	type key struct {
		stage string
		t     isa.Target
	}
	type agg struct {
		prof  Profile
		total event.Time
		count int
	}
	var order []key
	aggs := map[key]*agg{}
	for _, j := range jobs {
		if j.Stage == "" {
			continue
		}
		bt, btime := s.BestTarget(j)
		if btime == math.MaxInt64 {
			continue
		}
		k := key{j.Stage, bt}
		a := aggs[k]
		if a == nil {
			a = &agg{prof: j.Est[bt]}
			aggs[k] = a
			order = append(order, k)
		}
		a.total += btime
		a.count++
	}
	var best *agg
	for _, k := range order {
		a := aggs[k]
		if a.count < 2 {
			continue
		}
		if best == nil || a.total > best.total {
			best = a
			stage, t = k.stage, k.t
		}
	}
	if best == nil {
		return "", 0, Profile{}, 0
	}
	return stage, t, best.prof, best.count
}
