package sched

import (
	"fmt"

	"mlimp/internal/event"
	"mlimp/internal/isa"
)

// Assignment records one job's placement in a schedule.
type Assignment struct {
	Job    *Job
	Target isa.Target
	Arrays int
	// ArrayIDs names the physical arrays the placement held — the
	// array-granular record behind the multi-tenant isolation invariant
	// and array-level fault attribution.
	ArrayIDs ArraySet
	// Tenant echoes the job's tenant tag at placement time.
	Tenant string
	Start  event.Time
	End    event.Time
}

// Result is the outcome of scheduling and simulating a batch.
type Result struct {
	Makespan    event.Time
	Assignments []Assignment
	// BusyTime accumulates job-occupancy time per layer (a utilisation
	// proxy: busy slot-time, not array-time).
	BusyTime map[isa.Target]event.Time
}

// Throughput returns completed jobs per second.
func (r *Result) Throughput() float64 {
	if r.Makespan <= 0 {
		return 0
	}
	return float64(len(r.Assignments)) / r.Makespan.Seconds()
}

// String summarises the result.
func (r *Result) String() string {
	return fmt.Sprintf("result(jobs=%d makespan=%.3fms)", len(r.Assignments), r.Makespan.Millis())
}

// TenantsTouching returns the tenants holding any assignment that
// overlaps the given array set on target t — the eviction set when
// those arrays are decommissioned mid-flight.
func (r *Result) TenantsTouching(t isa.Target, ids ArraySet) []string {
	var out []string
	seen := map[string]bool{}
	for _, a := range r.Assignments {
		if a.Target == t && a.ArrayIDs.Intersects(ids) && !seen[a.Tenant] {
			seen[a.Tenant] = true
			out = append(out, a.Tenant)
		}
	}
	return out
}

// Scheduler maps a batch of jobs onto the system and returns the
// simulated outcome.
type Scheduler interface {
	Name() string
	Schedule(sys *System, jobs []*Job) *Result
}

// --- shared event-driven execution state ---

type flight struct {
	job    *Job
	target isa.Target
	arrays int
	set    ArraySet // the physical arrays held
	pool   *pool    // where set returns on completion; nil on a replica
	rep    int      // 1-based replica index on target; 0 = pool placement
	start  event.Time
	end    event.Time
	estEnd event.Time // start + estimated duration (scheduler belief)
}

// flightHeap is a hand-rolled min-heap on end time. The sift directions
// mirror container/heap exactly (strict-less comparisons, left child
// preferred on ties) so pop order is unchanged, but push/pop take and
// return flight values directly — container/heap's any-boxed interface
// allocates twice per placement, which the fleet benchmarks pay per job.
type flightHeap []flight

func (h flightHeap) Len() int { return len(h) }

func (h *flightHeap) push(f flight) {
	*h = append(*h, f)
	o := *h
	i := len(o) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !(o[i].end < o[parent].end) {
			break
		}
		o[i], o[parent] = o[parent], o[i]
		i = parent
	}
}

func (h *flightHeap) pop() flight {
	o := *h
	n := len(o) - 1
	f := o[0]
	o[0] = o[n]
	o[n] = flight{} // drop the job pointer
	o = o[:n]
	*h = o
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		least := i
		if l < n && o[l].end < o[least].end {
			least = l
		}
		if r < n && o[r].end < o[least].end {
			least = r
		}
		if least == i {
			break
		}
		o[i], o[least] = o[least], o[i]
		i = least
	}
	return f
}

// pool is one allocatable set of arrays: the shared per-target free set,
// or a tenant's partitioned region. free mirrors avail.Count() so hot
// capacity checks stay O(1).
type pool struct {
	avail ArraySet
	free  int
}

func (p *pool) take(n int) ArraySet {
	p.free -= n
	return p.avail.TakeLowest(n)
}

func (p *pool) put(set ArraySet) {
	p.free += set.Count()
	p.avail.Add(set)
}

// tenantState is the per-tenant packing state of one simulation.
type tenantState struct {
	// region points at the tenant's private pool per target under
	// PackPartitioned; nil means the shared pool (first-fit fallback on
	// layers too small to split).
	region [isa.NumTargets]*pool
	// cap is the largest allocation this tenant can ever hold on a
	// target (region size / weighted-fair quota) — the grant clamp that
	// keeps strict plan execution deadlock-free.
	cap [isa.NumTargets]int
	// held counts arrays currently in flight under PackWeightedFair.
	held [isa.NumTargets]int
}

// simState tracks resource occupancy during schedule execution. With
// estMode set, placements are charged their estimated (model) time
// instead of the actual time — used by the global scheduler's planning
// pass. Isolation is structural: every placement takes its ArraySet
// from exactly one pool and returns it to that pool, and distinct
// tenants never draw overlapping IDs.
type simState struct {
	sys     *System
	now     event.Time
	slots   [isa.NumTargets]int
	shared  [isa.NumTargets]pool
	packing Packing
	// tenants is non-nil only for multi-tenant batches under a packing
	// policy that needs per-tenant state; the single-tenant (and
	// first-fit) path never consults it.
	tenants map[string]*tenantState
	// reps mirrors each layer's standing replicas with a per-sim busy
	// flag: a replica serves one job at a time, holding no pool arrays
	// and no dispatch slot (the replica IS the pipeline). Serial use
	// keeps the tenant-isolation invariant — no array is held by two
	// tenants at overlapping instants — even when tenants share a
	// replica across time.
	reps    [isa.NumTargets][]repSim
	flying  flightHeap
	result  *Result
	estMode bool
	// arena backs every span slice the sim creates — the pool free sets
	// (carved with headroom for fragmentation) and each placement's taken
	// set — so one allocation serves the whole Schedule call instead of
	// one per take. Taken sub-slices outlive the sim inside Result
	// assignments; the arena is never recycled.
	arena []Span
}

// newSim builds execution state for one batch. The jobs are scanned for
// tenant tags (first-appearance order, so the partition layout is
// deterministic in job order); a batch where every job shares one
// tenant — tagged or not — runs on the shared-pool fast path identical
// to the pre-tenant scheduler.
func newSim(sys *System, jobs []*Job) *simState {
	st := &simState{
		sys:     sys,
		packing: sys.Packing,
		result: &Result{
			BusyTime: map[isa.Target]event.Time{},
		},
	}
	st.arena = make([]Span, 0, 8*len(jobs)+64)
	// Free-set fragmentation is bounded by the number of concurrent
	// flights, so each pool gets that much in-place growth before an
	// Add has to reallocate it away from the arena.
	head := len(jobs) + 4
	for t, l := range sys.Layers {
		start := len(st.arena)
		st.arena = append(st.arena, l.avail.Spans()...)
		end := len(st.arena)
		for i := 0; i < head; i++ {
			st.arena = append(st.arena, Span{})
		}
		st.shared[t].avail = ArraySet{spans: st.arena[start : end : end+head]}
		st.shared[t].free = l.avail.Count()
		st.slots[t] = l.Slots
		if len(l.replicas) > 0 {
			rs := make([]repSim, len(l.replicas))
			for i, r := range l.replicas {
				rs[i] = repSim{stage: r.Stage, arrays: r.Arrays, set: r.Set}
			}
			st.reps[t] = rs
		}
	}
	if st.packing == PackFirstFit {
		return st // tenant-agnostic: one shared pool, lowest IDs first
	}
	var order []string
	count := map[string]int{}
	for _, j := range jobs {
		if _, ok := count[j.Tenant]; !ok {
			order = append(order, j.Tenant)
		}
		count[j.Tenant]++
	}
	if len(order) <= 1 {
		return st
	}
	st.tenants = make(map[string]*tenantState, len(order))
	for _, name := range order {
		st.tenants[name] = &tenantState{}
	}
	for _, t := range sys.Targets() {
		total := st.shared[t].free
		switch st.packing {
		case PackPartitioned:
			if total < len(order) {
				// Too few arrays to give every tenant one: fall back to the
				// shared pool on this layer so no tenant becomes unroutable.
				for _, name := range order {
					st.tenants[name].cap[t] = total
				}
				continue
			}
			base, extra := total/len(order), total%len(order)
			for i, name := range order {
				share := base
				if i < extra {
					share++
				}
				ts := st.tenants[name]
				ts.region[t] = &pool{avail: st.shared[t].take(share), free: share}
				ts.cap[t] = share
			}
		case PackWeightedFair:
			totalJobs := len(jobs)
			for _, name := range order {
				quota := total * count[name] / totalJobs
				if quota < 1 {
					quota = 1
				}
				st.tenants[name].cap[t] = quota
			}
		}
	}
	return st
}

// poolFor returns the pool a tenant allocates from on target t.
func (st *simState) poolFor(t isa.Target, tenant string) *pool {
	if st.tenants != nil && st.packing == PackPartitioned {
		if ts := st.tenants[tenant]; ts != nil && ts.region[t] != nil {
			return ts.region[t]
		}
	}
	return &st.shared[t]
}

// freeFor returns the arrays the tenant could be granted on t right
// now — the tenant-aware replacement for the old shared free count.
func (st *simState) freeFor(t isa.Target, tenant string) int {
	if st.tenants == nil {
		return st.shared[t].free
	}
	ts := st.tenants[tenant]
	if ts == nil {
		return st.shared[t].free
	}
	switch st.packing {
	case PackPartitioned:
		if ts.region[t] != nil {
			return ts.region[t].free
		}
		return st.shared[t].free
	case PackWeightedFair:
		if room := ts.cap[t] - ts.held[t]; room < st.shared[t].free {
			return room
		}
		return st.shared[t].free
	}
	return st.shared[t].free
}

// maxGrant returns the largest allocation the tenant can ever hold on
// t, even with the layer idle. Plans clamped to maxGrant cannot
// deadlock: once the tenant's in-flight work drains, freeFor reaches
// maxGrant again. On the shared-pool path the layer capacity clamp
// (clampAlloc) already bounds grants, so this returns "no extra limit".
func (st *simState) maxGrant(t isa.Target, tenant string) int {
	const unlimited = int(^uint(0) >> 1)
	if st.tenants == nil {
		return unlimited
	}
	if ts := st.tenants[tenant]; ts != nil && ts.cap[t] > 0 {
		return ts.cap[t]
	}
	return unlimited
}

// takeFrom removes the n lowest IDs from p, storing the taken spans in
// the sim's arena (capacity-clamped so later arena growth can't touch
// them).
func (st *simState) takeFrom(p *pool, n int) ArraySet {
	p.free -= n
	start := len(st.arena)
	st.arena = p.avail.takeLowestAppend(st.arena, n)
	return ArraySet{spans: st.arena[start:len(st.arena):len(st.arena)]}
}

// repSim is one standing replica's simulation state.
type repSim struct {
	stage  string
	arrays int
	set    ArraySet
	busy   bool
}

// placeReplica starts j on a free standing replica of its stage on
// target t, reporting whether one took it. poolGrant is the allocation
// the caller would otherwise place the job with right now: when the
// pool can grant it and the modelled pool time beats the replica, the
// job is left to regular placement — a knee-sized replica must never
// capture a job an idle pool would run faster. Replica durations come
// from the deterministic ReplicaTime model on both planning and
// execution paths, so estimates on replicas are exact by construction.
func (st *simState) placeReplica(j *Job, t isa.Target, poolGrant int) bool {
	if j.Stage == "" || len(st.reps[t]) == 0 {
		return false
	}
	p, ok := j.Est[t]
	if !ok {
		return false
	}
	rs := st.reps[t]
	for i := range rs {
		r := &rs[i]
		if r.busy || r.stage != j.Stage {
			continue
		}
		dur := st.sys.ReplicaTime(p, t, r.arrays)
		if poolGrant > 0 && st.canPlace(t, poolGrant, j.Tenant) &&
			st.sys.ModelTime(j, t, poolGrant) < dur {
			return false
		}
		r.busy = true
		st.flying.push(flight{job: j, target: t, arrays: r.arrays, set: r.set,
			rep: i + 1, start: st.now, end: st.now + dur, estEnd: st.now + dur})
		return true
	}
	return false
}

// canPlace reports whether target t can accept the tenant's job with
// the given allocation right now.
func (st *simState) canPlace(t isa.Target, arrays int, tenant string) bool {
	return arrays > 0 && st.slots[t] > 0 && st.freeFor(t, tenant) >= arrays
}

// place starts a job on t with the given allocation, charging its
// simulated (true) execution time.
func (st *simState) place(j *Job, t isa.Target, arrays int) {
	if !st.canPlace(t, arrays, j.Tenant) {
		panic(fmt.Sprintf("sched: cannot place %v on %s with %d arrays", j, t, arrays))
	}
	dur := st.sys.ActualTime(j, t, arrays)
	if st.estMode {
		dur = st.sys.ModelTime(j, t, arrays)
	}
	p := st.poolFor(t, j.Tenant)
	set := st.takeFrom(p, arrays)
	if st.tenants != nil && st.packing == PackWeightedFair {
		if ts := st.tenants[j.Tenant]; ts != nil {
			ts.held[t] += arrays
		}
	}
	st.slots[t]--
	st.flying.push(flight{job: j, target: t, arrays: arrays, set: set, pool: p,
		start: st.now, end: st.now + dur, estEnd: st.now + st.sys.ModelTime(j, t, arrays)})
}

// advance pops the earliest completion, frees its resources, records the
// assignment, and returns true; false when nothing is in flight.
func (st *simState) advance() bool {
	if st.flying.Len() == 0 {
		return false
	}
	f := st.flying.pop()
	st.now = f.end
	if f.rep > 0 {
		st.reps[f.target][f.rep-1].busy = false
	} else {
		f.pool.put(f.set)
		if st.tenants != nil && st.packing == PackWeightedFair {
			if ts := st.tenants[f.job.Tenant]; ts != nil {
				ts.held[f.target] -= f.arrays
			}
		}
		st.slots[f.target]++
	}
	st.result.Assignments = append(st.result.Assignments, Assignment{
		Job: f.job, Target: f.target, Arrays: f.arrays, ArrayIDs: f.set,
		Tenant: f.job.Tenant, Start: f.start, End: f.end,
	})
	st.result.BusyTime[f.target] += f.end - f.start
	if f.end > st.result.Makespan {
		st.result.Makespan = f.end
	}
	return true
}

// earliestEnd returns the soonest completion time on layer t, or zero
// time and false when the layer is idle.
func (st *simState) earliestEnd(t isa.Target) (event.Time, bool) {
	best := event.Time(0)
	found := false
	for _, f := range st.flying {
		if f.target == t && (!found || f.end < best) {
			best = f.end
			found = true
		}
	}
	return best, found
}
