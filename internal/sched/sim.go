package sched

import (
	"container/heap"
	"fmt"

	"mlimp/internal/event"
	"mlimp/internal/isa"
)

// Assignment records one job's placement in a schedule.
type Assignment struct {
	Job    *Job
	Target isa.Target
	Arrays int
	Start  event.Time
	End    event.Time
}

// Result is the outcome of scheduling and simulating a batch.
type Result struct {
	Makespan    event.Time
	Assignments []Assignment
	// BusyTime accumulates job-occupancy time per layer (a utilisation
	// proxy: busy slot-time, not array-time).
	BusyTime map[isa.Target]event.Time
}

// Throughput returns completed jobs per second.
func (r *Result) Throughput() float64 {
	if r.Makespan <= 0 {
		return 0
	}
	return float64(len(r.Assignments)) / r.Makespan.Seconds()
}

// String summarises the result.
func (r *Result) String() string {
	return fmt.Sprintf("result(jobs=%d makespan=%.3fms)", len(r.Assignments), r.Makespan.Millis())
}

// Scheduler maps a batch of jobs onto the system and returns the
// simulated outcome.
type Scheduler interface {
	Name() string
	Schedule(sys *System, jobs []*Job) *Result
}

// --- shared event-driven execution state ---

type flight struct {
	job    *Job
	target isa.Target
	arrays int
	start  event.Time
	end    event.Time
	estEnd event.Time // start + estimated duration (scheduler belief)
}

type flightHeap []flight

func (h flightHeap) Len() int           { return len(h) }
func (h flightHeap) Less(i, j int) bool { return h[i].end < h[j].end }
func (h flightHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *flightHeap) Push(x any)        { *h = append(*h, x.(flight)) }
func (h *flightHeap) Pop() any          { o := *h; n := len(o); f := o[n-1]; *h = o[:n-1]; return f }

// simState tracks resource occupancy during schedule execution. With
// estMode set, placements are charged their estimated (model) time
// instead of the actual time — used by the global scheduler's planning
// pass.
type simState struct {
	sys     *System
	now     event.Time
	free    map[isa.Target]int
	slots   map[isa.Target]int
	flying  flightHeap
	result  *Result
	estMode bool
}

func newSim(sys *System) *simState {
	st := &simState{
		sys:   sys,
		free:  map[isa.Target]int{},
		slots: map[isa.Target]int{},
		result: &Result{
			BusyTime: map[isa.Target]event.Time{},
		},
	}
	for t, l := range sys.Layers {
		st.free[t] = l.Capacity
		st.slots[t] = l.Slots
	}
	return st
}

// canPlace reports whether target t can accept a job with the given
// allocation right now.
func (st *simState) canPlace(t isa.Target, arrays int) bool {
	return arrays > 0 && st.slots[t] > 0 && st.free[t] >= arrays
}

// place starts a job on t with the given allocation, charging its
// simulated (true) execution time.
func (st *simState) place(j *Job, t isa.Target, arrays int) {
	if !st.canPlace(t, arrays) {
		panic(fmt.Sprintf("sched: cannot place %v on %s with %d arrays", j, t, arrays))
	}
	dur := st.sys.ActualTime(j, t, arrays)
	if st.estMode {
		dur = st.sys.ModelTime(j, t, arrays)
	}
	st.free[t] -= arrays
	st.slots[t]--
	heap.Push(&st.flying, flight{job: j, target: t, arrays: arrays,
		start: st.now, end: st.now + dur, estEnd: st.now + st.sys.ModelTime(j, t, arrays)})
}

// advance pops the earliest completion, frees its resources, records the
// assignment, and returns true; false when nothing is in flight.
func (st *simState) advance() bool {
	if st.flying.Len() == 0 {
		return false
	}
	f := heap.Pop(&st.flying).(flight)
	st.now = f.end
	st.free[f.target] += f.arrays
	st.slots[f.target]++
	st.result.Assignments = append(st.result.Assignments, Assignment{
		Job: f.job, Target: f.target, Arrays: f.arrays, Start: f.start, End: f.end,
	})
	st.result.BusyTime[f.target] += f.end - f.start
	if f.end > st.result.Makespan {
		st.result.Makespan = f.end
	}
	return true
}

// earliestEnd returns the soonest completion time on layer t, or zero
// time and false when the layer is idle.
func (st *simState) earliestEnd(t isa.Target) (event.Time, bool) {
	best := event.Time(0)
	found := false
	for _, f := range st.flying {
		if f.target == t && (!found || f.end < best) {
			best = f.end
			found = true
		}
	}
	return best, found
}
