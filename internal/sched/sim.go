package sched

import (
	"fmt"

	"mlimp/internal/event"
	"mlimp/internal/isa"
)

// Assignment records one job's placement in a schedule.
type Assignment struct {
	Job    *Job
	Target isa.Target
	Arrays int
	Start  event.Time
	End    event.Time
}

// Result is the outcome of scheduling and simulating a batch.
type Result struct {
	Makespan    event.Time
	Assignments []Assignment
	// BusyTime accumulates job-occupancy time per layer (a utilisation
	// proxy: busy slot-time, not array-time).
	BusyTime map[isa.Target]event.Time
}

// Throughput returns completed jobs per second.
func (r *Result) Throughput() float64 {
	if r.Makespan <= 0 {
		return 0
	}
	return float64(len(r.Assignments)) / r.Makespan.Seconds()
}

// String summarises the result.
func (r *Result) String() string {
	return fmt.Sprintf("result(jobs=%d makespan=%.3fms)", len(r.Assignments), r.Makespan.Millis())
}

// Scheduler maps a batch of jobs onto the system and returns the
// simulated outcome.
type Scheduler interface {
	Name() string
	Schedule(sys *System, jobs []*Job) *Result
}

// --- shared event-driven execution state ---

type flight struct {
	job    *Job
	target isa.Target
	arrays int
	start  event.Time
	end    event.Time
	estEnd event.Time // start + estimated duration (scheduler belief)
}

// flightHeap is a hand-rolled min-heap on end time. The sift directions
// mirror container/heap exactly (strict-less comparisons, left child
// preferred on ties) so pop order is unchanged, but push/pop take and
// return flight values directly — container/heap's any-boxed interface
// allocates twice per placement, which the fleet benchmarks pay per job.
type flightHeap []flight

func (h flightHeap) Len() int { return len(h) }

func (h *flightHeap) push(f flight) {
	*h = append(*h, f)
	o := *h
	i := len(o) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !(o[i].end < o[parent].end) {
			break
		}
		o[i], o[parent] = o[parent], o[i]
		i = parent
	}
}

func (h *flightHeap) pop() flight {
	o := *h
	n := len(o) - 1
	f := o[0]
	o[0] = o[n]
	o[n] = flight{} // drop the job pointer
	o = o[:n]
	*h = o
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		least := i
		if l < n && o[l].end < o[least].end {
			least = l
		}
		if r < n && o[r].end < o[least].end {
			least = r
		}
		if least == i {
			break
		}
		o[i], o[least] = o[least], o[i]
		i = least
	}
	return f
}

// simState tracks resource occupancy during schedule execution. With
// estMode set, placements are charged their estimated (model) time
// instead of the actual time — used by the global scheduler's planning
// pass.
type simState struct {
	sys     *System
	now     event.Time
	free    map[isa.Target]int
	slots   map[isa.Target]int
	flying  flightHeap
	result  *Result
	estMode bool
}

func newSim(sys *System) *simState {
	st := &simState{
		sys:   sys,
		free:  map[isa.Target]int{},
		slots: map[isa.Target]int{},
		result: &Result{
			BusyTime: map[isa.Target]event.Time{},
		},
	}
	for t, l := range sys.Layers {
		st.free[t] = l.Capacity
		st.slots[t] = l.Slots
	}
	return st
}

// canPlace reports whether target t can accept a job with the given
// allocation right now.
func (st *simState) canPlace(t isa.Target, arrays int) bool {
	return arrays > 0 && st.slots[t] > 0 && st.free[t] >= arrays
}

// place starts a job on t with the given allocation, charging its
// simulated (true) execution time.
func (st *simState) place(j *Job, t isa.Target, arrays int) {
	if !st.canPlace(t, arrays) {
		panic(fmt.Sprintf("sched: cannot place %v on %s with %d arrays", j, t, arrays))
	}
	dur := st.sys.ActualTime(j, t, arrays)
	if st.estMode {
		dur = st.sys.ModelTime(j, t, arrays)
	}
	st.free[t] -= arrays
	st.slots[t]--
	st.flying.push(flight{job: j, target: t, arrays: arrays,
		start: st.now, end: st.now + dur, estEnd: st.now + st.sys.ModelTime(j, t, arrays)})
}

// advance pops the earliest completion, frees its resources, records the
// assignment, and returns true; false when nothing is in flight.
func (st *simState) advance() bool {
	if st.flying.Len() == 0 {
		return false
	}
	f := st.flying.pop()
	st.now = f.end
	st.free[f.target] += f.arrays
	st.slots[f.target]++
	st.result.Assignments = append(st.result.Assignments, Assignment{
		Job: f.job, Target: f.target, Arrays: f.arrays, Start: f.start, End: f.end,
	})
	st.result.BusyTime[f.target] += f.end - f.start
	if f.end > st.result.Makespan {
		st.result.Makespan = f.end
	}
	return true
}

// earliestEnd returns the soonest completion time on layer t, or zero
// time and false when the layer is idle.
func (st *simState) earliestEnd(t isa.Target) (event.Time, bool) {
	best := event.Time(0)
	found := false
	for _, f := range st.flying {
		if f.target == t && (!found || f.end < best) {
			best = f.end
			found = true
		}
	}
	return best, found
}
