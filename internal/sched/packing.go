package sched

import "fmt"

// Multi-tenant array packing. Each job may carry a Tenant tag; the
// placement simulation (sim.go) grants every placement an explicit
// ArraySet and guarantees the hard isolation invariant — no array is
// ever held by two tenants at once — structurally: an array is taken
// from exactly one pool and returned to the pool it came from. The
// Packing policy decides how tenants share a layer's arrays:
//
//   - PackFirstFit: all tenants draw from one shared free set, lowest
//     IDs first. Maximum utilisation, no fairness shaping; with a
//     single tenant this is exactly the scalar-capacity behaviour the
//     array-set model replaced.
//   - PackPartitioned: the layer's free set is split into contiguous
//     per-tenant regions up front; a tenant can only ever touch its
//     region. Hard spatial isolation at the cost of internal
//     fragmentation. Falls back to first-fit when a layer has fewer
//     arrays than tenants (every tenant must stay schedulable).
//   - PackWeightedFair: one shared free set, but each tenant's
//     concurrently-held arrays are capped at a share proportional to
//     its job count (floored at one array), so a heavy tenant cannot
//     starve a light one of array space.
type Packing uint8

// Packing policies.
const (
	PackFirstFit Packing = iota
	PackPartitioned
	PackWeightedFair
	numPackings
)

// String names the policy.
func (p Packing) String() string {
	switch p {
	case PackFirstFit:
		return "first-fit"
	case PackPartitioned:
		return "partitioned"
	case PackWeightedFair:
		return "weighted-fair"
	}
	return fmt.Sprintf("packing(%d)", uint8(p))
}

// PackingNames lists the policy names in canonical order.
func PackingNames() []string {
	out := make([]string, 0, int(numPackings))
	for p := Packing(0); p < numPackings; p++ {
		out = append(out, p.String())
	}
	return out
}

// PackingByName resolves a policy name.
func PackingByName(name string) (Packing, bool) {
	for p := Packing(0); p < numPackings; p++ {
		if p.String() == name {
			return p, true
		}
	}
	return PackFirstFit, false
}
