package sched

import "mlimp/internal/isa"

// Capacity degradation. When arrays fail in the field (internal/fault),
// the scheduler must re-plan against the shrunk layer rather than keep
// issuing knee-sized allocations the device can no longer grant.
// Because KneeAlloc is memoized per (profile, target, capacity), the
// next lookup after a Degrade/Restore misses under the new capacity key
// and re-runs the knee search on the degraded curve; the entries keyed
// by the abandoned capacity are generation-cleared so the memo stays
// bounded across long fault-churning sweeps (see costcache.go).

// Degrade removes n arrays from layer t, flooring the layer at one
// array so jobs that only run there remain schedulable (slowly) rather
// than unroutable. It returns the number of arrays actually removed.
func (s *System) Degrade(t isa.Target, n int) int {
	l, ok := s.Layers[t]
	if !ok || n <= 0 {
		return 0
	}
	if s.healthyCap == nil {
		s.healthyCap = map[isa.Target]int{}
		s.lostArrays = map[isa.Target]int{}
	}
	if _, seen := s.healthyCap[t]; !seen {
		s.healthyCap[t] = l.Capacity
	}
	newCap := l.Capacity - n
	if newCap < 1 {
		newCap = 1
	}
	removed := l.Capacity - newCap
	l.Capacity = newCap
	s.lostArrays[t] += removed
	if removed > 0 {
		s.clearKneeMemo()
	}
	return removed
}

// Restore returns n previously lost arrays to layer t (bounded by what
// is actually lost, so capacity can never exceed the healthy baseline).
// It returns the number of arrays actually restored.
func (s *System) Restore(t isa.Target, n int) int {
	l, ok := s.Layers[t]
	if !ok || n <= 0 || s.lostArrays[t] == 0 {
		return 0
	}
	if n > s.lostArrays[t] {
		n = s.lostArrays[t]
	}
	l.Capacity += n
	s.lostArrays[t] -= n
	s.clearKneeMemo()
	return n
}

// Lost returns the arrays of layer t currently lost to faults.
func (s *System) Lost(t isa.Target) int { return s.lostArrays[t] }

// LostTotal returns the arrays lost to faults across all layers.
func (s *System) LostTotal() int {
	total := 0
	for _, n := range s.lostArrays {
		total += n
	}
	return total
}

// HealthyCapacity returns layer t's fault-free capacity: the baseline
// captured at the first Degrade, or the current capacity if the layer
// has never been degraded.
func (s *System) HealthyCapacity(t isa.Target) int {
	if n, ok := s.healthyCap[t]; ok {
		return n
	}
	if l, ok := s.Layers[t]; ok {
		return l.Capacity
	}
	return 0
}
