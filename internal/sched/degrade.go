package sched

import "mlimp/internal/isa"

// Array-granular capacity degradation. When arrays fail in the field
// (internal/fault), the scheduler must re-plan against the shrunk layer
// rather than keep issuing knee-sized allocations the device can no
// longer grant. Degrade names the exact physical IDs it decommissions —
// deterministically, the highest in-service IDs first, mirroring
// mem.FailArrays — and pushes each removed set onto a LIFO stack, so
// Restore returns precisely the IDs that were lost. Because KneeAlloc
// is memoized per (profile, target, free-set signature), the next
// lookup after a Degrade/Restore misses under the new signature and
// re-runs the knee search on the degraded curve; stale entries are
// generation-cleared so the memo stays bounded across long
// fault-churning sweeps (see costcache.go).

// Degrade removes n arrays from layer t, flooring the layer at one
// array so jobs that only run there remain schedulable (slowly) rather
// than unroutable. The highest in-service IDs are decommissioned first.
// It returns the number of arrays actually removed; DegradedIDs names
// them.
func (s *System) Degrade(t isa.Target, n int) int {
	l, ok := s.Layers[t]
	if !ok || n <= 0 {
		return 0
	}
	// Replicas are reclaimed first: a standing replica is pure spare
	// capacity, so it is torn down (its config remembered for Restore)
	// before any pool array is decommissioned. Replica sets were carved
	// with TakeHighest, so the TakeHighest below eats the ex-replica IDs
	// before touching the low-ID pool region.
	if len(l.replicas) > 0 {
		l.repWant = &repSpec{
			stage: l.replicas[0].Stage, prof: l.replicas[0].Prof,
			arrays: l.replicas[0].Arrays, count: len(l.replicas),
		}
		for i := len(l.replicas) - 1; i >= 0; i-- {
			l.avail.Add(l.replicas[i].Set)
		}
		l.replicas = nil
	}
	if max := l.avail.Count() - 1; n > max {
		n = max
	}
	if n > 0 {
		removed := l.avail.TakeHighest(n)
		l.lost = append(l.lost, removed)
	} else {
		n = 0
	}
	l.refreshSig()
	s.clearKneeMemo()
	return n
}

// Restore returns n previously lost arrays to layer t (bounded by what
// is actually lost, so capacity can never exceed the healthy baseline).
// Sets come back in LIFO order — the exact IDs the matching Degrade
// removed. It returns the number of arrays actually restored.
func (s *System) Restore(t isa.Target, n int) int {
	l, ok := s.Layers[t]
	if !ok || n <= 0 || len(l.lost) == 0 {
		return 0
	}
	restored := 0
	for n > 0 && len(l.lost) > 0 {
		top := &l.lost[len(l.lost)-1]
		if c := top.Count(); c <= n {
			l.avail.Add(*top)
			l.lost = l.lost[:len(l.lost)-1]
			n -= c
			restored += c
		} else {
			l.avail.Add(top.TakeHighest(n))
			restored += n
			n = 0
		}
	}
	// Rebuilt on Restore: if a Degrade tore down a standing replica set,
	// re-carve as much of it as the recovered capacity's idle budget
	// affords. A partial rebuild keeps repWant so later Restores finish
	// the job; EnsureReplicas re-plans it anyway on the next batch.
	if s.Replication == ReplicateWhenIdle && l.repWant != nil {
		w := l.repWant
		m := replicaBudget(l.avail.Count()+replicaArrays(l)) - replicaArrays(l)
		m /= w.arrays
		if m > w.count-len(l.replicas) {
			m = w.count - len(l.replicas)
		}
		for i := 0; i < m; i++ {
			l.replicas = append(l.replicas, Replica{
				Stage: w.stage, Prof: w.prof, Arrays: w.arrays,
				Set: l.avail.TakeHighest(w.arrays),
			})
		}
		if len(l.replicas) >= w.count {
			l.repWant = nil
		}
	}
	l.refreshSig()
	s.clearKneeMemo()
	return restored
}

// replicaArrays counts the arrays currently pinned into l's replicas.
func replicaArrays(l *Layer) int {
	n := 0
	for _, r := range l.replicas {
		n += r.Arrays
	}
	return n
}

// DegradedIDs returns the array IDs of layer t currently out of
// service, across every outstanding Degrade.
func (s *System) DegradedIDs(t isa.Target) ArraySet {
	l, ok := s.Layers[t]
	if !ok {
		return ArraySet{}
	}
	var out ArraySet
	for _, set := range l.lost {
		out.Add(set)
	}
	return out
}

// Lost returns the number of arrays of layer t currently lost to
// faults. Arrays pinned into standing replicas are in service, not
// lost.
func (s *System) Lost(t isa.Target) int {
	l, ok := s.Layers[t]
	if !ok {
		return 0
	}
	return l.universe - l.avail.Count() - replicaArrays(l)
}

// LostTotal returns the arrays lost to faults across all layers.
func (s *System) LostTotal() int {
	total := 0
	for t := range s.Layers {
		total += s.Lost(t)
	}
	return total
}

// HealthyCapacity returns layer t's fault-free capacity: every array
// the layer owns, in service or not.
func (s *System) HealthyCapacity(t isa.Target) int {
	if l, ok := s.Layers[t]; ok {
		return l.universe
	}
	return 0
}
