package sched

import (
	"fmt"
	"strings"
)

// Array-set resource model. A layer's allocatable arrays are physical
// IDs 0..N-1; free capacity, placements, and decommissioned arrays are
// all ArraySets, so the scheduler always knows *which* arrays a job
// holds — the granularity MASIM-style conflict-aware scheduling and
// multi-tenant isolation need. Sets are kept as sorted span lists
// rather than bitmaps: ReRAM has 86,016 arrays, and placements are
// overwhelmingly contiguous runs, so a span list is both smaller and
// cheaper than 10 KB of bitmap per placement.

// Span is a half-open run [Lo, Hi) of physical array IDs.
type Span struct{ Lo, Hi int }

func (s Span) count() int { return s.Hi - s.Lo }

// ArraySet is a set of physical array IDs, stored as sorted,
// non-overlapping, non-adjacent spans. The zero value is the empty set.
type ArraySet struct {
	spans []Span
}

// NewRange returns the set [lo, hi).
func NewRange(lo, hi int) ArraySet {
	if hi <= lo {
		return ArraySet{}
	}
	return ArraySet{spans: []Span{{lo, hi}}}
}

// Count returns the number of IDs in the set.
func (a ArraySet) Count() int {
	n := 0
	for _, s := range a.spans {
		n += s.count()
	}
	return n
}

// Empty reports whether the set holds no IDs.
func (a ArraySet) Empty() bool { return len(a.spans) == 0 }

// Spans returns the underlying span list (read-only view).
func (a ArraySet) Spans() []Span { return a.spans }

// Clone returns an independent copy.
func (a ArraySet) Clone() ArraySet {
	if len(a.spans) == 0 {
		return ArraySet{}
	}
	return ArraySet{spans: append([]Span(nil), a.spans...)}
}

// TakeLowest removes the n lowest IDs from a and returns them as a new
// set. It panics if the set holds fewer than n IDs: callers gate on
// free counts first, so a shortfall is an accounting bug.
func (a *ArraySet) TakeLowest(n int) ArraySet {
	if n <= 0 {
		return ArraySet{}
	}
	return ArraySet{spans: a.takeLowestAppend(nil, n)}
}

// takeLowestAppend removes the n lowest IDs, appending the taken spans
// to buf and returning the extended buffer — the allocation-free path
// behind TakeLowest that the scheduler sim feeds from a per-Schedule
// arena.
func (a *ArraySet) takeLowestAppend(buf []Span, n int) []Span {
	for n > 0 {
		if len(a.spans) == 0 {
			panic("sched: TakeLowest past end of ArraySet")
		}
		s := &a.spans[0]
		if c := s.count(); c <= n {
			buf = append(buf, *s)
			n -= c
			a.spans = a.spans[1:]
		} else {
			buf = append(buf, Span{s.Lo, s.Lo + n})
			s.Lo += n
			n = 0
		}
	}
	return buf
}

// TakeHighest removes the n highest IDs from a and returns them as a
// new set. Panics on shortfall, like TakeLowest.
func (a *ArraySet) TakeHighest(n int) ArraySet {
	if n <= 0 {
		return ArraySet{}
	}
	var out []Span
	for n > 0 {
		if len(a.spans) == 0 {
			panic("sched: TakeHighest past end of ArraySet")
		}
		last := len(a.spans) - 1
		s := &a.spans[last]
		if c := s.count(); c <= n {
			out = append(out, *s)
			n -= c
			a.spans = a.spans[:last]
		} else {
			out = append(out, Span{s.Hi - n, s.Hi})
			s.Hi -= n
			n = 0
		}
	}
	// out was collected high-to-low; reverse into sorted order.
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return ArraySet{spans: out}
}

// Add merges set b into a (in place). b's spans must be disjoint from
// a's — IDs are returned to exactly the pool they were taken from, so
// overlap is a double-free.
func (a *ArraySet) Add(b ArraySet) {
	for _, s := range b.spans {
		a.addSpan(s)
	}
}

// addSpan inserts one span, coalescing with adjacent neighbours.
func (a *ArraySet) addSpan(s Span) {
	if s.count() <= 0 {
		return
	}
	// Find the insertion point: first span with Lo >= s.Lo.
	i := 0
	for i < len(a.spans) && a.spans[i].Lo < s.Lo {
		i++
	}
	if i > 0 && a.spans[i-1].Hi > s.Lo {
		panic("sched: ArraySet.Add overlap (double free)")
	}
	if i < len(a.spans) && s.Hi > a.spans[i].Lo {
		panic("sched: ArraySet.Add overlap (double free)")
	}
	// Coalesce with the previous span when adjacent.
	if i > 0 && a.spans[i-1].Hi == s.Lo {
		a.spans[i-1].Hi = s.Hi
		// And with the next, if the merge bridged the gap.
		if i < len(a.spans) && a.spans[i-1].Hi == a.spans[i].Lo {
			a.spans[i-1].Hi = a.spans[i].Hi
			a.spans = append(a.spans[:i], a.spans[i+1:]...)
		}
		return
	}
	// Coalesce with the next span when adjacent.
	if i < len(a.spans) && s.Hi == a.spans[i].Lo {
		a.spans[i].Lo = s.Lo
		return
	}
	a.spans = append(a.spans, Span{})
	copy(a.spans[i+1:], a.spans[i:])
	a.spans[i] = s
}

// Intersects reports whether the two sets share any ID — the predicate
// behind the multi-tenant isolation invariant.
func (a ArraySet) Intersects(b ArraySet) bool {
	i, j := 0, 0
	for i < len(a.spans) && j < len(b.spans) {
		x, y := a.spans[i], b.spans[j]
		if x.Lo < y.Hi && y.Lo < x.Hi {
			return true
		}
		if x.Hi <= y.Hi {
			i++
		} else {
			j++
		}
	}
	return false
}

// Contains reports whether every ID of b is in a.
func (a ArraySet) Contains(b ArraySet) bool {
	i := 0
	for _, s := range b.spans {
		for i < len(a.spans) && a.spans[i].Hi <= s.Lo {
			i++
		}
		if i >= len(a.spans) || a.spans[i].Lo > s.Lo || a.spans[i].Hi < s.Hi {
			return false
		}
	}
	return true
}

// Signature returns a canonical FNV-1a hash of the span list — the
// free-set key the knee/cost memos use instead of a bare capacity
// integer. Equal sets always hash equal; the span representation is
// canonical (sorted, coalesced), so the signature is too.
func (a ArraySet) Signature() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	for _, s := range a.spans {
		mix(uint64(s.Lo))
		mix(uint64(s.Hi))
	}
	return h
}

// String renders the set as "[0,4) [6,8)" for diagnostics.
func (a ArraySet) String() string {
	if len(a.spans) == 0 {
		return "{}"
	}
	var sb strings.Builder
	for i, s := range a.spans {
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "[%d,%d)", s.Lo, s.Hi)
	}
	return sb.String()
}
