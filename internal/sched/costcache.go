package sched

import (
	"mlimp/internal/event"
	"mlimp/internal/isa"
)

// Analytical-cost memoization.
//
// The schedulers evaluate the Section III-C model t(x,m) thousands of
// times per batch: every sort comparison in the inter/intra-queue
// adjustments, every knee search, and every dispatcher routing decision
// re-derives the same per-(job-shape, target, allocation) cycle count.
// The model is a pure function of the job's Profile and the layer's
// immutable configuration (the DDR StreamTime term is closed-form and
// stateless), and Profile is a comparable value type — so the System
// memoizes it behind a map keyed by the profile value itself. Two jobs
// sharing a shape (every job of one app does) share cache lines.
//
// A System is not safe for concurrent use — the DDR controller already
// accumulates access statistics — so plain maps suffice; parallel
// callers (experiments.RunAll, parallel kernels) each own their System.
//
// KneeAlloc additionally keys on the canonical signature of the layer's
// free array set (ArraySet.Signature), the one mutable input
// (internal/cluster scales capacities at node construction; the fault
// path decommissions arrays) — so a resized or degraded layer can never
// serve a stale knee.

type profKey struct {
	p      Profile
	t      isa.Target
	arrays int
}

type kneeKey struct {
	p   Profile
	t   isa.Target
	sig uint64 // free-set signature of the layer at search time
}

// MaxProfMemoEntries and MaxKneeMemoEntries bound the memo maps. The
// entries are pure-function results, so eviction can never produce a
// wrong answer — the only cost is a recomputation — but without a bound
// a long sweep over many job shapes and fault-mutated capacities grows
// the maps without limit. When a map reaches its bound it is
// generation-cleared (dropped wholesale): the working set at any
// instant is a few dozen shapes, so an LRU's per-hit bookkeeping would
// cost more on the hot path than the rare full rebuild after a clear.
const (
	MaxProfMemoEntries = 4096
	MaxKneeMemoEntries = 1024
)

// CacheStats reports the System's cost-model memoization counters, a
// visibility hook for tests and perf investigations.
type CacheStats struct {
	ModelHits, ModelMisses int64
	KneeHits, KneeMisses   int64
	// Clears counts generation-clears: bound overflows plus
	// Degrade/Restore invalidation sweeps.
	Clears int64
}

// CacheStats returns the memo hit/miss counters accumulated so far.
func (s *System) CacheStats() CacheStats { return s.cacheStats }

// memoProfileTime answers profileTime from the memo, computing and
// filling on miss. The maps are lazily initialised because Systems are
// also built as composite literals (single-layer oracle systems).
func (s *System) memoProfileTime(p Profile, t isa.Target, arrays int) event.Time {
	k := profKey{p: p, t: t, arrays: arrays}
	if v, ok := s.profMemo[k]; ok {
		s.cacheStats.ModelHits++
		return v
	}
	v := s.computeProfileTime(p, t, arrays)
	if s.profMemo == nil {
		s.profMemo = make(map[profKey]event.Time, 256)
	} else if len(s.profMemo) >= MaxProfMemoEntries {
		clear(s.profMemo)
		s.cacheStats.Clears++
	}
	s.profMemo[k] = v
	s.cacheStats.ModelMisses++
	return v
}

// memoKneeAlloc answers KneeAlloc from the memo, keyed by the layer's
// current free-set signature.
func (s *System) memoKneeAlloc(p Profile, t isa.Target, sig uint64) (int, bool) {
	if v, ok := s.kneeMemo[kneeKey{p: p, t: t, sig: sig}]; ok {
		s.cacheStats.KneeHits++
		return v, true
	}
	return 0, false
}

func (s *System) storeKneeAlloc(p Profile, t isa.Target, sig uint64, alloc int) {
	if s.kneeMemo == nil {
		s.kneeMemo = make(map[kneeKey]int, 64)
	} else if len(s.kneeMemo) >= MaxKneeMemoEntries {
		clear(s.kneeMemo)
		s.cacheStats.Clears++
	}
	s.kneeMemo[kneeKey{p: p, t: t, sig: sig}] = alloc
	s.cacheStats.KneeMisses++
}

// clearKneeMemo generation-clears the knee memo after a free-set
// change: entries keyed by signatures the layer has left behind can
// only be hit again if that exact set returns, so Degrade/Restore
// drops them wholesale rather than letting a churning fault plan strand
// one map generation per free-set it visits.
func (s *System) clearKneeMemo() {
	if len(s.kneeMemo) == 0 {
		return
	}
	clear(s.kneeMemo)
	s.cacheStats.Clears++
}
