package sched

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mlimp/internal/event"
	"mlimp/internal/isa"
)

// Chaos testing: schedulers must complete every schedulable batch —
// never deadlock, never drop or duplicate a job, never allocate more
// than a layer's capacity at any instant — across randomly degraded
// systems (shrunken capacities, reduced slots, layers missing from
// jobs' estimate maps, adversarial true/estimate divergence).

// chaosSystem builds a system with randomly degraded layers.
func chaosSystem(rng *rand.Rand) *System {
	targets := []isa.Target{}
	for _, t := range isa.Targets {
		if rng.Intn(4) > 0 { // each layer present w.p. 3/4
			targets = append(targets, t)
		}
	}
	if len(targets) == 0 {
		targets = []isa.Target{isa.SRAM}
	}
	sys := NewSystem(targets...)
	for _, l := range sys.Layers {
		l.SetCapacity(1 + rng.Intn(l.Capacity()))
		l.Slots = 1 + rng.Intn(8)
	}
	return sys
}

// chaosJobs builds jobs with partial per-layer support and wildly
// divergent estimates.
func chaosJobs(rng *rand.Rand, sys *System, n int) []*Job {
	targets := sys.Targets()
	jobs := make([]*Job, n)
	for i := range jobs {
		est := map[isa.Target]Profile{}
		// Every job supports a random non-empty subset of the layers.
		perm := rng.Perm(len(targets))
		k := 1 + rng.Intn(len(targets))
		trueEst := map[isa.Target]Profile{}
		for _, idx := range perm[:k] {
			t := targets[idx]
			p := Profile{
				UnitCycles: 1 + rng.Int63n(1e8),
				RepUnit:    1 + rng.Intn(sys.Layers[t].Capacity()),
				LoadBytes:  rng.Int63n(1 << 22),
				Beta:       0.3 + rng.Float64()*0.7,
			}
			if rng.Intn(3) == 0 {
				p.MaxUseful = p.RepUnit * (1 + rng.Intn(8))
			}
			trueEst[t] = p
			q := p
			q.UnitCycles = int64(float64(p.UnitCycles) * math.Exp(rng.NormFloat64()))
			if q.UnitCycles < 1 {
				q.UnitCycles = 1
			}
			est[t] = q
		}
		j := &Job{ID: i, Name: "chaos", Est: est}
		j.TrueTime = func(s *System, t isa.Target, arrays int) event.Time {
			p, ok := trueEst[t]
			if !ok {
				// Scheduled onto a layer the truth does not know: treat
				// the estimate as the truth rather than dying.
				p = est[t]
			}
			exact := &Job{ID: -1, Est: map[isa.Target]Profile{t: p}}
			return s.ModelTime(exact, t, arrays)
		}
		jobs[i] = j
	}
	return jobs
}

// verifyNoOverlapOvercommit replays the assignments and checks that at
// no instant does a layer exceed its capacity or slot count.
func verifyNoOverlapOvercommit(t *testing.T, sys *System, res *Result) {
	t.Helper()
	type ev struct {
		at     event.Time
		arrays int
		slots  int
	}
	perLayer := map[isa.Target][]ev{}
	for _, a := range res.Assignments {
		perLayer[a.Target] = append(perLayer[a.Target],
			ev{a.Start, a.Arrays, 1}, ev{a.End, -a.Arrays, -1})
	}
	for tgt, evs := range perLayer {
		l := sys.Layers[tgt]
		// Sweep in time order; at equal times process releases first.
		for i := 1; i < len(evs); i++ {
			for k := i; k > 0; k-- {
				if evs[k].at < evs[k-1].at ||
					(evs[k].at == evs[k-1].at && evs[k].arrays < evs[k-1].arrays) {
					evs[k], evs[k-1] = evs[k-1], evs[k]
				} else {
					break
				}
			}
		}
		arrays, slots := 0, 0
		for _, e := range evs {
			arrays += e.arrays
			slots += e.slots
			if arrays > l.Capacity() {
				t.Fatalf("%s: %d arrays in use, capacity %d", tgt, arrays, l.Capacity())
			}
			if slots > l.Slots {
				t.Fatalf("%s: %d slots in use, limit %d", tgt, slots, l.Slots)
			}
		}
	}
}

func TestChaosAllSchedulersProperty(t *testing.T) {
	scheds := []Scheduler{LJF{}, NewAdaptive(), NewGlobal()}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sys := chaosSystem(rng)
		// Jobs must be able to run somewhere in this system: restrict
		// their Est subsets to present layers (chaosJobs does).
		jobs := chaosJobs(rng, sys, 1+rng.Intn(40))
		for _, sc := range scheds {
			res := sc.Schedule(sys, jobs)
			if len(res.Assignments) != len(jobs) {
				t.Logf("seed %d: %s completed %d of %d", seed, sc.Name(), len(res.Assignments), len(jobs))
				return false
			}
			seen := map[int]bool{}
			for _, a := range res.Assignments {
				if seen[a.Job.ID] || a.Arrays <= 0 || a.End < a.Start {
					return false
				}
				seen[a.Job.ID] = true
				if _, ok := sys.Layers[a.Target]; !ok {
					return false
				}
			}
			verifyNoOverlapOvercommit(t, sys, res)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestChaosStrictLJFCompletes(t *testing.T) {
	// Strict LJF waits for each job's best memory; even so it must
	// finish every batch on degraded systems where that memory exists.
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 20; trial++ {
		sys := chaosSystem(rng)
		jobs := chaosJobs(rng, sys, 1+rng.Intn(30))
		res := LJF{Strict: true}.Schedule(sys, jobs)
		if len(res.Assignments) != len(jobs) {
			t.Fatalf("trial %d: %d of %d", trial, len(res.Assignments), len(jobs))
		}
	}
}
