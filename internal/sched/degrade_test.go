package sched

import (
	"testing"

	"mlimp/internal/isa"
)

func degradeJob() *Job {
	return &Job{ID: 1, Name: "deg", Kind: "gemm", Est: map[isa.Target]Profile{
		isa.SRAM: {UnitCycles: 1 << 22, RepUnit: 4, LoadBytes: 1 << 14, Beta: 0.8},
	}}
}

func TestDegradeTriggersKneeResearch(t *testing.T) {
	sys := NewSystem(isa.SRAM)
	j := degradeJob()
	healthyCap := sys.Layers[isa.SRAM].Capacity()
	kneeHealthy := sys.KneeAlloc(j, isa.SRAM)
	timeHealthy := sys.ModelTime(j, isa.SRAM, kneeHealthy)

	removed := sys.Degrade(isa.SRAM, healthyCap-4)
	if removed != healthyCap-4 {
		t.Fatalf("Degrade removed %d, want %d", removed, healthyCap-4)
	}
	if sys.Layers[isa.SRAM].Capacity() != 4 {
		t.Fatalf("degraded capacity = %d, want 4", sys.Layers[isa.SRAM].Capacity())
	}
	kneeDegraded := sys.KneeAlloc(j, isa.SRAM)
	if kneeDegraded > 4 {
		t.Errorf("degraded knee %d exceeds capacity 4", kneeDegraded)
	}
	if kneeDegraded >= kneeHealthy {
		t.Errorf("degraded knee %d not below healthy knee %d", kneeDegraded, kneeHealthy)
	}
	if timeDegraded := sys.ModelTime(j, isa.SRAM, kneeDegraded); timeDegraded < timeHealthy {
		t.Errorf("degraded knee time %v beats healthy %v", timeDegraded, timeHealthy)
	}

	if sys.Restore(isa.SRAM, healthyCap) != healthyCap-4 {
		t.Error("Restore not clamped to lost arrays")
	}
	if sys.Layers[isa.SRAM].Capacity() != healthyCap {
		t.Errorf("restored capacity = %d, want %d", sys.Layers[isa.SRAM].Capacity(), healthyCap)
	}
	if knee := sys.KneeAlloc(j, isa.SRAM); knee != kneeHealthy {
		t.Errorf("restored knee = %d, want memoized %d", knee, kneeHealthy)
	}
}

func TestDegradeFloorsAtOneArray(t *testing.T) {
	sys := NewSystem(isa.ReRAM)
	cap0 := sys.Layers[isa.ReRAM].Capacity()
	if removed := sys.Degrade(isa.ReRAM, cap0*10); removed != cap0-1 {
		t.Errorf("over-degrade removed %d, want %d", removed, cap0-1)
	}
	if sys.Layers[isa.ReRAM].Capacity() != 1 {
		t.Errorf("floored capacity = %d, want 1", sys.Layers[isa.ReRAM].Capacity())
	}
	if sys.Lost(isa.ReRAM) != cap0-1 || sys.LostTotal() != cap0-1 {
		t.Errorf("Lost = %d / total %d, want %d", sys.Lost(isa.ReRAM), sys.LostTotal(), cap0-1)
	}
	if sys.HealthyCapacity(isa.ReRAM) != cap0 {
		t.Errorf("HealthyCapacity = %d, want baseline %d", sys.HealthyCapacity(isa.ReRAM), cap0)
	}
}

func TestDegradeAbsentAndNoops(t *testing.T) {
	sys := NewSystem(isa.SRAM)
	if sys.Degrade(isa.DRAM, 5) != 0 {
		t.Error("degrading an absent layer removed arrays")
	}
	if sys.Restore(isa.SRAM, 5) != 0 {
		t.Error("restoring a healthy layer returned arrays")
	}
	if sys.Degrade(isa.SRAM, 0) != 0 || sys.Degrade(isa.SRAM, -3) != 0 {
		t.Error("non-positive degrade removed arrays")
	}
	if sys.HealthyCapacity(isa.DRAM) != 0 {
		t.Error("HealthyCapacity of an absent layer nonzero")
	}
	if sys.HealthyCapacity(isa.SRAM) != sys.Layers[isa.SRAM].Capacity() {
		t.Error("HealthyCapacity of an untouched layer differs from current")
	}
}
