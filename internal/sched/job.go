// Package sched implements the MLIMP job scheduler (Section III-C): the
// analytical execution-time model with variable memory allocation, the
// knee-based allocation sizing, the Longest-Job-First baseline, the
// adaptive scheduler with inter-queue adjustment (Algorithm 1), and the
// global scheduler with intra-queue adjustment (Algorithm 2). Scheduling
// here is an instance of the NP-hard resource-constrained project
// scheduling problem, so everything below is a heuristic, exactly as in
// the paper.
package sched

import (
	"fmt"
	"math"

	"mlimp/internal/event"
	"mlimp/internal/isa"
	"mlimp/internal/mainmem"
	"mlimp/internal/mem"
)

// Profile is the scheduler's belief about one job on one memory: the
// unit-allocation compute cycles (from the performance predictor or
// static analysis), the working-set size in arrays, the data movement,
// and the scale-free shape parameter.
type Profile struct {
	UnitCycles   int64 // t_cmpt(x, a_repunit) in device cycles
	RepUnit      int   // a_repunit in arrays (>= 1)
	LoadBytes    int64
	StoreBytes   int64
	ProgramBytes int64   // ReRAM weight-programming traffic
	Beta         float64 // scale-free exponent, 0 < beta <= 1
	// Overhead is the allocation-independent host cost per invocation
	// (scheduling, predictor, launch — "<2% of SpMM kernel", Sec. V-B2).
	Overhead event.Time
	// MaxUseful caps the allocation beyond which the power law stops
	// applying (e.g. one SpMM replica per input row exhausts the
	// input-row parallelism). Zero means no cap.
	MaxUseful int
}

// ScaleToBits rescales the profile for bits-wide operands. The devices
// compute bit-serially and move data byte-serially, so compute cycles
// and every byte stream scale linearly with the operand width, and the
// stationary working set shrinks the same way (RepUnit scales by ceil —
// a narrower layer needs fewer arrays per replica, freeing capacity for
// replication to consume). Widths at or above the 16-bit default return
// the profile unchanged.
func (p Profile) ScaleToBits(bits int) Profile {
	if bits <= 0 || bits >= 16 {
		return p
	}
	scale := func(v int64) int64 {
		if v <= 0 {
			return v
		}
		return (v*int64(bits) + 15) / 16
	}
	p.UnitCycles = scale(p.UnitCycles)
	p.LoadBytes = scale(p.LoadBytes)
	p.StoreBytes = scale(p.StoreBytes)
	p.ProgramBytes = scale(p.ProgramBytes)
	if p.RepUnit > 1 {
		p.RepUnit = (p.RepUnit*bits + 15) / 16
	}
	return p
}

// DefaultBeta is the empirical shape parameter: parallelisation costs
// make speedup sublinear ("setting the shape parameter beta less than
// 1", Section III-C3).
const DefaultBeta = 0.8

// programWriteSlowdown derates the DDR streaming model for ReRAM cell
// programming, whose write latency/energy far exceeds reads (Sec. II-A).
const programWriteSlowdown = 4

// inPlaceDiscount is the load/store advantage of in-DRAM computing: the
// operands already live in main memory, so "loading" is a RowClone copy
// into the compute rows rather than a DDR-pin transfer. In-bank copies
// move a full row per activation pair, roughly 16x the pin bandwidth
// across banks.
const inPlaceDiscount = 16

// EffectiveLoadBytes returns the DDR-equivalent traffic of moving bytes
// into an in-memory compute region of target t. In-SRAM and in-ReRAM
// computing stream over the memory channel; in-DRAM computing copies in
// place.
func EffectiveLoadBytes(t isa.Target, bytes int64) int64 {
	if t == isa.DRAM {
		return bytes / inPlaceDiscount
	}
	return bytes
}

// Job is one schedulable MLIMP job. Est drives scheduling decisions;
// TrueTime (if set) drives the simulation, letting experiments separate
// predictor error from scheduler quality. A nil TrueTime means the
// estimates are exact (the deterministic data-parallel case).
type Job struct {
	ID   int
	Name string
	// Kind tags the kernel family ("spmm", "gemm", "vadd", or an app
	// name) for the execution-time breakdowns of Figures 12/13.
	Kind string
	// Tenant names the workload owner for multi-tenant packing. Jobs of
	// different tenants are placed on disjoint array sets (see
	// packing.go); the empty string is the single-tenant default.
	Tenant string
	// Stage tags the pipeline stage this job is one invocation of
	// (e.g. "spmm-l0"). Jobs sharing a stage share a stationary working
	// set, so they may be fanned across standing replicas of that stage
	// (replicate.go). Empty means the job is not replicable.
	Stage string
	// Bits is the operand width the job computes at; zero means the full
	// 16-bit default. The job generators pre-scale Est with
	// Profile.ScaleToBits; Bits rides along for the energy model.
	Bits int
	Est  map[isa.Target]Profile
	// TrueTime returns the actual execution time of the job on target t
	// with an allocation of arrays arrays.
	TrueTime func(sys *System, t isa.Target, arrays int) event.Time
}

// String identifies the job.
func (j *Job) String() string { return fmt.Sprintf("job%d(%s)", j.ID, j.Name) }

// System is the set of memory layers available to the scheduler plus the
// shared DDR4 path for loads and stores. It memoizes the analytical
// cost model (see costcache.go); like the DDR controller it wraps, a
// System is not safe for concurrent use.
type System struct {
	Layers map[isa.Target]*Layer
	DDR    *mainmem.Controller

	// Packing selects the multi-tenant array packing policy applied by
	// the placement simulation (packing.go). The zero value, PackFirstFit,
	// reproduces the single-pool behaviour exactly.
	Packing Packing

	// Replication selects whether the schedulers may pin standing
	// replicas of bottleneck stages onto idle arrays (replicate.go). The
	// zero value, ReplicateOff, reproduces the replica-free behaviour
	// exactly.
	Replication ReplicationPolicy

	profMemo   map[profKey]event.Time
	kneeMemo   map[kneeKey]int
	cacheStats CacheStats
	targets    []isa.Target // memoised Targets(); Layers is fixed after construction
}

// Layer is one computable memory exposed to the scheduler. Capacity is
// array-granular: the layer owns physical array IDs [0, universe), of
// which avail are currently in service; decommissioned sets live on a
// LIFO stack so Restore returns exactly the IDs Degrade removed.
type Layer struct {
	Cfg   mem.Config
	Slots int // outstanding-job limit

	universe int        // physical IDs [0, universe) this layer owns
	avail    ArraySet   // arrays currently in service
	sig      uint64     // memo signature of avail + replicas (costcache.go)
	lost     []ArraySet // decommissioned sets, most recent last

	replicas []Replica // standing stage replicas pinned out of avail
	repWant  *repSpec  // replica config a Degrade tore down (replicate.go)
}

// NewLayer builds a layer owning array IDs [0, arrays).
func NewLayer(cfg mem.Config, arrays, slots int) *Layer {
	l := &Layer{Cfg: cfg, Slots: slots}
	l.SetCapacity(arrays)
	return l
}

// Capacity returns the number of arrays currently in service.
func (l *Layer) Capacity() int { return l.avail.Count() }

// SetCapacity resizes the layer to own array IDs [0, n) with every
// array in service, discarding any degradation history — the
// cluster-scaling and test hook, not the fault path (see degrade.go).
func (l *Layer) SetCapacity(n int) {
	if n < 0 {
		n = 0
	}
	l.universe = n
	l.avail = NewRange(0, n)
	l.lost = nil
	l.replicas = nil
	l.repWant = nil
	l.sig = l.avail.Signature()
}

// Avail returns a copy of the in-service array set.
func (l *Layer) Avail() ArraySet { return l.avail.Clone() }

// NewSystem builds a system from the given Table III configurations,
// allocating every array of each device to in-memory compute except the
// SRAM half reserved for the conventional cache (Section V-A).
func NewSystem(targets ...isa.Target) *System {
	s := &System{Layers: map[isa.Target]*Layer{}, DDR: mainmem.NewController(mainmem.DDR4_2400())}
	for _, t := range targets {
		cfg := mem.ConfigFor(t)
		capacity := cfg.NumArrays
		if t == isa.SRAM {
			capacity /= 2 // half the LLC stays a general cache
		}
		s.Layers[t] = NewLayer(cfg, capacity, cfg.MaxJobs)
	}
	return s
}

// Targets returns the system's layers in canonical order. The result
// is memoised (the layer set never changes after construction) and
// shared across calls — callers must treat it as read-only.
func (s *System) Targets() []isa.Target {
	if s.targets == nil {
		for _, t := range isa.Targets {
			if _, ok := s.Layers[t]; ok {
				s.targets = append(s.targets, t)
			}
		}
	}
	return s.targets
}

// ModelTime evaluates the analytical model t(x,m) of Equations 1-3 for
// an allocation of m arrays on target t:
//
//	t(x,m)      = n_iter * (t_ld + t_cmpt)            (Eq. 1)
//	t_ld(x,m)   = t_ld(x) + t_replica(m / a_repunit)  (Eq. 2)
//	t_cmpt(x,m) = t_cmpt(x, a_repunit) * (a_repunit/m)^beta  (Eq. 3)
//
// The iteration count and per-iteration terms are folded together: the
// total load streams LoadBytes once regardless of n_iter, the power law
// covers both shrinking (m < a_repunit) and replicating (m > a_repunit)
// allocations, and replica copies are in-memory row moves parallel
// across arrays.
func (s *System) ModelTime(j *Job, t isa.Target, arrays int) event.Time {
	p, ok := j.Est[t]
	if !ok {
		return math.MaxInt64 // job cannot run on this layer
	}
	return s.profileTime(p, t, arrays)
}

// profileTime evaluates the model through the System's memo (the hot
// entry point for ModelTime, KneeAlloc and the schedulers).
func (s *System) profileTime(p Profile, t isa.Target, arrays int) event.Time {
	if arrays <= 0 {
		panic("sched: non-positive allocation")
	}
	return s.memoProfileTime(p, t, arrays)
}

// profileParts evaluates the allocation-dependent pieces of Equations
// 1-3: the load/overhead term t_ld and the compute scale factor
// (a_repunit/m)^beta, such that t(x,m) = ld + Cycles(UnitCycles)*scale.
// Factored out so the model can be run forward (computeProfileTime) and
// inverted (ObservedUnitCycles) from one definition.
func (s *System) profileParts(p Profile, t isa.Target, arrays int) (ld event.Time, scale float64) {
	l := s.Layers[t]
	clock := l.Cfg.Clock()

	beta := p.Beta
	if beta == 0 {
		beta = DefaultBeta
	}
	repUnit := p.RepUnit
	if repUnit < 1 {
		repUnit = 1
	}
	effArrays := arrays
	if p.MaxUseful > 0 && effArrays > p.MaxUseful {
		effArrays = p.MaxUseful
	}
	scale = math.Pow(float64(repUnit)/float64(effArrays), beta)

	ld = p.Overhead + s.DDR.StreamTime(p.LoadBytes) + s.DDR.StreamTime(p.StoreBytes)
	if p.ProgramBytes > 0 {
		ld += s.DDR.StreamTime(p.ProgramBytes) * programWriteSlowdown
	}
	if replicas := effArrays / repUnit; replicas > 1 {
		// Replication doubles the copy fan-out each round (1->2->4->...),
		// each round moving one working set row-parallel across arrays.
		rounds := int64(0)
		for v := replicas - 1; v > 0; v >>= 1 {
			rounds++
		}
		ld += clock.Cycles(rounds * int64(l.Cfg.ArrayRows))
	}
	return ld, scale
}

// computeProfileTime evaluates Equations 1-3 from scratch — pure in
// (p, t, arrays) given the layer's immutable configuration.
func (s *System) computeProfileTime(p Profile, t isa.Target, arrays int) event.Time {
	ld, scale := s.profileParts(p, t, arrays)
	clock := s.Layers[t].Cfg.Clock()
	return ld + event.Time(float64(clock.Cycles(p.UnitCycles))*scale)
}

// ObservedUnitCycles inverts the cost model: given the observed span of
// a job that executed on target t with the given allocation under
// profile p, it returns the unit-allocation compute cycle count the
// model would have needed to predict that span exactly. The serving
// front end feeds these implied cycles back into the online predictor
// as training observations. Spans at or below the load/overhead term
// imply no measurable compute and floor at one cycle.
func (s *System) ObservedUnitCycles(p Profile, t isa.Target, arrays int, span event.Time) int64 {
	ld, scale := s.profileParts(p, t, arrays)
	clock := s.Layers[t].Cfg.Clock()
	cmpt := span - ld
	if cmpt <= 0 || scale <= 0 {
		return 1
	}
	c := clock.CyclesAt(event.Time(float64(cmpt) / scale))
	if c < 1 {
		c = 1
	}
	return c
}

// ActualTime returns the simulated execution time: TrueTime when the job
// carries ground truth, otherwise the model applied to its estimates.
func (s *System) ActualTime(j *Job, t isa.Target, arrays int) event.Time {
	if j.TrueTime != nil {
		return j.TrueTime(s, t, arrays)
	}
	return s.ModelTime(j, t, arrays)
}

// BestTarget returns the layer with the smallest modelled time at the
// knee allocation, together with that time.
func (s *System) BestTarget(j *Job) (isa.Target, event.Time) {
	best := isa.Target(0)
	bestT := event.Time(math.MaxInt64)
	for _, t := range s.Targets() {
		if _, ok := j.Est[t]; !ok {
			continue
		}
		m := s.KneeAlloc(j, t)
		if tt := s.ModelTime(j, t, m); tt < bestT {
			bestT = tt
			best = t
		}
	}
	return best, bestT
}

// kneeGridPoints is the sampling resolution of the execution-time curve.
const kneeGridPoints = 48

// KneeAlloc returns the allocation size at the knee of the execution
// time curve t(x,m): the paper picks the m that maximises the angular
// speed of the tangent to the (normalised) curve, which avoids the
// overprovisioning that plain argmin produces once the curve flattens.
// The knee is memoized per (profile, target, free-set signature) — the
// grid search below samples the model at kneeGridPoints allocations,
// and every job of one app shares the same knee.
func (s *System) KneeAlloc(j *Job, t isa.Target) int {
	p, ok := j.Est[t]
	if !ok {
		return 1
	}
	return s.kneeForProfile(p, t)
}

// kneeForProfile is KneeAlloc on a bare profile — shared with the
// replica planner, which sizes replicas for a stage profile without a
// job in hand.
func (s *System) kneeForProfile(p Profile, t isa.Target) int {
	l := s.Layers[t]
	maxM := l.Capacity()
	if maxM < 1 {
		return 1
	}
	if knee, ok := s.memoKneeAlloc(p, t, l.sig); ok {
		return knee
	}
	knee := s.kneeSearch(p, t, maxM)
	s.storeKneeAlloc(p, t, l.sig, knee)
	return knee
}

// kneeSearch runs the grid search for the knee of t(x,m) on [1, maxM].
func (s *System) kneeSearch(p Profile, t isa.Target, maxM int) int {
	// Geometric grid over [1, maxM].
	ms := make([]int, 0, kneeGridPoints)
	prev := 0
	for i := 0; i < kneeGridPoints; i++ {
		m := int(math.Round(math.Pow(float64(maxM), float64(i)/(kneeGridPoints-1))))
		if m <= prev {
			m = prev + 1
		}
		if m > maxM {
			break
		}
		ms = append(ms, m)
		prev = m
	}
	if len(ms) < 3 {
		return maxM
	}
	ts := make([]float64, len(ms))
	for i, m := range ms {
		ts[i] = float64(s.profileTime(p, t, m))
	}
	// Normalise both axes to [0,1].
	tMin, tMax := ts[0], ts[0]
	for _, v := range ts {
		tMin = math.Min(tMin, v)
		tMax = math.Max(tMax, v)
	}
	if tMax == tMin {
		return ms[0] // flat curve: smallest allocation suffices
	}
	// Knee = the point of the normalised curve farthest below the chord
	// between its endpoints — where the tangent angle changes fastest
	// overall, i.e. the transition from "more memory buys real speedup"
	// to "the curve has flattened".
	mLo, mHi := float64(ms[0]), float64(ms[len(ms)-1])
	n0 := func(m float64) float64 { return (m - mLo) / (mHi - mLo) }
	bestIdx, bestDist := 0, math.Inf(-1)
	for i := range ms {
		mN := n0(float64(ms[i]))
		tN := (ts[i] - tMin) / (tMax - tMin)
		chord := ts[0] + (ts[len(ts)-1]-ts[0])*mN // normalised chord value
		chordN := (chord - tMin) / (tMax - tMin)
		if d := chordN - tN; d > bestDist {
			bestDist = d
			bestIdx = i
		}
	}
	return ms[bestIdx]
}
