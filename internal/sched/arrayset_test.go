package sched

import (
	"math/rand"
	"testing"
)

func TestArraySetBasics(t *testing.T) {
	a := NewRange(0, 10)
	if a.Count() != 10 || a.Empty() {
		t.Fatalf("NewRange(0,10): count=%d empty=%v", a.Count(), a.Empty())
	}
	if got := NewRange(5, 5); !got.Empty() {
		t.Errorf("degenerate range should be empty, got %v", got)
	}
	lo := a.TakeLowest(3)
	if lo.String() != "[0,3)" || a.String() != "[3,10)" {
		t.Errorf("TakeLowest: got %v, rest %v", lo, a)
	}
	hi := a.TakeHighest(2)
	if hi.String() != "[8,10)" || a.String() != "[3,8)" {
		t.Errorf("TakeHighest: got %v, rest %v", hi, a)
	}
	a.Add(lo)
	a.Add(hi)
	if a.String() != "[0,10)" {
		t.Errorf("round trip did not coalesce: %v", a)
	}
}

func TestArraySetTakeAcrossSpans(t *testing.T) {
	a := NewRange(0, 4)
	a.Add(NewRange(6, 10))
	got := a.TakeLowest(6)
	if got.String() != "[0,4) [6,8)" {
		t.Errorf("TakeLowest across gap = %v", got)
	}
	if a.String() != "[8,10)" {
		t.Errorf("rest = %v", a)
	}
	b := NewRange(0, 4)
	b.Add(NewRange(6, 10))
	top := b.TakeHighest(6)
	if top.String() != "[2,4) [6,10)" {
		t.Errorf("TakeHighest across gap = %v", top)
	}
	if b.String() != "[0,2)" {
		t.Errorf("rest = %v", b)
	}
}

func TestArraySetTakePanicsPastEnd(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic taking past end")
		}
	}()
	a := NewRange(0, 3)
	a.TakeLowest(4)
}

func TestArraySetAddPanicsOnOverlap(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on double free")
		}
	}()
	a := NewRange(0, 5)
	a.Add(NewRange(4, 6))
}

func TestArraySetIntersectsContains(t *testing.T) {
	a := NewRange(0, 4)
	a.Add(NewRange(8, 12))
	b := NewRange(4, 8)
	if a.Intersects(b) {
		t.Errorf("%v should not intersect %v", a, b)
	}
	c := NewRange(3, 5)
	if !a.Intersects(c) {
		t.Errorf("%v should intersect %v", a, c)
	}
	if !a.Contains(NewRange(9, 11)) {
		t.Errorf("%v should contain [9,11)", a)
	}
	if a.Contains(NewRange(3, 9)) {
		t.Errorf("%v should not contain [3,9)", a)
	}
	if !a.Contains(ArraySet{}) {
		t.Error("every set contains the empty set")
	}
}

// Signature is canonical: equal sets hash equal however they were
// assembled, and a take/add round trip restores the original signature.
func TestArraySetSignatureCanonical(t *testing.T) {
	a := NewRange(0, 100)
	sig := a.Signature()
	taken := a.TakeLowest(17)
	if a.Signature() == sig {
		t.Error("signature unchanged after take")
	}
	a.Add(taken)
	if a.Signature() != sig {
		t.Errorf("round trip changed signature: %v", a)
	}
	b := NewRange(0, 40)
	b.Add(NewRange(40, 100))
	if b.Signature() != sig {
		t.Errorf("piecewise-assembled set hashes differently: %v", b)
	}
	if NewRange(0, 99).Signature() == sig {
		t.Error("different sets should hash differently")
	}
}

// Property: random take/put sequences conserve the ID population — the
// union of everything out plus the pool equals the initial range, and
// outstanding takes are mutually disjoint.
func TestArraySetChaosConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const universe = 500
	pool := NewRange(0, universe)
	var out []ArraySet
	for step := 0; step < 2000; step++ {
		if free := pool.Count(); free > 0 && (len(out) == 0 || rng.Intn(2) == 0) {
			n := 1 + rng.Intn(free)
			if rng.Intn(2) == 0 {
				out = append(out, pool.TakeLowest(n))
			} else {
				out = append(out, pool.TakeHighest(n))
			}
		} else if len(out) > 0 {
			i := rng.Intn(len(out))
			pool.Add(out[i])
			out[i] = out[len(out)-1]
			out = out[:len(out)-1]
		}
		total := pool.Count()
		for i, s := range out {
			total += s.Count()
			if pool.Intersects(s) {
				t.Fatalf("step %d: pool %v intersects outstanding %v", step, pool, s)
			}
			for _, s2 := range out[i+1:] {
				if s.Intersects(s2) {
					t.Fatalf("step %d: outstanding sets %v and %v intersect", step, s, s2)
				}
			}
		}
		if total != universe {
			t.Fatalf("step %d: population %d, want %d", step, total, universe)
		}
	}
}
