package sched

import (
	"testing"

	"mlimp/internal/isa"
)

// stagedBatch builds a batch dominated by one SpMM-like stage: count
// independent invocations of the stage (each tagged with the same Stage
// string) plus a few unstaged background jobs.
func stagedBatch(count int) []*Job {
	var jobs []*Job
	for i := 0; i < count; i++ {
		j := mkJob(i, map[isa.Target]int64{isa.ReRAM: cyclesForTime(isa.ReRAM, 4)}, 8, 1<<20)
		j.Stage = "spmm-l0"
		jobs = append(jobs, j)
	}
	for i := 0; i < 3; i++ {
		jobs = append(jobs, mkJob(count+i,
			map[isa.Target]int64{isa.SRAM: cyclesForTime(isa.SRAM, 1)}, 4, 1<<18))
	}
	return jobs
}

func TestEnsureReplicasPinsBottleneck(t *testing.T) {
	sys := fullSystem()
	sys.Replication = ReplicateWhenIdle
	jobs := stagedBatch(8)
	sys.EnsureReplicas(jobs)
	reps := sys.Replicas(isa.ReRAM)
	if len(reps) == 0 {
		t.Fatal("no replicas pinned for the bottleneck stage")
	}
	if reps[0].Stage != "spmm-l0" {
		t.Errorf("pinned stage = %q", reps[0].Stage)
	}
	// Pinned arrays left the free set but are not lost.
	healthy := sys.HealthyCapacity(isa.ReRAM)
	if got := sys.Layers[isa.ReRAM].Capacity() + replicaArrays(sys.Layers[isa.ReRAM]); got != healthy {
		t.Errorf("capacity %d + replicas != healthy %d", got, healthy)
	}
	if sys.Lost(isa.ReRAM) != 0 {
		t.Errorf("Lost = %d with no faults", sys.Lost(isa.ReRAM))
	}
	// The reserve keeps at least half the layer for regular placement.
	if free := sys.Layers[isa.ReRAM].Capacity(); free < healthy/2 {
		t.Errorf("free %d below the half-capacity reserve of %d", free, healthy)
	}
	// Replica sets are disjoint from the free set and from each other.
	avail := sys.Layers[isa.ReRAM].Avail()
	for i, r := range reps {
		if avail.Intersects(r.Set) {
			t.Errorf("replica %d overlaps the free set", i)
		}
		for k := i + 1; k < len(reps); k++ {
			if r.Set.Intersects(reps[k].Set) {
				t.Errorf("replicas %d and %d overlap", i, k)
			}
		}
	}
	// Off policy tears everything down and returns every array.
	sys.Replication = ReplicateOff
	sys.EnsureReplicas(jobs)
	if sys.ReplicaCount() != 0 {
		t.Error("replicas survived ReplicateOff")
	}
	if got := sys.Layers[isa.ReRAM].Capacity(); got != healthy {
		t.Errorf("capacity %d after teardown, want %d", got, healthy)
	}
}

func TestEnsureReplicasKeepsPinAcrossBatches(t *testing.T) {
	sys := fullSystem()
	sys.Replication = ReplicateWhenIdle
	sys.EnsureReplicas(stagedBatch(8))
	sig := sys.Replicas(isa.ReRAM)[0].Set.Signature()
	// Same stage again: the pin (and its programmed weights) survives.
	sys.EnsureReplicas(stagedBatch(6))
	reps := sys.Replicas(isa.ReRAM)
	if len(reps) == 0 || reps[0].Set.Signature() != sig {
		t.Error("pin was rebuilt for an unchanged stage")
	}
	// A batch without the stage re-plans (here: nothing to replicate).
	plain := []*Job{
		mkJob(0, map[isa.Target]int64{isa.SRAM: 1e7}, 4, 1<<18),
		mkJob(1, map[isa.Target]int64{isa.SRAM: 1e7}, 4, 1<<18),
	}
	sys.EnsureReplicas(plain)
	if sys.ReplicaCount() != 0 {
		t.Error("stale pin survived a batch without its stage")
	}
}

func TestReplicationSpeedsUpBottleneck(t *testing.T) {
	for _, sc := range []Scheduler{NewAdaptive(), NewGlobal(), LJF{}} {
		base := fullSystem()
		baseRes := sc.Schedule(base, stagedBatch(12))

		rep := fullSystem()
		rep.Replication = ReplicateWhenIdle
		repRes := sc.Schedule(rep, stagedBatch(12))

		if rep.ReplicaCount() == 0 {
			t.Fatalf("%s: no replicas built", sc.Name())
		}
		if repRes.Makespan >= baseRes.Makespan {
			t.Errorf("%s: replicated makespan %v !< baseline %v",
				sc.Name(), repRes.Makespan, baseRes.Makespan)
		}
		if len(repRes.Assignments) != len(baseRes.Assignments) {
			t.Errorf("%s: %d assignments, want %d",
				sc.Name(), len(repRes.Assignments), len(baseRes.Assignments))
		}
	}
}

func TestReplicationDeterministic(t *testing.T) {
	run := func() *Result {
		sys := fullSystem()
		sys.Replication = ReplicateWhenIdle
		return NewAdaptive().Schedule(sys, stagedBatch(12))
	}
	a, b := run(), run()
	if a.Makespan != b.Makespan || len(a.Assignments) != len(b.Assignments) {
		t.Fatalf("nondeterministic: %v vs %v", a, b)
	}
	for i := range a.Assignments {
		x, y := a.Assignments[i], b.Assignments[i]
		if x.Job.ID != y.Job.ID || x.Target != y.Target || x.Start != y.Start || x.End != y.End {
			t.Fatalf("assignment %d differs: %+v vs %+v", i, x, y)
		}
	}
}

func TestDegradeReclaimsReplicasFirst(t *testing.T) {
	sys := fullSystem()
	sys.Replication = ReplicateWhenIdle
	sys.EnsureReplicas(stagedBatch(8))
	l := sys.Layers[isa.ReRAM]
	pinned := replicaArrays(l)
	if pinned == 0 {
		t.Fatal("no replicas to reclaim")
	}
	freeBefore := l.Capacity()
	// Degrading one array must tear down the replicas (spare capacity
	// goes first) and take the single lost ID from the ex-replica range.
	if got := sys.Degrade(isa.ReRAM, 1); got != 1 {
		t.Fatalf("Degrade = %d", got)
	}
	if sys.ReplicaCount() != 0 {
		t.Error("replicas survived Degrade")
	}
	if got := l.Capacity(); got != freeBefore+pinned-1 {
		t.Errorf("capacity %d after degrade, want %d", got, freeBefore+pinned-1)
	}
	if sys.Lost(isa.ReRAM) != 1 {
		t.Errorf("Lost = %d", sys.Lost(isa.ReRAM))
	}
	// Restore rebuilds the torn-down replica set.
	if got := sys.Restore(isa.ReRAM, 1); got != 1 {
		t.Fatalf("Restore = %d", got)
	}
	if sys.ReplicaCount() == 0 {
		t.Error("replicas not rebuilt on Restore")
	}
	if got := replicaArrays(sys.Layers[isa.ReRAM]); got != pinned {
		t.Errorf("rebuilt %d replica arrays, want %d", got, pinned)
	}
	if sys.Lost(isa.ReRAM) != 0 {
		t.Errorf("Lost = %d after full restore", sys.Lost(isa.ReRAM))
	}
}

func TestReplicaMemoKeying(t *testing.T) {
	sys := fullSystem()
	sys.Replication = ReplicateWhenIdle
	l := sys.Layers[isa.ReRAM]
	sigBefore := l.sig
	sys.EnsureReplicas(stagedBatch(8))
	if l.sig == sigBefore {
		t.Error("layer signature unchanged by replica pinning")
	}
	// Dropping replicas restores the original free set and signature.
	sys.DropReplicas()
	if l.sig != sigBefore {
		t.Errorf("signature %x after drop, want %x", l.sig, sigBefore)
	}
}

func TestScaleToBits(t *testing.T) {
	p := Profile{UnitCycles: 1000, RepUnit: 8, LoadBytes: 4096, StoreBytes: 1024, ProgramBytes: 2048, Beta: 0.8}
	half := p.ScaleToBits(8)
	if half.UnitCycles != 500 || half.LoadBytes != 2048 || half.StoreBytes != 512 || half.ProgramBytes != 1024 {
		t.Errorf("half-width scaling wrong: %+v", half)
	}
	if half.RepUnit != 4 {
		t.Errorf("RepUnit = %d, want 4", half.RepUnit)
	}
	if half.Beta != p.Beta {
		t.Error("Beta must not scale")
	}
	if got := p.ScaleToBits(16); got != p {
		t.Error("16-bit scaling must be identity")
	}
	if got := p.ScaleToBits(0); got != p {
		t.Error("zero bits means default width")
	}
	// Ceil keeps tiny profiles schedulable.
	tiny := Profile{UnitCycles: 1, RepUnit: 1, LoadBytes: 1}
	if got := tiny.ScaleToBits(8); got.UnitCycles != 1 || got.RepUnit != 1 || got.LoadBytes != 1 {
		t.Errorf("tiny profile scaled to zero: %+v", got)
	}
}
