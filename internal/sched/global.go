package sched

import (
	"math"
	"slices"

	"mlimp/internal/isa"
)

// Global is the global scheduler of Section III-C5: on top of the
// adaptive partition and inter-queue balancing it applies the
// intra-queue adjustment of Algorithm 2 — trading allocation from the
// smallest jobs to the longest so every job finishes near the queue
// mean — and then commits to the complete dispatching schedule computed
// in advance (no opportunistic re-planning, which is why its advantage
// inverts under a noisy predictor).
type Global struct {
	Opts Opts
}

// NewGlobal returns a global scheduler with default options.
func NewGlobal() *Global { return &Global{Opts: DefaultOpts()} }

// Name implements Scheduler.
func (g *Global) Name() string { return "global" }

// Schedule implements Scheduler.
func (g *Global) Schedule(sys *System, jobs []*Job) *Result {
	sys.EnsureReplicas(jobs)
	qs := partition(sys, jobs)
	interQueueAdjust(sys, qs, g.Opts)
	for _, t := range sys.Targets() {
		intraQueueAdjust(sys, t, qs[t], g.Opts)
	}
	// Plan the complete dispatching schedule in advance against the
	// estimates, then execute it rigidly: per-layer order and
	// allocations are fixed, so bubbles appear exactly when the
	// estimates were wrong (the Section V-B3 noise sensitivity).
	plan := dispatchEst(sys, qs, jobs)
	return executePlan(sys, plan, jobs)
}

// dispatchEst simulates the greedy dispatch entirely on estimated times
// and returns the per-layer planned order.
func dispatchEst(sys *System, qs queues, jobs []*Job) map[isa.Target][]*queueItem {
	// Copy the queues: dispatch consumes them. One arena per copy keeps
	// the per-item heap traffic out of the per-batch hot path.
	cp := queues{}
	n := 0
	for _, t := range sys.Targets() {
		n += len(qs[t])
	}
	arena := make([]queueItem, n)
	i := 0
	for _, t := range sys.Targets() {
		items := make([]*queueItem, len(qs[t]))
		for k, it := range qs[t] {
			arena[i] = queueItem{job: it.job, arrays: it.arrays}
			items[k] = &arena[i]
			i++
		}
		cp[t] = items
	}
	res := dispatchWith(sys, cp, jobs, dispatchOpts{expand: true, estMode: true})
	planArena := make([]queueItem, len(res.Assignments))
	plan := map[isa.Target][]*queueItem{}
	for i, a := range res.Assignments {
		planArena[i] = queueItem{job: a.Job, arrays: a.Arrays}
		plan[a.Target] = append(plan[a.Target], &planArena[i])
	}
	// Assignments are completion-ordered; re-order by planned start.
	starts := map[int]int64{}
	for _, a := range res.Assignments {
		starts[a.Job.ID] = int64(a.Start)
	}
	for _, q := range plan {
		sortItemsByKey(q, starts)
	}
	return plan
}

func sortItemsByKey(q []*queueItem, key map[int]int64) {
	slices.SortStableFunc(q, func(a, b *queueItem) int {
		ka, kb := key[a.job.ID], key[b.job.ID]
		switch {
		case ka < kb:
			return -1
		case ka > kb:
			return 1
		}
		return 0
	})
}

// executePlan runs the fixed plan with actual job durations, starting
// each layer's jobs strictly in planned order.
func executePlan(sys *System, plan map[isa.Target][]*queueItem, jobs []*Job) *Result {
	st := newSim(sys, jobs)
	pending := 0
	for _, q := range plan {
		pending += len(q)
	}
	for pending > 0 || st.flying.Len() > 0 {
		for _, t := range sys.Targets() { // canonical order: determinism
			q := plan[t]
			for len(q) > 0 {
				head := q[0]
				arrays := clampAlloc(sys, t, minInt(head.arrays, st.maxGrant(t, head.job.Tenant)))
				if st.placeReplica(head.job, t, arrays) {
					q = q[1:]
					pending--
					continue
				}
				if !st.canPlace(t, arrays, head.job.Tenant) {
					break
				}
				st.place(head.job, t, arrays)
				q = q[1:]
				pending--
			}
			plan[t] = q
		}
		if !st.advance() && pending > 0 {
			panic("sched: plan execution deadlock")
		}
	}
	return st.result
}

// invAllocForTime returns the smallest allocation m that brings job j's
// modelled time on t at or below target — t_max^{-1}(mean_t) of
// Algorithm 2 — found by bisection on the monotone model, capped at the
// layer capacity.
func invAllocForTime(sys *System, j *Job, t isa.Target, target float64) int {
	lo, hi := 1, usefulCap(j, t, sys.Layers[t].Capacity())
	if float64(sys.ModelTime(j, t, hi)) > target {
		return hi // unreachable even at full capacity
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if float64(sys.ModelTime(j, t, mid)) <= target {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// intraQueueAdjust is Algorithm 2 applied to one queue.
func intraQueueAdjust(sys *System, t isa.Target, q []*queueItem, o Opts) {
	if len(q) < 2 {
		return
	}
	for iter := 0; iter < o.MaxAdjust; iter++ {
		// Sort by t(x, z(x)) — current estimated time at planned alloc.
		slices.SortStableFunc(q, func(a, b *queueItem) int {
			ta, tb := sys.ModelTime(a.job, t, a.arrays), sys.ModelTime(b.job, t, b.arrays)
			switch {
			case ta < tb:
				return -1
			case ta > tb:
				return 1
			}
			return 0
		})
		minItem, maxItem := q[0], q[len(q)-1]
		maxT := float64(sys.ModelTime(maxItem.job, t, maxItem.arrays))
		mean := itemMean(sys, t, q)
		if maxT == 0 || (maxT-mean)/maxT <= o.Epsilon {
			return
		}
		want := invAllocForTime(sys, maxItem.job, t, mean)
		swapCnt := want - maxItem.arrays
		// The donor may only give resources down to the point where it
		// would itself exceed the mean (and never below MinArrays) —
		// otherwise the smallest job just becomes the new tail.
		donorFloor := invAllocForTime(sys, minItem.job, t, mean)
		if donorFloor < o.MinArrays {
			donorFloor = o.MinArrays
		}
		if avail := minItem.arrays - donorFloor; swapCnt > avail {
			swapCnt = avail
		}
		if swapCnt <= 0 {
			return // the smallest job is already at its floor
		}
		minItem.arrays -= swapCnt
		maxItem.arrays += swapCnt
	}
}

// OracleThroughput returns the perfect-balance upper bound of Figure 16:
// the sum of each layer's standalone throughput on the batch, i.e. the
// job rate achievable if work could be split so all memories finish
// together.
func OracleThroughput(sys *System, jobs []*Job) float64 {
	var total float64
	for _, t := range sys.Targets() {
		single := &System{Layers: map[isa.Target]*Layer{t: sys.Layers[t]}, DDR: sys.DDR}
		runnable := jobs[:0:0]
		for _, j := range jobs {
			if _, ok := j.Est[t]; ok {
				runnable = append(runnable, j)
			}
		}
		if len(runnable) == 0 {
			continue
		}
		// The per-layer bound is the best any scheduler achieves on
		// that layer alone.
		best := 0.0
		for _, sc := range []Scheduler{NewGlobal(), NewAdaptive(), LJF{}} {
			if thr := sc.Schedule(single, runnable).Throughput(); thr > best {
				best = thr
			}
		}
		total += best
	}
	return total
}

// OracleFraction returns result throughput as a fraction of the oracle.
func OracleFraction(sys *System, jobs []*Job, res *Result) float64 {
	o := OracleThroughput(sys, jobs)
	if o == 0 {
		return math.NaN()
	}
	return res.Throughput() / o
}
