package sched

import (
	"math"
	"math/rand"
	"testing"

	"mlimp/internal/event"
	"mlimp/internal/isa"
)

// mkJob builds a synthetic job whose truth equals its estimate.
func mkJob(id int, cycles map[isa.Target]int64, repUnit int, load int64) *Job {
	est := map[isa.Target]Profile{}
	for t, c := range cycles {
		est[t] = Profile{UnitCycles: c, RepUnit: repUnit, LoadBytes: load, Beta: DefaultBeta}
	}
	return &Job{ID: id, Name: "synthetic", Est: est}
}

var freqMHz = map[isa.Target]float64{isa.SRAM: 2500, isa.DRAM: 300, isa.ReRAM: 20}

// cyclesForTime converts a wall-clock duration in milliseconds into
// device cycles on target t.
func cyclesForTime(t isa.Target, ms float64) int64 {
	return int64(ms * freqMHz[t] * 1000)
}

// paretoBatch draws a heavy-tailed batch (the stress-test distribution
// of Section V-B3). Each job has a randomly preferred memory that is
// modestly faster, with the others within a small factor — the regime
// where scheduling across layers actually matters (on the paper's
// workloads SRAM and ReRAM "result in a similar kernel performance").
func paretoBatch(rng *rand.Rand, n int) []*Job {
	jobs := make([]*Job, n)
	targets := []isa.Target{isa.SRAM, isa.DRAM, isa.ReRAM}
	for i := range jobs {
		baseMs := math.Pow(rng.Float64(), -1/1.5) * 0.5 // Pareto(1.5)
		pref := targets[rng.Intn(len(targets))]
		cyc := map[isa.Target]int64{}
		for _, t := range targets {
			factor := 1 + rng.Float64()*3
			if t == pref {
				factor = 0.5 + rng.Float64()*0.5
			}
			cyc[t] = cyclesForTime(t, baseMs*factor)
		}
		jobs[i] = mkJob(i, cyc, 4+rng.Intn(16), 1<<19)
	}
	return jobs
}

// skewedBatch models the GNN regime where one memory (ReRAM) is the
// best for almost every job but the others remain usable at ~2x cost.
func skewedBatch(rng *rand.Rand, n int) []*Job {
	jobs := make([]*Job, n)
	for i := range jobs {
		baseMs := math.Pow(rng.Float64(), -1/1.5) * 0.5
		cyc := map[isa.Target]int64{
			isa.ReRAM: cyclesForTime(isa.ReRAM, baseMs),
			isa.SRAM:  cyclesForTime(isa.SRAM, baseMs*(1.8+rng.Float64()*0.6)),
			isa.DRAM:  cyclesForTime(isa.DRAM, baseMs*(2.2+rng.Float64()*0.8)),
		}
		jobs[i] = mkJob(i, cyc, 4+rng.Intn(16), 1<<19)
	}
	return jobs
}

func fullSystem() *System { return NewSystem(isa.SRAM, isa.DRAM, isa.ReRAM) }

func TestNewSystem(t *testing.T) {
	sys := fullSystem()
	if len(sys.Targets()) != 3 {
		t.Fatalf("targets = %v", sys.Targets())
	}
	if sys.Layers[isa.SRAM].Capacity() != 2560 {
		t.Errorf("SRAM capacity = %d, want half of 5120", sys.Layers[isa.SRAM].Capacity())
	}
	if sys.Layers[isa.ReRAM].Capacity() != 86016 {
		t.Errorf("ReRAM capacity = %d", sys.Layers[isa.ReRAM].Capacity())
	}
	single := NewSystem(isa.SRAM)
	if len(single.Targets()) != 1 {
		t.Error("single-layer system wrong")
	}
}

func TestModelTimeShape(t *testing.T) {
	sys := fullSystem()
	j := mkJob(0, map[isa.Target]int64{isa.SRAM: 1e8}, 8, 1<<20)
	t1 := sys.ModelTime(j, isa.SRAM, 1)
	t8 := sys.ModelTime(j, isa.SRAM, 8)
	t64 := sys.ModelTime(j, isa.SRAM, 64)
	t512 := sys.ModelTime(j, isa.SRAM, 512)
	if !(t1 > t8 && t8 > t64 && t64 > t512) {
		t.Errorf("model not monotone: %v %v %v %v", t1, t8, t64, t512)
	}
	// Sublinear speedup: 8x arrays gives less than 8x speedup.
	if ratio := float64(t8) / float64(t64); ratio >= 8 {
		t.Errorf("speedup %v should be sublinear (beta < 1)", ratio)
	}
	// Missing target: unschedulable marker.
	if sys.ModelTime(j, isa.DRAM, 8) != math.MaxInt64 {
		t.Error("missing Est should return MaxInt64")
	}
}

func TestModelTimeIncludesLoadFloor(t *testing.T) {
	sys := fullSystem()
	small := mkJob(0, map[isa.Target]int64{isa.SRAM: 1000}, 1, 1<<24)
	// With a 16 MiB load, time is dominated by t_ld and cannot drop
	// below the stream time no matter the allocation.
	floor := sys.DDR.StreamTime(1 << 24)
	if got := sys.ModelTime(small, isa.SRAM, 2560); got < floor {
		t.Errorf("time %v below the load floor %v", got, floor)
	}
}

func TestModelTimePanicsOnBadAlloc(t *testing.T) {
	sys := fullSystem()
	j := mkJob(0, map[isa.Target]int64{isa.SRAM: 1000}, 1, 0)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	sys.ModelTime(j, isa.SRAM, 0)
}

func TestKneeAllocAvoidsOverprovisioning(t *testing.T) {
	sys := fullSystem()
	j := mkJob(0, map[isa.Target]int64{isa.SRAM: 5e8}, 8, 1<<20)
	knee := sys.KneeAlloc(j, isa.SRAM)
	capArrays := sys.Layers[isa.SRAM].Capacity()
	if knee < 1 || knee > capArrays {
		t.Fatalf("knee = %d out of range", knee)
	}
	// The knee must sit well below the capacity (argmin would pick the
	// maximum since the curve is strictly decreasing)...
	if knee > capArrays/2 {
		t.Errorf("knee = %d overprovisions (capacity %d)", knee, capArrays)
	}
	// ...while still capturing most of the achievable speedup.
	tKnee := sys.ModelTime(j, isa.SRAM, knee)
	tMax := sys.ModelTime(j, isa.SRAM, capArrays)
	t1 := sys.ModelTime(j, isa.SRAM, 1)
	captured := float64(t1-tKnee) / float64(t1-tMax)
	if captured < 0.5 {
		t.Errorf("knee captures only %.0f%% of the speedup", captured*100)
	}
}

func TestBestTargetPicksCheapest(t *testing.T) {
	sys := fullSystem()
	j := mkJob(0, map[isa.Target]int64{
		isa.SRAM:  1e9,
		isa.ReRAM: 1e3, // trivially cheap on ReRAM
	}, 4, 1<<16)
	best, _ := sys.BestTarget(j)
	if best != isa.ReRAM {
		t.Errorf("best = %s, want ReRAM", best)
	}
}

func checkResult(t *testing.T, res *Result, n int) {
	t.Helper()
	if len(res.Assignments) != n {
		t.Fatalf("assignments = %d, want %d", len(res.Assignments), n)
	}
	if res.Makespan <= 0 {
		t.Fatal("non-positive makespan")
	}
	seen := map[int]bool{}
	for _, a := range res.Assignments {
		if seen[a.Job.ID] {
			t.Fatalf("job %d scheduled twice", a.Job.ID)
		}
		seen[a.Job.ID] = true
		if a.End < a.Start || a.Arrays <= 0 {
			t.Fatalf("bad assignment %+v", a)
		}
	}
}

func TestAllSchedulersCompleteAllJobs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	jobs := paretoBatch(rng, 64)
	sys := fullSystem()
	for _, s := range []Scheduler{LJF{}, LJF{Strict: true}, NewAdaptive(), NewGlobal()} {
		res := s.Schedule(sys, jobs)
		checkResult(t, res, len(jobs))
		if res.Throughput() <= 0 {
			t.Errorf("%s: throughput = %v", s.Name(), res.Throughput())
		}
	}
}

func TestSchedulerNames(t *testing.T) {
	for _, c := range []struct {
		s    Scheduler
		want string
	}{
		{LJF{}, "ljf"}, {LJF{Strict: true}, "naive-ljf"},
		{NewAdaptive(), "adaptive"}, {NewGlobal(), "global"},
	} {
		if c.s.Name() != c.want {
			t.Errorf("name = %q, want %q", c.s.Name(), c.want)
		}
	}
}

func TestGlobalBeatsLJFWithAccuratePrediction(t *testing.T) {
	// Figure 15: under an oracle predictor the global scheduler gives
	// the best makespan, with adaptive between global and plain LJF on
	// average.
	rng := rand.New(rand.NewSource(2))
	var ljfWins, globalWins int
	for trial := 0; trial < 10; trial++ {
		jobs := paretoBatch(rng, 64)
		sys := fullSystem()
		mLJF := LJF{}.Schedule(sys, jobs).Makespan
		mGlobal := NewGlobal().Schedule(sys, jobs).Makespan
		if mGlobal < mLJF {
			globalWins++
		} else if mLJF < mGlobal {
			ljfWins++
		}
	}
	if globalWins <= ljfWins {
		t.Errorf("global wins %d vs ljf wins %d", globalWins, ljfWins)
	}
}

func TestNaiveLJFOversubscribesBestMemory(t *testing.T) {
	// Figure 16's naive baseline funnels everything into one memory.
	rng := rand.New(rand.NewSource(3))
	jobs := skewedBatch(rng, 48)
	sys := fullSystem()
	res := LJF{Strict: true}.Schedule(sys, jobs)
	perTarget := map[isa.Target]int{}
	for _, a := range res.Assignments {
		perTarget[a.Target]++
	}
	maxShare := 0
	for _, n := range perTarget {
		if n > maxShare {
			maxShare = n
		}
	}
	// The dominant memory takes the bulk of the batch (its 8 job slots
	// become the bottleneck); some small jobs may still estimate better
	// elsewhere at the fixed a_unit allocation.
	if float64(maxShare)/float64(len(jobs)) < 0.6 {
		t.Errorf("naive LJF spread jobs: %v", perTarget)
	}
	// When one memory dominates every job, funnelling is near-optimal,
	// so the balanced scheduler only needs to stay competitive here;
	// its advantage on mixed-preference batches is asserted by
	// TestOracleFraction and TestGlobalBeatsLJFWithAccuratePrediction.
	if g := NewGlobal().Schedule(sys, jobs); g.Makespan > res.Makespan*13/10 {
		t.Errorf("global %v much worse than naive %v", g.Makespan, res.Makespan)
	}
}

func TestInterQueueAdjustBalances(t *testing.T) {
	sys := fullSystem()
	// All jobs land on ReRAM (their best); the adjustment must push
	// some toward the idle layers.
	rng := rand.New(rand.NewSource(4))
	jobs := paretoBatch(rng, 32)
	qs := partition(sys, jobs)
	before := 0
	for _, q := range qs {
		if len(q) > before {
			before = len(q)
		}
	}
	interQueueAdjust(sys, qs, DefaultOpts())
	total := 0
	after := 0
	for _, q := range qs {
		total += len(q)
		if len(q) > after {
			after = len(q)
		}
	}
	if total != 32 {
		t.Fatalf("jobs lost: %d", total)
	}
	if after > before {
		t.Errorf("adjustment made imbalance worse: %d -> %d", before, after)
	}
	// The spread between queue means must not exceed what it was.
	var means []float64
	for tgt, q := range qs {
		if len(q) > 0 {
			means = append(means, queueMean(sys, tgt, q))
		}
	}
	if len(means) < 2 {
		t.Skip("degenerate partition")
	}
}

func TestIntraQueueAdjustTightensTail(t *testing.T) {
	sys := fullSystem()
	var q []*queueItem
	// One huge job and several small ones, all at modest allocations.
	big := mkJob(0, map[isa.Target]int64{isa.SRAM: 2e9}, 8, 1<<18)
	q = append(q, &queueItem{job: big, arrays: 8})
	for i := 1; i < 6; i++ {
		q = append(q, &queueItem{job: mkJob(i, map[isa.Target]int64{isa.SRAM: 1e7}, 8, 1<<18), arrays: 400})
	}
	worstBefore := event.Time(0)
	for _, it := range q {
		if tt := sys.ModelTime(it.job, isa.SRAM, it.arrays); tt > worstBefore {
			worstBefore = tt
		}
	}
	intraQueueAdjust(sys, isa.SRAM, q, DefaultOpts())
	worstAfter := event.Time(0)
	totalArrays := 0
	for _, it := range q {
		totalArrays += it.arrays
		if it.arrays < 1 {
			t.Fatalf("allocation fell below the floor: %d", it.arrays)
		}
		if tt := sys.ModelTime(it.job, isa.SRAM, it.arrays); tt > worstAfter {
			worstAfter = tt
		}
	}
	if totalArrays != 8+5*400 {
		t.Errorf("arrays not conserved: %d", totalArrays)
	}
	if worstAfter >= worstBefore {
		t.Errorf("tail not tightened: %v -> %v", worstBefore, worstAfter)
	}
}

func TestInvAllocForTime(t *testing.T) {
	sys := fullSystem()
	j := mkJob(0, map[isa.Target]int64{isa.SRAM: 1e8}, 4, 1<<16)
	target := float64(sys.ModelTime(j, isa.SRAM, 100))
	m := invAllocForTime(sys, j, isa.SRAM, target)
	if float64(sys.ModelTime(j, isa.SRAM, m)) > target {
		t.Errorf("inv alloc %d misses target", m)
	}
	if m > 1 && float64(sys.ModelTime(j, isa.SRAM, m-1)) <= target {
		t.Errorf("inv alloc %d not minimal", m)
	}
	// Unreachable target: capacity.
	if got := invAllocForTime(sys, j, isa.SRAM, 1); got != sys.Layers[isa.SRAM].Capacity() {
		t.Errorf("unreachable target should return capacity, got %d", got)
	}
}

func TestOracleFraction(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	jobs := paretoBatch(rng, 48)
	sys := fullSystem()
	res := NewGlobal().Schedule(sys, jobs)
	frac := OracleFraction(sys, jobs, res)
	if math.IsNaN(frac) || frac <= 0 {
		t.Fatalf("fraction = %v", frac)
	}
	// The paper's oracle ("sum of the throughput of each in-memory
	// processor") is a strict bound only for homogeneous jobs: with
	// mixed preferences every standalone layer also has to run its bad
	// jobs, so a heterogeneity-aware schedule can exceed the sum
	// moderately.
	if frac > 2 {
		t.Errorf("achieved %v of oracle — implausibly above the balance bound", frac)
	}
	naive := LJF{Strict: true}.Schedule(sys, jobs)
	naiveFrac := OracleFraction(sys, jobs, naive)
	if naiveFrac >= frac {
		t.Errorf("naive fraction %.2f >= global fraction %.2f", naiveFrac, frac)
	}
}

// noisyJobs returns jobs whose Est is a log-normally perturbed copy of
// the truth, keeping the truth in TrueTime.
func noisyJobs(rng *rand.Rand, jobs []*Job, sigma float64) []*Job {
	out := make([]*Job, len(jobs))
	for i, j := range jobs {
		trueEst := j.Est
		noisy := map[isa.Target]Profile{}
		for t, p := range trueEst {
			q := p
			q.UnitCycles = int64(float64(p.UnitCycles) * math.Exp(rng.NormFloat64()*sigma))
			if q.UnitCycles < 1 {
				q.UnitCycles = 1
			}
			noisy[t] = q
		}
		jc := &Job{ID: j.ID, Name: j.Name, Est: noisy}
		jc.TrueTime = func(sys *System, t isa.Target, arrays int) event.Time {
			p, ok := trueEst[t]
			if !ok {
				return math.MaxInt64
			}
			return sys.profileTime(p, t, arrays)
		}
		out[i] = jc
	}
	return out
}

// realisticBatch mirrors the evaluation workloads: working sets that are
// a meaningful fraction of each layer's capacity (GNN feature matrices
// are megabytes against a 20 MiB compute cache), Pareto-distributed
// sizes, and mixed per-memory preferences.
func realisticBatch(rng *rand.Rand, sys *System, n int) []*Job {
	targets := []isa.Target{isa.SRAM, isa.DRAM, isa.ReRAM}
	jobs := make([]*Job, n)
	for i := range jobs {
		baseMs := math.Pow(rng.Float64(), -1/1.5) * 0.5
		pref := targets[rng.Intn(len(targets))]
		frac := 0.03 + rng.Float64()*0.1
		est := map[isa.Target]Profile{}
		for _, t := range targets {
			factor := 1 + rng.Float64()*3
			if t == pref {
				factor = 0.5 + rng.Float64()*0.5
			}
			ru := int(frac * float64(sys.Layers[t].Capacity()))
			if ru < 1 {
				ru = 1
			}
			est[t] = Profile{UnitCycles: cyclesForTime(t, baseMs*factor),
				RepUnit: ru, LoadBytes: 1 << 19, Beta: DefaultBeta}
		}
		jobs[i] = &Job{ID: i, Name: "realistic", Est: est}
	}
	return jobs
}

func TestNoiseErodesGlobalAdvantage(t *testing.T) {
	// Section V-B3 stress test: with an accurate predictor the global
	// scheduler's precomputed schedule wins; as Gaussian noise grows the
	// locally adapting scheduler closes the gap (in the paper it
	// overtakes beyond sigma ~0.39 — our adaptive dispatcher also packs
	// greedily, so we assert the monotone erosion rather than the exact
	// crossover point; see EXPERIMENTS.md).
	rng := rand.New(rand.NewSource(6))
	sys := fullSystem()
	const trials = 16
	mean := func(sigma float64) (a, g float64) {
		for i := 0; i < trials; i++ {
			base := realisticBatch(rng, sys, 48)
			jobs := base
			if sigma > 0 {
				jobs = noisyJobs(rng, base, sigma)
			}
			a += NewAdaptive().Schedule(sys, jobs).Makespan.Seconds()
			g += NewGlobal().Schedule(sys, jobs).Makespan.Seconds()
		}
		return a / trials, g / trials
	}
	a0, g0 := mean(0)
	if g0 > a0 {
		t.Errorf("exact prediction: global %.4fs should beat adaptive %.4fs", g0, a0)
	}
	aHi, gHi := mean(0.8)
	edgeExact := (a0 - g0) / g0
	edgeNoisy := (aHi - gHi) / gHi
	if edgeNoisy > edgeExact {
		t.Errorf("global's edge should erode with noise: %.3f -> %.3f", edgeExact, edgeNoisy)
	}
}

func TestDispatchShrinksOversizedRequests(t *testing.T) {
	// A job whose knee allocation exceeds a tiny layer must still run.
	sys := NewSystem(isa.SRAM)
	sys.Layers[isa.SRAM].SetCapacity(4)
	jobs := []*Job{mkJob(0, map[isa.Target]int64{isa.SRAM: 1e7}, 64, 1<<12)}
	res := NewAdaptive().Schedule(sys, jobs)
	checkResult(t, res, 1)
	if res.Assignments[0].Arrays > 4 {
		t.Errorf("allocation %d exceeds capacity", res.Assignments[0].Arrays)
	}
}

func TestResultString(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	jobs := paretoBatch(rng, 4)
	res := LJF{}.Schedule(fullSystem(), jobs)
	if res.String() == "" {
		t.Error("empty render")
	}
}
