package sched

import (
	"testing"

	"mlimp/internal/isa"
)

func cacheTestJob() *Job {
	return &Job{ID: 1, Name: "memo", Kind: "gemm", Est: map[isa.Target]Profile{
		isa.SRAM:  {UnitCycles: 40000, RepUnit: 4, LoadBytes: 1 << 16, StoreBytes: 1 << 14},
		isa.DRAM:  {UnitCycles: 9000, RepUnit: 2, LoadBytes: 1 << 16, StoreBytes: 1 << 14},
		isa.ReRAM: {UnitCycles: 600, RepUnit: 1, LoadBytes: 1 << 16, StoreBytes: 1 << 14, ProgramBytes: 1 << 15},
	}}
}

// TestModelTimeMemo checks the memo is transparent: repeated queries
// hit, and hits return exactly what the from-scratch model computes.
func TestModelTimeMemo(t *testing.T) {
	sys := NewSystem(isa.Targets...)
	j := cacheTestJob()
	for _, tgt := range sys.Targets() {
		for _, arrays := range []int{1, 3, 17} {
			first := sys.ModelTime(j, tgt, arrays)
			again := sys.ModelTime(j, tgt, arrays)
			fresh := sys.computeProfileTime(j.Est[tgt], tgt, arrays)
			if first != again || first != fresh {
				t.Fatalf("%v arrays=%d: memo %v / %v vs fresh %v", tgt, arrays, first, again, fresh)
			}
		}
	}
	st := sys.CacheStats()
	if st.ModelHits == 0 || st.ModelMisses == 0 {
		t.Errorf("expected both hits and misses, got %+v", st)
	}
	// 9 distinct (target, arrays) points, each queried twice via
	// ModelTime: exactly 9 misses from those calls.
	if st.ModelHits != 9 {
		t.Errorf("ModelHits = %d, want 9", st.ModelHits)
	}
}

// TestKneeAllocMemo checks the knee memo hits on repeat queries and
// keys on capacity, so cluster-scaled layers never see a stale knee.
func TestKneeAllocMemo(t *testing.T) {
	sys := NewSystem(isa.Targets...)
	j := cacheTestJob()
	k1 := sys.KneeAlloc(j, isa.SRAM)
	k2 := sys.KneeAlloc(j, isa.SRAM)
	if k1 != k2 {
		t.Fatalf("knee changed on repeat: %d vs %d", k1, k2)
	}
	st := sys.CacheStats()
	if st.KneeHits != 1 || st.KneeMisses != 1 {
		t.Errorf("knee stats = %+v, want 1 hit / 1 miss", st)
	}
	// Shrink the layer: the memo must miss and the knee must respect
	// the new capacity.
	sys.Layers[isa.SRAM].SetCapacity(2)
	k3 := sys.KneeAlloc(j, isa.SRAM)
	if k3 > 2 {
		t.Fatalf("knee %d exceeds shrunk capacity 2", k3)
	}
	if st := sys.CacheStats(); st.KneeMisses != 2 {
		t.Errorf("capacity change did not re-search: %+v", st)
	}
}

// TestProfMemoBounded floods the model memo with distinct profiles and
// asserts the generation-clear keeps it at or under its bound — the
// leak guard for long sweeps over many job shapes.
func TestProfMemoBounded(t *testing.T) {
	sys := NewSystem(isa.Targets...)
	j := cacheTestJob()
	for i := 0; i < 3*MaxProfMemoEntries; i++ {
		p := j.Est[isa.SRAM]
		p.UnitCycles = int64(1000 + i) // a fresh shape every query
		sys.memoProfileTime(p, isa.SRAM, 1+i%8)
	}
	if n := len(sys.profMemo); n > MaxProfMemoEntries {
		t.Errorf("profMemo grew to %d entries, bound is %d", n, MaxProfMemoEntries)
	}
	st := sys.CacheStats()
	if st.Clears == 0 {
		t.Error("3x overflow produced no generation clears")
	}
	// Clearing must stay transparent: a post-clear query still matches
	// the from-scratch model.
	p := j.Est[isa.SRAM]
	if got, want := sys.memoProfileTime(p, isa.SRAM, 4), sys.computeProfileTime(p, isa.SRAM, 4); got != want {
		t.Errorf("post-clear memo %v != fresh %v", got, want)
	}
}

// TestKneeMemoBounded floods the knee memo past its bound.
func TestKneeMemoBounded(t *testing.T) {
	sys := NewSystem(isa.Targets...)
	j := cacheTestJob()
	p := j.Est[isa.SRAM]
	for i := 0; i < 2*MaxKneeMemoEntries; i++ {
		p.UnitCycles = int64(1000 + i)
		sys.storeKneeAlloc(p, isa.SRAM, 64, 8)
	}
	if n := len(sys.kneeMemo); n > MaxKneeMemoEntries {
		t.Errorf("kneeMemo grew to %d entries, bound is %d", n, MaxKneeMemoEntries)
	}
	if st := sys.CacheStats(); st.Clears == 0 {
		t.Error("2x overflow produced no generation clears")
	}
}

// TestDegradeClearsKneeMemo: capacity changes generation-clear the knee
// memo, so a churning fault plan cannot strand one memo generation per
// capacity value it visits.
func TestDegradeClearsKneeMemo(t *testing.T) {
	sys := NewSystem(isa.Targets...)
	j := cacheTestJob()
	sys.KneeAlloc(j, isa.SRAM)
	if len(sys.kneeMemo) == 0 {
		t.Fatal("knee search left no memo entry")
	}
	base := sys.CacheStats().Clears
	if sys.Degrade(isa.SRAM, 4) == 0 {
		t.Fatal("degrade removed nothing")
	}
	if len(sys.kneeMemo) != 0 {
		t.Errorf("degrade left %d knee entries", len(sys.kneeMemo))
	}
	if sys.CacheStats().Clears != base+1 {
		t.Errorf("degrade clears = %d, want %d", sys.CacheStats().Clears, base+1)
	}
	sys.KneeAlloc(j, isa.SRAM)
	if sys.Restore(isa.SRAM, 4) == 0 {
		t.Fatal("restore returned nothing")
	}
	if len(sys.kneeMemo) != 0 {
		t.Errorf("restore left %d knee entries", len(sys.kneeMemo))
	}
}

// BenchmarkModelTime measures the memoized hot path against the
// from-scratch model evaluation it replaces.
func BenchmarkModelTime(b *testing.B) {
	sys := NewSystem(isa.Targets...)
	j := cacheTestJob()
	b.Run("memoized", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sys.ModelTime(j, isa.DRAM, 1+i%16)
		}
	})
	b.Run("compute", func(b *testing.B) {
		b.ReportAllocs()
		p := j.Est[isa.DRAM]
		for i := 0; i < b.N; i++ {
			sys.computeProfileTime(p, isa.DRAM, 1+i%16)
		}
	})
}

// BenchmarkKneeAlloc measures the memoized knee search.
func BenchmarkKneeAlloc(b *testing.B) {
	sys := NewSystem(isa.Targets...)
	j := cacheTestJob()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sys.KneeAlloc(j, isa.SRAM)
	}
}
