package cluster

import (
	"fmt"

	"mlimp/internal/event"
	"mlimp/internal/event/parsim"
	"mlimp/internal/fault"
	"mlimp/internal/runtime"
)

// Hierarchical sharded dispatch. A hub tree replaces the single global
// hub with R regional sub-hubs, each an ordinary ShardedDispatcher over
// a contiguous slice of the fleet: admission, routing, booking tokens,
// deadlines, breakers, and liveness all run region-locally, exactly as
// on the flat fabric, just over fewer views. What crosses regions is
// deliberately thin and window-local:
//
//   - arrivals are sprayed round-robin over the regions at Submit time
//     (the Tesseract lesson: no coordinator shard on the fast path);
//   - each sub-hub broadcasts a summarised load belief (its total
//     outstanding bookings) to its ring neighbours on a beacon grid
//     every SummaryEvery;
//   - a region whose every local queue is at the admission bound
//     forwards the overflowing batch once to the ring neighbour it
//     believes least loaded — peer-to-peer batch stealing — before
//     falling back to local retry/shed;
//   - on the fault-free fabric, node->hub completion echoes ride the
//     same beacon grid, batching a whole period's completions into one
//     canonical mailbox merge.
//
// The grid edges are what make the tree scale: declaring them to the
// parsim driver (SetEdge) switches it to per-shard conservative
// horizons, so two regions that only talk through a beacon edge are
// provably independent for a whole period at a time and their node
// shards execute dense local work — the Algorithm-2 scheduling passes —
// in the same window instead of serialising into hop-wide slices.
// Determinism is inherited, not re-proven: every cross-region
// interaction is a mailbox message merged in canonical (at, src, seq)
// order at a barrier whose placement depends only on simulated time,
// so summaries stay byte-identical at any worker count.
//
// With faults enabled the tree trades window width back for
// promptness: every edge is re-declared as a plain hop so completion
// echoes, deadline aborts, and ping/pong liveness keep flat-fabric
// timing within each region.
type hubTree struct {
	regions      []*ShardedDispatcher
	fanout       int
	summaryEvery event.Time
	hop          event.Time
	policy       Policy // fleet-level policy (regions hold clones)
	onDone       func(DoneInfo)
	faulty       bool
	seen         map[int]bool // fleet-wide Submit/Inject batch-ID dedupe
	spray        int          // round-robin arrival cursor
	prepared     bool
}

// regionState is one region's place in the tree: its index, its ring
// neighbours, and its beliefs about sibling load. beliefs is hub-shard
// state of this region — only events on this region's hub touch it.
type regionState struct {
	t          *hubTree
	idx        int
	beliefs    []int                // believed outstanding per region; -1 unknown
	peers      []*ShardedDispatcher // ring neighbours, cached at prepare
	lastBeacon int                  // last load value beaconed; -1 before the first
	stolen     int                  // batches forwarded away (tests read this)
	taken      int                  // batches received by forwarding
}

// newHubTree builds the regional sub-dispatchers on the shared driver.
// Shard order is regions in index order, hub first then its nodes, so
// shard IDs — and with them every canonical merge tie-break — are a
// pure function of the topology.
func newHubTree(drv *parsim.Driver, policy Policy, adm Admission, hop, summaryEvery event.Time,
	hubs, fanout int, cfgs []NodeConfig) *ShardedDispatcher {
	t := &hubTree{
		fanout:       fanout,
		summaryEvery: summaryEvery,
		hop:          hop,
		policy:       policy,
		seen:         map[int]bool{},
	}
	for r := 0; r < hubs; r++ {
		reg := newRegion(drv, clonePolicy(policy), adm, hop, cfgs[r*fanout:(r+1)*fanout])
		beliefs := make([]int, hubs)
		for i := range beliefs {
			beliefs[i] = -1
		}
		reg.reg = &regionState{t: t, idx: r, beliefs: beliefs, lastBeacon: -1}
		t.regions = append(t.regions, reg)
	}
	return &ShardedDispatcher{drv: drv, hop: hop, policy: policy, adm: adm, tree: t}
}

// clonePolicy gives each region its own policy instance so stateful
// policies (round-robin's rotation cursor) stay region-local and
// deterministic under the spray. Policies may implement
// Clone() Policy; otherwise a registered policy is re-instantiated by
// name, and unknown stateless policies are shared as-is.
func clonePolicy(p Policy) Policy {
	if c, ok := p.(interface{ Clone() Policy }); ok {
		return c.Clone()
	}
	if q, ok := PolicyByName(p.Name()); ok {
		return q
	}
	return p
}

// submit validates fleet-wide and sprays the arrival onto the next
// region in round-robin order — submission order, not batch ID, drives
// the spray, so ID schemes don't bias region load.
func (t *hubTree) submit(b *runtime.Batch) error {
	if b == nil {
		return runtime.ErrNilBatch
	}
	if len(b.Jobs) == 0 {
		return fmt.Errorf("%w (batch %d)", runtime.ErrEmptyBatch, b.ID)
	}
	if t.seen[b.ID] {
		return fmt.Errorf("cluster: duplicate batch ID %d", b.ID)
	}
	t.seen[b.ID] = true
	r := t.regions[t.spray%len(t.regions)]
	t.spray++
	return r.Submit(b)
}

// ring returns the region's ring neighbours (one when R == 2).
func (t *hubTree) ring(idx int) []*ShardedDispatcher {
	n := len(t.regions)
	right := t.regions[(idx+1)%n]
	left := t.regions[(idx+n-1)%n]
	if left == right {
		return []*ShardedDispatcher{right}
	}
	// Right first: the tie-break target when beliefs are equal/unknown.
	return []*ShardedDispatcher{right, left}
}

// tryForward implements overflow stealing, called from dispatch on the
// region's hub when no local view is eligible. The batch moves at most
// once (forwarded batches carry their hop count), to the ring
// neighbour with the lowest believed load — beliefs are beacon-fresh,
// i.e. up to one SummaryEvery stale, which is exactly the summarised
// state the tree is allowed to share. Returns false to fall back to
// local retry/shed.
func (d *ShardedDispatcher) tryForward(tr *tracker) bool {
	rs := d.reg
	if tr.fwds > 0 {
		return false
	}
	// Lowest believed load wins; a known load beats an unknown one, and
	// ties keep the right-hand neighbour (ring order).
	peers := rs.peers
	best := peers[0]
	bestLoad := rs.beliefs[best.reg.idx]
	for _, p := range peers[1:] {
		if l := rs.beliefs[p.reg.idx]; l >= 0 && (bestLoad < 0 || l < bestLoad) {
			best, bestLoad = p, l
		}
	}
	// Disown the batch before it travels: stale local closures (retry
	// timers, deadline guards) find no tracker and fall through.
	delete(d.trk, tr.b.ID)
	d.pending--
	rs.stolen++
	b, fwds, dst := tr.b, tr.fwds+1, best
	d.hub.Send(dst.hub, d.hub.EarliestTo(dst.hub), func() { dst.receiveForward(b, fwds) })
	return true
}

// receiveForward adopts a stolen batch on the receiving region's hub:
// a fresh tracker (the sender already disowned it, so fleet-wide the
// batch still has exactly one owner) and a normal local dispatch with
// a fresh retry budget. Submitted is not re-counted — the sender's
// region did that — so merged conservation still balances.
func (d *ShardedDispatcher) receiveForward(b *runtime.Batch, fwds int) {
	if _, dup := d.trk[b.ID]; dup {
		panic(fmt.Sprintf("cluster: forwarded batch %d already tracked in region %d", b.ID, d.reg.idx))
	}
	tr := &tracker{b: b, fwds: fwds}
	d.trk[b.ID] = tr
	d.pending++
	d.reg.taken++
	d.dispatch(b, 0, nil)
}

// prepare declares the fleet's communication edges and arms the belief
// beacons — the step that switches the parsim driver into per-shard
// conservative horizons. Runs once, immediately before the driver.
func (t *hubTree) prepare() {
	if t.prepared {
		return
	}
	t.prepared = true
	prompt := parsim.EdgeLatency{Fixed: t.hop}
	beacon := parsim.EdgeLatency{Fixed: t.hop, Grid: t.summaryEvery}
	if t.faulty {
		// Fault mode needs flat-fabric promptness: completion echoes
		// race deadlines, pongs feed the liveness limit.
		beacon = prompt
	}
	drv := t.regions[0].drv
	for _, r := range t.regions {
		r.reg.peers = t.ring(r.reg.idx)
		for _, sn := range r.sns {
			drv.SetEdge(r.hub, sn.shard, prompt)
			drv.SetEdge(sn.shard, r.hub, beacon)
		}
		for _, p := range r.reg.peers {
			drv.SetEdge(r.hub, p.hub, beacon)
		}
	}
	if t.onDone != nil {
		// Terminal-state relays flow to region 0, where the front end
		// lives; ring edges already cover the adjacent regions and
		// SetEdge replaces duplicates, so declaring all is harmless.
		for _, r := range t.regions[1:] {
			drv.SetEdge(r.hub, t.regions[0].hub, beacon)
		}
	}
	t.wireDone()
	for _, r := range t.regions {
		t.armBeacon(r)
	}
}

// wireDone points every region's settle hook at the tree-level
// observer. Region 0 hosts the observer (and the front end), so its
// settles call straight through; sibling regions relay the DoneInfo
// over their edge to region 0, preserving DoneInfo.At as the
// originating region's settle time.
func (t *hubTree) wireDone() {
	if t.onDone == nil {
		return
	}
	r0 := t.regions[0]
	r0.onDone = t.onDone
	for _, r := range t.regions[1:] {
		r := r
		r.onDone = func(di DoneInfo) {
			r.hub.Send(r0.hub, r.hub.EarliestTo(r0.hub), func() { t.onDone(di) })
		}
	}
}

// armBeacon starts one region's summarised-load broadcast: every
// SummaryEvery (while the region still has work or expects more), the
// hub snapshots its total outstanding bookings and sends the value —
// captured by value, the receiving shard never reads sender state —
// to each ring neighbour.
func (t *hubTree) armBeacon(r *ShardedDispatcher) {
	idx := r.reg.idx
	var tick func()
	tick = func() {
		load := 0
		for _, v := range r.views {
			load += v.Outstanding()
		}
		// An unchanged load is already what the peers believe (the first
		// tick always sends: lastBeacon starts at -1 and load is >= 0),
		// so re-sending it would only allocate closures to no effect.
		if load != r.reg.lastBeacon {
			r.reg.lastBeacon = load
			for _, p := range r.reg.peers {
				p := p
				r.hub.Send(p.hub, r.hub.EarliestTo(p.hub), func() { p.reg.beliefs[idx] = load })
			}
		}
		if r.ticking() {
			r.hub.Engine().After(t.summaryEvery, tick)
		}
	}
	r.hub.Engine().At(t.summaryEvery, tick)
}

// enableFaults validates the plan fleet-wide, then splits it into
// per-region slices: each sub-hub runs the full failure-aware fabric —
// breakers, deadlines, ping/pong liveness, eviction, re-dispatch —
// over its own nodes. The ExecError coin is a pure function of
// (Seed, batch, attempt), so filtering the plan never changes a draw.
func (t *hubTree) enableFaults(fc FaultConfig) error {
	if t.faulty {
		return fmt.Errorf("cluster: faults already enabled")
	}
	if err := fc.Plan.Validate(); err != nil {
		return err
	}
	owner := map[string]int{}
	for ri, r := range t.regions {
		for _, sn := range r.sns {
			owner[sn.node.Name] = ri
		}
	}
	if fc.Plan != nil {
		for _, f := range fc.Plan.ArrayFaults {
			if _, ok := owner[f.Node]; !ok {
				return fmt.Errorf("cluster: array fault names unknown node %q", f.Node)
			}
		}
		for _, c := range fc.Plan.Crashes {
			if _, ok := owner[c.Node]; !ok {
				return fmt.Errorf("cluster: crash names unknown node %q", c.Node)
			}
		}
	}
	t.faulty = true
	for ri, r := range t.regions {
		rfc := fc
		if fc.Plan != nil {
			sub := &fault.Plan{Seed: fc.Plan.Seed, ExecErrorProb: fc.Plan.ExecErrorProb}
			for _, f := range fc.Plan.ArrayFaults {
				if owner[f.Node] == ri {
					sub.ArrayFaults = append(sub.ArrayFaults, f)
				}
			}
			for _, c := range fc.Plan.Crashes {
				if owner[c.Node] == ri {
					sub.Crashes = append(sub.Crashes, c)
				}
			}
			rfc.Plan = sub
		}
		if err := r.EnableFaults(rfc); err != nil {
			return err
		}
	}
	return nil
}

// run advances the whole tree to quiescence and merges the regional
// summaries in region order — which is node-configuration order, so a
// tree summary lists nodes exactly where the flat summary would.
func (t *hubTree) run(parent *ShardedDispatcher) Summary {
	t.prepare()
	parent.drv.Run()
	s := Summary{Policy: t.policy.Name()}
	var rollups []nodeRollup
	tenants := map[string]*tenantCounts{}
	for _, r := range t.regions {
		s.Submitted += r.submitted
		s.Completed += r.completed
		s.Shed += r.shed
		s.Retries += r.retries
		s.Redispatches += r.redispatches
		s.DeadLettered += r.deadLettered
		s.ExecErrors += r.execErrors
		s.Timeouts += r.timeouts
		rollups = append(rollups, r.rollups()...)
		for name, c := range r.tenants {
			m := bumpTenant(&tenants, name)
			m.submitted += c.submitted
			m.completed += c.completed
			m.shed += c.shed
			m.deadLettered += c.deadLettered
		}
	}
	if len(tenants) == 0 {
		tenants = nil
	}
	return summarize(s, rollups, tenants)
}
