package cluster

import (
	"fmt"

	"mlimp/internal/event"
	"mlimp/internal/event/parsim"
	"mlimp/internal/fault"
	"mlimp/internal/runtime"
)

// Hierarchical sharded dispatch. A hub tree replaces the single global
// hub with R regional sub-hubs, each an ordinary ShardedDispatcher over
// a contiguous slice of the fleet: admission, routing, booking tokens,
// deadlines, breakers, and liveness all run region-locally, exactly as
// on the flat fabric, just over fewer views. What crosses regions is
// deliberately thin and window-local:
//
//   - arrivals are sprayed round-robin over the regions at Submit time
//     (the Tesseract lesson: no coordinator shard on the fast path);
//   - each sub-hub broadcasts a summarised load belief (its total
//     outstanding bookings) to its ring neighbours on a beacon grid
//     every SummaryEvery;
//   - a region whose every local queue is at the admission bound
//     forwards the overflowing batch once to the ring neighbour it
//     believes least loaded — peer-to-peer batch stealing — before
//     falling back to local retry/shed;
//   - on the fault-free fabric, node->hub completion echoes ride the
//     same beacon grid, batching a whole period's completions into one
//     canonical mailbox merge.
//
// The grid edges are what make the tree scale: declaring them to the
// parsim driver (SetEdge) switches it to per-shard conservative
// horizons, so two regions that only talk through a beacon edge are
// provably independent for a whole period at a time and their node
// shards execute dense local work — the Algorithm-2 scheduling passes —
// in the same window instead of serialising into hop-wide slices.
// Determinism is inherited, not re-proven: every cross-region
// interaction is a mailbox message merged in canonical (at, src, seq)
// order at a barrier whose placement depends only on simulated time,
// so summaries stay byte-identical at any worker count.
//
// With faults enabled the tree trades window width back for
// promptness: every edge is re-declared as a plain hop so completion
// echoes, deadline aborts, and ping/pong liveness keep flat-fabric
// timing within each region.
type hubTree struct {
	regions      []*ShardedDispatcher
	fanout       int
	summaryEvery event.Time
	hop          event.Time
	policy       Policy // fleet-level policy (regions hold clones)
	onDone       func(DoneInfo)
	faulty       bool
	seen         map[int]bool // fleet-wide Submit/Inject batch-ID dedupe
	spray        int          // round-robin arrival cursor
	prepared     bool

	// Fabric-fault schedule (enableFaults). hubCrashes is the plan's hub
	// freeze windows — static facts every shard may read during the run:
	// the spray, relay failover, and inject re-homing all route against
	// the *planned* liveness of remote hubs, which is what keeps those
	// decisions deterministic without cross-shard reads of live state.
	// suspLimit is the beacon-silence bound after which a ring successor
	// suspects its predecessor: miss*SummaryEvery + 2*hop (the pong-lag
	// slack, same shape as node liveness).
	hubCrashes []fault.HubCrash
	suspLimit  event.Time
}

// regionState is one region's place in the tree: its index, its ring
// neighbours, and its beliefs about sibling load. All fields are
// hub-shard state of this region — only events on this region's hub
// touch them.
type regionState struct {
	t          *hubTree
	idx        int
	beliefs    []int                // believed outstanding per region; -1 unknown
	peers      []*ShardedDispatcher // ring neighbours, cached at prepare
	lastBeacon int                  // last load value beaconed; -1 before the first
	stolen     int                  // batches forwarded away (tests read this)
	taken      int                  // batches received by forwarding

	// Hub-crash state. down marks the hub frozen: lossy inputs (echoes,
	// pongs, beacons) are lost, reliable inputs and local routing
	// decisions park and replay in arrival order at revival.
	down   bool
	parked []func()

	// Suspicion/takeover state (fault mode). peerLast is the last
	// beacon-receipt instant per region; a ring predecessor silent past
	// suspLimit is suspected, and this region — if it is the silent
	// region's ring successor — adopts its nodes. Adoption is sticky
	// for the run: beliefs may heal, but shared routing stays safe
	// because every booking carries its home (sn.homes).
	peerLast []event.Time
	suspect  []bool
	adopted  []bool
	adoptees map[int][]adoptee // prebuilt per ring predecessor (prepare)

	hubCrashes int // freeze windows applied to this hub
	takeovers  int // ring-predecessor regions this hub adopted
	rehomed    int // relays/injections re-homed through or away from this hub
}

// adoptee is one prebuilt takeover entry: a ring predecessor's shard
// node (shared — the node shard serves both hubs' bookings, routed by
// sn.homes) and a cold view of it for the adopter's routing ledger.
type adoptee struct {
	sn   *shardNode
	view *Node
}

// newHubTree builds the regional sub-dispatchers on the shared driver.
// Shard order is regions in index order, hub first then its nodes, so
// shard IDs — and with them every canonical merge tie-break — are a
// pure function of the topology.
func newHubTree(drv *parsim.Driver, policy Policy, adm Admission, hop, summaryEvery event.Time,
	hubs, fanout int, cfgs []NodeConfig) *ShardedDispatcher {
	t := &hubTree{
		fanout:       fanout,
		summaryEvery: summaryEvery,
		hop:          hop,
		policy:       policy,
		seen:         map[int]bool{},
	}
	for r := 0; r < hubs; r++ {
		reg := newRegion(drv, clonePolicy(policy), adm, hop, cfgs[r*fanout:(r+1)*fanout])
		beliefs := make([]int, hubs)
		for i := range beliefs {
			beliefs[i] = -1
		}
		reg.reg = &regionState{
			t: t, idx: r, beliefs: beliefs, lastBeacon: -1,
			peerLast: make([]event.Time, hubs),
			suspect:  make([]bool, hubs),
			adopted:  make([]bool, hubs),
		}
		t.regions = append(t.regions, reg)
	}
	return &ShardedDispatcher{drv: drv, hop: hop, policy: policy, adm: adm, tree: t}
}

// clonePolicy gives each region its own policy instance so stateful
// policies (round-robin's rotation cursor) stay region-local and
// deterministic under the spray. Policies may implement
// Clone() Policy; otherwise a registered policy is re-instantiated by
// name, and unknown stateless policies are shared as-is.
func clonePolicy(p Policy) Policy {
	if c, ok := p.(interface{ Clone() Policy }); ok {
		return c.Clone()
	}
	if q, ok := PolicyByName(p.Name()); ok {
		return q
	}
	return p
}

// submit validates fleet-wide and sprays the arrival onto the next
// region in round-robin order — submission order, not batch ID, drives
// the spray, so ID schemes don't bias region load.
func (t *hubTree) submit(b *runtime.Batch) error {
	if b == nil {
		return runtime.ErrNilBatch
	}
	if len(b.Jobs) == 0 {
		return fmt.Errorf("%w (batch %d)", runtime.ErrEmptyBatch, b.ID)
	}
	if t.seen[b.ID] {
		return fmt.Errorf("cluster: duplicate batch ID %d", b.ID)
	}
	t.seen[b.ID] = true
	r := t.regions[t.spray%len(t.regions)]
	t.spray++
	// Plan-aware spray: an arrival aimed at a hub the fault plan has
	// frozen at that instant re-sprays to the next planned-live region
	// (ring order), so flash crowds during a failover land on hubs that
	// can actually route them. Static plan facts only — deterministic.
	if len(t.hubCrashes) > 0 && t.hubDownAt(r.reg.idx, b.Arrival) {
		for i := 1; i < len(t.regions); i++ {
			c := t.regions[(r.reg.idx+i)%len(t.regions)]
			if !t.hubDownAt(c.reg.idx, b.Arrival) {
				r = c
				break
			}
		}
	}
	return r.Submit(b)
}

// hubDownAt reports whether the fault plan freezes region ri's hub at
// instant at. A pure function of the immutable plan, so any shard may
// consult it mid-run.
func (t *hubTree) hubDownAt(ri int, at event.Time) bool {
	for _, h := range t.hubCrashes {
		if h.Region == ri && h.At <= at && at < h.Recover {
			return true
		}
	}
	return false
}

// lowestLiveAt returns the lowest region index whose hub the plan
// leaves live at the given instant — the done-relay and inject home
// while region 0 is frozen. Falls back to 0 if the plan freezes every
// hub at once (the messages then park on region 0 until it revives).
func (t *hubTree) lowestLiveAt(at event.Time) int {
	for ri := range t.regions {
		if !t.hubDownAt(ri, at) {
			return ri
		}
	}
	return 0
}

// inject admits a mid-run batch from the hub-resident front end on
// region 0's shard. While region 0's hub is frozen, ownership re-homes
// to the lowest planned-live region over a reliable edge; otherwise the
// batch enters region 0 exactly as before.
func (t *hubTree) inject(b *runtime.Batch) error {
	if b == nil {
		return runtime.ErrNilBatch
	}
	if len(b.Jobs) == 0 {
		return fmt.Errorf("%w (batch %d)", runtime.ErrEmptyBatch, b.ID)
	}
	if t.seen[b.ID] {
		return fmt.Errorf("cluster: duplicate batch ID %d", b.ID)
	}
	t.seen[b.ID] = true
	r0 := t.regions[0]
	if r0.reg.down {
		if li := t.lowestLiveAt(r0.hub.Engine().Now()); li != 0 {
			dst := t.regions[li]
			r0.reg.rehomed++
			r0.hub.SendReliable(dst.hub, r0.hub.EarliestTo(dst.hub), func() { dst.receiveInject(b) })
			return nil
		}
		// Every hub frozen: fall through — region 0 parks the dispatch.
	}
	return r0.Inject(b)
}

// receiveInject adopts a re-homed injection on the receiving region's
// hub: full ownership (tracker, submitted count, tenant row), then a
// normal local dispatch. The sender never created a tracker, so the
// batch has exactly one owner fleet-wide.
func (d *ShardedDispatcher) receiveInject(b *runtime.Batch) {
	if rs := d.reg; rs != nil && rs.down {
		rs.parked = append(rs.parked, func() { d.receiveInject(b) })
		return
	}
	tr := &tracker{b: b}
	d.trk[b.ID] = tr
	d.pending++
	d.submitted++
	if c := bumpTenant(&d.tenants, b.Tenant); c != nil {
		c.submitted++
	}
	if now := d.hub.Engine().Now(); now > d.lastArrival {
		d.lastArrival = now
	}
	d.dispatch(b, 0, nil)
}

// ring returns the region's ring neighbours (one when R == 2).
func (t *hubTree) ring(idx int) []*ShardedDispatcher {
	n := len(t.regions)
	right := t.regions[(idx+1)%n]
	left := t.regions[(idx+n-1)%n]
	if left == right {
		return []*ShardedDispatcher{right}
	}
	// Right first: the tie-break target when beliefs are equal/unknown.
	return []*ShardedDispatcher{right, left}
}

// tryForward implements overflow stealing, called from dispatch on the
// region's hub when no local view is eligible. The batch moves at most
// once (forwarded batches carry their hop count), to the ring
// neighbour with the lowest believed load — beliefs are beacon-fresh,
// i.e. up to one SummaryEvery stale, which is exactly the summarised
// state the tree is allowed to share. Returns false to fall back to
// local retry/shed.
func (d *ShardedDispatcher) tryForward(tr *tracker) bool {
	rs := d.reg
	if tr.fwds > 0 {
		return false
	}
	// Lowest believed load wins; a known load beats an unknown one, and
	// ties keep the right-hand neighbour (ring order).
	peers := rs.peers
	if rs.t.suspLimit > 0 {
		// Never steal toward a hub believed dead: a forward is an
		// ownership transfer, and a suspected hub may be frozen with its
		// parked queue growing. Suspicion heals on the next beacon.
		var live []*ShardedDispatcher
		for _, p := range peers {
			if !rs.suspect[p.reg.idx] {
				live = append(live, p)
			}
		}
		if len(live) == 0 {
			return false
		}
		peers = live
	}
	best := peers[0]
	bestLoad := rs.beliefs[best.reg.idx]
	for _, p := range peers[1:] {
		if l := rs.beliefs[p.reg.idx]; l >= 0 && (bestLoad < 0 || l < bestLoad) {
			best, bestLoad = p, l
		}
	}
	// Disown the batch before it travels: stale local closures (retry
	// timers, deadline guards) find no tracker and fall through.
	delete(d.trk, tr.b.ID)
	d.pending--
	rs.stolen++
	b, fwds, dst := tr.b, tr.fwds+1, best
	// Reliable: the batch has exactly one owner fleet-wide, so the
	// transfer itself must survive lossy edges (think retransmitting
	// transport); it still pays any injected delay.
	d.hub.SendReliable(dst.hub, d.hub.EarliestTo(dst.hub), func() { dst.receiveForward(b, fwds) })
	return true
}

// receiveForward adopts a stolen batch on the receiving region's hub:
// a fresh tracker (the sender already disowned it, so fleet-wide the
// batch still has exactly one owner) and a normal local dispatch with
// a fresh retry budget. Submitted is not re-counted — the sender's
// region did that — so merged conservation still balances.
func (d *ShardedDispatcher) receiveForward(b *runtime.Batch, fwds int) {
	if rs := d.reg; rs.down {
		rs.parked = append(rs.parked, func() { d.receiveForward(b, fwds) })
		return
	}
	if _, dup := d.trk[b.ID]; dup {
		panic(fmt.Sprintf("cluster: forwarded batch %d already tracked in region %d", b.ID, d.reg.idx))
	}
	tr := &tracker{b: b, fwds: fwds}
	d.trk[b.ID] = tr
	d.pending++
	d.reg.taken++
	d.dispatch(b, 0, nil)
}

// prepare declares the fleet's communication edges and arms the belief
// beacons — the step that switches the parsim driver into per-shard
// conservative horizons. Runs once, immediately before the driver.
func (t *hubTree) prepare() {
	if t.prepared {
		return
	}
	t.prepared = true
	prompt := parsim.EdgeLatency{Fixed: t.hop}
	beacon := parsim.EdgeLatency{Fixed: t.hop, Grid: t.summaryEvery}
	if t.faulty {
		// Fault mode needs flat-fabric promptness: completion echoes
		// race deadlines, pongs feed the liveness limit.
		beacon = prompt
	}
	drv := t.regions[0].drv
	for _, r := range t.regions {
		r.reg.peers = t.ring(r.reg.idx)
		for _, sn := range r.sns {
			drv.SetEdge(r.hub, sn.shard, prompt)
			drv.SetEdge(sn.shard, r.hub, beacon)
		}
		for _, p := range r.reg.peers {
			drv.SetEdge(r.hub, p.hub, beacon)
		}
	}
	if t.onDone != nil {
		// Terminal-state relays flow to region 0, where the front end
		// lives; ring edges already cover the adjacent regions and
		// SetEdge replaces duplicates, so declaring all is harmless.
		for _, r := range t.regions[1:] {
			drv.SetEdge(r.hub, t.regions[0].hub, beacon)
		}
	}
	if t.suspLimit > 0 {
		// Fabric-fault mode: any hub may need to reach any node (takeover
		// bookings, revival-sweep aborts) and any hub (done-relay
		// failover, inject re-homing), so declare the full mesh prompt.
		for _, a := range t.regions {
			for _, b := range t.regions {
				if a == b {
					continue
				}
				drv.SetEdge(a.hub, b.hub, prompt)
				for _, sn := range b.sns {
					drv.SetEdge(a.hub, sn.shard, prompt)
					drv.SetEdge(sn.shard, a.hub, prompt)
				}
			}
		}
		// Prebuild the takeover entries: each region holds cold views of
		// its ring predecessor's nodes, built now so adoption mid-run
		// never reads a remote shard. The shard nodes are shared — after
		// a takeover they serve bookings from both hubs, with each echo
		// routed home by sn.homes.
		for _, r := range t.regions {
			r.reg.adoptees = map[int][]adoptee{}
			for _, p := range r.reg.peers {
				if r.reg.idx != (p.reg.idx+1)%len(t.regions) {
					continue
				}
				var as []adoptee
				for i, sn := range p.sns[:p.homeN] {
					v := newView(p.cfgs[i])
					v.breaker = newBreaker(r.faults.breakerK(), r.faults.breakerCooldown())
					as = append(as, adoptee{sn: sn, view: v})
				}
				r.reg.adoptees[p.reg.idx] = as
			}
		}
	}
	t.wireDone()
	for _, r := range t.regions {
		t.armBeacon(r)
	}
}

// wireDone points every region's settle hook at the tree-level
// observer. Region 0 hosts the observer (and the front end), so its
// settles call straight through; sibling regions relay the DoneInfo
// over their edge to region 0, preserving DoneInfo.At as the
// originating region's settle time.
func (t *hubTree) wireDone() {
	if t.onDone == nil {
		return
	}
	r0 := t.regions[0]
	r0.onDone = t.onDone
	for _, r := range t.regions[1:] {
		r := r
		r.onDone = func(di DoneInfo) { t.relayDone(r, di) }
	}
}

// relayDone carries a sibling region's terminal-state record to the
// observer on region 0's shard. While the plan freezes region 0's hub,
// the record routes through the lowest planned-live hub instead — the
// relay a real cluster would elect — and reaches region 0's shard one
// extra hop later, where the co-located front end (a separate process
// that survives the hub crash) consumes it. Reliable sends throughout:
// a terminal state is an ownership fact and must not be lost to a
// lossy edge.
func (t *hubTree) relayDone(r *ShardedDispatcher, di DoneInfo) {
	r0 := t.regions[0]
	home := 0
	if len(t.hubCrashes) > 0 {
		home = t.lowestLiveAt(r.hub.Engine().Now())
	}
	if home == 0 || t.regions[home] == r {
		if home != 0 {
			r.reg.rehomed++
		}
		r.hub.SendReliable(r0.hub, r.hub.EarliestTo(r0.hub), func() { t.onDone(di) })
		return
	}
	relay := t.regions[home]
	r.hub.SendReliable(relay.hub, r.hub.EarliestTo(relay.hub), func() {
		relay.reg.rehomed++
		relay.hub.SendReliable(r0.hub, relay.hub.EarliestTo(r0.hub), func() { t.onDone(di) })
	})
}

// armBeacon starts one region's summarised-load broadcast: every
// SummaryEvery (while the region still has work or expects more), the
// hub snapshots its total outstanding bookings and sends the value —
// captured by value, the receiving shard never reads sender state —
// to each ring neighbour.
func (t *hubTree) armBeacon(r *ShardedDispatcher) {
	idx := r.reg.idx
	var tick func()
	tick = func() {
		if r.reg.down {
			// A frozen hub beacons nothing — that silence is exactly what
			// its ring successor's suspicion clock measures. The loop
			// keeps re-arming so beacons resume at revival.
			if r.ticking() {
				r.hub.Engine().After(t.summaryEvery, tick)
			}
			return
		}
		load := 0
		for _, v := range r.views {
			load += v.Outstanding()
		}
		// An unchanged load is already what the peers believe (the first
		// tick always sends: lastBeacon starts at -1 and load is >= 0),
		// so re-sending it would only allocate closures to no effect.
		// In fabric-fault mode every tick sends: the beacon doubles as
		// the hub-level heartbeat, and skip-unchanged would read as death.
		if t.suspLimit > 0 || load != r.reg.lastBeacon {
			r.reg.lastBeacon = load
			for _, p := range r.reg.peers {
				p := p
				r.hub.Send(p.hub, r.hub.EarliestTo(p.hub), func() {
					if p.reg.down {
						return // lost on a frozen hub
					}
					p.reg.beliefs[idx] = load
					if t.suspLimit > 0 {
						p.reg.peerLast[idx] = p.hub.Engine().Now()
						p.reg.suspect[idx] = false
					}
				})
			}
		}
		if t.suspLimit > 0 {
			// Suspicion clock: this region watches its ring predecessor
			// (successor-only, so exactly one region adopts a silent hub's
			// nodes). peerLast starts at 0, but the limit is >= three
			// beacon periods, so a live predecessor always beats it.
			now := r.hub.Engine().Now()
			for _, p := range r.reg.peers {
				pi := p.reg.idx
				if r.reg.idx != (pi+1)%len(t.regions) {
					continue
				}
				if r.reg.adopted[pi] || r.reg.suspect[pi] {
					continue
				}
				if now-r.reg.peerLast[pi] > t.suspLimit {
					r.reg.suspect[pi] = true
					t.adopt(r, pi)
				}
			}
		}
		if r.ticking() {
			r.hub.Engine().After(t.summaryEvery, tick)
		}
	}
	r.hub.Engine().At(t.summaryEvery, tick)
}

// adopt executes a region takeover on the adopter's hub: the suspected
// ring predecessor's prebuilt entries — shared shard nodes plus cold
// views — join the adopter's routing set past homeN. Adoption is sticky
// for the run (beliefs may heal, routing stays safe: every booking's
// echo carries its home). The adopted views start with a fresh liveness
// stamp so the adopter's monitor gives their pongs time to arrive.
func (t *hubTree) adopt(r *ShardedDispatcher, pi int) {
	rs := r.reg
	rs.adopted[pi] = true
	rs.takeovers++
	now := r.hub.Engine().Now()
	for _, a := range rs.adoptees[pi] {
		a.view.lastBeat = now
		r.sns = append(r.sns, a.sn)
		r.views = append(r.views, a.view)
		r.bookings = append(r.bookings, nil)
	}
}

// reviveSweep runs on a hub the instant its freeze window ends. Every
// booking made before the crash is in doubt — its completion echo may
// have been lost to the freeze — so the sweep aborts and re-dispatches
// all of them (exactly-once still holds: a batch that did complete
// node-side has already dropped its token, making the abort a no-op and
// the re-execution's settle the only one). Liveness stamps reset first
// so the monitor doesn't declare the whole fleet dead over pongs the
// freeze swallowed, then the parked reliable inputs replay in arrival
// order. Re-dispatches here charge the fleet counters but not the
// batch's own budget — the fabric failed, not the batch.
func (d *ShardedDispatcher) reviveSweep() {
	rs := d.reg
	now := d.hub.Engine().Now()
	for _, v := range d.views {
		v.lastBeat = now
		v.detectedDown = false
	}
	for idx := range d.views {
		ids := append([]int(nil), d.bookings[idx]...)
		for _, id := range ids {
			id := id
			tr := d.trk[id]
			d.release(idx, id)
			if tr == nil || tr.done {
				continue
			}
			tr.gen++ // invalidate the booking's deadline and echoes
			sn := d.sns[idx]
			d.hub.SendAfter(sn.shard, d.hop, func() {
				delete(sn.tokens, id)
				delete(sn.attempts, id)
				delete(sn.homes, id)
				sn.node.rt.Abort(id)
			})
			d.redispatches++
			if c := bumpTenant(&d.tenants, tr.b.Tenant); c != nil {
				c.redispatches++
			}
			d.dispatch(tr.b, 0, nil)
		}
	}
	parked := rs.parked
	rs.parked = nil
	for _, fn := range parked {
		fn()
	}
}

// enableFaults validates the plan fleet-wide, then splits it into
// per-region slices: each sub-hub runs the full failure-aware fabric —
// breakers, deadlines, ping/pong liveness, eviction, re-dispatch —
// over its own nodes. The ExecError coin is a pure function of
// (Seed, batch, attempt), so filtering the plan never changes a draw.
func (t *hubTree) enableFaults(fc FaultConfig) error {
	if t.faulty {
		return fmt.Errorf("cluster: faults already enabled")
	}
	if err := fc.Plan.Validate(); err != nil {
		return err
	}
	owner := map[string]int{}
	for ri, r := range t.regions {
		for _, sn := range r.sns {
			owner[sn.node.Name] = ri
		}
	}
	if fc.Plan != nil {
		for _, f := range fc.Plan.ArrayFaults {
			if _, ok := owner[f.Node]; !ok {
				return fmt.Errorf("cluster: array fault names unknown node %q", f.Node)
			}
		}
		for _, c := range fc.Plan.Crashes {
			if _, ok := owner[c.Node]; !ok {
				return fmt.Errorf("cluster: crash names unknown node %q", c.Node)
			}
		}
		for _, h := range fc.Plan.HubCrashes {
			if h.Region >= len(t.regions) {
				return fmt.Errorf("%w: region %d of %d regions", fault.ErrBadHubRegion, h.Region, len(t.regions))
			}
		}
	}
	t.faulty = true
	for ri, r := range t.regions {
		rfc := fc
		if fc.Plan != nil {
			sub := &fault.Plan{Seed: fc.Plan.Seed, ExecErrorProb: fc.Plan.ExecErrorProb}
			for _, f := range fc.Plan.ArrayFaults {
				if owner[f.Node] == ri {
					sub.ArrayFaults = append(sub.ArrayFaults, f)
				}
			}
			for _, c := range fc.Plan.Crashes {
				if owner[c.Node] == ri {
					sub.Crashes = append(sub.Crashes, c)
				}
			}
			rfc.Plan = sub
		}
		if err := r.EnableFaults(rfc); err != nil {
			return err
		}
	}
	if fc.Plan != nil && (len(fc.Plan.HubCrashes) > 0 || len(fc.Plan.EdgeFaults) > 0) {
		// Fabric faults: arm the hub freeze windows, resolve edge faults
		// fleet-wide (hubs under "hub<R>", nodes by name), and switch the
		// beacons into heartbeat duty (suspLimit > 0 gates all of it).
		t.hubCrashes = fc.Plan.HubCrashes
		t.suspLimit = event.Time(fc.heartbeatMiss())*t.summaryEvery + 2*t.hop
		shards := map[string]*parsim.Shard{}
		for ri, r := range t.regions {
			shards[fmt.Sprintf("hub%d", ri)] = r.hub
			for _, sn := range r.sns {
				shards[sn.node.Name] = sn.shard
			}
		}
		if err := wireEdgeFaults(t.regions[0].drv, shards, fc); err != nil {
			return err
		}
		var maxT event.Time
		for _, h := range fc.Plan.HubCrashes {
			h := h
			r := t.regions[h.Region]
			rs := r.reg
			r.hub.Engine().At(h.At, func() { rs.down = true; rs.hubCrashes++ })
			r.hub.Engine().At(h.Recover, func() { rs.down = false; r.reviveSweep() })
			if h.Recover > maxT {
				maxT = h.Recover
			}
		}
		for _, e := range fc.Plan.EdgeFaults {
			if e.Until > maxT {
				maxT = e.Until
			}
		}
		if maxT > 0 {
			// Liveness, beacon, and monitor loops re-arm while the horizon
			// is ahead: promise activity through every fault window plus a
			// full suspicion round, so detection outlives the chaos.
			maxT += t.suspLimit + t.summaryEvery
			for _, r := range t.regions {
				r.ExtendHorizon(maxT)
			}
		}
	}
	return nil
}

// run advances the whole tree to quiescence and merges the regional
// summaries in region order — which is node-configuration order, so a
// tree summary lists nodes exactly where the flat summary would.
func (t *hubTree) run(parent *ShardedDispatcher) Summary {
	t.prepare()
	parent.drv.Run()
	s := Summary{Policy: t.policy.Name()}
	var rollups []nodeRollup
	tenants := map[string]*tenantCounts{}
	for _, r := range t.regions {
		s.Submitted += r.submitted
		s.Completed += r.completed
		s.Shed += r.shed
		s.Retries += r.retries
		s.Redispatches += r.redispatches
		s.DeadLettered += r.deadLettered
		s.ExecErrors += r.execErrors
		s.Timeouts += r.timeouts
		s.HubCrashes += r.reg.hubCrashes
		s.Takeovers += r.reg.takeovers
		s.Rehomed += r.reg.rehomed
		rollups = append(rollups, r.rollups()...)
		for name, c := range r.tenants {
			m := bumpTenant(&tenants, name)
			m.submitted += c.submitted
			m.completed += c.completed
			m.shed += c.shed
			m.deadLettered += c.deadLettered
			m.redispatches += c.redispatches
		}
	}
	if len(tenants) == 0 {
		tenants = nil
	}
	return summarize(s, rollups, tenants)
}
