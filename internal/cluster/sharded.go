package cluster

import (
	"errors"
	"fmt"

	"mlimp/internal/event"
	"mlimp/internal/event/parsim"
	"mlimp/internal/runtime"
	"mlimp/internal/sched"
)

// Conservative-parallel fleet serving. ShardedDispatcher is the
// parallel counterpart of Dispatcher: each node owns a private event
// engine on its own parsim shard, the dispatcher runs on a hub shard,
// and every cross-node interaction — dispatch, batch start/completion,
// heartbeat, eviction, abort — travels through the driver's mailboxes
// with a fixed network-hop latency. The hop is the fabric's minimum
// cross-shard latency and therefore the PDES lookahead: shards advance
// [T, T+hop) windows concurrently, and with a fixed seed the run is
// byte-identical for any worker count (see event/parsim).
//
// The hub never touches live node state. It routes against *views* —
// per-node proxies holding a mirror scheduling system, the booking
// ledger (queued count, cost estimates, predicted drain), the circuit
// breaker, and the liveness belief. Views lag ground truth by up to one
// hop each way, which models exactly what a real cluster's dispatcher
// sees: a picture of every node that is one network round-trip stale.
// Three consequences, all deterministic, differ from the single-engine
// Dispatcher:
//
//   - heartbeats are reactive (hub pings, live nodes pong) rather than
//     node-initiated, so the liveness limit allows one round-trip of
//     pong lag on top of the miss budget;
//   - a completion can cross a deadline expiry in flight: the hub
//     counts the timeout and re-dispatches, and the late completion is
//     discarded by its stale booking token — the batch still reaches
//     exactly one terminal state, but the node-side latency log may
//     record an execution the hub refused;
//   - deadlines are armed at the dispatch decision, one hop before the
//     node accepts.
type ShardedDispatcher struct {
	drv    *parsim.Driver
	hub    *parsim.Shard
	hop    event.Time
	policy Policy
	adm    Admission
	faults *FaultConfig

	sns      []*shardNode
	views    []*Node
	bookings [][]int // per-view outstanding batch IDs in booking order
	// homeN is how many of sns/views are this hub's own nodes (the
	// configuration slice it was built over). Region takeover (tree.go)
	// appends adopted ring-neighbour entries past homeN; summaries and
	// Nodes() report home nodes only, so every node is reported exactly
	// once fleet-wide no matter who adopted it.
	homeN int
	cfgs  []NodeConfig // retained for prebuilding adoptee views (tree.go)
	// estimating: the policy carries the UsesEstimates marker, so every
	// dispatch books a cost estimate (a full planning pass) on the hub
	// and nodes report start events for drain tracking. Estimate-blind
	// policies skip both.
	estimating bool

	trk         map[int]*tracker
	pending     int
	lastArrival event.Time
	onDone      func(DoneInfo)

	submitted    int
	completed    int
	shed         int
	retries      int
	redispatches int
	deadLettered int
	execErrors   int
	timeouts     int
	tenants      map[string]*tenantCounts

	// Hub-tree wiring (tree.go). On the user-facing handle of a
	// hierarchical fleet, tree holds the regional sub-dispatchers and
	// hub is nil; on each region, reg holds its place in the tree. Both
	// nil on the flat single-hub fabric, which takes none of the tree
	// code paths.
	tree *hubTree
	reg  *regionState
}

// shardNode binds one real node to its shard. tokens and attempts are
// node-shard state: the booking token echoed back in completion
// messages (the hub drops echoes of superseded bookings) and the
// 0-based attempt index the execution-error coin is flipped with.
// homes records, per booked batch, which hub dispatched it — on the
// fault-tolerant hub tree a node can legally hold bookings from two
// hubs at once (its home hub and a ring-successor adopter after a
// takeover, or both sides of a split-brain suspicion), and each
// start/completion echo must route back to the hub that made the
// booking, under that hub's own view index.
type shardNode struct {
	node     *Node
	shard    *parsim.Shard
	tokens   map[int]int
	attempts map[int]int
	homes    map[int]echoHome
}

// echoHome is one booking's return address: the dispatching hub and the
// batch's view index there.
type echoHome struct {
	d   *ShardedDispatcher
	idx int
}

// DefaultHop is the modelled dispatcher<->node network latency: one
// switch traversal plus NIC processing on a datacenter fabric, ~20µs.
// It is the minimum cross-shard latency of the fleet simulation and
// hence the PDES lookahead. It sits far above the DDR4 line round-trip
// (mainmem.Config.RoundTrip, ~43ns) — the floor a device-level sharding
// would use — and well below DefaultHeartbeat, so liveness detection
// still resolves within a beat period.
const DefaultHop = 20 * event.Microsecond

// DefaultSummaryEvery is the hub-tree beacon period: how often a
// regional sub-hub batches its completion echoes upward and broadcasts
// its load belief to ring neighbours. Sized at a few batch service
// times so beliefs stay fresh relative to the ~10ms-scale work the
// fleet serves, while keeping node shards causally independent for
// dozens of hop-widths at a stretch.
const DefaultSummaryEvery = 5 * event.Millisecond

// Topology validation errors, surfaced verbatim by the CLI -hubs /
// -hub-fanout flags (exit 2 on any of them).
var (
	// ErrBadHubs rejects a non-positive sub-hub count.
	ErrBadHubs = errors.New("cluster: hubs must be at least 1")
	// ErrBadHubFanout rejects a negative nodes-per-hub count (0 means
	// derive it from the hub count).
	ErrBadHubFanout = errors.New("cluster: hub-fanout must be positive (or 0 to derive)")
	// ErrTopologyMismatch rejects hub counts that do not evenly tile the
	// fleet, or an explicit fanout that disagrees with hubs x fanout ==
	// nodes. Regions own contiguous equal slices; ragged trees are not
	// modelled.
	ErrTopologyMismatch = errors.New("cluster: hubs x hub-fanout must exactly tile the fleet")
)

// ValidateTopology checks a (hubs, fanout) pair against a fleet size.
// fanout 0 derives nodes/hubs. Returns the resolved pair.
func ValidateTopology(hubs, fanout, nodes int) (int, int, error) {
	if hubs == 0 {
		hubs = 1
	}
	if hubs < 1 {
		return 0, 0, fmt.Errorf("%w (got %d)", ErrBadHubs, hubs)
	}
	if fanout < 0 {
		return 0, 0, fmt.Errorf("%w (got %d)", ErrBadHubFanout, fanout)
	}
	if hubs > nodes || nodes%hubs != 0 {
		return 0, 0, fmt.Errorf("%w (%d hubs over %d nodes)", ErrTopologyMismatch, hubs, nodes)
	}
	derived := nodes / hubs
	if fanout != 0 && fanout != derived {
		return 0, 0, fmt.Errorf("%w (%d hubs x fanout %d != %d nodes)", ErrTopologyMismatch, hubs, fanout, nodes)
	}
	return hubs, derived, nil
}

// ShardConfig configures the parallel simulation fabric.
type ShardConfig struct {
	// Workers is the number of window workers; <= 1 runs every window
	// serially on the calling goroutine (the -j 1 fallback) while
	// keeping the exact same windowed semantics and event order.
	Workers int
	// Hop is the cross-shard network latency and PDES lookahead.
	// 0 means DefaultHop.
	Hop event.Time
	// Hubs splits the fleet into that many regional sub-hubs, each
	// owning a contiguous equal slice of the nodes and making routing
	// decisions locally (see tree.go). 0 or 1 keeps the flat
	// single-hub fabric. Hubs must evenly divide the node count.
	Hubs int
	// HubFanout optionally pins nodes-per-hub; 0 derives it from Hubs.
	// When both are set, Hubs x HubFanout must equal the node count.
	HubFanout int
	// SummaryEvery is the hub-tree beacon period (belief broadcasts and
	// batched completion echoes). 0 means DefaultSummaryEvery. Ignored
	// by the flat fabric.
	SummaryEvery event.Time
}

func (sc ShardConfig) hop() event.Time {
	if sc.Hop > 0 {
		return sc.Hop
	}
	return DefaultHop
}

func (sc ShardConfig) summaryEvery() event.Time {
	if sc.SummaryEvery > 0 {
		return sc.SummaryEvery
	}
	return DefaultSummaryEvery
}

// NewShardedDispatcher builds a fleet with one engine shard per node
// plus a hub shard for the dispatcher, advanced by a parsim driver with
// the given worker count. The result is byte-for-byte equivalent across
// worker counts, including Workers=1. With sc.Hubs > 1 the fleet is a
// hub tree instead (see tree.go): the returned handle fans Submit out
// over regional sub-dispatchers, each with its own hub shard over a
// contiguous slice of the nodes. Invalid topologies panic; use
// ValidateTopology for an error-returning precheck.
func NewShardedDispatcher(policy Policy, adm Admission, sc ShardConfig, cfgs ...NodeConfig) *ShardedDispatcher {
	if policy == nil {
		panic("cluster: nil policy")
	}
	if len(cfgs) == 0 {
		panic("cluster: fleet needs at least one node")
	}
	hubs, fanout, err := ValidateTopology(sc.Hubs, sc.HubFanout, len(cfgs))
	if err != nil {
		panic(err.Error())
	}
	hop := sc.hop()
	drv := parsim.NewDriver(hop, sc.Workers)
	// Fill in default node names against the whole fleet before any
	// region slicing, so "node7" means the same node at every topology.
	named := make([]NodeConfig, len(cfgs))
	for i, cfg := range cfgs {
		if cfg.Name == "" {
			cfg.Name = fmt.Sprintf("node%d", i)
		}
		named[i] = cfg
	}
	if hubs <= 1 {
		return newRegion(drv, policy, adm, hop, named)
	}
	return newHubTree(drv, policy, adm, hop, sc.summaryEvery(), hubs, fanout, named)
}

// newRegion builds one hub shard plus its node shards on the shared
// driver — the whole fleet when flat, one region of the tree otherwise.
func newRegion(drv *parsim.Driver, policy Policy, adm Admission, hop event.Time, cfgs []NodeConfig) *ShardedDispatcher {
	d := &ShardedDispatcher{
		drv:    drv,
		hub:    drv.AddShard(),
		hop:    hop,
		policy: policy,
		adm:    adm,
		trk:    map[int]*tracker{},
	}
	d.estimating = policyUsesEstimates(policy)
	d.homeN = len(cfgs)
	d.cfgs = cfgs
	for i, cfg := range cfgs {
		shard := drv.AddShard()
		sn := &shardNode{
			node:     NewNode(shard.Engine(), cfg),
			shard:    shard,
			tokens:   map[int]int{},
			attempts: map[int]int{},
			homes:    map[int]echoHome{},
		}
		d.sns = append(d.sns, sn)
		d.views = append(d.views, newView(cfg))
		d.bookings = append(d.bookings, nil)
		d.wireNode(i, sn)
	}
	return d
}

// wireNode replaces the node's runtime hooks (installed by NewNode for
// the same-engine fabric) with mailbox-sending ones. The hooks run on
// the node's shard and only touch node-shard state; everything bound
// for a hub crosses through Send. Echoes route to the booking's home —
// the hub that dispatched the batch, recorded per batch in sn.homes —
// which is always this node's own region until a takeover books
// foreign work here.
func (d *ShardedDispatcher) wireNode(idx int, sn *shardNode) {
	rt := sn.node.rt
	rt.OnStart = func(b *runtime.Batch, at event.Time) {
		h, ok := sn.homes[b.ID]
		if !ok || !h.d.estimating {
			return
		}
		token, ok := sn.tokens[b.ID]
		if !ok {
			return
		}
		id := b.ID
		hub, hidx := h.d, h.idx
		// EarliestTo, not a fixed hop: on the hub tree the node->hub
		// echo edge is beacon-gridded, and this is now + hop on the
		// flat fabric either way.
		sn.shard.Send(hub.hub, sn.shard.EarliestTo(hub.hub), func() { hub.onStarted(hidx, id, token, at) })
	}
	rt.OnComplete = func(res runtime.BatchResult, err error) {
		sn.node.busy += res.Completed - res.Start
		token, ok := sn.tokens[res.ID]
		if !ok {
			return // booking superseded while the execution ran
		}
		h := sn.homes[res.ID]
		delete(sn.tokens, res.ID)
		delete(sn.attempts, res.ID)
		delete(sn.homes, res.ID)
		failed := err != nil
		hub, hidx := h.d, h.idx
		// The echo carries the full execution record: the hub's OnDone
		// observers (the serving front end) read per-job spans from it.
		// The node shard never touches res again, so the hub may. The
		// EarliestTo bound rides the beacon grid on the hub tree and is
		// now + hop on the flat fabric.
		sn.shard.Send(hub.hub, sn.shard.EarliestTo(hub.hub), func() { hub.onCompleted(hidx, res, failed, token) })
	}
}

// Workers returns the driver's worker count.
func (d *ShardedDispatcher) Workers() int { return d.drv.Workers() }

// WindowStats returns the parsim driver's window statistics after Run —
// the measured parallelism the simulation exposed.
func (d *ShardedDispatcher) WindowStats() parsim.Stats { return d.drv.Stats() }

// Hop returns the cross-shard network latency (the PDES lookahead).
func (d *ShardedDispatcher) Hop() event.Time { return d.hop }

// Nodes returns the real (execution-side) nodes in configuration order.
// Between construction and Run their state is safe to read; during Run
// it belongs to the node shards.
func (d *ShardedDispatcher) Nodes() []*Node {
	if d.tree != nil {
		var nodes []*Node
		for _, r := range d.tree.regions {
			nodes = append(nodes, r.Nodes()...)
		}
		return nodes
	}
	nodes := make([]*Node, d.homeN)
	for i, sn := range d.sns[:d.homeN] {
		nodes[i] = sn.node
	}
	return nodes
}

// Submit registers a batch arrival at b.Arrival on the hub. Must be
// called before Run; same contract as Dispatcher.Submit.
func (d *ShardedDispatcher) Submit(b *runtime.Batch) error {
	if d.tree != nil {
		return d.tree.submit(b)
	}
	if b == nil {
		return runtime.ErrNilBatch
	}
	if len(b.Jobs) == 0 {
		return fmt.Errorf("%w (batch %d)", runtime.ErrEmptyBatch, b.ID)
	}
	if _, dup := d.trk[b.ID]; dup {
		return fmt.Errorf("cluster: duplicate batch ID %d", b.ID)
	}
	tr := &tracker{b: b}
	d.trk[b.ID] = tr
	d.pending++
	d.submitted++
	if c := bumpTenant(&d.tenants, b.Tenant); c != nil {
		c.submitted++
	}
	if b.Arrival > d.lastArrival {
		d.lastArrival = b.Arrival
	}
	d.hub.Engine().At(b.Arrival, func() { d.dispatch(b, 0, nil) })
	return nil
}

// HubEngine returns the hub shard's engine. Front ends seed arrival
// events here before Run; during Run only events already executing on
// the hub may touch it. On a hub tree this is region 0's hub — the
// region that hosts hub-resident front ends (internal/serve).
func (d *ShardedDispatcher) HubEngine() *event.Engine {
	if d.tree != nil {
		return d.tree.regions[0].HubEngine()
	}
	return d.hub.Engine()
}

// RecordAssignments makes every node retain per-job schedule
// assignments on its batch results, so completion echoes carry the
// observed per-job spans the serving front end inverts for online
// retraining. Call before Run.
func (d *ShardedDispatcher) RecordAssignments() {
	if d.tree != nil {
		for _, r := range d.tree.regions {
			r.RecordAssignments()
		}
		return
	}
	for _, sn := range d.sns {
		sn.node.rt.KeepAssignments = true
	}
}

// Inject admits a batch at the current hub time — the entry point for
// hub-resident front ends (internal/serve) that form batches online
// during the run. It must be called from an event executing on the hub
// shard (or before Run). Same validation contract as Submit; b.Arrival
// should already be set for latency accounting.
func (d *ShardedDispatcher) Inject(b *runtime.Batch) error {
	if d.tree != nil {
		// Hub-resident front ends live on region 0's shard; their batches
		// enter there (re-homing to the lowest live region when region
		// 0's hub is frozen) and may still migrate by overflow forwarding.
		return d.tree.inject(b)
	}
	if b == nil {
		return runtime.ErrNilBatch
	}
	if len(b.Jobs) == 0 {
		return fmt.Errorf("%w (batch %d)", runtime.ErrEmptyBatch, b.ID)
	}
	if _, dup := d.trk[b.ID]; dup {
		return fmt.Errorf("cluster: duplicate batch ID %d", b.ID)
	}
	tr := &tracker{b: b}
	d.trk[b.ID] = tr
	d.pending++
	d.submitted++
	if c := bumpTenant(&d.tenants, b.Tenant); c != nil {
		c.submitted++
	}
	if now := d.hub.Engine().Now(); now > d.lastArrival {
		d.lastArrival = now
	}
	d.dispatch(b, 0, nil)
	return nil
}

// ExtendHorizon promises the dispatcher that work may keep arriving
// until at least t (hub time). The liveness and monitor loops re-arm
// while the horizon is ahead, so an open-loop front end injecting
// batches mid-run keeps failure detection alive even across idle gaps.
func (d *ShardedDispatcher) ExtendHorizon(t event.Time) {
	if d.tree != nil {
		for _, r := range d.tree.regions {
			r.ExtendHorizon(t)
		}
		return
	}
	if t > d.lastArrival {
		d.lastArrival = t
	}
}

// PredictedCompletion estimates the earliest completion time of a batch
// of jobs if injected right now: over the currently eligible views,
// hub-now plus one dispatch hop plus the view's predicted drain plus
// the idle-node cost estimate of the jobs. The second result is false
// when no view is eligible (the batch would shed or retry). Meaningful
// with estimate-booking policies; estimate-blind policies see drains of
// zero. Must run on the hub (inside an event during Run, or before Run).
func (d *ShardedDispatcher) PredictedCompletion(jobs []*sched.Job) (event.Time, bool) {
	if d.tree != nil {
		// Admission rides the local sub-hub predictor: region 0's views
		// are the front end's one-round-trip-fresh picture; remote
		// regions are only reachable by overflow forwarding anyway. A
		// frozen region-0 hub predicts nothing — the front end sheds at
		// admission until the hub restarts.
		r0 := d.tree.regions[0]
		if r0.reg != nil && r0.reg.down {
			return 0, false
		}
		return r0.PredictedCompletion(jobs)
	}
	now := d.hub.Engine().Now()
	probe := &runtime.Batch{ID: -1, Arrival: now, Jobs: jobs}
	best, found := event.Time(0), false
	for _, v := range d.views {
		if !d.eligible(v, probe) {
			continue
		}
		at := now + d.hop + v.PredictedDrain(now) + v.EstimateCost(jobs)
		if !found || at < best {
			best, found = at, true
		}
	}
	return best, found
}

// finish moves a batch to a terminal state exactly once.
func (d *ShardedDispatcher) finish(tr *tracker) bool {
	if tr.done {
		return false
	}
	tr.done = true
	d.pending--
	return true
}

// settle finishes a batch into the given outcome, credits the counter,
// and notifies the OnDone observer. Exactly one settle succeeds per
// batch.
func (d *ShardedDispatcher) settle(tr *tracker, o Outcome, node string, res runtime.BatchResult) bool {
	if !d.finish(tr) {
		return false
	}
	c := bumpTenant(&d.tenants, tr.b.Tenant)
	switch o {
	case OutcomeCompleted:
		d.completed++
		if c != nil {
			c.completed++
		}
	case OutcomeShed:
		d.shed++
		if c != nil {
			c.shed++
		}
	default:
		d.deadLettered++
		if c != nil {
			c.deadLettered++
		}
	}
	if d.onDone != nil {
		d.onDone(DoneInfo{Batch: tr.b, Outcome: o, At: d.hub.Engine().Now(), Node: node, Result: res})
	}
	return true
}

// OnDone registers the hub-side terminal-state observer. Set before Run;
// the hook runs inside hub events, so it may legally call Inject,
// PredictedCompletion, and the hub engine. On a hub tree the hook runs
// on region 0's shard: its own settles call it directly, sibling
// regions relay theirs over a peer edge.
func (d *ShardedDispatcher) OnDone(fn func(DoneInfo)) {
	if d.tree != nil {
		d.tree.onDone = fn
		return
	}
	d.onDone = fn
}

// eligible mirrors Dispatcher.eligible against a view.
func (d *ShardedDispatcher) eligible(v *Node, b *runtime.Batch) bool {
	if v.Outstanding() >= d.adm.queueCap() || !v.CanRun(b.Jobs) {
		return false
	}
	if d.faults != nil {
		if v.detectedDown || !v.breaker.Allow(d.hub.Engine().Now()) {
			return false
		}
	}
	return true
}

// dispatch routes one arrival from the hub: policy pick over the views,
// book the estimate hub-side, and send the batch to the chosen node's
// shard. The booking token (the tracker generation) travels with the
// batch; completions echo it back so the hub can discard echoes of
// bookings it has since abandoned.
func (d *ShardedDispatcher) dispatch(b *runtime.Batch, attempt int, avoid *Node) {
	// A frozen hub processes nothing: routing decisions (arrivals, retry
	// timers, re-dispatches) park and replay in order at revival.
	if rs := d.reg; rs != nil && rs.down {
		rs.parked = append(rs.parked, func() { d.dispatch(b, attempt, avoid) })
		return
	}
	tr := d.trk[b.ID]
	if tr == nil || tr.done {
		return
	}
	var eligible, fallback []*Node
	for _, v := range d.views {
		if !d.eligible(v, b) {
			continue
		}
		if v == avoid {
			fallback = append(fallback, v)
			continue
		}
		eligible = append(eligible, v)
	}
	if len(eligible) == 0 {
		eligible = fallback
	}
	if len(eligible) == 0 {
		// A saturated region offers the batch to a less-loaded sibling
		// before burning local retries (no-op on the flat fabric).
		if d.reg != nil && d.tryForward(tr) {
			return
		}
		if attempt < d.adm.MaxRetries {
			d.retries++
			d.hub.Engine().After(retryDelay(d.adm.backoff(), attempt), func() { d.dispatch(b, attempt+1, avoid) })
			return
		}
		d.settle(tr, OutcomeShed, "", runtime.BatchResult{})
		return
	}
	v := d.policy.Pick(eligible, b, d.hub.Engine().Now())
	idx := d.viewIndex(v)
	tr.node, tr.idx = v, idx
	tr.gen++
	tr.attempts++
	token := tr.gen
	if d.faults != nil {
		v.breaker.OnPick()
		if dl := d.faults.Deadline; dl > 0 {
			gen := tr.gen
			d.hub.Engine().After(dl, func() { d.onDeadline(tr, gen) })
		}
	}
	if d.estimating {
		est := v.EstimateCost(b.Jobs)
		v.estimates[b.ID] = est
		v.predicted += est
	}
	v.queued++
	v.accepted++
	d.bookings[idx] = append(d.bookings[idx], b.ID)
	attemptIdx := tr.attempts - 1
	sn := d.sns[idx]
	home := echoHome{d: d, idx: idx}
	d.hub.SendAfter(sn.shard, d.hop, func() {
		sn.tokens[b.ID] = token
		sn.attempts[b.ID] = attemptIdx
		sn.homes[b.ID] = home
		if err := sn.node.rt.Enqueue(b); err != nil {
			panic("cluster: " + err.Error()) // batches are validated at Submit
		}
	})
}

// viewIndex locates a view's node index. The fleet is small (policy
// Pick is already O(nodes)), so a scan beats carrying a map around.
func (d *ShardedDispatcher) viewIndex(v *Node) int {
	for i, x := range d.views {
		if x == v {
			return i
		}
	}
	panic("cluster: policy picked a node outside the eligible set")
}

// release drops a booking from a view's ledger: the cost estimate, the
// queued count, and the booking-order entry. Exactly one release
// happens per booking — completion, deadline, or eviction, whichever
// the token/generation guards let through first.
func (d *ShardedDispatcher) release(idx, id int) {
	v := d.views[idx]
	v.abandon(id)
	v.queued--
	ids := d.bookings[idx]
	for i, x := range ids {
		if x == id {
			d.bookings[idx] = append(ids[:i], ids[i+1:]...)
			break
		}
	}
}

// onStarted updates the view's drain tracking when the node reports a
// batch entering execution. at is node time; the view keeps it as the
// run start so PredictedDrain subtracts real elapsed execution.
func (d *ShardedDispatcher) onStarted(idx, id, token int, at event.Time) {
	if rs := d.reg; rs != nil && rs.down {
		return // a frozen hub loses its echoes
	}
	tr := d.trk[id]
	if tr == nil || tr.done || tr.gen != token {
		return
	}
	v := d.views[idx]
	v.runningID, v.runStart = id, at
}

// onCompleted settles a completion echo on the hub. A stale token means
// the hub already abandoned that booking (deadline or eviction) — the
// echo is dropped and whatever path superseded it owns the batch.
func (d *ShardedDispatcher) onCompleted(idx int, res runtime.BatchResult, failed bool, token int) {
	if rs := d.reg; rs != nil && rs.down {
		// A completion echo lost to the freeze: the revival sweep cannot
		// know this booking finished, so it will abort node-side (a
		// no-op — the node already dropped the token) and re-dispatch.
		// The batch may execute twice, but it settles exactly once.
		return
	}
	id := res.ID
	tr := d.trk[id]
	if tr == nil || tr.done || tr.gen != token {
		return
	}
	tr.gen++ // disarm the deadline for this booking
	v := d.views[idx]
	d.release(idx, id)
	if !failed {
		if d.faults != nil {
			v.breaker.OnSuccess()
		}
		d.settle(tr, OutcomeCompleted, v.Name, res)
		return
	}
	d.execErrors++
	v.failures++
	if d.faults == nil {
		d.settle(tr, OutcomeDeadLettered, "", runtime.BatchResult{})
		return
	}
	v.breaker.OnFailure(d.hub.Engine().Now())
	d.redispatch(tr, v)
}

// onDeadline fires on the hub when a booking's completion deadline
// lapses without an accepted completion echo.
func (d *ShardedDispatcher) onDeadline(tr *tracker, gen int) {
	if rs := d.reg; rs != nil && rs.down {
		// Skip, don't park: the booking is still in the ledger, so the
		// revival sweep will abort and re-dispatch it anyway.
		return
	}
	if tr.done || tr.gen != gen {
		return
	}
	idx, v := tr.idx, tr.node
	d.timeouts++
	v.failures++
	v.breaker.OnFailure(d.hub.Engine().Now())
	id := tr.b.ID
	sn := d.sns[idx]
	d.hub.SendAfter(sn.shard, d.hop, func() {
		delete(sn.tokens, id)
		delete(sn.attempts, id)
		delete(sn.homes, id)
		sn.node.rt.Abort(id)
	})
	d.release(idx, id)
	d.redispatch(tr, v)
}

// redispatch sends a failed batch back through routing with the same
// budget rules as the single-engine dispatcher.
func (d *ShardedDispatcher) redispatch(tr *tracker, avoid *Node) {
	if tr.redispatches >= d.faults.maxRedispatch() {
		d.settle(tr, OutcomeDeadLettered, "", runtime.BatchResult{})
		return
	}
	tr.redispatches++
	d.redispatches++
	if c := bumpTenant(&d.tenants, tr.b.Tenant); c != nil {
		c.redispatches++
	}
	tr.gen++
	d.dispatch(tr.b, 0, avoid)
}

// ticking mirrors Dispatcher.ticking on hub time.
func (d *ShardedDispatcher) ticking() bool {
	return d.pending > 0 || d.hub.Engine().Now() < d.lastArrival
}

// EnableFaults switches the sharded dispatcher into failure-aware mode.
// Same contract as Dispatcher.EnableFaults; the mechanisms route
// through the mailboxes: the fault plan is seeded into the node shards
// (capacity faults mirrored into the hub's views at the same instants),
// execution-error coins flip node-side with the attempt index carried
// in the dispatch message, and liveness is hub ping -> node pong.
func (d *ShardedDispatcher) EnableFaults(fc FaultConfig) error {
	if d.tree != nil {
		return d.tree.enableFaults(fc)
	}
	if d.faults != nil {
		return fmt.Errorf("cluster: faults already enabled")
	}
	if err := fc.Plan.Validate(); err != nil {
		return err
	}
	byName := map[string]int{}
	for i, sn := range d.sns {
		byName[sn.node.Name] = i
	}
	if fc.Plan != nil {
		for _, f := range fc.Plan.ArrayFaults {
			if _, ok := byName[f.Node]; !ok {
				return fmt.Errorf("cluster: array fault names unknown node %q", f.Node)
			}
		}
		for _, c := range fc.Plan.Crashes {
			if _, ok := byName[c.Node]; !ok {
				return fmt.Errorf("cluster: crash names unknown node %q", c.Node)
			}
		}
		if len(fc.Plan.HubCrashes) > 0 {
			return fmt.Errorf("%w (flat fabric)", ErrHubCrashNeedsTree)
		}
		shards := map[string]*parsim.Shard{"hub0": d.hub}
		for _, sn := range d.sns {
			shards[sn.node.Name] = sn.shard
		}
		if err := wireEdgeFaults(d.drv, shards, fc); err != nil {
			return err
		}
	}
	d.faults = &fc
	execFn := fc.execFn()
	for i, sn := range d.sns {
		d.views[i].breaker = newBreaker(fc.breakerK(), fc.breakerCooldown())
		if execFn != nil {
			sn := sn
			name := sn.node.Name
			sn.node.rt.ExecError = func(b *runtime.Batch) error {
				attempt := sn.attempts[b.ID]
				if execFn(b.ID, attempt) {
					return fmt.Errorf("cluster: batch %d failed on %s (attempt %d)",
						b.ID, name, attempt)
				}
				return nil
			}
		}
	}
	d.schedulePlan(byName)
	d.startLiveness()
	return nil
}

// wireEdgeFaults resolves the plan's edge faults against the fabric's
// shards — hubs under "hub<R>", nodes under their node names — and
// schedules them on the parsim driver. Lossy faults require a dispatch
// deadline: dropped dispatches and completion echoes are only recovered
// by the deadline -> re-dispatch path.
func wireEdgeFaults(drv *parsim.Driver, shards map[string]*parsim.Shard, fc FaultConfig) error {
	if fc.Plan == nil || len(fc.Plan.EdgeFaults) == 0 {
		return nil
	}
	for _, e := range fc.Plan.EdgeFaults {
		src, ok := shards[e.From]
		if !ok {
			return fmt.Errorf("%w (%q)", ErrUnknownEdgeEndpoint, e.From)
		}
		dst, ok := shards[e.To]
		if !ok {
			return fmt.Errorf("%w (%q)", ErrUnknownEdgeEndpoint, e.To)
		}
		if e.DropProb > 0 && fc.Deadline <= 0 {
			return fmt.Errorf("%w (%s->%s drop=%.2f)", ErrEdgeFaultNeedsDeadline, e.From, e.To, e.DropProb)
		}
		drv.AddEdgeFault(src, dst, parsim.EdgeFault{
			At: e.At, Until: e.Until, DropProb: e.DropProb, Delay: e.Delay,
			Seed: fc.Plan.Seed,
		})
	}
	return nil
}

// schedulePlan seeds the fault plan into the node shards' engines —
// crashes and capacity faults are local facts that happen at exact node
// times — and mirrors capacity faults into the hub's views at the same
// instants, so routing estimates degrade in lockstep with the nodes
// (a real dispatcher would learn of them via a control-plane
// notification; the zero-delay mirror keeps estimate behaviour
// identical to the single-engine fabric). Crashes are deliberately not
// mirrored: the hub's belief about liveness comes only from missed
// pongs, as it would in production.
func (d *ShardedDispatcher) schedulePlan(byName map[string]int) {
	if d.faults.Plan == nil {
		return
	}
	for _, f := range d.faults.Plan.ArrayFaults {
		f := f
		idx := byName[f.Node]
		sn, v := d.sns[idx], d.views[idx]
		sn.shard.Engine().At(f.At, func() {
			n := sn.node
			n.degrade(f.Target, f.Magnitude(n.Sys.HealthyCapacity(f.Target)))
		})
		d.hub.Engine().At(f.At, func() {
			v.degrade(f.Target, f.Magnitude(v.Sys.HealthyCapacity(f.Target)))
		})
		if f.Transient() {
			sn.shard.Engine().At(f.Recover, func() {
				n := sn.node
				n.restore(f.Target, f.Magnitude(n.Sys.HealthyCapacity(f.Target)))
			})
			d.hub.Engine().At(f.Recover, func() {
				v.restore(f.Target, f.Magnitude(v.Sys.HealthyCapacity(f.Target)))
			})
		}
	}
	for _, c := range d.faults.Plan.Crashes {
		c := c
		sn := d.sns[byName[c.Node]]
		sn.shard.Engine().At(c.At, sn.node.crash)
		if c.Transient() {
			sn.shard.Engine().At(c.Recover, func() { sn.node.revive(sn.shard.Engine().Now()) })
		}
	}
}

// startLiveness arms the hub's ping and monitor loops. Unlike the
// single-engine fabric, where nodes beat into shared state, liveness is
// a protocol: the hub pings every period, live nodes pong, and the
// monitor declares a node dead when its last pong is older than the
// miss budget plus one ping round-trip of slack.
func (d *ShardedDispatcher) startLiveness() {
	period := d.faults.heartbeat()
	var ping func()
	ping = func() {
		// A frozen hub sends no pings and ignores incoming pongs; the
		// loop itself keeps re-arming so liveness resumes at revival
		// (the revival sweep resets every view's lastBeat first).
		if rs := d.reg; rs == nil || !rs.down {
			for i, sn := range d.sns {
				i, sn := i, sn
				d.hub.SendAfter(sn.shard, d.hop, func() {
					if sn.node.down {
						return
					}
					sn.shard.SendAfter(d.hub, d.hop, func() {
						if rs := d.reg; rs != nil && rs.down {
							return
						}
						d.views[i].lastBeat = d.hub.Engine().Now()
					})
				})
			}
		}
		if d.ticking() {
			d.hub.Engine().After(period, ping)
		}
	}
	var monitor func()
	monitor = func() {
		if rs := d.reg; rs == nil || !rs.down {
			d.monitorOnce()
		}
		if d.ticking() {
			d.hub.Engine().After(period, monitor)
		}
	}
	d.hub.Engine().After(period, ping)
	d.hub.Engine().After(period, monitor)
}

// monitorOnce sweeps the views: nodes whose pongs went silent past the
// limit are declared dead, their bookings released in booking order
// (deterministic — never a map walk) and re-dispatched, and an evict
// message tells the node shard to drop the stranded work. A view that
// pongs again rejoins routing.
func (d *ShardedDispatcher) monitorOnce() {
	now := d.hub.Engine().Now()
	period := d.faults.heartbeat()
	limit := event.Time(d.faults.heartbeatMiss())*period + 2*d.hop
	for i, v := range d.views {
		silent := now - v.lastBeat
		if !v.detectedDown && silent > limit {
			v.detectedDown = true
			sn := d.sns[i]
			d.hub.SendAfter(sn.shard, d.hop, func() {
				for _, b := range sn.node.rt.Evict() {
					delete(sn.tokens, b.ID)
					delete(sn.attempts, b.ID)
					delete(sn.homes, b.ID)
				}
			})
			ids := append([]int(nil), d.bookings[i]...)
			for _, id := range ids {
				tr := d.trk[id]
				d.release(i, id)
				if tr == nil || tr.done {
					continue
				}
				tr.gen++ // invalidate the booking's deadline and echoes
				d.redispatch(tr, v)
			}
		} else if v.detectedDown && silent <= limit {
			v.detectedDown = false
		}
	}
}

// mergedHealth classifies a node combining ground truth held by the
// node shard (crash flag, lost arrays) with the hub's belief (liveness,
// breaker state) — the same verdict Node.Health gives when both live on
// one engine.
func mergedHealth(real, view *Node) Health {
	if real.down || view.detectedDown {
		return DownHealth
	}
	if real.arraysLost > 0 || (view.breaker != nil && view.breaker.state != breakerClosed) {
		return Degraded
	}
	return Healthy
}

// Run advances all shards to quiescence — in parallel for Workers > 1 —
// and aggregates the fleet summary. Execution facts (latency results,
// busy time, crashes, lost arrays) come from the node shards; failure
// attribution and terminal-state counters from the hub.
func (d *ShardedDispatcher) Run() Summary {
	if d.tree != nil {
		return d.tree.run(d)
	}
	d.drv.Run()
	s := Summary{Policy: d.policy.Name(), Submitted: d.submitted,
		Completed: d.completed, Shed: d.shed, Retries: d.retries,
		Redispatches: d.redispatches, DeadLettered: d.deadLettered,
		ExecErrors: d.execErrors, Timeouts: d.timeouts,
	}
	return summarize(s, d.rollups(), d.tenants)
}

// rollups assembles the per-node summary rows for this hub's home
// nodes; adopted entries past homeN are reported by their home region.
func (d *ShardedDispatcher) rollups() []nodeRollup {
	rollups := make([]nodeRollup, 0, d.homeN)
	for i, sn := range d.sns[:d.homeN] {
		v := d.views[i]
		r := nodeRollup{
			name: sn.node.Name, rt: sn.node.rt.Summarize(), busy: sn.node.busy,
			failures: v.failures, crashes: sn.node.crashes, arraysLost: sn.node.arraysLost,
			lostByTarget: lostRollup(sn.node.Sys),
		}
		if d.faults != nil {
			r.health = mergedHealth(sn.node, v).String()
		}
		rollups = append(rollups, r)
	}
	return rollups
}
