package cluster

import (
	"errors"
	"testing"

	"mlimp/internal/event"
	"mlimp/internal/fault"
)

// fabricChaosTree runs a 4-node, 2-region tree under a fabric fault
// plan with a fast beacon grid (suspicion limit ~1.54ms at the default
// miss budget), 30 staggered arrivals, and an OnDone observer counting
// terminal states per batch. Returns the summary and the observer map.
func fabricChaosTree(policy Policy, workers int, plan *fault.Plan) (Summary, map[int]int) {
	d := NewShardedDispatcher(policy, Admission{MaxRetries: 6},
		ShardConfig{Workers: workers, Hubs: 2, SummaryEvery: 500 * event.Microsecond},
		fullNode("a"), fullNode("b"), fullNode("c"), fullNode("d"))
	seen := map[int]int{}
	d.OnDone(func(di DoneInfo) { seen[di.Batch.ID]++ })
	if err := d.EnableFaults(FaultConfig{Plan: plan, Deadline: 5 * event.Millisecond}); err != nil {
		panic(err)
	}
	for i := 0; i < 30; i++ {
		if err := d.Submit(mkBatch(i, event.Time(i)*200*event.Microsecond, 4)); err != nil {
			panic(err)
		}
	}
	return d.Run(), seen
}

// hubCrashPlan freezes region 1's hub for [1ms, 4ms) — longer than the
// suspicion limit, so region 0 both loses a peer and adopts its nodes.
func hubCrashPlan() *fault.Plan {
	return &fault.Plan{
		Seed:       5,
		HubCrashes: []fault.HubCrash{{Region: 1, At: event.Millisecond, Recover: 4 * event.Millisecond}},
	}
}

// TestTreeHubCrashConservation: a frozen hub loses its echoes and parks
// its routing, yet every batch still reaches exactly one terminal state,
// and the summary reports the freeze, the takeover, and the fabric
// re-dispatches the revival sweep charged.
func TestTreeHubCrashConservation(t *testing.T) {
	s, seen := fabricChaosTree(NewRoundRobin(), 4, hubCrashPlan())
	conserved(t, s)
	if s.Completed == 0 {
		t.Fatal("hub-crash run completed nothing")
	}
	if s.HubCrashes != 1 {
		t.Errorf("summary HubCrashes = %d, want 1", s.HubCrashes)
	}
	if s.Takeovers == 0 {
		t.Error("3ms freeze above the suspicion limit triggered no takeover")
	}
	for id, c := range seen {
		if c != 1 {
			t.Errorf("batch %d observed %d times (exactly-once broken)", id, c)
		}
	}
	if len(seen) != s.Submitted {
		t.Errorf("observer saw %d distinct batches, want %d", len(seen), s.Submitted)
	}
}

// TestTreeHubCrashWorkerEquivalence: the whole failover cascade —
// freeze, parked replay, suspicion, takeover, revival sweep — is
// byte-identical at every worker count.
func TestTreeHubCrashWorkerEquivalence(t *testing.T) {
	var want string
	for _, workers := range []int{1, 2, 4, 8} {
		s, _ := fabricChaosTree(NewRoundRobin(), workers, hubCrashPlan())
		got := s.String()
		if workers == 1 {
			want = got
			continue
		}
		if got != want {
			t.Errorf("workers=%d diverges from workers=1:\n%s\nvs\n%s", workers, got, want)
		}
	}
}

// TestTreeRelayFailoverExactlyOnce: with region 0's hub frozen, sibling
// settles re-home through the lowest live hub instead of the hard-wired
// region-0 relay, and the observer still sees every batch exactly once.
func TestTreeRelayFailoverExactlyOnce(t *testing.T) {
	plan := &fault.Plan{
		Seed:       5,
		HubCrashes: []fault.HubCrash{{Region: 0, At: event.Millisecond, Recover: 4 * event.Millisecond}},
	}
	s, seen := fabricChaosTree(NewLeastOutstanding(), 4, plan)
	conserved(t, s)
	if s.Rehomed == 0 {
		t.Error("region-0 freeze re-homed no relays")
	}
	if s.HubCrashes != 1 {
		t.Errorf("summary HubCrashes = %d, want 1", s.HubCrashes)
	}
	for id, c := range seen {
		if c != 1 {
			t.Errorf("batch %d observed %d times", id, c)
		}
	}
	if len(seen) != s.Submitted {
		t.Errorf("observer saw %d of %d batches", len(seen), s.Submitted)
	}
}

// TestTreeBeaconLossSuspicion: dropping every hub1->hub0 beacon makes
// region 0 suspect its (live) predecessor and adopt its nodes — a false
// positive the fabric is designed to survive: conservation holds, the
// adoption is counted, and reliable traffic still crosses the lossy
// edge.
func TestTreeBeaconLossSuspicion(t *testing.T) {
	plan := &fault.Plan{
		Seed: 11,
		EdgeFaults: []fault.EdgeFault{
			{From: "hub1", To: "hub0", At: 0, DropProb: 1},
		},
	}
	s, seen := fabricChaosTree(NewRoundRobin(), 4, plan)
	conserved(t, s)
	if s.Takeovers == 0 {
		t.Error("total beacon loss triggered no suspicion/takeover")
	}
	if s.Completed == 0 {
		t.Fatal("beacon-loss run completed nothing")
	}
	for id, c := range seen {
		if c != 1 {
			t.Errorf("batch %d observed %d times", id, c)
		}
	}
}

// TestTreeSplitBrainPartition: a clean hub<->hub partition window makes
// both regions suspect each other and adopt each other's nodes — double
// booking on shared shard nodes — yet the booking tokens and per-batch
// echo homes keep every batch settling exactly once.
func TestTreeSplitBrainPartition(t *testing.T) {
	plan := &fault.Plan{
		Seed: 17,
		EdgeFaults: fault.PartitionEdges(
			[]string{"hub0"}, []string{"hub1"},
			event.Millisecond, 4*event.Millisecond),
	}
	var want string
	for _, workers := range []int{1, 4} {
		s, seen := fabricChaosTree(NewRoundRobin(), workers, plan)
		conserved(t, s)
		if s.Takeovers != 2 {
			t.Errorf("split brain takeovers = %d, want 2 (both sides adopt)", s.Takeovers)
		}
		for id, c := range seen {
			if c != 1 {
				t.Errorf("batch %d observed %d times", id, c)
			}
		}
		got := s.String()
		if workers == 1 {
			want = got
			continue
		}
		if got != want {
			t.Errorf("workers=%d split-brain run diverges:\n%s\nvs\n%s", workers, got, want)
		}
	}
}

// TestFabricFaultErrors: the named-error contract for fabric fault
// plans — wrong topology, bad region, lossy edges without a deadline,
// unknown endpoints — that the CLI flags surface with exit 2.
func TestFabricFaultErrors(t *testing.T) {
	hubCrash := &fault.Plan{HubCrashes: []fault.HubCrash{{Region: 0, At: 1, Recover: 2}}}

	// Single-engine dispatcher has no fabric at all.
	sd := NewDispatcher(NewRoundRobin(), Admission{}, fullNode("a"))
	if err := sd.EnableFaults(FaultConfig{Plan: hubCrash}); !errors.Is(err, ErrHubCrashNeedsTree) {
		t.Errorf("single-engine hub crash err = %v, want ErrHubCrashNeedsTree", err)
	}
	sd = NewDispatcher(NewRoundRobin(), Admission{}, fullNode("a"))
	edge := &fault.Plan{EdgeFaults: []fault.EdgeFault{{From: "hub0", To: "a", Delay: 10}}}
	if err := sd.EnableFaults(FaultConfig{Plan: edge}); !errors.Is(err, ErrEdgeFaultNeedsFabric) {
		t.Errorf("single-engine edge fault err = %v, want ErrEdgeFaultNeedsFabric", err)
	}

	// Flat sharded fabric has edges but only one hub.
	flat := NewShardedDispatcher(NewRoundRobin(), Admission{}, ShardConfig{}, fullNode("a"))
	if err := flat.EnableFaults(FaultConfig{Plan: hubCrash}); !errors.Is(err, ErrHubCrashNeedsTree) {
		t.Errorf("flat hub crash err = %v, want ErrHubCrashNeedsTree", err)
	}

	tree := func() *ShardedDispatcher {
		return NewShardedDispatcher(NewRoundRobin(), Admission{}, ShardConfig{Hubs: 2},
			fullNode("a"), fullNode("b"))
	}
	// Region index out of range for the topology.
	bad := &fault.Plan{HubCrashes: []fault.HubCrash{{Region: 7, At: 1, Recover: 2}}}
	if err := tree().EnableFaults(FaultConfig{Plan: bad}); !errors.Is(err, fault.ErrBadHubRegion) {
		t.Errorf("out-of-range region err = %v, want fault.ErrBadHubRegion", err)
	}
	// Lossy edges need the deadline recovery path.
	lossy := &fault.Plan{EdgeFaults: []fault.EdgeFault{{From: "hub0", To: "hub1", DropProb: 0.5}}}
	if err := tree().EnableFaults(FaultConfig{Plan: lossy}); !errors.Is(err, ErrEdgeFaultNeedsDeadline) {
		t.Errorf("lossy-without-deadline err = %v, want ErrEdgeFaultNeedsDeadline", err)
	}
	// Endpoints must name real shards.
	ghost := &fault.Plan{EdgeFaults: []fault.EdgeFault{{From: "hub0", To: "zz", Delay: 10}}}
	if err := tree().EnableFaults(FaultConfig{Plan: ghost}); !errors.Is(err, ErrUnknownEdgeEndpoint) {
		t.Errorf("unknown endpoint err = %v, want ErrUnknownEdgeEndpoint", err)
	}
	// A delay-only edge fault on the flat sharded fabric is legal: the
	// flat fabric has edges (hub0 plus the node names), just one hub.
	flat = NewShardedDispatcher(NewRoundRobin(), Admission{}, ShardConfig{}, fullNode("a"))
	slow := &fault.Plan{EdgeFaults: []fault.EdgeFault{{From: "hub0", To: "a", Delay: 10 * event.Microsecond}}}
	if err := flat.EnableFaults(FaultConfig{Plan: slow}); err != nil {
		t.Errorf("flat delay-only edge fault rejected: %v", err)
	}
}

// TestTreeFlashCrowdDuringFailover: a burst of arrivals lands inside
// the freeze window; the plan-aware spray re-routes them to the live
// region, and nothing is lost.
func TestTreeFlashCrowdDuringFailover(t *testing.T) {
	d := NewShardedDispatcher(NewLeastOutstanding(), Admission{MaxRetries: 6, QueueCap: 16},
		ShardConfig{Workers: 4, Hubs: 2, SummaryEvery: 500 * event.Microsecond},
		fullNode("a"), fullNode("b"), fullNode("c"), fullNode("d"))
	plan := hubCrashPlan()
	if err := d.EnableFaults(FaultConfig{Plan: plan, Deadline: 5 * event.Millisecond}); err != nil {
		t.Fatal(err)
	}
	id := 0
	for ; id < 10; id++ { // steady pre-crash trickle
		if err := d.Submit(mkBatch(id, event.Time(id)*100*event.Microsecond, 3)); err != nil {
			t.Fatal(err)
		}
	}
	for ; id < 30; id++ { // flash crowd inside the freeze window
		if err := d.Submit(mkBatch(id, 2*event.Millisecond, 3)); err != nil {
			t.Fatal(err)
		}
	}
	s := d.Run()
	conserved(t, s)
	if s.Completed == 0 {
		t.Fatal("flash-crowd run completed nothing")
	}
	// Every flash-crowd arrival was sprayed at a live hub: region 1 is
	// frozen at 2ms, so region 0 owns all 20 burst submissions.
	r0, r1 := d.tree.regions[0], d.tree.regions[1]
	if r0.submitted < 20 {
		t.Errorf("live region 0 owns %d submissions, want >= 20 (burst re-sprayed)", r0.submitted)
	}
	if r0.submitted+r1.submitted != 30 {
		t.Errorf("regions own %d+%d submissions, want 30", r0.submitted, r1.submitted)
	}
}
