package cluster

import (
	"testing"

	"mlimp/internal/event"
	"mlimp/internal/fault"
	"mlimp/internal/isa"
)

// chaosSharded mirrors chaosRun on the sharded dispatcher: the same
// fault cascade — transient array fault, kill + revive, permanent kill,
// exec errors, deadlines — driven through the mailbox fabric with the
// given worker count.
func chaosSharded(policy Policy, workers int) Summary {
	d := NewShardedDispatcher(policy, Admission{MaxRetries: 6}, ShardConfig{Workers: workers},
		fullNode("a"), fullNode("b"), fullNode("c"))
	plan := &fault.Plan{
		Seed: 99,
		ArrayFaults: []fault.ArrayFault{
			{Node: "a", Target: isa.SRAM, Fraction: 0.5, At: 500 * event.Microsecond, Recover: 3 * event.Millisecond},
		},
		Crashes: []fault.Crash{
			{Node: "b", At: event.Millisecond, Recover: 4 * event.Millisecond},
			{Node: "c", At: 2 * event.Millisecond},
		},
		ExecErrorProb: 0.15,
	}
	if err := d.EnableFaults(FaultConfig{Plan: plan, Deadline: 50 * event.Millisecond}); err != nil {
		panic(err)
	}
	for i := 0; i < 30; i++ {
		if err := d.Submit(mkBatch(i, event.Time(i)*200*event.Microsecond, 4)); err != nil {
			panic(err)
		}
	}
	return d.Run()
}

// TestShardedWorkerEquivalence is the determinism contract end to end:
// the full failure cascade must render byte-identically for every
// worker count, for every policy. Run with -race this also shakes out
// any simulation state shared across shards.
func TestShardedWorkerEquivalence(t *testing.T) {
	for _, pname := range PolicyNames() {
		var want string
		for _, workers := range []int{1, 2, 4, 8} {
			policy, _ := PolicyByName(pname)
			got := chaosSharded(policy, workers).String()
			if workers == 1 {
				want = got
				continue
			}
			if got != want {
				t.Errorf("policy %s: workers=%d diverges from workers=1:\n%s\nvs\n%s",
					pname, workers, got, want)
			}
		}
	}
}

// TestShardedReplayDeterministic: two identical parallel runs replay
// bit for bit (determinism within one worker count, not just across).
func TestShardedReplayDeterministic(t *testing.T) {
	p1, _ := PolicyByName("predicted-cost")
	p2, _ := PolicyByName("predicted-cost")
	if a, b := chaosSharded(p1, 4).String(), chaosSharded(p2, 4).String(); a != b {
		t.Errorf("parallel chaos replay diverged:\n%s\nvs\n%s", a, b)
	}
}

func TestShardedChaosConservation(t *testing.T) {
	s := chaosSharded(NewRoundRobin(), 4)
	conserved(t, s)
	if s.Completed == 0 {
		t.Fatal("sharded chaos run completed nothing")
	}
	byName := map[string]NodeSummary{}
	for _, ns := range s.Nodes {
		byName[ns.Name] = ns
	}
	if h := byName["c"].Health; h != "down" {
		t.Errorf("killed node c health = %q, want down", h)
	}
	if h := byName["b"].Health; h == "down" {
		t.Error("revived node b still down")
	}
	if byName["a"].ArraysLost != 0 {
		t.Errorf("node a still missing %d arrays after recovery", byName["a"].ArraysLost)
	}
}

// TestShardedRoundRobinSpreadsEvenly: the basic routing behaviour
// survives the move to mailbox dispatch.
func TestShardedRoundRobinSpreadsEvenly(t *testing.T) {
	d := NewShardedDispatcher(NewRoundRobin(), Admission{}, ShardConfig{Workers: 4},
		fullNode("a"), fullNode("b"))
	for i := 0; i < 6; i++ {
		d.Submit(mkBatch(i, event.Time(i)*event.Second, 4))
	}
	s := d.Run()
	if s.Completed != 6 || s.Shed != 0 {
		t.Fatalf("summary = %v", s)
	}
	for _, ns := range s.Nodes {
		if ns.Batches != 3 {
			t.Errorf("node %s served %d batches, want 3", ns.Name, ns.Batches)
		}
	}
}

// TestShardedPredictedCostPrefersFastNode: hub-side views carry enough
// state (mirror systems, booked estimates) for the cost-model policy to
// route around a two-orders-of-magnitude slower node.
func TestShardedPredictedCostPrefersFastNode(t *testing.T) {
	d := NewShardedDispatcher(NewPredictedCost(), Admission{}, ShardConfig{Workers: 4},
		NodeConfig{Name: "fast", Targets: []isa.Target{isa.SRAM}},
		NodeConfig{Name: "slow", Targets: []isa.Target{isa.ReRAM}},
	)
	for i := 0; i < 6; i++ {
		d.Submit(mkBatch(i, event.Time(i)*event.Millisecond, 4))
	}
	s := d.Run()
	if s.Completed != 6 {
		t.Fatalf("completed %d of 6", s.Completed)
	}
	for _, ns := range s.Nodes {
		if ns.Name == "slow" && ns.Batches != 0 {
			t.Errorf("predicted-cost routed %d batches to the slow node", ns.Batches)
		}
	}
}

// TestShardedAdmissionSheds: a burst beyond the fleet's queue capacity
// sheds the excess, exactly once each.
func TestShardedAdmissionSheds(t *testing.T) {
	d := NewShardedDispatcher(NewLeastOutstanding(), Admission{QueueCap: 2}, ShardConfig{Workers: 2},
		fullNode("a"))
	for i := 0; i < 5; i++ {
		d.Submit(mkBatch(i, 0, 4))
	}
	s := d.Run()
	conserved(t, s)
	if s.Completed != 2 || s.Shed != 3 {
		t.Errorf("completed=%d shed=%d, want 2/3", s.Completed, s.Shed)
	}
}

// TestShardedHopBoundsLiveness sanity-checks the lookahead constants:
// the network hop must leave room for several ping round-trips per
// heartbeat period, or liveness detection loses its meaning.
func TestShardedHopBoundsLiveness(t *testing.T) {
	if 2*DefaultHop >= DefaultHeartbeat {
		t.Fatalf("ping round-trip %v must fit inside a heartbeat period %v",
			2*DefaultHop, DefaultHeartbeat)
	}
}
