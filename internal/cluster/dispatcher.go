package cluster

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"mlimp/internal/event"
	"mlimp/internal/isa"
	"mlimp/internal/runtime"
	"mlimp/internal/sched"
	"mlimp/internal/stats"
)

// Admission bounds how much work the fleet accepts — the backpressure
// layer between an open arrival stream and finite nodes.
type Admission struct {
	// QueueCap is the maximum admitted-but-unfinished batches per node
	// (queued plus executing). 0 means DefaultQueueCap.
	QueueCap int
	// MaxRetries is how many times an arrival that finds every queue
	// full is re-dispatched after a backoff instead of being shed
	// immediately. 0 disables retries.
	MaxRetries int
	// Backoff is the delay before the first retry; it doubles each
	// attempt (simulated time). 0 means DefaultBackoff.
	Backoff event.Time
}

// DefaultQueueCap matches the per-device outstanding-job bound the
// paper uses ("up to 8", Section V-A), applied at batch granularity.
const DefaultQueueCap = 8

// DefaultBackoff is the initial retry delay, sized against the
// ~10ms-scale batch service times of the Table II app suite so a
// handful of doubling retries spans one batch drain.
const DefaultBackoff = 500 * event.Microsecond

func (a Admission) queueCap() int {
	if a.QueueCap > 0 {
		return a.QueueCap
	}
	return DefaultQueueCap
}

func (a Admission) backoff() event.Time {
	if a.Backoff > 0 {
		return a.Backoff
	}
	return DefaultBackoff
}

// maxBackoffShift caps the exponential-backoff doubling (~0.5s at the
// default base). Shifting event.Time by the raw attempt count would
// overflow into a negative delay around attempt 40 and panic the
// engine; beyond the cap the delay simply stays at its maximum.
const maxBackoffShift = 10

// retryDelay is the clamped exponential backoff for the given attempt.
func retryDelay(base event.Time, attempt int) event.Time {
	if attempt > maxBackoffShift {
		attempt = maxBackoffShift
	}
	return base << attempt
}

// Outcome is the terminal state of one batch.
type Outcome int

const (
	// OutcomeCompleted batches finished on a node.
	OutcomeCompleted Outcome = iota
	// OutcomeShed batches were refused at admission (fleet saturated).
	OutcomeShed
	// OutcomeDeadLettered batches exhausted their failure budget.
	OutcomeDeadLettered
)

// String renders the outcome.
func (o Outcome) String() string {
	switch o {
	case OutcomeCompleted:
		return "completed"
	case OutcomeShed:
		return "shed"
	}
	return "dead-lettered"
}

// DoneInfo describes one batch reaching its terminal state, delivered
// to the dispatcher's OnDone hook on the hub at the instant the
// dispatcher settles the batch. For completed batches Result carries
// the node-side execution record (including per-job assignments when
// the fabric records them) and Node names the node that ran it.
type DoneInfo struct {
	Batch   *runtime.Batch
	Outcome Outcome
	At      event.Time // hub time of the terminal decision
	Node    string     // completing node; "" unless completed
	Result  runtime.BatchResult
}

// tracker follows one submitted batch to exactly one terminal state:
// completed, shed, or dead-lettered. The generation counter invalidates
// deadline timers armed for superseded bookings.
type tracker struct {
	b            *runtime.Batch
	node         *Node // current booking (a view, for the sharded dispatcher)
	idx          int   // current booking's node index (sharded dispatcher)
	attempts     int   // times accepted by a node (execution starts)
	redispatches int   // failure-driven re-dispatches consumed
	fwds         int   // hub-tree overflow forwards consumed (tree.go)
	gen          int   // bumped per booking and per re-dispatch
	done         bool
}

// Dispatcher fronts a fleet of nodes on one shared engine: arrivals are
// admitted (or shed), routed by the policy, and drained deterministically.
type Dispatcher struct {
	eng    *event.Engine
	nodes  []*Node
	policy Policy
	adm    Admission
	faults *FaultConfig // nil: failure-aware mode off (see fault.go)

	trk         map[int]*tracker
	pending     int // submitted batches not yet in a terminal state
	lastArrival event.Time

	submitted    int
	completed    int
	shed         int
	retries      int
	redispatches int
	deadLettered int
	execErrors   int
	timeouts     int
	tenants      map[string]*tenantCounts
}

// tenantCounts tracks one tenant's batch terminal states plus the
// failure-driven re-dispatches its batches consumed on the way there.
type tenantCounts struct {
	submitted, completed, shed, deadLettered int
	redispatches                             int
}

// bumpTenant returns (creating on first use) a tenant's counter row;
// untenanted batches ("" tag) are not tracked, so single-tenant runs
// carry no tenant machinery at all.
func bumpTenant(m *map[string]*tenantCounts, tenant string) *tenantCounts {
	if tenant == "" {
		return nil
	}
	if *m == nil {
		*m = map[string]*tenantCounts{}
	}
	c := (*m)[tenant]
	if c == nil {
		c = &tenantCounts{}
		(*m)[tenant] = c
	}
	return c
}

// NewDispatcher builds a fleet from node configs. It owns the shared
// engine; Run drains it.
func NewDispatcher(policy Policy, adm Admission, cfgs ...NodeConfig) *Dispatcher {
	if policy == nil {
		panic("cluster: nil policy")
	}
	if len(cfgs) == 0 {
		panic("cluster: fleet needs at least one node")
	}
	eng := &event.Engine{}
	d := &Dispatcher{eng: eng, policy: policy, adm: adm, trk: map[int]*tracker{}}
	for i, cfg := range cfgs {
		if cfg.Name == "" {
			cfg.Name = fmt.Sprintf("node%d", i)
		}
		n := NewNode(eng, cfg)
		n.onResult = d.onResult
		d.nodes = append(d.nodes, n)
	}
	return d
}

// Engine returns the shared engine (for callers that co-schedule their
// own events, e.g. load generators).
func (d *Dispatcher) Engine() *event.Engine { return d.eng }

// Nodes returns the fleet in configuration order.
func (d *Dispatcher) Nodes() []*Node { return d.nodes }

// Submit registers a batch arrival at b.Arrival. Must be called before
// Run; arrivals may be submitted in any order. A nil or empty batch, or
// a batch ID already submitted, is rejected — IDs key the exactly-once
// accounting.
func (d *Dispatcher) Submit(b *runtime.Batch) error {
	if b == nil {
		return runtime.ErrNilBatch
	}
	if len(b.Jobs) == 0 {
		return fmt.Errorf("%w (batch %d)", runtime.ErrEmptyBatch, b.ID)
	}
	if _, dup := d.trk[b.ID]; dup {
		return fmt.Errorf("cluster: duplicate batch ID %d", b.ID)
	}
	tr := &tracker{b: b}
	d.trk[b.ID] = tr
	d.pending++
	d.submitted++
	if c := bumpTenant(&d.tenants, b.Tenant); c != nil {
		c.submitted++
	}
	if b.Arrival > d.lastArrival {
		d.lastArrival = b.Arrival
	}
	d.eng.At(b.Arrival, func() { d.dispatch(b, 0, nil) })
	return nil
}

// finish moves a batch to a terminal state exactly once; the caller
// picks which counter to credit only when finish returns true.
func (d *Dispatcher) finish(tr *tracker) bool {
	if tr.done {
		return false
	}
	tr.done = true
	d.pending--
	return true
}

// eligible reports whether a node may be offered this batch right now.
func (d *Dispatcher) eligible(n *Node, b *runtime.Batch) bool {
	if n.Outstanding() >= d.adm.queueCap() || !n.CanRun(b.Jobs) {
		return false
	}
	if d.faults != nil {
		// Routing sees the monitor's belief, not ground truth: a crashed
		// node stays routable until heartbeats declare it dead, so work
		// can strand there briefly — the monitor evicts it on detection.
		if n.detectedDown || !n.breaker.Allow(d.eng.Now()) {
			return false
		}
	}
	return true
}

// dispatch routes one arrival: filter to eligible nodes, let the policy
// pick, and fall back to bounded retry then shed when the whole fleet
// is at its admission bound. A re-dispatched batch avoids the node it
// just failed on unless that node is the only eligible one.
func (d *Dispatcher) dispatch(b *runtime.Batch, attempt int, avoid *Node) {
	tr := d.trk[b.ID]
	if tr == nil || tr.done {
		return
	}
	var eligible, fallback []*Node
	for _, n := range d.nodes {
		if !d.eligible(n, b) {
			continue
		}
		if n == avoid {
			fallback = append(fallback, n)
			continue
		}
		eligible = append(eligible, n)
	}
	if len(eligible) == 0 {
		eligible = fallback
	}
	if len(eligible) == 0 {
		if attempt < d.adm.MaxRetries {
			d.retries++
			d.eng.After(retryDelay(d.adm.backoff(), attempt), func() { d.dispatch(b, attempt+1, avoid) })
			return
		}
		if d.finish(tr) {
			d.shed++
			if c := bumpTenant(&d.tenants, b.Tenant); c != nil {
				c.shed++
			}
		}
		return
	}
	n := d.policy.Pick(eligible, b, d.eng.Now())
	tr.node = n
	tr.gen++
	tr.attempts++
	if d.faults != nil {
		n.breaker.OnPick()
		if dl := d.faults.Deadline; dl > 0 {
			gen := tr.gen
			d.eng.After(dl, func() { d.onDeadline(tr, gen) })
		}
	}
	n.accept(b)
}

// onResult is every node's completion callback: it settles the batch's
// tracker — success closes the breaker and completes the batch, an
// execution error counts against the node and sends the batch back
// through routing.
func (d *Dispatcher) onResult(n *Node, res runtime.BatchResult, err error) {
	tr := d.trk[res.ID]
	if tr == nil || tr.done {
		return
	}
	tr.gen++ // disarm the deadline for this booking
	if err == nil {
		if d.faults != nil {
			n.breaker.OnSuccess()
		}
		if d.finish(tr) {
			d.completed++
			if c := bumpTenant(&d.tenants, tr.b.Tenant); c != nil {
				c.completed++
			}
		}
		return
	}
	d.execErrors++
	n.failures++
	if d.faults == nil {
		// An execution error without failure-aware mode has no
		// re-dispatch budget; the batch is lost to the dead letter queue.
		if d.finish(tr) {
			d.deadLettered++
			if c := bumpTenant(&d.tenants, tr.b.Tenant); c != nil {
				c.deadLettered++
			}
		}
		return
	}
	n.breaker.OnFailure(d.eng.Now())
	d.redispatch(tr, n)
}

// PoissonArrivals draws n arrival times whose inter-arrival gaps are
// exponentially distributed with the given mean — a Poisson-style open
// arrival process. Deterministic for a seeded rng.
func PoissonArrivals(rng *rand.Rand, n int, meanGap event.Time) []event.Time {
	times := make([]event.Time, n)
	var at float64
	for i := range times {
		at += rng.ExpFloat64() * float64(meanGap)
		times[i] = event.Time(at)
	}
	return times
}

// NodeSummary is one node's slice of a fleet run.
type NodeSummary struct {
	Name        string
	Batches     int        // batches completed
	Utilization float64    // busy time / fleet makespan
	BusyTime    event.Time // sum of batch execution spans
	MeanLatMs   float64
	Health      string // end-of-run health (failure-aware mode)
	Failures    int    // exec errors + timeouts attributed to the node
	Crashes     int    // injected crash events
	ArraysLost  int    // arrays still lost at end of run
	// LostByTarget breaks ArraysLost down per layer, indexed by
	// isa.Target — the array-granular view of the node's degradation.
	LostByTarget [isa.NumTargets]int
}

// TenantSummary is one tenant's slice of a fleet run: batch terminal
// states plus the latency digest of its completed batches.
type TenantSummary struct {
	Tenant       string
	Submitted    int
	Completed    int
	Shed         int
	DeadLettered int
	// Redispatches counts failure-driven re-dispatches consumed by this
	// tenant's batches — not a terminal state, so it is excluded from
	// Accounted, but it is the per-tenant blast radius of a fault plan.
	Redispatches int
	MeanLatMs    float64
	P99LatMs     float64
}

// Accounted sums the tenant's terminal states; conservation demands it
// equal Submitted on every drained run.
func (t TenantSummary) Accounted() int { return t.Completed + t.Shed + t.DeadLettered }

// Summary aggregates a fleet run: admission counters, fleet-wide
// latency and queue-delay percentiles, and per-node utilization.
type Summary struct {
	Policy       string
	Submitted    int
	Completed    int
	Shed         int
	Retries      int
	Redispatches int
	DeadLettered int
	ExecErrors   int
	Timeouts     int
	// Fabric-failure counters (hub tree under a fault plan; zero — and
	// unrendered — everywhere else). HubCrashes counts hub freeze
	// windows applied, Takeovers counts ring-successor adoptions of a
	// suspected region's nodes, Rehomed counts messages (completion
	// relays, mid-run injections) re-homed away from a frozen region 0.
	HubCrashes int
	Takeovers  int
	Rehomed    int
	Makespan   event.Time
	MeanLatMs  float64
	P50LatMs   float64
	P90LatMs   float64
	P99LatMs   float64
	P50QueMs   float64
	P99QueMs   float64
	Nodes      []NodeSummary
	// Tenants holds one row per tenant (sorted by name) when the run
	// carried tenant-tagged batches; empty otherwise.
	Tenants []TenantSummary
}

// Accounted sums the terminal states; conservation demands it equal
// Submitted on every drained run (each batch completed, shed, or
// dead-lettered, never more than one of them).
func (s Summary) Accounted() int { return s.Completed + s.Shed + s.DeadLettered }

// String renders the fleet summary, one headline plus one line per node.
func (s Summary) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "cluster(policy=%s nodes=%d submitted=%d completed=%d shed=%d retries=%d makespan=%.3fms\n",
		s.Policy, len(s.Nodes), s.Submitted, s.Completed, s.Shed, s.Retries, s.Makespan.Millis())
	fmt.Fprintf(&sb, "  latency mean=%.3f p50=%.3f p90=%.3f p99=%.3fms queue p50=%.3f p99=%.3fms\n",
		s.MeanLatMs, s.P50LatMs, s.P90LatMs, s.P99LatMs, s.P50QueMs, s.P99QueMs)
	if s.Redispatches+s.DeadLettered+s.ExecErrors+s.Timeouts > 0 {
		fmt.Fprintf(&sb, "  faults: redispatch=%d dead-letter=%d exec-err=%d timeouts=%d\n",
			s.Redispatches, s.DeadLettered, s.ExecErrors, s.Timeouts)
	}
	if s.HubCrashes+s.Takeovers+s.Rehomed > 0 {
		fmt.Fprintf(&sb, "  fabric: hub-crash=%d takeover=%d rehomed=%d\n",
			s.HubCrashes, s.Takeovers, s.Rehomed)
	}
	for _, n := range s.Nodes {
		fmt.Fprintf(&sb, "  %-12s batches=%-4d util=%.2f mean-lat=%.3fms", n.Name, n.Batches, n.Utilization, n.MeanLatMs)
		if n.Health != "" {
			fmt.Fprintf(&sb, " health=%s failures=%d crashes=%d lost=%d", n.Health, n.Failures, n.Crashes, n.ArraysLost)
		}
		if n.ArraysLost > 0 {
			sb.WriteString(" lost-by[")
			first := true
			for _, t := range isa.Targets {
				if c := n.LostByTarget[int(t)]; c > 0 {
					if !first {
						sb.WriteString(" ")
					}
					fmt.Fprintf(&sb, "%s=%d", t, c)
					first = false
				}
			}
			sb.WriteString("]")
		}
		sb.WriteString("\n")
	}
	for _, t := range s.Tenants {
		fmt.Fprintf(&sb, "  tenant %-6s submitted=%-4d completed=%-4d shed=%d dead=%d mean-lat=%.3fms p99=%.3fms",
			t.Tenant, t.Submitted, t.Completed, t.Shed, t.DeadLettered, t.MeanLatMs, t.P99LatMs)
		if t.Redispatches > 0 {
			fmt.Fprintf(&sb, " redisp=%d", t.Redispatches)
		}
		sb.WriteString("\n")
	}
	sb.WriteString(")")
	return sb.String()
}

// nodeRollup is one node's contribution to the fleet summary, assembled
// by whichever dispatcher variant (single-engine or sharded) ran the
// fleet. The sharded dispatcher splits the sources: execution facts come
// from the node shard, failure attribution from the hub's view.
type nodeRollup struct {
	name                          string
	rt                            runtime.Summary
	busy                          event.Time
	failures, crashes, arraysLost int
	lostByTarget                  [isa.NumTargets]int
	health                        string // "" outside failure-aware mode
}

// lostRollup snapshots a system's per-target lost-array counts for the
// fleet summary.
func lostRollup(sys *sched.System) (lost [isa.NumTargets]int) {
	for t := range sys.Layers {
		lost[int(t)] = sys.Lost(t)
	}
	return lost
}

// summarize folds per-node rollups into s — makespan, per-node lines,
// utilization, fleet-wide latency/queue percentiles, and per-tenant
// rows when the run carried tenant-tagged batches. s arrives with the
// policy name and admission counters already filled in.
func summarize(s Summary, rollups []nodeRollup, tenants map[string]*tenantCounts) Summary {
	var lats, queues []float64
	tenantLats := map[string][]float64{}
	for _, r := range rollups {
		if r.rt.Makespan > s.Makespan {
			s.Makespan = r.rt.Makespan
		}
		s.Nodes = append(s.Nodes, NodeSummary{
			Name: r.name, Batches: r.rt.Batches, BusyTime: r.busy, MeanLatMs: r.rt.MeanLatMs,
			Failures: r.failures, Crashes: r.crashes, ArraysLost: r.arraysLost,
			LostByTarget: r.lostByTarget,
			Health:       r.health,
		})
		for _, res := range r.rt.Results {
			lats = append(lats, res.Latency().Millis())
			queues = append(queues, res.QueueDelay().Millis())
			if res.Tenant != "" {
				tenantLats[res.Tenant] = append(tenantLats[res.Tenant], res.Latency().Millis())
			}
		}
	}
	for i := range s.Nodes {
		if s.Makespan > 0 {
			s.Nodes[i].Utilization = s.Nodes[i].BusyTime.Seconds() / s.Makespan.Seconds()
		}
	}
	lat, que := stats.SummarizeLatency(lats), stats.SummarizeLatency(queues)
	s.MeanLatMs = lat.Mean
	s.P50LatMs = lat.P50
	s.P90LatMs = lat.P90
	s.P99LatMs = lat.P99
	s.P50QueMs = que.P50
	s.P99QueMs = que.P99
	if len(tenants) > 0 || len(tenantLats) > 0 {
		names := map[string]bool{}
		for k := range tenants {
			names[k] = true
		}
		for k := range tenantLats {
			names[k] = true
		}
		order := make([]string, 0, len(names))
		for k := range names {
			order = append(order, k)
		}
		sort.Strings(order)
		for _, name := range order {
			c := tenants[name]
			if c == nil {
				c = &tenantCounts{}
			}
			tl := stats.SummarizeLatency(tenantLats[name])
			s.Tenants = append(s.Tenants, TenantSummary{
				Tenant: name, Submitted: c.submitted, Completed: c.completed,
				Shed: c.shed, DeadLettered: c.deadLettered,
				Redispatches: c.redispatches,
				MeanLatMs:    tl.Mean, P99LatMs: tl.P99,
			})
		}
	}
	return s
}

// Run drains the shared engine and aggregates the fleet summary.
func (d *Dispatcher) Run() Summary {
	d.eng.Run()
	s := Summary{Policy: d.policy.Name(), Submitted: d.submitted,
		Completed: d.completed, Shed: d.shed, Retries: d.retries,
		Redispatches: d.redispatches, DeadLettered: d.deadLettered,
		ExecErrors: d.execErrors, Timeouts: d.timeouts,
	}
	rollups := make([]nodeRollup, 0, len(d.nodes))
	for _, n := range d.nodes {
		r := nodeRollup{
			name: n.Name, rt: n.rt.Summarize(), busy: n.busy,
			failures: n.failures, crashes: n.crashes, arraysLost: n.arraysLost,
			lostByTarget: lostRollup(n.Sys),
		}
		if d.faults != nil {
			r.health = n.Health().String()
		}
		rollups = append(rollups, r)
	}
	return summarize(s, rollups, d.tenants)
}
