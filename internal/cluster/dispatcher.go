package cluster

import (
	"fmt"
	"math/rand"
	"strings"

	"mlimp/internal/event"
	"mlimp/internal/runtime"
	"mlimp/internal/stats"
)

// Admission bounds how much work the fleet accepts — the backpressure
// layer between an open arrival stream and finite nodes.
type Admission struct {
	// QueueCap is the maximum admitted-but-unfinished batches per node
	// (queued plus executing). 0 means DefaultQueueCap.
	QueueCap int
	// MaxRetries is how many times an arrival that finds every queue
	// full is re-dispatched after a backoff instead of being shed
	// immediately. 0 disables retries.
	MaxRetries int
	// Backoff is the delay before the first retry; it doubles each
	// attempt (simulated time). 0 means DefaultBackoff.
	Backoff event.Time
}

// DefaultQueueCap matches the per-device outstanding-job bound the
// paper uses ("up to 8", Section V-A), applied at batch granularity.
const DefaultQueueCap = 8

// DefaultBackoff is the initial retry delay, sized against the
// ~10ms-scale batch service times of the Table II app suite so a
// handful of doubling retries spans one batch drain.
const DefaultBackoff = 500 * event.Microsecond

func (a Admission) queueCap() int {
	if a.QueueCap > 0 {
		return a.QueueCap
	}
	return DefaultQueueCap
}

func (a Admission) backoff() event.Time {
	if a.Backoff > 0 {
		return a.Backoff
	}
	return DefaultBackoff
}

// Dispatcher fronts a fleet of nodes on one shared engine: arrivals are
// admitted (or shed), routed by the policy, and drained deterministically.
type Dispatcher struct {
	eng    *event.Engine
	nodes  []*Node
	policy Policy
	adm    Admission

	submitted int
	shed      int
	retries   int
}

// NewDispatcher builds a fleet from node configs. It owns the shared
// engine; Run drains it.
func NewDispatcher(policy Policy, adm Admission, cfgs ...NodeConfig) *Dispatcher {
	if policy == nil {
		panic("cluster: nil policy")
	}
	if len(cfgs) == 0 {
		panic("cluster: fleet needs at least one node")
	}
	eng := &event.Engine{}
	d := &Dispatcher{eng: eng, policy: policy, adm: adm}
	for i, cfg := range cfgs {
		if cfg.Name == "" {
			cfg.Name = fmt.Sprintf("node%d", i)
		}
		d.nodes = append(d.nodes, NewNode(eng, cfg))
	}
	return d
}

// Engine returns the shared engine (for callers that co-schedule their
// own events, e.g. load generators).
func (d *Dispatcher) Engine() *event.Engine { return d.eng }

// Nodes returns the fleet in configuration order.
func (d *Dispatcher) Nodes() []*Node { return d.nodes }

// Submit registers a batch arrival at b.Arrival. Must be called before
// Run; arrivals may be submitted in any order.
func (d *Dispatcher) Submit(b *runtime.Batch) {
	if len(b.Jobs) == 0 {
		panic("cluster: empty batch")
	}
	d.submitted++
	d.eng.At(b.Arrival, func() { d.dispatch(b, 0) })
}

// dispatch routes one arrival: filter to eligible nodes, let the policy
// pick, and fall back to bounded retry then shed when the whole fleet
// is at its admission bound.
func (d *Dispatcher) dispatch(b *runtime.Batch, attempt int) {
	qcap := d.adm.queueCap()
	var eligible []*Node
	for _, n := range d.nodes {
		if n.Outstanding() < qcap && n.CanRun(b.Jobs) {
			eligible = append(eligible, n)
		}
	}
	if len(eligible) == 0 {
		if attempt < d.adm.MaxRetries {
			d.retries++
			d.eng.After(d.adm.backoff()<<attempt, func() { d.dispatch(b, attempt+1) })
			return
		}
		d.shed++
		return
	}
	d.policy.Pick(eligible, b, d.eng.Now()).accept(b)
}

// PoissonArrivals draws n arrival times whose inter-arrival gaps are
// exponentially distributed with the given mean — a Poisson-style open
// arrival process. Deterministic for a seeded rng.
func PoissonArrivals(rng *rand.Rand, n int, meanGap event.Time) []event.Time {
	times := make([]event.Time, n)
	var at float64
	for i := range times {
		at += rng.ExpFloat64() * float64(meanGap)
		times[i] = event.Time(at)
	}
	return times
}

// NodeSummary is one node's slice of a fleet run.
type NodeSummary struct {
	Name        string
	Batches     int        // batches completed
	Utilization float64    // busy time / fleet makespan
	BusyTime    event.Time // sum of batch execution spans
	MeanLatMs   float64
}

// Summary aggregates a fleet run: admission counters, fleet-wide
// latency and queue-delay percentiles, and per-node utilization.
type Summary struct {
	Policy    string
	Submitted int
	Completed int
	Shed      int
	Retries   int
	Makespan  event.Time
	MeanLatMs float64
	P50LatMs  float64
	P90LatMs  float64
	P99LatMs  float64
	P50QueMs  float64
	P99QueMs  float64
	Nodes     []NodeSummary
}

// String renders the fleet summary, one headline plus one line per node.
func (s Summary) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "cluster(policy=%s nodes=%d submitted=%d completed=%d shed=%d retries=%d makespan=%.3fms\n",
		s.Policy, len(s.Nodes), s.Submitted, s.Completed, s.Shed, s.Retries, s.Makespan.Millis())
	fmt.Fprintf(&sb, "  latency mean=%.3f p50=%.3f p90=%.3f p99=%.3fms queue p50=%.3f p99=%.3fms\n",
		s.MeanLatMs, s.P50LatMs, s.P90LatMs, s.P99LatMs, s.P50QueMs, s.P99QueMs)
	for _, n := range s.Nodes {
		fmt.Fprintf(&sb, "  %-12s batches=%-4d util=%.2f mean-lat=%.3fms\n",
			n.Name, n.Batches, n.Utilization, n.MeanLatMs)
	}
	sb.WriteString(")")
	return sb.String()
}

// Run drains the shared engine and aggregates the fleet summary.
func (d *Dispatcher) Run() Summary {
	d.eng.Run()
	s := Summary{Policy: d.policy.Name(), Submitted: d.submitted, Shed: d.shed, Retries: d.retries}
	var lats, queues []float64
	for _, n := range d.nodes {
		ns := n.rt.Summarize()
		s.Completed += ns.Batches
		if ns.Makespan > s.Makespan {
			s.Makespan = ns.Makespan
		}
		s.Nodes = append(s.Nodes, NodeSummary{
			Name: n.Name, Batches: ns.Batches, BusyTime: n.busy, MeanLatMs: ns.MeanLatMs,
		})
		for _, r := range ns.Results {
			lats = append(lats, r.Latency().Millis())
			queues = append(queues, r.QueueDelay().Millis())
		}
	}
	for i := range s.Nodes {
		if s.Makespan > 0 {
			s.Nodes[i].Utilization = s.Nodes[i].BusyTime.Seconds() / s.Makespan.Seconds()
		}
	}
	lat, que := stats.SummarizeLatency(lats), stats.SummarizeLatency(queues)
	s.MeanLatMs = lat.Mean
	s.P50LatMs = lat.P50
	s.P90LatMs = lat.P90
	s.P99LatMs = lat.P99
	s.P50QueMs = que.P50
	s.P99QueMs = que.P99
	return s
}
