package cluster

import (
	"mlimp/internal/event"
	"mlimp/internal/runtime"
)

// Policy picks the node that serves a batch. Pick is only offered
// eligible nodes (CanRun holds and the admission queue has room) in the
// fleet's fixed configuration order, and the slice is never empty —
// admission handles the no-room case before the policy runs.
type Policy interface {
	Name() string
	Pick(eligible []*Node, b *runtime.Batch, now event.Time) *Node
}

// RoundRobin rotates through the eligible nodes — the classic baseline
// that ignores both queue state and node speed.
type RoundRobin struct{ i int }

// NewRoundRobin returns a round-robin policy.
func NewRoundRobin() *RoundRobin { return &RoundRobin{} }

// Name implements Policy.
func (p *RoundRobin) Name() string { return "roundrobin" }

// Clone returns an independent round-robin instance. The hub tree gives
// each regional sub-hub its own rotation cursor, so one region's picks
// never depend on how many batches another region routed.
func (p *RoundRobin) Clone() Policy { return &RoundRobin{} }

// Pick implements Policy.
func (p *RoundRobin) Pick(eligible []*Node, _ *runtime.Batch, _ event.Time) *Node {
	n := eligible[p.i%len(eligible)]
	p.i++
	return n
}

// LeastOutstanding picks the node with the fewest admitted-but-
// unfinished batches, ties broken by configuration order. Queue-aware
// but speed-blind: a short queue on a slow node still wins.
type LeastOutstanding struct{}

// NewLeastOutstanding returns a least-outstanding policy.
func NewLeastOutstanding() LeastOutstanding { return LeastOutstanding{} }

// Name implements Policy.
func (LeastOutstanding) Name() string { return "least-outstanding" }

// Pick implements Policy.
func (LeastOutstanding) Pick(eligible []*Node, _ *runtime.Batch, _ event.Time) *Node {
	best := eligible[0]
	for _, n := range eligible[1:] {
		if n.Outstanding() < best.Outstanding() {
			best = n
		}
	}
	return best
}

// PredictedCost picks the node minimising predicted drain time plus the
// batch's predicted service time there, both from the scheduler's
// analytical cost model (sched.System) — so a fast node with a deeper
// queue can beat an idle slow one. Ties break by configuration order.
type PredictedCost struct{}

// NewPredictedCost returns a predicted-cost policy.
func NewPredictedCost() PredictedCost { return PredictedCost{} }

// Name implements Policy.
func (PredictedCost) Name() string { return "predicted-cost" }

// UsesEstimates marks the policy as cost-model driven: the dispatcher
// must book per-batch cost estimates so PredictedDrain is meaningful.
// Policies without this marker let the sharded dispatcher skip the
// booking-time Schedule pass entirely — for estimate-blind policies that
// pass is pure overhead, and on the hub shard it would serialize the
// very planning work the node shards are meant to run in parallel.
func (PredictedCost) UsesEstimates() bool { return true }

// policyUsesEstimates reports whether the policy carries the
// UsesEstimates marker.
func policyUsesEstimates(p Policy) bool {
	u, ok := p.(interface{ UsesEstimates() bool })
	return ok && u.UsesEstimates()
}

// Pick implements Policy.
func (PredictedCost) Pick(eligible []*Node, b *runtime.Batch, now event.Time) *Node {
	best := eligible[0]
	bestCost := best.PredictedDrain(now) + best.EstimateCost(b.Jobs)
	for _, n := range eligible[1:] {
		if c := n.PredictedDrain(now) + n.EstimateCost(b.Jobs); c < bestCost {
			best, bestCost = n, c
		}
	}
	return best
}

// PolicyNames lists the built-in policies in canonical order.
func PolicyNames() []string {
	return []string{"roundrobin", "least-outstanding", "predicted-cost"}
}

// PolicyByName returns a fresh policy instance by canonical name.
func PolicyByName(name string) (Policy, bool) {
	switch name {
	case "roundrobin":
		return NewRoundRobin(), true
	case "least-outstanding":
		return NewLeastOutstanding(), true
	case "predicted-cost":
		return NewPredictedCost(), true
	}
	return nil, false
}
