package cluster

import (
	"strings"
	"testing"

	"mlimp/internal/event"
	"mlimp/internal/fault"
	"mlimp/internal/isa"
	"mlimp/internal/runtime"
)

// pickNamed routes every batch to the named node when eligible — the
// deterministic adversary the deadline and breaker tests need.
type pickNamed struct{ name string }

func (p pickNamed) Name() string { return "pick-" + p.name }

func (p pickNamed) Pick(eligible []*Node, b *runtime.Batch, now event.Time) *Node {
	for _, n := range eligible {
		if n.Name == p.name {
			return n
		}
	}
	return eligible[0]
}

func conserved(t *testing.T, s Summary) {
	t.Helper()
	if s.Accounted() != s.Submitted {
		t.Errorf("conservation broken: submitted=%d completed=%d shed=%d dead-lettered=%d",
			s.Submitted, s.Completed, s.Shed, s.DeadLettered)
	}
}

// chaosRun drives a 3-node fleet through a crash-and-revive, a
// permanent kill, a transient array fault, exec errors, and deadlines.
func chaosRun(policy Policy) Summary {
	d := NewDispatcher(policy, Admission{MaxRetries: 6},
		fullNode("a"), fullNode("b"), fullNode("c"))
	plan := &fault.Plan{
		Seed: 99,
		ArrayFaults: []fault.ArrayFault{
			// Half of a's SRAM drops out at 500µs and heals at 3ms.
			{Node: "a", Target: isa.SRAM, Fraction: 0.5, At: 500 * event.Microsecond, Recover: 3 * event.Millisecond},
		},
		Crashes: []fault.Crash{
			{Node: "b", At: event.Millisecond, Recover: 4 * event.Millisecond}, // kill + revive mid-drain
			{Node: "c", At: 2 * event.Millisecond},                             // permanent kill
		},
		ExecErrorProb: 0.15,
	}
	if err := d.EnableFaults(FaultConfig{Plan: plan, Deadline: 50 * event.Millisecond}); err != nil {
		panic(err)
	}
	for i := 0; i < 30; i++ {
		if err := d.Submit(mkBatch(i, event.Time(i)*200*event.Microsecond, 4)); err != nil {
			panic(err)
		}
	}
	return d.Run()
}

func TestChaosKillReviveMidDrain(t *testing.T) {
	s := chaosRun(NewRoundRobin())
	conserved(t, s)
	if s.Completed == 0 {
		t.Fatal("chaos run completed nothing")
	}
	if s.Completed+s.Shed+s.DeadLettered != 30 {
		t.Errorf("terminal states sum to %d, want 30", s.Accounted())
	}
	// The permanently killed node must end down; the revived one must
	// not.
	byName := map[string]NodeSummary{}
	for _, ns := range s.Nodes {
		byName[ns.Name] = ns
	}
	if h := byName["c"].Health; h != "down" {
		t.Errorf("killed node c health = %q, want down", h)
	}
	if h := byName["b"].Health; h == "down" {
		t.Error("revived node b still down")
	}
	if byName["b"].Crashes != 1 || byName["c"].Crashes != 1 {
		t.Errorf("crash counts = %d/%d, want 1/1", byName["b"].Crashes, byName["c"].Crashes)
	}
	// The transient array fault healed before the run ended.
	if byName["a"].ArraysLost != 0 {
		t.Errorf("node a still missing %d arrays after recovery", byName["a"].ArraysLost)
	}
	if s.ExecErrors == 0 {
		t.Error("15% exec-error rate over 30 batches produced none (implausible)")
	}
	if !strings.Contains(s.String(), "health=") || !strings.Contains(s.String(), "dead-letter=") {
		t.Errorf("faulty summary render missing failure fields:\n%s", s)
	}
}

// TestChaosDeterministic: the whole failure cascade — crashes,
// detection, eviction, re-dispatch, breaker trips — replays bit-for-bit.
func TestChaosDeterministic(t *testing.T) {
	for _, p := range PolicyNames() {
		mk := func() Policy {
			pol, _ := PolicyByName(p)
			return pol
		}
		a, b := chaosRun(mk()).String(), chaosRun(mk()).String()
		if a != b {
			t.Errorf("policy %s chaos replay diverged:\n%s\nvs\n%s", p, a, b)
		}
	}
}

// TestChaosConservationGeneratedPlans: conservation holds across
// generated fault plans, policies, and seeds.
func TestChaosConservationGeneratedPlans(t *testing.T) {
	for _, pname := range PolicyNames() {
		for seed := int64(1); seed <= 3; seed++ {
			policy, _ := PolicyByName(pname)
			d := NewDispatcher(policy, Admission{MaxRetries: 4},
				fullNode("a"), fullNode("b"), fullNode("c"))
			plan, err := fault.Generate(seed, fault.GenConfig{
				Nodes:              []string{"a", "b", "c"},
				Horizon:            8 * event.Millisecond,
				ArrayFaultsPerNode: 1,
				CrashesPerNode:     0.7,
				MeanOutage:         2 * event.Millisecond,
				ExecErrorProb:      0.1,
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := d.EnableFaults(FaultConfig{Plan: plan, Deadline: 50 * event.Millisecond}); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 20; i++ {
				if err := d.Submit(mkBatch(i, event.Time(i)*300*event.Microsecond, 3)); err != nil {
					t.Fatal(err)
				}
			}
			conserved(t, d.Run())
		}
	}
}

// TestDeadlineRedispatch: a batch stuck on a slow node past its
// deadline is aborted and re-dispatched to a faster node, completing
// there.
func TestDeadlineRedispatch(t *testing.T) {
	d := NewDispatcher(pickNamed{"slow"}, Admission{},
		NodeConfig{Name: "fast", Targets: []isa.Target{isa.SRAM}},
		NodeConfig{Name: "slow", Targets: []isa.Target{isa.ReRAM}, Scale: 0.001},
	)
	b := mkBatch(0, 0, 4)
	var fastN, slowN *Node
	for _, n := range d.Nodes() {
		if n.Name == "fast" {
			fastN = n
		} else {
			slowN = n
		}
	}
	estFast, estSlow := fastN.EstimateCost(b.Jobs), slowN.EstimateCost(b.Jobs)
	deadline := estSlow / 2
	if estFast >= deadline {
		t.Fatalf("fixture broken: fast estimate %v not well under deadline %v (slow %v)",
			estFast, deadline, estSlow)
	}
	if err := d.EnableFaults(FaultConfig{Deadline: deadline}); err != nil {
		t.Fatal(err)
	}
	if err := d.Submit(b); err != nil {
		t.Fatal(err)
	}
	s := d.Run()
	conserved(t, s)
	if s.Completed != 1 || s.Timeouts != 1 || s.Redispatches != 1 {
		t.Fatalf("completed=%d timeouts=%d redispatches=%d, want 1/1/1\n%s",
			s.Completed, s.Timeouts, s.Redispatches, s)
	}
	for _, ns := range s.Nodes {
		switch ns.Name {
		case "slow":
			if ns.Failures != 1 || ns.Batches != 0 {
				t.Errorf("slow: failures=%d batches=%d, want 1/0", ns.Failures, ns.Batches)
			}
		case "fast":
			if ns.Batches != 1 {
				t.Errorf("fast: batches=%d, want 1", ns.Batches)
			}
		}
	}
}

// TestCircuitBreakerEjectsAndRecovers: K consecutive failures open the
// node's breaker; after the cooldown a half-open probe succeeds and the
// node is reinstated.
func TestCircuitBreakerEjectsAndRecovers(t *testing.T) {
	d := NewDispatcher(pickNamed{"flaky"}, Admission{},
		fullNode("flaky"), fullNode("good"))
	fc := FaultConfig{
		// Batches 0-2 fail their first attempt wherever it lands (it
		// lands on flaky — the policy pins them there).
		ExecError: func(batchID, attempt int) bool { return batchID < 3 && attempt == 0 },
		BreakerK:  3,
	}
	if err := d.EnableFaults(fc); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := d.Submit(mkBatch(i, event.Time(i)*100*event.Microsecond, 2)); err != nil {
			t.Fatal(err)
		}
	}
	// Batch 3 arrives well after the breaker cooldown: flaky is
	// half-open, the policy picks it as the probe, and success closes
	// the breaker.
	if err := d.Submit(mkBatch(3, 40*event.Millisecond, 2)); err != nil {
		t.Fatal(err)
	}
	s := d.Run()
	conserved(t, s)
	if s.Completed != 4 || s.ExecErrors != 3 || s.Redispatches != 3 {
		t.Fatalf("completed=%d exec-errors=%d redispatches=%d, want 4/3/3\n%s",
			s.Completed, s.ExecErrors, s.Redispatches, s)
	}
	for _, ns := range s.Nodes {
		if ns.Name == "flaky" {
			if ns.Failures != 3 {
				t.Errorf("flaky failures = %d, want 3", ns.Failures)
			}
			if ns.Health != "healthy" {
				t.Errorf("flaky health = %q, want healthy after probe success", ns.Health)
			}
			// The probe batch completed on flaky after reinstatement.
			if ns.Batches != 1 {
				t.Errorf("flaky served %d batches, want exactly the probe", ns.Batches)
			}
		}
	}
}

// TestArrayFaultForcesKneeResearch: a capacity fault mid-run shrinks a
// layer; the node re-plans (capacity-keyed knee memo) and keeps
// serving, then recovers.
func TestArrayFaultForcesKneeResearch(t *testing.T) {
	d := NewDispatcher(NewRoundRobin(), Admission{}, fullNode("solo"))
	n := d.Nodes()[0]
	healthy := n.Sys.Layers[isa.SRAM].Capacity()
	plan := &fault.Plan{ArrayFaults: []fault.ArrayFault{{
		Node: "solo", Target: isa.SRAM, Fraction: 0.9,
		At: 200 * event.Microsecond, Recover: 5 * event.Millisecond,
	}}}
	if err := d.EnableFaults(FaultConfig{Plan: plan}); err != nil {
		t.Fatal(err)
	}
	sawDegraded := false
	d.Engine().At(event.Millisecond, func() {
		sawDegraded = n.Health() == Degraded
		if got := n.Sys.Layers[isa.SRAM].Capacity(); got >= healthy {
			t.Errorf("capacity %d not degraded at 1ms", got)
		}
	})
	for i := 0; i < 8; i++ {
		if err := d.Submit(mkBatch(i, event.Time(i)*400*event.Microsecond, 3)); err != nil {
			t.Fatal(err)
		}
	}
	s := d.Run()
	conserved(t, s)
	if s.Completed != 8 {
		t.Fatalf("completed = %d, want all 8 despite degradation", s.Completed)
	}
	if !sawDegraded {
		t.Error("node never reported Degraded during the outage")
	}
	if n.Sys.Layers[isa.SRAM].Capacity() != healthy || n.ArraysLost() != 0 {
		t.Errorf("capacity %d / lost %d after recovery, want %d / 0",
			n.Sys.Layers[isa.SRAM].Capacity(), n.ArraysLost(), healthy)
	}
}

// TestNodeHealthTransitions exercises the Health state machine off the
// engine: crash → down, revive → healthy, degrade → degraded.
func TestNodeHealthTransitions(t *testing.T) {
	n := NewNode(&event.Engine{}, fullNode("h"))
	n.breaker = newBreaker(3, event.Millisecond)
	if n.Health() != Healthy {
		t.Fatalf("fresh node health = %v", n.Health())
	}
	n.degrade(isa.DRAM, 100)
	if n.Health() != Degraded || n.ArraysLost() != 100 {
		t.Errorf("after degrade: health=%v lost=%d", n.Health(), n.ArraysLost())
	}
	n.crash()
	if n.Health() != DownHealth {
		t.Errorf("after crash: health=%v", n.Health())
	}
	n.revive(0)
	if n.Health() != Degraded {
		t.Errorf("after revive with lost arrays: health=%v", n.Health())
	}
	n.restore(isa.DRAM, 100)
	if n.Health() != Healthy {
		t.Errorf("after restore: health=%v", n.Health())
	}
	for _, h := range []Health{Healthy, Degraded, DownHealth} {
		if h.String() == "" {
			t.Error("empty health render")
		}
	}
}

// TestEnableFaultsErrors: bad plans and unknown nodes are rejected.
func TestEnableFaultsErrors(t *testing.T) {
	d := NewDispatcher(NewRoundRobin(), Admission{}, fullNode("a"))
	if err := d.EnableFaults(FaultConfig{Plan: &fault.Plan{ExecErrorProb: 2}}); err == nil {
		t.Error("invalid plan accepted")
	}
	if err := d.EnableFaults(FaultConfig{Plan: &fault.Plan{
		Crashes: []fault.Crash{{Node: "ghost", At: event.Millisecond}},
	}}); err == nil {
		t.Error("crash on unknown node accepted")
	}
	if err := d.EnableFaults(FaultConfig{}); err != nil {
		t.Fatalf("empty config rejected: %v", err)
	}
	if err := d.EnableFaults(FaultConfig{}); err == nil {
		t.Error("double EnableFaults accepted")
	}
}
