package cluster

import (
	"errors"
	"fmt"

	"mlimp/internal/event"
	"mlimp/internal/fault"
	"mlimp/internal/runtime"
)

// Fabric-fault wiring errors. Hub crashes and edge faults degrade the
// dispatch fabric itself, so they only make sense on fabrics that have
// one: EnableFaults rejects plans a given dispatcher cannot honour with
// these named errors (the CLIs surface them at exit 2).
var (
	// ErrHubCrashNeedsTree rejects HubCrash windows on the single-engine
	// dispatcher and the flat sharded fabric — there is no regional hub
	// to crash, and the flat hub is the observer the determinism
	// contract hangs off.
	ErrHubCrashNeedsTree = errors.New("cluster: hub crashes need a hub tree (Hubs > 1)")
	// ErrEdgeFaultNeedsFabric rejects EdgeFaults on the single-engine
	// dispatcher, which has no message fabric to degrade.
	ErrEdgeFaultNeedsFabric = errors.New("cluster: edge faults need the sharded fabric")
	// ErrEdgeFaultNeedsDeadline rejects lossy edge faults without a
	// dispatch deadline: a dropped dispatch or completion echo is only
	// recovered by the deadline -> re-dispatch path, so running drops
	// without one would break the conservation law by construction.
	ErrEdgeFaultNeedsDeadline = errors.New("cluster: lossy edge faults need a dispatch deadline")
	// ErrUnknownEdgeEndpoint rejects edge faults naming a shard the
	// fleet does not have (node names, or "hub<R>" for region R's hub).
	ErrUnknownEdgeEndpoint = errors.New("cluster: edge fault names unknown shard")
)

// Failure-aware serving. With a FaultConfig enabled, the dispatcher
// layers four recovery mechanisms over the basic admission/routing
// fabric:
//
//   - a fault plan (internal/fault) drives deterministic node crashes,
//     revivals, and array-capacity faults in simulated time;
//   - heartbeat liveness: each node beats while up; a monitor declares
//     a node dead after HeartbeatMiss silent periods, evicts its
//     stranded batches, and re-dispatches them elsewhere;
//   - per-dispatch deadlines: a batch that has not completed Deadline
//     after acceptance is aborted and re-dispatched;
//   - per-node circuit breakers: BreakerK consecutive failures eject a
//     node from routing until a cooldown, after which a single probe
//     batch is allowed through (half-open) before full reinstatement.
//
// Every submitted batch ends in exactly one of three terminal states —
// completed, shed (admission rejected it), or dead-lettered (its
// re-dispatch budget ran out) — and the chaos tests assert that
// conservation law on every run.

// Defaults for FaultConfig zero values, sized against the ~10ms-scale
// batch service times of the Table II app suite.
const (
	DefaultMaxRedispatch   = 3
	DefaultBreakerK        = 3
	DefaultBreakerCooldown = 5 * event.Millisecond
	DefaultHeartbeat       = 250 * event.Microsecond
	DefaultHeartbeatMiss   = 3
)

// FaultConfig switches the dispatcher into failure-aware mode.
type FaultConfig struct {
	// Plan is the deterministic fault schedule; nil means no injected
	// crashes or array faults (deadlines and ExecError still apply).
	Plan *fault.Plan
	// ExecError overrides the plan's execution-error coin; it is
	// consulted at each batch's completion instant with the 0-based
	// attempt index. Nil uses Plan.ExecError.
	ExecError func(batchID, attempt int) bool
	// Deadline is the per-dispatch completion deadline; 0 disables.
	Deadline event.Time
	// MaxRedispatch bounds failure-driven re-dispatches per batch
	// before it is dead-lettered. 0 means DefaultMaxRedispatch.
	MaxRedispatch int
	// BreakerK is the consecutive-failure threshold that opens a node's
	// breaker. 0 means DefaultBreakerK.
	BreakerK int
	// BreakerCooldown is how long an open breaker waits before allowing
	// a half-open probe. 0 means DefaultBreakerCooldown.
	BreakerCooldown event.Time
	// Heartbeat is the beat and monitor period. 0 means
	// DefaultHeartbeat.
	Heartbeat event.Time
	// HeartbeatMiss is how many silent periods declare a node dead.
	// 0 means DefaultHeartbeatMiss.
	HeartbeatMiss int
}

func (fc FaultConfig) maxRedispatch() int {
	if fc.MaxRedispatch > 0 {
		return fc.MaxRedispatch
	}
	return DefaultMaxRedispatch
}

func (fc FaultConfig) breakerK() int {
	if fc.BreakerK > 0 {
		return fc.BreakerK
	}
	return DefaultBreakerK
}

func (fc FaultConfig) breakerCooldown() event.Time {
	if fc.BreakerCooldown > 0 {
		return fc.BreakerCooldown
	}
	return DefaultBreakerCooldown
}

func (fc FaultConfig) heartbeat() event.Time {
	if fc.Heartbeat > 0 {
		return fc.Heartbeat
	}
	return DefaultHeartbeat
}

func (fc FaultConfig) heartbeatMiss() int {
	if fc.HeartbeatMiss > 0 {
		return fc.HeartbeatMiss
	}
	return DefaultHeartbeatMiss
}

// execFn resolves the execution-error coin.
func (fc FaultConfig) execFn() func(batchID, attempt int) bool {
	if fc.ExecError != nil {
		return fc.ExecError
	}
	if fc.Plan != nil {
		return fc.Plan.ExecError
	}
	return nil
}

// --- circuit breaker ---

const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

// breaker is a per-node circuit breaker in simulated time. Transitions
// are lazy: the open→half-open move happens when the state is next
// consulted after the cooldown, which is deterministic because every
// consult happens at an engine-driven instant.
type breaker struct {
	k        int
	cooldown event.Time

	state       int
	consecFails int
	openedAt    event.Time
	probing     bool // a half-open probe batch is in flight
}

func newBreaker(k int, cooldown event.Time) *breaker {
	return &breaker{k: k, cooldown: cooldown}
}

// tick applies the lazy open→half-open transition.
func (br *breaker) tick(now event.Time) {
	if br.state == breakerOpen && now-br.openedAt >= br.cooldown {
		br.state = breakerHalfOpen
		br.probing = false
	}
}

// Allow reports whether the breaker admits a new batch right now.
// Half-open admits exactly one probe at a time (OnPick books it).
func (br *breaker) Allow(now event.Time) bool {
	br.tick(now)
	switch br.state {
	case breakerClosed:
		return true
	case breakerHalfOpen:
		return !br.probing
	}
	return false
}

// OnPick books the half-open probe once the policy actually routes a
// batch here; merely being considered eligible must not consume it.
func (br *breaker) OnPick() {
	if br.state == breakerHalfOpen {
		br.probing = true
	}
}

// OnSuccess closes the breaker.
func (br *breaker) OnSuccess() {
	br.state = breakerClosed
	br.consecFails = 0
	br.probing = false
}

// OnFailure counts a failure; K in a row (or any failure while
// half-open) opens the breaker.
func (br *breaker) OnFailure(now event.Time) {
	br.consecFails++
	if br.state == breakerHalfOpen || br.consecFails >= br.k {
		br.state = breakerOpen
		br.openedAt = now
		br.probing = false
	}
}

// --- dispatcher wiring ---

// EnableFaults switches the dispatcher into failure-aware mode: it
// validates and schedules the fault plan, installs the execution-error
// hook on every node, arms the per-node breakers, and starts the
// heartbeat/monitor loops. Call once, before Run.
func (d *Dispatcher) EnableFaults(fc FaultConfig) error {
	if d.faults != nil {
		return fmt.Errorf("cluster: faults already enabled")
	}
	if err := fc.Plan.Validate(); err != nil {
		return err
	}
	if fc.Plan != nil {
		if len(fc.Plan.HubCrashes) > 0 {
			return fmt.Errorf("%w (single-engine dispatcher)", ErrHubCrashNeedsTree)
		}
		if len(fc.Plan.EdgeFaults) > 0 {
			return fmt.Errorf("%w (single-engine dispatcher)", ErrEdgeFaultNeedsFabric)
		}
	}
	byName := map[string]*Node{}
	for _, n := range d.nodes {
		byName[n.Name] = n
	}
	if fc.Plan != nil {
		for _, f := range fc.Plan.ArrayFaults {
			if _, ok := byName[f.Node]; !ok {
				return fmt.Errorf("cluster: array fault names unknown node %q", f.Node)
			}
		}
		for _, c := range fc.Plan.Crashes {
			if _, ok := byName[c.Node]; !ok {
				return fmt.Errorf("cluster: crash names unknown node %q", c.Node)
			}
		}
	}
	d.faults = &fc
	execFn := fc.execFn()
	for _, n := range d.nodes {
		n.breaker = newBreaker(fc.breakerK(), fc.breakerCooldown())
		if execFn != nil {
			node := n
			node.rt.ExecError = func(b *runtime.Batch) error {
				tr := d.trk[b.ID]
				if tr == nil {
					return nil
				}
				if execFn(b.ID, tr.attempts-1) {
					return fmt.Errorf("cluster: batch %d failed on %s (attempt %d)",
						b.ID, node.Name, tr.attempts-1)
				}
				return nil
			}
		}
	}
	d.schedulePlan(byName)
	d.startHeartbeats()
	return nil
}

// schedulePlan turns the fault plan into engine events.
func (d *Dispatcher) schedulePlan(byName map[string]*Node) {
	if d.faults.Plan == nil {
		return
	}
	for _, f := range d.faults.Plan.ArrayFaults {
		f, n := f, byName[f.Node]
		d.eng.At(f.At, func() {
			n.degrade(f.Target, f.Magnitude(n.Sys.HealthyCapacity(f.Target)))
		})
		if f.Transient() {
			d.eng.At(f.Recover, func() {
				n.restore(f.Target, f.Magnitude(n.Sys.HealthyCapacity(f.Target)))
			})
		}
	}
	for _, c := range d.faults.Plan.Crashes {
		c, n := c, byName[c.Node]
		d.eng.At(c.At, n.crash)
		if c.Transient() {
			d.eng.At(c.Recover, func() { n.revive(d.eng.Now()) })
		}
	}
}

// startHeartbeats arms the per-node beat loops and the fleet monitor.
// Both re-arm only while work remains outstanding (or is still to
// arrive), so the engine drains once the run settles.
func (d *Dispatcher) startHeartbeats() {
	period := d.faults.heartbeat()
	var beat func()
	beat = func() {
		for _, n := range d.nodes {
			if !n.down {
				n.lastBeat = d.eng.Now()
			}
		}
		if d.ticking() {
			d.eng.After(period, beat)
		}
	}
	var monitor func()
	monitor = func() {
		d.monitorOnce()
		if d.ticking() {
			d.eng.After(period, monitor)
		}
	}
	d.eng.After(period, beat)
	d.eng.After(period, monitor)
}

// ticking reports whether the liveness loops must keep running: work is
// outstanding, or arrivals are still due.
func (d *Dispatcher) ticking() bool {
	return d.pending > 0 || d.eng.Now() < d.lastArrival
}

// monitorOnce sweeps the fleet: nodes silent for HeartbeatMiss periods
// are declared dead and drained; declared-dead nodes that beat again
// rejoin the routing set.
func (d *Dispatcher) monitorOnce() {
	now := d.eng.Now()
	limit := event.Time(d.faults.heartbeatMiss()) * d.faults.heartbeat()
	for _, n := range d.nodes {
		silent := now - n.lastBeat
		if !n.detectedDown && silent > limit {
			n.detectedDown = true
			for _, b := range n.rt.Evict() {
				n.abandon(b.ID)
				tr := d.trk[b.ID]
				if tr == nil || tr.done {
					continue
				}
				d.redispatch(tr, n)
			}
		} else if n.detectedDown && silent <= limit {
			n.detectedDown = false
		}
	}
}

// onDeadline fires when an accepted batch's completion deadline lapses.
// A stale generation means the batch already completed, failed, or was
// re-dispatched — only the booking this timer was armed for counts.
func (d *Dispatcher) onDeadline(tr *tracker, gen int) {
	if tr.done || tr.gen != gen {
		return
	}
	n := tr.node
	d.timeouts++
	n.failures++
	n.breaker.OnFailure(d.eng.Now())
	n.rt.Abort(tr.b.ID)
	n.abandon(tr.b.ID)
	d.redispatch(tr, n)
}

// redispatch sends a failed batch back through routing, avoiding the
// node it just failed on; the budget is MaxRedispatch, after which the
// batch is dead-lettered.
func (d *Dispatcher) redispatch(tr *tracker, avoid *Node) {
	if tr.redispatches >= d.faults.maxRedispatch() {
		if d.finish(tr) {
			d.deadLettered++
			if c := bumpTenant(&d.tenants, tr.b.Tenant); c != nil {
				c.deadLettered++
			}
		}
		return
	}
	tr.redispatches++
	d.redispatches++
	if c := bumpTenant(&d.tenants, tr.b.Tenant); c != nil {
		c.redispatches++
	}
	tr.gen++ // invalidate any armed deadline for the old booking
	d.dispatch(tr.b, 0, avoid)
}
