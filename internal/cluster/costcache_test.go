package cluster

import (
	"math/rand"
	"testing"

	"mlimp/internal/event"
	"mlimp/internal/isa"
	"mlimp/internal/runtime"
	"mlimp/internal/sched"
	"mlimp/internal/workload"
)

// TestEstimateCacheTransparent checks the memoized estimate equals a
// fresh planning pass and that repeat queries hit.
func TestEstimateCacheTransparent(t *testing.T) {
	n := NewNode(&event.Engine{}, fullNode("a"))
	jobs := mkBatch(1, 0, 4).Jobs
	first := n.EstimateCost(jobs)
	fresh := sched.NewGlobal().Schedule(n.Sys, jobs).Makespan
	if first != fresh {
		t.Fatalf("cached estimate %v != fresh plan %v", first, fresh)
	}
	again := n.EstimateCost(jobs)
	if again != first {
		t.Fatalf("estimate changed on repeat: %v vs %v", again, first)
	}
	hits, misses := n.EstCacheStats()
	if hits != 1 || misses != 1 {
		t.Errorf("cache stats hits=%d misses=%d, want 1/1", hits, misses)
	}
	// A different batch must not alias the cache entry.
	other := mkBatch(2, 0, 2).Jobs
	if n.EstimateCost(other) == 0 {
		t.Error("second batch estimate missing")
	}
	if _, misses := n.EstCacheStats(); misses != 2 {
		t.Errorf("distinct batch did not miss: misses=%d", misses)
	}
}

// TestPredictedCostDeterministicWithCache runs the same predicted-cost
// fleet twice from the same seed: the cache must not perturb a single
// routing decision, so the summaries render identically.
func TestPredictedCostDeterministicWithCache(t *testing.T) {
	run := func() string {
		p, _ := PolicyByName("predicted-cost")
		d := NewDispatcher(p, Admission{MaxRetries: 3},
			fullNode("full"),
			NodeConfig{Name: "slow", Targets: isa.Targets, Scale: 0.25})
		rng := rand.New(rand.NewSource(11))
		for i, at := range PoissonArrivals(rng, 24, 2*event.Millisecond) {
			d.Submit(&runtime.Batch{ID: i, Arrival: at,
				Jobs: workload.RandomJobs(rng, 3, i*100)})
		}
		return d.Run().String()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("predicted-cost fleet not deterministic:\n%s\nvs\n%s", a, b)
	}
	// The admission flow estimates each accepted batch at least twice
	// (Pick + booking), so a run of this size must see real cache traffic.
	p, _ := PolicyByName("predicted-cost")
	d := NewDispatcher(p, Admission{},
		fullNode("full"),
		NodeConfig{Name: "slow", Targets: isa.Targets, Scale: 0.25})
	rng := rand.New(rand.NewSource(11))
	for i, at := range PoissonArrivals(rng, 24, 2*event.Millisecond) {
		d.Submit(&runtime.Batch{ID: i, Arrival: at,
			Jobs: workload.RandomJobs(rng, 3, i*100)})
	}
	d.Run()
	var hits int64
	for _, n := range d.Nodes() {
		h, _ := n.EstCacheStats()
		hits += h
	}
	if hits == 0 {
		t.Error("predicted-cost run produced zero estimate-cache hits")
	}
}
