package cluster

import (
	"errors"
	"testing"

	"mlimp/internal/event"
	"mlimp/internal/fault"
	"mlimp/internal/isa"
)

// chaosTree mirrors chaosSharded through a hub tree: the same fault
// cascade over a 4-node fleet split into two regions.
func chaosTree(policy Policy, workers int) Summary {
	d := NewShardedDispatcher(policy, Admission{MaxRetries: 6},
		ShardConfig{Workers: workers, Hubs: 2},
		fullNode("a"), fullNode("b"), fullNode("c"), fullNode("d"))
	plan := &fault.Plan{
		Seed: 99,
		ArrayFaults: []fault.ArrayFault{
			{Node: "a", Target: isa.SRAM, Fraction: 0.5, At: 500 * event.Microsecond, Recover: 3 * event.Millisecond},
		},
		Crashes: []fault.Crash{
			{Node: "b", At: event.Millisecond, Recover: 4 * event.Millisecond},
			{Node: "c", At: 2 * event.Millisecond},
		},
		ExecErrorProb: 0.15,
	}
	if err := d.EnableFaults(FaultConfig{Plan: plan, Deadline: 50 * event.Millisecond}); err != nil {
		panic(err)
	}
	for i := 0; i < 30; i++ {
		if err := d.Submit(mkBatch(i, event.Time(i)*200*event.Microsecond, 4)); err != nil {
			panic(err)
		}
	}
	return d.Run()
}

// TestTreeWorkerEquivalence: the determinism contract holds through the
// sub-hub tree — per-region admission, the chaos cascade, and overflow
// machinery must render byte-identically at every worker count and for
// every policy (regional policy clones included).
func TestTreeWorkerEquivalence(t *testing.T) {
	for _, pname := range PolicyNames() {
		var want string
		for _, workers := range []int{1, 2, 4, 8} {
			policy, _ := PolicyByName(pname)
			got := chaosTree(policy, workers).String()
			if workers == 1 {
				want = got
				continue
			}
			if got != want {
				t.Errorf("policy %s: workers=%d diverges from workers=1:\n%s\nvs\n%s",
					pname, workers, got, want)
			}
		}
	}
}

// TestTreeChaosConservation: exactly-once accounting survives regional
// ownership — every batch lands in one terminal state even when its
// region crashes nodes, and per-node facts merge in configuration order.
func TestTreeChaosConservation(t *testing.T) {
	s := chaosTree(NewRoundRobin(), 4)
	conserved(t, s)
	if s.Completed == 0 {
		t.Fatal("tree chaos run completed nothing")
	}
	if len(s.Nodes) != 4 {
		t.Fatalf("summary lists %d nodes, want 4", len(s.Nodes))
	}
	for i, want := range []string{"a", "b", "c", "d"} {
		if s.Nodes[i].Name != want {
			t.Errorf("node row %d = %q, want %q (configuration order)", i, s.Nodes[i].Name, want)
		}
	}
	byName := map[string]NodeSummary{}
	for _, ns := range s.Nodes {
		byName[ns.Name] = ns
	}
	if h := byName["c"].Health; h != "down" {
		t.Errorf("killed node c health = %q, want down", h)
	}
	if byName["a"].ArraysLost != 0 {
		t.Errorf("node a still missing %d arrays after recovery", byName["a"].ArraysLost)
	}
}

// TestTreeHubsOneIsFlat: Hubs 1 (and 0) take the legacy single-hub code
// path, so existing callers keep byte-identical output by construction.
func TestTreeHubsOneIsFlat(t *testing.T) {
	run := func(sc ShardConfig) Summary {
		d := NewShardedDispatcher(NewLeastOutstanding(), Admission{}, sc,
			fullNode("a"), fullNode("b"))
		for i := 0; i < 8; i++ {
			if err := d.Submit(mkBatch(i, event.Time(i)*event.Millisecond, 4)); err != nil {
				panic(err)
			}
		}
		if d.tree != nil {
			t.Fatal("Hubs<=1 built a tree")
		}
		return d.Run()
	}
	flat := run(ShardConfig{Workers: 2}).String()
	one := run(ShardConfig{Workers: 2, Hubs: 1}).String()
	if flat != one {
		t.Fatalf("Hubs=1 diverges from the flat fabric:\n%s\nvs\n%s", flat, one)
	}
}

// TestTreeStealsOverflow: a saturated region forwards its overflow to
// the sibling instead of shedding. Region 0 (one node, queue cap 1)
// receives two simultaneous arrivals; the second must migrate to
// region 1 and complete there.
func TestTreeStealsOverflow(t *testing.T) {
	d := NewShardedDispatcher(NewLeastOutstanding(), Admission{QueueCap: 1, MaxRetries: 8},
		ShardConfig{Workers: 2, Hubs: 2, SummaryEvery: event.Millisecond},
		fullNode("a"), fullNode("b"))
	// Spray order: batch 0 -> region 0, batch 1 -> region 1,
	// batch 2 -> region 0 again. All arrive at t=0, so batch 2 finds
	// region 0's only queue slot booked and overflows.
	for i := 0; i < 3; i++ {
		if err := d.Submit(mkBatch(i, 0, 4)); err != nil {
			panic(err)
		}
	}
	s := d.Run()
	conserved(t, s)
	if s.Completed != 3 {
		t.Fatalf("completed %d of 3 (summary %v)", s.Completed, s)
	}
	r0, r1 := d.tree.regions[0], d.tree.regions[1]
	if r0.reg.stolen == 0 {
		t.Errorf("saturated region 0 never forwarded (stolen=%d)", r0.reg.stolen)
	}
	if r1.reg.taken != r0.reg.stolen {
		t.Errorf("forward imbalance: region 0 stole %d, region 1 took %d",
			r0.reg.stolen, r1.reg.taken)
	}
}

// TestTreeTenantMerge: per-tenant counters roll up across regions and
// conservation holds per tenant.
func TestTreeTenantMerge(t *testing.T) {
	d := NewShardedDispatcher(NewRoundRobin(), Admission{},
		ShardConfig{Workers: 2, Hubs: 2},
		fullNode("a"), fullNode("b"), fullNode("c"), fullNode("d"))
	tenants := []string{"t0", "t1", "t2"}
	for i := 0; i < 12; i++ {
		b := mkBatch(i, event.Time(i)*event.Millisecond, 2)
		b.Tenant = tenants[i%len(tenants)]
		if err := d.Submit(b); err != nil {
			panic(err)
		}
	}
	s := d.Run()
	conserved(t, s)
	if len(s.Tenants) != len(tenants) {
		t.Fatalf("summary lists %d tenants, want %d", len(s.Tenants), len(tenants))
	}
	for _, ts := range s.Tenants {
		if ts.Submitted != 4 {
			t.Errorf("tenant %s submitted=%d, want 4", ts.Tenant, ts.Submitted)
		}
		if ts.Accounted() != ts.Submitted {
			t.Errorf("tenant %s conservation broken: %+v", ts.Tenant, ts)
		}
	}
}

// TestTreeOnDoneRelay: the terminal-state observer sees every batch
// exactly once, including batches settled by sibling regions (relayed
// to region 0 over the peer edge).
func TestTreeOnDoneRelay(t *testing.T) {
	d := NewShardedDispatcher(NewLeastOutstanding(), Admission{},
		ShardConfig{Workers: 4, Hubs: 4},
		fullNode("a"), fullNode("b"), fullNode("c"), fullNode("d"))
	seen := map[int]int{}
	d.OnDone(func(di DoneInfo) { seen[di.Batch.ID]++ })
	const n = 16
	for i := 0; i < n; i++ {
		if err := d.Submit(mkBatch(i, event.Time(i)*500*event.Microsecond, 3)); err != nil {
			panic(err)
		}
	}
	s := d.Run()
	conserved(t, s)
	if len(seen) != n {
		t.Fatalf("observer saw %d distinct batches, want %d", len(seen), n)
	}
	for id, c := range seen {
		if c != 1 {
			t.Errorf("batch %d observed %d times", id, c)
		}
	}
}

// TestTreeWindowParallelism: the reason the tree exists — on a
// wave-synchronous fleet the regions decouple and the per-window
// active-shard count approaches the fleet size instead of the ~1.4 the
// flat hub managed.
func TestTreeWindowParallelism(t *testing.T) {
	const nodes, waves = 8, 6
	cfgs := make([]NodeConfig, nodes)
	for i := range cfgs {
		cfgs[i] = NodeConfig{Name: "", Targets: isa.Targets}
	}
	d := NewShardedDispatcher(NewLeastOutstanding(), Admission{},
		ShardConfig{Workers: 1, Hubs: nodes, SummaryEvery: 60 * event.Millisecond}, cfgs...)
	id := 0
	for w := 0; w < waves; w++ {
		for n := 0; n < nodes; n++ {
			if err := d.Submit(mkBatch(id, event.Time(w)*60*event.Millisecond, 6)); err != nil {
				panic(err)
			}
			id++
		}
	}
	s := d.Run()
	if s.Completed != id {
		t.Fatalf("completed %d of %d", s.Completed, id)
	}
	st := d.WindowStats()
	if avg := st.AvgActive(); avg < 6 {
		t.Errorf("tree avg-active %.2f, want >= 6 (stats %v)", avg, st)
	}
}

// TestValidateTopology: the named-error contract the CLI flags rely on.
func TestValidateTopology(t *testing.T) {
	cases := []struct {
		hubs, fanout, nodes int
		wantErr             error
		wantHubs, wantFan   int
	}{
		{0, 0, 8, nil, 1, 8},
		{1, 0, 8, nil, 1, 8},
		{4, 0, 8, nil, 4, 2},
		{4, 2, 8, nil, 4, 2},
		{8, 1, 8, nil, 8, 1},
		{-1, 0, 8, ErrBadHubs, 0, 0},
		{2, -3, 8, ErrBadHubFanout, 0, 0},
		{3, 0, 8, ErrTopologyMismatch, 0, 0},
		{16, 0, 8, ErrTopologyMismatch, 0, 0},
		{4, 3, 8, ErrTopologyMismatch, 0, 0},
	}
	for _, c := range cases {
		hubs, fan, err := ValidateTopology(c.hubs, c.fanout, c.nodes)
		if c.wantErr != nil {
			if !errors.Is(err, c.wantErr) {
				t.Errorf("ValidateTopology(%d,%d,%d) err = %v, want %v", c.hubs, c.fanout, c.nodes, err, c.wantErr)
			}
			continue
		}
		if err != nil || hubs != c.wantHubs || fan != c.wantFan {
			t.Errorf("ValidateTopology(%d,%d,%d) = (%d,%d,%v), want (%d,%d,nil)",
				c.hubs, c.fanout, c.nodes, hubs, fan, err, c.wantHubs, c.wantFan)
		}
	}
}
