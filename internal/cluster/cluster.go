// Package cluster lifts the single-node serving runtime into a
// multi-node MLIMP serving fabric: N nodes — possibly heterogeneous in
// layer mix and capacity — each run a runtime batch executor on one
// shared event engine, fronted by a dispatcher with pluggable
// load-balancing policies and admission control (bounded per-node
// queues with shed-on-overflow and optional bounded retry in simulated
// time). The paper schedules jobs across the computable-memory layers
// of one node; this package schedules batches across many such nodes,
// the shape a production deployment takes once a single node saturates
// (PyGim parallelises GNN work across independent PIM devices the same
// way).
package cluster

import (
	"fmt"
	"math"
	"strings"

	"mlimp/internal/event"
	"mlimp/internal/isa"
	"mlimp/internal/runtime"
	"mlimp/internal/sched"
)

// NodeConfig describes one MLIMP node of the fleet.
type NodeConfig struct {
	Name    string
	Targets []isa.Target // computable-memory layer mix
	// Scale multiplies each layer's array capacity (0 means 1.0), so a
	// fleet can mix full-size and cut-down nodes of the same layer mix.
	Scale float64
	// Scheduler is the node's batch scheduler; nil means the global
	// scheduler (Algorithm 2), the paper's best.
	Scheduler sched.Scheduler
	// Packing selects the node's multi-tenant array packing policy
	// (zero value: first-fit, the single-pool behaviour).
	Packing sched.Packing
	// Replication selects the node's standing-replica policy (zero
	// value: off). Under when-idle each node's scheduler may pin spare
	// arrays as bottleneck-stage replicas; the dispatcher's cost
	// estimates run against per-node view systems built from this same
	// config, so estimate and execution see the same policy.
	Replication sched.ReplicationPolicy
}

// Node is one MLIMP system wrapped in a runtime executor plus the
// occupancy bookkeeping the dispatcher's policies read.
type Node struct {
	Name string
	Sys  *sched.System

	rt        *runtime.Runtime
	accepted  int
	queued    int                // outstanding bookings (dispatcher-side views only)
	busy      event.Time         // sum of batch execution spans
	predicted event.Time         // sum of cost estimates of outstanding batches
	estimates map[int]event.Time // batch ID -> estimate while outstanding
	runningID int                // batch executing now, -1 when idle
	runStart  event.Time         // when it started
	estSched  sched.Scheduler    // stateless planner backing EstimateCost

	// estCache memoizes EstimateCost per batch signature. One admission
	// costs at least two identical estimates (the policy's Pick plus the
	// booking in accept), and every retry of a shed-bound arrival
	// re-estimates the same batch against the same nodes; the planning
	// pass behind each estimate is a full Algorithm-2 schedule, by far
	// the dispatcher's hottest computation. Estimates assume an idle
	// node; the system is fixed after construction except for fault
	// degradation, which invalidates the cache (see degrade/restore).
	estCache           map[string]event.Time
	estHits, estMisses int64

	// Failure state (see fault.go): ground-truth crash flag, the
	// monitor's belief, liveness and degradation bookkeeping, and the
	// per-node circuit breaker.
	down         bool
	detectedDown bool
	lastBeat     event.Time
	arraysLost   int
	failures     int // exec errors + deadline timeouts attributed here
	crashes      int
	breaker      *breaker
	onResult     func(n *Node, res runtime.BatchResult, err error)
}

// Health is a node's condition as the fabric sees it.
type Health int

const (
	// Healthy nodes have full capacity and a closed breaker.
	Healthy Health = iota
	// Degraded nodes serve with lost arrays or a tripped breaker.
	Degraded
	// DownHealth nodes are crashed or declared dead by the monitor.
	DownHealth
)

// String renders the health state.
func (h Health) String() string {
	switch h {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	}
	return "down"
}

// Health classifies the node right now.
func (n *Node) Health() Health {
	if n.down || n.detectedDown {
		return DownHealth
	}
	if n.arraysLost > 0 || (n.breaker != nil && n.breaker.state != breakerClosed) {
		return Degraded
	}
	return Healthy
}

// ArraysLost returns the arrays currently lost to injected faults.
func (n *Node) ArraysLost() int { return n.arraysLost }

// crash halts the node at the current instant: the executing batch
// loses its work and nothing further starts until revive. Work already
// admitted strands here until the heartbeat monitor declares the node
// dead and evicts it.
func (n *Node) crash() {
	if n.down {
		return
	}
	n.down = true
	n.crashes++
	n.runningID = -1
	n.rt.Halt()
}

// revive restarts a crashed node; heartbeats resume immediately.
func (n *Node) revive(now event.Time) {
	if !n.down {
		return
	}
	n.down = false
	n.lastBeat = now
	n.rt.Resume()
}

// degrade removes arrays from one layer (flooring at one array) and
// invalidates the estimate cache: stale idle-node estimates against the
// healthy capacity would misroute every later admission.
func (n *Node) degrade(t isa.Target, arrays int) {
	if removed := n.Sys.Degrade(t, arrays); removed > 0 {
		n.arraysLost += removed
		n.estCache = map[string]event.Time{}
	}
}

// restore returns previously lost arrays to a layer.
func (n *Node) restore(t isa.Target, arrays int) {
	if returned := n.Sys.Restore(t, arrays); returned > 0 {
		n.arraysLost -= returned
		n.estCache = map[string]event.Time{}
	}
}

// abandon releases the booking of a batch that will not complete here
// (evicted from a dead node or aborted on deadline), so PredictedDrain
// and the policies stop charging this node for it.
func (n *Node) abandon(id int) {
	if est, ok := n.estimates[id]; ok {
		n.predicted -= est
		delete(n.estimates, id)
	}
	if n.runningID == id {
		n.runningID = -1
	}
}

// newSystemFor builds a node's scheduling system from its config:
// the layer mix, optionally rescaled.
func newSystemFor(cfg NodeConfig) *sched.System {
	if len(cfg.Targets) == 0 {
		panic("cluster: node needs at least one layer")
	}
	sys := sched.NewSystem(cfg.Targets...)
	if cfg.Scale > 0 && cfg.Scale != 1 {
		for _, l := range sys.Layers {
			if c := int(float64(l.Capacity()) * cfg.Scale); c >= 1 {
				l.SetCapacity(c)
			} else {
				l.SetCapacity(1)
			}
		}
	}
	sys.Packing = cfg.Packing
	sys.Replication = cfg.Replication
	return sys
}

// NewNode builds a node on the shared engine.
func NewNode(eng *event.Engine, cfg NodeConfig) *Node {
	sys := newSystemFor(cfg)
	scheduler := cfg.Scheduler
	if scheduler == nil {
		scheduler = sched.NewGlobal()
	}
	name := cfg.Name
	if name == "" {
		name = fmt.Sprintf("node-%v", cfg.Targets)
	}
	rt, err := runtime.NewOn(eng, sys, scheduler)
	if err != nil {
		panic("cluster: " + err.Error()) // all three are non-nil above
	}
	n := &Node{
		Name:      name,
		Sys:       sys,
		rt:        rt,
		estimates: map[int]event.Time{},
		runningID: -1,
		estSched:  sched.NewGlobal(),
		estCache:  map[string]event.Time{},
	}
	n.rt.OnStart = func(b *runtime.Batch, at event.Time) {
		n.runningID, n.runStart = b.ID, at
	}
	n.rt.OnComplete = func(res runtime.BatchResult, err error) {
		n.busy += res.Completed - res.Start
		n.predicted -= n.estimates[res.ID]
		delete(n.estimates, res.ID)
		n.runningID = -1
		if n.onResult != nil {
			n.onResult(n, res, err)
		}
	}
	return n
}

// newView builds a dispatcher-side proxy of a node: the same scheduling
// system (so cost estimates agree with the real node) but no runtime.
// The sharded dispatcher routes against views — mirrors of remote node
// state it may legally read at hub time — and the policies cannot tell
// a view from a live node.
func newView(cfg NodeConfig) *Node {
	name := cfg.Name
	if name == "" {
		name = fmt.Sprintf("node-%v", cfg.Targets)
	}
	return &Node{
		Name:      name,
		Sys:       newSystemFor(cfg),
		estimates: map[int]event.Time{},
		runningID: -1,
		estSched:  sched.NewGlobal(),
		estCache:  map[string]event.Time{},
	}
}

// Outstanding returns the number of admitted but unfinished batches.
// Views (no runtime) count their bookings instead.
func (n *Node) Outstanding() int {
	if n.rt == nil {
		return n.queued
	}
	return n.rt.Outstanding()
}

// PredictedDrain estimates how long from now the node needs to finish
// everything it has already accepted: the sum of the cost-model
// estimates of its outstanding batches, minus the time the executing
// batch has already spent (clamped to its own estimate, so an
// underestimated batch never drives the drain negative).
func (n *Node) PredictedDrain(now event.Time) event.Time {
	d := n.predicted
	if n.runningID >= 0 {
		elapsed := now - n.runStart
		if est := n.estimates[n.runningID]; elapsed > est {
			elapsed = est
		}
		d -= elapsed
	}
	if d < 0 {
		d = 0
	}
	return d
}

// CanRun reports whether every job of the batch has a cost profile on
// at least one of the node's layers — a node missing the only layer a
// job compiles for must not be offered that batch.
func (n *Node) CanRun(jobs []*sched.Job) bool {
	for _, j := range jobs {
		ok := false
		for t := range n.Sys.Layers {
			if _, has := j.Est[t]; has {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// EstimateCost predicts the batch's service time on this node by
// planning it with a global scheduler against the node's own system —
// the same Section III-C cost model the node schedules with, reused as
// the dispatcher's crystal ball. The estimate assumes an idle node;
// PredictedDrain accounts for the work ahead of the batch. Unrunnable
// batches estimate to MaxInt64 (CanRun filters them out of admission
// before any policy consults the estimate).
//
// Estimates are memoized per batch signature (see batchKey), so the
// repeated estimates of one admission — policy comparison, booking,
// retries — plan the batch against each node exactly once.
func (n *Node) EstimateCost(jobs []*sched.Job) event.Time {
	if !n.CanRun(jobs) {
		return event.Time(math.MaxInt64)
	}
	key := batchKey(jobs)
	if est, ok := n.estCache[key]; ok {
		n.estHits++
		return est
	}
	est := n.estSched.Schedule(n.Sys, jobs).Makespan
	n.estCache[key] = est
	n.estMisses++
	return est
}

// EstCacheStats returns the estimate cache's hit and miss counts.
func (n *Node) EstCacheStats() (hits, misses int64) { return n.estHits, n.estMisses }

// batchKey is the estimate-cache signature of a job set: the ordered
// (ID, Name) pairs. Job IDs identify immutable job objects for the
// lifetime of a dispatcher (every in-repo workload generator issues
// unique IDs), and names encode the app shape, so equal keys imply
// equal plans. Callers that recycle IDs across jobs with different
// TrueTime ground truth would alias entries — don't.
func batchKey(jobs []*sched.Job) string {
	var sb strings.Builder
	for _, j := range jobs {
		fmt.Fprintf(&sb, "%d:%s|", j.ID, j.Name)
	}
	return sb.String()
}

// accept admits a batch: the estimate is booked against the node and
// the batch enters the runtime queue at the current simulated time.
func (n *Node) accept(b *runtime.Batch) {
	est := n.EstimateCost(b.Jobs)
	n.estimates[b.ID] = est
	n.predicted += est
	n.accepted++
	if err := n.rt.Enqueue(b); err != nil {
		panic("cluster: " + err.Error()) // batches are validated at Submit
	}
}
