package cluster

import (
	"math/rand"
	"strings"
	"testing"

	"mlimp/internal/event"
	"mlimp/internal/isa"
	"mlimp/internal/runtime"
	"mlimp/internal/sched"
	"mlimp/internal/workload"
)

// mkJob builds a job whose UnitCycles are identical on every target, so
// a node's speed is set purely by its layer mix (2.5 GHz SRAM vs 20 MHz
// ReRAM) — the heterogeneity knob the policy tests lean on.
func mkJob(id int, cycles int64, targets ...isa.Target) *sched.Job {
	if len(targets) == 0 {
		targets = isa.Targets
	}
	est := map[isa.Target]sched.Profile{}
	for _, t := range targets {
		est[t] = sched.Profile{
			UnitCycles: cycles, RepUnit: 8, LoadBytes: 1 << 14, Beta: sched.DefaultBeta,
		}
	}
	return &sched.Job{ID: id, Name: "cl", Kind: "cl", Est: est}
}

func mkBatch(id int, at event.Time, n int, targets ...isa.Target) *runtime.Batch {
	jobs := make([]*sched.Job, n)
	for i := range jobs {
		jobs[i] = mkJob(id*100+i, 200_000, targets...)
	}
	return &runtime.Batch{ID: id, Arrival: at, Jobs: jobs}
}

func fullNode(name string) NodeConfig { return NodeConfig{Name: name, Targets: isa.Targets} }

func TestRoundRobinSpreadsEvenly(t *testing.T) {
	d := NewDispatcher(NewRoundRobin(), Admission{}, fullNode("a"), fullNode("b"))
	// Sparse arrivals: every node is always eligible, so the rotation is
	// exact.
	for i := 0; i < 6; i++ {
		d.Submit(mkBatch(i, event.Time(i)*event.Second, 4))
	}
	s := d.Run()
	if s.Completed != 6 || s.Shed != 0 {
		t.Fatalf("summary = %v", s)
	}
	for _, ns := range s.Nodes {
		if ns.Batches != 3 {
			t.Errorf("node %s served %d batches, want 3", ns.Name, ns.Batches)
		}
	}
}

func TestLeastOutstandingPrefersIdleNode(t *testing.T) {
	d := NewDispatcher(NewLeastOutstanding(), Admission{}, fullNode("a"), fullNode("b"))
	// A burst at t=0: batches must alternate between the nodes rather
	// than pile onto the first.
	for i := 0; i < 4; i++ {
		d.Submit(mkBatch(i, 0, 4))
	}
	s := d.Run()
	for _, ns := range s.Nodes {
		if ns.Batches != 2 {
			t.Errorf("node %s served %d batches, want 2", ns.Name, ns.Batches)
		}
	}
}

// slowFleet is a 2-node fleet where node "slow" only has the 20 MHz
// ReRAM layer — two orders of magnitude slower on the same cycles.
func slowFleet(p Policy, adm Admission) *Dispatcher {
	return NewDispatcher(p, adm,
		NodeConfig{Name: "fast", Targets: []isa.Target{isa.SRAM}},
		NodeConfig{Name: "slow", Targets: []isa.Target{isa.ReRAM}},
	)
}

func TestPredictedCostAvoidsSlowNode(t *testing.T) {
	d := slowFleet(NewPredictedCost(), Admission{})
	for i := 0; i < 8; i++ {
		d.Submit(mkBatch(i, event.Time(i)*event.Microsecond, 4))
	}
	s := d.Run()
	if s.Nodes[0].Batches <= s.Nodes[1].Batches {
		t.Errorf("predicted-cost sent %d/%d batches to the fast/slow node",
			s.Nodes[0].Batches, s.Nodes[1].Batches)
	}
}

// TestPredictedCostBeatsRoundRobin is the tentpole acceptance check: on
// the same heterogeneous fleet, workload, and seed, the predicted-cost
// policy's P99 latency must not exceed roundrobin's.
func TestPredictedCostBeatsRoundRobin(t *testing.T) {
	run := func(p Policy) Summary {
		rng := rand.New(rand.NewSource(7))
		d := NewDispatcher(p, Admission{},
			NodeConfig{Name: "full", Targets: isa.Targets},
			NodeConfig{Name: "sram-dram", Targets: []isa.Target{isa.SRAM, isa.DRAM}},
			NodeConfig{Name: "dram-reram", Targets: []isa.Target{isa.DRAM, isa.ReRAM}},
			NodeConfig{Name: "reram", Targets: []isa.Target{isa.ReRAM}},
		)
		arrivals := PoissonArrivals(rng, 24, 4*event.Millisecond)
		for i, at := range arrivals {
			d.Submit(&runtime.Batch{ID: i, Arrival: at, Jobs: workload.RandomJobs(rng, 3, i*100)})
		}
		return d.Run()
	}
	rr := run(NewRoundRobin())
	pc := run(NewPredictedCost())
	if pc.P99LatMs > rr.P99LatMs {
		t.Errorf("predicted-cost p99 %.3fms > roundrobin p99 %.3fms", pc.P99LatMs, rr.P99LatMs)
	}
	if pc.Completed+pc.Shed != pc.Submitted || rr.Completed+rr.Shed != rr.Submitted {
		t.Errorf("batch accounting broken: pc=%+v rr=%+v", pc, rr)
	}
}

func TestAdmissionShedsOnOverflow(t *testing.T) {
	d := slowFleet(NewRoundRobin(), Admission{QueueCap: 1})
	// 8 simultaneous arrivals into 2 nodes with one slot each: 6 shed.
	for i := 0; i < 8; i++ {
		d.Submit(mkBatch(i, 0, 4))
	}
	s := d.Run()
	if s.Shed != 6 || s.Completed != 2 {
		t.Errorf("shed=%d completed=%d, want 6/2", s.Shed, s.Completed)
	}
}

func TestAdmissionRetriesRecoverSheddableLoad(t *testing.T) {
	mk := func(adm Admission) Summary {
		d := NewDispatcher(NewLeastOutstanding(), adm,
			NodeConfig{Name: "a", Targets: []isa.Target{isa.SRAM}})
		for i := 0; i < 4; i++ {
			d.Submit(mkBatch(i, 0, 2))
		}
		return d.Run()
	}
	noRetry := mk(Admission{QueueCap: 1})
	withRetry := mk(Admission{QueueCap: 1, MaxRetries: 20, Backoff: 100 * event.Microsecond})
	if noRetry.Shed != 3 {
		t.Errorf("no-retry shed = %d, want 3", noRetry.Shed)
	}
	if withRetry.Retries == 0 || withRetry.Completed <= noRetry.Completed {
		t.Errorf("retries did not recover load: %+v", withRetry)
	}
}

func TestUnrunnableBatchIsShed(t *testing.T) {
	d := NewDispatcher(NewRoundRobin(), Admission{},
		NodeConfig{Name: "reram-only", Targets: []isa.Target{isa.ReRAM}})
	// The batch only compiles for SRAM: no node can ever run it.
	d.Submit(mkBatch(0, 0, 2, isa.SRAM))
	s := d.Run()
	if s.Shed != 1 || s.Completed != 0 {
		t.Errorf("unrunnable batch: %+v", s)
	}
}

func TestSramOnlyBatchRoutesToSramNode(t *testing.T) {
	d := NewDispatcher(NewRoundRobin(), Admission{},
		NodeConfig{Name: "reram-only", Targets: []isa.Target{isa.ReRAM}},
		NodeConfig{Name: "sram-only", Targets: []isa.Target{isa.SRAM}})
	for i := 0; i < 4; i++ {
		d.Submit(mkBatch(i, event.Time(i)*event.Millisecond, 2, isa.SRAM))
	}
	s := d.Run()
	if s.Nodes[0].Batches != 0 || s.Nodes[1].Batches != 4 {
		t.Errorf("routing ignored CanRun: %+v", s.Nodes)
	}
}

func TestCapacityScale(t *testing.T) {
	eng := &event.Engine{}
	full := NewNode(eng, NodeConfig{Targets: []isa.Target{isa.SRAM}})
	half := NewNode(eng, NodeConfig{Targets: []isa.Target{isa.SRAM}, Scale: 0.5})
	if half.Sys.Layers[isa.SRAM].Capacity()*2 != full.Sys.Layers[isa.SRAM].Capacity() {
		t.Errorf("scale 0.5: %d vs %d arrays",
			half.Sys.Layers[isa.SRAM].Capacity(), full.Sys.Layers[isa.SRAM].Capacity())
	}
	tiny := NewNode(eng, NodeConfig{Targets: []isa.Target{isa.SRAM}, Scale: 1e-9})
	if tiny.Sys.Layers[isa.SRAM].Capacity() != 1 {
		t.Errorf("scale floor broken: %d", tiny.Sys.Layers[isa.SRAM].Capacity())
	}
}

func TestFleetDeterministic(t *testing.T) {
	run := func() string {
		rng := rand.New(rand.NewSource(11))
		d := NewDispatcher(NewPredictedCost(), Admission{QueueCap: 2, MaxRetries: 3},
			fullNode("a"), NodeConfig{Name: "b", Targets: []isa.Target{isa.DRAM, isa.ReRAM}})
		for i, at := range PoissonArrivals(rng, 12, 2*event.Millisecond) {
			d.Submit(&runtime.Batch{ID: i, Arrival: at, Jobs: workload.RandomJobs(rng, 2, i*10)})
		}
		return d.Run().String()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("fleet run not deterministic:\n%s\nvs\n%s", a, b)
	}
}

func TestPoissonArrivals(t *testing.T) {
	a := PoissonArrivals(rand.New(rand.NewSource(3)), 100, event.Millisecond)
	b := PoissonArrivals(rand.New(rand.NewSource(3)), 100, event.Millisecond)
	var mean float64
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("arrivals not deterministic for a fixed seed")
		}
		if i > 0 && a[i] < a[i-1] {
			t.Fatal("arrivals not monotone")
		}
	}
	mean = a[len(a)-1].Millis() / float64(len(a))
	if mean < 0.5 || mean > 2 {
		t.Errorf("mean gap %.3fms implausible for 1ms exponential", mean)
	}
}

func TestPolicyByName(t *testing.T) {
	for _, name := range PolicyNames() {
		p, ok := PolicyByName(name)
		if !ok || p.Name() != name {
			t.Errorf("PolicyByName(%q) = %v, %v", name, p, ok)
		}
	}
	if _, ok := PolicyByName("bogus"); ok {
		t.Error("bogus policy resolved")
	}
}

func TestSummaryString(t *testing.T) {
	d := NewDispatcher(NewRoundRobin(), Admission{}, fullNode("a"))
	d.Submit(mkBatch(0, 0, 2))
	out := d.Run().String()
	for _, want := range []string{"policy=roundrobin", "p99=", "util=", "shed=0"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary render missing %q:\n%s", want, out)
		}
	}
}

func TestPanics(t *testing.T) {
	for i, f := range []func(){
		func() { NewDispatcher(nil, Admission{}, fullNode("a")) },
		func() { NewDispatcher(NewRoundRobin(), Admission{}) },
		func() { NewNode(&event.Engine{}, NodeConfig{}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

// TestSubmitErrors: malformed arrivals are rejected with errors, not
// panics — they come from callers, not from bugs in the fabric.
func TestSubmitErrors(t *testing.T) {
	d := NewDispatcher(NewRoundRobin(), Admission{}, fullNode("a"))
	if err := d.Submit(&runtime.Batch{ID: 0}); err == nil {
		t.Error("empty batch accepted")
	}
	if err := d.Submit(nil); err == nil {
		t.Error("nil batch accepted")
	}
	if err := d.Submit(mkBatch(1, 0, 2)); err != nil {
		t.Fatalf("valid batch rejected: %v", err)
	}
	if err := d.Submit(mkBatch(1, 0, 2)); err == nil {
		t.Error("duplicate batch ID accepted")
	}
	s := d.Run()
	if s.Submitted != 1 || s.Completed != 1 {
		t.Errorf("submitted=%d completed=%d, want 1/1", s.Submitted, s.Completed)
	}
}

// TestBackoffClamp: the exponential retry backoff must clamp its shift —
// base<<attempt overflows event.Time into a negative delay around
// attempt 40, which the engine rejects with a panic.
func TestBackoffClamp(t *testing.T) {
	base := DefaultBackoff
	if d := retryDelay(base, 63); d != base<<maxBackoffShift {
		t.Errorf("clamped delay = %v, want %v", d, base<<maxBackoffShift)
	}
	if d := retryDelay(base, 1000); d <= 0 {
		t.Errorf("huge attempt produced non-positive delay %v", d)
	}
	for attempt := 0; attempt <= maxBackoffShift; attempt++ {
		if d := retryDelay(base, attempt); d != base<<attempt {
			t.Errorf("attempt %d: delay = %v, want %v", attempt, d, base<<attempt)
		}
	}
	// Regression: the un-clamped shift is exactly the overflow the old
	// code computed; prove it really is negative and would have crashed.
	if bad := base << 63; bad > 0 {
		t.Error("expected base<<63 to overflow negative")
	}
}
