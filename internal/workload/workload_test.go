package workload

import (
	"testing"

	"mlimp/internal/apps"
	"mlimp/internal/isa"
	"mlimp/internal/sched"
)

func TestCombosWellFormed(t *testing.T) {
	if len(Combos) != 7 {
		t.Fatalf("want 7 combinations, got %d", len(Combos))
	}
	for _, name := range ComboNames() {
		appNames, ok := Combos[name]
		if !ok {
			t.Fatalf("combo %s missing", name)
		}
		if len(appNames) != 4 {
			t.Errorf("combo %s has %d apps, want 4 (Table II)", name, len(appNames))
		}
		for _, an := range appNames {
			if _, ok := apps.ByName(an); !ok {
				t.Errorf("combo %s references unknown app %q", name, an)
			}
		}
	}
}

func TestJobsExpansion(t *testing.T) {
	a, _ := apps.ByName("kmeans")
	jobs := Jobs(a, 100)
	if len(jobs) != a.Jobs {
		t.Fatalf("jobs = %d, want %d", len(jobs), a.Jobs)
	}
	for i, j := range jobs {
		if j.ID != 100+i || j.Kind != "kmeans" {
			t.Errorf("job %d: id=%d kind=%q", i, j.ID, j.Kind)
		}
		if j.TrueTime != nil {
			t.Error("deterministic app jobs must not carry separate truth")
		}
		for _, tgt := range isa.Targets {
			p, ok := j.Est[tgt]
			if !ok || p.UnitCycles <= 0 || p.RepUnit < 1 {
				t.Fatalf("bad profile on %s: %+v", tgt, p)
			}
		}
	}
}

func TestComboJobsCountsAndPanics(t *testing.T) {
	jobs := ComboJobs("A")
	if len(jobs) != 4*8 {
		t.Errorf("combo A jobs = %d, want 32", len(jobs))
	}
	ids := map[int]bool{}
	for _, j := range jobs {
		if ids[j.ID] {
			t.Fatalf("duplicate id %d", j.ID)
		}
		ids[j.ID] = true
	}
	defer func() {
		if recover() == nil {
			t.Error("unknown combo should panic")
		}
	}()
	ComboJobs("Z")
}

func TestPreferencesAreDiverse(t *testing.T) {
	// Figure 17: applications prefer different memories — bulk bitwise
	// work leans DRAM, dot-product work ReRAM, small compute-dense
	// kernels SRAM. The suite must cover at least two distinct
	// preferred targets or the multiprogramming study is vacuous.
	sys := sched.NewSystem(isa.SRAM, isa.DRAM, isa.ReRAM)
	seen := map[isa.Target]bool{}
	for _, a := range apps.Suite() {
		seen[PreferredTarget(sys, a)] = true
	}
	if len(seen) < 2 {
		t.Errorf("all apps prefer the same memory: %v", seen)
	}
}

func TestComboScheduling(t *testing.T) {
	sys := sched.NewSystem(isa.SRAM, isa.DRAM, isa.ReRAM)
	for _, name := range ComboNames() {
		jobs := ComboJobs(name)
		res := sched.NewGlobal().Schedule(sys, jobs)
		if len(res.Assignments) != len(jobs) {
			t.Errorf("combo %s: scheduled %d of %d", name, len(res.Assignments), len(jobs))
		}
		if res.Makespan <= 0 {
			t.Errorf("combo %s: bad makespan", name)
		}
	}
}

func TestMultiLayerBeatsSingleLayer(t *testing.T) {
	// Figure 18's headline: MLIMP-ALL beats any single-layer system on
	// mixed combinations (7.1x vs single-layer IMP in the paper).
	all := sched.NewSystem(isa.SRAM, isa.DRAM, isa.ReRAM)
	for _, name := range []string{"A", "F"} {
		jobs := ComboJobs(name)
		mAll := sched.NewGlobal().Schedule(all, jobs).Makespan
		for _, tgt := range isa.Targets {
			single := sched.NewSystem(tgt)
			mSingle := sched.NewGlobal().Schedule(single, jobs).Makespan
			if mSingle < mAll {
				t.Errorf("combo %s: single %s (%v) beat MLIMP-ALL (%v)", name, tgt, mSingle, mAll)
			}
		}
	}
}
