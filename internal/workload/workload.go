// Package workload builds the multiprogramming scenarios of Table II:
// combinations A-G of data-parallel applications, each compiled for all
// three in-memory ISAs and turned into scheduler jobs with
// statically-analysed (deterministic, hence exact) cost profiles.
package workload

import (
	"fmt"
	"math/rand"

	"mlimp/internal/apps"
	"mlimp/internal/isa"
	memory "mlimp/internal/mem"
	"mlimp/internal/sched"
)

// Combos is the Table II application-combination matrix. Streamcluster
// appears with input sizes A and B; DB with the bitmap (B) and full-scan
// (S) algorithms.
var Combos = map[string][]string{
	"A": {"blackscholes", "fluidanimate", "streamclusterA", "crypto"},
	"B": {"streamclusterB", "backprop", "kmeans", "bitap"},
	"C": {"blackscholes", "fluidanimate", "dbS", "streamclusterA"},
	"D": {"streamclusterB", "backprop", "crypto", "dbB"},
	"E": {"blackscholes", "streamclusterA", "dbS", "bitap"},
	"F": {"streamclusterB", "kmeans", "crypto", "dbB"},
	"G": {"fluidanimate", "backprop", "kmeans", "bitap"},
}

// ComboNames returns the combination labels in order.
func ComboNames() []string { return []string{"A", "B", "C", "D", "E", "F", "G"} }

// elementBytes is the storage of one fixed-point element.
const elementBytes = 2

// profileFor statically analyses one app job for one target: the kernel
// is cross-compiled (internal/isa), and the per-invocation cycles are
// scaled by the loop count and by how many SIMD waves the job's elements
// need at the unit allocation.
func profileFor(a apps.App, t isa.Target) sched.Profile {
	prog, err := isa.Compile(a.Kernel, t)
	if err != nil {
		panic(fmt.Sprintf("workload: %s does not compile for %s: %v", a.Name, t, err))
	}
	cfg := memory.ConfigFor(t)
	nIn := int64(len(a.Kernel.Inputs()))
	nOut := int64(len(a.Kernel.Outputs()))
	// Unit allocation: arrays holding the operand vectors (inputs plus
	// outputs plus one scratch).
	workBytes := int64(a.Elements) * (nIn + nOut + 1) * elementBytes
	repUnit := int((workBytes + cfg.ArrayBytes() - 1) / cfg.ArrayBytes())
	if repUnit < 1 {
		repUnit = 1
	}
	lanes := int64(repUnit) * int64(cfg.ALUsPerArray)
	waves := (int64(a.Elements) + lanes - 1) / lanes
	return sched.Profile{
		UnitCycles: prog.Cycles * int64(a.LoopCount) * waves,
		RepUnit:    repUnit,
		LoadBytes:  sched.EffectiveLoadBytes(t, int64(a.Elements)*nIn*elementBytes),
		StoreBytes: sched.EffectiveLoadBytes(t, int64(a.Elements)*nOut*elementBytes),
		Beta:       sched.DefaultBeta,
	}
}

// Jobs expands one application into its scheduler jobs (the app
// generates a fixed number of jobs with fixed loop counts, Section IV).
// App job costs are deterministic, so estimates are exact and TrueTime
// stays nil.
func Jobs(a apps.App, startID int) []*sched.Job {
	est := map[isa.Target]sched.Profile{}
	for _, t := range isa.Targets {
		est[t] = profileFor(a, t)
	}
	jobs := make([]*sched.Job, a.Jobs)
	for i := range jobs {
		jobs[i] = &sched.Job{
			ID:   startID + i,
			Name: fmt.Sprintf("%s-%d", a.Name, i),
			Kind: a.Name,
			Est:  est,
		}
	}
	return jobs
}

// ComboJobs builds the job batch for one Table II combination.
func ComboJobs(name string) []*sched.Job {
	appNames, ok := Combos[name]
	if !ok {
		panic(fmt.Sprintf("workload: unknown combination %q", name))
	}
	var jobs []*sched.Job
	for _, an := range appNames {
		a, ok := apps.ByName(an)
		if !ok {
			panic(fmt.Sprintf("workload: unknown app %q in combo %s", an, name))
		}
		jobs = append(jobs, Jobs(a, len(jobs))...)
	}
	return jobs
}

// RandomJobs draws n jobs uniformly from the Table II application suite
// — the synthetic open-stream workload the cluster serving studies feed
// the fleet. Deterministic for a seeded rng; profiles are shared across
// jobs of the same app (they are read-only to the scheduler).
func RandomJobs(rng *rand.Rand, n, startID int) []*sched.Job {
	suite := apps.Suite()
	ests := make([]map[isa.Target]sched.Profile, len(suite))
	for i, a := range suite {
		est := map[isa.Target]sched.Profile{}
		for _, t := range isa.Targets {
			est[t] = profileFor(a, t)
		}
		ests[i] = est
	}
	jobs := make([]*sched.Job, n)
	for i := range jobs {
		k := rng.Intn(len(suite))
		jobs[i] = &sched.Job{
			ID:   startID + i,
			Name: fmt.Sprintf("%s-%d", suite[k].Name, startID+i),
			Kind: suite[k].Name,
			Est:  ests[k],
		}
	}
	return jobs
}

// AssignTenants tags jobs round-robin across n tenants named
// "t0".."t{n-1}", so a generated batch exercises the scheduler's
// multi-tenant array packing. A non-positive n leaves jobs untenanted
// (the single-pool fast path).
func AssignTenants(jobs []*sched.Job, n int) []*sched.Job {
	if n > 0 {
		for i, j := range jobs {
			j.Tenant = fmt.Sprintf("t%d", i%n)
		}
	}
	return jobs
}

// RequestPool caches the per-app cost profiles so single-request draws
// — the open-loop serving front end generates one job per request —
// don't recompile every kernel per request.
type RequestPool struct {
	suite []apps.App
	ests  []map[isa.Target]sched.Profile
}

// NewRequestPool analyses the Table II application suite once.
func NewRequestPool() *RequestPool {
	suite := apps.Suite()
	p := &RequestPool{suite: suite, ests: make([]map[isa.Target]sched.Profile, len(suite))}
	for i, a := range suite {
		est := map[isa.Target]sched.Profile{}
		for _, t := range isa.Targets {
			est[t] = profileFor(a, t)
		}
		p.ests[i] = est
	}
	return p
}

// Draw builds one job for a uniformly drawn app. Deterministic for a
// seeded rng; the shared profiles are read-only to the scheduler.
func (p *RequestPool) Draw(rng *rand.Rand, id int) *sched.Job {
	k := rng.Intn(len(p.suite))
	return &sched.Job{
		ID:   id,
		Name: fmt.Sprintf("%s-%d", p.suite[k].Name, id),
		Kind: p.suite[k].Name,
		Est:  p.ests[k],
	}
}

// StandaloneTime returns the modelled kernel time of one app job on one
// memory layer given the whole layer (full capacity, the Figure 17
// setting). Working sets larger than the layer pay the scale-model
// penalty; the shared system provides the DDR path.
func StandaloneTime(sys *sched.System, a apps.App, t isa.Target) float64 {
	j := &sched.Job{ID: 0, Name: a.Name, Kind: a.Name,
		Est: map[isa.Target]sched.Profile{t: profileFor(a, t)}}
	return sys.ModelTime(j, t, sys.Layers[t].Capacity()).Seconds()
}

// PreferredTarget returns the memory with the lowest standalone kernel
// time for an app — the Figure 17 preference.
func PreferredTarget(sys *sched.System, a apps.App) isa.Target {
	best := isa.Targets[0]
	bestT := -1.0
	for _, t := range isa.Targets {
		if _, ok := sys.Layers[t]; !ok {
			continue
		}
		sec := StandaloneTime(sys, a, t)
		if bestT < 0 || sec < bestT {
			bestT, best = sec, t
		}
	}
	return best
}
