package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestEdgeListRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := BarabasiAlbert(rng, 200, 4)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadEdgeList(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.N != g.N || loaded.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip: %v -> %v", g, loaded)
	}
	for u := 0; u < g.N; u++ {
		a, b := g.Neighbors(u), loaded.Neighbors(u)
		if len(a) != len(b) {
			t.Fatalf("node %d: degree %d -> %d", u, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("node %d: neighbours differ", u)
			}
		}
	}
}

func TestLoadEdgeListCommentsAndBlank(t *testing.T) {
	in := "# comment\n% matrix-market style\n\n0 1\n1 2\n0 1\n"
	g, err := LoadEdgeList(strings.NewReader(in), 0)
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 3 || g.NumEdges() != 2 { // duplicate collapses
		t.Errorf("got %v", g)
	}
}

func TestLoadEdgeListForcedN(t *testing.T) {
	g, err := LoadEdgeList(strings.NewReader("0 1\n"), 10)
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 10 {
		t.Errorf("forced n = %d", g.N)
	}
	// n smaller than the ids is corrected upward.
	g, err = LoadEdgeList(strings.NewReader("0 7\n"), 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 8 {
		t.Errorf("inferred n = %d, want 8", g.N)
	}
}

func TestLoadEdgeListErrors(t *testing.T) {
	for _, in := range []string{"", "a b\n", "1\n", "-1 2\n"} {
		if _, err := LoadEdgeList(strings.NewReader(in), 0); err == nil {
			t.Errorf("input %q should fail", in)
		}
	}
}

func TestLoadedGraphDrivesSampler(t *testing.T) {
	// A loaded graph is a first-class citizen: sampling and normalised
	// adjacency work on it directly.
	rng := rand.New(rand.NewSource(2))
	g := BarabasiAlbert(rng, 300, 3)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadEdgeList(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSampler(rng, loaded, 2, 8)
	sg := s.Sample(5)
	if sg.NumNodes() < 2 || sg.NNZ() == 0 {
		t.Error("sampling a loaded graph failed")
	}
}
