package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mlimp/internal/fixed"
	"mlimp/internal/stats"
)

func triangle() *Graph {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 0)
	return b.Build()
}

func TestBuilderBasics(t *testing.T) {
	g := triangle()
	if g.N != 3 || g.NumEdges() != 3 {
		t.Fatalf("triangle: %v", g)
	}
	for u := 0; u < 3; u++ {
		if g.Degree(u) != 2 {
			t.Errorf("degree(%d) = %d", u, g.Degree(u))
		}
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("edges should be symmetric")
	}
	if g.HasEdge(0, 0) {
		t.Error("no self loop expected")
	}
}

func TestBuilderDedupesParallelEdges(t *testing.T) {
	b := NewBuilder(2)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0)
	b.AddEdge(0, 1)
	g := b.Build()
	if g.NumEdges() != 1 || g.Degree(0) != 1 {
		t.Errorf("dedupe failed: m=%d deg0=%d", g.NumEdges(), g.Degree(0))
	}
}

func TestSelfLoopCounting(t *testing.T) {
	b := NewBuilder(2)
	b.AddEdge(0, 0)
	b.AddEdge(0, 1)
	g := b.Build()
	if g.NumEdges() != 2 {
		t.Errorf("NumEdges = %d, want 2", g.NumEdges())
	}
	if !g.HasEdge(0, 0) {
		t.Error("self loop lost")
	}
}

func TestBuilderPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewBuilder(2).AddEdge(0, 5)
}

func TestAdjacencyMatchesGraph(t *testing.T) {
	g := triangle()
	a := g.Adjacency()
	if a.NNZ() != 6 {
		t.Errorf("adjacency nnz = %d, want 6", a.NNZ())
	}
	if a.At(0, 1) != fixed.FromInt(1) || a.At(0, 0) != 0 {
		t.Error("adjacency values wrong")
	}
}

func TestNormalizedAdjacency(t *testing.T) {
	g := triangle()
	na := g.NormalizedAdjacency()
	// With self-loops every node has degree 3: all entries = 1/3.
	if na.NNZ() != 9 {
		t.Fatalf("nnz = %d, want 9", na.NNZ())
	}
	want := fixed.FromFloat(1.0 / 3)
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			if na.At(r, c) != want {
				t.Errorf("na[%d][%d] = %v, want %v", r, c, na.At(r, c), want)
			}
		}
	}
}

func TestNormalizedAdjacencyRowSortedAndStochasticish(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := BarabasiAlbert(rng, 200, 3)
	na := g.NormalizedAdjacency()
	for r := 0; r < g.N; r++ {
		cols, vals := na.RowEntries(r)
		hasSelf := false
		for i := range cols {
			if i > 0 && cols[i] <= cols[i-1] {
				t.Fatalf("row %d columns not strictly sorted", r)
			}
			if int(cols[i]) == r {
				hasSelf = true
			}
			if vals[i] <= 0 {
				t.Fatalf("non-positive normalised weight at row %d", r)
			}
		}
		if !hasSelf {
			t.Fatalf("row %d missing renormalisation self-loop", r)
		}
	}
}

func TestBarabasiAlbertShape(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n, m := 500, 4
	g := BarabasiAlbert(rng, n, m)
	if g.N != n {
		t.Fatalf("n = %d", g.N)
	}
	wantEdges := m*(m+1)/2 + (n-m-1)*m
	if g.NumEdges() != wantEdges {
		t.Errorf("edges = %d, want %d", g.NumEdges(), wantEdges)
	}
	// Scale-free: max degree should far exceed the mean degree.
	maxDeg := 0
	for u := 0; u < n; u++ {
		if d := g.Degree(u); d > maxDeg {
			maxDeg = d
		}
	}
	meanDeg := 2 * float64(g.NumEdges()) / float64(n)
	if float64(maxDeg) < 3*meanDeg {
		t.Errorf("max degree %d not heavy-tailed vs mean %.1f", maxDeg, meanDeg)
	}
}

func TestBarabasiAlbertPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, c := range []struct{ n, m int }{{5, 0}, {3, 5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("BA(%d,%d) should panic", c.n, c.m)
				}
			}()
			BarabasiAlbert(rng, c.n, c.m)
		}()
	}
}

func TestErdosRenyi(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := ErdosRenyi(rng, 100, 300)
	if g.NumEdges() != 300 {
		t.Errorf("edges = %d", g.NumEdges())
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for too many edges")
		}
	}()
	ErdosRenyi(rng, 3, 10)
}

func TestSamplerContainsQueryAndNeighbors(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := BarabasiAlbert(rng, 300, 3)
	s := NewSampler(rng, g, 2, 0) // unlimited fanout
	sg := s.Sample(10)
	if sg.Nodes[0] != 10 {
		t.Fatal("query must be node 0 of the subgraph")
	}
	in := map[int32]bool{}
	for _, v := range sg.Nodes {
		in[v] = true
	}
	for _, v := range g.Neighbors(10) {
		if !in[v] {
			t.Errorf("1-hop neighbour %d missing", v)
		}
	}
	if sg.NNZ() == 0 || sg.NumNodes() < 2 {
		t.Error("subgraph should be nontrivial")
	}
}

func TestSamplerFanoutLimitsGrowth(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := BarabasiAlbert(rng, 2000, 10)
	limited := NewSampler(rng, g, 2, 3)
	full := NewSampler(rng, g, 2, 0)
	q := 0 // hub node in the seed clique: large neighbourhood
	if ls, fs := limited.Sample(q).NumNodes(), full.Sample(q).NumNodes(); ls >= fs {
		t.Errorf("fanout-limited %d should be smaller than full %d", ls, fs)
	}
	// Fanout-bounded worst case: 1 + 3 + 9 nodes for 2 hops, fanout 3.
	if got := limited.Sample(q).NumNodes(); got > 13 {
		t.Errorf("fanout bound violated: %d > 13", got)
	}
}

func TestSamplerInducedAdjacencyIsConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := BarabasiAlbert(rng, 400, 4)
	s := NewSampler(rng, g, 3, 8)
	na := g.NormalizedAdjacency()
	sg := s.Sample(42)
	for li, u := range sg.Nodes {
		cols, vals := sg.Adj.RowEntries(li)
		for i, lc := range cols {
			if got, want := vals[i], na.At(int(u), int(sg.Nodes[lc])); got != want {
				t.Fatalf("induced value mismatch at local (%d,%d)", li, lc)
			}
		}
	}
}

func TestConcatUnion(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	g := BarabasiAlbert(rng, 300, 4)
	s := NewSampler(rng, g, 2, 5)
	batch := s.SampleBatch([]int{1, 2, 3, 4})
	cat := s.Concat(batch)
	union := map[int32]bool{}
	for _, sg := range batch {
		for _, v := range sg.Nodes {
			union[v] = true
		}
	}
	if cat.NumNodes() != len(union) {
		t.Errorf("concat nodes = %d, union = %d", cat.NumNodes(), len(union))
	}
	var maxSingle int
	for _, sg := range batch {
		if sg.NumNodes() > maxSingle {
			maxSingle = sg.NumNodes()
		}
	}
	if cat.NumNodes() < maxSingle {
		t.Error("concat smaller than largest component subgraph")
	}
}

func TestConcatPanicsOnEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := BarabasiAlbert(rng, 10, 2)
	s := NewSampler(rng, g, 1, 2)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	s.Concat(nil)
}

func TestSubgraphSizeDistributionIsHeavyTailed(t *testing.T) {
	// Figure 5 reproduction shape check: 3-hop subgraph sizes on a
	// scale-free graph spread over a wide range.
	rng := rand.New(rand.NewSource(11))
	d, ok := DatasetByName("ogbl-collab")
	if !ok {
		t.Fatal("dataset missing")
	}
	g := d.Generate(rng)
	s := NewSampler(rng, g, 2, 0)
	var sizes []float64
	for i := 0; i < 128; i++ {
		sizes = append(sizes, float64(s.Sample(rng.Intn(g.N)).NumNodes()))
	}
	p10, p90 := stats.Percentile(sizes, 10), stats.Percentile(sizes, 90)
	if p90 < 3*p10 {
		t.Errorf("subgraph sizes not spread: p10=%v p90=%v", p10, p90)
	}
}

func TestDatasetCatalogue(t *testing.T) {
	if len(Datasets) != 5 {
		t.Fatalf("want 5 Table I datasets, got %d", len(Datasets))
	}
	for _, d := range Datasets {
		if d.SynthVertices() <= d.Attachment {
			t.Errorf("%s: synthetic config infeasible", d.Name)
		}
		if d.String() == "" {
			t.Error("empty render")
		}
	}
	cit, ok := DatasetByName("ogbl-citation2")
	if !ok || cit.Vertices != 2_927_963 {
		t.Error("citation2 lookup failed")
	}
	if _, ok := DatasetByName("nope"); ok {
		t.Error("bogus lookup should fail")
	}
	// Concatenated-subgraph mode for the nature-domain graphs.
	for _, name := range []string{"ogbl-ppa", "ogbl-ddi"} {
		if d, _ := DatasetByName(name); !d.Concat {
			t.Errorf("%s should use concatenated subgraphs", name)
		}
	}
}

func TestDatasetAverageDegreePreserved(t *testing.T) {
	for _, d := range Datasets {
		if d.Name == "ogbl-ddi" {
			continue // intentionally density-scaled
		}
		paperAvg := float64(d.Edges) / float64(d.Vertices)
		synthAvg := float64(d.SynthEdges()) / float64(d.SynthVertices())
		if math.Abs(paperAvg-synthAvg)/paperAvg > 0.25 {
			t.Errorf("%s: avg degree drifted: paper %.1f synth %.1f", d.Name, paperAvg, synthAvg)
		}
	}
}

// Property: every sampled subgraph's induced adjacency is square with
// dimension len(Nodes), query first, all node ids in range.
func TestSamplerInvariantProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	g := BarabasiAlbert(rng, 500, 3)
	s := NewSampler(rng, g, 2, 6)
	f := func(q uint16) bool {
		query := int(q) % g.N
		sg := s.Sample(query)
		if sg.Nodes[0] != int32(query) || sg.Adj.Rows != sg.NumNodes() || sg.Adj.Cols != sg.NumNodes() {
			return false
		}
		for _, v := range sg.Nodes {
			if v < 0 || int(v) >= g.N {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
