package graph

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Edge-list IO: the bridge between the synthetic stand-ins and real
// data. graphgen writes this format; users with the actual OGB edge
// lists (or any other graph) can load them here and run every MLIMP
// experiment on real topology.
//
// Format: one "u v" pair of whitespace-separated zero-based node ids per
// line; lines starting with '#' or '%' are comments. Node count is
// max(id)+1 unless a larger n is given.

// WriteEdgeList writes each undirected edge once as "u v" lines.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	for u := 0; u < g.N; u++ {
		for _, v := range g.Neighbors(u) {
			if int(v) >= u {
				if _, err := fmt.Fprintf(bw, "%d %d\n", u, v); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// LoadEdgeList parses an edge list. n forces the node count (0 = infer
// from the largest id). Parallel edges collapse; malformed lines error
// with their line number.
func LoadEdgeList(r io.Reader, n int) (*Graph, error) {
	type edge struct{ u, v int }
	var edges []edge
	maxID := -1
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "%") {
			continue
		}
		var u, v int
		if _, err := fmt.Sscanf(line, "%d %d", &u, &v); err != nil {
			return nil, fmt.Errorf("graph: line %d: %q: %w", lineNo, line, err)
		}
		if u < 0 || v < 0 {
			return nil, fmt.Errorf("graph: line %d: negative node id", lineNo)
		}
		edges = append(edges, edge{u, v})
		if u > maxID {
			maxID = u
		}
		if v > maxID {
			maxID = v
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(edges) == 0 {
		return nil, fmt.Errorf("graph: empty edge list")
	}
	if n <= maxID {
		n = maxID + 1
	}
	b := NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e.u, e.v)
	}
	return b.Build(), nil
}
