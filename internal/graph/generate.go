package graph

import (
	"math/rand"
	"sort"
)

// BarabasiAlbert generates a scale-free graph with n nodes by
// preferential attachment, m edges per incoming node. Real-world graphs
// in the paper's benchmark are scale-free ("based on the scale-free
// property of the real-world graphs", Section III-E), and the heavy-tailed
// subgraph-size distribution of Figure 5 emerges from exactly this degree
// law, so BA graphs are the synthetic stand-in for the OGB datasets.
func BarabasiAlbert(rng *rand.Rand, n, m int) *Graph {
	if m < 1 {
		panic("graph: BA attachment count must be >= 1")
	}
	if n <= m {
		panic("graph: BA needs n > m")
	}
	b := NewBuilder(n)
	// Repeated-endpoint list: picking a uniform element implements
	// degree-proportional (preferential) attachment.
	targets := make([]int32, 0, 2*n*m)
	// Seed clique of m+1 nodes.
	for u := 0; u <= m; u++ {
		for v := u + 1; v <= m; v++ {
			b.AddEdge(u, v)
			targets = append(targets, int32(u), int32(v))
		}
	}
	chosen := make([]int32, 0, m)
	for u := m + 1; u < n; u++ {
		chosen = chosen[:0]
		for len(chosen) < m {
			t := targets[rng.Intn(len(targets))]
			dup := false
			for _, c := range chosen {
				if c == t {
					dup = true
					break
				}
			}
			if !dup {
				chosen = append(chosen, t)
			}
		}
		// Deterministic order: the attachment pool must grow the same
		// way for a given seed regardless of pick order.
		sort.Slice(chosen, func(i, j int) bool { return chosen[i] < chosen[j] })
		for _, t := range chosen {
			b.AddEdge(u, int(t))
			targets = append(targets, int32(u), t)
		}
	}
	return b.Build()
}

// ErdosRenyi generates a G(n, m) uniform random graph with exactly m
// distinct edges (no self-loops). It provides a non-heavy-tailed
// contrast workload for scheduler experiments.
func ErdosRenyi(rng *rand.Rand, n, m int) *Graph {
	maxEdges := n * (n - 1) / 2
	if m > maxEdges {
		panic("graph: too many edges for ER graph")
	}
	b := NewBuilder(n)
	seen := make(map[[2]int32]struct{}, m)
	for len(seen) < m {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		key := [2]int32{int32(u), int32(v)}
		if _, ok := seen[key]; ok {
			continue
		}
		seen[key] = struct{}{}
		b.AddEdge(u, v)
	}
	return b.Build()
}
