package graph

import (
	"math/rand"
	"sort"

	"mlimp/internal/tensor"
)

// Subgraph is the k-hop neighbourhood of a query node, the unit of work
// of subgraph learning (mini-batching). Nodes holds original node ids;
// index 0 is the query node. Adj is the induced normalised adjacency over
// the local node indices.
type Subgraph struct {
	Query int
	Nodes []int32
	Adj   *tensor.CSR
}

// NumNodes returns the number of nodes in the subgraph.
func (s *Subgraph) NumNodes() int { return len(s.Nodes) }

// NNZ returns the number of nonzeros of the induced adjacency, the
// workload-size driver of the SpMM aggregation kernel.
func (s *Subgraph) NNZ() int { return s.Adj.NNZ() }

// Sampler extracts k-hop neighbourhood subgraphs with per-hop fanout
// limits, mirroring PyG's neighbor sampler (Section IV).
type Sampler struct {
	G       *Graph
	Hops    int
	Fanout  int // max neighbours expanded per node per hop; <=0 = all
	rng     *rand.Rand
	normAdj *tensor.CSR // cached normalised adjacency of G
}

// NewSampler builds a sampler over g with the given hop count and fanout.
func NewSampler(rng *rand.Rand, g *Graph, hops, fanout int) *Sampler {
	if hops < 1 {
		panic("graph: sampler needs >= 1 hop")
	}
	return &Sampler{G: g, Hops: hops, Fanout: fanout, rng: rng, normAdj: g.NormalizedAdjacency()}
}

// Sample extracts the k-hop subgraph around query.
func (s *Sampler) Sample(query int) *Subgraph {
	inSet := map[int32]struct{}{int32(query): {}}
	frontier := []int32{int32(query)}
	for hop := 0; hop < s.Hops; hop++ {
		var next []int32
		for _, u := range frontier {
			ns := s.G.Neighbors(int(u))
			picked := ns
			if s.Fanout > 0 && len(ns) > s.Fanout {
				picked = make([]int32, s.Fanout)
				perm := s.rng.Perm(len(ns))[:s.Fanout]
				for i, p := range perm {
					picked[i] = ns[p]
				}
			}
			for _, v := range picked {
				if _, ok := inSet[v]; !ok {
					inSet[v] = struct{}{}
					next = append(next, v)
				}
			}
		}
		frontier = next
		if len(frontier) == 0 {
			break
		}
	}
	nodes := make([]int32, 0, len(inSet))
	for v := range inSet {
		if int(v) != query {
			nodes = append(nodes, v)
		}
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	nodes = append([]int32{int32(query)}, nodes...)
	return &Subgraph{Query: query, Nodes: nodes, Adj: s.induced(nodes)}
}

// induced extracts the normalised adjacency restricted to nodes, remapped
// to local indices.
func (s *Sampler) induced(nodes []int32) *tensor.CSR {
	local := make(map[int32]int32, len(nodes))
	for i, v := range nodes {
		local[v] = int32(i)
	}
	m := tensor.NewCSR(len(nodes), len(nodes))
	for i, u := range nodes {
		cols, vals := s.normAdj.RowEntries(int(u))
		type ent struct {
			c int32
			v int
		}
		row := make([]ent, 0, len(cols))
		for k, c := range cols {
			if lc, ok := local[c]; ok {
				row = append(row, ent{c: lc, v: k})
			}
		}
		sort.Slice(row, func(a, b int) bool { return row[a].c < row[b].c })
		for _, e := range row {
			m.ColIdx = append(m.ColIdx, e.c)
			m.Val = append(m.Val, vals[e.v])
		}
		m.RowPtr[i+1] = int32(len(m.ColIdx))
	}
	return m
}

// SampleBatch samples one subgraph per query.
func (s *Sampler) SampleBatch(queries []int) []*Subgraph {
	out := make([]*Subgraph, len(queries))
	for i, q := range queries {
		out[i] = s.Sample(q)
	}
	return out
}

// Concat merges a batch of subgraphs into one concatenated subgraph over
// the union of their nodes (Section IV: used for highly connected graphs
// such as ogbl-ppa and ogbl-ddi where k-hop neighbourhoods overlap
// heavily). Query is taken from the first subgraph.
func (s *Sampler) Concat(batch []*Subgraph) *Subgraph {
	if len(batch) == 0 {
		panic("graph: Concat of empty batch")
	}
	union := map[int32]struct{}{}
	for _, sg := range batch {
		for _, v := range sg.Nodes {
			union[v] = struct{}{}
		}
	}
	nodes := make([]int32, 0, len(union))
	for v := range union {
		nodes = append(nodes, v)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	return &Subgraph{Query: batch[0].Query, Nodes: nodes, Adj: s.induced(nodes)}
}
