package graph

import (
	"fmt"
	"math/rand"
)

// Dataset describes one benchmark graph of Table I together with the
// synthetic stand-in configuration this repository generates for it. The
// paper evaluates on Open Graph Benchmark datasets; those are external
// data we substitute with scale-free graphs whose size is scaled down by
// ScaleDiv while preserving feature dimensions and relative density
// (DESIGN.md, substitutions table).
type Dataset struct {
	Name       string
	Vertices   int // paper vertex count
	Edges      int // paper edge count
	InputFeat  int // input feature dimension
	HiddenFeat int // hidden feature dimension
	RawSize    string
	MinMemory  string

	// Synthetic stand-in parameters.
	ScaleDiv   int  // paper size divided by this for generation
	Attachment int  // Barabási–Albert edges per node
	Concat     bool // process batches as concatenated subgraphs (Sec. IV)
}

// SynthVertices returns the vertex count of the synthetic stand-in.
func (d Dataset) SynthVertices() int { return d.Vertices / d.ScaleDiv }

// SynthEdges estimates the edge count of the synthetic stand-in.
func (d Dataset) SynthEdges() int { return d.SynthVertices() * d.Attachment }

// Generate builds the synthetic scale-free stand-in graph.
func (d Dataset) Generate(rng *rand.Rand) *Graph {
	return BarabasiAlbert(rng, d.SynthVertices(), d.Attachment)
}

// String renders a Table I row for the dataset.
func (d Dataset) String() string {
	return fmt.Sprintf("%-14s %9d  %d/%d %12d  %6s %6s", d.Name, d.Vertices,
		d.InputFeat, d.HiddenFeat, d.Edges, d.RawSize, d.MinMemory)
}

// Datasets is the Table I catalogue. Attachment counts are chosen so the
// synthetic stand-ins preserve each dataset's average degree (edges ×2 ÷
// vertices ÷ 2 ≈ edges/vertices); ogbl-ddi is additionally density-scaled
// because at full density its 4,267-node graph is nearly complete.
var Datasets = []Dataset{
	{
		Name: "ogbl-collab", Vertices: 235_868, Edges: 1_285_465,
		InputFeat: 128, HiddenFeat: 256, RawSize: "293M", MinMemory: "5GB",
		ScaleDiv: 100, Attachment: 5,
	},
	{
		Name: "ogbl-citation2", Vertices: 2_927_963, Edges: 30_561_187,
		InputFeat: 128, HiddenFeat: 256, RawSize: "3.8G", MinMemory: "40GB",
		ScaleDiv: 100, Attachment: 10,
	},
	{
		Name: "ogbl-ppa", Vertices: 576_289, Edges: 30_326_273,
		InputFeat: 58, HiddenFeat: 256, RawSize: "340M", MinMemory: "2GB",
		ScaleDiv: 100, Attachment: 52, Concat: true,
	},
	{
		Name: "ogbl-ddi", Vertices: 4_267, Edges: 1_334_889,
		InputFeat: 128, HiddenFeat: 256, RawSize: "9.5M", MinMemory: "2GB",
		ScaleDiv: 1, Attachment: 31, Concat: true,
	},
	{
		Name: "ogbn-products", Vertices: 2_449_029, Edges: 61_859_140,
		InputFeat: 100, HiddenFeat: 256, RawSize: "3.4G", MinMemory: "33GB",
		ScaleDiv: 100, Attachment: 25,
	},
}

// DatasetByName returns the catalogue entry with the given name.
func DatasetByName(name string) (Dataset, bool) {
	for _, d := range Datasets {
		if d.Name == name {
			return d, true
		}
	}
	return Dataset{}, false
}
