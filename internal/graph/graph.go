// Package graph provides the graph substrate for the GNN case study:
// CSR-based graphs, scale-free synthetic generators standing in for the
// Open Graph Benchmark datasets of Table I, the k-hop neighbourhood
// sampler used by subgraph learning, and normalised-adjacency
// construction for GCN aggregation.
package graph

import (
	"fmt"
	"math"
	"sort"

	"mlimp/internal/fixed"
	"mlimp/internal/tensor"
)

// Graph is an undirected graph stored as a CSR adjacency structure.
// Neighbour lists are sorted and deduplicated; self-loops are allowed
// (GCN renormalisation adds them explicitly).
type Graph struct {
	N      int
	rowPtr []int32
	adj    []int32
}

// Builder accumulates edges and produces a Graph.
type Builder struct {
	n     int
	edges [][2]int32
}

// NewBuilder returns a builder for a graph with n nodes.
func NewBuilder(n int) *Builder {
	if n <= 0 {
		panic("graph: node count must be positive")
	}
	return &Builder{n: n}
}

// AddEdge records an undirected edge u-v. Out-of-range endpoints panic.
func (b *Builder) AddEdge(u, v int) {
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range n=%d", u, v, b.n))
	}
	b.edges = append(b.edges, [2]int32{int32(u), int32(v)})
}

// Build produces the immutable CSR graph. Parallel edges collapse to one.
func (b *Builder) Build() *Graph {
	// Symmetrise: store each undirected edge in both directions.
	dir := make([][2]int32, 0, 2*len(b.edges))
	for _, e := range b.edges {
		dir = append(dir, e)
		if e[0] != e[1] {
			dir = append(dir, [2]int32{e[1], e[0]})
		}
	}
	sort.Slice(dir, func(i, j int) bool {
		if dir[i][0] != dir[j][0] {
			return dir[i][0] < dir[j][0]
		}
		return dir[i][1] < dir[j][1]
	})
	g := &Graph{N: b.n, rowPtr: make([]int32, b.n+1)}
	row := int32(0)
	for i, e := range dir {
		if i > 0 && e == dir[i-1] {
			continue // dedupe
		}
		for ; row < e[0]; row++ {
			g.rowPtr[row+1] = int32(len(g.adj))
		}
		g.adj = append(g.adj, e[1])
	}
	for ; row < int32(b.n); row++ {
		g.rowPtr[row+1] = int32(len(g.adj))
	}
	return g
}

// Neighbors returns the sorted neighbour list of node u, aliasing
// internal storage.
func (g *Graph) Neighbors(u int) []int32 {
	return g.adj[g.rowPtr[u]:g.rowPtr[u+1]]
}

// Degree returns the number of neighbours of u.
func (g *Graph) Degree(u int) int { return int(g.rowPtr[u+1] - g.rowPtr[u]) }

// NumEdges returns the number of undirected edges (self-loops count once).
func (g *Graph) NumEdges() int {
	selfLoops := 0
	for u := 0; u < g.N; u++ {
		for _, v := range g.Neighbors(u) {
			if int(v) == u {
				selfLoops++
			}
		}
	}
	return (len(g.adj)-selfLoops)/2 + selfLoops
}

// HasEdge reports whether the edge u-v exists. O(log degree(u)).
func (g *Graph) HasEdge(u, v int) bool {
	ns := g.Neighbors(u)
	i := sort.Search(len(ns), func(i int) bool { return ns[i] >= int32(v) })
	return i < len(ns) && ns[i] == int32(v)
}

// String renders node and edge counts.
func (g *Graph) String() string {
	return fmt.Sprintf("Graph(n=%d, m=%d)", g.N, g.NumEdges())
}

// Adjacency returns the binary adjacency matrix in CSR form with
// fixed-point 1.0 entries.
func (g *Graph) Adjacency() *tensor.CSR {
	m := tensor.NewCSR(g.N, g.N)
	one := fixed.FromInt(1)
	for u := 0; u < g.N; u++ {
		for _, v := range g.Neighbors(u) {
			m.ColIdx = append(m.ColIdx, v)
			m.Val = append(m.Val, one)
		}
		m.RowPtr[u+1] = int32(len(m.ColIdx))
	}
	return m
}

// NormalizedAdjacency returns the GCN-normalised adjacency
// D̂^{-1/2} (A+I) D̂^{-1/2} (Kipf & Welling renormalisation trick) in CSR
// form with fixed-point values.
func (g *Graph) NormalizedAdjacency() *tensor.CSR {
	invSqrt := make([]float64, g.N)
	for u := 0; u < g.N; u++ {
		d := g.Degree(u) + 1 // +1 for the added self-loop
		if g.HasEdge(u, u) {
			d-- // the self-loop was already counted in Degree
		}
		invSqrt[u] = 1 / math.Sqrt(float64(d))
	}
	m := tensor.NewCSR(g.N, g.N)
	for u := 0; u < g.N; u++ {
		hasSelf := false
		emit := func(v int32) {
			m.ColIdx = append(m.ColIdx, v)
			m.Val = append(m.Val, fixed.FromFloat(invSqrt[u]*invSqrt[v]))
		}
		for _, v := range g.Neighbors(u) {
			if int(v) == u {
				hasSelf = true
			}
			// Keep columns sorted while inserting the self-loop.
			if !hasSelf && int(v) > u {
				emit(int32(u))
				hasSelf = true
			}
			emit(v)
		}
		if !hasSelf {
			emit(int32(u))
		}
		m.RowPtr[u+1] = int32(len(m.ColIdx))
	}
	return m
}
