package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"mlimp/internal/cluster"
	"mlimp/internal/event"
	"mlimp/internal/isa"
	"mlimp/internal/sched"
	"mlimp/internal/serve"
	"mlimp/internal/workload"
)

func init() {
	register("multitenant", "Extension: multi-tenant fleet serving — tenant x packing sweep with array-isolation audit", multiTenantExp)
}

// Sweep configuration, overridable from the CLI via SetMultiTenant.
var (
	mtTenantCounts = []int{2, 4}
	mtPackings     = sched.PackingNames()
)

// SetMultiTenant narrows the multitenant sweep: tenants lists the tenant
// counts to run (nil keeps the default), packing names one policy or
// "all". Rejects non-positive tenant counts and unknown packing names.
func SetMultiTenant(tenants []int, packing string) error {
	for _, k := range tenants {
		if k < 1 {
			return fmt.Errorf("multitenant: tenant count must be >= 1, got %d", k)
		}
	}
	if packing != "" && packing != "all" {
		if _, ok := sched.PackingByName(packing); !ok {
			return fmt.Errorf("multitenant: unknown packing %q (have %s, all)",
				packing, strings.Join(sched.PackingNames(), ", "))
		}
		mtPackings = []string{packing}
	}
	if len(tenants) > 0 {
		mtTenantCounts = tenants
	}
	return nil
}

// mtSpan is one placed allocation in fleet time: which tenant held which
// array IDs of one node's layer, over which interval.
type mtSpan struct {
	tenant     string
	ids        sched.ArraySet
	start, end event.Time
}

// mtAudit collects completed-batch placements keyed by node/target so
// the experiment can replay the hard isolation invariant across a whole
// serving run: any two time-overlapping assignments from different
// tenants on one layer must hold disjoint array IDs. The observe hook
// runs inside the dispatcher's settlement (single hub goroutine), so no
// locking is needed.
type mtAudit struct {
	spans map[string][]mtSpan
}

func newMTAudit() *mtAudit { return &mtAudit{spans: map[string][]mtSpan{}} }

func (a *mtAudit) observe(info cluster.DoneInfo) {
	if info.Outcome != cluster.OutcomeCompleted {
		return
	}
	for _, as := range info.Result.Assignments {
		key := info.Node + "/" + as.Target.String()
		a.spans[key] = append(a.spans[key], mtSpan{
			tenant: as.Tenant,
			ids:    as.ArrayIDs,
			start:  info.Result.Start + as.Start,
			end:    info.Result.Start + as.End,
		})
	}
}

// violations counts cross-tenant pairs sharing a layer and an instant;
// any pair with intersecting IDs is an isolation breach.
func (a *mtAudit) violations() (checked, bad int) {
	for _, list := range a.spans {
		for i, s := range list {
			for _, u := range list[i+1:] {
				if s.tenant == u.tenant {
					continue
				}
				checked++
				if s.start < u.end && u.start < s.end && s.ids.Intersects(u.ids) {
					bad++
				}
			}
		}
	}
	return checked, bad
}

// auditOffline replays the same invariant over one scheduler result.
func auditOffline(res *sched.Result) (checked, bad int) {
	for i, s := range res.Assignments {
		for _, u := range res.Assignments[i+1:] {
			if s.Target != u.Target || s.Tenant == u.Tenant {
				continue
			}
			checked++
			if s.Start < u.End && u.Start < s.End && s.ArrayIDs.Intersects(u.ArrayIDs) {
				bad++
			}
		}
	}
	return checked, bad
}

// multiTenantServingCell drives the open-loop front end over the
// heterogeneous fleet with the request trace tagged round-robin across
// tenants and every node packing arrays under the given policy.
func multiTenantServingCell(tenants int, packing sched.Packing, workers int) (serve.Summary, *mtAudit) {
	const seed = 701
	sys := sched.NewSystem(isa.Targets...)
	src := serve.NewAppSource(sys)
	rng := rand.New(rand.NewSource(seed))
	arr := serve.Trace(rng, serve.Poisson{MeanGap: 600 * event.Microsecond}, 0, 50*event.Millisecond)
	reqs := src.Requests(rng, arr, 20*event.Millisecond)
	serve.AssignTenants(reqs, tenants)
	cfgs := clusterFleet()
	for i := range cfgs {
		cfgs[i].Packing = packing
	}
	d := cluster.NewShardedDispatcher(cluster.NewPredictedCost(), cluster.Admission{MaxRetries: 2},
		shardCfg(workers), cfgs...)
	d.RecordAssignments()
	audit := newMTAudit()
	fe, err := serve.New(d, serve.Config{
		Requests: reqs, Budget: 500 * event.Microsecond, BatchMax: 4,
		PredictorAdmission: true, BuildJob: src.BuildJob, Seed: seed,
		OnDone: audit.observe,
	})
	if err != nil {
		panic(err)
	}
	return fe.Run(), audit
}

// multiTenantExp sweeps tenant count x packing policy twice: an offline
// mixed-tenant batch on one node (where cross-tenant time overlap is
// dense, so the isolation audit is non-trivial), then the open-loop
// serving front end on the sharded fleet with per-tenant SLO accounting.
// Three invariants are asserted in the artefact: the isolation
// invariant (no array held by two tenants at an overlapping instant),
// per-tenant request conservation, and byte-identical serving artefacts
// across sim worker counts 1/2/4/8.
func multiTenantExp() *Result {
	// Offline: one dense batch through the Global scheduler per packing.
	t1 := &table{header: []string{"tenants", "packing", "makespan(ms)", "fair-share", "pairs", "iso"}}
	isoOK := true
	for _, k := range mtTenantCounts {
		for _, pname := range mtPackings {
			p, _ := sched.PackingByName(pname)
			rng := rand.New(rand.NewSource(700))
			sys := sched.NewSystem(isa.Targets...)
			sys.Packing = p
			jobs := workload.AssignTenants(workload.RandomJobs(rng, 24, 0), k)
			res := sched.NewGlobal().Schedule(sys, jobs)
			busy := map[string]event.Time{}
			for _, a := range res.Assignments {
				busy[a.Tenant] += a.End - a.Start
			}
			var minB, maxB event.Time
			for _, b := range busy {
				if minB == 0 || b < minB {
					minB = b
				}
				if b > maxB {
					maxB = b
				}
			}
			checked, bad := auditOffline(res)
			if bad > 0 {
				isoOK = false
			}
			t1.add(fmt.Sprint(k), pname, f3(res.Makespan.Millis()),
				f2(float64(minB)/float64(maxB)), fmt.Sprint(checked), fmt.Sprint(bad))
		}
	}

	// Serving: the sharded fleet under the same sweep, with per-tenant
	// goodput and the audit replayed over every completed placement.
	t2 := &table{header: []string{"tenants", "packing", "req", "done", "met", "goodput(/s)", "p99(ms)", "fair-ratio", "pairs", "iso"}}
	conserved := true
	for _, k := range mtTenantCounts {
		for _, pname := range mtPackings {
			p, _ := sched.PackingByName(pname)
			s, audit := multiTenantServingCell(k, p, simWorkers)
			if s.Accounted() != s.Requests {
				conserved = false
			}
			var minG, maxG float64
			for _, ts := range s.Tenants {
				if ts.Accounted() != ts.Requests {
					conserved = false
				}
				if minG == 0 || ts.SLO.Goodput < minG {
					minG = ts.SLO.Goodput
				}
				if ts.SLO.Goodput > maxG {
					maxG = ts.SLO.Goodput
				}
			}
			fair := 0.0
			if maxG > 0 {
				fair = minG / maxG
			}
			checked, bad := audit.violations()
			if bad > 0 {
				isoOK = false
			}
			t2.add(fmt.Sprint(k), pname, fmt.Sprint(s.Requests), fmt.Sprint(s.Completed),
				fmt.Sprint(s.SLO.Met), f2(s.SLO.Goodput), f3(s.SLO.Latency.P99),
				f2(fair), fmt.Sprint(checked), fmt.Sprint(bad))
		}
	}

	// Parallel-simulation equivalence: the densest cell must produce a
	// byte-identical artefact at every worker count.
	equiv := true
	kMax := mtTenantCounts[len(mtTenantCounts)-1]
	pEq, _ := sched.PackingByName(mtPackings[len(mtPackings)-1])
	var ref string
	for _, w := range []int{1, 2, 4, 8} {
		s, _ := multiTenantServingCell(kMax, pEq, w)
		if ref == "" {
			ref = s.String()
		} else if s.String() != ref {
			equiv = false
		}
	}

	text := "offline mixed-tenant batch (Global scheduler, one full node):\n" + t1.String() +
		"\nserving sweep (open-loop front end, sharded fleet):\n" + t2.String() +
		fmt.Sprintf("isolation invariant (no array held by two tenants at an overlapping instant): %v\n", isoOK) +
		fmt.Sprintf("per-tenant conservation (completed+shed+dead == requests) in every cell: %v\n", conserved) +
		fmt.Sprintf("serving artefact byte-identical at sim workers 1/2/4/8: %v\n", equiv)
	return &Result{ID: "multitenant", Title: "multi-tenant fleet serving", Text: text}
}
