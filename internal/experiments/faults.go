package experiments

import (
	"fmt"
	"math/rand"

	"mlimp/internal/cluster"
	"mlimp/internal/event"
	"mlimp/internal/fault"
	"mlimp/internal/isa"
	"mlimp/internal/runtime"
	"mlimp/internal/sched"
	"mlimp/internal/serve"
	"mlimp/internal/workload"
)

func init() {
	register("faults", "Extension: fault injection — degraded arrays vs node crashes per policy", faultsExp)
}

// faultScenarios are the three failure regimes the sweep compares on an
// identical workload: a clean fleet, a fleet with big array chunks dark
// (capacity degradation, nodes stay up), and a fleet losing whole nodes
// to crash windows plus transient exec errors.
func faultScenarios() []struct {
	name string
	plan *fault.Plan
} {
	return []struct {
		name string
		plan *fault.Plan
	}{
		{"healthy", nil},
		{"degraded", &fault.Plan{
			Seed: 600,
			ArrayFaults: []fault.ArrayFault{
				{Node: "full", Target: isa.SRAM, Fraction: 0.75,
					At: 5 * event.Millisecond, Recover: 60 * event.Millisecond},
				{Node: "dram-reram", Target: isa.DRAM, Fraction: 0.75,
					At: 10 * event.Millisecond, Recover: 55 * event.Millisecond},
			},
		}},
		{"crashed", &fault.Plan{
			Seed: 600,
			Crashes: []fault.Crash{
				{Node: "full", At: 10 * event.Millisecond, Recover: 45 * event.Millisecond},
				{Node: "dram-reram", At: 30 * event.Millisecond, Recover: 65 * event.Millisecond},
			},
			ExecErrorProb: 0.05,
		}},
	}
}

// faultsExp sweeps failure regime x policy on the heterogeneous fleet
// with the workload held fixed, checking two invariants the chaos tests
// enforce in miniature: every batch is accounted for exactly once
// (completed + shed + dead-lettered == submitted), and graceful
// degradation beats crashing — array faults inflate p99 less than
// losing the same nodes outright.
func faultsExp() *Result {
	const (
		nBatches     = 24
		jobsPerBatch = 3
		seed         = 600
	)
	t := &table{header: []string{"scenario", "policy", "p50(ms)", "p99(ms)", "done", "redisp", "dead", "shed"}}
	p99 := map[string]map[string]float64{}
	conserved, completedAll := true, true
	for _, sc := range faultScenarios() {
		p99[sc.name] = map[string]float64{}
		for _, name := range cluster.PolicyNames() {
			p, _ := cluster.PolicyByName(name)
			d := cluster.NewShardedDispatcher(p, cluster.Admission{MaxRetries: 4},
				shardCfg(simWorkers), clusterFleet()...)
			if err := d.EnableFaults(cluster.FaultConfig{
				Plan:     sc.plan,
				Deadline: 200 * event.Millisecond,
			}); err != nil {
				panic(err)
			}
			rng := rand.New(rand.NewSource(seed))
			gap := 3 * event.Millisecond
			for i, at := range cluster.PoissonArrivals(rng, nBatches, gap) {
				if err := d.Submit(&runtime.Batch{ID: i, Arrival: at,
					Jobs: workload.RandomJobs(rng, jobsPerBatch, i*100)}); err != nil {
					panic(err)
				}
			}
			s := d.Run()
			if s.Accounted() != s.Submitted {
				conserved = false
			}
			if s.Completed == 0 {
				completedAll = false
			}
			t.add(sc.name, name, f3(s.P50LatMs), f3(s.P99LatMs), fmt.Sprint(s.Completed),
				fmt.Sprint(s.Redispatches), fmt.Sprint(s.DeadLettered), fmt.Sprint(s.Shed))
			p99[sc.name][name] = s.P99LatMs
		}
	}
	ordered := true
	for _, name := range cluster.PolicyNames() {
		if !(p99["healthy"][name] <= p99["degraded"][name] &&
			p99["degraded"][name] <= p99["crashed"][name]) {
			ordered = false
		}
	}

	// Goodput under failure: the same failure regimes faced by the
	// open-loop serving front end — per-request SLO accounting instead of
	// batch latency, so outages show up as lost goodput rather than just
	// a fatter tail.
	t2 := &table{header: []string{"scenario", "req", "done", "met", "goodput(/s)", "p99(ms)", "shed", "dead"}}
	goodput := map[string]float64{}
	servConserved := true
	for _, sc := range faultScenarios() {
		s := faultServingCell(sc.plan)
		if s.Accounted() != s.Requests {
			servConserved = false
		}
		t2.add(sc.name, fmt.Sprint(s.Requests), fmt.Sprint(s.Completed),
			fmt.Sprint(s.SLO.Met), f2(s.SLO.Goodput), f3(s.SLO.Latency.P99),
			fmt.Sprint(s.ShedAdmission+s.ShedOverload), fmt.Sprint(s.DeadLettered))
		goodput[sc.name] = s.SLO.Goodput
	}

	text := t.String() +
		fmt.Sprintf("exactly-once accounting (done+dead+shed == submitted) in every run: %v\n", conserved) +
		fmt.Sprintf("p99 ordering healthy <= degraded <= crashed for every policy: %v\n", ordered) +
		fmt.Sprintf("degraded fleets keep completing work: %v\n", completedAll) +
		"\nserving goodput under the same failure regimes (open-loop front end):\n" + t2.String() +
		fmt.Sprintf("request conservation in every serving run: %v\n", servConserved) +
		fmt.Sprintf("healthy goodput >= crashed goodput: %v\n",
			goodput["healthy"] >= goodput["crashed"])
	return &Result{ID: "faults", Title: "fault injection", Text: text}
}

// faultServingCell drives the open-loop serving front end over the
// faulted fleet: Table II app requests under a Poisson stream, with
// predictor-driven admission reacting to the drained capacity through
// the fleet's booked estimates.
func faultServingCell(plan *fault.Plan) serve.Summary {
	const seed = 601
	sys := sched.NewSystem(isa.Targets...)
	src := serve.NewAppSource(sys)
	rng := rand.New(rand.NewSource(seed))
	arr := serve.Trace(rng, serve.Poisson{MeanGap: 400 * event.Microsecond}, 0, 80*event.Millisecond)
	reqs := src.Requests(rng, arr, 20*event.Millisecond)
	d := cluster.NewShardedDispatcher(cluster.NewPredictedCost(), cluster.Admission{MaxRetries: 2},
		shardCfg(simWorkers), clusterFleet()...)
	if err := d.EnableFaults(cluster.FaultConfig{
		Plan:     plan,
		Deadline: 200 * event.Millisecond,
	}); err != nil {
		panic(err)
	}
	fe, err := serve.New(d, serve.Config{
		Requests: reqs, Budget: 500 * event.Microsecond, BatchMax: 4,
		PredictorAdmission: true, BuildJob: src.BuildJob, Seed: seed,
	})
	if err != nil {
		panic(err)
	}
	return fe.Run()
}
