package experiments

import (
	"fmt"
	"math/rand"

	"mlimp/internal/cluster"
	"mlimp/internal/event"
	"mlimp/internal/isa"
	"mlimp/internal/runtime"
	"mlimp/internal/workload"
)

func init() {
	register("cluster", "Extension: multi-node serving fabric — policy sweep over arrival rates", clusterExp)
}

// FleetNodes is the size of every bundled fleet (clusterFleet and its
// derivatives) — the node count CLI topology flags validate against.
const FleetNodes = 4

// clusterFleet is the bundled heterogeneous fleet: one full node, two
// partial layer mixes, and a ReRAM-only straggler whose 20 MHz arrays
// make naive balancing expensive — the configuration the policy
// comparison is judged on.
func clusterFleet() []cluster.NodeConfig {
	return []cluster.NodeConfig{
		{Name: "full", Targets: isa.Targets},
		{Name: "sram-dram", Targets: []isa.Target{isa.SRAM, isa.DRAM}},
		{Name: "dram-reram", Targets: []isa.Target{isa.DRAM, isa.ReRAM}},
		{Name: "reram", Targets: []isa.Target{isa.ReRAM}},
	}
}

// clusterExp sweeps the three load-balancing policies over a Poisson
// arrival-rate sweep on the heterogeneous fleet, with identical
// workload and seed per policy. The fleet-level analogue of the paper's
// scheduler comparison: roundrobin is the naive baseline, predicted-
// cost reuses the Section III-C cost model to route around slow nodes.
func clusterExp() *Result {
	const (
		nBatches     = 32
		jobsPerBatch = 3
		seed         = 500
	)
	t := &table{header: []string{"policy", "gap(ms)", "p50(ms)", "p99(ms)", "shed", "retries", "mean-util"}}
	p99 := map[string]map[float64]float64{}
	var windows string
	for _, gapMs := range []float64{20, 5, 1} {
		for _, name := range cluster.PolicyNames() {
			p, _ := cluster.PolicyByName(name)
			d := cluster.NewShardedDispatcher(p, cluster.Admission{MaxRetries: 4},
				shardCfg(simWorkers), clusterFleet()...)
			rng := rand.New(rand.NewSource(seed))
			gap := event.Time(gapMs * float64(event.Millisecond))
			for i, at := range cluster.PoissonArrivals(rng, nBatches, gap) {
				d.Submit(&runtime.Batch{ID: i, Arrival: at,
					Jobs: workload.RandomJobs(rng, jobsPerBatch, i*100)})
			}
			s := d.Run()
			// One representative window-structure line per artefact: the
			// per-window active-shard histogram of the tightest sweep cell
			// (simulation-time fact — identical at every worker count).
			windows = d.WindowStats().String()
			var util float64
			for _, n := range s.Nodes {
				util += n.Utilization
			}
			util /= float64(len(s.Nodes))
			t.add(name, f2(gapMs), f3(s.P50LatMs), f3(s.P99LatMs),
				fmt.Sprint(s.Shed), fmt.Sprint(s.Retries), f2(util))
			if p99[name] == nil {
				p99[name] = map[float64]float64{}
			}
			p99[name][gapMs] = s.P99LatMs
		}
	}
	ok := true
	for gap, v := range p99["predicted-cost"] {
		if v > p99["roundrobin"][gap] {
			ok = false
		}
	}
	text := t.String() +
		fmt.Sprintf("sim hubs=%d %s\n", simHubs, windows) +
		fmt.Sprintf("predicted-cost p99 <= roundrobin p99 at every arrival rate: %v\n", ok)
	return &Result{ID: "cluster", Title: "multi-node serving fabric", Text: text}
}
