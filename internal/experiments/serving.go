package experiments

import (
	"fmt"
	"math/rand"
	"sync"

	"mlimp/internal/cluster"
	"mlimp/internal/event"
	"mlimp/internal/graph"
	"mlimp/internal/isa"
	"mlimp/internal/predict"
	"mlimp/internal/sched"
	"mlimp/internal/serve"
	"mlimp/internal/tensor"
)

func init() {
	register("serving", "Extension: open-loop serving front end — arrival-rate x admission sweep", servingExp)
}

// servingDataset is a small scale-free stand-in sized so the per-request
// SpMM jobs are real work without dominating the experiment's wall
// clock.
var servingDataset = graph.Dataset{Name: "serving", Vertices: 1200,
	InputFeat: 64, HiddenFeat: 64, ScaleDiv: 1, Attachment: 8}

// servingFleet is the cluster fleet cut down to serving scale: the same
// heterogeneous layer mixes at a fraction of the array capacity, so the
// arrival sweep actually saturates instead of disappearing into the
// full-size fleet's enormous parallelism.
func servingFleet() []cluster.NodeConfig {
	cfgs := clusterFleet()
	for i := range cfgs {
		cfgs[i].Scale = 0.05
	}
	return cfgs
}

// servingPred trains the request cost predictor once per process;
// every sweep cell clones it, so each cell's online retraining starts
// from identical weights and the artefact stays deterministic.
var (
	servingPredOnce sync.Once
	servingPred     *predict.MLP
)

func servingPredictor() *predict.MLP {
	servingPredOnce.Do(func() {
		rng := rand.New(rand.NewSource(701))
		g := servingDataset.Generate(rng)
		s := graph.NewSampler(rng, g, 2, 0)
		var training []*tensor.CSR
		for i := 0; i < 32; i++ {
			training = append(training, s.Sample(rng.Intn(g.N)).Adj)
		}
		servingPred = predict.Train(rng, training, servingDataset.InputFeat,
			predict.TrainConfig{Epochs: 150, LR: 2e-3})
	})
	return servingPred
}

// servingCell runs one sweep cell: an open-loop GNN request stream at
// the given mean gap through the heterogeneous fleet, with or without
// predictor-driven admission. Re-seeding per cell holds the request
// trace fixed, so the admission flag is the only difference between the
// paired cells.
func servingCell(meanGap event.Time, admission bool) serve.Summary {
	const (
		seed    = 700
		horizon = 15 * event.Millisecond
		slo     = 1500 * event.Microsecond
		budget  = 200 * event.Microsecond
	)
	pred := servingPredictor().Clone()
	sys := sched.NewSystem(isa.Targets...)
	rng := rand.New(rand.NewSource(seed))
	src := serve.NewGNNSource(rng, servingDataset, servingDataset.InputFeat, pred, sys)
	arr := serve.Trace(rng, serve.Poisson{MeanGap: meanGap}, 0, horizon)
	reqs := src.Requests(rng, arr, slo)
	d := cluster.NewShardedDispatcher(cluster.NewPredictedCost(), cluster.Admission{MaxRetries: 1},
		shardCfg(simWorkers), servingFleet()...)
	fe, err := serve.New(d, serve.Config{
		Requests: reqs, Budget: budget, BatchMax: 4,
		PredictorAdmission: admission, BuildJob: src.BuildJob,
		Predictor: pred, Mirror: sys,
		RetrainEvery: 8, RetrainEpochs: 10, Seed: seed,
	})
	if err != nil {
		panic(err)
	}
	return fe.Run()
}

// servingExp sweeps arrival rate x admission policy on the open-loop
// front end. The claim under test: at saturation, predictor-driven
// admission converts work the fleet would waste on already-doomed
// requests into goodput — requests completed within their SLO per
// second — beating the predictor-blind baseline that sheds only at the
// dispatcher's admission bound.
func servingExp() *Result {
	t := &table{header: []string{"gap(us)", "admission", "req", "done", "met",
		"goodput(/s)", "p99(ms)", "shed-adm", "shed-ovl", "retrains"}}
	goodput := map[event.Time]map[bool]float64{}
	conserved := true
	gapSweep := []event.Time{60 * event.Microsecond, 20 * event.Microsecond, 8 * event.Microsecond}
	for _, gap := range gapSweep {
		goodput[gap] = map[bool]float64{}
		for _, admission := range []bool{false, true} {
			s := servingCell(gap, admission)
			if s.Accounted() != s.Requests {
				conserved = false
			}
			mode := "blind"
			if admission {
				mode = "predictor"
			}
			t.add(fmt.Sprint(gap/event.Microsecond), mode, fmt.Sprint(s.Requests),
				fmt.Sprint(s.Completed), fmt.Sprint(s.SLO.Met), f2(s.SLO.Goodput),
				f3(s.SLO.Latency.P99), fmt.Sprint(s.ShedAdmission),
				fmt.Sprint(s.ShedOverload), fmt.Sprint(s.Retrains))
			goodput[gap][admission] = s.SLO.Goodput
		}
	}
	sat := gapSweep[len(gapSweep)-1]
	ok := goodput[sat][true] >= goodput[sat][false]
	text := t.String() +
		fmt.Sprintf("request conservation (done+shed+dead-letter == offered) in every cell: %v\n", conserved) +
		fmt.Sprintf("predictor admission goodput >= blind at saturation (gap=%dus): %v\n",
			sat/event.Microsecond, ok)
	return &Result{ID: "serving", Title: "open-loop serving front end", Text: text}
}
