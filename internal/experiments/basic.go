package experiments

import (
	"fmt"
	"math/rand"

	"mlimp/internal/apps"
	"mlimp/internal/dfg"
	"mlimp/internal/graph"
	"mlimp/internal/isa"
	memory "mlimp/internal/mem"
	"mlimp/internal/stats"
	"mlimp/internal/workload"
)

func init() {
	register("fig01", "Energy, latency, and parallelism characteristics of memory technologies", fig01)
	register("fig05", "Node distribution of k-hop subgraphs (ogbl-citation2 stand-in)", fig05)
	register("tab1", "Dataset details", tab1)
	register("tab2", "Data parallel applications and combinations", tab2)
	register("tab3", "MLIMP configurations", tab3)
}

// fig01 regenerates the Figure 1 technology landscape.
func fig01() *Result {
	t := &table{header: []string{"technology", "pJ/bit", "latency(ns)", "cell(F^2)", "parallelism(vs DRAM)"}}
	for _, tech := range memory.Technologies() {
		t.add(tech.Name, f3(tech.EnergyPJPerBit), fmt.Sprintf("%.1f", tech.LatencyNs),
			fmt.Sprintf("%.0f", tech.CellSizeF2), f2(tech.Parallelism()))
	}
	return &Result{ID: "fig01", Title: "memory technology characteristics", Text: t.String()}
}

// fig05 regenerates the subgraph size distribution histogram.
func fig05() *Result {
	rng := rand.New(rand.NewSource(5))
	d, _ := graph.DatasetByName("ogbl-citation2")
	g := d.Generate(rng)
	s := graph.NewSampler(rng, g, 2, 0)
	var sizes []float64
	h := stats.NewHistogram(0, 5000, 25)
	for i := 0; i < 640; i++ { // 10 batches x 64 queries
		n := float64(s.Sample(rng.Intn(g.N)).NumNodes())
		sizes = append(sizes, n)
		h.Add(n)
	}
	box := stats.BoxStats(sizes)
	text := fmt.Sprintf("subgraph node counts over 640 sampled queries\n%s\n%s",
		box.String(), h.Render(50))
	return &Result{ID: "fig05", Title: "subgraph size distribution", Text: text}
}

// tab1 regenerates Table I.
func tab1() *Result {
	t := &table{header: []string{"dataset", "#vertex", "feat", "#edges", "raw", "min.mem", "synth-V", "synth-E"}}
	for _, d := range graph.Datasets {
		t.add(d.Name, fmt.Sprint(d.Vertices), fmt.Sprintf("%d/%d", d.InputFeat, d.HiddenFeat),
			fmt.Sprint(d.Edges), d.RawSize, d.MinMemory,
			fmt.Sprint(d.SynthVertices()), fmt.Sprint(d.SynthEdges()))
	}
	return &Result{ID: "tab1", Title: "dataset details", Text: t.String()}
}

// tab2 regenerates Table II with the measured per-memory preference.
func tab2() *Result {
	sys := newFullSystem()
	t := &table{header: []string{"application", "domain", "elements", "loops", "prefers", "combos"}}
	for _, a := range apps.Suite() {
		var combos []byte
		for _, name := range workload.ComboNames() {
			for _, an := range workload.Combos[name] {
				if an == a.Name {
					combos = append(combos, name[0])
				}
			}
		}
		t.add(a.Name, a.Domain, fmt.Sprint(a.Elements), fmt.Sprint(a.LoopCount),
			workload.PreferredTarget(sys, a).String(), string(combos))
	}
	return &Result{ID: "tab2", Title: "data parallel applications", Text: t.String()}
}

// tab3 regenerates Table III including the MAC throughput columns.
func tab3() *Result {
	t := &table{header: []string{"memory", "array", "#arrays", "MB/mm2", "MHz", "ALUs", "cyc/MAC", "MOPS(2ops)", "MOPS(4ops)"}}
	for _, tgt := range isa.Targets {
		cfg := memory.ConfigFor(tgt)
		m := isa.Models(tgt)
		c1 := m.OpCycles(dfg.OpMul, 1)
		c4 := m.OpCycles(dfg.OpDot, 4)
		t.add(tgt.String(),
			fmt.Sprintf("%dx%dx%db", cfg.ArrayRows, cfg.ArrayCols, cfg.BitsPerCell),
			fmt.Sprint(cfg.NumArrays), fmt.Sprintf("%.1f", cfg.MBPerMM2),
			fmt.Sprintf("%.0f", cfg.FreqMHz), fmt.Sprint(cfg.TotalALUs()),
			fmt.Sprint(c1),
			f3(cfg.FreqMHz/float64(c1)),
			f3(cfg.FreqMHz/float64(c4)))
	}
	return &Result{ID: "tab3", Title: "MLIMP configurations", Text: t.String()}
}
