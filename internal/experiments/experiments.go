// Package experiments reproduces every table and figure of the paper's
// evaluation (Section V) plus the ablations DESIGN.md calls out. Each
// experiment is a deterministic function returning a text artefact; the
// bench harness (bench_test.go) and cmd/mlimp-bench both drive this
// registry, and EXPERIMENTS.md records paper-vs-measured values.
package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"mlimp/internal/gnn"
	"mlimp/internal/graph"
	"mlimp/internal/isa"
	"mlimp/internal/predict"
	"mlimp/internal/sched"
	"mlimp/internal/tensor"
)

// newFullSystem returns a fresh three-layer MLIMP system.
func newFullSystem() *sched.System { return sched.NewSystem(isa.Targets...) }

// Result is one reproduced experiment artefact.
type Result struct {
	ID    string // e.g. "fig11"
	Title string
	Text  string // the regenerated rows/series
}

// String renders the artefact with a header.
func (r *Result) String() string {
	return fmt.Sprintf("=== %s: %s ===\n%s", r.ID, r.Title, r.Text)
}

// Experiment is a runnable reproduction.
type Experiment struct {
	ID    string
	Title string
	Run   func() *Result
}

// registry of all experiments, in presentation order.
var registry []Experiment

func register(id, title string, run func() *Result) {
	registry = append(registry, Experiment{ID: id, Title: title, Run: run})
}

// All returns every experiment in order.
func All() []Experiment { return registry }

// ByID returns one experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// --- shared workload construction (deterministic seeds) ---

// evalBatches/evalBatchSize size the GNN studies: 2 batches of 16
// queries per dataset (the paper uses 10 batches of 64 on the full-size
// datasets; the stand-ins are 100x smaller, see DESIGN.md).
const (
	evalBatches   = 2
	evalBatchSize = 16
)

// buildWorkload constructs the deterministic GNN workload for a dataset.
func buildWorkload(name string, seed int64) *gnn.Workload {
	d, ok := graph.DatasetByName(name)
	if !ok {
		panic("experiments: unknown dataset " + name)
	}
	rng := rand.New(rand.NewSource(seed))
	m := gnn.NewGCN(rng, d.InputFeat, d.HiddenFeat, 3)
	return gnn.BuildWorkload(rng, d, m, evalBatches, evalBatchSize)
}

// trainedPredictor trains the MLP predictor on subgraphs sampled from
// the same mother graph (Section III-E's per-mother-graph training).
func trainedPredictor(w *gnn.Workload, seed int64, f int) *predict.MLP {
	rng := rand.New(rand.NewSource(seed))
	s := graph.NewSampler(rng, w.Graph, 2, 0)
	var training []*tensor.CSR
	for i := 0; i < 96; i++ {
		training = append(training, s.Sample(rng.Intn(w.Graph.N)).Adj)
	}
	return predict.Train(rng, training, f, predict.DefaultTrainConfig())
}

// table is a tiny fixed-width text table builder.
type table struct {
	header []string
	rows   [][]string
}

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	line(t.header)
	for _, r := range t.rows {
		line(r)
	}
	return sb.String()
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }

// sortedKeys returns map keys in sorted order for stable output.
func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
