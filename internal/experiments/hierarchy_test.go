package experiments

import "testing"

// replay runs one registered experiment under the given sim topology
// and worker count, restoring the process-wide knobs afterwards.
func replay(t *testing.T, id string, hubs, workers int) string {
	t.Helper()
	defer SetSimHubs(SimHubs())
	defer SetSimWorkers(SimWorkers())
	SetSimHubs(hubs)
	SetSimWorkers(workers)
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("experiment %q not registered", id)
	}
	res := e.Run()
	if len(res.Text) == 0 {
		t.Fatalf("%s produced an empty artefact", id)
	}
	return res.Text
}

// TestHierarchicalEquivalence replays the fleet experiments — the chaos
// cascade (faults) and the multi-tenant serving sweep — through the
// sub-hub tree and asserts the parsim determinism contract end to end:
// for a fixed topology the artefact is byte-identical at every worker
// count. The flat replay doubles as the regression baseline: hubs=1
// must reproduce exactly what the default single-hub fabric emits.
func TestHierarchicalEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet replays are slow")
	}
	for _, id := range []string{"cluster", "faults", "multitenant"} {
		id := id
		t.Run(id, func(t *testing.T) {
			flat := replay(t, id, 1, 1)
			if def := replay(t, id, SimHubs(), 1); SimHubs() == 1 && def != flat {
				t.Error("hubs=1 replay diverges from the default fabric")
			}
			tree := replay(t, id, 2, 1)
			for _, workers := range []int{2, 4, 8} {
				if got := replay(t, id, 2, workers); got != tree {
					t.Errorf("%s: hubs=2 workers=%d diverges from workers=1:\n%s\nvs\n%s",
						id, workers, got, tree)
				}
			}
			for _, workers := range []int{2, 4, 8} {
				if got := replay(t, id, 1, workers); got != flat {
					t.Errorf("%s: hubs=1 workers=%d diverges from workers=1", id, workers)
				}
			}
		})
	}
}
