package experiments

import (
	"fmt"

	"mlimp/internal/cluster"
	"mlimp/internal/fault"
)

// fabricPlan, when non-nil, adds a "custom" chaos regime to the
// partition experiment's batch-level sweep (mlimp-bench -hub-crash /
// -edge-fault). The serving table skips it: its fleet uses different
// node names, so only the two hubs are addressable from both sweeps.
var fabricPlan *fault.Plan

// partitionEndpoints are the fabric shards a custom edge fault may
// name: the two regional hubs plus the homogeneous batch-sweep nodes.
var partitionEndpoints = map[string]bool{
	"hub0": true, "hub1": true,
	"n0": true, "n1": true, "n2": true, "n3": true,
}

// SetFabricFault parses and validates the CLI's custom fabric-fault
// specs against the partition experiment's two-region topology. Empty
// specs clear the custom scenario. Validation failures carry the named
// fault/cluster errors so callers can exit 2 on bad flags.
func SetFabricFault(hubCrashSpec, edgeFaultSpec string) error {
	hc, err := fault.ParseHubCrashes(hubCrashSpec)
	if err != nil {
		return err
	}
	ef, err := fault.ParseEdgeFaults(edgeFaultSpec)
	if err != nil {
		return err
	}
	if len(hc) == 0 && len(ef) == 0 {
		fabricPlan = nil
		return nil
	}
	p := &fault.Plan{Seed: 900, HubCrashes: hc, EdgeFaults: ef}
	if err := p.Validate(); err != nil {
		return err
	}
	for _, h := range hc {
		if h.Region > 1 {
			return fmt.Errorf("%w: region %d (the partition tree has 2 regions)",
				fault.ErrBadHubRegion, h.Region)
		}
	}
	for _, e := range ef {
		if !partitionEndpoints[e.From] || !partitionEndpoints[e.To] {
			return fmt.Errorf("%w: %s -> %s (have hub0 hub1 n0..n3)",
				cluster.ErrUnknownEdgeEndpoint, e.From, e.To)
		}
	}
	fabricPlan = p
	return nil
}
