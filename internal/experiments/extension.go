package experiments

import (
	"fmt"
	"math/rand"

	"mlimp/internal/apps"
	"mlimp/internal/core"
	"mlimp/internal/dfg"
	"mlimp/internal/event"
	"mlimp/internal/gnn"
	"mlimp/internal/isa"
	"mlimp/internal/predict"
	"mlimp/internal/runtime"
	"mlimp/internal/sched"
)

func init() {
	register("abl-compiler", "Ablation: DFG optimisation + VLIW packing on the app kernels", ablCompiler)
	register("serving-node", "Extension: single-node online serving latency under batch arrivals", servingNode)
	register("quant", "Extension: 16-bit quantisation effect on link prediction (Sec. IV)", quant)
}

// quant measures the link-prediction AUC of the fixed-point GCN against
// its float64 reference — the paper's "<1% accuracy degradation" claim.
func quant() *Result {
	rng := rand.New(rand.NewSource(400))
	w := buildWorkload("ogbl-collab", 401)
	m := gnn.NewGCN(rng, w.Dataset.InputFeat, w.Dataset.HiddenFeat, 1)
	fix, flt := gnn.QuantizationStudy(rng, m, w.Subgraphs()[:8], 40)
	text := fmt.Sprintf("link-prediction AUC: fixed16=%.4f float64=%.4f loss=%.4f (paper: <1%% degradation)\n", fix, flt, flt-fix)
	return &Result{ID: "quant", Title: "quantisation study", Text: text}
}

// ablCompiler measures the frontend compiler's machine-independent
// passes (constant folding, CSE, DCE, algebraic simplification) and the
// VLIW issue packing on every Table II kernel, per target.
func ablCompiler() *Result {
	t := &table{header: []string{"kernel", "target", "serial-cyc", "opt-cyc", "vliw4-cyc", "total-gain"}}
	for _, a := range apps.Suite() {
		opt, err := dfg.Optimize(a.Kernel)
		if err != nil {
			panic(err)
		}
		for _, tgt := range isa.Targets {
			serial, err := isa.Compile(a.Kernel, tgt)
			if err != nil {
				panic(err)
			}
			packed, err := isa.CompileVLIW(opt, tgt, 4)
			if err != nil {
				panic(err)
			}
			t.add(a.Name, tgt.String(), fmt.Sprint(serial.Cycles),
				fmt.Sprint(packed.SerialCycles), fmt.Sprint(packed.Cycles),
				f2(float64(serial.Cycles)/float64(packed.Cycles)))
		}
	}
	return &Result{ID: "abl-compiler", Title: "compiler passes", Text: t.String()}
}

// servingNode runs the GNN kernel stream through one node as an online
// arrival process: one batch of queries every interval, comparing
// schedulers on p50/p99 serving latency — the operator's view of the
// Section III-A runtime. The fleet-level open-loop front end is the
// separate `serving` experiment.
func servingNode() *Result {
	w := buildWorkload("ogbl-collab", 300)
	t := &table{header: []string{"scheduler", "interval(ms)", "p50(ms)", "p99(ms)", "mean-queue(ms)"}}
	for _, sc := range []func() sched.Scheduler{
		func() sched.Scheduler { return sched.LJF{} },
		func() sched.Scheduler { return sched.NewAdaptive() },
		func() sched.Scheduler { return sched.NewGlobal() },
	} {
		for _, intervalMs := range []float64{1.0, 0.2} {
			scheduler := sc()
			sys := core.New(nil, core.WithScheduler(scheduler))
			rt, err := runtime.New(sys.Sys, scheduler)
			if err != nil {
				panic(err) // both dependencies are non-nil here
			}
			// One batch per sampled batch in the workload, arriving at
			// the fixed interval.
			for i := range w.Batches {
				single := &gnn.Workload{
					Dataset: w.Dataset, Model: w.Model, Graph: w.Graph,
					Batches: w.Batches[i : i+1],
				}
				if err := rt.Submit(&runtime.Batch{
					ID:      i,
					Arrival: event.Time(float64(i) * intervalMs * float64(event.Millisecond)),
					Jobs:    single.AllJobs(predict.Oracle{}, sys.Sys),
				}); err != nil {
					panic(err) // sampled batches are never empty
				}
			}
			s := rt.Run()
			t.add(scheduler.Name(), f2(intervalMs), f3(s.P50LatMs), f3(s.P99LatMs), f3(s.MeanQueMs))
		}
	}
	text := t.String() + "tighter arrival intervals queue; balanced schedulers hold p99 latency lower than LJF\n"
	return &Result{ID: "serving-node", Title: "single-node online serving latency", Text: text}
}
