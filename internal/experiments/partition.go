package experiments

import (
	"fmt"
	"math/rand"

	"mlimp/internal/cluster"
	"mlimp/internal/event"
	"mlimp/internal/fault"
	"mlimp/internal/isa"
	"mlimp/internal/runtime"
	"mlimp/internal/sched"
	"mlimp/internal/serve"
	"mlimp/internal/workload"
)

func init() {
	register("partition", "Extension: region-level fault tolerance — hub crashes, lossy beacons, split brain", partitionExp)
}

// The fabric fault window every chaos regime shares: arrivals landing
// inside [faultAt, faultUntil) are the ones the failure actually hits,
// and window goodput is measured over exactly those batches.
const (
	faultAt    = 5 * event.Millisecond
	faultUntil = 40 * event.Millisecond
)

// partitionScenario is one chaos regime of the region-fault sweep. All
// regimes share the base workload; flash additionally slams a burst of
// arrivals into the middle of the fault window.
type partitionScenario struct {
	name  string
	plan  *fault.Plan
	flash bool
}

// partitionScenarios are the four fabric-failure regimes compared
// against the healthy tree: a frozen regional hub (restarted by its
// supervisor), one-way total plus lossy reverse beacon loss, a clean
// hub<->hub split brain, and a flash crowd arriving while a hub is
// down. All faults share the [faultAt, faultUntil) window.
func partitionScenarios() []partitionScenario {
	return []partitionScenario{
		{"healthy", nil, false},
		// Region 0 hosts the injection point and the done relay, so
		// freezing it exercises re-homing on both paths.
		{"hub-crash", &fault.Plan{
			Seed:       900,
			HubCrashes: []fault.HubCrash{{Region: 0, At: faultAt, Recover: faultUntil}},
		}, false},
		{"beacon-loss", &fault.Plan{
			Seed: 900,
			EdgeFaults: []fault.EdgeFault{
				{From: "hub1", To: "hub0", At: faultAt, Until: faultUntil, DropProb: 1},
				{From: "hub0", To: "hub1", At: faultAt, Until: faultUntil, DropProb: 0.5},
			},
		}, false},
		{"split-brain", &fault.Plan{
			Seed: 900,
			EdgeFaults: fault.PartitionEdges(
				[]string{"hub0"}, []string{"hub1"}, faultAt, faultUntil),
		}, false},
		{"flash-crowd", &fault.Plan{
			Seed:       900,
			HubCrashes: []fault.HubCrash{{Region: 1, At: faultAt, Recover: faultUntil}},
		}, true},
	}
}

// sweepScenarios is partitionScenarios plus the CLI's optional custom
// regime (mlimp-bench -hub-crash / -edge-fault).
func sweepScenarios() []partitionScenario {
	scs := partitionScenarios()
	if fabricPlan != nil {
		scs = append(scs, partitionScenario{"custom", fabricPlan, false})
	}
	return scs
}

// partitionCellResult carries one cell's summary plus the observer-side
// invariant data: double-settle count and fault-epoch goodput.
type partitionCellResult struct {
	s       cluster.Summary
	doubles int
	// epochGoodput is completions per second over the fault epoch: the
	// batches arriving before recovery, clocked until the last of them
	// settles. A healthy fabric drains them at service speed; a faulted
	// one parks or re-dispatches some past recovery, stretching the
	// drain — the degradation the whole-run makespan hides.
	epochGoodput float64
}

// partitionFleet is a homogeneous 4-node fleet: with every node able to
// run everything at the same speed, booking choice is worthless, so
// region takeover's widened visibility cannot improve on the healthy
// 2+2 split and the chaos regimes can only slow the drain down.
func partitionFleet() []cluster.NodeConfig {
	return []cluster.NodeConfig{
		{Name: "n0", Targets: isa.Targets},
		{Name: "n1", Targets: isa.Targets},
		{Name: "n2", Targets: isa.Targets},
		{Name: "n3", Targets: isa.Targets},
	}
}

// partitionCell runs one (scenario, policy) cell on a two-region tree
// with a fast beacon grid. The workload is deliberately neutral — a
// homogeneous fleet, identical batches, and a gentle deterministic
// arrival grid with in-flight work at faultAt — so the only thing a
// fault can change is how long the fault-epoch batches take to settle.
func partitionCell(sc partitionScenario, policyName string) partitionCellResult {
	const (
		nBatches     = 12
		flashBatches = 16
		jobsPerBatch = 2
		arrivalGap   = 12 * event.Millisecond
		seed         = 900
	)
	p, _ := cluster.PolicyByName(policyName)
	d := cluster.NewShardedDispatcher(p, cluster.Admission{MaxRetries: 4},
		cluster.ShardConfig{Workers: simWorkers, Hubs: 2, SummaryEvery: 500 * event.Microsecond},
		partitionFleet()...)
	seen := map[int]int{}
	doneAt := map[int]event.Time{}
	arrival := map[int]event.Time{}
	d.OnDone(func(di cluster.DoneInfo) {
		seen[di.Batch.ID]++
		if di.Outcome == cluster.OutcomeCompleted {
			doneAt[di.Batch.ID] = di.At
		}
	})
	if err := d.EnableFaults(cluster.FaultConfig{
		Plan:     sc.plan,
		Deadline: 200 * event.Millisecond,
	}); err != nil {
		panic(err)
	}
	submit := func(id int, at event.Time) {
		// A fresh, identically-seeded rng per batch makes every batch's
		// job mix the same (IDs still distinct via the offset).
		jrng := rand.New(rand.NewSource(seed + 1))
		if err := d.Submit(&runtime.Batch{ID: id, Arrival: at,
			Jobs: workload.RandomJobs(jrng, jobsPerBatch, id*100)}); err != nil {
			panic(err)
		}
		arrival[id] = at
	}
	id := 0
	// Batch 0 arrives at t=0 and is still in flight when the fault
	// window opens — the in-flight work a frozen hub strands.
	for ; id < nBatches; id++ {
		submit(id, event.Time(id)*arrivalGap)
	}
	if sc.flash {
		// The flash crowd lands mid-freeze: the plan-aware spray must
		// carry the whole burst to the surviving region.
		for i := 0; i < flashBatches; i++ {
			submit(id, 10*event.Millisecond)
			id++
		}
	}
	s := d.Run()
	doubles := 0
	for _, c := range seen {
		if c != 1 {
			doubles++
		}
	}
	if len(seen) != s.Submitted {
		doubles += s.Submitted - len(seen)
	}
	inEpoch, last := 0, event.Time(0)
	for bid, at := range arrival {
		if at >= faultUntil {
			continue
		}
		if end, ok := doneAt[bid]; ok {
			inEpoch++
			if end > last {
				last = end
			}
		}
	}
	gp := 0.0
	if sec := last.Seconds(); sec > 0 {
		gp = float64(inEpoch) / sec
	}
	return partitionCellResult{s: s, doubles: doubles, epochGoodput: gp}
}

// partitionServingCell drives the open-loop serving front end over the
// faulted two-region tree. The front end injects through region 0 and
// settles through the done relay, so region 0 is a genuine critical
// path: freezing it, or cutting the hub<->hub edges it relays over,
// shows up directly as SLO misses and lost goodput.
func partitionServingCell(plan *fault.Plan) serve.Summary {
	const seed = 901
	sys := sched.NewSystem(isa.Targets...)
	src := serve.NewAppSource(sys)
	rng := rand.New(rand.NewSource(seed))
	arr := serve.Trace(rng, serve.Poisson{MeanGap: 800 * event.Microsecond}, 0, 40*event.Millisecond)
	reqs := src.Requests(rng, arr, 20*event.Millisecond)
	d := cluster.NewShardedDispatcher(cluster.NewPredictedCost(), cluster.Admission{MaxRetries: 2},
		cluster.ShardConfig{Workers: simWorkers, Hubs: 2, SummaryEvery: 500 * event.Microsecond},
		clusterFleet()...)
	if err := d.EnableFaults(cluster.FaultConfig{
		Plan:     plan,
		Deadline: 100 * event.Millisecond,
	}); err != nil {
		panic(err)
	}
	fe, err := serve.New(d, serve.Config{
		Requests: reqs, Budget: 500 * event.Microsecond, BatchMax: 4,
		BuildJob: src.BuildJob, Seed: seed,
	})
	if err != nil {
		panic(err)
	}
	return fe.Run()
}

// partitionExp sweeps fabric-failure regime x policy on the two-region
// tree and checks the region-fault-tolerance invariants: exactly-once
// settlement under every regime (no batch observed twice, none lost),
// conservation, the takeover/re-home machinery actually engaging, and
// goodput ordering — on the identical workload, the healthy fabric
// serves the fault-window arrivals at least as fast as every faulted
// one.
func partitionExp() *Result {
	t := &table{header: []string{"scenario", "policy", "done", "redisp", "dead", "shed",
		"crash", "takeover", "rehomed", "epoch-gp(/s)", "p99(ms)"}}
	conservedAll, exactlyOnce := true, true
	engaged := map[string]bool{}
	goodput := map[string]map[string]float64{}
	rehomedUnderCrash := false
	for _, sc := range sweepScenarios() {
		goodput[sc.name] = map[string]float64{}
		for _, name := range cluster.PolicyNames() {
			r := partitionCell(sc, name)
			if r.s.Accounted() != r.s.Submitted {
				conservedAll = false
			}
			if r.doubles != 0 {
				exactlyOnce = false
			}
			goodput[sc.name][name] = r.epochGoodput
			if r.s.Takeovers > 0 {
				engaged[sc.name] = true
			}
			if sc.name == "hub-crash" && r.s.Rehomed > 0 {
				rehomedUnderCrash = true
			}
			t.add(sc.name, name, fmt.Sprint(r.s.Completed), fmt.Sprint(r.s.Redispatches),
				fmt.Sprint(r.s.DeadLettered), fmt.Sprint(r.s.Shed),
				fmt.Sprint(r.s.HubCrashes), fmt.Sprint(r.s.Takeovers), fmt.Sprint(r.s.Rehomed),
				f2(r.epochGoodput), f3(r.s.P99LatMs))
		}
	}
	// SLO goodput through the serving front end, whose injection and
	// settle paths pin region 0 as a critical resource: the fabric
	// faults surface as lost goodput on an identical request trace
	// (flash-crowd reuses the trace too — its burst only exists in the
	// batch-level sweep above).
	t2 := &table{header: []string{"scenario", "req", "done", "met", "goodput(/s)", "p99(ms)",
		"shed", "dead", "rehomed"}}
	servRehomed := 0
	servConserved := true
	for _, sc := range partitionScenarios() {
		s := partitionServingCell(sc.plan)
		if s.Accounted() != s.Requests {
			servConserved = false
		}
		t2.add(sc.name, fmt.Sprint(s.Requests), fmt.Sprint(s.Completed),
			fmt.Sprint(s.SLO.Met), f2(s.SLO.Goodput), f3(s.SLO.Latency.P99),
			fmt.Sprint(s.ShedAdmission+s.ShedOverload), fmt.Sprint(s.DeadLettered),
			fmt.Sprint(s.Cluster.Rehomed))
		if sc.name == "hub-crash" {
			servRehomed = s.Cluster.Rehomed
		}
	}
	// Epoch-goodput ordering over the equal-workload regimes
	// (flash-crowd pushes extra batches into the epoch, so it is
	// excluded from the comparison).
	ordered := true
	for _, name := range cluster.PolicyNames() {
		h := goodput["healthy"][name]
		for _, sc := range []string{"hub-crash", "beacon-loss", "split-brain"} {
			if goodput[sc][name] > h {
				ordered = false
			}
		}
	}
	text := t.String() +
		fmt.Sprintf("exactly-once settlement in every run (no double or lost OnDone): %v\n", exactlyOnce) +
		fmt.Sprintf("conservation (done+dead+shed == submitted) in every run: %v\n", conservedAll) +
		fmt.Sprintf("suspicion/takeover engaged under hub-crash, beacon-loss, and split-brain: %v\n",
			engaged["hub-crash"] && engaged["beacon-loss"] && engaged["split-brain"]) +
		fmt.Sprintf("injections/relays re-homed while the region-0 hub was frozen: %v\n", rehomedUnderCrash) +
		fmt.Sprintf("epoch goodput(healthy) >= goodput(faulted) for every policy and regime: %v\n", ordered) +
		"\nserving SLO goodput under the same fabric faults (open-loop front end):\n" + t2.String() +
		fmt.Sprintf("request conservation in every serving run: %v\n", servConserved) +
		fmt.Sprintf("serving front end re-homed injections/relays during the region-0 freeze: %v (rehomed=%d)\n",
			servRehomed > 0, servRehomed) +
		"note: on a backlogged heterogeneous fleet, takeover's widened booking\n" +
		"visibility can lift faulted goodput above the healthy 2+2 split; the\n" +
		"batch sweep above neutralises that with a homogeneous fleet, leaving\n" +
		"only the fault cost visible.\n"
	return &Result{ID: "partition", Title: "region-level fault tolerance", Text: text}
}
