package experiments

import (
	"fmt"
	"math/rand"

	"mlimp/internal/graph"
	"mlimp/internal/isa"
	"mlimp/internal/kernels"
	memory "mlimp/internal/mem"
	"mlimp/internal/predict"
	"mlimp/internal/sched"
	"mlimp/internal/stats"
)

func init() {
	register("abl-reuse", "Ablation: B-stationary vs C-stationary SpMM (Sec. III-D3)", ablReuse)
	register("abl-knee", "Ablation: knee allocation vs argmin allocation", ablKnee)
	register("abl-replica", "Ablation: SpMM replication count sweep", ablReplica)
	register("abl-epsilon", "Ablation: inter-queue adjustment epsilon sweep", ablEpsilon)
}

// ablReuse: the Figure 9 reuse-model comparison on the collab stand-in.
func ablReuse() *Result {
	w := buildWorkload("ogbl-collab", 200)
	var computeRatios, loadRatios []float64
	for _, sg := range w.Subgraphs()[:16] {
		b, c := kernels.ReuseCompare(memory.SRAMConfig, sg.Adj, 128, 16)
		computeRatios = append(computeRatios, float64(c.ComputeCycles)/float64(b.ComputeCycles))
		loadRatios = append(loadRatios, float64(c.LoadBytes)/float64(b.LoadBytes))
	}
	text := fmt.Sprintf("B-stationary advantage over C-stationary (16 collab subgraphs):\n"+
		"  compute: geomean %.1fx (paper: 42x on full-size ogbl-collab)\n"+
		"  traffic: geomean %.1fx (paper reports 4.3x better memory latency)\n",
		stats.GeoMean(computeRatios), stats.GeoMean(loadRatios))
	return &Result{ID: "abl-reuse", Title: "reuse model", Text: text}
}

// ablKnee: knee-based allocation against plain argmin (which
// overprovisions because the curve flattens).
func ablKnee() *Result {
	w := buildWorkload("ogbl-citation2", 201)
	sys := newFullSystem()
	jobs := w.SpMMJobs(predict.Oracle{}, sys)
	t := &table{header: []string{"policy", "mean-alloc(SRAM arrays)", "mean-time-penalty"}}
	var kneeAllocs, minAllocs, penalty []float64
	for _, j := range jobs {
		knee := sys.KneeAlloc(j, isa.SRAM)
		// argmin by scan of the same grid the knee finder uses.
		bestM, bestT := 1, sys.ModelTime(j, isa.SRAM, 1)
		for m := 1; m <= sys.Layers[isa.SRAM].Capacity(); m *= 2 {
			if tt := sys.ModelTime(j, isa.SRAM, m); tt < bestT {
				bestT, bestM = tt, m
			}
		}
		kneeAllocs = append(kneeAllocs, float64(knee))
		minAllocs = append(minAllocs, float64(bestM))
		penalty = append(penalty, float64(sys.ModelTime(j, isa.SRAM, knee))/float64(bestT))
	}
	t.add("knee", f2(stats.Mean(kneeAllocs)), f3(stats.Mean(penalty)))
	t.add("argmin", f2(stats.Mean(minAllocs)), "1.000")
	// The knee's payoff is aggregate: freeing arrays lets more jobs run
	// concurrently, so the throughput advantage on a deep batch is the
	// concurrency gain divided by the per-job penalty.
	concGain := stats.Mean(minAllocs) / stats.Mean(kneeAllocs)
	text := t.String() + fmt.Sprintf(
		"knee uses %.1fx fewer arrays at %.1fx per-job time -> ~%.1fx aggregate throughput\n",
		concGain, stats.Mean(penalty), concGain/stats.Mean(penalty))
	return &Result{ID: "abl-knee", Title: "knee vs argmin allocation", Text: text}
}

// ablReplica: SpMM cycles versus replica count ("having a few replicas
// helps achieve good performance scaling", Sec. III-D3).
func ablReplica() *Result {
	rng := rand.New(rand.NewSource(202))
	d, _ := graph.DatasetByName("ogbl-collab")
	g := d.Generate(rng)
	s := graph.NewSampler(rng, g, 2, 0)
	sg := s.Sample(rng.Intn(g.N))
	cfg := memory.SRAMConfig
	unit := kernels.SpMMUnit(cfg, sg.Adj, 128, true)
	t := &table{header: []string{"replicas", "arrays", "compute-cycles", "speedup"}}
	base := float64(unit.Cycles)
	for r := 1; r <= 32; r *= 2 {
		e := kernels.SpMM(cfg, sg.Adj, 128, unit.RepUnit*r, true)
		t.add(fmt.Sprint(e.Replicas), fmt.Sprint(unit.RepUnit*r),
			fmt.Sprint(e.Cycles), f2(base/float64(e.Cycles)))
	}
	return &Result{ID: "abl-replica", Title: "replication sweep", Text: t.String()}
}

// ablEpsilon: sensitivity of the balanced schedulers to the acceptable
// inter-queue gap.
func ablEpsilon() *Result {
	w := buildWorkload("ogbl-citation2", 203)
	t := &table{header: []string{"epsilon", "global-makespan(ms)"}}
	for _, eps := range []float64{0.01, 0.05, 0.1, 0.25, 0.5} {
		sys := newFullSystem()
		jobs := w.SpMMJobs(predict.Oracle{}, sys)
		g := sched.NewGlobal()
		g.Opts.Epsilon = eps
		res := g.Schedule(sys, jobs)
		t.add(f2(eps), f3(res.Makespan.Millis()))
	}
	return &Result{ID: "abl-epsilon", Title: "epsilon sweep", Text: t.String()}
}
