package experiments

import (
	"context"
	"testing"
)

// TestRunAllMatchesSerial is the determinism acceptance test of the
// parallel runner: every artefact from a parallel sweep must be
// byte-identical to the serial sweep, in the same registry order. Each
// experiment owns its engine and RNGs, so any divergence here means a
// hidden shared-state leak between experiments.
func TestRunAllMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("full double reproduction sweep is slow")
	}
	ctx := context.Background()
	serial, err := RunAll(ctx, 1)
	if err != nil {
		t.Fatalf("serial sweep: %v", err)
	}
	parallel, err := RunAll(ctx, 4)
	if err != nil {
		t.Fatalf("parallel sweep: %v", err)
	}
	if len(serial) != len(parallel) || len(serial) != len(All()) {
		t.Fatalf("sweep sizes: serial=%d parallel=%d registry=%d",
			len(serial), len(parallel), len(All()))
	}
	for i := range serial {
		s, p := serial[i], parallel[i]
		if s.Experiment.ID != All()[i].ID || p.Experiment.ID != All()[i].ID {
			t.Fatalf("order broken at %d: serial=%s parallel=%s registry=%s",
				i, s.Experiment.ID, p.Experiment.ID, All()[i].ID)
		}
		if s.Result == nil || p.Result == nil {
			t.Fatalf("%s: nil result (serial=%v parallel=%v)",
				All()[i].ID, s.Result == nil, p.Result == nil)
		}
		if s.Result.Text != p.Result.Text {
			t.Errorf("%s: parallel artefact differs from serial", All()[i].ID)
		}
		if s.Result.ID != p.Result.ID || s.Result.Title != p.Result.Title {
			t.Errorf("%s: result metadata differs", All()[i].ID)
		}
		if s.Elapsed <= 0 || p.Elapsed <= 0 {
			t.Errorf("%s: non-positive elapsed time", All()[i].ID)
		}
	}
}

// TestRunAllCancelled checks a pre-cancelled context runs nothing, for
// both an explicit worker count and the GOMAXPROCS default.
func TestRunAllCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, parallelism := range []int{2, 0} {
		out, err := RunAll(ctx, parallelism)
		if err == nil {
			t.Fatalf("parallelism=%d: want context error", parallelism)
		}
		for _, o := range out {
			if o.Result != nil {
				t.Fatalf("%s ran despite cancelled context", o.Experiment.ID)
			}
		}
	}
}
