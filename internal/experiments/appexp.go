package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"mlimp/internal/apps"
	"mlimp/internal/event"
	"mlimp/internal/isa"
	"mlimp/internal/sched"
	"mlimp/internal/stats"
	"mlimp/internal/workload"
)

func init() {
	register("fig17", "Data-parallel kernel execution time per memory", fig17)
	register("fig18", "Multiprogramming combinations A-G", fig18)
	register("fig19", "Scheduling approaches on the combinations", fig19)
	register("stress", "Predictor-noise stress test (Sec. V-B3)", stress)
}

// fig17: standalone kernel time of each app on each memory, normalised
// to the minimum.
func fig17() *Result {
	sys := newFullSystem()
	t := &table{header: []string{"application", "SRAM", "DRAM", "ReRAM", "prefers"}}
	for _, a := range apps.Suite() {
		times := map[isa.Target]float64{}
		minT := math.Inf(1)
		for _, tgt := range isa.Targets {
			v := workload.StandaloneTime(sys, a, tgt)
			times[tgt] = v
			if v < minT {
				minT = v
			}
		}
		t.add(a.Name, f2(times[isa.SRAM]/minT), f2(times[isa.DRAM]/minT),
			f2(times[isa.ReRAM]/minT), workload.PreferredTarget(sys, a).String())
	}
	return &Result{ID: "fig17", Title: "per-memory kernel time (normalised to min)", Text: t.String()}
}

// fig18: combos on MLIMP-ALL versus single-layer systems.
func fig18() *Result {
	t := &table{header: []string{"combo", "ALL(ms)", "SRAM-only", "DRAM-only", "ReRAM-only", "best-single/ALL"}}
	var advantages []float64
	for _, name := range workload.ComboNames() {
		jobs := workload.ComboJobs(name)
		all := sched.NewSystem(isa.Targets...)
		mAll := sched.NewGlobal().Schedule(all, jobs).Makespan
		single := map[isa.Target]event.Time{}
		best := event.Time(math.MaxInt64)
		for _, tgt := range isa.Targets {
			s := sched.NewSystem(tgt)
			m := sched.NewGlobal().Schedule(s, jobs).Makespan
			single[tgt] = m
			if m < best {
				best = m
			}
		}
		adv := float64(best) / float64(mAll)
		advantages = append(advantages, adv)
		t.add(name, f3(mAll.Millis()), f2(float64(single[isa.SRAM])/float64(mAll)),
			f2(float64(single[isa.DRAM])/float64(mAll)),
			f2(float64(single[isa.ReRAM])/float64(mAll)), f2(adv))
	}
	text := t.String() + fmt.Sprintf("geomean advantage over the best single layer: %.2fx (paper: 7.1x over single-layer IMP)\n",
		stats.GeoMean(advantages))
	return &Result{ID: "fig18", Title: "multiprogramming", Text: text}
}

// fig19: scheduler comparison on the combos.
func fig19() *Result {
	scheds := []sched.Scheduler{sched.LJF{}, sched.NewAdaptive(), sched.NewGlobal()}
	t := &table{header: []string{"combo", "ljf(ms)", "adaptive(ms)", "global(ms)"}}
	for _, name := range workload.ComboNames() {
		jobs := workload.ComboJobs(name)
		row := []string{name}
		for _, sc := range scheds {
			sys := sched.NewSystem(isa.Targets...)
			row = append(row, f3(sc.Schedule(sys, jobs).Makespan.Millis()))
		}
		t.add(row...)
	}
	return &Result{ID: "fig19", Title: "scheduler comparison on combos", Text: t.String()}
}

// stress: Pareto jobs with increasing Gaussian predictor noise.
func stress() *Result {
	rng := rand.New(rand.NewSource(190))
	sys := newFullSystem()
	t := &table{header: []string{"sigma", "adaptive(ms)", "global(ms)", "adaptive/global"}}
	for _, sigma := range []float64{0, 0.1, 0.2, 0.39, 0.6, 0.8} {
		var sumA, sumG float64
		const trials = 8
		for i := 0; i < trials; i++ {
			jobs := stressBatch(rng, sys, 48, sigma)
			sumA += sched.NewAdaptive().Schedule(sys, jobs).Makespan.Millis()
			sumG += sched.NewGlobal().Schedule(sys, jobs).Makespan.Millis()
		}
		t.add(f2(sigma), f3(sumA/trials), f3(sumG/trials), f3(sumA/sumG))
	}
	text := t.String() + "paper: adaptive overtakes global beyond sigma ~0.39 (batch 64); our adaptive\n" +
		"dispatcher also rebalances at runtime, so the ratio trends toward 1 with noise\n" +
		"rather than crossing hard (see EXPERIMENTS.md).\n"
	return &Result{ID: "stress", Title: "noise stress test", Text: text}
}

// stressBatch builds Pareto-sized jobs with capacity-proportional
// working sets and log-normal estimate noise, keeping the truth.
func stressBatch(rng *rand.Rand, sys *sched.System, n int, sigma float64) []*sched.Job {
	targets := sys.Targets()
	freq := map[isa.Target]float64{}
	for _, t := range targets {
		freq[t] = sys.Layers[t].Cfg.FreqMHz
	}
	jobs := make([]*sched.Job, n)
	for i := range jobs {
		baseMs := math.Pow(rng.Float64(), -1/1.5) * 0.5
		pref := targets[rng.Intn(len(targets))]
		frac := 0.03 + rng.Float64()*0.1
		trueEst := map[isa.Target]sched.Profile{}
		noisy := map[isa.Target]sched.Profile{}
		for _, t := range targets {
			factor := 1 + rng.Float64()*3
			if t == pref {
				factor = 0.5 + rng.Float64()*0.5
			}
			ru := int(frac * float64(sys.Layers[t].Capacity()))
			if ru < 1 {
				ru = 1
			}
			p := sched.Profile{
				UnitCycles: int64(baseMs * factor * freq[t] * 1000),
				RepUnit:    ru, LoadBytes: 1 << 19, Beta: sched.DefaultBeta,
			}
			trueEst[t] = p
			q := p
			if sigma > 0 {
				q.UnitCycles = int64(float64(p.UnitCycles) * math.Exp(rng.NormFloat64()*sigma))
				if q.UnitCycles < 1 {
					q.UnitCycles = 1
				}
			}
			noisy[t] = q
		}
		j := &sched.Job{ID: i, Name: "stress", Kind: "stress", Est: noisy}
		j.TrueTime = func(s *sched.System, t isa.Target, arrays int) event.Time {
			p, ok := trueEst[t]
			if !ok {
				return math.MaxInt64
			}
			exact := &sched.Job{ID: -1, Est: map[isa.Target]sched.Profile{t: p}}
			return s.ModelTime(exact, t, arrays)
		}
		jobs[i] = j
	}
	return jobs
}
