package experiments

import "mlimp/internal/cluster"

// simWorkers is how many event-engine shards the fleet experiments
// (cluster, faults) advance concurrently through the conservative
// parallel driver (event/parsim). The default of 1 is the serial
// fallback: the same windowed mailbox semantics executed on one
// goroutine. Artefacts are byte-identical at every value — the parsim
// determinism contract — so this knob trades nothing but wall clock.
var simWorkers = 1

// SetSimWorkers sets the shard worker count for subsequent experiment
// runs (cmd/mlimp-bench -sim-j, mlimp-serve -j). Call before running
// experiments; values below 1 clamp to 1.
func SetSimWorkers(n int) {
	if n < 1 {
		n = 1
	}
	simWorkers = n
}

// SimWorkers returns the current shard worker count.
func SimWorkers() int { return simWorkers }

// simHubs is how many regional sub-hubs the fleet experiments split
// their dispatch tree into (cluster.ShardConfig.Hubs). The default of 1
// is the flat single-hub fabric; higher values route every experiment
// through the hierarchical tree (belief beacons, overflow stealing).
// Routing — and with it the artefact — depends on the topology, but for
// a fixed topology artefacts stay byte-identical at every worker count.
var simHubs = 1

// SetSimHubs sets the sub-hub count for subsequent experiment runs
// (cmd/mlimp-bench -hubs). The bundled fleets have 4 nodes, so valid
// values are 1, 2, and 4 — validate with cluster.ValidateTopology
// before calling. Values below 1 clamp to 1.
func SetSimHubs(n int) {
	if n < 1 {
		n = 1
	}
	simHubs = n
}

// SimHubs returns the current sub-hub count.
func SimHubs() int { return simHubs }

// shardCfg is the ShardConfig every fleet experiment runs under: the
// process-wide worker count and hub topology.
func shardCfg(workers int) cluster.ShardConfig {
	return cluster.ShardConfig{Workers: workers, Hubs: simHubs}
}
