package experiments

// simWorkers is how many event-engine shards the fleet experiments
// (cluster, faults) advance concurrently through the conservative
// parallel driver (event/parsim). The default of 1 is the serial
// fallback: the same windowed mailbox semantics executed on one
// goroutine. Artefacts are byte-identical at every value — the parsim
// determinism contract — so this knob trades nothing but wall clock.
var simWorkers = 1

// SetSimWorkers sets the shard worker count for subsequent experiment
// runs (cmd/mlimp-bench -sim-j, mlimp-serve -j). Call before running
// experiments; values below 1 clamp to 1.
func SetSimWorkers(n int) {
	if n < 1 {
		n = 1
	}
	simWorkers = n
}

// SimWorkers returns the current shard worker count.
func SimWorkers() int { return simWorkers }
