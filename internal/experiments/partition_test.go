package experiments

import (
	"strings"
	"testing"
)

// TestPartitionEquivalence replays the region-fault-tolerance sweep at
// every sim worker count and asserts the artefact — chaos tables,
// exactly-once and conservation verdicts, goodput ordering — is
// byte-identical. The experiment pins Hubs=2 internally, so only the
// worker knob varies.
func TestPartitionEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet replays are slow")
	}
	want := replay(t, "partition", SimHubs(), 1)
	for _, line := range []string{
		"exactly-once settlement in every run (no double or lost OnDone): true",
		"conservation (done+dead+shed == submitted) in every run: true",
		"suspicion/takeover engaged under hub-crash, beacon-loss, and split-brain: true",
		"injections/relays re-homed while the region-0 hub was frozen: true",
		"epoch goodput(healthy) >= goodput(faulted) for every policy and regime: true",
		"request conservation in every serving run: true",
	} {
		if !strings.Contains(want, line) {
			t.Errorf("artefact missing invariant line %q:\n%s", line, want)
		}
	}
	for _, workers := range []int{2, 4, 8} {
		if got := replay(t, "partition", SimHubs(), workers); got != want {
			t.Errorf("partition: workers=%d diverges from workers=1:\n%s\nvs\n%s",
				workers, got, want)
		}
	}
}
