package experiments

import (
	"context"
	"runtime"
	"sync"
	"time"
)

// Timed is one experiment's outcome from a RunAll sweep: the artefact
// plus how long regenerating it took on the wall clock.
type Timed struct {
	Experiment Experiment
	Result     *Result
	Elapsed    time.Duration
}

// RunAll regenerates every registered experiment through a bounded
// worker pool and returns the outcomes in registry (presentation)
// order, regardless of completion order.
//
// Each experiment is a pure deterministic function owning its own event
// engine and seeded RNGs, so running them concurrently changes nothing
// about the artefacts: RunAll(ctx, n) for any n >= 1 produces results
// byte-identical to the serial sweep (asserted by
// TestRunAllMatchesSerial). parallelism < 1 means GOMAXPROCS.
//
// ctx cancellation stops the sweep early: experiments not yet started
// are skipped (their Timed.Result stays nil) and the context error is
// returned once in-flight experiments drain. Individual experiments are
// not interruptible mid-run.
func RunAll(ctx context.Context, parallelism int) ([]Timed, error) {
	if parallelism < 1 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	all := All()
	out := make([]Timed, len(all))
	for i, e := range all {
		out[i].Experiment = e
	}
	sem := make(chan struct{}, parallelism)
	var wg sync.WaitGroup
	var err error
	for i := range all {
		// Checked before the select too: with a free worker slot both
		// select cases are ready and the choice would be random, but a
		// cancelled sweep must never start another experiment.
		if err = ctx.Err(); err == nil {
			select {
			case sem <- struct{}{}:
			case <-ctx.Done():
				err = ctx.Err()
			}
		}
		if err != nil {
			break
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			t0 := time.Now()
			out[i].Result = all[i].Run()
			out[i].Elapsed = time.Since(t0)
		}(i)
	}
	wg.Wait()
	return out, err
}
