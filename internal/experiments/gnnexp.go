package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"mlimp/internal/baseline"
	"mlimp/internal/core"
	"mlimp/internal/graph"
	"mlimp/internal/isa"
	"mlimp/internal/kernels"
	memory "mlimp/internal/mem"
	"mlimp/internal/predict"
	"mlimp/internal/sched"
	"mlimp/internal/stats"
	"mlimp/internal/tensor"
)

func init() {
	register("fig10", "Naive nnz/H_w classification of memory preference", fig10)
	register("fig11", "Kernel speedup of MLIMP over the GPU baseline", fig11)
	register("fig12", "Execution-time breakdown per device mix (citation2 stand-in)", fig12)
	register("fig13", "Application time per input graph, normalised to GPU", fig13)
	register("fig14", "Energy consumption of GNN applications", fig14)
	register("fig15", "Scheduler x predictor SpMM execution time", fig15)
	register("fig16", "Fraction of oracle throughput", fig16)
	register("predacc", "Performance predictor accuracy (Sec. III-E)", predAcc)
	register("scalefit", "Scale-free model fit of t(x,m) (Sec. III-C3)", scaleFit)
}

// gnnDatasets are the Table I stand-ins used for the application-level
// figures.
var gnnDatasets = []string{"ogbl-collab", "ogbl-citation2", "ogbl-ppa", "ogbl-ddi", "ogbn-products"}

// fig10: the naive single-metric classifier.
func fig10() *Result {
	// 1-hop neighbourhood jobs span the tiny-to-large range where the
	// SRAM/ReRAM preference actually flips (the borderline regime the
	// naive metric struggles with).
	w := buildWorkload("ogbl-collab", 10)
	rng := rand.New(rand.NewSource(10))
	s := graph.NewSampler(rng, w.Graph, 1, 0)
	var train, test []*tensor.CSR
	for i := 0; i < 64; i++ {
		train = append(train, s.Sample(rng.Intn(w.Graph.N)).Adj)
	}
	for i := 0; i < 48; i++ {
		test = append(test, s.Sample(rng.Intn(w.Graph.N)).Adj)
	}
	const f = 128
	naive, trainAcc := predict.FitNaive(train, f)
	testAcc := predict.NaiveAccuracy(naive, test, f)
	// Scatter of metric vs preference ratio for the test jobs.
	t := &table{header: []string{"nnz/H_128", "tSRAM/tReRAM", "naive-says", "truth"}}
	o := predict.Oracle{}
	for _, adj := range test[:12] {
		tS := float64(o.UnitCycles(adj, f, isa.SRAM)) / memory.SRAMConfig.FreqMHz
		tR := float64(o.UnitCycles(adj, f, isa.ReRAM)) / memory.ReRAMConfig.FreqMHz
		says, truth := "SRAM", "SRAM"
		if naive.PrefersReRAM(adj) {
			says = "ReRAM"
		}
		if tR < tS {
			truth = "ReRAM"
		}
		t.add(f2(predict.Metric(adj)), f2(tS/tR), says, truth)
	}
	text := fmt.Sprintf("threshold=%.2f train-accuracy=%.2f test-accuracy=%.2f\n%s",
		naive.Threshold, trainAcc, testAcc, t.String())
	return &Result{ID: "fig10", Title: "naive classifier", Text: text}
}

// fig11: per-kernel speedup box chart vs GPU.
func fig11() *Result {
	w := buildWorkload("ogbl-citation2", 11)
	sys := core.New(nil)
	rep := sys.Run(w.AllJobs(predict.Oracle{}, sys.Sys))
	sp := core.KernelSpeedups(rep, baseline.TitanXP(), w)
	t := &table{header: []string{"kernel", "n", "min", "q1", "median", "q3", "max", "mean"}}
	for _, k := range sortedKeys(sp) {
		b := stats.BoxStats(sp[k])
		t.add(k, fmt.Sprint(b.N), f2(b.Min), f2(b.Q1), f2(b.Median), f2(b.Q3), f2(b.Max), f2(b.Mean))
	}
	return &Result{ID: "fig11", Title: "kernel speedups vs GPU", Text: t.String()}
}

// fig12: execution-time breakdown for different device mixes.
func fig12() *Result {
	w := buildWorkload("ogbl-citation2", 12)
	mixes := []struct {
		name    string
		targets []isa.Target
	}{
		{"SRAM", []isa.Target{isa.SRAM}},
		{"DRAM", []isa.Target{isa.DRAM}},
		{"ReRAM", []isa.Target{isa.ReRAM}},
		{"SRAM+ReRAM", []isa.Target{isa.SRAM, isa.ReRAM}},
		{"All", isa.Targets},
	}
	// Kernel columns are aggregate busy time (jobs run in parallel, so
	// they exceed the total for MLIMP configurations).
	t := &table{header: []string{"config", "total(ms)", "spmm-busy", "gemm-busy", "vadd-busy", "memcpy"}}
	for _, dev := range []baseline.Device{baseline.XeonE5(), baseline.TitanXP()} {
		rep := core.Baseline(dev, w)
		t.add(dev.Name, f3(rep.Total.Millis()), f3(rep.KindTime["spmm"].Millis()),
			f3(rep.KindTime["gemm"].Millis()), f3(rep.KindTime["vadd"].Millis()),
			f3(rep.KindTime["memcpy"].Millis()))
	}
	for _, mix := range mixes {
		sys := core.New(mix.targets)
		rep := sys.Run(w.AllJobs(predict.Oracle{}, sys.Sys))
		t.add(mix.name, f3(rep.Makespan().Millis()), f3(rep.KindTime["spmm"].Millis()),
			f3(rep.KindTime["gemm"].Millis()), f3(rep.KindTime["vadd"].Millis()), "0")
	}
	return &Result{ID: "fig12", Title: "device-mix breakdown", Text: t.String()}
}

// fig13: per-dataset application time normalised to the GPU baseline.
func fig13() *Result {
	t := &table{header: []string{"dataset", "mlimp(ms)", "gpu(ms)", "cpu(ms)", "speedup-vs-gpu", "speedup-vs-cpu"}}
	var gpuSpeedups, cpuSpeedups []float64
	for i, name := range gnnDatasets {
		w := buildWorkload(name, int64(130+i))
		sys := core.New(nil)
		rep := sys.Run(w.AllJobs(predict.Oracle{}, sys.Sys))
		gpu := core.Baseline(baseline.TitanXP(), w)
		cpu := core.Baseline(baseline.XeonE5(), w)
		gs := float64(gpu.Total) / float64(rep.Makespan())
		cs := float64(cpu.Total) / float64(rep.Makespan())
		gpuSpeedups = append(gpuSpeedups, gs)
		cpuSpeedups = append(cpuSpeedups, cs)
		t.add(name, f3(rep.Makespan().Millis()), f3(gpu.Total.Millis()), f3(cpu.Total.Millis()), f2(gs), f2(cs))
	}
	text := t.String() + fmt.Sprintf("geomean speedup: %.2fx vs GPU, %.1fx vs CPU (paper: 4.80x, 241x)\n",
		stats.GeoMean(gpuSpeedups), stats.GeoMean(cpuSpeedups))
	return &Result{ID: "fig13", Title: "application time per graph", Text: text}
}

// fig14: energy per dataset.
func fig14() *Result {
	t := &table{header: []string{"dataset", "mlimp(J)", "gpu(J)", "cpu(J)", "gpu/mlimp"}}
	var ratios []float64
	for i, name := range gnnDatasets {
		w := buildWorkload(name, int64(140+i))
		sys := core.New(nil)
		rep := sys.Run(w.AllJobs(predict.Oracle{}, sys.Sys))
		gpu := core.Baseline(baseline.TitanXP(), w)
		cpu := core.Baseline(baseline.XeonE5(), w)
		r := gpu.EnergyJ / rep.Energy.TotalJ()
		ratios = append(ratios, r)
		t.add(name, f3(rep.Energy.TotalJ()), f3(gpu.EnergyJ), f3(cpu.EnergyJ), f2(r))
	}
	text := t.String() + fmt.Sprintf("geomean energy advantage vs GPU: %.2fx (paper: 5.02x)\n", stats.GeoMean(ratios))
	return &Result{ID: "fig14", Title: "energy consumption", Text: text}
}

// fig15: scheduler x predictor SpMM execution time.
func fig15() *Result {
	w := buildWorkload("ogbl-citation2", 15)
	mlp := trainedPredictor(w, 151, 128)
	preds := []struct {
		name string
		p    predict.Predictor
	}{{"oracle", predict.Oracle{}}, {"mlp", mlp}}
	scheds := []sched.Scheduler{sched.LJF{}, sched.NewAdaptive(), sched.NewGlobal()}
	t := &table{header: []string{"scheduler", "predictor", "spmm-makespan(ms)"}}
	base := map[string]float64{}
	for _, pr := range preds {
		for _, sc := range scheds {
			sys := core.New(nil, core.WithScheduler(sc))
			jobs := w.SpMMJobs(pr.p, sys.Sys)
			rep := sys.Run(jobs)
			t.add(sc.Name(), pr.name, f3(rep.Makespan().Millis()))
			base[sc.Name()+"/"+pr.name] = rep.Makespan().Millis()
		}
	}
	gap := (base["global/mlp"] - base["global/oracle"]) / base["global/oracle"] * 100
	text := t.String() + fmt.Sprintf("global mlp-vs-oracle gap: %+.1f%% (paper: <1%%)\n", gap)
	return &Result{ID: "fig15", Title: "scheduler/predictor study", Text: text}
}

// fig16: fraction of the oracle throughput per dataset.
func fig16() *Result {
	t := &table{header: []string{"dataset", "mlimp-frac", "naive-frac"}}
	var mlimpFracs, naiveFracs []float64
	for i, name := range gnnDatasets {
		w := buildWorkload(name, int64(160+i))
		// The oracle "sum of per-layer throughputs" is only an upper
		// bound for a homogeneous job stream, so Figure 16 uses the
		// SpMM jobs of the scheduler study (as the paper's Section
		// V-B3 does).
		sys := core.New(nil)
		jobs := w.SpMMJobs(predict.Oracle{}, sys.Sys)
		rep := sys.Run(jobs)
		frac := sys.OracleFraction(jobs, rep)

		naive := core.New(nil, core.WithScheduler(sched.LJF{Strict: true}))
		nrep := naive.Run(jobs)
		nfrac := naive.OracleFraction(jobs, nrep)
		mlimpFracs = append(mlimpFracs, frac)
		naiveFracs = append(naiveFracs, nfrac)
		t.add(name, f2(frac), f2(nfrac))
	}
	text := t.String() + fmt.Sprintf("mean: mlimp %.0f%%, naive %.0f%% of oracle (paper: 77%%, 34%%)\n",
		100*stats.Mean(mlimpFracs), 100*stats.Mean(naiveFracs))
	return &Result{ID: "fig16", Title: "oracle throughput fraction", Text: text}
}

// predAcc: predictor accuracy per memory.
func predAcc() *Result {
	w := buildWorkload("ogbl-citation2", 170)
	mlp := trainedPredictor(w, 171, 128)
	rng := rand.New(rand.NewSource(172))
	s := graph.NewSampler(rng, w.Graph, 2, 0)
	var test []*tensor.CSR
	for i := 0; i < 48; i++ {
		test = append(test, s.Sample(rng.Intn(w.Graph.N)).Adj)
	}
	t := &table{header: []string{"memory", "R2", "RMSE(frac of mean)"}}
	for _, tgt := range isa.Targets {
		acc := predict.Evaluate(mlp, test, 128, tgt)
		t.add(tgt.String(), f3(acc.R2), f3(acc.RMSEFrac))
	}
	text := t.String() + "paper: R2 = 0.995, RMSE = 22% of mean cycles (citation2, SRAM)\n"
	return &Result{ID: "predacc", Title: "predictor accuracy", Text: text}
}

// scaleFit: how well the scale-free power law fits the true t(x,m).
func scaleFit() *Result {
	w := buildWorkload("ogbl-collab", 180)
	var r2s []float64
	for _, sg := range w.Subgraphs()[:16] {
		cfg := memory.SRAMConfig
		unit := kernels.SpMMUnit(cfg, sg.Adj, 128, true)
		if unit.RepUnit < 1 {
			continue
		}
		var logm, logt []float64
		// Fit over the region the scheduler actually explores: a few
		// replicas around the rep unit ("having a few replicas helps").
		for m := unit.RepUnit; m <= unit.RepUnit*8; m *= 2 {
			e := kernels.SpMM(cfg, sg.Adj, 128, m, true)
			logm = append(logm, math.Log(float64(m)))
			logt = append(logt, math.Log(float64(e.Cycles)*float64(e.Iterations)+1))
		}
		_, slope := stats.LinearFit(logm, logt)
		pred := make([]float64, len(logm))
		a, b := stats.LinearFit(logm, logt)
		for i, x := range logm {
			pred[i] = a + b*x
		}
		r2 := stats.R2(logt, pred)
		if !math.IsNaN(r2) {
			r2s = append(r2s, r2)
		}
		_ = slope
	}
	text := fmt.Sprintf("median log-log R2 of power-law fit over 16 SpMM jobs: %.3f (paper: 0.998)\n",
		stats.Median(r2s))
	return &Result{ID: "scalefit", Title: "scale-free model fit", Text: text}
}
