package experiments

import (
	"strings"
	"testing"
)

// TestReplicationEquivalence replays the replication experiment (CI
// runs it under -race) and asserts its three contracts: replication
// never slows a schedule down, every precision point passes the
// accuracy guard, and the replicating serving fleet produces
// byte-identical artefacts at sim workers 1/2/4/8.
func TestReplicationEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet replays are slow")
	}
	e, ok := ByID("replication")
	if !ok {
		t.Fatal("replication experiment not registered")
	}
	text := e.Run().Text
	for _, line := range []string{
		"replication never slows a schedule down: true",
		"serving artefact byte-identical at sim workers 1/2/4/8: true",
	} {
		if !strings.Contains(text, line) {
			t.Errorf("artefact missing invariant line %q:\n%s", line, text)
		}
	}
	// The guard column and both invariant booleans must never read
	// false anywhere in the artefact.
	if strings.Contains(text, "false") {
		t.Errorf("artefact contains a failed invariant:\n%s", text)
	}
}
