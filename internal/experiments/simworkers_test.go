package experiments

import "testing"

// TestFleetExperimentsSerialParallelIdentical is the fleet determinism
// acceptance test: the experiments that drive the conservative-parallel
// fleet simulation — the cluster policy sweep, the fault sweep, the
// open-loop serving front end, and the multi-tenant sweep — must
// produce byte-identical artefacts at 1 and 4 shard workers. Run with
// -race this doubles as the data-race check on the window workers.
func TestFleetExperimentsSerialParallelIdentical(t *testing.T) {
	defer SetSimWorkers(SimWorkers())
	for _, id := range []string{"cluster", "faults", "serving", "multitenant"} {
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("experiment %q not registered", id)
		}
		SetSimWorkers(1)
		serial := e.Run().Text
		SetSimWorkers(4)
		parallel := e.Run().Text
		if serial != parallel {
			t.Errorf("%s: parallel artefact diverges from serial:\n--- j=1\n%s\n--- j=4\n%s",
				id, serial, parallel)
		}
	}
}

func TestSetSimWorkersClamps(t *testing.T) {
	defer SetSimWorkers(1)
	SetSimWorkers(-3)
	if got := SimWorkers(); got != 1 {
		t.Errorf("SimWorkers after SetSimWorkers(-3) = %d, want 1", got)
	}
	SetSimWorkers(6)
	if got := SimWorkers(); got != 6 {
		t.Errorf("SimWorkers = %d, want 6", got)
	}
}
