package experiments

import (
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	// Every table and figure of the evaluation must be present, plus
	// the ablations DESIGN.md commits to.
	want := []string{
		"fig01", "fig05", "fig10", "fig11", "fig12", "fig13", "fig14",
		"fig15", "fig16", "fig17", "fig18", "fig19",
		"tab1", "tab2", "tab3",
		"predacc", "scalefit", "stress",
		"abl-reuse", "abl-knee", "abl-replica", "abl-epsilon",
		"abl-compiler", "serving", "serving-node", "quant", "cluster", "faults",
		"multitenant", "partition", "replication",
	}
	have := map[string]bool{}
	for _, e := range All() {
		have[e.ID] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %s missing from registry", id)
		}
	}
	if len(All()) != len(want) {
		t.Errorf("registry has %d experiments, manifest has %d", len(All()), len(want))
	}
	if _, ok := ByID("fig11"); !ok {
		t.Error("ByID failed")
	}
	if _, ok := ByID("nope"); ok {
		t.Error("bogus ByID should fail")
	}
}

// TestEveryExperimentRuns executes the full reproduction suite once and
// sanity-checks each artefact. This is the repository's end-to-end test.
func TestEveryExperimentRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("full reproduction suite is slow")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			res := e.Run()
			if res.ID != e.ID {
				t.Errorf("result id %q != %q", res.ID, e.ID)
			}
			if len(strings.TrimSpace(res.Text)) == 0 {
				t.Error("empty artefact")
			}
			if !strings.Contains(res.String(), e.ID) {
				t.Error("render missing id")
			}
			t.Log("\n" + res.String())
		})
	}
}

func TestTableRender(t *testing.T) {
	tb := &table{header: []string{"a", "bbbb"}}
	tb.add("xx", "y")
	out := tb.String()
	if !strings.Contains(out, "a   bbbb") || !strings.Contains(out, "xx  y") {
		t.Errorf("table render:\n%s", out)
	}
}

func TestBuildWorkloadPanicsOnUnknownDataset(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	buildWorkload("nope", 1)
}
