package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"mlimp/internal/cluster"
	"mlimp/internal/energy"
	"mlimp/internal/event"
	"mlimp/internal/fixed"
	"mlimp/internal/gnn"
	"mlimp/internal/isa"
	"mlimp/internal/predict"
	"mlimp/internal/sched"
	"mlimp/internal/serve"
)

func init() {
	register("replication",
		"Extension: layer replication + mixed precision — throughput-vs-accuracy Pareto front",
		replicationExp)
}

// repFormatCfg is one per-layer precision candidate of the sweep.
type repFormatCfg struct {
	name    string
	formats []fixed.Format
}

// Sweep configuration, overridable from the CLI via SetReplication.
var (
	repPolicies = sched.ReplicationNames()
	repFormats  = []repFormatCfg{
		{"q8.8", []fixed.Format{fixed.W16}},
		{"q6.6", []fixed.Format{fixed.W12}},
		{"q4.4", []fixed.Format{fixed.W8}},
		// Narrow only the first (aggregation-heavy) layer, keep the rest
		// full width — the mixed front the per-layer machinery exists for.
		{"q4.4-front", []fixed.Format{fixed.W8, fixed.W16, fixed.W16}},
	}
)

// SetReplication narrows the replication sweep: policy names one
// replication policy or "all"; qformat names one operand width ("16",
// "12", "8", or "qI.F") or "all". Rejects unknown names with the named
// errors of the underlying resolvers.
func SetReplication(policy, qformat string) error {
	if policy != "" && policy != "all" {
		if _, ok := sched.ReplicationByName(policy); !ok {
			return fmt.Errorf("replication: unknown policy %q (have %s, all)",
				policy, strings.Join(sched.ReplicationNames(), ", "))
		}
		repPolicies = []string{policy}
	}
	if qformat != "" && qformat != "all" {
		f, err := fixed.ParseFormat(qformat)
		if err != nil {
			return fmt.Errorf("replication: %w", err)
		}
		repFormats = []repFormatCfg{{f.String(), []fixed.Format{f}}}
	}
	return nil
}

// repServeFormat is the operand width the fleet-serving equivalence cell
// computes in: narrow enough to exercise the bit-scaled cost model on
// every request job.
var repServeFormat = fixed.W12

// replicationServingCell drives the open-loop GNN request stream through
// the serving-scale fleet with every node replicating when idle and all
// request jobs computing at repServeFormat. The request jobs carry the
// spmm stage tag, so node schedulers pin standing replicas of it.
func replicationServingCell(workers int) serve.Summary {
	const (
		seed    = 902
		horizon = 10 * event.Millisecond
		slo     = 1500 * event.Microsecond
	)
	pred := servingPredictor().Clone()
	sys := sched.NewSystem(isa.Targets...)
	rng := rand.New(rand.NewSource(seed))
	src := serve.NewGNNSource(rng, servingDataset, servingDataset.InputFeat, pred, sys)
	src.Format = repServeFormat
	arr := serve.Trace(rng, serve.Poisson{MeanGap: 30 * event.Microsecond}, 0, horizon)
	reqs := src.Requests(rng, arr, slo)
	cfgs := servingFleet()
	for i := range cfgs {
		cfgs[i].Replication = sched.ReplicateWhenIdle
	}
	d := cluster.NewShardedDispatcher(cluster.NewPredictedCost(), cluster.Admission{MaxRetries: 1},
		shardCfg(workers), cfgs...)
	fe, err := serve.New(d, serve.Config{
		Requests: reqs, Budget: 200 * event.Microsecond, BatchMax: 4,
		PredictorAdmission: true, BuildJob: src.BuildJob,
		Predictor: pred, Mirror: sys,
		RetrainEvery: 8, RetrainEpochs: 10, Seed: seed,
	})
	if err != nil {
		panic(err)
	}
	return fe.Run()
}

// replicationExp reproduces the replicate-when-idle study in three
// parts. Offline: the staged GNN batch through all three schedulers with
// replication off and on — replicas must never slow a schedule down and
// should speed the bottleneck stage up. Pareto: the per-layer format
// sweep under the accuracy guard, tracing AUC drop against makespan and
// energy — the throughput-vs-accuracy front of the precision co-design.
// Fleet: the open-loop serving cell with replicating nodes must produce
// byte-identical artefacts at sim workers 1/2/4/8.
func replicationExp() *Result {
	const seed = 910

	// Offline: scheduler x replication policy on one full node.
	t1 := &table{header: []string{"scheduler", "replication", "makespan(ms)", "replicas", "speedup"}}
	w := buildWorkload("ogbl-collab", seed)
	repFaster := true
	for _, sc := range []func() sched.Scheduler{
		func() sched.Scheduler { return sched.LJF{} },
		func() sched.Scheduler { return sched.NewAdaptive() },
		func() sched.Scheduler { return sched.NewGlobal() },
	} {
		base := event.Time(0)
		for _, pname := range repPolicies {
			pol, _ := sched.ReplicationByName(pname)
			sys := newFullSystem()
			sys.Replication = pol
			jobs := w.AllJobs(predict.Oracle{}, sys)
			scheduler := sc()
			res := scheduler.Schedule(sys, jobs)
			speedup := "-"
			if pol == sched.ReplicateOff {
				base = res.Makespan
			} else if base > 0 {
				speedup = f2(float64(base) / float64(res.Makespan))
				if res.Makespan > base {
					repFaster = false
				}
			}
			t1.add(scheduler.Name(), pname, f3(res.Makespan.Millis()),
				fmt.Sprint(sys.ReplicaCount()), speedup)
		}
	}

	// Pareto: format sweep under the accuracy guard, scheduled with
	// replication on (the co-design point: narrow formats shrink every
	// job, replicas absorb what still serialises).
	t2 := &table{header: []string{"format", "base-auc", "mixed-auc", "drop", "guard",
		"makespan(ms)", "speedup", "energy(J)"}}
	const maxDrop = 0.02
	type paretoPt struct {
		name     string
		drop     float64
		makespan event.Time
	}
	var pts []paretoPt
	base := event.Time(0)
	guardRng := rand.New(rand.NewSource(seed + 1))
	for _, fc := range repFormats {
		rep := gnn.CheckAccuracy(guardRng, w.Model, fc.formats, w.Subgraphs()[:8], 30, maxDrop)
		w.Model.Formats = fc.formats
		sys := newFullSystem()
		sys.Replication = sched.ReplicateWhenIdle
		jobs := w.AllJobs(predict.Oracle{}, sys)
		res := sched.NewGlobal().Schedule(sys, jobs)
		w.Model.Formats = nil
		speedup := "-"
		if base == 0 {
			base = res.Makespan
		} else {
			speedup = f2(float64(base) / float64(res.Makespan))
		}
		en := energy.OfResult(sys, res)
		t2.add(fc.name, f3(rep.BaseAUC), f3(rep.MixedAUC), f3(rep.Drop),
			fmt.Sprint(rep.OK), f3(res.Makespan.Millis()), speedup, f3(en.TotalJ()))
		pts = append(pts, paretoPt{fc.name, rep.Drop, res.Makespan})
	}
	var front []string
	for _, p := range pts {
		dominated := false
		for _, q := range pts {
			if q.name != p.name && q.drop <= p.drop && q.makespan <= p.makespan &&
				(q.drop < p.drop || q.makespan < p.makespan) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, p.name)
		}
	}

	// Fleet: byte-identical serving artefacts at every worker count.
	equiv := true
	var ref string
	var s serve.Summary
	for _, workers := range []int{1, 2, 4, 8} {
		s = replicationServingCell(workers)
		if ref == "" {
			ref = s.String()
		} else if s.String() != ref {
			equiv = false
		}
	}

	text := "offline staged GNN batch (one full node):\n" + t1.String() +
		fmt.Sprintf("replication never slows a schedule down: %v\n", repFaster) +
		"\nprecision sweep (Global scheduler, replication when-idle, guard bound " +
		fmt.Sprintf("%.2f AUC):\n", maxDrop) + t2.String() +
		fmt.Sprintf("pareto front (drop vs makespan): %s\n", strings.Join(front, ", ")) +
		fmt.Sprintf("\nfleet serving (replicating nodes, %s requests): %d requests, %d completed, goodput %.2f/s\n",
			repServeFormat, s.Requests, s.Completed, s.SLO.Goodput) +
		fmt.Sprintf("serving artefact byte-identical at sim workers 1/2/4/8: %v\n", equiv)
	return &Result{ID: "replication", Title: "layer replication + mixed precision", Text: text}
}
