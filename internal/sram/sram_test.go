package sram

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mlimp/internal/dfg"
	"mlimp/internal/fixed"
	"mlimp/internal/isa"
)

func fill(rng *rand.Rand, n int) []fixed.Num {
	out := make([]fixed.Num, n)
	for i := range out {
		out[i] = fixed.Num(rng.Intn(1<<16) - (1 << 15))
	}
	return out
}

func TestStoreLoadRoundTrip(t *testing.T) {
	a := NewArray(256, 256)
	rng := rand.New(rand.NewSource(1))
	v := fill(rng, 256)
	a.StoreVector(3, v)
	got := a.LoadVector(3, 256)
	for i := range v {
		if got[i] != v[i] {
			t.Fatalf("lane %d: got %d want %d", i, got[i], v[i])
		}
	}
}

func TestArrayGeometry(t *testing.T) {
	a := NewArray(256, 128)
	if a.Slots() != 16 {
		t.Errorf("Slots = %d", a.Slots())
	}
	for _, f := range []func(){
		func() { NewArray(100, 10) }, // not a multiple of 16
		func() { NewArray(0, 10) },
		func() { a.StoreVector(99, nil) },
		func() { a.StoreVector(0, make([]fixed.Num, 500)) },
		func() { a.LoadVector(0, 500) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

// checkBinary runs an array op against its fixed-point reference on
// random vectors, including saturation edge values.
func checkBinary(t *testing.T, name string,
	op func(a *Array, dst, x, y int) int64,
	ref func(x, y fixed.Num) fixed.Num, wantCycles int64) {
	t.Helper()
	a := NewArray(256, 256)
	rng := rand.New(rand.NewSource(42))
	xs, ys := fill(rng, 256), fill(rng, 256)
	// Plant saturation edge cases in the first lanes.
	edge := []fixed.Num{fixed.MaxNum, fixed.MinNum, -1, 0, 1, fixed.MaxNum, fixed.MinNum}
	copy(xs, edge)
	copy(ys, []fixed.Num{fixed.MaxNum, fixed.MinNum, fixed.MinNum, 0, -1, 1, fixed.MaxNum})
	a.StoreVector(0, xs)
	a.StoreVector(1, ys)
	cycles := op(a, 2, 0, 1)
	if cycles != wantCycles {
		t.Errorf("%s cycles = %d, want %d", name, cycles, wantCycles)
	}
	got := a.LoadVector(2, 256)
	for i := range xs {
		if want := ref(xs[i], ys[i]); got[i] != want {
			t.Errorf("%s lane %d: %d op %d = %d, want %d", name, i, xs[i], ys[i], got[i], want)
		}
	}
}

func TestAddMatchesFixed(t *testing.T) {
	checkBinary(t, "add", (*Array).Add, fixed.Add, 16)
}

func TestSubMatchesFixed(t *testing.T) {
	checkBinary(t, "sub", (*Array).Sub, fixed.Sub, 18)
}

func TestMulMatchesFixed(t *testing.T) {
	checkBinary(t, "mul", (*Array).Mul, fixed.Mul, 302)
}

func TestLogicOps(t *testing.T) {
	checkBinary(t, "and", (*Array).And, func(x, y fixed.Num) fixed.Num { return x & y }, 17)
	checkBinary(t, "or", (*Array).Or, func(x, y fixed.Num) fixed.Num { return x | y }, 17)
	checkBinary(t, "xor", (*Array).Xor, func(x, y fixed.Num) fixed.Num { return x ^ y }, 17)
}

func TestCmpLT(t *testing.T) {
	checkBinary(t, "cmplt", (*Array).CmpLT, func(x, y fixed.Num) fixed.Num {
		if x < y {
			return 1
		}
		return 0
	}, 17)
}

func TestNotAndCopy(t *testing.T) {
	a := NewArray(256, 8)
	v := []fixed.Num{0, -1, 1, 1234, -1234, fixed.MaxNum, fixed.MinNum, 7}
	a.StoreVector(0, v)
	if c := a.Not(1, 0); c != 16 {
		t.Errorf("not cycles = %d", c)
	}
	got := a.LoadVector(1, 8)
	for i := range v {
		if got[i] != ^v[i] {
			t.Errorf("not lane %d wrong", i)
		}
	}
	if c := a.Copy(2, 0); c != 16 {
		t.Errorf("copy cycles = %d", c)
	}
	got = a.LoadVector(2, 8)
	for i := range v {
		if got[i] != v[i] {
			t.Errorf("copy lane %d wrong", i)
		}
	}
}

func TestReduceAdd(t *testing.T) {
	a := NewArray(256, 256)
	vals := make([]fixed.Num, 256)
	for i := range vals {
		vals[i] = fixed.FromInt(1)
	}
	a.StoreVector(0, vals)
	sum, cycles := a.ReduceAdd(0, 256)
	if sum != fixed.FromInt(256) {
		t.Errorf("sum = %v", sum.Float())
	}
	if cycles != 8*2*16 { // log2(256)=8 stages
		t.Errorf("reduce cycles = %d", cycles)
	}
}

// The functional model's cycle counts must agree with the static ISA
// cost model the scheduler uses — otherwise predicted and simulated
// times diverge by construction.
func TestCyclesMatchISACostModel(t *testing.T) {
	m := isa.Models(isa.SRAM)
	a := NewArray(256, 16)
	a.StoreVector(0, fill(rand.New(rand.NewSource(2)), 16))
	a.StoreVector(1, fill(rand.New(rand.NewSource(3)), 16))
	cases := []struct {
		op  dfg.Op
		got int64
	}{
		{dfg.OpAdd, a.Add(2, 0, 1)},
		{dfg.OpSub, a.Sub(2, 0, 1)},
		{dfg.OpMul, a.Mul(2, 0, 1)},
		{dfg.OpAnd, a.And(2, 0, 1)},
		{dfg.OpOr, a.Or(2, 0, 1)},
		{dfg.OpXor, a.Xor(2, 0, 1)},
		{dfg.OpCmpLT, a.CmpLT(2, 0, 1)},
		{dfg.OpNot, a.Not(2, 0)},
		{dfg.OpMov, a.Copy(2, 0)},
	}
	for _, c := range cases {
		if want := m.OpCycles(c.op, 1); c.got != want {
			t.Errorf("%s: array model %d cycles, ISA model %d", c.op, c.got, want)
		}
	}
}

// Property: bit-serial add/sub/mul match the fixed-point reference for
// arbitrary operands.
func TestBitSerialMatchesReferenceProperty(t *testing.T) {
	a := NewArray(256, 1)
	f := func(x, y int16) bool {
		xs, ys := []fixed.Num{fixed.Num(x)}, []fixed.Num{fixed.Num(y)}
		a.StoreVector(0, xs)
		a.StoreVector(1, ys)
		a.Add(2, 0, 1)
		if a.LoadVector(2, 1)[0] != fixed.Add(xs[0], ys[0]) {
			return false
		}
		a.Sub(2, 0, 1)
		if a.LoadVector(2, 1)[0] != fixed.Sub(xs[0], ys[0]) {
			return false
		}
		a.Mul(2, 0, 1)
		return a.LoadVector(2, 1)[0] == fixed.Mul(xs[0], ys[0])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
