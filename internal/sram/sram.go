// Package sram implements the functional and timing model of in-SRAM
// bit-serial computing (Compute Caches / Neural Cache / Duality Cache,
// Section II-B1). A compute array stores n-bit operands transposed — one
// bit-slice per wordline — and performs arithmetic bit-serially: each
// cycle activates two wordlines, senses BL/BLB per bitline, and latches a
// full-adder result plus carry at the peripheral. Every public operation
// both mutates the simulated bit cells and returns the cycle count of the
// micro-op sequence, which by construction matches the static cost model
// of internal/isa (asserted in tests).
package sram

import (
	"fmt"

	"mlimp/internal/fixed"
)

// WordBits is the operand width. 16-bit fixed point throughout MLIMP.
const WordBits = 16

// Array is one SRAM compute array: Rows wordlines by Cols bitlines of
// single-bit cells. With 256 rows it holds 256/16 = 16 operand slots of
// 256-element vectors.
type Array struct {
	Rows, Cols int
	bits       [][]bool          // [row][col]
	stuck      map[cellAddr]bool // stuck-at cell faults (see fault.go)
}

// NewArray builds a zeroed compute array.
func NewArray(rows, cols int) *Array {
	if rows%WordBits != 0 || rows <= 0 || cols <= 0 {
		panic("sram: rows must be a positive multiple of the word width")
	}
	b := make([][]bool, rows)
	for i := range b {
		b[i] = make([]bool, cols)
	}
	return &Array{Rows: rows, Cols: cols, bits: b}
}

// Slots returns the number of vector operand slots in the array.
func (a *Array) Slots() int { return a.Rows / WordBits }

func (a *Array) checkSlot(slot int) {
	if slot < 0 || slot >= a.Slots() {
		panic(fmt.Sprintf("sram: slot %d out of %d", slot, a.Slots()))
	}
}

// StoreVector writes vals transposed into a slot: bit i of element c goes
// to wordline slot*16+i, bitline c. Loading is performed by the cache
// controller, not the compute FSM, so it has no cycle cost here; the
// scheduler accounts data movement via the main-memory model.
func (a *Array) StoreVector(slot int, vals []fixed.Num) {
	a.checkSlot(slot)
	if len(vals) > a.Cols {
		panic("sram: vector wider than array")
	}
	base := slot * WordBits
	for c, v := range vals {
		u := uint16(v)
		for i := 0; i < WordBits; i++ {
			a.bits[base+i][c] = u&(1<<i) != 0
		}
	}
	a.pin()
}

// LoadVector reads a slot back as fixed-point values.
func (a *Array) LoadVector(slot int, n int) []fixed.Num {
	a.checkSlot(slot)
	if n > a.Cols {
		panic("sram: read wider than array")
	}
	base := slot * WordBits
	out := make([]fixed.Num, n)
	for c := 0; c < n; c++ {
		var u uint16
		for i := 0; i < WordBits; i++ {
			if a.bits[base+i][c] {
				u |= 1 << i
			}
		}
		out[c] = fixed.Num(u)
	}
	return out
}

// column materialises the bit-slice view of one element for the
// peripheral logic emulation.
func (a *Array) column(slot, col int) [WordBits]bool {
	var w [WordBits]bool
	base := slot * WordBits
	for i := range w {
		w[i] = a.bits[base+i][col]
	}
	return w
}

func (a *Array) setColumn(slot, col int, w [WordBits]bool) {
	base := slot * WordBits
	for i := range w {
		a.bits[base+i][col] = w[i]
	}
	if a.stuck != nil {
		for c, v := range a.stuck {
			if c.col == col && c.row >= base && c.row < base+WordBits {
				a.bits[c.row][c.col] = v
			}
		}
	}
}

// Copy copies slot src to dst, one wordline per cycle.
func (a *Array) Copy(dst, src int) int64 {
	a.checkSlot(dst)
	a.checkSlot(src)
	base, sbase := dst*WordBits, src*WordBits
	for i := 0; i < WordBits; i++ {
		copy(a.bits[base+i], a.bits[sbase+i])
	}
	a.pin()
	return WordBits
}

// addColumns is the peripheral full-adder walk shared by Add and Sub:
// starting from carry-in, it sweeps bit-slices LSB to MSB, producing the
// two's-complement sum with saturation on signed overflow (overflow is
// detected from the MSB carry pair, and the peripheral mux clamps).
func addColumns(x, y [WordBits]bool, invertY bool, carry bool) [WordBits]bool {
	var sum [WordBits]bool
	for i := 0; i < WordBits; i++ {
		yb := y[i] != invertY // XOR with the inversion control line
		s := x[i] != yb != carry
		cNext := (x[i] && yb) || (x[i] && carry) || (yb && carry)
		if i == WordBits-1 {
			// Signed overflow iff carry into MSB != carry out of MSB. On
			// overflow the corrupted sum MSB is the inverse of the true
			// sign, so s==1 means the true result was positive.
			if carry != cNext {
				return saturated(s)
			}
		}
		sum[i] = s
		carry = cNext
	}
	return sum
}

// saturated returns the bit pattern of MaxNum (positive=true) or MinNum.
func saturated(positive bool) [WordBits]bool {
	var w [WordBits]bool
	if positive {
		for i := 0; i < WordBits-1; i++ {
			w[i] = true
		}
	} else {
		w[WordBits-1] = true
	}
	return w
}

// Add computes dst = a + b over all columns. Cost: one cycle per
// bit-slice (n cycles), the Neural Cache addition sequence.
func (a *Array) Add(dst, x, y int) int64 {
	for c := 0; c < a.Cols; c++ {
		a.setColumn(dst, c, addColumns(a.column(x, c), a.column(y, c), false, false))
	}
	return WordBits
}

// Sub computes dst = x - y via the inverted-operand add with carry-in.
// Cost: n+2 cycles (inversion control setup plus the adder walk).
func (a *Array) Sub(dst, x, y int) int64 {
	for c := 0; c < a.Cols; c++ {
		a.setColumn(dst, c, addColumns(a.column(x, c), a.column(y, c), true, true))
	}
	return WordBits + 2
}

// CmpLT sets dst to 1 where x < y (signed), else 0. Cost n+1.
func (a *Array) CmpLT(dst, x, y int) int64 {
	one := [WordBits]bool{0: true}
	var zero [WordBits]bool
	for c := 0; c < a.Cols; c++ {
		if colSigned(a.column(x, c)) < colSigned(a.column(y, c)) {
			a.setColumn(dst, c, one)
		} else {
			a.setColumn(dst, c, zero)
		}
	}
	return WordBits + 1
}

func colSigned(w [WordBits]bool) int32 {
	var u uint16
	for i, b := range w {
		if b {
			u |= 1 << i
		}
	}
	return int32(int16(u))
}

func colFromInt(v int32) [WordBits]bool {
	var w [WordBits]bool
	u := uint16(int16(v))
	for i := range w {
		w[i] = u&(1<<i) != 0
	}
	return w
}

// Mul computes dst = x * y in the package Q format (round-to-nearest,
// saturating), as a bit-serial shift-and-add of partial products. The
// micro-op sequence is the Neural Cache multiplier: n conditional adds on
// a 2n-bit accumulator plus the rounding shift, n²+3n−2 cycles total.
func (a *Array) Mul(dst, x, y int) int64 {
	for c := 0; c < a.Cols; c++ {
		xv, yv := colSigned(a.column(x, c)), colSigned(a.column(y, c))
		// Sign-magnitude partial-product accumulation over a 32-bit
		// bit-vector accumulator, exactly as the peripheral sequencer
		// does it (two's-complement inputs are pre-negated by the same
		// inverted-add primitive used by Sub).
		neg := (xv < 0) != (yv < 0)
		ax, ay := abs32(xv), abs32(yv)
		var acc [2 * WordBits]bool
		for i := 0; i < WordBits; i++ {
			if ay&(1<<i) == 0 {
				continue // predication row masks this partial product
			}
			carry := false
			for j := 0; j < 2*WordBits; j++ {
				var pb bool
				if j >= i && j-i < WordBits {
					pb = ax&(1<<(j-i)) != 0
				}
				s := acc[j] != pb != carry
				carry = (acc[j] && pb) || (acc[j] && carry) || (pb && carry)
				acc[j] = s
			}
		}
		p := int64(accToUint(acc[:]))
		if neg {
			p = -p
		}
		// Rounding rescale and saturation, matching fixed.Mul.
		p = (p + 1<<(fixed.FracBits-1)) >> fixed.FracBits
		switch {
		case p > int64(fixed.MaxNum):
			p = int64(fixed.MaxNum)
		case p < int64(fixed.MinNum):
			p = int64(fixed.MinNum)
		}
		a.setColumn(dst, c, colFromInt(int32(p)))
	}
	const n = int64(WordBits)
	return n*n + 3*n - 2
}

func abs32(v int32) uint32 {
	if v < 0 {
		return uint32(-int64(v))
	}
	return uint32(v)
}

func accToUint(acc []bool) uint64 {
	var u uint64
	for i, b := range acc {
		if b {
			u |= 1 << uint(i)
		}
	}
	return u
}

// And computes dst = x & y. Multi-row activation produces the AND of two
// cells directly at the sense amp; one extra cycle re-drives the result.
func (a *Array) And(dst, x, y int) int64 {
	return a.logic(dst, x, y, func(p, q bool) bool { return p && q })
}

// Or computes dst = x | y.
func (a *Array) Or(dst, x, y int) int64 {
	return a.logic(dst, x, y, func(p, q bool) bool { return p || q })
}

// Xor computes dst = x ^ y, using the reconfigurable differential sense
// amp of Compute Caches.
func (a *Array) Xor(dst, x, y int) int64 {
	return a.logic(dst, x, y, func(p, q bool) bool { return p != q })
}

func (a *Array) logic(dst, x, y int, f func(p, q bool) bool) int64 {
	for c := 0; c < a.Cols; c++ {
		xw, yw := a.column(x, c), a.column(y, c)
		var out [WordBits]bool
		for i := range out {
			out[i] = f(xw[i], yw[i])
		}
		a.setColumn(dst, c, out)
	}
	return WordBits + 1
}

// Not computes dst = ^x by sensing BLB instead of BL.
func (a *Array) Not(dst, x int) int64 {
	for c := 0; c < a.Cols; c++ {
		w := a.column(x, c)
		for i := range w {
			w[i] = !w[i]
		}
		a.setColumn(dst, c, w)
	}
	return WordBits
}

// ReduceAdd sums the first n elements of a slot with a log-tree of moves
// and adds inside the array and returns the saturating total. Cost:
// ceil(log2 n) stages of a move plus an add.
func (a *Array) ReduceAdd(slot, n int) (fixed.Num, int64) {
	vals := a.LoadVector(slot, n)
	var acc fixed.Num
	for _, v := range vals {
		acc = fixed.Add(acc, v)
	}
	stages := int64(0)
	for v := n - 1; v > 0; v >>= 1 {
		stages++
	}
	return acc, stages * 2 * WordBits
}
