package sram

import (
	"testing"

	"mlimp/internal/fixed"
)

func TestStuckAtPinsStoredData(t *testing.T) {
	a := NewArray(32, 8)
	vals := []fixed.Num{1, 2, 3, 4, 5, 6, 7, 8}
	a.StoreVector(0, vals)

	// Pin bit 3 of element 2 in slot 0 to one.
	a.InjectStuckAt(3, 2, true)
	got := a.LoadVector(0, len(vals))
	want := vals[2] | 1<<3
	if got[2] != want {
		t.Errorf("stuck cell: element 2 = %d, want %d", got[2], want)
	}
	for c, v := range got {
		if c != 2 && v != vals[c] {
			t.Errorf("healthy element %d corrupted: %d != %d", c, v, vals[c])
		}
	}

	// The pin survives rewrites.
	a.StoreVector(0, make([]fixed.Num, len(vals)))
	if got := a.LoadVector(0, len(vals)); got[2] != 1<<3 {
		t.Errorf("rewrite cleared stuck cell: element 2 = %d", got[2])
	}
	if a.FaultCount() != 1 {
		t.Errorf("FaultCount = %d, want 1", a.FaultCount())
	}

	// Healing ends the pin; the next write sticks.
	a.ClearFaults()
	a.StoreVector(0, vals)
	if got := a.LoadVector(0, len(vals)); got[2] != vals[2] {
		t.Errorf("after ClearFaults element 2 = %d, want %d", got[2], vals[2])
	}
	if a.FaultCount() != 0 {
		t.Errorf("FaultCount after clear = %d", a.FaultCount())
	}
}

func TestStuckAtCorruptsCompute(t *testing.T) {
	a := NewArray(48, 4) // three slots: x, y, dst
	x := []fixed.Num{100, 200, 300, 400}
	y := []fixed.Num{5, 6, 7, 8}
	a.StoreVector(0, x)
	a.StoreVector(1, y)

	// Pin bit 0 of dst element 1 to zero: the adder output is forced even.
	a.InjectStuckAt(2*WordBits+0, 1, false)
	a.Add(2, 0, 1)
	got := a.LoadVector(2, len(x))
	for c := range x {
		want := fixed.Add(x[c], y[c])
		if c == 1 {
			want &^= 1
		}
		if got[c] != want {
			t.Errorf("element %d = %d, want %d", c, got[c], want)
		}
	}
}

func TestStuckAtBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("out-of-bounds stuck-at injection did not panic")
		}
	}()
	NewArray(32, 8).InjectStuckAt(32, 0, true)
}
