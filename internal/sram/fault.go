package sram

// Stuck-at cell faults (Section II-B1 substrates age like any SRAM:
// marginal cells latch to a fixed value). A stuck cell ignores every
// write — the bit-serial FSM keeps running, it just computes with the
// corrupted operand, which is exactly how a degraded array misbehaves
// in the field. The fleet-level fault plan (internal/fault) retires
// whole arrays; this models why an array gets retired.

type cellAddr struct{ row, col int }

// InjectStuckAt pins cell (row, col) to value v. The pin applies
// immediately and to every subsequent write. Injecting the same cell
// again just changes the pinned value.
func (a *Array) InjectStuckAt(row, col int, v bool) {
	if row < 0 || row >= a.Rows || col < 0 || col >= a.Cols {
		panic("sram: stuck-at cell out of array bounds")
	}
	if a.stuck == nil {
		a.stuck = map[cellAddr]bool{}
	}
	a.stuck[cellAddr{row, col}] = v
	a.bits[row][col] = v
}

// ClearFaults heals every stuck cell (the cells keep their pinned
// values until overwritten; only the pinning ends).
func (a *Array) ClearFaults() { a.stuck = nil }

// FaultCount returns the number of stuck cells.
func (a *Array) FaultCount() int { return len(a.stuck) }

// pin re-asserts every stuck cell after a bulk write. Compute ops go
// through setColumn, which pins inline; StoreVector and Copy call this.
func (a *Array) pin() {
	for c, v := range a.stuck {
		a.bits[c.row][c.col] = v
	}
}
